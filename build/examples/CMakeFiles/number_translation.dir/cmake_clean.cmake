file(REMOVE_RECURSE
  "CMakeFiles/number_translation.dir/number_translation.cpp.o"
  "CMakeFiles/number_translation.dir/number_translation.cpp.o.d"
  "number_translation"
  "number_translation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/number_translation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
