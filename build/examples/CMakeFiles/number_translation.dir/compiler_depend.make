# Empty compiler generated dependencies file for number_translation.
# This may be replaced when dependencies are built.
