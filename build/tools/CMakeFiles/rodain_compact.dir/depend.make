# Empty dependencies file for rodain_compact.
# This may be replaced when dependencies are built.
