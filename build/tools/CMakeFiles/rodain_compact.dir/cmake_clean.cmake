file(REMOVE_RECURSE
  "CMakeFiles/rodain_compact.dir/compact.cpp.o"
  "CMakeFiles/rodain_compact.dir/compact.cpp.o.d"
  "rodain_compact"
  "rodain_compact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rodain_compact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
