file(REMOVE_RECURSE
  "CMakeFiles/rodain_log_dump.dir/log_dump.cpp.o"
  "CMakeFiles/rodain_log_dump.dir/log_dump.cpp.o.d"
  "rodain_log_dump"
  "rodain_log_dump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rodain_log_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
