# Empty compiler generated dependencies file for rodain_log_dump.
# This may be replaced when dependencies are built.
