file(REMOVE_RECURSE
  "CMakeFiles/rodain_ckpt_info.dir/ckpt_info.cpp.o"
  "CMakeFiles/rodain_ckpt_info.dir/ckpt_info.cpp.o.d"
  "rodain_ckpt_info"
  "rodain_ckpt_info.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rodain_ckpt_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
