# Empty compiler generated dependencies file for rodain_ckpt_info.
# This may be replaced when dependencies are built.
