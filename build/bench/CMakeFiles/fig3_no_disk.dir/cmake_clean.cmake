file(REMOVE_RECURSE
  "CMakeFiles/fig3_no_disk.dir/fig3_no_disk.cpp.o"
  "CMakeFiles/fig3_no_disk.dir/fig3_no_disk.cpp.o.d"
  "fig3_no_disk"
  "fig3_no_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_no_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
