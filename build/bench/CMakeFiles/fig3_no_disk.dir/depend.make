# Empty dependencies file for fig3_no_disk.
# This may be replaced when dependencies are built.
