# Empty compiler generated dependencies file for cc_compare.
# This may be replaced when dependencies are built.
