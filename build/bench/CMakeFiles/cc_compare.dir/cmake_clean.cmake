file(REMOVE_RECURSE
  "CMakeFiles/cc_compare.dir/cc_compare.cpp.o"
  "CMakeFiles/cc_compare.dir/cc_compare.cpp.o.d"
  "cc_compare"
  "cc_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
