file(REMOVE_RECURSE
  "CMakeFiles/fig2_log_modes.dir/fig2_log_modes.cpp.o"
  "CMakeFiles/fig2_log_modes.dir/fig2_log_modes.cpp.o.d"
  "fig2_log_modes"
  "fig2_log_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_log_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
