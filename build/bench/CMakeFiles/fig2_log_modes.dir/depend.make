# Empty dependencies file for fig2_log_modes.
# This may be replaced when dependencies are built.
