# Empty compiler generated dependencies file for micro_log.
# This may be replaced when dependencies are built.
