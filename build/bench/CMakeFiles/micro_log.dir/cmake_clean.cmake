file(REMOVE_RECURSE
  "CMakeFiles/micro_log.dir/micro_log.cpp.o"
  "CMakeFiles/micro_log.dir/micro_log.cpp.o.d"
  "micro_log"
  "micro_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
