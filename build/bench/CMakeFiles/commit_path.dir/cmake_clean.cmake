file(REMOVE_RECURSE
  "CMakeFiles/commit_path.dir/commit_path.cpp.o"
  "CMakeFiles/commit_path.dir/commit_path.cpp.o.d"
  "commit_path"
  "commit_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commit_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
