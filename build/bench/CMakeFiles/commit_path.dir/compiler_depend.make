# Empty compiler generated dependencies file for commit_path.
# This may be replaced when dependencies are built.
