file(REMOVE_RECURSE
  "CMakeFiles/overload_manager.dir/overload_manager.cpp.o"
  "CMakeFiles/overload_manager.dir/overload_manager.cpp.o.d"
  "overload_manager"
  "overload_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overload_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
