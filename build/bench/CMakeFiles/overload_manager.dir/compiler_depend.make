# Empty compiler generated dependencies file for overload_manager.
# This may be replaced when dependencies are built.
