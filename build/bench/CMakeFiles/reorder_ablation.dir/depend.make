# Empty dependencies file for reorder_ablation.
# This may be replaced when dependencies are built.
