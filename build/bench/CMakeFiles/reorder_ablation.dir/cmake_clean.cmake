file(REMOVE_RECURSE
  "CMakeFiles/reorder_ablation.dir/reorder_ablation.cpp.o"
  "CMakeFiles/reorder_ablation.dir/reorder_ablation.cpp.o.d"
  "reorder_ablation"
  "reorder_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reorder_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
