# Empty compiler generated dependencies file for rodain.
# This may be replaced when dependencies are built.
