
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rodain/cc/factory.cpp" "src/CMakeFiles/rodain.dir/rodain/cc/factory.cpp.o" "gcc" "src/CMakeFiles/rodain.dir/rodain/cc/factory.cpp.o.d"
  "/root/repo/src/rodain/cc/lock_manager.cpp" "src/CMakeFiles/rodain.dir/rodain/cc/lock_manager.cpp.o" "gcc" "src/CMakeFiles/rodain.dir/rodain/cc/lock_manager.cpp.o.d"
  "/root/repo/src/rodain/cc/occ.cpp" "src/CMakeFiles/rodain.dir/rodain/cc/occ.cpp.o" "gcc" "src/CMakeFiles/rodain.dir/rodain/cc/occ.cpp.o.d"
  "/root/repo/src/rodain/cc/two_pl.cpp" "src/CMakeFiles/rodain.dir/rodain/cc/two_pl.cpp.o" "gcc" "src/CMakeFiles/rodain.dir/rodain/cc/two_pl.cpp.o.d"
  "/root/repo/src/rodain/common/clock.cpp" "src/CMakeFiles/rodain.dir/rodain/common/clock.cpp.o" "gcc" "src/CMakeFiles/rodain.dir/rodain/common/clock.cpp.o.d"
  "/root/repo/src/rodain/common/diag.cpp" "src/CMakeFiles/rodain.dir/rodain/common/diag.cpp.o" "gcc" "src/CMakeFiles/rodain.dir/rodain/common/diag.cpp.o.d"
  "/root/repo/src/rodain/common/rng.cpp" "src/CMakeFiles/rodain.dir/rodain/common/rng.cpp.o" "gcc" "src/CMakeFiles/rodain.dir/rodain/common/rng.cpp.o.d"
  "/root/repo/src/rodain/common/serialization.cpp" "src/CMakeFiles/rodain.dir/rodain/common/serialization.cpp.o" "gcc" "src/CMakeFiles/rodain.dir/rodain/common/serialization.cpp.o.d"
  "/root/repo/src/rodain/common/stats.cpp" "src/CMakeFiles/rodain.dir/rodain/common/stats.cpp.o" "gcc" "src/CMakeFiles/rodain.dir/rodain/common/stats.cpp.o.d"
  "/root/repo/src/rodain/common/time.cpp" "src/CMakeFiles/rodain.dir/rodain/common/time.cpp.o" "gcc" "src/CMakeFiles/rodain.dir/rodain/common/time.cpp.o.d"
  "/root/repo/src/rodain/db/database.cpp" "src/CMakeFiles/rodain.dir/rodain/db/database.cpp.o" "gcc" "src/CMakeFiles/rodain.dir/rodain/db/database.cpp.o.d"
  "/root/repo/src/rodain/engine/engine.cpp" "src/CMakeFiles/rodain.dir/rodain/engine/engine.cpp.o" "gcc" "src/CMakeFiles/rodain.dir/rodain/engine/engine.cpp.o.d"
  "/root/repo/src/rodain/exp/session.cpp" "src/CMakeFiles/rodain.dir/rodain/exp/session.cpp.o" "gcc" "src/CMakeFiles/rodain.dir/rodain/exp/session.cpp.o.d"
  "/root/repo/src/rodain/log/log_storage.cpp" "src/CMakeFiles/rodain.dir/rodain/log/log_storage.cpp.o" "gcc" "src/CMakeFiles/rodain.dir/rodain/log/log_storage.cpp.o.d"
  "/root/repo/src/rodain/log/record.cpp" "src/CMakeFiles/rodain.dir/rodain/log/record.cpp.o" "gcc" "src/CMakeFiles/rodain.dir/rodain/log/record.cpp.o.d"
  "/root/repo/src/rodain/log/recovery.cpp" "src/CMakeFiles/rodain.dir/rodain/log/recovery.cpp.o" "gcc" "src/CMakeFiles/rodain.dir/rodain/log/recovery.cpp.o.d"
  "/root/repo/src/rodain/log/reorder.cpp" "src/CMakeFiles/rodain.dir/rodain/log/reorder.cpp.o" "gcc" "src/CMakeFiles/rodain.dir/rodain/log/reorder.cpp.o.d"
  "/root/repo/src/rodain/log/writer.cpp" "src/CMakeFiles/rodain.dir/rodain/log/writer.cpp.o" "gcc" "src/CMakeFiles/rodain.dir/rodain/log/writer.cpp.o.d"
  "/root/repo/src/rodain/net/sim_link.cpp" "src/CMakeFiles/rodain.dir/rodain/net/sim_link.cpp.o" "gcc" "src/CMakeFiles/rodain.dir/rodain/net/sim_link.cpp.o.d"
  "/root/repo/src/rodain/net/tcp.cpp" "src/CMakeFiles/rodain.dir/rodain/net/tcp.cpp.o" "gcc" "src/CMakeFiles/rodain.dir/rodain/net/tcp.cpp.o.d"
  "/root/repo/src/rodain/repl/endpoint.cpp" "src/CMakeFiles/rodain.dir/rodain/repl/endpoint.cpp.o" "gcc" "src/CMakeFiles/rodain.dir/rodain/repl/endpoint.cpp.o.d"
  "/root/repo/src/rodain/repl/mirror.cpp" "src/CMakeFiles/rodain.dir/rodain/repl/mirror.cpp.o" "gcc" "src/CMakeFiles/rodain.dir/rodain/repl/mirror.cpp.o.d"
  "/root/repo/src/rodain/repl/primary.cpp" "src/CMakeFiles/rodain.dir/rodain/repl/primary.cpp.o" "gcc" "src/CMakeFiles/rodain.dir/rodain/repl/primary.cpp.o.d"
  "/root/repo/src/rodain/repl/protocol.cpp" "src/CMakeFiles/rodain.dir/rodain/repl/protocol.cpp.o" "gcc" "src/CMakeFiles/rodain.dir/rodain/repl/protocol.cpp.o.d"
  "/root/repo/src/rodain/rt/node.cpp" "src/CMakeFiles/rodain.dir/rodain/rt/node.cpp.o" "gcc" "src/CMakeFiles/rodain.dir/rodain/rt/node.cpp.o.d"
  "/root/repo/src/rodain/sched/overload.cpp" "src/CMakeFiles/rodain.dir/rodain/sched/overload.cpp.o" "gcc" "src/CMakeFiles/rodain.dir/rodain/sched/overload.cpp.o.d"
  "/root/repo/src/rodain/sim/cpu.cpp" "src/CMakeFiles/rodain.dir/rodain/sim/cpu.cpp.o" "gcc" "src/CMakeFiles/rodain.dir/rodain/sim/cpu.cpp.o.d"
  "/root/repo/src/rodain/sim/simulation.cpp" "src/CMakeFiles/rodain.dir/rodain/sim/simulation.cpp.o" "gcc" "src/CMakeFiles/rodain.dir/rodain/sim/simulation.cpp.o.d"
  "/root/repo/src/rodain/simdb/sim_cluster.cpp" "src/CMakeFiles/rodain.dir/rodain/simdb/sim_cluster.cpp.o" "gcc" "src/CMakeFiles/rodain.dir/rodain/simdb/sim_cluster.cpp.o.d"
  "/root/repo/src/rodain/simdb/sim_node.cpp" "src/CMakeFiles/rodain.dir/rodain/simdb/sim_node.cpp.o" "gcc" "src/CMakeFiles/rodain.dir/rodain/simdb/sim_node.cpp.o.d"
  "/root/repo/src/rodain/storage/btree.cpp" "src/CMakeFiles/rodain.dir/rodain/storage/btree.cpp.o" "gcc" "src/CMakeFiles/rodain.dir/rodain/storage/btree.cpp.o.d"
  "/root/repo/src/rodain/storage/checkpoint.cpp" "src/CMakeFiles/rodain.dir/rodain/storage/checkpoint.cpp.o" "gcc" "src/CMakeFiles/rodain.dir/rodain/storage/checkpoint.cpp.o.d"
  "/root/repo/src/rodain/storage/object_store.cpp" "src/CMakeFiles/rodain.dir/rodain/storage/object_store.cpp.o" "gcc" "src/CMakeFiles/rodain.dir/rodain/storage/object_store.cpp.o.d"
  "/root/repo/src/rodain/storage/value.cpp" "src/CMakeFiles/rodain.dir/rodain/storage/value.cpp.o" "gcc" "src/CMakeFiles/rodain.dir/rodain/storage/value.cpp.o.d"
  "/root/repo/src/rodain/txn/program.cpp" "src/CMakeFiles/rodain.dir/rodain/txn/program.cpp.o" "gcc" "src/CMakeFiles/rodain.dir/rodain/txn/program.cpp.o.d"
  "/root/repo/src/rodain/txn/transaction.cpp" "src/CMakeFiles/rodain.dir/rodain/txn/transaction.cpp.o" "gcc" "src/CMakeFiles/rodain.dir/rodain/txn/transaction.cpp.o.d"
  "/root/repo/src/rodain/workload/number_translation.cpp" "src/CMakeFiles/rodain.dir/rodain/workload/number_translation.cpp.o" "gcc" "src/CMakeFiles/rodain.dir/rodain/workload/number_translation.cpp.o.d"
  "/root/repo/src/rodain/workload/trace.cpp" "src/CMakeFiles/rodain.dir/rodain/workload/trace.cpp.o" "gcc" "src/CMakeFiles/rodain.dir/rodain/workload/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
