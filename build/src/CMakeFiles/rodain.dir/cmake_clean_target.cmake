file(REMOVE_RECURSE
  "librodain.a"
)
