
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cc/lock_manager_test.cpp" "tests/CMakeFiles/rodain_tests.dir/cc/lock_manager_test.cpp.o" "gcc" "tests/CMakeFiles/rodain_tests.dir/cc/lock_manager_test.cpp.o.d"
  "/root/repo/tests/cc/occ_test.cpp" "tests/CMakeFiles/rodain_tests.dir/cc/occ_test.cpp.o" "gcc" "tests/CMakeFiles/rodain_tests.dir/cc/occ_test.cpp.o.d"
  "/root/repo/tests/cc/serializability_test.cpp" "tests/CMakeFiles/rodain_tests.dir/cc/serializability_test.cpp.o" "gcc" "tests/CMakeFiles/rodain_tests.dir/cc/serializability_test.cpp.o.d"
  "/root/repo/tests/common/clock_test.cpp" "tests/CMakeFiles/rodain_tests.dir/common/clock_test.cpp.o" "gcc" "tests/CMakeFiles/rodain_tests.dir/common/clock_test.cpp.o.d"
  "/root/repo/tests/common/rng_test.cpp" "tests/CMakeFiles/rodain_tests.dir/common/rng_test.cpp.o" "gcc" "tests/CMakeFiles/rodain_tests.dir/common/rng_test.cpp.o.d"
  "/root/repo/tests/common/serialization_test.cpp" "tests/CMakeFiles/rodain_tests.dir/common/serialization_test.cpp.o" "gcc" "tests/CMakeFiles/rodain_tests.dir/common/serialization_test.cpp.o.d"
  "/root/repo/tests/common/stats_test.cpp" "tests/CMakeFiles/rodain_tests.dir/common/stats_test.cpp.o" "gcc" "tests/CMakeFiles/rodain_tests.dir/common/stats_test.cpp.o.d"
  "/root/repo/tests/common/status_test.cpp" "tests/CMakeFiles/rodain_tests.dir/common/status_test.cpp.o" "gcc" "tests/CMakeFiles/rodain_tests.dir/common/status_test.cpp.o.d"
  "/root/repo/tests/common/time_test.cpp" "tests/CMakeFiles/rodain_tests.dir/common/time_test.cpp.o" "gcc" "tests/CMakeFiles/rodain_tests.dir/common/time_test.cpp.o.d"
  "/root/repo/tests/engine/engine_test.cpp" "tests/CMakeFiles/rodain_tests.dir/engine/engine_test.cpp.o" "gcc" "tests/CMakeFiles/rodain_tests.dir/engine/engine_test.cpp.o.d"
  "/root/repo/tests/integration/provisioning_test.cpp" "tests/CMakeFiles/rodain_tests.dir/integration/provisioning_test.cpp.o" "gcc" "tests/CMakeFiles/rodain_tests.dir/integration/provisioning_test.cpp.o.d"
  "/root/repo/tests/integration/rt_node_test.cpp" "tests/CMakeFiles/rodain_tests.dir/integration/rt_node_test.cpp.o" "gcc" "tests/CMakeFiles/rodain_tests.dir/integration/rt_node_test.cpp.o.d"
  "/root/repo/tests/integration/rt_recovery_test.cpp" "tests/CMakeFiles/rodain_tests.dir/integration/rt_recovery_test.cpp.o" "gcc" "tests/CMakeFiles/rodain_tests.dir/integration/rt_recovery_test.cpp.o.d"
  "/root/repo/tests/integration/sim_cluster_test.cpp" "tests/CMakeFiles/rodain_tests.dir/integration/sim_cluster_test.cpp.o" "gcc" "tests/CMakeFiles/rodain_tests.dir/integration/sim_cluster_test.cpp.o.d"
  "/root/repo/tests/log/log_storage_test.cpp" "tests/CMakeFiles/rodain_tests.dir/log/log_storage_test.cpp.o" "gcc" "tests/CMakeFiles/rodain_tests.dir/log/log_storage_test.cpp.o.d"
  "/root/repo/tests/log/record_test.cpp" "tests/CMakeFiles/rodain_tests.dir/log/record_test.cpp.o" "gcc" "tests/CMakeFiles/rodain_tests.dir/log/record_test.cpp.o.d"
  "/root/repo/tests/log/recovery_test.cpp" "tests/CMakeFiles/rodain_tests.dir/log/recovery_test.cpp.o" "gcc" "tests/CMakeFiles/rodain_tests.dir/log/recovery_test.cpp.o.d"
  "/root/repo/tests/log/reorder_test.cpp" "tests/CMakeFiles/rodain_tests.dir/log/reorder_test.cpp.o" "gcc" "tests/CMakeFiles/rodain_tests.dir/log/reorder_test.cpp.o.d"
  "/root/repo/tests/log/writer_test.cpp" "tests/CMakeFiles/rodain_tests.dir/log/writer_test.cpp.o" "gcc" "tests/CMakeFiles/rodain_tests.dir/log/writer_test.cpp.o.d"
  "/root/repo/tests/net/sim_link_test.cpp" "tests/CMakeFiles/rodain_tests.dir/net/sim_link_test.cpp.o" "gcc" "tests/CMakeFiles/rodain_tests.dir/net/sim_link_test.cpp.o.d"
  "/root/repo/tests/net/tcp_test.cpp" "tests/CMakeFiles/rodain_tests.dir/net/tcp_test.cpp.o" "gcc" "tests/CMakeFiles/rodain_tests.dir/net/tcp_test.cpp.o.d"
  "/root/repo/tests/repl/protocol_test.cpp" "tests/CMakeFiles/rodain_tests.dir/repl/protocol_test.cpp.o" "gcc" "tests/CMakeFiles/rodain_tests.dir/repl/protocol_test.cpp.o.d"
  "/root/repo/tests/repl/replication_test.cpp" "tests/CMakeFiles/rodain_tests.dir/repl/replication_test.cpp.o" "gcc" "tests/CMakeFiles/rodain_tests.dir/repl/replication_test.cpp.o.d"
  "/root/repo/tests/sched/sched_test.cpp" "tests/CMakeFiles/rodain_tests.dir/sched/sched_test.cpp.o" "gcc" "tests/CMakeFiles/rodain_tests.dir/sched/sched_test.cpp.o.d"
  "/root/repo/tests/sim/cpu_test.cpp" "tests/CMakeFiles/rodain_tests.dir/sim/cpu_test.cpp.o" "gcc" "tests/CMakeFiles/rodain_tests.dir/sim/cpu_test.cpp.o.d"
  "/root/repo/tests/sim/simulation_test.cpp" "tests/CMakeFiles/rodain_tests.dir/sim/simulation_test.cpp.o" "gcc" "tests/CMakeFiles/rodain_tests.dir/sim/simulation_test.cpp.o.d"
  "/root/repo/tests/simdb/sim_node_test.cpp" "tests/CMakeFiles/rodain_tests.dir/simdb/sim_node_test.cpp.o" "gcc" "tests/CMakeFiles/rodain_tests.dir/simdb/sim_node_test.cpp.o.d"
  "/root/repo/tests/storage/btree_test.cpp" "tests/CMakeFiles/rodain_tests.dir/storage/btree_test.cpp.o" "gcc" "tests/CMakeFiles/rodain_tests.dir/storage/btree_test.cpp.o.d"
  "/root/repo/tests/storage/checkpoint_test.cpp" "tests/CMakeFiles/rodain_tests.dir/storage/checkpoint_test.cpp.o" "gcc" "tests/CMakeFiles/rodain_tests.dir/storage/checkpoint_test.cpp.o.d"
  "/root/repo/tests/storage/object_store_test.cpp" "tests/CMakeFiles/rodain_tests.dir/storage/object_store_test.cpp.o" "gcc" "tests/CMakeFiles/rodain_tests.dir/storage/object_store_test.cpp.o.d"
  "/root/repo/tests/storage/tombstone_test.cpp" "tests/CMakeFiles/rodain_tests.dir/storage/tombstone_test.cpp.o" "gcc" "tests/CMakeFiles/rodain_tests.dir/storage/tombstone_test.cpp.o.d"
  "/root/repo/tests/storage/value_test.cpp" "tests/CMakeFiles/rodain_tests.dir/storage/value_test.cpp.o" "gcc" "tests/CMakeFiles/rodain_tests.dir/storage/value_test.cpp.o.d"
  "/root/repo/tests/txn/program_test.cpp" "tests/CMakeFiles/rodain_tests.dir/txn/program_test.cpp.o" "gcc" "tests/CMakeFiles/rodain_tests.dir/txn/program_test.cpp.o.d"
  "/root/repo/tests/workload/workload_test.cpp" "tests/CMakeFiles/rodain_tests.dir/workload/workload_test.cpp.o" "gcc" "tests/CMakeFiles/rodain_tests.dir/workload/workload_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rodain.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
