# Empty dependencies file for rodain_tests.
# This may be replaced when dependencies are built.
