// AvailabilityTimeline: exact downtime and time-to-first-commit bookkeeping
// under scripted serving/outage sequences.
#include "rodain/obs/availability.hpp"

#include <gtest/gtest.h>

namespace rodain::obs {
namespace {

TEST(Availability, SingleOutageDowntimeAndTtfc) {
  AvailabilityTimeline t;
  t.set_serving(true, 1000);
  t.on_commit(1500);  // first-ever commit: ttfc from serving start
  EXPECT_EQ(t.last_time_to_first_commit_us(), 500);

  t.set_serving(false, 10'000);  // outage opens
  EXPECT_FALSE(t.serving());
  EXPECT_EQ(t.total_downtime_us(12'000), 2000);  // accrues while open

  t.set_serving(true, 15'000);  // outage closes: 5ms downtime
  ASSERT_EQ(t.outages().size(), 1u);
  EXPECT_FALSE(t.outages()[0].open());
  EXPECT_EQ(t.outages()[0].downtime_us(99'999), 5000);
  EXPECT_EQ(t.last_downtime_us(99'999), 5000);

  // ttfc anchored at the outage *begin*: the client lost service at 10ms
  // and saw the first commit at 17ms.
  t.on_commit(17'000);
  EXPECT_EQ(t.last_time_to_first_commit_us(), 7000);
  EXPECT_EQ(t.outages()[0].time_to_first_commit_us, 7000);
  // Later commits in the same window do not move it.
  t.on_commit(30'000);
  EXPECT_EQ(t.last_time_to_first_commit_us(), 7000);
}

TEST(Availability, BackToBackOutages) {
  AvailabilityTimeline t;
  t.set_serving(true, 0);
  t.set_serving(false, 100);
  t.set_serving(true, 150);
  t.on_commit(160);
  t.set_serving(false, 200);  // second outage right after
  t.set_serving(true, 290);
  t.on_commit(300);
  ASSERT_EQ(t.outages().size(), 2u);
  EXPECT_EQ(t.outages()[0].downtime_us(999), 50);
  EXPECT_EQ(t.outages()[0].time_to_first_commit_us, 60);
  EXPECT_EQ(t.outages()[1].downtime_us(999), 90);
  EXPECT_EQ(t.outages()[1].time_to_first_commit_us, 100);
  EXPECT_EQ(t.total_downtime_us(999), 140);
  EXPECT_EQ(t.last_downtime_us(999), 90);
  EXPECT_EQ(t.last_time_to_first_commit_us(), 100);
}

TEST(Availability, RepeatedTransitionsAreIdempotent) {
  AvailabilityTimeline t;
  t.set_serving(true, 0);
  t.set_serving(true, 50);    // no-op
  t.set_serving(false, 100);
  t.set_serving(false, 120);  // no-op: the outage keeps its begin
  t.set_serving(true, 200);
  ASSERT_EQ(t.outages().size(), 1u);
  EXPECT_EQ(t.outages()[0].begin_us, 100);
  EXPECT_EQ(t.outages()[0].downtime_us(999), 100);
}

TEST(Availability, OutageOpenAtShutdownFreezesButStaysOpen) {
  AvailabilityTimeline t;
  t.set_serving(true, 0);
  t.set_serving(false, 1000);
  t.close(1500);  // node shut down mid-outage
  ASSERT_EQ(t.outages().size(), 1u);
  // Reported open (the node never served again) ...
  EXPECT_TRUE(t.outages()[0].open());
  // ... but accrual stops at the close stamp, whatever "now" is.
  EXPECT_EQ(t.total_downtime_us(50'000), 500);
  EXPECT_EQ(t.last_downtime_us(50'000), 500);
}

TEST(Availability, MirrorTenureIsNotAnOutage) {
  AvailabilityTimeline t;
  // First transition ever is to serving (e.g. a mirror promoted): the
  // preceding unknown window is not an outage.
  t.set_serving(true, 5000);
  EXPECT_TRUE(t.outages().empty());
  EXPECT_EQ(t.total_downtime_us(9000), 0);
  t.on_commit(5100);
  EXPECT_EQ(t.last_time_to_first_commit_us(), 100);
}

TEST(Availability, NoCommitMeansNoTtfc) {
  AvailabilityTimeline t;
  t.set_serving(true, 0);
  t.set_serving(false, 10);
  t.set_serving(true, 20);
  EXPECT_EQ(t.last_time_to_first_commit_us(), -1);
  EXPECT_EQ(t.outages()[0].time_to_first_commit_us, -1);
}

}  // namespace
}  // namespace rodain::obs
