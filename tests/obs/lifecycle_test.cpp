// StageClock accrual, observe_stages folding, and deadline-miss
// attribution (which stage exhausted the slack).
#include "rodain/obs/lifecycle.hpp"

#include <gtest/gtest.h>

#include "rodain/obs/obs.hpp"

namespace rodain::obs {
namespace {

class ObsEnabledScope {
 public:
  explicit ObsEnabledScope(bool on) : prev_(enabled()) {
    detail::g_enabled.store(on, std::memory_order_relaxed);
  }
  ~ObsEnabledScope() {
    detail::g_enabled.store(prev_, std::memory_order_relaxed);
  }

 private:
  bool prev_;
};

TEST(StageClock, AccruesIntoTheStageThatWasOpen) {
  StageClock c;
  EXPECT_FALSE(c.started());
  c.enter(Stage::kAdmit, 100);
  c.enter(Stage::kQueueWait, 150);   // kAdmit open for 50
  c.enter(Stage::kReadPhase, 400);   // kQueueWait open for 250
  c.enter(Stage::kValidate, 1000);   // kReadPhase open for 600
  EXPECT_TRUE(c.started());
  EXPECT_EQ(c.current(), Stage::kValidate);
  EXPECT_EQ(c.spent_us(Stage::kAdmit), 50);
  EXPECT_EQ(c.spent_us(Stage::kQueueWait), 250);
  EXPECT_EQ(c.spent_us(Stage::kReadPhase), 600);
  EXPECT_EQ(c.spent_us(Stage::kValidate), 0);  // still open
  EXPECT_EQ(c.spent_until_us(Stage::kValidate, 1200), 200);
  EXPECT_EQ(c.total_us(1200), 1100);
}

TEST(StageClock, RestartAccumulatesAcrossPasses) {
  StageClock c;
  c.enter(Stage::kAdmit, 0);
  c.enter(Stage::kReadPhase, 10);
  c.enter(Stage::kValidate, 110);   // first read pass: 100
  c.enter(Stage::kReadPhase, 120);  // validation failed, restart
  c.enter(Stage::kValidate, 200);   // second read pass: 80
  EXPECT_EQ(c.spent_us(Stage::kReadPhase), 180);
  EXPECT_EQ(c.spent_us(Stage::kValidate), 10);
}

TEST(StageClock, NonMonotonicStampsNeverAccrueNegative) {
  StageClock c;
  c.enter(Stage::kAdmit, 1000);
  c.enter(Stage::kQueueWait, 900);  // clock went backwards
  EXPECT_EQ(c.spent_us(Stage::kAdmit), 0);
  c.enter(Stage::kReadPhase, 950);
  EXPECT_EQ(c.spent_us(Stage::kQueueWait), 50);
}

TEST(Lifecycle, ChargeWalksStagesInCanonicalOrder) {
  ObsEnabledScope scope(true);
  StageClock c;
  c.enter(Stage::kAdmit, 0);
  c.enter(Stage::kQueueWait, 10);     // admit: 10
  c.enter(Stage::kReadPhase, 30);     // queue: 20
  c.enter(Stage::kValidate, 930);     // read: 900
  c.enter(Stage::kWritePhase, 940);   // validate: 10
  c.enter(Stage::kLogFlush, 950);     // write: 10
  c.enter(Stage::kDone, 1000);        // flush: 50

  // Budget 25us: admit(10) + queue(cum 30) crosses it -> queue wait.
  EXPECT_EQ(charge_deadline_miss(c, 25, 1000), Stage::kQueueWait);
  // Budget 500us: the read phase's 900us crosses it -> read phase.
  EXPECT_EQ(charge_deadline_miss(c, 500, 1000), Stage::kReadPhase);
  // Budget 945us: the write phase's cumulative 950us crosses it.
  EXPECT_EQ(charge_deadline_miss(c, 945, 1000), Stage::kWritePhase);
  // Budget 955us: crossing happens inside the log flush bucket.
  EXPECT_EQ(charge_deadline_miss(c, 955, 1000), Stage::kLogFlush);
}

TEST(Lifecycle, ChargeFallsBackToTheOpenStage) {
  ObsEnabledScope scope(true);
  StageClock c;
  c.enter(Stage::kAdmit, 0);
  c.enter(Stage::kShip, 5);
  // Buckets (5us total) never reach the budget: charge whatever is open.
  EXPECT_EQ(charge_deadline_miss(c, 1'000'000, 6), Stage::kShip);
}

TEST(Lifecycle, ByStageCountersSumToTotal) {
  ObsEnabledScope scope(true);
  // The registry is process-wide and other tests also charge misses, so
  // assert on deltas.
  std::uint64_t by_stage_before = 0;
  for (std::size_t i = 0; i < kStageCount; ++i) {
    by_stage_before +=
        metrics()
            .counter(std::string("deadline_miss.by_stage.") +
                     stage_name(static_cast<Stage>(i)))
            .value();
  }
  const std::uint64_t total_before =
      metrics().counter("deadline_miss.total").value();

  StageClock c;
  c.enter(Stage::kAdmit, 0);
  c.enter(Stage::kReadPhase, 10);
  c.enter(Stage::kDone, 500);
  charge_deadline_miss(c, 100, 500);
  charge_deadline_miss(c, 5, 500);
  charge_deadline_miss(c, 1'000'000, 500);

  std::uint64_t by_stage_after = 0;
  for (std::size_t i = 0; i < kStageCount; ++i) {
    by_stage_after +=
        metrics()
            .counter(std::string("deadline_miss.by_stage.") +
                     stage_name(static_cast<Stage>(i)))
            .value();
  }
  const std::uint64_t total_after =
      metrics().counter("deadline_miss.total").value();
  EXPECT_EQ(by_stage_after - by_stage_before, 3u);
  EXPECT_EQ(total_after - total_before, 3u);
}

TEST(Lifecycle, ObserveStagesFoldsBucketsIntoTimers) {
  ObsEnabledScope scope(true);
  Timer& read_timer = metrics().timer("lifecycle.stage.read_phase_us");
  const std::uint64_t before = read_timer.merged().count();
  StageClock c;
  c.enter(Stage::kAdmit, 0);
  c.enter(Stage::kReadPhase, 10);
  observe_stages(c, 300);  // read phase open slice: 290us
  EXPECT_EQ(read_timer.merged().count(), before + 1);
}

TEST(Lifecycle, ObserveStagesSkipsUnstartedClocks) {
  ObsEnabledScope scope(true);
  Timer& admit_timer = metrics().timer("lifecycle.stage.admit_us");
  const std::uint64_t before = admit_timer.merged().count();
  StageClock c;  // never entered
  observe_stages(c, 1000);
  EXPECT_EQ(admit_timer.merged().count(), before);
}

TEST(Lifecycle, StageNamesAreStable) {
  EXPECT_STREQ(stage_name(Stage::kAdmit), "admit");
  EXPECT_STREQ(stage_name(Stage::kQueueWait), "queue_wait");
  EXPECT_STREQ(stage_name(Stage::kMirrorAck), "mirror_ack");
  EXPECT_STREQ(stage_name(Stage::kDone), "done");
}

}  // namespace
}  // namespace rodain::obs
