// SpanTracer: ring semantics, overwrite-oldest, Chrome trace_event JSON
// shape, and the enable gating of ScopedSpan.
#include "rodain/obs/trace.hpp"

#include <gtest/gtest.h>

#include "rodain/obs/obs.hpp"

namespace rodain::obs {
namespace {

class ObsScope {
 public:
  ObsScope(bool on, bool tracing) : prev_on_(enabled()), prev_tr_(tracing_enabled()) {
    detail::g_enabled.store(on, std::memory_order_relaxed);
    detail::g_tracing.store(tracing, std::memory_order_relaxed);
  }
  ~ObsScope() {
    detail::g_enabled.store(prev_on_, std::memory_order_relaxed);
    detail::g_tracing.store(prev_tr_, std::memory_order_relaxed);
  }

 private:
  bool prev_on_;
  bool prev_tr_;
};

TEST(Trace, RecordAndSnapshot) {
  SpanTracer tracer(16);
  tracer.record_span(Phase::kExecute, 100, 150, 42);
  tracer.record_span(Phase::kValidate, 150, 160, 42);
  tracer.record_instant(Phase::kMirrorTakeover, 7);
  EXPECT_EQ(tracer.recorded(), 3u);
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].phase, Phase::kExecute);
  EXPECT_EQ(events[0].ts_us, 100);
  EXPECT_EQ(events[0].dur_us, 50);
  EXPECT_EQ(events[0].arg, 42u);
  EXPECT_EQ(events[1].phase, Phase::kValidate);
  EXPECT_EQ(events[2].phase, Phase::kMirrorTakeover);
  EXPECT_LT(events[2].dur_us, 0);  // instant marker
}

TEST(Trace, RingOverwritesOldest) {
  SpanTracer tracer(4);  // rounds to 4 slots
  for (std::uint64_t i = 0; i < 10; ++i) {
    tracer.record_span(Phase::kExecute, static_cast<std::int64_t>(i),
                       static_cast<std::int64_t>(i + 1), i);
  }
  EXPECT_EQ(tracer.recorded(), 10u);
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 4u);  // only the newest survive
  EXPECT_EQ(events.front().arg, 6u);
  EXPECT_EQ(events.back().arg, 9u);
}

TEST(Trace, CapacityRoundsToPowerOfTwo) {
  SpanTracer tracer(5);
  EXPECT_EQ(tracer.capacity(), 8u);
  tracer.reset(100);
  EXPECT_EQ(tracer.capacity(), 128u);
  EXPECT_EQ(tracer.recorded(), 0u);  // reset drops history
}

TEST(Trace, DumpJsonChromeShape) {
  SpanTracer tracer(16);
  tracer.record_span(Phase::kLogShip, 10, 30, 5);
  tracer.record_instant(Phase::kRejoin, 9);
  const std::string json = tracer.dump_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"log_ship\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":20"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rejoin\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"recorded\":2"), std::string::npos);
}

TEST(Trace, ScopedSpanGatedByFlags) {
  SpanTracer tracer(16);
  {
    ObsScope scope(false, true);
    ScopedSpan span(tracer, Phase::kExecute, 1);
  }
  EXPECT_EQ(tracer.recorded(), 0u);  // obs disabled: no event
  {
    ObsScope scope(true, false);
    ScopedSpan span(tracer, Phase::kExecute, 2);
  }
  EXPECT_EQ(tracer.recorded(), 0u);  // tracing off: no event
  {
    ObsScope scope(true, true);
    ScopedSpan span(tracer, Phase::kExecute, 3);
  }
  ASSERT_EQ(tracer.recorded(), 1u);
  EXPECT_EQ(tracer.snapshot()[0].arg, 3u);
}

TEST(Trace, WrapReportsDroppedEvents) {
  ObsScope scope(true, true);
  const std::uint64_t counter_before =
      metrics().counter("trace.events_dropped").value();
  SpanTracer tracer(8);
  EXPECT_EQ(tracer.dropped(), 0u);
  for (std::uint64_t i = 0; i < 8; ++i) {
    tracer.record_span(Phase::kExecute, 0, 1, i);
  }
  EXPECT_EQ(tracer.dropped(), 0u);  // exactly full: nothing lost yet
  for (std::uint64_t i = 8; i < 13; ++i) {
    tracer.record_span(Phase::kExecute, 0, 1, i);
  }
  EXPECT_EQ(tracer.recorded(), 13u);
  EXPECT_EQ(tracer.dropped(), 5u);
  // Wrap losses also land on the process-wide counter so dashboards can
  // see truncation without pulling a dump.
  EXPECT_EQ(metrics().counter("trace.events_dropped").value() - counter_before,
            5u);
  const std::string json = tracer.dump_json();
  EXPECT_NE(json.find("\"events_dropped\":5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"retained\":8"), std::string::npos);
  tracer.reset(8);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Trace, DumpJsonCarriesProcessAndThreadMetadata) {
  SpanTracer tracer(16);
  tracer.record_span(Phase::kApply, 5, 9, 1);
  const std::string json = tracer.dump_json();
  EXPECT_NE(json.find("\"name\":\"process_name\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"args\":{\"name\":\"rodain\"}"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
}

TEST(Trace, PhaseNamesCoverTaxonomy) {
  EXPECT_STREQ(phase_name(Phase::kExecute), "execute");
  EXPECT_STREQ(phase_name(Phase::kValidate), "validate");
  EXPECT_STREQ(phase_name(Phase::kWritePhase), "write_phase");
  EXPECT_STREQ(phase_name(Phase::kLogShip), "log_ship");
  EXPECT_STREQ(phase_name(Phase::kMirrorAck), "mirror_ack");
  EXPECT_STREQ(phase_name(Phase::kReorder), "reorder");
  EXPECT_STREQ(phase_name(Phase::kApply), "apply");
  EXPECT_STREQ(phase_name(Phase::kPrimaryFailure), "primary_failure");
  EXPECT_STREQ(phase_name(Phase::kMirrorTakeover), "mirror_takeover");
}

TEST(Trace, GlobalTracerInitAppliesCapacity) {
  ObsConfig config;
  config.enabled = false;  // leave the process flag off for other tests
  config.trace_capacity = 64;
  init(config);
  EXPECT_EQ(tracer().capacity(), 64u);
  EXPECT_FALSE(enabled());
}

}  // namespace
}  // namespace rodain::obs
