// MetricsRegistry: enable gating, sharded counters/timers, expositions,
// and time-series sampling.
#include "rodain/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "rodain/obs/obs.hpp"

namespace rodain::obs {
namespace {

/// Flip the global obs flag for one test and restore it after.
class ObsEnabledScope {
 public:
  explicit ObsEnabledScope(bool on) : prev_(enabled()) {
    detail::g_enabled.store(on, std::memory_order_relaxed);
  }
  ~ObsEnabledScope() {
    detail::g_enabled.store(prev_, std::memory_order_relaxed);
  }

 private:
  bool prev_;
};

TEST(Metrics, MutatorsAreNoOpsWhenDisabled) {
  ObsEnabledScope scope(false);
  MetricsRegistry reg;
  Counter& c = reg.counter("test.disabled");
  Gauge& g = reg.gauge("test.disabled_gauge");
  Timer& t = reg.timer("test.disabled_timer");
  c.inc();
  g.set(5.0);
  t.observe(Duration::millis(1));
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(t.merged().count(), 0u);
}

TEST(Metrics, CounterAccumulatesAcrossThreads) {
  ObsEnabledScope scope(true);
  MetricsRegistry reg;
  Counter& c = reg.counter("test.threads");
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&c] {
      for (int j = 0; j < 10000; ++j) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), 40000u);
}

TEST(Metrics, LookupReturnsStableReference) {
  ObsEnabledScope scope(true);
  MetricsRegistry reg;
  Counter& a = reg.counter("stable.name");
  a.inc(3);
  Counter& b = reg.counter("stable.name");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 3u);
}

TEST(Metrics, GaugeSetAndAdd) {
  ObsEnabledScope scope(true);
  MetricsRegistry reg;
  Gauge& g = reg.gauge("test.gauge");
  g.set(2.5);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
}

TEST(Metrics, TimerMergesShards) {
  ObsEnabledScope scope(true);
  MetricsRegistry reg;
  Timer& t = reg.timer("test.timer");
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&t, i] {
      for (int j = 0; j < 100; ++j) t.observe(Duration::millis(1 + i));
    });
  }
  for (auto& th : threads) th.join();
  const LatencyHistogram merged = t.merged();
  EXPECT_EQ(merged.count(), 400u);
  EXPECT_EQ(merged.max_value(), Duration::millis(4));
}

TEST(Metrics, RenderTextPrometheusShape) {
  ObsEnabledScope scope(true);
  MetricsRegistry reg;
  reg.counter("engine.commits").inc(7);
  reg.gauge("mirror.reorder.staged").set(3.0);
  reg.timer("repl.commit_rtt_us").observe(Duration::millis(2));
  const std::string text = reg.render_text();
  EXPECT_NE(text.find("rodain_engine_commits 7"), std::string::npos) << text;
  EXPECT_NE(text.find("rodain_mirror_reorder_staged 3"), std::string::npos);
  EXPECT_NE(text.find("rodain_repl_commit_rtt_us_count 1"), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
  EXPECT_NE(text.find("# TYPE rodain_engine_commits counter"),
            std::string::npos);
}

TEST(Metrics, RenderJsonContainsSections) {
  ObsEnabledScope scope(true);
  MetricsRegistry reg;
  reg.counter("a.b").inc(2);
  reg.gauge("c.d").set(1.5);
  const std::string json = reg.render_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"a.b\":2"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"timers\""), std::string::npos);
}

TEST(Metrics, SampleIntoProducesRows) {
  ObsEnabledScope scope(true);
  MetricsRegistry reg;
  Counter& c = reg.counter("s.count");
  Gauge& g = reg.gauge("s.gauge");
  TimeSeries series;
  c.inc(5);
  g.set(1.0);
  reg.sample_into(series, 1000);
  c.inc(5);
  g.set(2.0);
  reg.sample_into(series, 2000);
  ASSERT_EQ(series.row_count(), 2u);
  const std::size_t col_c = series.column("s.count");
  const std::size_t col_g = series.column("s.gauge");
  EXPECT_EQ(series.timestamp(0), 1000);
  EXPECT_EQ(series.at(0, col_c), 5.0);
  EXPECT_EQ(series.at(1, col_c), 10.0);
  EXPECT_EQ(series.at(1, col_g), 2.0);
}

TEST(Metrics, TimeSeriesExports) {
  TimeSeries s;
  const std::size_t a = s.column("alpha");
  s.add_row(10);
  s.set(a, 1.0);
  const std::size_t b = s.column("beta");  // registered after first row
  s.add_row(20);
  s.set(a, 2.0);
  s.set(b, 3.0);
  EXPECT_EQ(s.at(0, b), 0.0);  // missing leading cell pads to 0
  const std::string csv = s.to_csv();
  EXPECT_NE(csv.find("t_us,alpha,beta"), std::string::npos) << csv;
  EXPECT_NE(csv.find("20,2,3"), std::string::npos) << csv;
  const std::string json = s.to_json();
  EXPECT_NE(json.find("\"columns\""), std::string::npos);
  EXPECT_NE(json.find("\"rows\""), std::string::npos);
}

TEST(Metrics, HostileNamesAreSanitizedForPrometheus) {
  ObsEnabledScope scope(true);
  MetricsRegistry reg;
  // Names a careless caller could produce: spaces, quotes, unicode, a
  // leading digit. Prometheus allows only [a-zA-Z0-9_:] (we use '_').
  reg.counter("weird name/with spaces").inc(1);
  reg.counter("quote\"brace{}newline\n").inc(2);
  reg.counter("7starts.with.digit").inc(3);
  reg.gauge("über-gauge").set(4.0);
  const std::string text = reg.render_text();
  EXPECT_NE(text.find("rodain_weird_name_with_spaces 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("rodain_quote_brace__newline_ 2"), std::string::npos);
  // The rodain_ prefix keeps a leading digit legal.
  EXPECT_NE(text.find("rodain_7starts_with_digit 3"), std::string::npos);
  for (const char c : text) {
    EXPECT_TRUE(c == '\n' || (c >= 0x20 && c < 0x7f))
        << "unsanitized byte in exposition: " << static_cast<int>(c);
  }
}

TEST(Metrics, HostileNamesAreEscapedInJson) {
  ObsEnabledScope scope(true);
  MetricsRegistry reg;
  reg.counter("quote\"and\\backslash").inc(1);
  reg.gauge("new\nline").set(2.0);
  reg.timer("tab\there").observe(Duration::millis(1));
  const std::string json = reg.render_json();
  EXPECT_NE(json.find("\"quote\\\"and\\\\backslash\":1"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"new\\nline\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"tab\\there\""), std::string::npos) << json;
  // No raw control characters may survive into the document.
  for (const char c : json) {
    EXPECT_TRUE(static_cast<unsigned char>(c) >= 0x20)
        << "raw control char in JSON: " << static_cast<int>(c);
  }
}

TEST(Metrics, GlobalRegistryAccessor) {
  // The process-wide singleton exists and hands out stable references.
  Counter& c1 = metrics().counter("global.test_counter");
  Counter& c2 = metrics().counter("global.test_counter");
  EXPECT_EQ(&c1, &c2);
}

}  // namespace
}  // namespace rodain::obs
