// Unit-level tests of the simulated node driver: admission, deadlines,
// displacement, soft vs firm semantics, and the non-RT reservation.
#include "rodain/simdb/sim_node.hpp"

#include <gtest/gtest.h>

namespace rodain::simdb {
namespace {

using namespace rodain::literals;

storage::Value zeros8() {
  return storage::Value{std::string_view{"\0\0\0\0\0\0\0\0", 8}};
}

struct NodeRig {
  sim::Simulation sim;
  SimNodeConfig config;
  std::unique_ptr<SimNode> node;
  std::vector<TxnResult> results;

  explicit NodeRig(std::function<void(SimNodeConfig&)> tweak = {}) {
    config.disk_enabled = false;
    config.engine.costs = engine::CostModel::zero();
    config.engine.costs.per_read = 100_us;
    config.engine.costs.per_update = 100_us;
    if (tweak) tweak(config);
    node = std::make_unique<SimNode>(sim, "t", 1, config);
    for (ObjectId oid = 1; oid <= 32; ++oid) node->store().upsert(oid, zeros8(), 0);
    node->start_as_primary(LogMode::kOff);
  }

  void submit(txn::TxnProgram p) {
    node->submit(std::move(p), [this](const TxnResult& r) { results.push_back(r); });
  }

  static txn::TxnProgram reader(ObjectId oid, Duration deadline,
                                Criticality crit = Criticality::kFirm) {
    txn::TxnProgram p;
    p.read(oid);
    p.with_deadline(deadline);
    p.with_criticality(crit);
    return p;
  }
};

TEST(SimNode, CommitsAndReportsLatency) {
  NodeRig rig;
  rig.submit(NodeRig::reader(1, 50_ms));
  rig.sim.run();
  ASSERT_EQ(rig.results.size(), 1u);
  EXPECT_EQ(rig.results[0].outcome, TxnOutcome::kCommitted);
  EXPECT_GT(rig.results[0].finish.us, 0);
  EXPECT_EQ(rig.node->counters().committed, 1u);
}

TEST(SimNode, FirmDeadlineExpiryAborts) {
  NodeRig rig([](SimNodeConfig& c) {
    c.engine.costs.per_read = Duration::millis(20);  // too slow for 10 ms
  });
  rig.submit(NodeRig::reader(1, 10_ms, Criticality::kFirm));
  rig.sim.run();
  ASSERT_EQ(rig.results.size(), 1u);
  EXPECT_EQ(rig.results[0].outcome, TxnOutcome::kMissedDeadline);
  EXPECT_EQ(rig.node->counters().missed_deadline, 1u);
}

TEST(SimNode, SoftDeadlineCompletesLate) {
  NodeRig rig([](SimNodeConfig& c) {
    c.engine.costs.per_read = Duration::millis(20);
  });
  rig.submit(NodeRig::reader(1, 10_ms, Criticality::kSoft));
  rig.sim.run();
  ASSERT_EQ(rig.results.size(), 1u);
  // Soft deadline: the transaction commits, late.
  EXPECT_EQ(rig.results[0].outcome, TxnOutcome::kCommitted);
  EXPECT_TRUE(rig.results[0].late);
  // Late completion still counts against the miss statistics.
  EXPECT_EQ(rig.node->counters().missed_deadline, 1u);
  EXPECT_EQ(rig.node->counters().committed, 0u);
}

TEST(SimNode, EdfOrdersExecution) {
  NodeRig rig;
  // Three transactions submitted together: later-submitted but
  // earlier-deadline work finishes first.
  rig.submit(NodeRig::reader(1, 90_ms));
  rig.submit(NodeRig::reader(2, 50_ms));
  rig.submit(NodeRig::reader(3, 10_ms));
  rig.sim.run();
  ASSERT_EQ(rig.results.size(), 3u);
  // Completion order follows deadlines: oid 3, 2, 1 (results arrive in
  // completion order; identify by deadline-implied latency ordering).
  EXPECT_LT(rig.results[0].finish, rig.results[1].finish);
  EXPECT_LT(rig.results[1].finish, rig.results[2].finish);
}

TEST(SimNode, AdmissionCapRejectsLowPriorityArrival) {
  NodeRig rig([](SimNodeConfig& c) {
    c.overload.max_active = 2;
    c.overload.miss_feedback = false;
    c.engine.costs.per_read = Duration::millis(5);
  });
  rig.submit(NodeRig::reader(1, 100_ms));
  rig.submit(NodeRig::reader(2, 100_ms));
  rig.submit(NodeRig::reader(3, 200_ms));  // cap reached: rejected
  rig.sim.run();
  ASSERT_EQ(rig.results.size(), 3u);
  EXPECT_EQ(rig.node->counters().overload_rejected, 1u);
  EXPECT_EQ(rig.node->counters().committed, 2u);
}

TEST(SimNode, DisplacementShedsLowerPriorityActive) {
  NodeRig rig([](SimNodeConfig& c) {
    c.overload.max_active = 2;
    c.overload.miss_feedback = false;
    c.overload.displace_on_admission = true;
    c.engine.costs.per_read = Duration::millis(5);
  });
  rig.submit(NodeRig::reader(1, 500_ms));  // low priority (late deadline)
  rig.submit(NodeRig::reader(2, 400_ms));
  rig.submit(NodeRig::reader(3, 20_ms));  // urgent: displaces #1
  rig.sim.run();
  ASSERT_EQ(rig.results.size(), 3u);
  EXPECT_EQ(rig.node->counters().overload_rejected, 1u);
  EXPECT_EQ(rig.node->counters().committed, 2u);
  // The urgent transaction committed; the victim was a 500 ms one.
  bool urgent_committed = false;
  for (const TxnResult& r : rig.results) {
    if (r.outcome == TxnOutcome::kCommitted && (r.finish - r.arrival) < 20_ms) {
      urgent_committed = true;
    }
  }
  EXPECT_TRUE(urgent_committed);
}

TimePoint run_reservation_scenario(double fraction, TimePoint& last_finish) {
  NodeRig rig([&](SimNodeConfig& c) {
    c.nonrt_fraction = fraction;
    c.overload.max_active = 1000;
    c.engine.costs.per_read = Duration::millis(2);
  });
  // Continuous firm load with one non-RT transaction in the middle.
  TimePoint nonrt_finish{};
  for (int i = 0; i < 50; ++i) rig.submit(NodeRig::reader(1 + i % 32, 500_ms));
  rig.node->submit(NodeRig::reader(1, 0_ms, Criticality::kNonRealTime),
                   [&](const TxnResult& r) {
                     EXPECT_EQ(r.outcome, TxnOutcome::kCommitted);
                     nonrt_finish = r.finish;
                   });
  for (int i = 0; i < 50; ++i) rig.submit(NodeRig::reader(1 + i % 32, 500_ms));
  rig.sim.run();
  EXPECT_EQ(rig.results.size(), 100u);
  last_finish = TimePoint::origin();
  for (const TxnResult& r : rig.results) {
    EXPECT_EQ(r.outcome, TxnOutcome::kCommitted);
    last_finish = std::max(last_finish, r.finish);
  }
  return nonrt_finish;
}

TEST(SimNode, NonRtReservationPreventsStarvation) {
  // Without the reservation the non-RT transaction runs only when no
  // real-time work is ready: it finishes dead last.
  TimePoint last_off{};
  const TimePoint starved = run_reservation_scenario(0.0, last_off);
  EXPECT_GE(starved, last_off);

  // With a 20% demand-based reservation it is served amid the firm load
  // (paper §2): strictly earlier than the tail of the schedule.
  TimePoint last_on{};
  const TimePoint served = run_reservation_scenario(0.2, last_on);
  EXPECT_LT(served, last_on);
  EXPECT_LT(served, starved);
}

TEST(SimNode, SubmitWhileDownIsRejected) {
  sim::Simulation sim;
  SimNodeConfig config;
  config.disk_enabled = false;
  SimNode node(sim, "down", 1, config);
  TxnResult result;
  node.submit(NodeRig::reader(1, 50_ms),
              [&](const TxnResult& r) { result = r; });
  sim.run();
  EXPECT_EQ(result.outcome, TxnOutcome::kSystemAborted);
}

// ---- parallel commit opt-in (DESIGN.md §13) ------------------------------

// The simulated driver is single-threaded, so the parallel commit path must
// be a pure refactor there: same commits, same per-object totals, and the
// same virtual finish time as the serial path for an identical workload.
TEST(SimNode, ParallelCommitOptInMatchesSerialOutcomeAndCost) {
  auto run = [](bool parallel) {
    NodeRig rig([&](SimNodeConfig& c) {
      c.engine.parallel_commit = parallel;
      c.overload.max_active = 1000;
    });
    for (int i = 0; i < 60; ++i) {
      txn::TxnProgram p;
      p.read(1);
      p.add_to_field(static_cast<ObjectId>(1 + i % 8), 0, 1);
      p.with_deadline(500_ms);
      rig.submit(std::move(p));
    }
    rig.sim.run();
    std::uint64_t total = 0;
    rig.node->store().for_each([&](ObjectId, const storage::ObjectRecord& rec) {
      total += rec.value.read_u64(0);
    });
    return std::tuple{rig.node->counters().committed, total, rig.sim.now()};
  };
  const auto serial = run(false);
  const auto parallel = run(true);
  EXPECT_EQ(std::get<0>(serial), 60u);
  EXPECT_EQ(std::get<0>(parallel), std::get<0>(serial));
  EXPECT_EQ(std::get<1>(parallel), std::get<1>(serial));
  EXPECT_EQ(std::get<2>(parallel).us, std::get<2>(serial).us);
}

// ---- restart_from_disk (DESIGN.md §12) -----------------------------------

struct RestartRig {
  sim::Simulation sim;
  SimNodeConfig config;
  std::unique_ptr<SimNode> node;

  explicit RestartRig(bool instant) {
    config.engine.costs = engine::CostModel::zero();
    config.instant_recovery = instant;
    node = std::make_unique<SimNode>(sim, "r", 1, config);
    for (ObjectId oid = 1; oid <= 32; ++oid) {
      node->store().upsert(oid, zeros8(), 0);
    }
    node->start_as_primary(LogMode::kDirectDisk);
    for (int i = 0; i < 40; ++i) {
      txn::TxnProgram p;
      p.add_to_field(static_cast<ObjectId>(1 + i % 32), 0, 1);
      p.with_deadline(500_ms);
      node->submit(std::move(p), [](const TxnResult&) {});
    }
    sim.run();  // every commit hits the simulated disk
    node->fail();
  }

  std::uint64_t store_total() {
    std::uint64_t total = 0;
    node->store().for_each([&](ObjectId, const storage::ObjectRecord& rec) {
      total += rec.value.read_u64(0);
    });
    return total;
  }
};

TEST(SimNode, RestartFromDiskInstantServesAfterActivation) {
  RestartRig rig(/*instant=*/true);
  const auto stats = rig.node->restart_from_disk(LogMode::kDirectDisk);
  EXPECT_TRUE(stats.instant);
  EXPECT_EQ(stats.replayable_txns, 40u);
  EXPECT_GT(stats.deferred_txns, 0u);
  // Serving is gated only on the activation delay — not on the log size.
  EXPECT_EQ(stats.time_to_serve.us, rig.config.takeover_activation.us);
  rig.sim.run();  // activation fires, then the sweeper drains the index
  EXPECT_TRUE(rig.node->serving());
  EXPECT_FALSE(rig.node->recovering());
  ASSERT_NE(rig.node->recovery(), nullptr);
  EXPECT_EQ(rig.node->recovery()->background_applied() +
                rig.node->recovery()->ondemand_applied(),
            rig.node->recovery()->deferred_writes());
  EXPECT_EQ(rig.store_total(), 40u);
}

TEST(SimNode, RestartFromDiskFullReplayDelaysServing) {
  RestartRig rig(/*instant=*/false);
  const auto stats = rig.node->restart_from_disk(LogMode::kDirectDisk);
  EXPECT_FALSE(stats.instant);
  EXPECT_EQ(stats.replayable_txns, 40u);
  // The classical restart pays for every logged transaction before serving.
  EXPECT_EQ(stats.time_to_serve.us,
            rig.config.takeover_activation.us +
                rig.config.replay_cost_per_txn.us * 40);
  EXPECT_FALSE(rig.node->serving());
  rig.sim.run();
  EXPECT_TRUE(rig.node->serving());
  EXPECT_EQ(rig.store_total(), 40u);
}

}  // namespace
}  // namespace rodain::simdb
