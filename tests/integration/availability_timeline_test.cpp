// Scripted role-flip/takeover/restart scenarios in virtual time: the
// cluster availability timeline must report exact downtime and
// time-to-first-commit figures, and an overloaded run must charge every
// deadline miss to exactly one lifecycle stage.
#include <gtest/gtest.h>

#include "rodain/exp/session.hpp"
#include "rodain/obs/lifecycle.hpp"
#include "rodain/obs/obs.hpp"
#include "rodain/simdb/sim_cluster.hpp"
#include "rodain/workload/calibration.hpp"

namespace rodain {
namespace {

using namespace rodain::literals;
using workload::PaperSetup;

class ObsEnabledScope {
 public:
  explicit ObsEnabledScope(bool on) : prev_(obs::enabled()) {
    obs::detail::g_enabled.store(on, std::memory_order_relaxed);
  }
  ~ObsEnabledScope() {
    obs::detail::g_enabled.store(prev_, std::memory_order_relaxed);
  }

 private:
  bool prev_;
};

/// Two-node rig with a small database and a 50 ms probe cadence: each probe
/// is one committed write whose virtual completion time is recorded, so the
/// tests can compute exact time-to-first-commit figures.
struct ClusterRig {
  sim::Simulation sim;
  workload::DatabaseConfig db;
  std::unique_ptr<simdb::SimCluster> cluster;
  std::vector<std::int64_t> commit_times_us;

  ClusterRig() {
    auto config = PaperSetup::two_node(true);
    config.node.store_capacity_hint = 200;
    db.num_objects = 200;
    cluster = std::make_unique<simdb::SimCluster>(sim, config);
    cluster->populate([&](storage::ObjectStore& s, storage::BPlusTree& i) {
      workload::load_database(db, s, i);
    });
    cluster->start();
  }

  void probe_every(Duration period, TimePoint until) {
    for (TimePoint t = TimePoint::origin() + period; t < until; t += period) {
      sim.schedule_at(t, [this] {
        txn::TxnProgram p;
        p.add_to_field(workload::oid_for(7), workload::kCounterOffset, 1);
        p.with_deadline(150_ms);
        cluster->submit(std::move(p), [this](const simdb::TxnResult& r) {
          if (r.outcome == TxnOutcome::kCommitted) {
            commit_times_us.push_back(sim.now().us);
          }
        });
      });
    }
  }

  /// First probe commit at or after `t_us`; -1 when none.
  [[nodiscard]] std::int64_t first_commit_after(std::int64_t t_us) const {
    for (const std::int64_t c : commit_times_us) {
      if (c >= t_us) return c;
    }
    return -1;
  }
};

TEST(AvailabilityTimeline, FailoverDowntimeAndTtfcAreExact) {
  ClusterRig rig;
  rig.probe_every(50_ms, TimePoint{10'000'000});
  constexpr std::int64_t kFailUs = 2'000'000;
  rig.sim.schedule_at(TimePoint{kFailUs},
                      [&] { rig.cluster->fail_node(rig.cluster->node_a()); });
  rig.sim.run_until(TimePoint{12'000'000});

  const obs::AvailabilityTimeline& avail = rig.cluster->availability();
  ASSERT_EQ(avail.outages().size(), 1u);
  const obs::AvailabilityTimeline::Outage& outage = avail.outages()[0];
  // The outage opens at the exact virtual instant the primary died.
  EXPECT_EQ(outage.begin_us, kFailUs);
  EXPECT_FALSE(outage.open());
  // Downtime is the failover gap the cluster measured: identical numbers.
  ASSERT_TRUE(rig.cluster->last_failover_gap().has_value());
  EXPECT_EQ(outage.downtime_us(0), rig.cluster->last_failover_gap()->us);
  EXPECT_EQ(avail.total_downtime_us(rig.sim.now().us),
            rig.cluster->total_downtime().us);
  // Detection (watchdog) + activation bound the outage well under 400 ms.
  EXPECT_GT(outage.downtime_us(0), 0);
  EXPECT_LT(outage.downtime_us(0), 400'000);
  // Time-to-first-commit: exactly the gap from the failure instant to the
  // first probe the takeover primary committed.
  const std::int64_t first = rig.first_commit_after(kFailUs);
  ASSERT_GE(first, 0);
  EXPECT_EQ(outage.time_to_first_commit_us, first - kFailUs);
  EXPECT_EQ(avail.last_time_to_first_commit_us(), first - kFailUs);
  EXPECT_GE(outage.time_to_first_commit_us, outage.downtime_us(0));
}

TEST(AvailabilityTimeline, BackToBackOutagesAndOpenOutageAtEnd) {
  ClusterRig rig;
  rig.probe_every(50_ms, TimePoint{11'000'000});
  // Script: A dies at 2 s (B takes over), A rejoins at 4 s, B dies at 6 s
  // (A takes over again), A dies at 8 s with no survivor — the third
  // outage never closes.
  rig.sim.schedule_at(TimePoint{2'000'000},
                      [&] { rig.cluster->fail_node(rig.cluster->node_a()); });
  rig.sim.schedule_at(TimePoint{4'000'000}, [&] {
    rig.cluster->recover_node(rig.cluster->node_a());
  });
  rig.sim.schedule_at(TimePoint{6'000'000},
                      [&] { rig.cluster->fail_node(rig.cluster->node_b()); });
  rig.sim.schedule_at(TimePoint{8'000'000},
                      [&] { rig.cluster->fail_node(rig.cluster->node_a()); });
  rig.sim.run_until(TimePoint{12'000'000});

  const obs::AvailabilityTimeline& avail = rig.cluster->availability();
  ASSERT_EQ(avail.outages().size(), 3u);
  const auto& o1 = avail.outages()[0];
  const auto& o2 = avail.outages()[1];
  const auto& o3 = avail.outages()[2];
  EXPECT_EQ(o1.begin_us, 2'000'000);
  EXPECT_EQ(o2.begin_us, 6'000'000);
  EXPECT_EQ(o3.begin_us, 8'000'000);
  EXPECT_FALSE(o1.open());
  EXPECT_FALSE(o2.open());
  EXPECT_TRUE(o3.open());
  EXPECT_FALSE(avail.serving());

  // Each closed outage has an exact ttfc anchored at its begin instant.
  const std::int64_t c1 = rig.first_commit_after(2'000'000);
  const std::int64_t c2 = rig.first_commit_after(6'000'000);
  ASSERT_GE(c1, 0);
  ASSERT_GE(c2, 0);
  EXPECT_EQ(o1.time_to_first_commit_us, c1 - 2'000'000);
  EXPECT_EQ(o2.time_to_first_commit_us, c2 - 6'000'000);
  // The open outage has no commit: ttfc unset, downtime still accruing.
  EXPECT_EQ(o3.time_to_first_commit_us, -1);
  const std::int64_t now = rig.sim.now().us;
  EXPECT_EQ(o3.downtime_us(now), now - 8'000'000);
  EXPECT_EQ(avail.total_downtime_us(now),
            o1.downtime_us(now) + o2.downtime_us(now) + o3.downtime_us(now));
  EXPECT_EQ(avail.last_downtime_us(now), o3.downtime_us(now));
}

TEST(DeadlineMissAttribution, ByStageCountersSumToSessionMisses) {
  ObsEnabledScope scope(true);

  auto stage_sum = [] {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < obs::kStageCount; ++i) {
      sum += obs::metrics()
                 .counter(std::string("deadline_miss.by_stage.") +
                          obs::stage_name(static_cast<obs::Stage>(i)))
                 .value();
    }
    return sum;
  };
  const std::uint64_t by_stage_before = stage_sum();
  const std::uint64_t total_before =
      obs::metrics().counter("deadline_miss.total").value();

  // A lone direct-disk node at 200 txn/s saturates its disk: a large share
  // of the load misses deadlines (same setup as SingleNodeDiskSaturatesEarly).
  exp::SessionConfig c;
  c.cluster = PaperSetup::single_node(true);
  c.database = PaperSetup::database();
  c.database.num_objects = 2000;
  c.cluster.node.store_capacity_hint = 2000;
  c.workload = PaperSetup::workload(0.5);
  c.arrival_rate_tps = 200;
  c.txn_count = 1000;
  c.seed = 7;
  auto result = exp::run_session(c);
  ASSERT_GT(result.counters.missed_deadline, 0u);

  // Every miss is charged to exactly one stage: the by-stage counters and
  // the total advance in lockstep with the session's miss count.
  const std::uint64_t by_stage_delta = stage_sum() - by_stage_before;
  const std::uint64_t total_delta =
      obs::metrics().counter("deadline_miss.total").value() - total_before;
  EXPECT_EQ(by_stage_delta, result.counters.missed_deadline);
  EXPECT_EQ(total_delta, result.counters.missed_deadline);
}

}  // namespace
}  // namespace rodain
