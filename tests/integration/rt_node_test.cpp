// End-to-end tests of the real-time runtime: real threads, real TCP
// between a primary and a mirror in one process.
#include <gtest/gtest.h>

#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <thread>

#include "rodain/log/recovery.hpp"

#include "rodain/db/database.hpp"
#include "rodain/net/tcp.hpp"
#include "rodain/obs/obs.hpp"
#include "rodain/rt/node.hpp"
#include "rodain/workload/number_translation.hpp"

namespace rodain {
namespace {

using namespace rodain::literals;

storage::Value val(std::string_view s) { return storage::Value{s}; }
storage::Value zeros8() { return storage::Value{std::string_view{"\0\0\0\0\0\0\0\0", 8}}; }

TEST(RtNode, SingleNodeCommitAndRead) {
  rt::NodeConfig config;
  rt::Node node(config, "solo");
  node.store().upsert(1, val("initial"), 0);
  node.start_primary(LogMode::kOff);

  txn::TxnProgram p;
  p.set_value(1, val("updated"));
  p.relative_deadline = 5_s;
  auto info = node.execute(std::move(p));
  EXPECT_EQ(info.outcome, TxnOutcome::kCommitted);

  auto value = node.get(1);
  ASSERT_TRUE(value.is_ok());
  EXPECT_EQ(value.value(), val("updated"));
  EXPECT_EQ(node.counters().committed, 2u);  // the update + the read
  node.stop();
}

TEST(RtNode, CounterIncrementsAreAtomic) {
  rt::NodeConfig config;
  config.worker_threads = 2;
  config.overload.max_active = 10000;  // admit the whole burst
  rt::Node node(config, "solo");
  node.store().upsert(1, zeros8(), 0);
  node.start_primary(LogMode::kOff);

  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  const int kTxns = 200;
  for (int i = 0; i < kTxns; ++i) {
    txn::TxnProgram p;
    p.add_to_field(1, 0, 1);
    p.relative_deadline = 5_s;
    node.submit(std::move(p), [&](const rt::CommitInfo& info) {
      EXPECT_EQ(info.outcome, TxnOutcome::kCommitted);
      std::lock_guard lock(mu);
      ++done;
      cv.notify_all();
    });
  }
  std::unique_lock lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                          [&] { return done == kTxns; }));
  lock.unlock();

  auto value = node.get(1);
  ASSERT_TRUE(value.is_ok());
  EXPECT_EQ(value.value().read_u64(0), static_cast<std::uint64_t>(kTxns));
  node.stop();
}

TEST(RtNode, DirectDiskLoggingSurvivesRestart) {
  const std::string log_path =
      (std::filesystem::temp_directory_path() / "rodain_rt_restart.log").string();
  std::filesystem::remove(log_path);
  {
    rt::NodeConfig config;
    config.log_path = log_path;
    rt::Node node(config, "durable");
    node.store().upsert(1, zeros8(), 0);
    node.start_primary(LogMode::kDirectDisk);
    txn::TxnProgram p;
    p.add_to_field(1, 0, 42);
    p.relative_deadline = 5_s;
    ASSERT_EQ(node.execute(std::move(p)).outcome, TxnOutcome::kCommitted);
    node.stop();
  }
  // Recover from the log alone.
  storage::ObjectStore recovered;
  recovered.upsert(1, zeros8(), 0);
  auto stats = log::recover_from_file(log_path, recovered);
  ASSERT_TRUE(stats.is_ok()) << stats.status().to_string();
  EXPECT_EQ(stats.value().committed_applied, 1u);
  EXPECT_EQ(recovered.find(1)->value.read_u64(0), 42u);
  std::filesystem::remove(log_path);
}

struct TcpPair {
  std::unique_ptr<net::TcpServer> server;
  std::unique_ptr<net::TcpChannel> client_end;
  std::unique_ptr<net::TcpChannel> server_end;

  static TcpPair make() {
    TcpPair p;
    std::mutex mu;
    std::condition_variable cv;
    auto server = net::TcpServer::listen(0, [&](std::unique_ptr<net::TcpChannel> ch) {
      std::lock_guard lock(mu);
      p.server_end = std::move(ch);
      cv.notify_all();
    });
    p.server = std::move(server).value();
    p.client_end =
        std::move(net::TcpChannel::connect("127.0.0.1", p.server->port(), 2_s)).value();
    std::unique_lock lock(mu);
    cv.wait_for(lock, std::chrono::seconds(2), [&] { return p.server_end != nullptr; });
    return p;
  }
};

TEST(RtNode, TwoNodeLogShippingOverTcp) {
  auto tcp = TcpPair::make();

  rt::NodeConfig config;
  rt::Node primary(config, "primary");
  rt::Node mirror(config, "mirror");
  for (ObjectId oid = 1; oid <= 100; ++oid) {
    primary.store().upsert(oid, zeros8(), 0);
    mirror.store().upsert(oid, zeros8(), 0);
  }

  mirror.start_mirror(*tcp.server_end);
  primary.start_primary(LogMode::kMirror, tcp.client_end.get());
  tcp.server_end->start();
  tcp.client_end->start();

  for (int i = 0; i < 50; ++i) {
    txn::TxnProgram p;
    p.add_to_field(static_cast<ObjectId>(1 + i % 100), 0, 1);
    p.relative_deadline = 5_s;
    ASSERT_EQ(primary.execute(std::move(p)).outcome, TxnOutcome::kCommitted)
        << i;
  }
  EXPECT_EQ(primary.counters().committed, 50u);

  // The mirror applied everything the primary committed.
  for (int waited = 0; waited < 100 && mirror.mirror_applied_seq() < 50; ++waited) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(mirror.mirror_applied_seq(), 50u);
  std::uint64_t total = 0;
  mirror.store().for_each([&](ObjectId, const storage::ObjectRecord& rec) {
    total += rec.value.read_u64(0);
  });
  EXPECT_EQ(total, 50u);

  primary.stop();
  mirror.stop();
}

TEST(RtNode, MirrorTakesOverWhenPrimaryStops) {
  auto tcp = TcpPair::make();

  rt::NodeConfig config;
  config.watchdog_timeout = 300_ms;
  config.heartbeat_interval = 50_ms;
  rt::Node primary(config, "primary");
  rt::Node mirror(config, "mirror");
  primary.store().upsert(1, zeros8(), 0);
  mirror.store().upsert(1, zeros8(), 0);

  mirror.start_mirror(*tcp.server_end);
  primary.start_primary(LogMode::kMirror, tcp.client_end.get());
  tcp.server_end->start();
  tcp.client_end->start();

  txn::TxnProgram p;
  p.add_to_field(1, 0, 7);
  p.relative_deadline = 5_s;
  ASSERT_EQ(primary.execute(std::move(p)).outcome, TxnOutcome::kCommitted);

  // Primary dies; the TCP link drops; the mirror's watchdog fires.
  primary.stop();
  tcp.client_end->close();

  for (int waited = 0; waited < 300 && !mirror.serving(); ++waited) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(mirror.serving());

  // The committed value survived and the survivor serves reads and writes.
  auto value = mirror.get(1);
  ASSERT_TRUE(value.is_ok());
  EXPECT_EQ(value.value().read_u64(0), 7u);
  txn::TxnProgram q;
  q.add_to_field(1, 0, 1);
  q.relative_deadline = 5_s;
  EXPECT_EQ(mirror.execute(std::move(q)).outcome, TxnOutcome::kCommitted);
  mirror.stop();
}

TEST(RtNode, RejoinIsServedFromDiskArtifacts) {
  // A restarted peer rejoins via checkpoint bytes + surviving log segments
  // (DESIGN.md §12) instead of a live store encode: the primary's commit
  // path never pauses to serialize its state. The bespoke live-record stash
  // is gone — records arriving during the join stage in the mirror's held
  // reorderer and apply after the snapshot boundary installs.
  obs::ObsConfig obs_config;
  obs_config.enabled = true;
  obs::init(obs_config);
  const std::uint64_t disk_serves_before =
      obs::metrics().counter("repl.snapshots_from_disk").value();

  const auto dir = std::filesystem::temp_directory_path() / "rodain_rejoin_disk";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  auto tcp = TcpPair::make();

  rt::NodeConfig config;
  config.log_path = (dir / "segments").string();
  config.log_segment_bytes = 2048;
  config.checkpoint_path = (dir / "db.ckpt").string();
  rt::Node primary(config, "primary");
  for (ObjectId oid = 1; oid <= 20; ++oid) primary.store().upsert(oid, zeros8(), 0);

  primary.start_primary(LogMode::kDirectDisk, tcp.client_end.get());
  tcp.client_end->start();
  auto commit_n = [&](int n) {
    for (int i = 0; i < n; ++i) {
      txn::TxnProgram p;
      p.add_to_field(static_cast<ObjectId>(1 + i % 20), 0, 1);
      p.relative_deadline = 5_s;
      ASSERT_EQ(primary.execute(std::move(p)).outcome, TxnOutcome::kCommitted);
    }
  };
  commit_n(30);
  ASSERT_TRUE(primary.write_checkpoint().is_ok());  // covers seq 1..30
  commit_n(10);  // the tail lives only in the segments + writer tail

  // The restarted peer joins with an empty store: everything it learns
  // comes from the disk artifacts and the streamed catch-up.
  rt::NodeConfig rc;
  rt::Node rejoiner(rc, "rejoiner");
  rejoiner.start_rejoin(*tcp.server_end);
  tcp.server_end->start();
  commit_n(5);  // live traffic during the join rides the held reorderer

  for (int waited = 0; waited < 500 && rejoiner.mirror_applied_seq() < 45;
       ++waited) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(rejoiner.mirror_applied_seq(), 45u);
  EXPECT_EQ(primary.role(), NodeRole::kPrimaryWithMirror);
  EXPECT_EQ(obs::metrics().counter("repl.snapshots_from_disk").value(),
            disk_serves_before + 1);

  std::uint64_t total = 0;
  rejoiner.store().for_each([&](ObjectId, const storage::ObjectRecord& rec) {
    total += rec.value.read_u64(0);
  });
  EXPECT_EQ(total, 45u);

  primary.stop();
  rejoiner.stop();
  std::filesystem::remove_all(dir);
}

TEST(Database, EmbeddedQuickstartFlow) {
  db::DatabaseOptions options;
  db::Database database(options);
  ASSERT_TRUE(database.put_raw(1, val("alice")));
  ASSERT_TRUE(database.index_raw(storage::IndexKey::from_string("user:alice"), 1));

  auto fetched = database.get_by_key(storage::IndexKey::from_string("user:alice"));
  ASSERT_TRUE(fetched.is_ok());
  EXPECT_EQ(fetched.value(), val("alice"));

  EXPECT_EQ(database.put(1, val("alice-v2")).outcome, TxnOutcome::kCommitted);
  // Reads take the lock-free snapshot path: no transactions were submitted
  // for the two gets above, only the put committed.
  const std::uint64_t submitted_before_get = database.counters().submitted;
  EXPECT_EQ(database.get(1).value(), val("alice-v2"));
  EXPECT_EQ(database.counters().submitted, submitted_before_get);
  EXPECT_GE(database.counters().committed, 1u);
}

}  // namespace
}  // namespace rodain
