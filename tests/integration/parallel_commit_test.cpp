// Parallel commit path (DESIGN.md §13): validation + install run outside
// the node's commit mutex at worker_threads > 1, stitched back into one
// sequence-ordered log stream by the epoch sealer. These tests are the
// TSan targets for the intent-table/validation-mutex/install-gate design:
// every assertion doubles as a data-race probe.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "rodain/net/tcp.hpp"
#include "rodain/obs/obs.hpp"
#include "rodain/rt/node.hpp"

namespace rodain {
namespace {

using namespace rodain::literals;

storage::Value zeros8() {
  return storage::Value{std::string_view{"\0\0\0\0\0\0\0\0", 8}};
}

struct TcpPair {
  std::unique_ptr<net::TcpServer> server;
  std::unique_ptr<net::TcpChannel> client_end;
  std::unique_ptr<net::TcpChannel> server_end;

  static TcpPair make() {
    TcpPair p;
    std::mutex mu;
    std::condition_variable cv;
    auto server =
        net::TcpServer::listen(0, [&](std::unique_ptr<net::TcpChannel> ch) {
          std::lock_guard lock(mu);
          p.server_end = std::move(ch);
          cv.notify_all();
        });
    p.server = std::move(server).value();
    p.client_end =
        std::move(net::TcpChannel::connect("127.0.0.1", p.server->port(), 2_s))
            .value();
    std::unique_lock lock(mu);
    cv.wait_for(lock, std::chrono::seconds(2),
                [&] { return p.server_end != nullptr; });
    return p;
  }
};

// Serializability across disjoint AND overlapping key sets at 4 workers.
// Group transactions read a shared hot object and increment their own group
// counter; overlap transactions read a group counter and increment the
// shared object. Every counter is read *before* its increment, so in any
// valid serial order the multiset of captured reads per counter must be
// exactly {0, 1, ..., C-1}.
TEST(ParallelCommit, DisjointAndOverlappingKeySetsStaySerializable) {
  rt::NodeConfig config;
  config.worker_threads = 4;
  config.engine.capture_reads = true;
  config.overload.max_active = 100000;
  rt::Node node(config, "parcommit");
  constexpr ObjectId kShared = 1;
  constexpr ObjectId kGroups = 4;  // group counters live at 2..5
  for (ObjectId oid = kShared; oid <= kShared + kGroups; ++oid) {
    node.store().upsert(oid, zeros8(), 0);
  }
  node.start_primary(LogMode::kOff);

  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  std::map<ObjectId, std::vector<std::uint64_t>> observed;  // per counter
  constexpr int kTxns = 600;
  int submitted = 0;
  for (int i = 0; i < kTxns; ++i) {
    txn::TxnProgram p;
    ObjectId counter;
    if (i % 3 == 0) {
      // Overlap transaction: reads a group counter, increments the shared
      // object — the cross edge the epoch-ordered validator must respect.
      counter = kShared;
      p.read(2 + static_cast<ObjectId>(i % kGroups));
      p.read(counter);
      p.add_to_field(counter, 0, 1);
    } else {
      counter = 2 + static_cast<ObjectId>(i % kGroups);
      p.read(kShared);
      p.read(counter);
      p.add_to_field(counter, 0, 1);
    }
    p.relative_deadline = 30_s;
    ++submitted;
    node.submit(std::move(p), [&, counter](const rt::CommitInfo& info) {
      std::lock_guard lock(mu);
      if (info.outcome == TxnOutcome::kCommitted) {
        ASSERT_EQ(info.captured_reads.size(), 2u);
        observed[counter].push_back(info.captured_reads[1].read_u64(0));
      }
      ++done;
      cv.notify_all();
    });
  }
  {
    std::unique_lock lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                            [&] { return done == submitted; }));
  }

  for (auto& [oid, reads] : observed) {
    auto final_value = node.get(oid);
    ASSERT_TRUE(final_value.is_ok());
    ASSERT_EQ(final_value.value().read_u64(0), reads.size())
        << "counter " << oid;
    std::sort(reads.begin(), reads.end());
    for (std::size_t i = 0; i < reads.size(); ++i) {
      ASSERT_EQ(reads[i], i)
          << "counter " << oid << ": captured reads are not a serial schedule";
    }
  }
  node.stop();
}

// The sealed stream the mirror replays must be byte-for-byte equivalent to
// the primary's committed state: same values, same commit timestamps, in
// the same per-record order — the epoch sealer may not reorder or tear
// what the serial path would have shipped.
TEST(ParallelCommit, MirrorReplayMatchesPrimaryState) {
  obs::ObsConfig obs_config;
  obs_config.enabled = true;
  obs::init(obs_config);
  const std::uint64_t seals_before =
      obs::metrics().counter("node.epoch_seals").value();

  auto tcp = TcpPair::make();
  rt::NodeConfig config;
  config.worker_threads = 4;
  config.overload.max_active = 100000;
  rt::Node primary(config, "primary");
  rt::Node mirror(config, "mirror");
  constexpr ObjectId kObjects = 16;
  for (ObjectId oid = 1; oid <= kObjects; ++oid) {
    primary.store().upsert(oid, zeros8(), 0);
    mirror.store().upsert(oid, zeros8(), 0);
  }
  mirror.start_mirror(*tcp.server_end);
  primary.start_primary(LogMode::kMirror, tcp.client_end.get());
  tcp.server_end->start();
  tcp.client_end->start();

  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  std::atomic<std::uint64_t> committed{0};
  constexpr int kTxns = 300;
  for (int i = 0; i < kTxns; ++i) {
    txn::TxnProgram p;
    p.read(1 + static_cast<ObjectId>((i * 5 + 2) % kObjects));
    p.add_to_field(1 + static_cast<ObjectId>(i % kObjects), 0, 1);
    p.relative_deadline = 30_s;
    primary.submit(std::move(p), [&](const rt::CommitInfo& info) {
      if (info.outcome == TxnOutcome::kCommitted) {
        committed.fetch_add(1, std::memory_order_relaxed);
      }
      std::lock_guard lock(mu);
      ++done;
      cv.notify_all();
    });
  }
  {
    std::unique_lock lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                            [&] { return done == kTxns; }));
  }
  ASSERT_GT(committed.load(), 0u);

  // The mirror's cumulative ack floor reaches everything committed.
  for (int waited = 0;
       waited < 500 && mirror.mirror_applied_seq() < committed.load();
       ++waited) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(mirror.mirror_applied_seq(), committed.load());

  // Byte-for-byte: identical values AND identical commit timestamps per
  // object (the wts is the serialization evidence the replay carries).
  std::map<ObjectId, std::pair<storage::Value, ValidationTs>> primary_state;
  primary.store().for_each([&](ObjectId oid, const storage::ObjectRecord& r) {
    primary_state[oid] = {r.value, r.wts};
  });
  std::map<ObjectId, std::pair<storage::Value, ValidationTs>> mirror_state;
  mirror.store().for_each([&](ObjectId oid, const storage::ObjectRecord& r) {
    mirror_state[oid] = {r.value, r.wts};
  });
  ASSERT_EQ(primary_state.size(), mirror_state.size());
  for (const auto& [oid, state] : primary_state) {
    ASSERT_EQ(mirror_state.count(oid), 1u) << "object " << oid;
    EXPECT_TRUE(mirror_state[oid].first == state.first) << "object " << oid;
    EXPECT_EQ(mirror_state[oid].second, state.second) << "object " << oid;
  }

  // The parallel path actually engaged: commits flowed through the sealer.
  EXPECT_GT(obs::metrics().counter("node.epoch_seals").value(), seals_before);

  primary.stop();
  mirror.stop();
}

// Satellite regression (recovery_mode_ ordering): hammer first-touch reads
// and read-modify-writes from many client threads while the instant-recovery
// sweeper drains the redo index — crossing the parallel_commit_active()
// false->true transition mid-burst. Run under TSan, every access is a probe
// of the recovery_mode_/redo-index publication protocol.
TEST(ParallelCommit, FirstTouchReadsDuringRecoveryDrainAreRaceFree) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "rodain_parallel_recovery_hammer";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  rt::NodeConfig config;
  config.worker_threads = 4;
  config.overload.max_active = 100000;
  config.log_path = (dir / "segments").string();
  config.log_segment_bytes = 512;
  config.checkpoint_path = (dir / "db.ckpt").string();
  config.instant_recovery = true;
  config.recovery_sweep_interval = Duration::micros(200);
  config.recovery_sweep_txns = 1;  // keep the drain window open for a while

  constexpr ObjectId kObjects = 20;
  constexpr int kSeedTxns = 60;  // 3 per object
  {
    rt::NodeConfig gen = config;
    rt::Node node(gen, "gen1");
    node.start_primary(LogMode::kDirectDisk);
    for (int i = 0; i < kSeedTxns; ++i) {
      txn::TxnProgram p;
      p.add_to_field(static_cast<ObjectId>(1 + i % kObjects), 0, 1);
      p.relative_deadline = 5_s;
      ASSERT_EQ(node.execute(std::move(p)).outcome, TxnOutcome::kCommitted);
    }
    node.stop();
  }

  rt::Node node(config, "gen2");
  auto stats = node.recover_from_local_state();
  ASSERT_TRUE(stats.is_ok()) << stats.status().to_string();
  EXPECT_GT(stats.value().deferred_txns, 0u);
  node.start_primary(LogMode::kDirectDisk);

  constexpr int kClients = 4;
  constexpr int kPerClient = 40;
  std::atomic<std::uint64_t> committed_incrs{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const auto oid = static_cast<ObjectId>(1 + (c * 7 + i) % kObjects);
        // Lock-free committed read: refused while draining, must never
        // observe a torn or pre-recovery value once it succeeds.
        auto fast = node.read_committed(oid);
        if (fast.is_ok()) {
          EXPECT_GE(fast.value().read_u64(0), 3u);
        }
        // First-touch read-modify-write: replays the deferred chain before
        // the increment, serial or parallel depending on drain progress.
        txn::TxnProgram p;
        p.add_to_field(oid, 0, 1);
        p.relative_deadline = 30_s;
        if (node.execute(std::move(p)).outcome == TxnOutcome::kCommitted) {
          committed_incrs.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  // Every object ends at its recovered value (3) plus its committed
  // increments; a lost deferred chain or doubled replay breaks the total.
  std::uint64_t total = 0;
  for (ObjectId oid = 1; oid <= kObjects; ++oid) {
    auto v = node.get(oid);
    ASSERT_TRUE(v.is_ok()) << v.status().to_string();
    total += v.value().read_u64(0);
  }
  EXPECT_EQ(total, kSeedTxns + committed_incrs.load());
  node.stop();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace rodain
