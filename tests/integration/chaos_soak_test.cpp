// Seeded randomized chaos soak over the simulated RODAIN pair.
//
// Thousands of transactions run against a two-node cluster whose link
// injects drops, duplicates, corruption, reordering and delay, while a
// director crashes nodes, flaps the link, installs one-way partitions and
// scripts exact-frame severs. The core invariant: a transaction reported
// committed has its marker object on the surviving system, and a
// transaction reported aborted (deadline miss, overload rejection,
// conflict) never does. kSystemAborted is the only indeterminate outcome.
//
// Every run is reproducible bit-for-bit from its seed:
//   RODAIN_CHAOS_SEED=<seed> ./build/tests/rodain_tests
//       --gtest_filter='ChaosSoak.SeededSoak'   (one line)
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "rodain/common/diag.hpp"
#include "rodain/common/rng.hpp"
#include "rodain/obs/obs.hpp"
#include "rodain/simdb/sim_cluster.hpp"
#include "rodain/workload/calibration.hpp"
#include "rodain/workload/number_translation.hpp"

namespace rodain {
namespace {

using namespace rodain::literals;

/// Run the soak with the observability layer live (metrics + tracing), so a
/// failing seed leaves a full flight recording behind; restores the global
/// flags afterwards.
class ObsScope {
 public:
  ObsScope() : prev_on_(obs::enabled()), prev_tr_(obs::tracing_enabled()) {
    obs::detail::g_enabled.store(true, std::memory_order_relaxed);
    obs::detail::g_tracing.store(true, std::memory_order_relaxed);
  }
  ~ObsScope() {
    obs::detail::g_enabled.store(prev_on_, std::memory_order_relaxed);
    obs::detail::g_tracing.store(prev_tr_, std::memory_order_relaxed);
  }

 private:
  bool prev_on_;
  bool prev_tr_;
};

/// With RODAIN_CHAOS_ARTIFACT_DIR set, a failed soak drops the span-trace
/// ring (Chrome JSON) and both metric expositions there so CI can attach
/// them to the failing run.
void dump_artifacts_on_failure(std::uint64_t seed) {
  if (!::testing::Test::HasFailure()) return;
  const char* dir = std::getenv("RODAIN_CHAOS_ARTIFACT_DIR");
  if (!dir || !*dir) return;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string stem =
      std::string(dir) + "/chaos_seed_" + std::to_string(seed);
  obs::tracer().dump_to_file(stem + ".trace.json");
  std::ofstream(stem + ".metrics.prom") << obs::metrics().render_text();
  std::ofstream(stem + ".vars.json") << obs::metrics().render_json();
  std::printf("[chaos] failure artifacts written to %s.*\n", stem.c_str());
}

/// Marker objects live far above the workload database's id range; each
/// transaction inserts exactly one, so presence is a commit witness.
constexpr ObjectId kMarkerBase = 1'000'000;

enum class Fate : std::uint8_t {
  kUnresolved,     ///< callback never fired (a bug by itself)
  kAcked,          ///< reported committed: marker MUST survive
  kDefiniteAbort,  ///< reported aborted pre-commit: marker MUST NOT exist
  kIndeterminate,  ///< kSystemAborted: node died with the txn in flight
};

Fate fate_of(TxnOutcome o) {
  switch (o) {
    case TxnOutcome::kCommitted:
      return Fate::kAcked;
    case TxnOutcome::kMissedDeadline:
    case TxnOutcome::kOverloadRejected:
    case TxnOutcome::kConflictAborted:
      return Fate::kDefiniteAbort;
    case TxnOutcome::kSystemAborted:
      return Fate::kIndeterminate;
  }
  return Fate::kIndeterminate;
}

struct SoakOptions {
  std::uint64_t seed{0xC0FFEE};
  std::size_t txns{1200};
  /// Adds the restart-during-recovery director action (kill a node again
  /// while it is mid-rejoin). Opt-in (RODAIN_CHAOS_RECOVERY_KILLS=1, the
  /// nightly sweep) because enabling it widens the director's action draw
  /// and so changes every seed's trajectory.
  bool recovery_kills{false};
};

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  return v ? std::strtoull(v, nullptr, 0) : fallback;
}

void run_soak(const SoakOptions& opt) {
  SCOPED_TRACE("chaos seed " + std::to_string(opt.seed));
  ObsScope obs_scope;
  // RODAIN_CHAOS_VERBOSE=1 narrates every role transition, rejoin and
  // escalation — the first tool to reach for when a seed fails.
  // RODAIN_CHAOS_VERBOSE=2 adds per-record replication tracing.
  if (const char* verbose = std::getenv("RODAIN_CHAOS_VERBOSE")) {
    diag::set_level(verbose[0] == '2' ? diag::Level::kDebug
                                      : diag::Level::kInfo);
  }
  std::printf(
      "[chaos] seed=%llu txns=%zu  repro: RODAIN_CHAOS_SEED=%llu "
      "./build/tests/rodain_tests --gtest_filter='ChaosSoak.SeededSoak'\n",
      static_cast<unsigned long long>(opt.seed), opt.txns,
      static_cast<unsigned long long>(opt.seed));

  Rng seeder(opt.seed);
  Rng fault_rng = seeder.split();
  Rng workload_rng = seeder.split();
  Rng director_rng = seeder.split();

  // Fault intensities drawn from the seed: lossy but not absurd, so the
  // system keeps making progress while every defense gets exercised.
  net::FaultyLink::Options faults;
  faults.seed = fault_rng.next_u64();
  for (net::FaultProfile* p : {&faults.a_to_b, &faults.b_to_a}) {
    p->drop = fault_rng.next_double() * 0.04;
    p->duplicate = fault_rng.next_double() * 0.04;
    p->corrupt = fault_rng.next_double() * 0.02;
    p->reorder = fault_rng.next_double() * 0.05;
    p->delay = fault_rng.next_double() * 0.08;
    p->delay_min = Duration::micros(200);
    p->delay_max = Duration::millis(3);
  }

  sim::Simulation sim;
  auto config = workload::PaperSetup::two_node(true);
  workload::DatabaseConfig db;
  db.num_objects = 1000;
  config.node.store_capacity_hint = db.num_objects + opt.txns + 64;
  config.node.disconnect_grace = 60_ms;  // ride out short flaps
  // Group commit on, so the soak exercises batched frames, cumulative acks
  // and batch resend/reroute under every injected fault.
  config.node.log_batch.max_txns = 4;
  config.node.log_batch.max_delay = 2_ms;
  config.node.log_batch.adaptive_delay = true;
  // Checkpoint cadence on, so the soak also exercises apply-path
  // checkpoints and log truncation racing crashes, takeovers and rejoins.
  config.node.checkpoint_interval = 120_ms;
  config.faults = faults;
  simdb::SimCluster cluster(sim, config);
  cluster.populate([&](storage::ObjectStore& s, storage::BPlusTree& i) {
    workload::load_database(db, s, i);
  });
  cluster.start();
  net::FaultyLink* link = cluster.faulty_link();
  ASSERT_NE(link, nullptr);

  // ---- workload: every txn plants a unique marker --------------------
  std::vector<Fate> fates(opt.txns, Fate::kUnresolved);
  TimePoint arrival = TimePoint::origin() + 50_ms;
  TimePoint last_arrival = arrival;
  for (std::size_t i = 0; i < opt.txns; ++i) {
    arrival += Duration::micros(
        static_cast<std::int64_t>(workload_rng.next_exponential(8000.0)));
    last_arrival = arrival;
    const ObjectId shared = workload::oid_for(
        workload_rng.next_below(db.num_objects));
    sim.schedule_at(arrival, [&cluster, &fates, i, shared] {
      txn::TxnProgram p;
      p.insert(kMarkerBase + i, storage::Value{"marker"});
      p.add_to_field(shared, workload::kCounterOffset, 1);
      p.with_deadline(150_ms);
      cluster.submit(std::move(p), [&fates, i](const simdb::TxnResult& r) {
        fates[i] = fate_of(r.outcome);
      });
    });
  }
  const TimePoint quiesce_at = last_arrival + 1_s;

  // ---- chaos director ------------------------------------------------
  simdb::SimNode* downed = nullptr;
  /// Each kill bumps the generation and its recover callback captures it:
  /// with mid-recovery kills the same node can be killed again while an
  /// older recover is still pending, and `downed == expect` alone would let
  /// that stale callback revive the fresh corpse instantly.
  std::uint64_t kill_gen = 0;
  std::uint64_t crashes = 0, flaps = 0, partitions = 0, script_severs = 0;
  std::uint64_t primary_crashes = 0, recovery_kills = 0;

  auto both_paired = [&] {
    simdb::SimNode* s = cluster.serving_node();
    if (!s || s->role() != NodeRole::kPrimaryWithMirror) return false;
    simdb::SimNode& other =
        (s == &cluster.node_a()) ? cluster.node_b() : cluster.node_a();
    return other.role() == NodeRole::kMirror;
  };

  std::function<void()> director = [&] {
    if (sim.now() >= quiesce_at) return;
    switch (director_rng.next_below(opt.recovery_kills ? 8 : 6)) {
      case 0: {  // crash the serving node — only when both believe paired,
                 // so every acked commit is already on the mirror
        if (!downed && both_paired()) {
          simdb::SimNode* s = cluster.serving_node();
          downed = s;
          const std::uint64_t gen = ++kill_gen;
          ++crashes;
          ++primary_crashes;
          cluster.fail_node(*s);
          simdb::SimNode* expect = s;
          sim.schedule_after(
              Duration::millis(director_rng.next_in(300, 800)),
              [&, expect, gen] {
                if (downed == expect && gen == kill_gen) {
                  cluster.recover_node(*expect);
                  downed = nullptr;
                }
              });
        }
        break;
      }
      case 1: {  // crash the mirror (safe at any time)
        simdb::SimNode* s = cluster.serving_node();
        if (!downed && s) {
          simdb::SimNode& m =
              (s == &cluster.node_a()) ? cluster.node_b() : cluster.node_a();
          if (m.role() == NodeRole::kMirror ||
              m.role() == NodeRole::kRecovering) {
            downed = &m;
            const std::uint64_t gen = ++kill_gen;
            ++crashes;
            cluster.fail_node(m);
            simdb::SimNode* expect = &m;
            sim.schedule_after(
                Duration::millis(director_rng.next_in(300, 800)),
                [&, expect, gen] {
                  if (downed == expect && gen == kill_gen) {
                    cluster.recover_node(*expect);
                    downed = nullptr;
                  }
                });
          }
        }
        break;
      }
      case 2: {  // link flap, shorter than the 200 ms watchdog
        if (!downed) {
          ++flaps;
          link->sever();
          sim.schedule_after(Duration::millis(director_rng.next_in(20, 120)),
                            [&] {
                              if (!downed) link->restore();
                            });
        }
        break;
      }
      case 3: {  // one-way partition: both ends still "connected"
        const int dir = static_cast<int>(director_rng.next_below(2));
        ++partitions;
        link->set_partition(dir, true);
        sim.schedule_after(Duration::millis(director_rng.next_in(20, 120)),
                          [&, dir] { link->set_partition(dir, false); });
        break;
      }
      case 4: {  // scripted sever at an exact future frame (hits snapshot
                 // chunks and log batches mid-stream deterministically)
        if (!downed) {
          ++script_severs;
          link->set_script(
              [n = director_rng.next_in(1, 25)](
                  const net::FrameInfo&) mutable {
                return --n == 0 ? net::ScriptAction::kSever
                                : net::ScriptAction::kPass;
              });
          sim.schedule_after(150_ms, [&] {
            link->set_script({});
            if (!downed) link->restore();
          });
        }
        break;
      }
      case 6:
      case 7: {  // restart-during-recovery: kill a node again while it is
                 // mid-rejoin (snapshot install or catch-up), so the next
                 // rejoin starts over on whatever the first one left behind.
        auto kill_mid_recovery = [&](simdb::SimNode* rec) {
          downed = rec;
          const std::uint64_t gen = ++kill_gen;
          ++crashes;
          ++recovery_kills;
          cluster.fail_node(*rec);
          sim.schedule_after(
              Duration::millis(director_rng.next_in(100, 400)), [&, rec, gen] {
                if (downed == rec && gen == kill_gen) {
                  cluster.recover_node(*rec);
                  downed = nullptr;
                }
              });
        };
        simdb::SimNode* rec = nullptr;
        if (cluster.node_a().role() == NodeRole::kRecovering) {
          rec = &cluster.node_a();
        } else if (cluster.node_b().role() == NodeRole::kRecovering) {
          rec = &cluster.node_b();
        }
        if (!downed && rec) {
          kill_mid_recovery(rec);
        } else if (downed) {
          // Nothing recovering right now, but a node is down: bring it back
          // early (the pending recover no-ops on the downed != expect check)
          // and strike again a few ms into its rejoin.
          simdb::SimNode* expect = downed;
          cluster.recover_node(*expect);
          downed = nullptr;
          sim.schedule_after(
              Duration::millis(director_rng.next_in(5, 40)), [&, expect,
                                                              kill_mid_recovery] {
                if (!downed && expect->role() == NodeRole::kRecovering) {
                  kill_mid_recovery(expect);
                }
              });
        }
        break;
      }
      default:  // breathe
        break;
    }
    sim.schedule_after(Duration::millis(director_rng.next_in(150, 400)),
                       director);
  };
  sim.schedule_at(TimePoint::origin() + 200_ms, director);

  // ---- quiesce: stop the chaos, let the pair converge ----------------
  sim.schedule_at(quiesce_at, [&] {
    link->set_enabled(false);
    link->set_script({});
    link->set_partition(0, false);
    link->set_partition(1, false);
    if (downed) {
      cluster.recover_node(*downed);
      downed = nullptr;
    } else {
      link->restore();
    }
  });
  sim.run_until(quiesce_at + 5_s);

  // ---- invariants ----------------------------------------------------
  simdb::SimNode* survivor = cluster.serving_node();
  ASSERT_NE(survivor, nullptr) << "no serving node after quiesce";
  EXPECT_TRUE(both_paired())
      << "pair did not converge to Primary+Mirror after quiesce: node-a is "
      << to_string(cluster.node_a().role()) << ", node-b is "
      << to_string(cluster.node_b().role());
  simdb::SimNode& peer = (survivor == &cluster.node_a()) ? cluster.node_b()
                                                         : cluster.node_a();
  const bool check_peer = both_paired();
  std::printf(
      "[chaos] end state: survivor=%s low_water=%llu peer_applied=%llu\n",
      survivor->name().c_str(),
      static_cast<unsigned long long>(
          survivor->engine() ? survivor->engine()->installed_low_water() : 0),
      static_cast<unsigned long long>(
          peer.mirror_service() ? peer.mirror_service()->applied_seq() : 0));

  std::size_t acked = 0, definite = 0, indeterminate = 0;
  for (std::size_t i = 0; i < opt.txns; ++i) {
    const ObjectId marker = kMarkerBase + i;
    const bool on_survivor = survivor->store().find(marker) != nullptr;
    switch (fates[i]) {
      case Fate::kAcked:
        ++acked;
        EXPECT_TRUE(on_survivor)
            << "LOST COMMIT: txn " << i << " was acknowledged but its marker "
            << "is missing from the surviving node";
        if (check_peer) {
          EXPECT_NE(peer.store().find(marker), nullptr)
              << "txn " << i << " missing from the rejoined mirror";
        }
        break;
      case Fate::kDefiniteAbort:
        ++definite;
        EXPECT_FALSE(on_survivor)
            << "PHANTOM COMMIT: txn " << i
            << " was reported aborted but its marker exists";
        break;
      case Fate::kIndeterminate:
        ++indeterminate;
        break;
      case Fate::kUnresolved:
        ADD_FAILURE() << "txn " << i << " never resolved";
        break;
    }
  }

  std::printf(
      "[chaos] seed=%llu: %zu acked, %zu aborted, %zu indeterminate | "
      "%llu crashes (%llu mid-recovery), %llu flaps, %llu partitions, "
      "%llu script severs | "
      "link: %llu fwd %llu drop %llu dup %llu corrupt %llu reorder\n",
      static_cast<unsigned long long>(opt.seed), acked, definite,
      indeterminate, static_cast<unsigned long long>(crashes),
      static_cast<unsigned long long>(recovery_kills),
      static_cast<unsigned long long>(flaps),
      static_cast<unsigned long long>(partitions),
      static_cast<unsigned long long>(script_severs),
      static_cast<unsigned long long>(link->stats().forwarded),
      static_cast<unsigned long long>(link->stats().dropped),
      static_cast<unsigned long long>(link->stats().duplicated),
      static_cast<unsigned long long>(link->stats().corrupted),
      static_cast<unsigned long long>(link->stats().reordered));

  // The run must have made real progress through the chaos.
  EXPECT_GT(acked, opt.txns / 3);

  // Availability flight recorder: every crash of the serving node opened
  // exactly one outage, the takeovers closed them all (the pair converged),
  // and each closed outage saw a first commit.
  const obs::AvailabilityTimeline& avail = cluster.availability();
  EXPECT_TRUE(avail.serving());
  EXPECT_EQ(avail.outages().size(), primary_crashes);
  std::int64_t downtime_sum = 0;
  for (const auto& outage : avail.outages()) {
    EXPECT_FALSE(outage.open());
    downtime_sum += outage.downtime_us(0);
  }
  EXPECT_EQ(cluster.total_downtime().us, downtime_sum);
  if (primary_crashes > 0) {
    EXPECT_GE(avail.last_time_to_first_commit_us(), 0);
  }
  std::printf("[chaos] availability: %zu outages, %.1f ms total downtime\n",
              avail.outages().size(),
              static_cast<double>(downtime_sum) / 1000.0);

  dump_artifacts_on_failure(opt.seed);
}

TEST(ChaosSoak, SeededSoak) {
  SoakOptions opt;
  opt.seed = env_u64("RODAIN_CHAOS_SEED", 0xC0FFEE);
  opt.txns = static_cast<std::size_t>(env_u64("RODAIN_CHAOS_TXNS", 1200));
  opt.recovery_kills = env_u64("RODAIN_CHAOS_RECOVERY_KILLS", 0) != 0;
  run_soak(opt);
}

TEST(ChaosSoak, ShortSeedSweep) {
  for (const std::uint64_t seed : {3ULL, 17ULL, 2024ULL}) {
    SoakOptions opt;
    opt.seed = seed;
    opt.txns = 400;
    run_soak(opt);
    if (::testing::Test::HasFailure()) break;
  }
}

}  // namespace
}  // namespace rodain
