// Multicore primary (DESIGN.md §11): stress the lock-free read phase with
// real worker threads. These tests are the TSan targets for the seqlock +
// two-mutex node design: every assertion doubles as a data-race probe.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "rodain/db/database.hpp"
#include "rodain/rt/node.hpp"

namespace rodain {
namespace {

using namespace rodain::literals;

storage::Value val(std::string_view s) { return storage::Value{s}; }
storage::Value zeros8() {
  return storage::Value{std::string_view{"\0\0\0\0\0\0\0\0", 8}};
}

// Mixed read/increment workload over a handful of hot objects with four
// workers: the read phases stream unlocked while validations serialize.
// The per-object counters must account for every committed increment.
TEST(ParallelRead, ConcurrentStressMixedWorkload) {
  rt::NodeConfig config;
  config.worker_threads = 4;
  config.overload.max_active = 100000;
  rt::Node node(config, "stress");
  constexpr ObjectId kObjects = 8;
  for (ObjectId oid = 1; oid <= kObjects; ++oid) {
    node.store().upsert(oid, zeros8(), 0);
  }
  node.start_primary(LogMode::kOff);

  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  std::atomic<std::uint64_t> committed_incrs{0};
  constexpr int kTxns = 600;
  for (int i = 0; i < kTxns; ++i) {
    const ObjectId a = 1 + static_cast<ObjectId>(i % kObjects);
    const ObjectId b = 1 + static_cast<ObjectId>((i * 7 + 3) % kObjects);
    txn::TxnProgram p;
    p.read(b);          // widen the read set across objects
    p.add_to_field(a, 0, 1);
    p.read(a);          // read-your-own-write after the increment
    p.relative_deadline = 30_s;
    node.submit(std::move(p), [&](const rt::CommitInfo& info) {
      if (info.outcome == TxnOutcome::kCommitted) {
        committed_incrs.fetch_add(1, std::memory_order_relaxed);
      }
      std::lock_guard lock(mu);
      ++done;
      cv.notify_all();
    });
  }
  {
    std::unique_lock lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                            [&] { return done == kTxns; }));
  }

  std::uint64_t total = 0;
  for (ObjectId oid = 1; oid <= kObjects; ++oid) {
    auto value = node.get(oid);
    ASSERT_TRUE(value.is_ok());
    total += value.value().read_u64(0);
  }
  EXPECT_EQ(total, committed_incrs.load());
  EXPECT_GT(committed_incrs.load(), 0u);
  node.stop();
}

// Serializability re-check at 4 workers: every transaction reads the shared
// counter and then increments it. In any serial order the i-th committed
// transaction observes exactly i prior increments, so the multiset of
// captured read values must be {0, 1, ..., C-1} — a torn or stale read
// that slipped through validation breaks the permutation.
TEST(ParallelRead, CommittedScheduleIsSerializableAt4Workers) {
  rt::NodeConfig config;
  config.worker_threads = 4;
  config.engine.capture_reads = true;
  config.overload.max_active = 100000;
  rt::Node node(config, "serial-check");
  node.store().upsert(1, zeros8(), 0);
  node.start_primary(LogMode::kOff);

  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  std::vector<std::uint64_t> observed;
  constexpr int kTxns = 400;
  for (int i = 0; i < kTxns; ++i) {
    txn::TxnProgram p;
    p.read(1);
    p.add_to_field(1, 0, 1);
    p.relative_deadline = 30_s;
    node.submit(std::move(p), [&](const rt::CommitInfo& info) {
      std::lock_guard lock(mu);
      if (info.outcome == TxnOutcome::kCommitted) {
        ASSERT_FALSE(info.captured_reads.empty());
        observed.push_back(info.captured_reads.front().read_u64(0));
      }
      ++done;
      cv.notify_all();
    });
  }
  {
    std::unique_lock lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                            [&] { return done == kTxns; }));
  }

  auto final_value = node.get(1);
  ASSERT_TRUE(final_value.is_ok());
  ASSERT_EQ(final_value.value().read_u64(0), observed.size());

  std::sort(observed.begin(), observed.end());
  for (std::size_t i = 0; i < observed.size(); ++i) {
    ASSERT_EQ(observed[i], i) << "captured reads are not a serial schedule";
  }
  node.stop();
}

// db::Database::get() rides the seqlock fast path: mid-commit it must only
// ever observe fully committed values, and on a quiet store it must not
// submit a transaction at all.
TEST(ParallelRead, DatabaseFastPathReadsOnlyCommittedState) {
  db::DatabaseOptions options;
  options.worker_threads = 4;
  options.max_active_txns = 100000;
  db::Database database(options);
  const std::string a(storage::Value::kInlineCapacity, 'a');
  const std::string b(storage::Value::kInlineCapacity, 'b');
  ASSERT_TRUE(database.put_raw(1, val(a)));

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      database.put(1, val(a));
      database.put(1, val(b));
    }
  });

  for (int i = 0; i < 20000; ++i) {
    auto fetched = database.get(1);
    ASSERT_TRUE(fetched.is_ok());
    const bool is_a = fetched.value() == val(a);
    const bool is_b = fetched.value() == val(b);
    ASSERT_TRUE(is_a || is_b) << "observed a torn / uncommitted value";
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();

  // Quiescent store: the fast path cannot hit contention, so reads submit
  // no transactions.
  const std::uint64_t submitted_before = database.counters().submitted;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(database.get(1).is_ok());
  }
  EXPECT_EQ(database.counters().submitted, submitted_before);
}

}  // namespace
}  // namespace rodain
