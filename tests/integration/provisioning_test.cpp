// Subscriber provisioning: transactional insert/delete with secondary-index
// maintenance, propagated through the redo stream to the mirror and through
// checkpoints + logs to recovery.
#include <gtest/gtest.h>

#include "rodain/exp/session.hpp"
#include "rodain/log/recovery.hpp"
#include "rodain/simdb/sim_cluster.hpp"
#include "rodain/storage/checkpoint.hpp"
#include "rodain/workload/calibration.hpp"

namespace rodain {
namespace {

using namespace rodain::literals;

storage::Value val(std::string_view s) { return storage::Value{s}; }
storage::IndexKey num(std::string_view s) {
  return storage::IndexKey::from_string(s);
}

struct EngineRig {
  storage::ObjectStore store{64};
  storage::BPlusTree index;
  log::MemoryLogStorage disk;
  log::LogWriter writer{LogMode::kDirectDisk, &disk, nullptr};
  engine::Engine engine;
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  TxnId next{1};

  EngineRig()
      : engine(engine::EngineConfig{}, store, &index, writer,
               engine::Engine::Hooks{}) {}

  TxnOutcome run(txn::TxnProgram p) {
    const TxnId id = next++;
    txns.push_back(std::make_unique<txn::Transaction>(
        id, id, std::move(p), TimePoint{0}, TimePoint::max()));
    engine.begin(*txns.back());
    while (true) {
      auto r = engine.step(*txns.back());
      if (r.action == engine::StepAction::kCommitted) return TxnOutcome::kCommitted;
      if (r.action == engine::StepAction::kAborted) return txns.back()->outcome();
    }
  }
};

TEST(Provisioning, InsertRegistersObjectAndIndex) {
  EngineRig rig;
  txn::TxnProgram p;
  p.insert(100, num("0800999001"), val("new-subscriber"));
  ASSERT_EQ(rig.run(std::move(p)), TxnOutcome::kCommitted);

  ASSERT_NE(rig.store.find(100), nullptr);
  EXPECT_TRUE(rig.store.find(100)->live());
  EXPECT_EQ(rig.store.find(100)->value, val("new-subscriber"));
  EXPECT_EQ(rig.index.find(num("0800999001")), 100u);
  // The redo stream carries the key.
  ASSERT_EQ(rig.disk.records().size(), 2u);
  EXPECT_TRUE(rig.disk.records()[0].has_key);
}

TEST(Provisioning, DeleteTombstonesAndDropsIndexEntry) {
  EngineRig rig;
  txn::TxnProgram setup;
  setup.insert(100, num("0800999001"), val("subscriber"));
  ASSERT_EQ(rig.run(std::move(setup)), TxnOutcome::kCommitted);

  txn::TxnProgram del;
  del.erase(100, num("0800999001"));
  ASSERT_EQ(rig.run(std::move(del)), TxnOutcome::kCommitted);

  ASSERT_NE(rig.store.find(100), nullptr);  // tombstone survives
  EXPECT_FALSE(rig.store.find(100)->live());
  EXPECT_GT(rig.store.find(100)->wts, 0u);
  EXPECT_EQ(rig.index.find(num("0800999001")), std::nullopt);
  EXPECT_EQ(rig.store.tombstone_count(), 1u);
  EXPECT_EQ(rig.store.live_size(), 0u);
}

TEST(Provisioning, ReadAfterDeleteSeesMissing) {
  engine::EngineConfig config;
  config.capture_reads = true;
  EngineRig rig;
  txn::TxnProgram setup;
  setup.insert(100, val("v"));
  ASSERT_EQ(rig.run(std::move(setup)), TxnOutcome::kCommitted);
  txn::TxnProgram del;
  del.erase(100);
  ASSERT_EQ(rig.run(std::move(del)), TxnOutcome::kCommitted);

  // Same-transaction semantics: delete then read -> missing; re-insert
  // then read -> new value.
  txn::TxnProgram mixed;
  mixed.insert(200, val("x"));
  mixed.erase(200);
  mixed.insert(200, val("y"));
  ASSERT_EQ(rig.run(std::move(mixed)), TxnOutcome::kCommitted);
  EXPECT_TRUE(rig.store.find(200)->live());
  EXPECT_EQ(rig.store.find(200)->value, val("y"));
}

TEST(Provisioning, DeleteIsDurableInLogReplay) {
  EngineRig rig;
  txn::TxnProgram a;
  a.insert(1, num("0800000001"), val("one"));
  a.insert(2, num("0800000002"), val("two"));
  ASSERT_EQ(rig.run(std::move(a)), TxnOutcome::kCommitted);
  txn::TxnProgram b;
  b.erase(1, num("0800000001"));
  ASSERT_EQ(rig.run(std::move(b)), TxnOutcome::kCommitted);

  storage::ObjectStore recovered(16);
  storage::BPlusTree recovered_index;
  auto stats =
      log::replay_records(rig.disk.records(), recovered, 0, &recovered_index);
  ASSERT_TRUE(stats.is_ok());
  EXPECT_EQ(stats.value().committed_applied, 2u);
  EXPECT_FALSE(recovered.find(1)->live());
  EXPECT_TRUE(recovered.find(2)->live());
  EXPECT_EQ(recovered_index.find(num("0800000001")), std::nullopt);
  EXPECT_EQ(recovered_index.find(num("0800000002")), 2u);
}

TEST(Provisioning, CheckpointCarriesIndexAndSkipsTombstones) {
  EngineRig rig;
  txn::TxnProgram a;
  a.insert(1, num("0800000001"), val("one"));
  a.insert(2, num("0800000002"), val("two"));
  ASSERT_EQ(rig.run(std::move(a)), TxnOutcome::kCommitted);
  txn::TxnProgram b;
  b.erase(1, num("0800000001"));
  ASSERT_EQ(rig.run(std::move(b)), TxnOutcome::kCommitted);

  ByteWriter w;
  storage::encode_checkpoint(rig.store, 2, w, &rig.index);
  storage::ObjectStore restored(16);
  storage::BPlusTree restored_index;
  auto meta = storage::decode_checkpoint(w.view(), restored, &restored_index);
  ASSERT_TRUE(meta.is_ok()) << meta.status().to_string();
  EXPECT_EQ(meta.value().object_count, 1u);  // the tombstone was compacted
  EXPECT_EQ(restored.find(1), nullptr);
  EXPECT_TRUE(restored.find(2)->live());
  EXPECT_EQ(restored_index.size(), 1u);
  EXPECT_EQ(restored_index.find(num("0800000002")), 2u);
}

TEST(Provisioning, MirrorMaintainsIndexAndCopy) {
  sim::Simulation sim;
  auto config = workload::PaperSetup::two_node(true);
  config.node.store_capacity_hint = 64;
  simdb::SimCluster cluster(sim, config);
  cluster.start();

  TxnCounters seen;
  auto submit = [&](txn::TxnProgram p) {
    sim.schedule_after(1_ms, [&cluster, p = std::move(p), &seen]() mutable {
      cluster.submit(std::move(p), [&seen](const simdb::TxnResult& r) {
        seen.submitted++;
        seen.committed += (r.outcome == TxnOutcome::kCommitted);
      });
    });
  };
  txn::TxnProgram provision;
  provision.insert(1, num("0800123123"), val("alice"));
  provision.with_deadline(150_ms);
  submit(std::move(provision));
  sim.run_until(TimePoint{1'000'000});

  txn::TxnProgram deprovision;
  deprovision.insert(2, num("0800456456"), val("bob"));
  deprovision.erase(1, num("0800123123"));
  deprovision.with_deadline(150_ms);
  submit(std::move(deprovision));
  sim.run_until(TimePoint{3'000'000});

  ASSERT_EQ(seen.committed, 2u);
  // The mirror's copy AND index reflect both provisioning transactions.
  simdb::SimNode& mirror = cluster.node_b();
  ASSERT_NE(mirror.store().find(2), nullptr);
  EXPECT_TRUE(mirror.store().find(2)->live());
  EXPECT_FALSE(mirror.store().find(1)->live());
  EXPECT_EQ(mirror.index().find(num("0800456456")), 2u);
  EXPECT_EQ(mirror.index().find(num("0800123123")), std::nullopt);

  // After takeover the survivor serves index lookups for the new entry.
  cluster.fail_node(cluster.node_a());
  sim.run_until(TimePoint{4'000'000});
  ASSERT_TRUE(mirror.serving());
  txn::TxnProgram lookup;
  lookup.read_key(num("0800456456"));
  lookup.with_deadline(150_ms);
  TxnOutcome outcome = TxnOutcome::kSystemAborted;
  mirror.submit(std::move(lookup),
                [&](const simdb::TxnResult& r) { outcome = r.outcome; });
  sim.run_until(TimePoint{5'000'000});
  EXPECT_EQ(outcome, TxnOutcome::kCommitted);
}

TEST(Provisioning, ConcurrentDeleteAndReaderSerializes) {
  // A reader that observed the object and a deleter that tombstones it:
  // OCC-DATI orders the reader before the deleter (no restart), and a
  // reader arriving after the delete observes the tombstone's wts.
  EngineRig rig;
  txn::TxnProgram setup;
  setup.insert(5, val("victim"));
  ASSERT_EQ(rig.run(std::move(setup)), TxnOutcome::kCommitted);

  txn::Transaction reader(90, 90, [] {
    txn::TxnProgram p;
    p.read(5);
    p.read(5);
    return p;
  }(), TimePoint{0}, TimePoint::max());
  rig.engine.begin(reader);
  ASSERT_EQ(rig.engine.step(reader).action, engine::StepAction::kContinue);

  txn::TxnProgram del;
  del.erase(5);
  ASSERT_EQ(rig.run(std::move(del)), TxnOutcome::kCommitted);

  // The reader re-reads object 5: the version changed (tombstone) -> the
  // single-version store forces a restart.
  EXPECT_EQ(rig.engine.step(reader).action, engine::StepAction::kRestarted);
}

TEST(Provisioning, TraceRoundTripWithProvisioningOps) {
  workload::Trace trace;
  txn::TxnProgram p;
  p.insert(7, num("0800777777"), val("payload-bytes"));
  p.erase(8, num("0800888888"));
  p.erase(9);
  trace.append(workload::TraceEntry{10_ms, std::move(p)});

  ByteWriter w;
  trace.encode(w);
  auto loaded = workload::Trace::decode(w.view());
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  ASSERT_EQ(loaded.value().size(), 1u);
  const txn::TxnProgram& q = loaded.value().entries()[0].program;
  ASSERT_EQ(q.ops.size(), 3u);
  const auto* ins = std::get_if<txn::InsertOp>(&q.ops[0]);
  ASSERT_NE(ins, nullptr);
  EXPECT_EQ(ins->oid, 7u);
  EXPECT_TRUE(ins->has_key);
  EXPECT_EQ(ins->key, num("0800777777"));
  EXPECT_EQ(ins->value, val("payload-bytes"));
  const auto* del = std::get_if<txn::DeleteOp>(&q.ops[1]);
  ASSERT_NE(del, nullptr);
  EXPECT_TRUE(del->has_key);
  const auto* del2 = std::get_if<txn::DeleteOp>(&q.ops[2]);
  ASSERT_NE(del2, nullptr);
  EXPECT_FALSE(del2->has_key);
}

}  // namespace
}  // namespace rodain
