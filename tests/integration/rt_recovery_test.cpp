// Cold-start recovery of the rt node: checkpoint + log tail, validation
// sequence continuation, and the periodic checkpoint daemon.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "rodain/log/segment.hpp"
#include "rodain/rt/node.hpp"
#include "rodain/storage/checkpoint.hpp"
#include "rodain/storage/ckpt_manifest.hpp"
#include "rodain/storage/fuzzy_checkpoint.hpp"

namespace rodain {
namespace {

using namespace rodain::literals;

storage::Value zeros8() {
  return storage::Value{std::string_view{"\0\0\0\0\0\0\0\0", 8}};
}

class RtRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("rodain_rt_rec_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  rt::NodeConfig config() {
    rt::NodeConfig c;
    c.log_path = (dir_ / "redo.log").string();
    c.checkpoint_path = (dir_ / "db.ckpt").string();
    return c;
  }
  std::filesystem::path dir_;
};

TEST_F(RtRecoveryTest, LogOnlyRecoveryRestoresStateAndSequence) {
  ValidationTs last_seq = 0;
  {
    rt::Node node(config(), "gen1");
    node.store().upsert(1, zeros8(), 0);
    node.start_primary(LogMode::kDirectDisk);
    for (int i = 0; i < 10; ++i) {
      txn::TxnProgram p;
      p.add_to_field(1, 0, 1);
      p.relative_deadline = 5_s;
      ASSERT_EQ(node.execute(std::move(p)).outcome, TxnOutcome::kCommitted);
    }
    last_seq = 10;
    node.stop();
  }
  {
    rt::Node node(config(), "gen2");
    node.store().upsert(1, zeros8(), 0);  // schema base, as on first boot
    auto stats = node.recover_from_local_state();
    ASSERT_TRUE(stats.is_ok()) << stats.status().to_string();
    EXPECT_EQ(stats.value().committed_applied, 10u);
    EXPECT_EQ(stats.value().last_seq, last_seq);
    EXPECT_EQ(node.store().find(1)->value.read_u64(0), 10u);

    // The restarted node continues the sequence and serves.
    node.start_primary(LogMode::kDirectDisk);
    txn::TxnProgram p;
    p.add_to_field(1, 0, 1);
    p.relative_deadline = 5_s;
    ASSERT_EQ(node.execute(std::move(p)).outcome, TxnOutcome::kCommitted);
    EXPECT_EQ(node.store().find(1)->value.read_u64(0), 11u);
    node.stop();
  }
  // The appended log replays cleanly across both generations.
  storage::ObjectStore replayed;
  replayed.upsert(1, zeros8(), 0);
  auto stats = log::recover_from_file(config().log_path, replayed);
  ASSERT_TRUE(stats.is_ok());
  EXPECT_EQ(stats.value().committed_applied, 11u);
  EXPECT_EQ(replayed.find(1)->value.read_u64(0), 11u);
}

TEST_F(RtRecoveryTest, CheckpointPlusTailRecovery) {
  {
    rt::Node node(config(), "gen1");
    node.store().upsert(1, zeros8(), 0);
    node.start_primary(LogMode::kDirectDisk);
    for (int i = 0; i < 5; ++i) {
      txn::TxnProgram p;
      p.add_to_field(1, 0, 10);
      p.relative_deadline = 5_s;
      ASSERT_EQ(node.execute(std::move(p)).outcome, TxnOutcome::kCommitted);
    }
    ASSERT_TRUE(node.write_checkpoint());  // covers seq 1..5
    for (int i = 0; i < 3; ++i) {  // the tail past the checkpoint
      txn::TxnProgram p;
      p.add_to_field(1, 0, 1);
      p.relative_deadline = 5_s;
      ASSERT_EQ(node.execute(std::move(p)).outcome, TxnOutcome::kCommitted);
    }
    node.stop();
  }
  rt::Node node(config(), "gen2");
  auto stats = node.recover_from_local_state();
  ASSERT_TRUE(stats.is_ok()) << stats.status().to_string();
  // Only the 3 tail transactions replayed; 5 came from the checkpoint.
  EXPECT_EQ(stats.value().committed_applied, 3u);
  EXPECT_EQ(stats.value().last_seq, 8u);
  EXPECT_EQ(node.store().find(1)->value.read_u64(0), 53u);
}

TEST_F(RtRecoveryTest, RecoveryWithNoFilesIsCleanSlate) {
  rt::NodeConfig c = config();
  c.log_path = (dir_ / "absent.log").string();
  c.checkpoint_path = (dir_ / "absent.ckpt").string();
  rt::Node node(c, "fresh");
  auto stats = node.recover_from_local_state();
  ASSERT_TRUE(stats.is_ok());
  EXPECT_EQ(stats.value().committed_applied, 0u);
  EXPECT_EQ(stats.value().last_seq, 0u);
}

TEST_F(RtRecoveryTest, PeriodicCheckpointDaemonWrites) {
  rt::NodeConfig c = config();
  c.checkpoint_interval = 50_ms;
  rt::Node node(c, "daemon");
  node.store().upsert(1, zeros8(), 0);
  node.start_primary(LogMode::kDirectDisk);
  txn::TxnProgram p;
  p.add_to_field(1, 0, 7);
  p.relative_deadline = 5_s;
  ASSERT_EQ(node.execute(std::move(p)).outcome, TxnOutcome::kCommitted);

  // The fuzzy path writes a chained artifact set (manifest + base/delta
  // files) instead of the single legacy file.
  const std::string manifest = storage::manifest_path_for(c.checkpoint_path);
  for (int waited = 0; waited < 100 && !std::filesystem::exists(manifest);
       ++waited) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(std::filesystem::exists(manifest));
  node.stop();

  storage::ObjectStore from_ckpt;
  auto meta = storage::load_checkpoint_artifacts(c.checkpoint_path, from_ckpt);
  ASSERT_TRUE(meta.is_ok()) << meta.status().to_string();
  EXPECT_EQ(meta.value().last_applied, 1u);
  EXPECT_EQ(from_ckpt.find(1)->value.read_u64(0), 7u);
}

TEST_F(RtRecoveryTest, CrashBetweenDeltaWriteAndManifestUpdateIsIgnored) {
  // kill -9 window 1: a delta artifact hit the disk but the manifest rename
  // never happened. The stray file must be ignored — the manifest is the
  // only source of truth — and every acked txn still recovers (the log
  // covers everything past the manifest's covered boundary).
  rt::NodeConfig c = config();
  c.log_path = (dir_ / "segments").string();
  c.log_segment_bytes = 512;
  {
    rt::Node node(c, "gen1");
    node.store().upsert(1, zeros8(), 0);
    node.start_primary(LogMode::kDirectDisk);
    for (int i = 0; i < 8; ++i) {
      txn::TxnProgram p;
      p.add_to_field(1, 0, 1);
      p.relative_deadline = 5_s;
      ASSERT_EQ(node.execute(std::move(p)).outcome, TxnOutcome::kCommitted);
    }
    ASSERT_TRUE(node.write_checkpoint());  // base, covers 1..8
    for (int i = 0; i < 4; ++i) {
      txn::TxnProgram p;
      p.add_to_field(1, 0, 1);
      p.relative_deadline = 5_s;
      ASSERT_EQ(node.execute(std::move(p)).outcome, TxnOutcome::kCommitted);
    }
    node.stop();
  }
  // Plant the "delta written, manifest not yet renamed" leftover: a stray
  // artifact with a huge epoch and garbage content.
  {
    std::FILE* f = std::fopen((c.checkpoint_path + ".d999").c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("torn half-written delta", f);
    std::fclose(f);
  }
  rt::Node node(c, "gen2");
  auto stats = node.recover_from_local_state();
  ASSERT_TRUE(stats.is_ok()) << stats.status().to_string();
  EXPECT_EQ(node.store().find(1)->value.read_u64(0), 12u);
  EXPECT_EQ(stats.value().last_seq, 12u);
  EXPECT_FALSE(stats.value().checkpoint_fallback);
}

TEST_F(RtRecoveryTest, CrashBetweenManifestUpdateAndTruncationIsIdempotent) {
  // kill -9 window 2: the manifest covers boundary B but the crash hit
  // before the segments below B were deleted. Recovery must skip (or
  // idempotently re-apply) the stale segments and lose nothing.
  rt::NodeConfig c = config();
  c.log_path = (dir_ / "segments").string();
  c.log_segment_bytes = 512;
  const auto stash = dir_ / "segments_stash";
  {
    rt::Node node(c, "gen1");
    node.store().upsert(1, zeros8(), 0);
    node.start_primary(LogMode::kDirectDisk);
    for (int i = 0; i < 20; ++i) {
      txn::TxnProgram p;
      p.add_to_field(1, 0, 1);
      p.relative_deadline = 5_s;
      ASSERT_EQ(node.execute(std::move(p)).outcome, TxnOutcome::kCommitted);
    }
    // Keep a copy of the pre-checkpoint segments, then checkpoint (which
    // truncates them).
    std::filesystem::copy(c.log_path, stash,
                          std::filesystem::copy_options::recursive);
    ASSERT_TRUE(node.write_checkpoint());  // covers 1..20, truncates
    for (int i = 0; i < 5; ++i) {
      txn::TxnProgram p;
      p.add_to_field(1, 0, 1);
      p.relative_deadline = 5_s;
      ASSERT_EQ(node.execute(std::move(p)).outcome, TxnOutcome::kCommitted);
    }
    node.stop();
  }
  // Undo the truncation: restore every stashed segment that was deleted,
  // modelling the crash landing between manifest rename and unlink.
  for (const auto& entry : std::filesystem::directory_iterator(stash)) {
    const auto dest =
        std::filesystem::path(c.log_path) / entry.path().filename();
    if (!std::filesystem::exists(dest)) {
      std::filesystem::copy(entry.path(), dest);
    }
  }
  rt::Node node(c, "gen2");
  auto stats = node.recover_from_local_state();
  ASSERT_TRUE(stats.is_ok()) << stats.status().to_string();
  EXPECT_EQ(node.store().find(1)->value.read_u64(0), 25u);
  EXPECT_EQ(stats.value().last_seq, 25u);
}

TEST_F(RtRecoveryTest, SegmentedRestartRecoversEveryAckedTxn) {
  rt::NodeConfig c = config();
  c.log_path = (dir_ / "segments").string();
  c.log_segment_bytes = 512;  // a few txns per segment: forces rotations
  {
    rt::Node node(c, "gen1");
    node.store().upsert(1, zeros8(), 0);
    node.start_primary(LogMode::kDirectDisk);
    for (int i = 0; i < 30; ++i) {
      txn::TxnProgram p;
      p.add_to_field(1, 0, 1);
      p.relative_deadline = 5_s;
      ASSERT_EQ(node.execute(std::move(p)).outcome, TxnOutcome::kCommitted);
    }
    // Checkpoint mid-run: covered segments are deleted on the spot. With
    // fuzzy checkpoints (the default) the artifact is a manifest-described
    // chain, not a bare file — recovery below restarts from that chain.
    ASSERT_TRUE(node.write_checkpoint());
    ASSERT_TRUE(std::filesystem::exists(
        storage::manifest_path_for(c.checkpoint_path)));
    for (int i = 0; i < 10; ++i) {
      txn::TxnProgram p;
      p.add_to_field(1, 0, 1);
      p.relative_deadline = 5_s;
      ASSERT_EQ(node.execute(std::move(p)).outcome, TxnOutcome::kCommitted);
    }
    node.stop();
  }
  {
    // The checkpoint's truncation kept the directory bounded: no sealed
    // segment fully below the checkpoint boundary survives.
    auto segments = log::SegmentedLogStorage::list_segments(c.log_path);
    ASSERT_TRUE(segments.is_ok());
    ASSERT_FALSE(segments.value().empty());
    for (const auto& seg : segments.value()) {
      if (seg.last_seq != 0) {
        EXPECT_GT(seg.last_seq, 30u) << seg.path;
      }
    }
    // kill -9 model: the crash tore the last record of the active segment.
    const auto& newest = segments.value().back();
    std::FILE* f = std::fopen(newest.path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char garbage[] = "\x40\x00\x00\x00mid-write";
    std::fwrite(garbage, 1, sizeof garbage, f);
    std::fclose(f);
  }
  {
    rt::Node node(c, "gen2");
    auto stats = node.recover_from_local_state();
    ASSERT_TRUE(stats.is_ok()) << stats.status().to_string();
    EXPECT_TRUE(stats.value().torn_tail);
    EXPECT_FALSE(stats.value().checkpoint_fallback);  // chain loaded clean
    EXPECT_EQ(stats.value().last_seq, 40u);
    EXPECT_GE(stats.value().committed_applied, 10u);
    EXPECT_EQ(node.store().find(1)->value.read_u64(0), 40u);

    // The restarted node continues the validation sequence past recovery.
    node.start_primary(LogMode::kDirectDisk);
    txn::TxnProgram p;
    p.add_to_field(1, 0, 1);
    p.relative_deadline = 5_s;
    ASSERT_EQ(node.execute(std::move(p)).outcome, TxnOutcome::kCommitted);
    EXPECT_EQ(node.store().find(1)->value.read_u64(0), 41u);
    node.stop();
  }
}

TEST_F(RtRecoveryTest, RecoverAfterStartIsRejected) {
  rt::Node node(config(), "late");
  node.start_primary(LogMode::kOff);
  auto stats = node.recover_from_local_state();
  ASSERT_FALSE(stats.is_ok());
  EXPECT_EQ(stats.status().code(), ErrorCode::kFailedPrecondition);
  node.stop();
}

// ---- instant recovery (DESIGN.md §12) ------------------------------------

class RtInstantRecoveryTest : public RtRecoveryTest {
 protected:
  /// Segmented log + instant restart; the sweep interval is cranked up so
  /// the background sweeper never races the assertions — everything the
  /// tests observe is first-touch on-demand replay.
  rt::NodeConfig instant_config() {
    rt::NodeConfig c = config();
    c.log_path = (dir_ / "segments").string();
    c.log_segment_bytes = 512;
    c.instant_recovery = true;
    c.recovery_sweep_interval = 5_s;
    c.recovery_sweep_txns = 1;
    return c;
  }

  /// 60 committed txns round-robin over 20 objects: each object ends at 3.
  void populate(const rt::NodeConfig& c) {
    rt::Node node(c, "gen1");
    node.start_primary(LogMode::kDirectDisk);
    for (int i = 0; i < 60; ++i) {
      txn::TxnProgram p;
      p.add_to_field(static_cast<ObjectId>(1 + i % 20), 0, 1);
      p.relative_deadline = 5_s;
      ASSERT_EQ(node.execute(std::move(p)).outcome, TxnOutcome::kCommitted);
    }
    node.stop();
  }
};

TEST_F(RtInstantRecoveryTest, ServesImmediatelyAndReplaysOnFirstTouchRead) {
  rt::NodeConfig c = instant_config();
  populate(c);

  rt::Node node(c, "gen2");
  auto stats = node.recover_from_local_state();
  ASSERT_TRUE(stats.is_ok()) << stats.status().to_string();
  EXPECT_TRUE(stats.value().instant);
  EXPECT_EQ(stats.value().committed_applied, 0u);  // nothing replayed yet
  EXPECT_EQ(stats.value().deferred_txns, 60u);
  EXPECT_EQ(stats.value().last_seq, 60u);

  node.start_primary(LogMode::kDirectDisk);
  ASSERT_TRUE(node.serving());
  // The lock-free path refuses while chains are draining (callers fall
  // back to the transactional path, which replays on first touch)...
  auto fast = node.read_committed(5);
  ASSERT_FALSE(fast.is_ok());
  EXPECT_EQ(fast.status().code(), ErrorCode::kUnavailable);
  // ...and the transactional read observes the full deferred chain.
  auto v = node.get(5);
  ASSERT_TRUE(v.is_ok()) << v.status().to_string();
  EXPECT_EQ(v.value().read_u64(0), 3u);
  node.stop();
}

TEST_F(RtInstantRecoveryTest, FirstTouchWriteSeesRecoveredValue) {
  rt::NodeConfig c = instant_config();
  populate(c);

  rt::Node node(c, "gen2");
  ASSERT_TRUE(node.recover_from_local_state().is_ok());
  node.start_primary(LogMode::kDirectDisk);
  // The very first access to object 7 is a read-modify-write: the engine
  // must replay its chain before the read phase, or the increment would
  // start from a stale base and lose the recovered history.
  txn::TxnProgram p;
  p.add_to_field(7, 0, 1);
  p.relative_deadline = 5_s;
  ASSERT_EQ(node.execute(std::move(p)).outcome, TxnOutcome::kCommitted);
  auto v = node.get(7);
  ASSERT_TRUE(v.is_ok());
  EXPECT_EQ(v.value().read_u64(0), 4u);  // 3 recovered + 1
  node.stop();
}

TEST_F(RtInstantRecoveryTest, ConcurrentFirstTouchesApplyChainExactlyOnce) {
  rt::NodeConfig c = instant_config();
  populate(c);

  c.worker_threads = 4;
  rt::Node node(c, "gen2");
  ASSERT_TRUE(node.recover_from_local_state().is_ok());
  node.start_primary(LogMode::kDirectDisk);

  // 40 concurrent increments all first-touch the SAME unrecovered object.
  // If the watermark failed and two workers replayed the chain twice — or a
  // parked after-image applied after a live write — increments would be
  // clobbered and the final value would drift from 3 + 40.
  std::atomic<int> committed{0};
  std::atomic<int> finished{0};
  for (int i = 0; i < 40; ++i) {
    txn::TxnProgram p;
    p.add_to_field(3, 0, 1);
    p.relative_deadline = 5_s;
    node.submit(std::move(p), [&](const rt::CommitInfo& info) {
      if (info.outcome == TxnOutcome::kCommitted) ++committed;
      ++finished;
    });
  }
  for (int waited = 0; waited < 500 && finished.load() < 40; ++waited) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(finished.load(), 40);
  ASSERT_EQ(committed.load(), 40);
  auto v = node.get(3);
  ASSERT_TRUE(v.is_ok());
  EXPECT_EQ(v.value().read_u64(0), 43u);
  node.stop();
}

TEST_F(RtInstantRecoveryTest, CrashMidSweepThenRestartLosesNothing) {
  rt::NodeConfig c = instant_config();
  populate(c);

  {
    // gen2 restarts instantly, commits one transaction, then dies with most
    // chains still parked (the sweeper never got a slice). Nothing was
    // checkpointed, so the segments still hold the full history.
    rt::Node node(c, "gen2");
    ASSERT_TRUE(node.recover_from_local_state().is_ok());
    node.start_primary(LogMode::kDirectDisk);
    txn::TxnProgram p;
    p.add_to_field(1, 0, 1);
    p.relative_deadline = 5_s;
    ASSERT_EQ(node.execute(std::move(p)).outcome, TxnOutcome::kCommitted);
    node.stop();
  }
  {
    // gen3 replays the log in full (instant off): every pre-crash commit
    // AND gen2's one commit must be there — the deferred chains gen2 never
    // applied were log state, not volatile state.
    rt::NodeConfig full = c;
    full.instant_recovery = false;
    rt::Node node(full, "gen3");
    auto stats = node.recover_from_local_state();
    ASSERT_TRUE(stats.is_ok()) << stats.status().to_string();
    EXPECT_FALSE(stats.value().instant);
    EXPECT_EQ(stats.value().last_seq, 61u);
    ASSERT_NE(node.store().find(1), nullptr);
    EXPECT_EQ(node.store().find(1)->value.read_u64(0), 4u);  // 3 + gen2's 1
    for (ObjectId oid = 2; oid <= 20; ++oid) {
      ASSERT_NE(node.store().find(oid), nullptr) << oid;
      EXPECT_EQ(node.store().find(oid)->value.read_u64(0), 3u) << oid;
    }
  }
}

TEST_F(RtInstantRecoveryTest, InstantRestartContinuesSequenceAfterDrain) {
  rt::NodeConfig c = instant_config();
  c.recovery_sweep_interval = 1_ms;
  c.recovery_sweep_txns = 256;
  populate(c);

  rt::Node node(c, "gen2");
  auto stats = node.recover_from_local_state();
  ASSERT_TRUE(stats.is_ok());
  EXPECT_TRUE(stats.value().instant);
  node.start_primary(LogMode::kDirectDisk);
  // The background sweeper drains the whole index in a few slices; the
  // lock-free read path reopens once active() turns false.
  bool drained = false;
  for (int waited = 0; waited < 500; ++waited) {
    if (node.read_committed(5).is_ok()) {
      drained = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(drained);
  EXPECT_EQ(node.read_committed(5).value().read_u64(0), 3u);
  // The validation sequence continues past the recovered history.
  txn::TxnProgram p;
  p.add_to_field(5, 0, 1);
  p.relative_deadline = 5_s;
  ASSERT_EQ(node.execute(std::move(p)).outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(node.get(5).value().read_u64(0), 4u);
  node.stop();
}

}  // namespace
}  // namespace rodain
