// End-to-end tests of the simulated RODAIN pair: normal two-node commits,
// direct-disk mode, logging off, failover, rejoin, and data survival.
#include <gtest/gtest.h>

#include "rodain/exp/session.hpp"
#include "rodain/simdb/sim_cluster.hpp"
#include "rodain/workload/calibration.hpp"

namespace rodain {
namespace {

using namespace rodain::literals;
using workload::PaperSetup;

exp::SessionConfig small_session(simdb::SimClusterConfig cluster,
                                 double rate_tps, double write_fraction,
                                 std::size_t count = 500) {
  exp::SessionConfig c;
  c.cluster = std::move(cluster);
  c.database = PaperSetup::database();
  c.database.num_objects = 2000;  // small DB for fast tests
  c.cluster.node.store_capacity_hint = 2000;
  c.workload = PaperSetup::workload(write_fraction);
  c.arrival_rate_tps = rate_tps;
  c.txn_count = count;
  c.seed = 7;
  return c;
}

TEST(SimCluster, TwoNodeLightLoadCommitsEverything) {
  auto result = exp::run_session(small_session(PaperSetup::two_node(true), 50, 0.5));
  EXPECT_EQ(result.counters.submitted, 500u);
  EXPECT_EQ(result.counters.committed, 500u);
  EXPECT_EQ(result.counters.missed_total(), 0u);
}

TEST(SimCluster, TwoNodeCommitLatencyIncludesRoundTrip) {
  auto result = exp::run_session(small_session(PaperSetup::two_node(true), 50, 0.5));
  // Commit path: CPU work (~3-4 ms) + 1 ms RTT. Everything well under 10 ms
  // at this load, but strictly above the no-log latency.
  auto no_log = exp::run_session(small_session(PaperSetup::no_logging(), 50, 0.5));
  EXPECT_GT(result.commit_latency.mean(), no_log.commit_latency.mean());
  EXPECT_LT(result.commit_latency.quantile(0.99), 30_ms);
}

TEST(SimCluster, SingleNodeDiskSaturatesEarly) {
  // The disk serializes ~8 ms per commit: at 200 txn/s a lone node must
  // shed a large share; the two-node system handles it.
  auto lone = exp::run_session(small_session(PaperSetup::single_node(true), 200, 0.5, 1000));
  auto pair_result = exp::run_session(small_session(PaperSetup::two_node(true), 200, 0.5, 1000));
  EXPECT_GT(lone.miss_ratio(), 0.3);
  EXPECT_LT(pair_result.miss_ratio(), lone.miss_ratio() / 2);
}

TEST(SimCluster, NoLogsBeatsEverything) {
  auto no_log = exp::run_session(small_session(PaperSetup::no_logging(), 250, 0.5, 1000));
  auto lone = exp::run_session(small_session(PaperSetup::single_node(true), 250, 0.5, 1000));
  EXPECT_LE(no_log.miss_ratio(), lone.miss_ratio());
}

TEST(SimCluster, MirrorKeepsAnIdenticalCopy) {
  sim::Simulation sim;
  auto config = PaperSetup::two_node(true);
  config.node.store_capacity_hint = 500;
  simdb::SimCluster cluster(sim, config);
  workload::DatabaseConfig db;
  db.num_objects = 500;
  cluster.populate([&](storage::ObjectStore& s, storage::BPlusTree& i) {
    workload::load_database(db, s, i);
  });
  cluster.start();

  workload::Trace trace =
      workload::Trace::generate(db, PaperSetup::workload(1.0), 100, 300, 11);
  std::size_t committed = 0;
  for (const auto& e : trace.entries()) {
    sim.schedule_after(e.offset, [&] {
      cluster.submit(e.program, [&](const simdb::TxnResult& r) {
        committed += (r.outcome == TxnOutcome::kCommitted);
      });
    });
  }
  sim.run_until(TimePoint::origin() + trace.duration() + 5_s);
  ASSERT_GT(committed, 0u);

  // Every object on the primary must equal the mirror's copy.
  std::size_t checked = 0;
  cluster.node_a().store().for_each(
      [&](ObjectId id, const storage::ObjectRecord& rec) {
        const storage::ObjectRecord* mirror_rec = cluster.node_b().store().find(id);
        ASSERT_NE(mirror_rec, nullptr) << id;
        EXPECT_EQ(mirror_rec->value, rec.value) << id;
        ++checked;
      });
  EXPECT_EQ(checked, 500u);
}

TEST(SimCluster, FailoverMirrorTakesOver) {
  sim::Simulation sim;
  auto config = PaperSetup::two_node(true);
  config.node.store_capacity_hint = 500;
  simdb::SimCluster cluster(sim, config);
  workload::DatabaseConfig db;
  db.num_objects = 500;
  cluster.populate([&](storage::ObjectStore& s, storage::BPlusTree& i) {
    workload::load_database(db, s, i);
  });
  cluster.start();

  // Steady trickle of transactions for 10 s; primary dies at t=3 s.
  workload::Trace trace =
      workload::Trace::generate(db, PaperSetup::workload(0.5), 50, 500, 23);
  TxnCounters seen;
  for (const auto& e : trace.entries()) {
    sim.schedule_after(e.offset, [&] {
      cluster.submit(e.program, [&](const simdb::TxnResult& r) {
        ++seen.submitted;
        if (r.outcome == TxnOutcome::kCommitted) ++seen.committed;
        if (r.outcome == TxnOutcome::kSystemAborted) ++seen.system_aborted;
      });
    });
  }
  sim.schedule_at(TimePoint{3'000'000}, [&] { cluster.fail_node(cluster.node_a()); });
  sim.run_until(TimePoint::origin() + trace.duration() + 5_s);

  // The mirror must have taken over and served the tail of the load.
  EXPECT_EQ(cluster.node_b().role(), NodeRole::kPrimaryAlone);
  EXPECT_EQ(cluster.node_a().role(), NodeRole::kDown);
  ASSERT_TRUE(cluster.last_failover_gap().has_value());
  // Detection (watchdog 200 ms) + activation (1 ms) bounds the outage.
  EXPECT_LT(cluster.last_failover_gap()->to_ms(), 400.0);
  EXPECT_GT(seen.committed, 400u);  // most of the 500 still committed
  EXPECT_GT(cluster.node_b().counters().committed, 0u);
}

TEST(SimCluster, RecoveredNodeRejoinsAsMirror) {
  sim::Simulation sim;
  auto config = PaperSetup::two_node(true);
  config.node.store_capacity_hint = 300;
  simdb::SimCluster cluster(sim, config);
  workload::DatabaseConfig db;
  db.num_objects = 300;
  cluster.populate([&](storage::ObjectStore& s, storage::BPlusTree& i) {
    workload::load_database(db, s, i);
  });
  cluster.start();

  workload::Trace trace =
      workload::Trace::generate(db, PaperSetup::workload(0.5), 50, 600, 31);
  std::size_t committed = 0;
  for (const auto& e : trace.entries()) {
    sim.schedule_after(e.offset, [&] {
      cluster.submit(e.program, [&](const simdb::TxnResult& r) {
        committed += (r.outcome == TxnOutcome::kCommitted);
      });
    });
  }
  sim.schedule_at(TimePoint{3'000'000}, [&] { cluster.fail_node(cluster.node_a()); });
  sim.schedule_at(TimePoint{6'000'000}, [&] { cluster.recover_node(cluster.node_a()); });
  sim.run_until(TimePoint::origin() + trace.duration() + 5_s);

  // The failed node is back as Mirror ("the failed node will always become
  // a Mirror Node when it recovers", paper §2) and B serves with logs
  // shipped to it again.
  EXPECT_EQ(cluster.node_a().role(), NodeRole::kMirror);
  EXPECT_EQ(cluster.node_b().role(), NodeRole::kPrimaryWithMirror);
  EXPECT_GT(committed, 450u);

  // After rejoin the copies must converge.
  std::size_t mismatches = 0;
  cluster.node_b().store().for_each(
      [&](ObjectId id, const storage::ObjectRecord& rec) {
        const storage::ObjectRecord* copy = cluster.node_a().store().find(id);
        if (!copy || !(copy->value == rec.value)) ++mismatches;
      });
  EXPECT_EQ(mismatches, 0u);
}

TEST(SimCluster, CommittedDataSurvivesFailover) {
  // Commit a known update, then kill the primary; the value must be
  // readable from the survivor's store.
  sim::Simulation sim;
  auto config = PaperSetup::two_node(true);
  config.node.store_capacity_hint = 100;
  simdb::SimCluster cluster(sim, config);
  workload::DatabaseConfig db;
  db.num_objects = 100;
  cluster.populate([&](storage::ObjectStore& s, storage::BPlusTree& i) {
    workload::load_database(db, s, i);
  });
  cluster.start();

  bool committed = false;
  sim.schedule_at(TimePoint{100'000}, [&] {
    txn::TxnProgram p;
    p.add_to_field(workload::oid_for(7), workload::kCounterOffset, 41);
    p.with_deadline(150_ms);
    cluster.submit(std::move(p), [&](const simdb::TxnResult& r) {
      committed = (r.outcome == TxnOutcome::kCommitted);
    });
  });
  sim.schedule_at(TimePoint{1'000'000}, [&] { cluster.fail_node(cluster.node_a()); });
  sim.run_until(TimePoint{5'000'000});

  ASSERT_TRUE(committed);
  EXPECT_EQ(cluster.node_b().role(), NodeRole::kPrimaryAlone);
  const storage::ObjectRecord* rec =
      cluster.node_b().store().find(workload::oid_for(7));
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->value.read_u64(workload::kCounterOffset), 41u);
}

TEST(SimCluster, SubmissionsDuringOutageAreRejected) {
  sim::Simulation sim;
  auto config = PaperSetup::two_node(true);
  config.node.store_capacity_hint = 100;
  simdb::SimCluster cluster(sim, config);
  workload::DatabaseConfig db;
  db.num_objects = 100;
  cluster.populate([&](storage::ObjectStore& s, storage::BPlusTree& i) {
    workload::load_database(db, s, i);
  });
  cluster.start();

  sim.schedule_at(TimePoint{1'000'000}, [&] { cluster.fail_node(cluster.node_a()); });
  TxnOutcome outage_outcome = TxnOutcome::kCommitted;
  // 50 ms after the crash the watchdog (200 ms) has not fired yet: no
  // serving node.
  sim.schedule_at(TimePoint{1'050'000}, [&] {
    txn::TxnProgram p;
    p.read(workload::oid_for(1));
    cluster.submit(std::move(p), [&](const simdb::TxnResult& r) {
      outage_outcome = r.outcome;
    });
  });
  sim.run_until(TimePoint{3'000'000});
  EXPECT_EQ(outage_outcome, TxnOutcome::kSystemAborted);
  EXPECT_GT(cluster.total_downtime(), 100_ms);
}

}  // namespace
}  // namespace rodain
