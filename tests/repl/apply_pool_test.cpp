// repl::ApplyPool — the mirror's epoch-parallel apply (DESIGN.md §14).
//
// The load-bearing property: for ANY epoch, applying through the pool at
// any width leaves the store byte-identical to serial apply — values, wts
// stamps, and tombstones — because conflicting transactions never share a
// wave and waves barrier in seq order. The permutation test checks exactly
// that; the hammer runs the width-4 pool under TSan.
#include "rodain/repl/apply_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>

#include "rodain/common/rng.hpp"
#include "rodain/log/record.hpp"
#include "rodain/storage/object_store.hpp"

namespace rodain::repl {
namespace {

storage::Value val(std::string_view s) { return storage::Value{s}; }

log::ReleasedTxn make_txn(ValidationTs seq, std::vector<ObjectId> write_oids,
                          std::vector<ObjectId> delete_oids = {}) {
  log::ReleasedTxn t;
  t.seq = seq;
  t.txn = 1000 + seq;
  for (ObjectId oid : write_oids) {
    t.records.push_back(log::Record::write_image(
        t.txn, oid, val("s" + std::to_string(seq) + "o" + std::to_string(oid))));
  }
  for (ObjectId oid : delete_oids) {
    t.records.push_back(log::Record::tombstone(t.txn, oid));
  }
  t.records.push_back(log::Record::commit(
      t.txn, seq, /*serial_ts=*/seq * 7 + 1,
      static_cast<std::uint32_t>(write_oids.size() + delete_oids.size())));
  return t;
}

/// The mirror's apply_txn, distilled: install after-images and tombstones
/// stamped with the commit record's serial_ts.
ApplyPool::ApplyFn applier(storage::ObjectStore& store) {
  return [&store](const log::ReleasedTxn& t) {
    const ValidationTs serial_ts = t.records.back().serial_ts;
    for (const log::Record& r : t.records) {
      switch (r.type) {
        case log::RecordType::kWriteImage:
          store.upsert(r.oid, r.after, serial_ts);
          break;
        case log::RecordType::kDelete:
          store.tombstone(r.oid, serial_ts);
          break;
        case log::RecordType::kCommit:
          break;
      }
    }
  };
}

using StoreState =
    std::map<ObjectId, std::tuple<storage::Value, ValidationTs, bool>>;

StoreState snapshot(const storage::ObjectStore& store) {
  StoreState state;
  store.for_each([&](ObjectId oid, const storage::ObjectRecord& r) {
    state[oid] = {r.value, r.wts, r.deleted};
  });
  return state;
}

void expect_identical(const StoreState& serial, const StoreState& parallel) {
  ASSERT_EQ(serial.size(), parallel.size());
  for (const auto& [oid, expected] : serial) {
    auto it = parallel.find(oid);
    ASSERT_NE(it, parallel.end()) << "object " << oid;
    EXPECT_TRUE(std::get<0>(it->second) == std::get<0>(expected))
        << "value of object " << oid;
    EXPECT_EQ(std::get<1>(it->second), std::get<1>(expected))
        << "wts of object " << oid;
    EXPECT_EQ(std::get<2>(it->second), std::get<2>(expected))
        << "tombstone of object " << oid;
  }
}

TEST(ApplyPoolFootprint, CoversWritesDeletesAndNothingElse) {
  auto t = make_txn(1, {10, 20}, {30});
  auto stripes = ApplyPool::footprint(t);
  EXPECT_EQ(stripes.size(), 3u);  // three distinct oids, stripes deduped
  EXPECT_TRUE(std::is_sorted(stripes.begin(), stripes.end()));
  // Commit-only transactions have no footprint (conflict with nothing).
  auto empty = make_txn(2, {});
  EXPECT_TRUE(ApplyPool::footprint(empty).empty());
  // The same oid twice folds to one stripe.
  auto dup = make_txn(3, {10, 10});
  EXPECT_EQ(ApplyPool::footprint(dup).size(), 1u);
}

TEST(ApplyPoolFootprint, SameOidAlwaysIntersects) {
  // The partition guarantee reduces to this: any two transactions writing
  // the same oid share a stripe, so they can never land in one wave.
  auto a = ApplyPool::footprint(make_txn(1, {42, 7}));
  auto b = ApplyPool::footprint(make_txn(2, {42, 9999}));
  std::vector<std::uint32_t> common;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(common));
  EXPECT_FALSE(common.empty());
}

TEST(ApplyPool, AllConflictingEpochFullySerializes) {
  storage::ObjectStore store(64);
  ApplyPool pool(4);
  std::vector<log::ReleasedTxn> epoch;
  for (ValidationTs seq = 1; seq <= 6; ++seq) {
    epoch.push_back(make_txn(seq, {7}));  // everyone writes oid 7
  }
  pool.apply(epoch, applier(store));
  EXPECT_EQ(pool.stats().waves, 6u);  // one wave per transaction
  EXPECT_EQ(pool.stats().parallel_txns, 0u);
  EXPECT_EQ(pool.stats().conflict_cuts, 5u);
  EXPECT_EQ(pool.stats().max_wave, 1u);
  // Last writer in seq order wins, stamped with ITS serial_ts.
  StoreState state = snapshot(store);
  ASSERT_EQ(state.size(), 1u);
  EXPECT_TRUE(std::get<0>(state[7]) == val("s6o7"));
  EXPECT_EQ(std::get<1>(state[7]), 6u * 7 + 1);
}

TEST(ApplyPool, DisjointEpochIsOneWave) {
  storage::ObjectStore store(64);
  ApplyPool pool(4);
  std::vector<log::ReleasedTxn> epoch;
  for (ValidationTs seq = 1; seq <= 8; ++seq) {
    epoch.push_back(make_txn(seq, {100 + seq}));
  }
  pool.apply(epoch, applier(store));
  EXPECT_EQ(pool.stats().waves, 1u);
  EXPECT_EQ(pool.stats().max_wave, 8u);
  EXPECT_EQ(pool.stats().parallel_txns, 8u);
  EXPECT_EQ(pool.stats().conflict_cuts, 0u);
  EXPECT_DOUBLE_EQ(pool.mean_wave_width(), 8.0);
  EXPECT_EQ(snapshot(store).size(), 8u);
}

TEST(ApplyPool, WidthOneAndWidthFourKeepIdenticalAccounting) {
  // The wave partition is computed even when execution is inline serial:
  // virtual-time parity in the simulator depends on the numbers matching.
  std::vector<log::ReleasedTxn> epoch;
  for (ValidationTs seq = 1; seq <= 10; ++seq) {
    epoch.push_back(make_txn(seq, {seq % 3 == 0 ? 5u : 200 + seq}));
  }
  storage::ObjectStore s1(64), s4(64);
  ApplyPool p1(1), p4(4);
  p1.apply(epoch, applier(s1));
  p4.apply(epoch, applier(s4));
  EXPECT_EQ(p1.stats().epochs, p4.stats().epochs);
  EXPECT_EQ(p1.stats().waves, p4.stats().waves);
  EXPECT_EQ(p1.stats().txns, p4.stats().txns);
  EXPECT_EQ(p1.stats().parallel_txns, p4.stats().parallel_txns);
  EXPECT_EQ(p1.stats().conflict_cuts, p4.stats().conflict_cuts);
  EXPECT_EQ(p1.stats().max_wave, p4.stats().max_wave);
  expect_identical(snapshot(s1), snapshot(s4));
}

// The acceptance property: random workloads, random epoch chunking —
// parallel apply is byte-identical to serial (values, wts, tombstones).
TEST(ApplyPool, PropertySerialAndParallelApplyAreByteIdentical) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    const std::size_t n = 160;
    const ObjectId pool_size = 24;  // small pool => plenty of conflicts
    std::vector<log::ReleasedTxn> txns;
    for (ValidationTs seq = 1; seq <= n; ++seq) {
      std::vector<ObjectId> writes, deletes;
      const std::size_t k = 1 + rng.next_u64() % 4;
      for (std::size_t i = 0; i < k; ++i) {
        const ObjectId oid = 1 + rng.next_u64() % pool_size;
        if (rng.next_u64() % 5 == 0) {
          deletes.push_back(oid);
        } else {
          writes.push_back(oid);
        }
      }
      txns.push_back(make_txn(seq, std::move(writes), std::move(deletes)));
    }

    storage::ObjectStore serial_store(64);
    storage::ObjectStore parallel_store(64);
    ApplyPool serial(1);
    ApplyPool parallel(4);
    // Chunk the stream into epochs of random size, same cuts for both.
    std::size_t begin = 0;
    while (begin < txns.size()) {
      const std::size_t len =
          std::min<std::size_t>(1 + rng.next_u64() % 8, txns.size() - begin);
      std::vector<log::ReleasedTxn> epoch(txns.begin() + begin,
                                          txns.begin() + begin + len);
      serial.apply(epoch, applier(serial_store));
      parallel.apply(epoch, applier(parallel_store));
      begin += len;
    }
    expect_identical(snapshot(serial_store), snapshot(parallel_store));
    EXPECT_EQ(serial.stats().waves, parallel.stats().waves) << seed;
    EXPECT_EQ(serial.stats().conflict_cuts, parallel.stats().conflict_cuts)
        << seed;
  }
}

// TSan target: a width-4 pool grinding epochs whose wide waves make the
// workers genuinely overlap on the store's per-record seqlocks.
TEST(ApplyPool, HammerFourWorkers) {
  storage::ObjectStore store(4096);
  storage::ObjectStore reference(4096);
  ApplyPool pool(4);
  ApplyPool serial(1);
  Rng rng(99);
  for (int round = 0; round < 40; ++round) {
    std::vector<log::ReleasedTxn> epoch;
    const std::size_t width = 16 + rng.next_u64() % 16;
    for (std::size_t i = 0; i < width; ++i) {
      const ValidationTs seq = round * 64 + i + 1;
      // Mostly-disjoint oids keep the waves wide; a few collisions keep the
      // conflict cuts honest.
      std::vector<ObjectId> writes{1 + rng.next_u64() % 2000,
                                   2001 + rng.next_u64() % 2000};
      if (i % 7 == 0) writes.push_back(4242);
      epoch.push_back(make_txn(seq, std::move(writes)));
    }
    pool.apply(epoch, applier(store));
    serial.apply(epoch, applier(reference));
  }
  EXPECT_GT(pool.stats().parallel_txns, 0u);
  expect_identical(snapshot(reference), snapshot(store));
}

}  // namespace
}  // namespace rodain::repl
