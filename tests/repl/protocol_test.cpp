#include "rodain/repl/protocol.hpp"

#include <gtest/gtest.h>

namespace rodain::repl {
namespace {

storage::Value val(std::string_view s) { return storage::Value{s}; }

Message round_trip(const Message& m) {
  auto decoded = decode(encode(m));
  EXPECT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  return decoded.is_ok() ? std::move(decoded).value() : Message{};
}

TEST(ReplProtocol, LogBatchRoundTrip) {
  Message m = Message::log_batch({
      log::Record::write_image(7, 101, val("after")),
      log::Record::commit(7, 3, 3000, 1),
  });
  Message out = round_trip(m);
  EXPECT_EQ(out.type, MsgType::kLogBatch);
  ASSERT_EQ(out.records.size(), 2u);
  EXPECT_EQ(out.records[0], m.records[0]);
  EXPECT_EQ(out.records[1], m.records[1]);
}

TEST(ReplProtocol, EmptyLogBatch) {
  Message out = round_trip(Message::log_batch({}));
  EXPECT_EQ(out.type, MsgType::kLogBatch);
  EXPECT_TRUE(out.records.empty());
}

TEST(ReplProtocol, CommitAckRoundTrip) {
  Message out = round_trip(Message::commit_ack(123456789));
  EXPECT_EQ(out.type, MsgType::kCommitAck);
  EXPECT_EQ(out.seq, 123456789u);
}

TEST(ReplProtocol, HeartbeatRoundTrip) {
  Message out = round_trip(Message::heartbeat(NodeRole::kMirror, 42));
  EXPECT_EQ(out.type, MsgType::kHeartbeat);
  EXPECT_EQ(out.role, NodeRole::kMirror);
  EXPECT_EQ(out.seq, 42u);
}

TEST(ReplProtocol, JoinRequestRoundTrip) {
  Message out = round_trip(Message::join_request(17));
  EXPECT_EQ(out.type, MsgType::kJoinRequest);
  EXPECT_EQ(out.have, 17u);
}

TEST(ReplProtocol, SnapshotChunkRoundTrip) {
  std::vector<std::byte> blob(1000);
  for (std::size_t i = 0; i < blob.size(); ++i) blob[i] = static_cast<std::byte>(i);
  Message out = round_trip(Message::snapshot_chunk(77, 3, 10, blob));
  EXPECT_EQ(out.type, MsgType::kSnapshotChunk);
  EXPECT_EQ(out.snapshot_id, 77u);
  EXPECT_EQ(out.chunk_index, 3u);
  EXPECT_EQ(out.chunk_total, 10u);
  EXPECT_EQ(out.blob, blob);
}

TEST(ReplProtocol, SnapshotDoneRoundTrip) {
  Message out = round_trip(Message::snapshot_done(999, 77));
  EXPECT_EQ(out.type, MsgType::kSnapshotDone);
  EXPECT_EQ(out.seq, 999u);
  EXPECT_EQ(out.snapshot_id, 77u);
}

TEST(ReplProtocol, ChunkRetryRoundTrip) {
  Message out = round_trip(Message::chunk_retry(42, {0, 5, 17}));
  EXPECT_EQ(out.type, MsgType::kChunkRetry);
  EXPECT_EQ(out.snapshot_id, 42u);
  EXPECT_EQ(out.missing, (std::vector<std::uint32_t>{0, 5, 17}));
}

TEST(ReplProtocol, FramedRoundTrip) {
  Message m = Message::commit_ack(99);
  auto bytes = encode_framed(7, 12, m);
  auto frame = decode_framed(bytes);
  ASSERT_TRUE(frame.is_ok()) << frame.status().to_string();
  EXPECT_EQ(frame.value().epoch, 7u);
  EXPECT_EQ(frame.value().frame_seq, 12u);
  EXPECT_EQ(frame.value().msg.type, MsgType::kCommitAck);
  EXPECT_EQ(frame.value().msg.seq, 99u);
}

TEST(ReplProtocol, FramedEncodeIntoReusedBufferMatchesFreshEncode) {
  // The endpoint reuses one ByteWriter across sends; the appended bytes must
  // be identical to a fresh allocation, frame after frame.
  ByteWriter reused;
  for (std::uint64_t frame_seq = 1; frame_seq <= 3; ++frame_seq) {
    Message m = Message::commit_ack(100 + frame_seq);
    reused.clear();
    encode_framed_into(7, frame_seq, m, reused);
    const auto view = reused.view();
    const std::vector<std::byte> bytes(view.begin(), view.end());
    EXPECT_EQ(bytes, encode_framed(7, frame_seq, m)) << frame_seq;
    auto frame = decode_framed(bytes);
    ASSERT_TRUE(frame.is_ok()) << frame.status().to_string();
    EXPECT_EQ(frame.value().msg.seq, 100 + frame_seq);
  }
}

TEST(ReplProtocol, FramedCrcRejectsBitFlip) {
  auto bytes = encode_framed(7, 12, Message::commit_ack(99));
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    auto copy = bytes;
    copy[i] ^= std::byte{0x01};
    EXPECT_FALSE(decode_framed(copy).is_ok()) << "flip at byte " << i;
  }
}

TEST(ReplProtocol, FramedTruncationRejected) {
  auto bytes = encode_framed(1, 1, Message::heartbeat(NodeRole::kMirror, 4));
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<std::byte> prefix(bytes.begin(), bytes.begin() + cut);
    EXPECT_FALSE(decode_framed(prefix).is_ok()) << "cut to " << cut;
  }
}

TEST(ReplProtocol, GarbageRejected) {
  std::vector<std::byte> garbage{std::byte{0xfe}, std::byte{0x01}};
  EXPECT_FALSE(decode(garbage).is_ok());
  EXPECT_FALSE(decode({}).is_ok());
}

TEST(ReplProtocol, TruncatedMessageRejected) {
  auto bytes = encode(Message::commit_ack(1 << 20));
  bytes.resize(bytes.size() - 1);
  EXPECT_FALSE(decode(bytes).is_ok());
}

TEST(ReplProtocol, TrailingBytesRejected) {
  auto bytes = encode(Message::commit_ack(5));
  bytes.push_back(std::byte{0});
  EXPECT_FALSE(decode(bytes).is_ok());
}

TEST(ReplProtocol, CorruptRecordInBatchRejected) {
  auto bytes = encode(Message::log_batch({log::Record::commit(1, 1, 1000, 0)}));
  bytes[bytes.size() / 2] ^= std::byte{0x80};
  EXPECT_FALSE(decode(bytes).is_ok());
}

}  // namespace
}  // namespace rodain::repl
