#include "rodain/repl/protocol.hpp"

#include <gtest/gtest.h>

namespace rodain::repl {
namespace {

storage::Value val(std::string_view s) { return storage::Value{s}; }

Message round_trip(const Message& m) {
  auto decoded = decode(encode(m));
  EXPECT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  return decoded.is_ok() ? std::move(decoded).value() : Message{};
}

TEST(ReplProtocol, LogBatchRoundTrip) {
  Message m = Message::log_batch({
      log::Record::write_image(7, 101, val("after")),
      log::Record::commit(7, 3, 3000, 1),
  });
  Message out = round_trip(m);
  EXPECT_EQ(out.type, MsgType::kLogBatch);
  ASSERT_EQ(out.records.size(), 2u);
  EXPECT_EQ(out.records[0], m.records[0]);
  EXPECT_EQ(out.records[1], m.records[1]);
}

TEST(ReplProtocol, EmptyLogBatch) {
  Message out = round_trip(Message::log_batch({}));
  EXPECT_EQ(out.type, MsgType::kLogBatch);
  EXPECT_TRUE(out.records.empty());
}

TEST(ReplProtocol, CommitAckRoundTrip) {
  Message out = round_trip(Message::commit_ack(123456789));
  EXPECT_EQ(out.type, MsgType::kCommitAck);
  EXPECT_EQ(out.seq, 123456789u);
}

TEST(ReplProtocol, HeartbeatRoundTrip) {
  Message out = round_trip(Message::heartbeat(NodeRole::kMirror, 42));
  EXPECT_EQ(out.type, MsgType::kHeartbeat);
  EXPECT_EQ(out.role, NodeRole::kMirror);
  EXPECT_EQ(out.seq, 42u);
}

TEST(ReplProtocol, JoinRequestRoundTrip) {
  Message out = round_trip(Message::join_request(17));
  EXPECT_EQ(out.type, MsgType::kJoinRequest);
  EXPECT_EQ(out.have, 17u);
}

TEST(ReplProtocol, SnapshotChunkRoundTrip) {
  std::vector<std::byte> blob(1000);
  for (std::size_t i = 0; i < blob.size(); ++i) blob[i] = static_cast<std::byte>(i);
  Message out = round_trip(Message::snapshot_chunk(3, 10, blob));
  EXPECT_EQ(out.type, MsgType::kSnapshotChunk);
  EXPECT_EQ(out.chunk_index, 3u);
  EXPECT_EQ(out.chunk_total, 10u);
  EXPECT_EQ(out.blob, blob);
}

TEST(ReplProtocol, SnapshotDoneRoundTrip) {
  Message out = round_trip(Message::snapshot_done(999));
  EXPECT_EQ(out.type, MsgType::kSnapshotDone);
  EXPECT_EQ(out.seq, 999u);
}

TEST(ReplProtocol, GarbageRejected) {
  std::vector<std::byte> garbage{std::byte{0xfe}, std::byte{0x01}};
  EXPECT_FALSE(decode(garbage).is_ok());
  EXPECT_FALSE(decode({}).is_ok());
}

TEST(ReplProtocol, TruncatedMessageRejected) {
  auto bytes = encode(Message::commit_ack(1 << 20));
  bytes.resize(bytes.size() - 1);
  EXPECT_FALSE(decode(bytes).is_ok());
}

TEST(ReplProtocol, TrailingBytesRejected) {
  auto bytes = encode(Message::commit_ack(5));
  bytes.push_back(std::byte{0});
  EXPECT_FALSE(decode(bytes).is_ok());
}

TEST(ReplProtocol, CorruptRecordInBatchRejected) {
  auto bytes = encode(Message::log_batch({log::Record::commit(1, 1, 1000, 0)}));
  bytes[bytes.size() / 2] ^= std::byte{0x80};
  EXPECT_FALSE(decode(bytes).is_ok());
}

}  // namespace
}  // namespace rodain::repl
