// Endpoint hardening: envelope anti-replay window, corrupt-frame
// rejection, the polled reconnect/backoff state machine, and the Watchdog
// failure detector's boundary behaviour.
#include <gtest/gtest.h>

#include "rodain/common/backoff.hpp"
#include "rodain/repl/endpoint.hpp"

namespace rodain::repl {
namespace {

/// In-memory channel: records sent frames, injects received ones.
class StubChannel final : public net::Channel {
 public:
  void set_message_handler(MessageHandler handler) override {
    handler_ = std::move(handler);
  }
  void set_disconnect_handler(DisconnectHandler handler) override {
    on_disconnect_ = std::move(handler);
  }
  Status send(std::vector<std::byte> frame) override {
    if (!up_) return Status::error(ErrorCode::kUnavailable, "link down");
    sent_.push_back(std::move(frame));
    return Status::ok();
  }
  [[nodiscard]] bool connected() const override { return up_; }
  void close() override { up_ = false; }

  void inject(std::vector<std::byte> frame) { handler_(std::move(frame)); }
  void set_up(bool up) {
    const bool went_down = up_ && !up;
    up_ = up;
    if (went_down && on_disconnect_) on_disconnect_();
  }
  std::vector<std::vector<std::byte>> sent_;

 private:
  MessageHandler handler_;
  DisconnectHandler on_disconnect_;
  bool up_{true};
};

struct Rig {
  ManualClock clock;
  StubChannel channel;
  std::vector<ValidationTs> acks;
  int protocol_errors = 0;
  int reconnected = 0;
  std::unique_ptr<Endpoint> ep;

  Rig() {
    Endpoint::Handlers handlers;
    handlers.on_commit_ack = [this](ValidationTs seq) { acks.push_back(seq); };
    handlers.on_protocol_error = [this](Status) { ++protocol_errors; };
    handlers.on_reconnected = [this] { ++reconnected; };
    ep = std::make_unique<Endpoint>(channel, clock, std::move(handlers));
  }

  void inject(std::uint64_t epoch, std::uint64_t seq, const Message& m) {
    channel.inject(encode_framed(epoch, seq, m));
  }
};

TEST(Endpoint, SendWrapsFramedEnvelope) {
  Rig rig;
  ASSERT_TRUE(rig.ep->send(Message::commit_ack(7)).is_ok());
  ASSERT_TRUE(rig.ep->send(Message::commit_ack(8)).is_ok());
  ASSERT_EQ(rig.channel.sent_.size(), 2u);
  auto f1 = decode_framed(rig.channel.sent_[0]);
  auto f2 = decode_framed(rig.channel.sent_[1]);
  ASSERT_TRUE(f1.is_ok() && f2.is_ok());
  EXPECT_EQ(f1.value().epoch, rig.ep->epoch());
  EXPECT_EQ(f1.value().frame_seq + 1, f2.value().frame_seq);
  EXPECT_EQ(rig.ep->stats().frames_sent, 2u);
}

TEST(Endpoint, EpochsMonotoneAcrossRebuilds) {
  ManualClock clock;
  StubChannel c1, c2;
  Endpoint a(c1, clock, {});
  Endpoint b(c2, clock, {});
  EXPECT_LT(a.epoch(), b.epoch());
}

TEST(Endpoint, DestroyedEndpointLeavesNoLiveChannelHandlers) {
  // Regression: the channel outlives the endpoint (a SimLink end survives a
  // node failure), and the handlers the endpoint registered used to dangle —
  // a late frame or a sever after teardown was a use-after-free.
  ManualClock clock;
  StubChannel channel;
  { Endpoint ep(channel, clock, {}); }
  channel.inject(encode_framed(100, 1, Message::commit_ack(5)));
  channel.set_up(false);  // fires the stale disconnect handler: must no-op
}

TEST(Endpoint, CorruptFrameRejected) {
  Rig rig;
  auto bytes = encode_framed(100, 1, Message::commit_ack(5));
  bytes[bytes.size() / 2] ^= std::byte{0x04};
  rig.channel.inject(std::move(bytes));
  EXPECT_TRUE(rig.acks.empty());
  EXPECT_EQ(rig.ep->stats().corrupt_rejected, 1u);
  EXPECT_EQ(rig.protocol_errors, 1);
}

TEST(Endpoint, DuplicateFrameSuppressed) {
  Rig rig;
  auto bytes = encode_framed(100, 1, Message::commit_ack(5));
  rig.channel.inject(bytes);
  rig.channel.inject(bytes);
  EXPECT_EQ(rig.acks.size(), 1u);
  EXPECT_EQ(rig.ep->stats().duplicates_suppressed, 1u);
}

TEST(Endpoint, ReorderedFrameWithinWindowAccepted) {
  Rig rig;
  rig.inject(100, 5, Message::commit_ack(50));
  rig.inject(100, 3, Message::commit_ack(30));  // late but new: deliver
  rig.inject(100, 3, Message::commit_ack(30));  // now a duplicate
  EXPECT_EQ(rig.acks, (std::vector<ValidationTs>{50, 30}));
  EXPECT_EQ(rig.ep->stats().duplicates_suppressed, 1u);
}

TEST(Endpoint, FrameBehindWindowSuppressed) {
  Rig rig;
  rig.inject(100, 200, Message::commit_ack(1));
  rig.inject(100, 100, Message::commit_ack(2));  // 100 behind: stale
  EXPECT_EQ(rig.acks.size(), 1u);
  EXPECT_EQ(rig.ep->stats().stale_suppressed, 1u);
}

TEST(Endpoint, OlderEpochSuppressedNewerResetsWindow) {
  Rig rig;
  rig.inject(200, 50, Message::commit_ack(1));
  rig.inject(100, 51, Message::commit_ack(2));  // stale epoch
  EXPECT_EQ(rig.acks.size(), 1u);
  EXPECT_EQ(rig.ep->stats().stale_suppressed, 1u);
  // Peer rebuilt: new epoch restarts the sequence space from 1.
  rig.inject(300, 1, Message::commit_ack(3));
  EXPECT_EQ(rig.acks, (std::vector<ValidationTs>{1, 3}));
}

TEST(Endpoint, SendFailureCounted) {
  Rig rig;
  rig.channel.set_up(false);
  EXPECT_FALSE(rig.ep->send(Message::commit_ack(1)).is_ok());
  EXPECT_EQ(rig.ep->stats().send_failures, 1u);
}

TEST(Endpoint, PollDetectsPassiveReconnect) {
  Rig rig;
  rig.ep->poll(rig.clock.now());  // connected: no-op
  EXPECT_EQ(rig.reconnected, 0);

  rig.channel.set_up(false);
  rig.ep->poll(rig.clock.now());  // notices the drop, arms backoff
  rig.clock.advance(Duration::millis(1));
  rig.ep->poll(rig.clock.now());
  EXPECT_EQ(rig.reconnected, 0);

  rig.channel.set_up(true);  // transport restored underneath us
  rig.ep->poll(rig.clock.now());
  EXPECT_EQ(rig.reconnected, 1);
  EXPECT_EQ(rig.ep->stats().reconnects, 1u);
}

TEST(Endpoint, PollPacesConnectorWithBackoff) {
  Rig rig;
  int attempts = 0;
  rig.ep->set_connector([&] { return ++attempts >= 3; });
  rig.channel.set_up(false);
  // Drive the state machine on a fine tick; backoff spaces real attempts
  // far sparser than the tick rate.
  for (int tick = 0; tick < 2000 && rig.reconnected == 0; ++tick) {
    rig.clock.advance(Duration::millis(1));
    rig.ep->poll(rig.clock.now());
    if (attempts >= 3) rig.channel.set_up(true);
  }
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(rig.reconnected, 1);
  EXPECT_EQ(rig.ep->stats().reconnect_attempts, 3u);
  // 3 attempts under exponential backoff (initial 5 ms) need > 15 ms of
  // simulated time but far fewer than 2000 polls' worth.
  EXPECT_GT(rig.clock.now().us, 15'000);
}

// ---------------------------------------------------------------- Backoff --

TEST(Backoff, GrowsExponentiallyUpToCap) {
  BackoffPolicy policy;
  policy.initial = Duration::millis(10);
  policy.max = Duration::millis(100);
  policy.multiplier = 2.0;
  policy.jitter = 0.0;
  Backoff b(policy, 42);
  EXPECT_EQ(b.next().us, 10'000);
  EXPECT_EQ(b.next().us, 20'000);
  EXPECT_EQ(b.next().us, 40'000);
  EXPECT_EQ(b.next().us, 80'000);
  EXPECT_EQ(b.next().us, 100'000);  // capped
  EXPECT_EQ(b.next().us, 100'000);
  EXPECT_EQ(b.attempts(), 6u);
}

TEST(Backoff, JitterStaysWithinBand) {
  BackoffPolicy policy;
  policy.initial = Duration::millis(10);
  policy.max = Duration::seconds(10);
  policy.multiplier = 1.0;  // isolate the jitter term
  policy.jitter = 0.2;
  Backoff b(policy, 7);
  for (int i = 0; i < 100; ++i) {
    const auto us = b.next().us;
    EXPECT_GE(us, 8'000);
    EXPECT_LE(us, 12'000);
  }
}

TEST(Backoff, ResetRestartsFromInitial) {
  BackoffPolicy policy;
  policy.initial = Duration::millis(10);
  policy.max = Duration::seconds(2);
  policy.jitter = 0.0;
  Backoff b(policy, 1);
  (void)b.next();
  (void)b.next();
  b.reset();
  EXPECT_EQ(b.attempts(), 0u);
  EXPECT_EQ(b.next().us, 10'000);
}

TEST(Backoff, DeterministicForSameSeed) {
  BackoffPolicy policy;
  Backoff a(policy, 99), b(policy, 99);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.next().us, b.next().us);
}

// ---------------------------------------------------------------- Watchdog --

TEST(Watchdog, NotExpiredExactlyAtTimeout) {
  const Watchdog w(Duration::millis(100));
  const TimePoint last{1'000'000};
  EXPECT_FALSE(w.expired(last + Duration::millis(100), last));
}

TEST(Watchdog, ExpiredJustPastTimeout) {
  const Watchdog w(Duration::millis(100));
  const TimePoint last{1'000'000};
  EXPECT_TRUE(w.expired(last + Duration::millis(100) + Duration::micros(1),
                        last));
}

TEST(Watchdog, NotExpiredAtEqualTimes) {
  const Watchdog w(Duration::millis(100));
  const TimePoint t{5'000};
  EXPECT_FALSE(w.expired(t, t));
}

TEST(Watchdog, NotExpiredWhenHeardInFuture) {
  // A heartbeat stamped after `now` (callback ordering race) must not trip
  // the detector.
  const Watchdog w(Duration::millis(100));
  const TimePoint now{10'000};
  EXPECT_FALSE(w.expired(now, now + Duration::millis(1)));
}

TEST(Watchdog, ZeroTimeoutExpiresOnAnyGap) {
  const Watchdog w(Duration::zero());
  const TimePoint last{0};
  EXPECT_FALSE(w.expired(last, last));
  EXPECT_TRUE(w.expired(last + Duration::micros(1), last));
}

}  // namespace
}  // namespace rodain::repl
