// Replication-layer tests over the simulated link: the primary half
// (shipping, acks, join serving) against the mirror half (immediate ack,
// reorder+apply, snapshot install, takeover).
#include <gtest/gtest.h>

#include <map>

#include "rodain/net/sim_link.hpp"
#include "rodain/repl/mirror.hpp"
#include "rodain/repl/primary.hpp"

namespace rodain::repl {
namespace {

using namespace rodain::literals;

storage::Value val(std::string_view s) { return storage::Value{s}; }

struct Rig {
  sim::Simulation sim;
  net::SimLink link{sim, {}};
  storage::ObjectStore primary_store{64};
  storage::ObjectStore mirror_store{64};
  log::MemoryLogStorage primary_disk;
  log::MemoryLogStorage mirror_disk;
  log::LogWriter writer{LogMode::kOff, &primary_disk, nullptr};
  std::unique_ptr<PrimaryReplicator> primary;
  std::unique_ptr<MirrorService> mirror;
  bool mirror_joined = false;
  ValidationTs boundary = 0;

  Rig() {
    PrimaryReplicator::Hooks hooks;
    hooks.snapshot_boundary = [this] { return boundary; };
    hooks.on_mirror_joined = [this] {
      writer.set_mode(LogMode::kMirror);
      mirror_joined = true;
    };
    primary = std::make_unique<PrimaryReplicator>(link.end_a(), sim,
                                                  primary_store, writer, hooks);
    writer.set_shipper(primary.get());

    MirrorService::Options options;
    options.store_to_disk = true;
    mirror = std::make_unique<MirrorService>(mirror_store, &mirror_disk,
                                             link.end_b(), sim, options);
  }

  void submit_txn(ValidationTs seq, ObjectId oid, std::string_view value,
                  std::function<void()> on_durable = {}) {
    std::vector<log::Record> records;
    records.push_back(log::Record::write_image(seq, oid, val(value)));
    records.push_back(log::Record::commit(seq, seq, seq * 1000, 1));
    primary_store.upsert(oid, val(value), seq * 1000);
    writer.submit(seq, std::move(records), std::move(on_durable));
  }
};

TEST(Replication, CommitAckRoundTrip) {
  Rig rig;
  rig.mirror->attach_synced(1);
  rig.writer.set_mode(LogMode::kMirror);

  bool durable = false;
  rig.submit_txn(1, 10, "hello", [&] { durable = true; });
  EXPECT_FALSE(durable);
  rig.sim.run();
  EXPECT_TRUE(durable);
  ASSERT_NE(rig.mirror_store.find(10), nullptr);
  EXPECT_EQ(rig.mirror_store.find(10)->value, val("hello"));
  EXPECT_EQ(rig.mirror->applied_seq(), 1u);
  // The ordered log reached the mirror's disk.
  EXPECT_EQ(rig.mirror_disk.records().size(), 2u);
}

TEST(Replication, AckLatencyIsOneRoundTrip) {
  Rig rig;
  rig.mirror->attach_synced(1);
  rig.writer.set_mode(LogMode::kMirror);
  TimePoint acked{};
  rig.submit_txn(1, 10, "x", [&] { acked = rig.sim.now(); });
  rig.sim.run();
  // 500 us each way (default SimLink latency).
  EXPECT_GE(acked.us, 1000);
  EXPECT_LT(acked.us, 1500);
}

TEST(Replication, MirrorHeartbeatCarriesAppliedSeq) {
  Rig rig;
  rig.mirror->attach_synced(1);
  rig.writer.set_mode(LogMode::kMirror);
  rig.submit_txn(1, 10, "x");
  rig.sim.run();
  rig.mirror->send_heartbeat();
  rig.sim.run();
  EXPECT_EQ(rig.primary->mirror_applied_seq(), 1u);
}

TEST(Replication, BatchedCommitsCoalesceToOneCumulativeAck) {
  Rig rig;
  rig.mirror->attach_synced(1);
  rig.writer.set_mode(LogMode::kMirror);
  log::LogWriter::BatchOptions batch;
  batch.max_txns = 3;
  rig.writer.configure_batching(&rig.sim, batch);

  int durable = 0;
  rig.submit_txn(1, 10, "a", [&] { ++durable; });
  rig.submit_txn(2, 11, "b", [&] { ++durable; });
  EXPECT_EQ(rig.writer.batched_txns(), 2u);  // buffered, nothing on the wire
  rig.submit_txn(3, 12, "c", [&] { ++durable; });  // threshold drains
  rig.sim.run();

  EXPECT_EQ(durable, 3);
  EXPECT_EQ(rig.mirror->applied_seq(), 3u);
  // One frame carried three transactions; the mirror answered with a single
  // cumulative ack covering all of them.
  EXPECT_EQ(rig.writer.counters().batches_shipped, 1u);
  EXPECT_EQ(rig.mirror->stats().acks_sent, 1u);
  EXPECT_EQ(rig.mirror->stats().ack_commits_covered, 3u);
  EXPECT_EQ(rig.writer.counters().acks_received, 1u);
  EXPECT_EQ(rig.writer.counters().ack_released_txns, 3u);
}

TEST(Replication, JoinShipsSnapshotAndCatchUp) {
  Rig rig;
  // The primary ran alone for a while: 5 committed txns, logged locally.
  rig.writer.set_mode(LogMode::kDirectDisk);
  for (ValidationTs seq = 1; seq <= 5; ++seq) {
    rig.submit_txn(seq, 100 + seq, "v" + std::to_string(seq));
  }
  rig.boundary = 3;  // snapshot covers txns 1..3; 4..5 must catch up via tail

  rig.mirror->request_join(0);
  rig.sim.run();

  EXPECT_TRUE(rig.mirror_joined);
  EXPECT_EQ(rig.writer.mode(), LogMode::kMirror);
  EXPECT_FALSE(rig.mirror->snapshot_in_progress());
  EXPECT_EQ(rig.mirror->applied_seq(), 5u);
  for (ValidationTs seq = 1; seq <= 5; ++seq) {
    const auto* rec = rig.mirror_store.find(100 + seq);
    ASSERT_NE(rec, nullptr) << seq;
    EXPECT_EQ(rec->value, val("v" + std::to_string(seq))) << seq;
  }
  EXPECT_EQ(rig.primary->snapshots_served(), 1u);

  // Live stream continues seamlessly after the join.
  bool durable = false;
  rig.submit_txn(6, 200, "live", [&] { durable = true; });
  rig.sim.run();
  EXPECT_TRUE(durable);
  EXPECT_EQ(rig.mirror->applied_seq(), 6u);
}

TEST(Replication, TakeoverAppliesStagedAndDropsOpen) {
  Rig rig;
  rig.mirror->attach_synced(1);
  rig.writer.set_mode(LogMode::kMirror);

  // Txn 1 complete; txn 2's commit record staged behind nothing; txn 3 has
  // writes but its commit never arrives (primary died mid-write-phase).
  rig.submit_txn(1, 10, "committed");
  rig.sim.run();
  // Hand-feed an out-of-order commit (seq 3 before seq 2 never arrives...
  // here: stage seq 3, leave seq 2 missing, and an open txn 99).
  std::vector<log::Record> batch;
  batch.push_back(log::Record::write_image(33, 30, val("staged")));
  batch.push_back(log::Record::commit(33, 3, 3000, 1));
  batch.push_back(log::Record::write_image(99, 40, val("incomplete")));
  // Hand-built frame: a huge epoch so the mirror's anti-replay window treats
  // it as newer than anything the real primary endpoint sent.
  (void)rig.link.end_a().send(
      encode_framed(1ULL << 40, 1, Message::log_batch(std::move(batch))));
  rig.sim.run();

  EXPECT_EQ(rig.mirror->reorder_staged(), 1u);
  EXPECT_EQ(rig.mirror->reorder_open(), 1u);

  auto takeover = rig.mirror->take_over();
  EXPECT_EQ(takeover.applied_staged, 1u);
  EXPECT_EQ(takeover.dropped_open, 1u);
  EXPECT_EQ(takeover.next_seq, 4u);
  // Staged txn applied; incomplete txn's write discarded (paper §3).
  ASSERT_NE(rig.mirror_store.find(30), nullptr);
  EXPECT_EQ(rig.mirror_store.find(40), nullptr);
}

TEST(Replication, CorruptTxnMidFrameIsQuarantinedNotFatal) {
  // Regression: a commit record whose write count disagrees with the
  // buffered images (bit rot / a shipper bug) used to poison nothing but
  // also count nothing — the batch kept going silently. The victim must be
  // quarantined (counted, open state dropped), the REST of the frame must
  // still stage, and the stalled floor must let the resend heal the gap.
  Rig rig;
  rig.mirror->attach_synced(1);
  rig.writer.set_mode(LogMode::kMirror);
  rig.submit_txn(1, 10, "good");
  rig.sim.run();
  EXPECT_EQ(rig.mirror->applied_seq(), 1u);

  // Hand-built frame: seq 2's commit claims 2 writes but ships 1 (corrupt),
  // seq 3 is intact and must survive the frame.
  std::vector<log::Record> batch;
  batch.push_back(log::Record::write_image(22, 20, val("torn")));
  batch.push_back(log::Record::commit(22, 2, 2000, 2));  // claims 2 writes
  batch.push_back(log::Record::write_image(33, 30, val("fine")));
  batch.push_back(log::Record::commit(33, 3, 3000, 1));
  (void)rig.link.end_a().send(
      encode_framed(1ULL << 40, 1, Message::log_batch(std::move(batch))));
  rig.sim.run();

  EXPECT_EQ(rig.mirror->stats().corrupt_txns, 1u);
  EXPECT_EQ(rig.mirror->reorder_open(), 0u);    // quarantine left no state
  EXPECT_EQ(rig.mirror->reorder_staged(), 1u);  // seq 3 staged behind the gap
  EXPECT_EQ(rig.mirror->applied_seq(), 1u);     // floor stalls at the victim
  EXPECT_EQ(rig.mirror_store.find(20), nullptr);
  EXPECT_EQ(rig.mirror_store.find(30), nullptr);

  // The primary's resend re-delivers seq 2 intact: the gap closes and the
  // staged seq 3 cascades in the same epoch.
  std::vector<log::Record> resend;
  resend.push_back(log::Record::write_image(22, 20, val("healed")));
  resend.push_back(log::Record::write_image(22, 21, val("second")));
  resend.push_back(log::Record::commit(22, 2, 2000, 2));
  (void)rig.link.end_a().send(
      encode_framed((1ULL << 40) + 1, 2, Message::log_batch(std::move(resend))));
  rig.sim.run();

  EXPECT_EQ(rig.mirror->applied_seq(), 3u);
  ASSERT_NE(rig.mirror_store.find(20), nullptr);
  EXPECT_EQ(rig.mirror_store.find(20)->value, val("healed"));
  ASSERT_NE(rig.mirror_store.find(30), nullptr);
  EXPECT_EQ(rig.mirror->stats().corrupt_txns, 1u);  // counted exactly once
}

TEST(Replication, DiskFlushFailureMarksLogNonDense) {
  // Regression: release() used to discard the disk flush result entirely —
  // a mirror whose stored log silently lost a batch would later vouch for
  // dense catch-up coverage when serving a rejoin. A failed flush must be
  // counted and flip disk_log_dense() off, permanently.
  Rig rig;
  rig.mirror->attach_synced(1);
  rig.writer.set_mode(LogMode::kMirror);
  EXPECT_TRUE(rig.mirror->disk_log_dense());

  rig.submit_txn(1, 10, "a");
  rig.sim.run();
  EXPECT_TRUE(rig.mirror->disk_log_dense());  // healthy disk, still dense

  rig.mirror_disk.inject_flush_error(1);
  rig.submit_txn(2, 11, "b");
  rig.sim.run();
  EXPECT_FALSE(rig.mirror->disk_log_dense());
  EXPECT_EQ(rig.mirror->stats().disk_write_failures, 1u);
  // The copy itself is fine — only the stored log's coverage is suspect.
  ASSERT_NE(rig.mirror_store.find(11), nullptr);
  EXPECT_EQ(rig.mirror->applied_seq(), 2u);

  // Sticky: a healthy flush afterwards must not resurrect density (the
  // hole is already in the log).
  rig.submit_txn(3, 12, "c");
  rig.sim.run();
  EXPECT_FALSE(rig.mirror->disk_log_dense());
  EXPECT_EQ(rig.mirror->stats().disk_write_failures, 1u);
}

TEST(Replication, ParallelApplyKeepsAckAndStateSemantics) {
  // The width-4 mirror behaves exactly like the serial one on the wire:
  // same cumulative acks, same applied floor, same store bytes.
  Rig serial_rig;
  serial_rig.mirror->attach_synced(1);
  serial_rig.writer.set_mode(LogMode::kMirror);

  sim::Simulation sim2;
  net::SimLink link2{sim2, {}};
  storage::ObjectStore pstore{64}, mstore{64};
  log::MemoryLogStorage pdisk, mdisk;
  log::LogWriter writer2{LogMode::kOff, &pdisk, nullptr};
  PrimaryReplicator::Hooks hooks;
  auto primary2 = std::make_unique<PrimaryReplicator>(link2.end_a(), sim2,
                                                      pstore, writer2, hooks);
  writer2.set_shipper(primary2.get());
  MirrorService::Options options;
  options.store_to_disk = true;
  options.apply_workers = 4;
  auto mirror2 = std::make_unique<MirrorService>(mstore, &mdisk, link2.end_b(),
                                                 sim2, options);
  mirror2->attach_synced(1);
  writer2.set_mode(LogMode::kMirror);

  auto submit2 = [&](ValidationTs seq, ObjectId oid, std::string_view value) {
    std::vector<log::Record> records;
    records.push_back(log::Record::write_image(seq, oid, val(value)));
    records.push_back(log::Record::commit(seq, seq, seq * 1000, 1));
    pstore.upsert(oid, val(value), seq * 1000);
    writer2.submit(seq, std::move(records), {});
  };

  for (ValidationTs seq = 1; seq <= 20; ++seq) {
    // Half the stream collides on oid 7 (conflict cuts), half spreads out.
    const ObjectId oid = seq % 2 == 0 ? 7 : 100 + seq;
    serial_rig.submit_txn(seq, oid, "v" + std::to_string(seq));
    submit2(seq, oid, "v" + std::to_string(seq));
  }
  serial_rig.sim.run();
  sim2.run();

  EXPECT_EQ(mirror2->applied_seq(), serial_rig.mirror->applied_seq());
  EXPECT_EQ(mirror2->stats().acks_sent, serial_rig.mirror->stats().acks_sent);
  EXPECT_EQ(mirror2->stats().txns_applied,
            serial_rig.mirror->stats().txns_applied);
  // Wave accounting is width-independent (the partition is computed either
  // way); only execution concurrency differs.
  EXPECT_EQ(mirror2->apply_stats().waves,
            serial_rig.mirror->apply_stats().waves);
  EXPECT_EQ(mirror2->apply_stats().conflict_cuts,
            serial_rig.mirror->apply_stats().conflict_cuts);
  // Byte-identical copies, including the ordered log the disk stores.
  ASSERT_EQ(mdisk.records().size(), serial_rig.mirror_disk.records().size());
  for (std::size_t i = 0; i < mdisk.records().size(); ++i) {
    EXPECT_TRUE(mdisk.records()[i] == serial_rig.mirror_disk.records()[i])
        << "disk record " << i;
  }
  std::map<ObjectId, std::pair<storage::Value, ValidationTs>> a, b;
  serial_rig.mirror_store.for_each(
      [&](ObjectId oid, const storage::ObjectRecord& r) {
        a[oid] = {r.value, r.wts};
      });
  mstore.for_each([&](ObjectId oid, const storage::ObjectRecord& r) {
    b[oid] = {r.value, r.wts};
  });
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [oid, state] : a) {
    ASSERT_EQ(b.count(oid), 1u) << oid;
    EXPECT_TRUE(b[oid].first == state.first) << oid;
    EXPECT_EQ(b[oid].second, state.second) << oid;
  }
}

TEST(Replication, SeveredLinkDropsFramesAndWriterReroutes) {
  Rig rig;
  rig.mirror->attach_synced(1);
  rig.writer.set_mode(LogMode::kMirror);

  bool durable = false;
  rig.submit_txn(1, 10, "x", [&] { durable = true; });
  rig.link.sever();  // frame in flight is lost
  rig.sim.run();
  EXPECT_FALSE(durable);
  EXPECT_EQ(rig.writer.pending_acks(), 1u);

  // The node-level watchdog would now call on_mirror_lost: the pending
  // transaction completes via the local disk.
  rig.writer.on_mirror_lost();
  EXPECT_TRUE(durable);
  EXPECT_EQ(rig.primary_disk.records().size(), 2u);
}

}  // namespace
}  // namespace rodain::repl
