// Replication-layer tests over the simulated link: the primary half
// (shipping, acks, join serving) against the mirror half (immediate ack,
// reorder+apply, snapshot install, takeover).
#include <gtest/gtest.h>

#include "rodain/net/sim_link.hpp"
#include "rodain/repl/mirror.hpp"
#include "rodain/repl/primary.hpp"

namespace rodain::repl {
namespace {

using namespace rodain::literals;

storage::Value val(std::string_view s) { return storage::Value{s}; }

struct Rig {
  sim::Simulation sim;
  net::SimLink link{sim, {}};
  storage::ObjectStore primary_store{64};
  storage::ObjectStore mirror_store{64};
  log::MemoryLogStorage primary_disk;
  log::MemoryLogStorage mirror_disk;
  log::LogWriter writer{LogMode::kOff, &primary_disk, nullptr};
  std::unique_ptr<PrimaryReplicator> primary;
  std::unique_ptr<MirrorService> mirror;
  bool mirror_joined = false;
  ValidationTs boundary = 0;

  Rig() {
    PrimaryReplicator::Hooks hooks;
    hooks.snapshot_boundary = [this] { return boundary; };
    hooks.on_mirror_joined = [this] {
      writer.set_mode(LogMode::kMirror);
      mirror_joined = true;
    };
    primary = std::make_unique<PrimaryReplicator>(link.end_a(), sim,
                                                  primary_store, writer, hooks);
    writer.set_shipper(primary.get());

    MirrorService::Options options;
    options.store_to_disk = true;
    mirror = std::make_unique<MirrorService>(mirror_store, &mirror_disk,
                                             link.end_b(), sim, options);
  }

  void submit_txn(ValidationTs seq, ObjectId oid, std::string_view value,
                  std::function<void()> on_durable = {}) {
    std::vector<log::Record> records;
    records.push_back(log::Record::write_image(seq, oid, val(value)));
    records.push_back(log::Record::commit(seq, seq, seq * 1000, 1));
    primary_store.upsert(oid, val(value), seq * 1000);
    writer.submit(seq, std::move(records), std::move(on_durable));
  }
};

TEST(Replication, CommitAckRoundTrip) {
  Rig rig;
  rig.mirror->attach_synced(1);
  rig.writer.set_mode(LogMode::kMirror);

  bool durable = false;
  rig.submit_txn(1, 10, "hello", [&] { durable = true; });
  EXPECT_FALSE(durable);
  rig.sim.run();
  EXPECT_TRUE(durable);
  ASSERT_NE(rig.mirror_store.find(10), nullptr);
  EXPECT_EQ(rig.mirror_store.find(10)->value, val("hello"));
  EXPECT_EQ(rig.mirror->applied_seq(), 1u);
  // The ordered log reached the mirror's disk.
  EXPECT_EQ(rig.mirror_disk.records().size(), 2u);
}

TEST(Replication, AckLatencyIsOneRoundTrip) {
  Rig rig;
  rig.mirror->attach_synced(1);
  rig.writer.set_mode(LogMode::kMirror);
  TimePoint acked{};
  rig.submit_txn(1, 10, "x", [&] { acked = rig.sim.now(); });
  rig.sim.run();
  // 500 us each way (default SimLink latency).
  EXPECT_GE(acked.us, 1000);
  EXPECT_LT(acked.us, 1500);
}

TEST(Replication, MirrorHeartbeatCarriesAppliedSeq) {
  Rig rig;
  rig.mirror->attach_synced(1);
  rig.writer.set_mode(LogMode::kMirror);
  rig.submit_txn(1, 10, "x");
  rig.sim.run();
  rig.mirror->send_heartbeat();
  rig.sim.run();
  EXPECT_EQ(rig.primary->mirror_applied_seq(), 1u);
}

TEST(Replication, BatchedCommitsCoalesceToOneCumulativeAck) {
  Rig rig;
  rig.mirror->attach_synced(1);
  rig.writer.set_mode(LogMode::kMirror);
  log::LogWriter::BatchOptions batch;
  batch.max_txns = 3;
  rig.writer.configure_batching(&rig.sim, batch);

  int durable = 0;
  rig.submit_txn(1, 10, "a", [&] { ++durable; });
  rig.submit_txn(2, 11, "b", [&] { ++durable; });
  EXPECT_EQ(rig.writer.batched_txns(), 2u);  // buffered, nothing on the wire
  rig.submit_txn(3, 12, "c", [&] { ++durable; });  // threshold drains
  rig.sim.run();

  EXPECT_EQ(durable, 3);
  EXPECT_EQ(rig.mirror->applied_seq(), 3u);
  // One frame carried three transactions; the mirror answered with a single
  // cumulative ack covering all of them.
  EXPECT_EQ(rig.writer.counters().batches_shipped, 1u);
  EXPECT_EQ(rig.mirror->stats().acks_sent, 1u);
  EXPECT_EQ(rig.mirror->stats().ack_commits_covered, 3u);
  EXPECT_EQ(rig.writer.counters().acks_received, 1u);
  EXPECT_EQ(rig.writer.counters().ack_released_txns, 3u);
}

TEST(Replication, JoinShipsSnapshotAndCatchUp) {
  Rig rig;
  // The primary ran alone for a while: 5 committed txns, logged locally.
  rig.writer.set_mode(LogMode::kDirectDisk);
  for (ValidationTs seq = 1; seq <= 5; ++seq) {
    rig.submit_txn(seq, 100 + seq, "v" + std::to_string(seq));
  }
  rig.boundary = 3;  // snapshot covers txns 1..3; 4..5 must catch up via tail

  rig.mirror->request_join(0);
  rig.sim.run();

  EXPECT_TRUE(rig.mirror_joined);
  EXPECT_EQ(rig.writer.mode(), LogMode::kMirror);
  EXPECT_FALSE(rig.mirror->snapshot_in_progress());
  EXPECT_EQ(rig.mirror->applied_seq(), 5u);
  for (ValidationTs seq = 1; seq <= 5; ++seq) {
    const auto* rec = rig.mirror_store.find(100 + seq);
    ASSERT_NE(rec, nullptr) << seq;
    EXPECT_EQ(rec->value, val("v" + std::to_string(seq))) << seq;
  }
  EXPECT_EQ(rig.primary->snapshots_served(), 1u);

  // Live stream continues seamlessly after the join.
  bool durable = false;
  rig.submit_txn(6, 200, "live", [&] { durable = true; });
  rig.sim.run();
  EXPECT_TRUE(durable);
  EXPECT_EQ(rig.mirror->applied_seq(), 6u);
}

TEST(Replication, TakeoverAppliesStagedAndDropsOpen) {
  Rig rig;
  rig.mirror->attach_synced(1);
  rig.writer.set_mode(LogMode::kMirror);

  // Txn 1 complete; txn 2's commit record staged behind nothing; txn 3 has
  // writes but its commit never arrives (primary died mid-write-phase).
  rig.submit_txn(1, 10, "committed");
  rig.sim.run();
  // Hand-feed an out-of-order commit (seq 3 before seq 2 never arrives...
  // here: stage seq 3, leave seq 2 missing, and an open txn 99).
  std::vector<log::Record> batch;
  batch.push_back(log::Record::write_image(33, 30, val("staged")));
  batch.push_back(log::Record::commit(33, 3, 3000, 1));
  batch.push_back(log::Record::write_image(99, 40, val("incomplete")));
  // Hand-built frame: a huge epoch so the mirror's anti-replay window treats
  // it as newer than anything the real primary endpoint sent.
  (void)rig.link.end_a().send(
      encode_framed(1ULL << 40, 1, Message::log_batch(std::move(batch))));
  rig.sim.run();

  EXPECT_EQ(rig.mirror->reorder_staged(), 1u);
  EXPECT_EQ(rig.mirror->reorder_open(), 1u);

  auto takeover = rig.mirror->take_over();
  EXPECT_EQ(takeover.applied_staged, 1u);
  EXPECT_EQ(takeover.dropped_open, 1u);
  EXPECT_EQ(takeover.next_seq, 4u);
  // Staged txn applied; incomplete txn's write discarded (paper §3).
  ASSERT_NE(rig.mirror_store.find(30), nullptr);
  EXPECT_EQ(rig.mirror_store.find(40), nullptr);
}

TEST(Replication, SeveredLinkDropsFramesAndWriterReroutes) {
  Rig rig;
  rig.mirror->attach_synced(1);
  rig.writer.set_mode(LogMode::kMirror);

  bool durable = false;
  rig.submit_txn(1, 10, "x", [&] { durable = true; });
  rig.link.sever();  // frame in flight is lost
  rig.sim.run();
  EXPECT_FALSE(durable);
  EXPECT_EQ(rig.writer.pending_acks(), 1u);

  // The node-level watchdog would now call on_mirror_lost: the pending
  // transaction completes via the local disk.
  rig.writer.on_mirror_lost();
  EXPECT_TRUE(durable);
  EXPECT_EQ(rig.primary_disk.records().size(), 2u);
}

}  // namespace
}  // namespace rodain::repl
