#include "rodain/cc/lock_manager.hpp"

#include <gtest/gtest.h>

namespace rodain::cc {
namespace {

PriorityKey prio(std::int64_t deadline_us, std::uint64_t seq = 0) {
  return PriorityKey{Criticality::kFirm, TimePoint{deadline_us}, seq};
}

TEST(LockManager, SharedLocksCoexist) {
  LockManager lm;
  EXPECT_EQ(lm.acquire(1, 10, LockMode::kShared, prio(100, 1)).decision,
            Access::kGranted);
  EXPECT_EQ(lm.acquire(1, 20, LockMode::kShared, prio(200, 2)).decision,
            Access::kGranted);
  EXPECT_TRUE(lm.holds(1, 10));
  EXPECT_TRUE(lm.holds(1, 20));
}

TEST(LockManager, ExclusiveConflictsBlockLowerPriority) {
  LockManager lm;
  ASSERT_EQ(lm.acquire(1, 10, LockMode::kExclusive, prio(100, 1)).decision,
            Access::kGranted);
  // Later deadline = lower priority: must wait.
  auto r = lm.acquire(1, 20, LockMode::kExclusive, prio(200, 2));
  EXPECT_EQ(r.decision, Access::kBlocked);
  EXPECT_TRUE(r.victims.empty());
  EXPECT_FALSE(lm.holds(1, 20));
}

TEST(LockManager, HighPriorityRestartsHolders) {
  LockManager lm;
  ASSERT_EQ(lm.acquire(1, 10, LockMode::kExclusive, prio(200, 2)).decision,
            Access::kGranted);
  // Earlier deadline = higher priority: the holder is the victim.
  auto r = lm.acquire(1, 20, LockMode::kExclusive, prio(100, 1));
  EXPECT_EQ(r.decision, Access::kGranted);
  ASSERT_EQ(r.victims.size(), 1u);
  EXPECT_EQ(r.victims[0], 10u);
  EXPECT_TRUE(lm.holds(1, 20));
  EXPECT_FALSE(lm.holds(1, 10));
}

TEST(LockManager, SharedBlocksExclusiveFromLowerPriority) {
  LockManager lm;
  ASSERT_EQ(lm.acquire(1, 10, LockMode::kShared, prio(100, 1)).decision,
            Access::kGranted);
  EXPECT_EQ(lm.acquire(1, 20, LockMode::kExclusive, prio(200, 2)).decision,
            Access::kBlocked);
}

TEST(LockManager, ReleaseWakesWaitersInPriorityOrder) {
  LockManager lm;
  ASSERT_EQ(lm.acquire(1, 10, LockMode::kExclusive, prio(50, 1)).decision,
            Access::kGranted);
  EXPECT_EQ(lm.acquire(1, 30, LockMode::kExclusive, prio(300, 3)).decision,
            Access::kBlocked);
  EXPECT_EQ(lm.acquire(1, 20, LockMode::kExclusive, prio(200, 2)).decision,
            Access::kBlocked);
  auto woken = lm.release_all(10).woken;
  ASSERT_EQ(woken.size(), 1u);
  EXPECT_EQ(woken[0], 20u);  // earlier deadline first
  EXPECT_TRUE(lm.holds(1, 20));
  // And when 20 releases, 30 gets its turn.
  woken = lm.release_all(20).woken;
  ASSERT_EQ(woken.size(), 1u);
  EXPECT_EQ(woken[0], 30u);
}

TEST(LockManager, ReleaseWakesMultipleSharedWaiters) {
  LockManager lm;
  ASSERT_EQ(lm.acquire(1, 10, LockMode::kExclusive, prio(50, 1)).decision,
            Access::kGranted);
  EXPECT_EQ(lm.acquire(1, 20, LockMode::kShared, prio(200, 2)).decision,
            Access::kBlocked);
  EXPECT_EQ(lm.acquire(1, 30, LockMode::kShared, prio(300, 3)).decision,
            Access::kBlocked);
  auto woken = lm.release_all(10).woken;
  EXPECT_EQ(woken.size(), 2u);
  EXPECT_TRUE(lm.holds(1, 20));
  EXPECT_TRUE(lm.holds(1, 30));
}

TEST(LockManager, ReentrantAcquire) {
  LockManager lm;
  ASSERT_EQ(lm.acquire(1, 10, LockMode::kShared, prio(100, 1)).decision,
            Access::kGranted);
  EXPECT_EQ(lm.acquire(1, 10, LockMode::kShared, prio(100, 1)).decision,
            Access::kGranted);
  EXPECT_EQ(lm.acquire(1, 10, LockMode::kExclusive, prio(100, 1)).decision,
            Access::kGranted);  // sole-holder upgrade
  // Exclusive is idempotent, shared is absorbed.
  EXPECT_EQ(lm.acquire(1, 10, LockMode::kShared, prio(100, 1)).decision,
            Access::kGranted);
}

TEST(LockManager, UpgradeVictimizesLowerPrioritySharers) {
  LockManager lm;
  ASSERT_EQ(lm.acquire(1, 10, LockMode::kShared, prio(100, 1)).decision,
            Access::kGranted);
  ASSERT_EQ(lm.acquire(1, 20, LockMode::kShared, prio(200, 2)).decision,
            Access::kGranted);
  auto r = lm.acquire(1, 10, LockMode::kExclusive, prio(100, 1));
  EXPECT_EQ(r.decision, Access::kGranted);
  ASSERT_EQ(r.victims.size(), 1u);
  EXPECT_EQ(r.victims[0], 20u);
}

TEST(LockManager, UpgradeBlocksBehindHigherPrioritySharer) {
  LockManager lm;
  ASSERT_EQ(lm.acquire(1, 10, LockMode::kShared, prio(200, 2)).decision,
            Access::kGranted);
  ASSERT_EQ(lm.acquire(1, 20, LockMode::kShared, prio(100, 1)).decision,
            Access::kGranted);
  EXPECT_EQ(lm.acquire(1, 10, LockMode::kExclusive, prio(200, 2)).decision,
            Access::kBlocked);
  // When the high-priority sharer finishes, the upgrade proceeds.
  auto woken = lm.release_all(20).woken;
  ASSERT_EQ(woken.size(), 1u);
  EXPECT_EQ(woken[0], 10u);
  EXPECT_TRUE(lm.holds(1, 10));
}

TEST(LockManager, ReleaseAllDropsWaitingRequests) {
  LockManager lm;
  ASSERT_EQ(lm.acquire(1, 10, LockMode::kExclusive, prio(50, 1)).decision,
            Access::kGranted);
  EXPECT_EQ(lm.acquire(1, 20, LockMode::kExclusive, prio(200, 2)).decision,
            Access::kBlocked);
  EXPECT_EQ(lm.waiting_requests(), 1u);
  lm.release_all(20);  // the waiter aborts
  EXPECT_EQ(lm.waiting_requests(), 0u);
  lm.release_all(10);
  EXPECT_EQ(lm.locked_objects(), 0u);
}

TEST(LockManager, CompatibleRequestQueuesBehindHigherPriorityWaiter) {
  // A shared request must not sneak past a higher-priority exclusive waiter.
  LockManager lm;
  ASSERT_EQ(lm.acquire(1, 10, LockMode::kShared, prio(50, 0)).decision,
            Access::kGranted);
  EXPECT_EQ(lm.acquire(1, 20, LockMode::kExclusive, prio(100, 1)).decision,
            Access::kBlocked);
  EXPECT_EQ(lm.acquire(1, 30, LockMode::kShared, prio(300, 3)).decision,
            Access::kBlocked);
}

TEST(LockManager, PromotionAppliesHighPriorityRule) {
  // Waiter blocked behind a set {high, low}: when high releases, the waiter
  // must displace the remaining low-priority holder, not keep waiting.
  LockManager lm;
  ASSERT_EQ(lm.acquire(1, 10, LockMode::kShared, prio(50, 0)).decision,
            Access::kGranted);  // high
  ASSERT_EQ(lm.acquire(1, 30, LockMode::kShared, prio(900, 9)).decision,
            Access::kGranted);  // low
  EXPECT_EQ(lm.acquire(1, 20, LockMode::kExclusive, prio(100, 1)).decision,
            Access::kBlocked);
  auto result = lm.release_all(10);
  ASSERT_EQ(result.woken.size(), 1u);
  EXPECT_EQ(result.woken[0], 20u);
  ASSERT_EQ(result.victims.size(), 1u);
  EXPECT_EQ(result.victims[0], 30u);
  EXPECT_TRUE(lm.holds(1, 20));
  EXPECT_FALSE(lm.holds(1, 30));
}

TEST(LockManager, PromotionCascadesThroughVictims) {
  // The displaced victim's own lock on another object frees its waiter.
  LockManager lm;
  ASSERT_EQ(lm.acquire(1, 10, LockMode::kShared, prio(50, 0)).decision,
            Access::kGranted);
  ASSERT_EQ(lm.acquire(1, 30, LockMode::kShared, prio(900, 9)).decision,
            Access::kGranted);
  ASSERT_EQ(lm.acquire(2, 30, LockMode::kExclusive, prio(900, 9)).decision,
            Access::kGranted);
  EXPECT_EQ(lm.acquire(1, 20, LockMode::kExclusive, prio(100, 1)).decision,
            Access::kBlocked);
  EXPECT_EQ(lm.acquire(2, 40, LockMode::kShared, prio(950, 12)).decision,
            Access::kBlocked);
  auto result = lm.release_all(10);
  // 20 promoted on object 1 (displacing 30); 30's exclusive lock on
  // object 2 cascades away, promoting 40.
  EXPECT_EQ(result.victims, (std::vector<TxnId>{30u}));
  EXPECT_EQ(result.woken, (std::vector<TxnId>{20u, 40u}));
  EXPECT_TRUE(lm.holds(2, 40));
  EXPECT_FALSE(lm.holds(2, 30));
}

TEST(LockManager, IndependentObjects) {
  LockManager lm;
  EXPECT_EQ(lm.acquire(1, 10, LockMode::kExclusive, prio(100, 1)).decision,
            Access::kGranted);
  EXPECT_EQ(lm.acquire(2, 20, LockMode::kExclusive, prio(200, 2)).decision,
            Access::kGranted);
  EXPECT_EQ(lm.locked_objects(), 2u);
}

}  // namespace
}  // namespace rodain::cc
