// Direct unit tests of the OCC family's decision logic: forward
// adjustment, backward ordering, broadcast victims, re-read detection and
// the per-protocol policy differences the ablation bench measures.
#include "rodain/cc/occ.hpp"

#include <gtest/gtest.h>

#include "rodain/cc/controller.hpp"

namespace rodain::cc {
namespace {

storage::Value val(std::string_view s) { return storage::Value{s}; }

struct Rig {
  storage::ObjectStore store{16};
  std::unique_ptr<ConcurrencyController> cc;
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  ValidationTs next_seq{1};

  explicit Rig(Protocol protocol) : cc(make_controller(protocol)) {
    store.upsert(1, val("x1"), 0);
    store.upsert(2, val("x2"), 0);
    store.upsert(3, val("x3"), 0);
  }

  txn::Transaction& begin() {
    const TxnId id = txns.size() + 1;
    txns.push_back(std::make_unique<txn::Transaction>(
        id, id, txn::TxnProgram{}, TimePoint{0}, TimePoint::max()));
    cc->on_begin(*txns.back());
    return *txns.back();
  }

  void read(txn::Transaction& t, ObjectId oid) {
    auto r = cc->on_read(t, oid, store.find(oid));
    ASSERT_EQ(r.decision, Access::kGranted);
  }

  void write(txn::Transaction& t, ObjectId oid, std::string_view v) {
    auto r = cc->on_write(t, oid, store.find(oid));
    ASSERT_EQ(r.decision, Access::kGranted);
    t.write_copy(oid, store.find(oid) ? store.find(oid)->value : storage::Value{}) =
        val(v);
  }

  ValidationResult validate(txn::Transaction& t) {
    ValidationResult result = cc->validate(t, next_seq, store);
    if (result.ok) {
      t.set_validated(next_seq, result.serial_ts);
      ++next_seq;
      // Install as the engine would (atomically with validation).
      for (const txn::WriteEntry& w : t.write_set()) {
        store.upsert(w.oid, w.after, t.serial_ts());
      }
      cc->on_installed(t, store);
    }
    return result;
  }
};

TEST(Occ, NonConflictingTxnsAllCommit) {
  for (Protocol protocol : {Protocol::kOccBc, Protocol::kOccDa, Protocol::kOccTi,
                            Protocol::kOccDati}) {
    Rig rig(protocol);
    auto& t1 = rig.begin();
    auto& t2 = rig.begin();
    rig.read(t1, 1);
    rig.write(t2, 2, "w2");
    EXPECT_TRUE(rig.validate(t1).ok) << to_string(protocol);
    EXPECT_TRUE(rig.validate(t2).ok) << to_string(protocol);
    EXPECT_EQ(rig.cc->active_count(), 0u);
  }
}

TEST(Occ, CommittedTimestampsAdvance) {
  Rig rig(Protocol::kOccDati);
  auto& t1 = rig.begin();
  rig.read(t1, 1);
  rig.write(t1, 2, "w");
  ASSERT_TRUE(rig.validate(t1).ok);
  EXPECT_EQ(rig.store.find(1)->rts, t1.serial_ts());
  EXPECT_EQ(rig.store.find(2)->wts, t1.serial_ts());
}

TEST(Occ, BroadcastRestartsActiveReadersOfWriteSet) {
  Rig rig(Protocol::kOccBc);
  auto& reader = rig.begin();
  auto& writer = rig.begin();
  rig.read(reader, 1);
  rig.write(writer, 1, "new");
  ValidationResult r = rig.validate(writer);
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(r.victims.size(), 1u);
  EXPECT_EQ(r.victims[0], reader.id());
}

TEST(Occ, DatiAdjustsReaderBackwardInsteadOfRestarting) {
  Rig rig(Protocol::kOccDati);
  auto& reader = rig.begin();
  auto& writer = rig.begin();
  rig.read(reader, 1);
  rig.write(writer, 1, "new");
  ValidationResult r = rig.validate(writer);
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.victims.empty());  // the reader is ordered before the writer
  EXPECT_LT(reader.interval().hi, writer.serial_ts());

  // The reader then commits serialized before the writer.
  ValidationResult r2 = rig.validate(reader);
  ASSERT_TRUE(r2.ok);
  EXPECT_LT(reader.serial_ts(), writer.serial_ts());
}

TEST(Occ, DaCannotCommitBackwardAndRestartsItself) {
  Rig rig(Protocol::kOccDa);
  auto& reader = rig.begin();
  auto& writer = rig.begin();
  rig.read(reader, 1);
  rig.write(writer, 1, "new");
  ASSERT_TRUE(rig.validate(writer).ok);
  // OCC-DA's validator timestamp is fixed at its slot: the backward-only
  // interval cannot contain it.
  ValidationResult r = rig.validate(reader);
  EXPECT_FALSE(r.ok);
}

TEST(Occ, WriteWriteForcesForwardOrder) {
  for (Protocol protocol : {Protocol::kOccDa, Protocol::kOccTi, Protocol::kOccDati}) {
    Rig rig(protocol);
    auto& w1 = rig.begin();
    auto& w2 = rig.begin();
    rig.write(w1, 1, "a");
    rig.write(w2, 1, "b");
    ASSERT_TRUE(rig.validate(w1).ok) << to_string(protocol);
    ValidationResult r = rig.validate(w2);
    ASSERT_TRUE(r.ok) << to_string(protocol);
    EXPECT_GT(w2.serial_ts(), w1.serial_ts()) << to_string(protocol);
    EXPECT_EQ(rig.store.find(1)->value, val("b"));
  }
}

TEST(Occ, ReaderOfOverwrittenAndRereadRestarts) {
  Rig rig(Protocol::kOccDati);
  auto& reader = rig.begin();
  auto& writer = rig.begin();
  rig.read(reader, 1);
  rig.write(writer, 1, "new");
  ASSERT_TRUE(rig.validate(writer).ok);
  // Re-reading the overwritten object: no serialization point can see both
  // versions.
  auto r = rig.cc->on_read(reader, 1, rig.store.find(1));
  EXPECT_EQ(r.decision, Access::kRestartSelf);
}

TEST(Occ, RereadOfUnchangedObjectIsFine) {
  Rig rig(Protocol::kOccDati);
  auto& reader = rig.begin();
  rig.read(reader, 1);
  auto r = rig.cc->on_read(reader, 1, rig.store.find(1));
  EXPECT_EQ(r.decision, Access::kGranted);
  EXPECT_EQ(reader.read_set().size(), 1u);
}

TEST(Occ, SandwichedTransactionRestarts) {
  // T both read something the committer wrote AND wrote something the
  // committer read: it must serialize both before and after -> empty.
  for (Protocol protocol : {Protocol::kOccDa, Protocol::kOccTi, Protocol::kOccDati}) {
    Rig rig(protocol);
    auto& t = rig.begin();
    auto& committer = rig.begin();
    rig.read(t, 1);      // committer writes 1 => t before committer
    rig.write(t, 2, "tw");  // committer reads 2 => t after committer
    rig.read(committer, 2);
    rig.write(committer, 1, "cw");
    ValidationResult r = rig.validate(committer);
    ASSERT_TRUE(r.ok) << to_string(protocol);
    ASSERT_EQ(r.victims.size(), 1u) << to_string(protocol);
    EXPECT_EQ(r.victims[0], t.id());
  }
}

TEST(Occ, WriterFloorsAgainstCommittedReaderTimestamps) {
  Rig rig(Protocol::kOccDati);
  // A reader commits with a high serial ts; a later writer of the same
  // object must serialize after it even if its own interval was clamped low.
  auto& reader = rig.begin();
  rig.read(reader, 1);
  ASSERT_TRUE(rig.validate(reader).ok);
  const ValidationTs reader_ts = reader.serial_ts();

  auto& writer = rig.begin();
  rig.write(writer, 1, "after-reader");
  ASSERT_TRUE(rig.validate(writer).ok);
  EXPECT_GT(writer.serial_ts(), reader_ts);
}

TEST(Occ, TiEagerClampingAtAccessTime) {
  Rig rig(Protocol::kOccTi);
  rig.store.find_mutable(1)->wts = 500;
  auto& t = rig.begin();
  rig.read(t, 1);
  // OCC-TI clamps immediately at the read.
  EXPECT_GE(t.interval().lo, 501u);

  Rig rig2(Protocol::kOccDati);
  rig2.store.find_mutable(1)->wts = 500;
  auto& t2 = rig2.begin();
  rig2.read(t2, 1);
  // OCC-DATI defers every clamp to validation.
  EXPECT_EQ(t2.interval().lo, 1u);
}

TEST(Occ, AbortRemovesFromActiveSet) {
  Rig rig(Protocol::kOccDati);
  auto& t = rig.begin();
  rig.read(t, 1);
  EXPECT_EQ(rig.cc->active_count(), 1u);
  rig.cc->on_abort(t);
  EXPECT_EQ(rig.cc->active_count(), 0u);

  // An aborted transaction is no longer adjusted by validators.
  auto& writer = rig.begin();
  rig.write(writer, 1, "w");
  ValidationResult r = rig.validate(writer);
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.victims.empty());
}

TEST(Occ, SerialTimestampsRespectSlotSpacing) {
  Rig rig(Protocol::kOccDati);
  auto& a = rig.begin();
  rig.write(a, 1, "a");
  ASSERT_TRUE(rig.validate(a).ok);
  EXPECT_EQ(a.serial_ts(), 1 * kTsSpacing);
  auto& b = rig.begin();
  rig.read(b, 2);
  ASSERT_TRUE(rig.validate(b).ok);
  EXPECT_EQ(b.serial_ts(), 2 * kTsSpacing);
}

}  // namespace
}  // namespace rodain::cc
