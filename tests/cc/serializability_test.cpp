// Serializability property tests for the whole concurrency-control family.
//
// Random concurrent schedules run through the full simulated node (real
// engine, real validation, real restarts, preemptive CPU with randomized
// compute bursts to scramble interleavings). Every committed transaction
// records the values it read. Afterwards the committed set is re-executed
// serially in serialization-timestamp order against a copy of the initial
// database: each transaction must observe exactly the values it observed
// concurrently, and the final stores must match. Any non-serializable
// schedule admitted by a protocol fails this test.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "rodain/common/rng.hpp"
#include "rodain/simdb/sim_node.hpp"

namespace rodain {
namespace {

using namespace rodain::literals;

struct CommittedTxn {
  ValidationTs serial_ts;
  ValidationTs seq;
  txn::TxnProgram program;
  std::vector<storage::Value> reads;
};

struct ScheduleParams {
  cc::Protocol protocol;
  std::size_t num_objects;
  std::size_t num_txns;
  std::uint64_t seed;
};

void PrintTo(const ScheduleParams& p, std::ostream* os) {
  *os << cc::to_string(p.protocol) << "/objects=" << p.num_objects
      << "/txns=" << p.num_txns << "/seed=" << p.seed;
}

class SerializabilityTest : public ::testing::TestWithParam<ScheduleParams> {};

txn::TxnProgram random_program(Rng& rng, std::size_t num_objects) {
  txn::TxnProgram p;
  const std::size_t ops = 2 + rng.next_below(5);
  for (std::size_t i = 0; i < ops; ++i) {
    const ObjectId oid = 1 + rng.next_below(num_objects);
    switch (rng.next_below(6)) {
      case 0:
      case 1:
        p.read(oid);
        break;
      case 2:
        p.add_to_field(oid, 0, 1 + rng.next_below(10));
        break;
      case 3: {
        // Provisioning: (re-)insert with a value derived from the draw.
        storage::Value v{std::string_view{"\0\0\0\0\0\0\0\0", 8}};
        v.write_u64(0, 777000 + rng.next_below(1000));
        p.insert(oid, std::move(v));
        break;
      }
      case 4:
        p.erase(oid);
        break;
      case 5:
        p.compute(Duration::micros(static_cast<std::int64_t>(rng.next_below(400))));
        break;
    }
  }
  p.with_deadline(10_s);  // generous: we want commits, not deadline noise
  return p;
}

/// Serial re-execution with the engine's capture semantics (ReadOp captures;
/// updates mutate the private copy; installs at the end).
void replay_serially(const txn::TxnProgram& program, storage::ObjectStore& store,
                     std::vector<storage::Value>& reads_out) {
  std::map<ObjectId, storage::Value> writes;
  auto current = [&](ObjectId oid) -> storage::Value {
    if (auto it = writes.find(oid); it != writes.end()) return it->second;
    const storage::ObjectRecord* rec = store.find(oid);
    return rec ? rec->value : storage::Value{};
  };
  for (const txn::Op& op : program.ops) {
    if (const auto* read = std::get_if<txn::ReadOp>(&op)) {
      reads_out.push_back(current(read->oid));
    } else if (const auto* insert = std::get_if<txn::InsertOp>(&op)) {
      writes[insert->oid] = insert->value;
    } else if (const auto* erase = std::get_if<txn::DeleteOp>(&op)) {
      writes[erase->oid] = storage::Value{};  // tombstones read as missing
    } else if (const auto* update = std::get_if<txn::UpdateOp>(&op)) {
      storage::Value v = current(update->oid);
      if (update->kind == txn::UpdateOp::Kind::kSetValue) {
        v = update->value;
      } else {
        if (v.size() < update->field_offset + 8) {
          std::vector<std::byte> grown(update->field_offset + 8);
          std::memcpy(grown.data(), v.data(), v.size());
          v.assign(grown);
        }
        v.write_u64(update->field_offset,
                    v.read_u64(update->field_offset) + update->delta);
      }
      writes[update->oid] = std::move(v);
    }
  }
  for (auto& [oid, v] : writes) store.upsert(oid, std::move(v), 0);
}

TEST_P(SerializabilityTest, CommittedScheduleIsSerializable) {
  const ScheduleParams params = GetParam();
  Rng rng(params.seed);

  sim::Simulation sim;
  simdb::SimNodeConfig config;
  config.engine.protocol = params.protocol;
  config.engine.capture_reads = true;
  config.engine.costs = engine::CostModel::zero();
  config.engine.costs.per_read = 40_us;
  config.engine.costs.per_update = 60_us;
  config.engine.costs.validate = 30_us;
  config.overload.max_active = 10000;  // no shedding noise
  config.disk_enabled = false;
  simdb::SimNode node(sim, "solo", 1, config);

  // Initial database: u64 counters with distinct values.
  storage::ObjectStore initial(params.num_objects);
  for (std::size_t i = 1; i <= params.num_objects; ++i) {
    storage::Value v{std::string_view{"\0\0\0\0\0\0\0\0", 8}};
    v.write_u64(0, i * 1000);
    node.store().upsert(i, v, 0);
    initial.upsert(i, v, 0);
  }
  node.start_as_primary(LogMode::kOff);

  std::vector<CommittedTxn> committed;
  node.set_txn_observer(
      [&committed](const txn::Transaction& t, const simdb::TxnResult& r) {
        if (r.outcome != TxnOutcome::kCommitted) return;
        committed.push_back(CommittedTxn{t.serial_ts(), t.validation_seq(),
                                         t.program(), t.captured_reads});
      });

  std::vector<txn::TxnProgram> programs;
  programs.reserve(params.num_txns);
  for (std::size_t i = 0; i < params.num_txns; ++i) {
    programs.push_back(random_program(rng, params.num_objects));
  }
  for (std::size_t i = 0; i < params.num_txns; ++i) {
    const Duration offset = Duration::micros(
        static_cast<std::int64_t>(rng.next_below(params.num_txns * 120)));
    sim.schedule_after(offset, [&node, &programs, i] {
      node.submit(programs[i], [](const simdb::TxnResult&) {});
    });
  }
  sim.run_until(TimePoint::origin() + Duration::seconds(60));
  ASSERT_EQ(node.active_txns(), 0u) << "transactions stuck at the horizon";

  // Most transactions should have committed (no firm overload here).
  EXPECT_GT(committed.size(), params.num_txns * 3 / 4)
      << "protocol " << cc::to_string(params.protocol);

  // Re-execute serially in serialization order.
  std::sort(committed.begin(), committed.end(),
            [](const CommittedTxn& a, const CommittedTxn& b) {
              if (a.serial_ts != b.serial_ts) return a.serial_ts < b.serial_ts;
              return a.seq < b.seq;
            });
  storage::ObjectStore replay(params.num_objects);
  initial.for_each([&](ObjectId id, const storage::ObjectRecord& rec) {
    replay.upsert(id, rec.value, 0);
  });
  for (std::size_t i = 0; i < committed.size(); ++i) {
    std::vector<storage::Value> serial_reads;
    replay_serially(committed[i].program, replay, serial_reads);
    ASSERT_EQ(serial_reads.size(), committed[i].reads.size()) << "txn " << i;
    for (std::size_t r = 0; r < serial_reads.size(); ++r) {
      ASSERT_EQ(serial_reads[r], committed[i].reads[r])
          << "txn " << i << " (seq " << committed[i].seq << ", ts "
          << committed[i].serial_ts << ") read " << r << " diverged under "
          << cc::to_string(params.protocol);
    }
  }

  // Final database state must match the serial execution.
  replay.for_each([&](ObjectId id, const storage::ObjectRecord& rec) {
    const storage::ObjectRecord* got = node.store().find(id);
    ASSERT_NE(got, nullptr) << id;
    ASSERT_EQ(got->value, rec.value) << "object " << id << " diverged under "
                                     << cc::to_string(params.protocol);
  });
}

std::vector<ScheduleParams> all_params() {
  std::vector<ScheduleParams> params;
  for (cc::Protocol protocol :
       {cc::Protocol::kOccBc, cc::Protocol::kOccDa, cc::Protocol::kOccTi,
        cc::Protocol::kOccDati, cc::Protocol::kTwoPlHp}) {
    // High contention: few objects, many txns.
    params.push_back({protocol, 4, 150, 11});
    params.push_back({protocol, 4, 150, 12});
    // Medium contention.
    params.push_back({protocol, 16, 200, 13});
    params.push_back({protocol, 16, 200, 14});
    // Low contention, larger schedule.
    params.push_back({protocol, 64, 300, 15});
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, SerializabilityTest,
                         ::testing::ValuesIn(all_params()));

}  // namespace
}  // namespace rodain
