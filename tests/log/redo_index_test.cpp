#include "rodain/log/redo_index.hpp"

#include <gtest/gtest.h>

#include <map>

#include "rodain/log/record.hpp"
#include "rodain/storage/btree.hpp"
#include "rodain/storage/object_store.hpp"

namespace rodain::log {
namespace {

storage::Value counter_val(std::uint64_t v) {
  storage::Value value{std::string_view{"\0\0\0\0\0\0\0\0", 8}};
  value.write_u64(0, v);
  return value;
}

/// `txns` committed transactions, each one write setting object
/// (1 + seq % objects) to seq — same shape as the recovery tests.
std::vector<Record> build_log(std::size_t txns, std::size_t objects,
                              std::map<ObjectId, std::uint64_t>& expect) {
  std::vector<Record> records;
  for (ValidationTs seq = 1; seq <= txns; ++seq) {
    const ObjectId oid = 1 + (seq % objects);
    records.push_back(Record::write_image(seq, oid, counter_val(seq)));
    records.push_back(Record::commit(seq, seq, seq * 1000, 1));
    expect[oid] = seq;
  }
  return records;
}

TEST(RedoIndex, BuildDefersEverything) {
  std::map<ObjectId, std::uint64_t> expect;
  auto records = build_log(100, 10, expect);
  storage::ObjectStore store(16);
  RedoIndex redo;
  ASSERT_TRUE(redo.build(records, 0).is_ok());
  EXPECT_TRUE(redo.active());
  EXPECT_EQ(redo.deferred_txns(), 100u);
  EXPECT_EQ(redo.deferred_writes(), 100u);
  EXPECT_EQ(redo.pending_txns(), 100u);
  EXPECT_EQ(redo.last_seq(), 100u);
  // Nothing installed yet: that is the whole point.
  for (auto& [oid, v] : expect) EXPECT_EQ(store.find(oid), nullptr);
}

TEST(RedoIndex, EnsureRecoveredAppliesOnlyThatChain) {
  std::map<ObjectId, std::uint64_t> expect;
  auto records = build_log(100, 10, expect);
  storage::ObjectStore store(16);
  RedoIndex redo;
  ASSERT_TRUE(redo.build(records, 0).is_ok());

  redo.ensure_recovered(5, store, nullptr);
  ASSERT_NE(store.find(5), nullptr);
  EXPECT_EQ(store.find(5)->value.read_u64(0), expect[5]);
  // The chain held every write to object 5 (seqs 4, 14, ..., 94).
  EXPECT_EQ(redo.ondemand_applied(), 10u);
  // Untouched objects stay parked, and the index stays active.
  EXPECT_EQ(store.find(6), nullptr);
  EXPECT_TRUE(redo.active());

  // Re-touching a recovered object is a no-op (the watermark).
  redo.ensure_recovered(5, store, nullptr);
  EXPECT_EQ(redo.ondemand_applied(), 10u);
}

TEST(RedoIndex, SweepDrainsInSeqOrderWithinBudget) {
  std::map<ObjectId, std::uint64_t> expect;
  auto records = build_log(100, 10, expect);
  storage::ObjectStore store(16);
  RedoIndex redo;
  ASSERT_TRUE(redo.build(records, 0).is_ok());

  EXPECT_EQ(redo.sweep(30, store, nullptr), 30u);
  EXPECT_TRUE(redo.active());
  std::size_t crossed = 30;
  while (std::size_t n = redo.sweep(30, store, nullptr)) crossed += n;
  EXPECT_EQ(crossed, 100u);
  EXPECT_FALSE(redo.active());
  EXPECT_EQ(redo.background_applied(), 100u);
  for (auto& [oid, v] : expect) {
    ASSERT_NE(store.find(oid), nullptr);
    EXPECT_EQ(store.find(oid)->value.read_u64(0), v);
  }
}

TEST(RedoIndex, WatermarkPartitionsOndemandAndBackground) {
  // On-demand replay of some chains, then a full sweep: every write applies
  // exactly once, the two counters partition the total, and w-w winners are
  // the higher-seq image even though on-demand jumped the sweep order.
  std::map<ObjectId, std::uint64_t> expect;
  auto records = build_log(100, 10, expect);
  storage::ObjectStore store(16);
  RedoIndex redo;
  ASSERT_TRUE(redo.build(records, 0).is_ok());

  redo.ensure_recovered(3, store, nullptr);
  redo.ensure_recovered(7, store, nullptr);
  while (redo.sweep(16, store, nullptr) != 0) {
  }
  EXPECT_FALSE(redo.active());
  EXPECT_EQ(redo.ondemand_applied() + redo.background_applied(), 100u);
  EXPECT_EQ(redo.ondemand_applied(), 20u);
  EXPECT_EQ(redo.pending_txns(), 0u);
  for (auto& [oid, v] : expect) {
    ASSERT_NE(store.find(oid), nullptr);
    EXPECT_EQ(store.find(oid)->value.read_u64(0), v);
  }
}

TEST(RedoIndex, EnsureRecoveredKeyCoversInsertsAndDeletes) {
  const auto key = storage::IndexKey::from_u64(77);
  std::vector<Record> records;
  records.push_back(Record::insert_image(1, 10, counter_val(111), key));
  records.push_back(Record::commit(1, 1, 1000, 1));
  records.push_back(Record::tombstone(2, 10, key));
  records.push_back(Record::commit(2, 2, 2000, 1));

  storage::ObjectStore store(4);
  storage::BPlusTree index;
  RedoIndex redo;
  ASSERT_TRUE(redo.build(records, 0).is_ok());

  // A lookup of the key must observe the full chain: the insert AND the
  // later delete, so the key resolves to "gone", not to the stale insert.
  redo.ensure_recovered_key(key, store, &index);
  EXPECT_FALSE(index.find(key).has_value());
  const storage::ObjectRecord* obj = store.find(10);
  EXPECT_TRUE(obj == nullptr || obj->deleted);
  EXPECT_FALSE(redo.active());
}

TEST(RedoIndex, CheckpointOverlapSkipped) {
  std::map<ObjectId, std::uint64_t> expect;
  auto records = build_log(50, 5, expect);
  storage::ObjectStore store(8);
  RedoIndex redo;
  // Seqs 1..30 are covered by the checkpoint: only 20 txns defer.
  ASSERT_TRUE(redo.build(records, 30).is_ok());
  EXPECT_EQ(redo.deferred_txns(), 20u);
  EXPECT_EQ(redo.last_seq(), 50u);
}

TEST(RedoIndex, IncompleteTransactionsDropped) {
  std::vector<Record> records;
  records.push_back(Record::write_image(1, 10, counter_val(1)));
  records.push_back(Record::commit(1, 1, 1000, 1));
  records.push_back(Record::write_image(2, 20, counter_val(2)));  // no commit
  storage::ObjectStore store(4);
  RedoIndex redo;
  ASSERT_TRUE(redo.build(records, 0).is_ok());
  EXPECT_EQ(redo.deferred_txns(), 1u);
  EXPECT_EQ(redo.incomplete_dropped(), 1u);
  redo.drain(store, nullptr);
  EXPECT_EQ(store.find(20), nullptr);
}

TEST(RedoIndex, WriteCountMismatchIsCorruption) {
  std::vector<Record> records;
  records.push_back(Record::write_image(1, 10, counter_val(1)));
  records.push_back(Record::commit(1, 1, 1000, 2));  // claims two writes
  RedoIndex redo;
  const Status s = redo.build(records, 0);
  ASSERT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kCorruption);
}

TEST(RedoIndex, AbandonDiscardsUnapplied) {
  // A mirror rejoin installs a snapshot that supersedes the local log: the
  // parked images must never touch the store afterwards.
  std::map<ObjectId, std::uint64_t> expect;
  auto records = build_log(40, 4, expect);
  storage::ObjectStore store(8);
  RedoIndex redo;
  ASSERT_TRUE(redo.build(records, 0).is_ok());
  redo.abandon();
  EXPECT_FALSE(redo.active());
  redo.ensure_recovered(1, store, nullptr);
  EXPECT_EQ(redo.sweep(100, store, nullptr), 0u);
  for (auto& [oid, v] : expect) EXPECT_EQ(store.find(oid), nullptr);
}

}  // namespace
}  // namespace rodain::log
