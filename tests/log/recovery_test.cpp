#include "rodain/log/recovery.hpp"

#include <gtest/gtest.h>

#include <map>

#include "rodain/common/rng.hpp"
#include "rodain/log/log_storage.hpp"

namespace rodain::log {
namespace {

storage::Value counter_val(std::uint64_t v) {
  storage::Value value{std::string_view{"\0\0\0\0\0\0\0\0", 8}};
  value.write_u64(0, v);
  return value;
}

/// Build a log of `txns` committed transactions (each: one write setting
/// object (seq % objects) to seq), returning the expected final state.
std::vector<Record> build_log(std::size_t txns, std::size_t objects,
                              std::map<ObjectId, std::uint64_t>& expect) {
  std::vector<Record> records;
  for (ValidationTs seq = 1; seq <= txns; ++seq) {
    const ObjectId oid = 1 + (seq % objects);
    records.push_back(Record::write_image(seq, oid, counter_val(seq)));
    records.push_back(Record::commit(seq, seq, seq * 1000, 1));
    expect[oid] = seq;
  }
  return records;
}

TEST(Recovery, ReplaysCommittedTransactions) {
  std::map<ObjectId, std::uint64_t> expect;
  auto records = build_log(100, 10, expect);
  storage::ObjectStore store(16);
  auto stats = replay_records(records, store);
  ASSERT_TRUE(stats.is_ok());
  EXPECT_EQ(stats.value().committed_applied, 100u);
  EXPECT_EQ(stats.value().writes_applied, 100u);
  EXPECT_EQ(stats.value().last_seq, 100u);
  for (auto& [oid, v] : expect) {
    ASSERT_NE(store.find(oid), nullptr);
    EXPECT_EQ(store.find(oid)->value.read_u64(0), v);
  }
}

TEST(Recovery, SkipsTransactionsWithoutCommitRecord) {
  std::vector<Record> records;
  records.push_back(Record::write_image(1, 10, counter_val(1)));
  records.push_back(Record::commit(1, 1, 1000, 1));
  records.push_back(Record::write_image(2, 20, counter_val(2)));  // no commit
  storage::ObjectStore store(4);
  auto stats = replay_records(records, store);
  ASSERT_TRUE(stats.is_ok());
  EXPECT_EQ(stats.value().committed_applied, 1u);
  EXPECT_EQ(stats.value().incomplete_dropped, 1u);
  EXPECT_EQ(store.find(20), nullptr);
}

TEST(Recovery, AppliesInSeqOrderDespiteLogOrder) {
  // A lone node's log can hold commits out of order; w-w winners must still
  // be the higher-seq transaction.
  std::vector<Record> records;
  records.push_back(Record::write_image(2, 1, counter_val(222)));
  records.push_back(Record::commit(2, 2, 2000, 1));
  records.push_back(Record::write_image(1, 1, counter_val(111)));
  records.push_back(Record::commit(1, 1, 1000, 1));
  storage::ObjectStore store(4);
  ASSERT_TRUE(replay_records(records, store).is_ok());
  EXPECT_EQ(store.find(1)->value.read_u64(0), 222u);
}

TEST(Recovery, CheckpointOverlapSkipped) {
  std::map<ObjectId, std::uint64_t> expect;
  auto records = build_log(50, 5, expect);
  storage::ObjectStore store(8);
  // Checkpoint covers up to seq 30: those replay as no-ops (skipped).
  auto stats = replay_records(records, store, /*already_applied=*/30);
  ASSERT_TRUE(stats.is_ok());
  EXPECT_EQ(stats.value().committed_applied, 20u);
}

TEST(Recovery, WriteCountMismatchRejected) {
  std::vector<Record> records;
  records.push_back(Record::write_image(1, 10, counter_val(1)));
  records.push_back(Record::commit(1, 1, 1000, 2));  // claims 2 writes
  storage::ObjectStore store(4);
  auto stats = replay_records(records, store);
  ASSERT_FALSE(stats.is_ok());
  EXPECT_EQ(stats.status().code(), ErrorCode::kCorruption);
}

TEST(Recovery, BufferTornTailTolerated) {
  std::map<ObjectId, std::uint64_t> expect;
  auto records = build_log(20, 5, expect);
  auto bytes = encode_records(records);
  bytes.resize(bytes.size() - 3);  // tear the final commit record
  storage::ObjectStore store(8);
  auto stats = recover_from_buffer(bytes, store);
  ASSERT_TRUE(stats.is_ok());
  EXPECT_TRUE(stats.value().torn_tail);
  EXPECT_EQ(stats.value().committed_applied, 19u);
}

// Property: recovering a log cut at ANY byte position yields the state of a
// committed prefix — never a torn or interleaved state.
TEST(Recovery, PropertyPrefixConsistencyAtEveryCrashPoint) {
  Rng rng(7);
  // Transactions with 1-3 writes each, values derived from seq.
  std::vector<Record> records;
  const std::size_t txns = 30;
  for (ValidationTs seq = 1; seq <= txns; ++seq) {
    const auto writes = static_cast<std::uint32_t>(1 + rng.next_below(3));
    for (std::uint32_t w = 0; w < writes; ++w) {
      records.push_back(Record::write_image(seq, 1 + (seq + w) % 7,
                                            counter_val(seq * 10 + w)));
    }
    records.push_back(Record::commit(seq, seq, seq * 1000, writes));
  }
  const auto bytes = encode_records(records);

  // Reference: state after each committed prefix.
  std::vector<std::map<ObjectId, std::uint64_t>> prefix_state(txns + 1);
  {
    std::map<ObjectId, std::uint64_t> state;
    std::size_t idx = 0;
    ValidationTs seq = 0;
    for (const Record& r : records) {
      (void)idx;
      if (r.type == RecordType::kWriteImage) continue;
      ++seq;
      // Re-scan this txn's writes (they precede the commit contiguously
      // in this synthetic log).
      for (const Record& w : records) {
        if (w.type == RecordType::kWriteImage && w.txn == r.txn) {
          state[w.oid] = w.after.read_u64(0);
        }
      }
      prefix_state[seq] = state;
    }
  }

  for (std::size_t cut = 0; cut <= bytes.size(); cut += 37) {
    storage::ObjectStore store(8);
    auto stats = recover_from_buffer(
        std::span<const std::byte>{bytes.data(), cut}, store);
    ASSERT_TRUE(stats.is_ok()) << "cut=" << cut;
    const ValidationTs applied = stats.value().last_seq;
    ASSERT_LE(applied, txns);
    const auto& expect = prefix_state[applied];
    std::size_t found = 0;
    store.for_each([&](ObjectId oid, const storage::ObjectRecord& rec) {
      auto it = expect.find(oid);
      ASSERT_NE(it, expect.end()) << "cut=" << cut << " oid=" << oid;
      EXPECT_EQ(rec.value.read_u64(0), it->second) << "cut=" << cut;
      ++found;
    });
    EXPECT_EQ(found, expect.size()) << "cut=" << cut;
  }
}

}  // namespace
}  // namespace rodain::log
