#include "rodain/log/recovery.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <map>

#include "rodain/common/rng.hpp"
#include "rodain/log/log_storage.hpp"
#include "rodain/log/segment.hpp"
#include "rodain/storage/checkpoint.hpp"

namespace rodain::log {
namespace {

storage::Value counter_val(std::uint64_t v) {
  storage::Value value{std::string_view{"\0\0\0\0\0\0\0\0", 8}};
  value.write_u64(0, v);
  return value;
}

/// Build a log of `txns` committed transactions (each: one write setting
/// object (seq % objects) to seq), returning the expected final state.
std::vector<Record> build_log(std::size_t txns, std::size_t objects,
                              std::map<ObjectId, std::uint64_t>& expect) {
  std::vector<Record> records;
  for (ValidationTs seq = 1; seq <= txns; ++seq) {
    const ObjectId oid = 1 + (seq % objects);
    records.push_back(Record::write_image(seq, oid, counter_val(seq)));
    records.push_back(Record::commit(seq, seq, seq * 1000, 1));
    expect[oid] = seq;
  }
  return records;
}

TEST(Recovery, ReplaysCommittedTransactions) {
  std::map<ObjectId, std::uint64_t> expect;
  auto records = build_log(100, 10, expect);
  storage::ObjectStore store(16);
  auto stats = replay_records(records, store);
  ASSERT_TRUE(stats.is_ok());
  EXPECT_EQ(stats.value().committed_applied, 100u);
  EXPECT_EQ(stats.value().writes_applied, 100u);
  EXPECT_EQ(stats.value().last_seq, 100u);
  for (auto& [oid, v] : expect) {
    ASSERT_NE(store.find(oid), nullptr);
    EXPECT_EQ(store.find(oid)->value.read_u64(0), v);
  }
}

TEST(Recovery, SkipsTransactionsWithoutCommitRecord) {
  std::vector<Record> records;
  records.push_back(Record::write_image(1, 10, counter_val(1)));
  records.push_back(Record::commit(1, 1, 1000, 1));
  records.push_back(Record::write_image(2, 20, counter_val(2)));  // no commit
  storage::ObjectStore store(4);
  auto stats = replay_records(records, store);
  ASSERT_TRUE(stats.is_ok());
  EXPECT_EQ(stats.value().committed_applied, 1u);
  EXPECT_EQ(stats.value().incomplete_dropped, 1u);
  EXPECT_EQ(store.find(20), nullptr);
}

TEST(Recovery, AppliesInSeqOrderDespiteLogOrder) {
  // A lone node's log can hold commits out of order; w-w winners must still
  // be the higher-seq transaction.
  std::vector<Record> records;
  records.push_back(Record::write_image(2, 1, counter_val(222)));
  records.push_back(Record::commit(2, 2, 2000, 1));
  records.push_back(Record::write_image(1, 1, counter_val(111)));
  records.push_back(Record::commit(1, 1, 1000, 1));
  storage::ObjectStore store(4);
  ASSERT_TRUE(replay_records(records, store).is_ok());
  EXPECT_EQ(store.find(1)->value.read_u64(0), 222u);
}

TEST(Recovery, CheckpointOverlapSkipped) {
  std::map<ObjectId, std::uint64_t> expect;
  auto records = build_log(50, 5, expect);
  storage::ObjectStore store(8);
  // Checkpoint covers up to seq 30: those replay as no-ops (skipped).
  auto stats = replay_records(records, store, /*already_applied=*/30);
  ASSERT_TRUE(stats.is_ok());
  EXPECT_EQ(stats.value().committed_applied, 20u);
}

TEST(Recovery, WriteCountMismatchRejected) {
  std::vector<Record> records;
  records.push_back(Record::write_image(1, 10, counter_val(1)));
  records.push_back(Record::commit(1, 1, 1000, 2));  // claims 2 writes
  storage::ObjectStore store(4);
  auto stats = replay_records(records, store);
  ASSERT_FALSE(stats.is_ok());
  EXPECT_EQ(stats.status().code(), ErrorCode::kCorruption);
}

TEST(Recovery, BufferTornTailTolerated) {
  std::map<ObjectId, std::uint64_t> expect;
  auto records = build_log(20, 5, expect);
  auto bytes = encode_records(records);
  bytes.resize(bytes.size() - 3);  // tear the final commit record
  storage::ObjectStore store(8);
  auto stats = recover_from_buffer(bytes, store);
  ASSERT_TRUE(stats.is_ok());
  EXPECT_TRUE(stats.value().torn_tail);
  EXPECT_EQ(stats.value().committed_applied, 19u);
}

// Property: recovering a log cut at ANY byte position yields the state of a
// committed prefix — never a torn or interleaved state.
TEST(Recovery, PropertyPrefixConsistencyAtEveryCrashPoint) {
  Rng rng(7);
  // Transactions with 1-3 writes each, values derived from seq.
  std::vector<Record> records;
  const std::size_t txns = 30;
  for (ValidationTs seq = 1; seq <= txns; ++seq) {
    const auto writes = static_cast<std::uint32_t>(1 + rng.next_below(3));
    for (std::uint32_t w = 0; w < writes; ++w) {
      records.push_back(Record::write_image(seq, 1 + (seq + w) % 7,
                                            counter_val(seq * 10 + w)));
    }
    records.push_back(Record::commit(seq, seq, seq * 1000, writes));
  }
  const auto bytes = encode_records(records);

  // Reference: state after each committed prefix.
  std::vector<std::map<ObjectId, std::uint64_t>> prefix_state(txns + 1);
  {
    std::map<ObjectId, std::uint64_t> state;
    std::size_t idx = 0;
    ValidationTs seq = 0;
    for (const Record& r : records) {
      (void)idx;
      if (r.type == RecordType::kWriteImage) continue;
      ++seq;
      // Re-scan this txn's writes (they precede the commit contiguously
      // in this synthetic log).
      for (const Record& w : records) {
        if (w.type == RecordType::kWriteImage && w.txn == r.txn) {
          state[w.oid] = w.after.read_u64(0);
        }
      }
      prefix_state[seq] = state;
    }
  }

  for (std::size_t cut = 0; cut <= bytes.size(); cut += 37) {
    storage::ObjectStore store(8);
    auto stats = recover_from_buffer(
        std::span<const std::byte>{bytes.data(), cut}, store);
    ASSERT_TRUE(stats.is_ok()) << "cut=" << cut;
    const ValidationTs applied = stats.value().last_seq;
    ASSERT_LE(applied, txns);
    const auto& expect = prefix_state[applied];
    std::size_t found = 0;
    store.for_each([&](ObjectId oid, const storage::ObjectRecord& rec) {
      auto it = expect.find(oid);
      ASSERT_NE(it, expect.end()) << "cut=" << cut << " oid=" << oid;
      EXPECT_EQ(rec.value.read_u64(0), it->second) << "cut=" << cut;
      ++found;
    });
    EXPECT_EQ(found, expect.size()) << "cut=" << cut;
  }
}

// ---- segmented cold start ------------------------------------------------

class SegmentedRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("rodain_segrec_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    log_dir_ = (dir_ / "log").string();
    ckpt_path_ = (dir_ / "db.ckpt").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Log committed txns [1, txns] into small segments, mirroring them into
  /// `state` and `expect` so tests can checkpoint / verify any boundary.
  void build_segments(std::size_t txns,
                      std::map<ObjectId, std::uint64_t>& expect,
                      storage::ObjectStore* state = nullptr) {
    SegmentedLogStorage::Options opt;
    opt.segment_bytes = 256;
    auto log = SegmentedLogStorage::open(log_dir_, opt);
    ASSERT_TRUE(log.is_ok());
    for (ValidationTs seq = 1; seq <= txns; ++seq) {
      const ObjectId oid = 1 + (seq % 7);
      log.value()->append(Record::write_image(seq, oid, counter_val(seq)));
      log.value()->append(Record::commit(seq, seq, seq * 1000, 1));
      Status status = Status::ok();
      log.value()->flush([&](Status s) { status = s; });
      ASSERT_TRUE(status) << status.to_string();
      expect[oid] = seq;
      if (state) state->upsert(oid, counter_val(seq), seq);
    }
  }

  void verify_state(const storage::ObjectStore& store,
                    const std::map<ObjectId, std::uint64_t>& expect) {
    for (const auto& [oid, v] : expect) {
      ASSERT_NE(store.find(oid), nullptr) << oid;
      EXPECT_EQ(store.find(oid)->value.read_u64(0), v) << oid;
    }
  }

  std::filesystem::path dir_;
  std::string log_dir_;
  std::string ckpt_path_;
};

TEST_F(SegmentedRecoveryTest, SkipsSegmentsTheCheckpointCovers) {
  std::map<ObjectId, std::uint64_t> expect;
  storage::ObjectStore state(16);
  storage::ObjectStore snapshot(16);
  // Checkpoint the state as of seq 20, then keep logging to 40 WITHOUT
  // truncating — recovery itself must skip the fully covered segments.
  build_segments(40, expect, &state);
  storage::ObjectStore at_20(16);
  std::map<ObjectId, std::uint64_t> expect_20;
  for (ValidationTs seq = 1; seq <= 20; ++seq) {
    at_20.upsert(1 + (seq % 7), counter_val(seq), seq);
  }
  ASSERT_TRUE(storage::write_checkpoint_file(at_20, 20, ckpt_path_));

  storage::ObjectStore recovered(16);
  auto stats = recover_checkpoint_and_segments(ckpt_path_, log_dir_, recovered);
  ASSERT_TRUE(stats.is_ok()) << stats.status().to_string();
  EXPECT_GT(stats.value().segments_skipped, 0u);
  EXPECT_GT(stats.value().segments_decoded, 0u);
  EXPECT_EQ(stats.value().last_seq, 40u);
  // Commits at or below the boundary that survive in straddling segments
  // replay as no-ops: only the tail past 20 is applied.
  EXPECT_EQ(stats.value().committed_applied, 20u);
  verify_state(recovered, expect);
}

TEST_F(SegmentedRecoveryTest, CommitExactlyAtBoundaryIsSkipped) {
  std::map<ObjectId, std::uint64_t> expect;
  storage::ObjectStore state(16);
  build_segments(10, expect, &state);
  // Boundary lands exactly on commit seq 10 — the newest commit must NOT
  // replay (r.seq <= already_applied), and last_seq still reports 10.
  ASSERT_TRUE(storage::write_checkpoint_file(state, 10, ckpt_path_));
  storage::ObjectStore recovered(16);
  auto stats = recover_checkpoint_and_segments(ckpt_path_, log_dir_, recovered);
  ASSERT_TRUE(stats.is_ok());
  EXPECT_EQ(stats.value().committed_applied, 0u);
  EXPECT_EQ(stats.value().last_seq, 10u);
  verify_state(recovered, expect);
}

TEST_F(SegmentedRecoveryTest, BoundaryPastTheLogClampsLastSeq) {
  std::map<ObjectId, std::uint64_t> expect;
  storage::ObjectStore state(16);
  build_segments(5, expect, &state);
  // The checkpoint is AHEAD of the surviving log (truncation deleted
  // everything it covered plus the node crashed before logging more):
  // last_seq must be the checkpoint boundary, never the older log tail.
  ASSERT_TRUE(storage::write_checkpoint_file(state, 50, ckpt_path_));
  storage::ObjectStore recovered(16);
  auto stats = recover_checkpoint_and_segments(ckpt_path_, log_dir_, recovered);
  ASSERT_TRUE(stats.is_ok());
  EXPECT_EQ(stats.value().committed_applied, 0u);
  EXPECT_EQ(stats.value().last_seq, 50u);
}

TEST_F(SegmentedRecoveryTest, TornTailInNewestSegmentTolerated) {
  std::map<ObjectId, std::uint64_t> expect;
  build_segments(12, expect);
  // Crash artifact: garbage after the last whole record of the unsealed
  // (newest) segment.
  auto segments = SegmentedLogStorage::list_segments(log_dir_);
  ASSERT_TRUE(segments.is_ok());
  const auto& newest = segments.value().back();
  ASSERT_EQ(newest.last_seq, 0u) << "newest segment should be unsealed";
  {
    std::FILE* f = std::fopen(newest.path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char garbage[] = "\x40\x00\x00\x00half-a-record";
    std::fwrite(garbage, 1, sizeof garbage, f);
    std::fclose(f);
  }
  storage::ObjectStore recovered(16);
  auto stats = recover_checkpoint_and_segments("", log_dir_, recovered);
  ASSERT_TRUE(stats.is_ok()) << stats.status().to_string();
  EXPECT_TRUE(stats.value().torn_tail);
  EXPECT_EQ(stats.value().committed_applied, 12u);
  verify_state(recovered, expect);
}

TEST_F(SegmentedRecoveryTest, CorruptCheckpointFallsBackToLogOnlyReplay) {
  std::map<ObjectId, std::uint64_t> expect;
  storage::ObjectStore state(16);
  build_segments(15, expect, &state);
  ASSERT_TRUE(storage::write_checkpoint_file(state, 15, ckpt_path_));
  // Flip a payload byte: the checkpoint CRC fails, but the full log still
  // exists, so recovery restarts from an empty store and replays it all.
  {
    std::FILE* f = std::fopen(ckpt_path_.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 64, SEEK_SET);
    const int byte = std::fgetc(f);
    std::fseek(f, 64, SEEK_SET);
    std::fputc(byte ^ 0x40, f);
    std::fclose(f);
  }
  storage::ObjectStore recovered(16);
  auto stats = recover_checkpoint_and_segments(ckpt_path_, log_dir_, recovered);
  ASSERT_TRUE(stats.is_ok()) << stats.status().to_string();
  EXPECT_TRUE(stats.value().checkpoint_fallback);
  EXPECT_EQ(stats.value().committed_applied, 15u);
  EXPECT_EQ(stats.value().last_seq, 15u);
  verify_state(recovered, expect);
}

TEST_F(SegmentedRecoveryTest, NoCheckpointNoLogIsCleanEmptyStart) {
  storage::ObjectStore recovered(4);
  auto stats = recover_checkpoint_and_segments(ckpt_path_, log_dir_, recovered);
  ASSERT_TRUE(stats.is_ok()) << stats.status().to_string();
  EXPECT_EQ(stats.value().last_seq, 0u);
  EXPECT_EQ(recovered.size(), 0u);
}

}  // namespace
}  // namespace rodain::log
