#include "rodain/log/log_storage.hpp"

#include <gtest/gtest.h>

#include <filesystem>

namespace rodain::log {
namespace {

using namespace rodain::literals;

storage::Value val(std::string_view s) { return storage::Value{s}; }

TEST(MemoryLogStorage, FlushIsImmediate) {
  MemoryLogStorage mem;
  mem.append(Record::write_image(1, 2, val("x")));
  EXPECT_EQ(mem.appended(), 1u);
  EXPECT_EQ(mem.durable(), 0u);
  bool done = false;
  mem.flush([&](Status s) {
    EXPECT_TRUE(s);
    done = true;
  });
  EXPECT_TRUE(done);
  EXPECT_EQ(mem.durable(), 1u);
}

class FileLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("rodain_log_" +
              std::string(::testing::UnitTest::GetInstance()
                              ->current_test_info()
                              ->name()) +
              ".log"))
                .string();
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::string path_;
};

TEST_F(FileLogTest, AppendFlushReadBack) {
  {
    auto file = FileLogStorage::open(path_);
    ASSERT_TRUE(file.is_ok());
    file.value()->append(Record::write_image(1, 10, val("a")));
    file.value()->append(Record::commit(1, 1, 100, 1));
    bool flushed = false;
    file.value()->flush([&](Status s) {
      EXPECT_TRUE(s);
      flushed = true;
    });
    EXPECT_TRUE(flushed);
    EXPECT_EQ(file.value()->durable(), 2u);
  }
  auto records = FileLogStorage::read_all(path_);
  ASSERT_TRUE(records.is_ok());
  ASSERT_EQ(records.value().size(), 2u);
  EXPECT_EQ(records.value()[0].oid, 10u);
  EXPECT_TRUE(records.value()[1].is_commit());
}

TEST_F(FileLogTest, ReopenAppends) {
  {
    auto file = FileLogStorage::open(path_);
    file.value()->append(Record::commit(1, 1, 100, 0));
    file.value()->flush({});
  }
  {
    auto file = FileLogStorage::open(path_);
    file.value()->append(Record::commit(2, 2, 200, 0));
    file.value()->flush({});
  }
  auto records = FileLogStorage::read_all(path_);
  ASSERT_TRUE(records.is_ok());
  EXPECT_EQ(records.value().size(), 2u);
}

TEST_F(FileLogTest, TornTailReported) {
  {
    auto file = FileLogStorage::open(path_);
    file.value()->append(Record::commit(1, 1, 100, 0));
    file.value()->flush({});
  }
  // Append garbage simulating a torn write.
  {
    std::FILE* f = std::fopen(path_.c_str(), "ab");
    const char garbage[] = {0x40, 0x00, 0x00, 0x00, 0x01};
    std::fwrite(garbage, 1, sizeof garbage, f);
    std::fclose(f);
  }
  bool torn = false;
  auto records = FileLogStorage::read_all(path_, &torn);
  ASSERT_TRUE(records.is_ok());
  EXPECT_TRUE(torn);
  EXPECT_EQ(records.value().size(), 1u);
}

TEST_F(FileLogTest, MissingFileIsNotFound) {
  auto records = FileLogStorage::read_all(path_ + ".nope");
  ASSERT_FALSE(records.is_ok());
  EXPECT_EQ(records.status().code(), ErrorCode::kNotFound);
}

TEST_F(FileLogTest, FailedFlushKeepsBytesForRetry) {
  auto file = FileLogStorage::open(path_);
  ASSERT_TRUE(file.is_ok());
  file.value()->append(Record::write_image(1, 10, val("a")));
  file.value()->append(Record::commit(1, 1, 100, 1));
  file.value()->inject_write_error(1);

  Status status = Status::ok();
  file.value()->flush([&](Status s) { status = s; });
  EXPECT_FALSE(status);
  EXPECT_EQ(file.value()->durable(), 0u);

  // Regression: the failed flush used to clear the pending buffer while
  // leaving the buffered count, so this retry (with nothing left to write)
  // would credit durable_ for records that never reached the file.
  file.value()->flush([&](Status s) { status = s; });
  ASSERT_TRUE(status) << status.to_string();
  EXPECT_EQ(file.value()->durable(), 2u);

  auto records = FileLogStorage::read_all(path_);
  ASSERT_TRUE(records.is_ok());
  ASSERT_EQ(records.value().size(), 2u);
  EXPECT_TRUE(records.value()[1].is_commit());
}

TEST(MemoryLogStorage, TruncateUptoTrimsDurableCommitPrefix) {
  MemoryLogStorage mem;
  for (TxnId t = 1; t <= 4; ++t) {
    mem.append(Record::write_image(t, t * 10, val("x")));
    mem.append(Record::commit(t, t, t * 100, 1));
  }
  mem.flush({});
  // Boundary mid-history: exactly the first two transactions are covered.
  EXPECT_EQ(mem.truncate_upto(2), 4u);
  EXPECT_EQ(mem.durable(), 4u);
  ASSERT_EQ(mem.records().size(), 4u);
  EXPECT_EQ(mem.records()[0].oid, 30u);
  // A boundary below every remaining commit removes nothing.
  EXPECT_EQ(mem.truncate_upto(2), 0u);
}

TEST(SimDiskLogStorage, TruncateUptoPreservesBacklogAccounting) {
  sim::Simulation sim;
  SimDiskLogStorage disk(sim, {});
  for (TxnId t = 1; t <= 3; ++t) {
    disk.append(Record::commit(t, t, t * 100, 0));
  }
  disk.flush({});
  sim.run();
  // Two more appended but not yet durable.
  disk.append(Record::commit(4, 4, 400, 0));
  disk.append(Record::commit(5, 5, 500, 0));
  EXPECT_EQ(disk.backlog(), 2u);

  EXPECT_EQ(disk.truncate_upto(2), 2u);
  EXPECT_EQ(disk.truncated(), 2u);
  EXPECT_EQ(disk.backlog(), 2u) << "truncation only trims the durable prefix";
  EXPECT_EQ(disk.durable(), 1u);
  EXPECT_EQ(disk.appended(), 3u);

  disk.flush({});
  sim.run();
  EXPECT_EQ(disk.backlog(), 0u);
  EXPECT_EQ(disk.durable(), 3u);
  ASSERT_EQ(disk.records().size(), 3u);
  EXPECT_EQ(disk.records()[0].seq, 3u);
}

TEST(SimDiskLogStorage, FlushCostsSeekPlusTransfer) {
  sim::Simulation sim;
  SimDiskLogStorage::Options options;
  options.seek_time = 8_ms;
  options.throughput_bytes_per_sec = 1e6;  // 1 MB/s: 1 us per byte
  SimDiskLogStorage disk(sim, options);
  disk.append(Record::write_image(1, 2, val(std::string(1000, 'x'))));
  TimePoint done_at{};
  disk.flush([&](Status s) {
    EXPECT_TRUE(s);
    done_at = sim.now();
  });
  sim.run();
  // ~8 ms seek + ~1 ms transfer for ~1 KB.
  EXPECT_GT(done_at.us, 8500);
  EXPECT_LT(done_at.us, 11000);
  EXPECT_EQ(disk.durable(), 1u);
}

TEST(SimDiskLogStorage, SerializedFlushesQueue) {
  sim::Simulation sim;
  SimDiskLogStorage::Options options;
  options.seek_time = 10_ms;
  options.throughput_bytes_per_sec = 1e9;  // transfer negligible
  options.coalesce_flushes = false;
  SimDiskLogStorage disk(sim, options);

  std::vector<TimePoint> completions;
  for (int i = 0; i < 3; ++i) {
    disk.append(Record::commit(static_cast<TxnId>(i), i + 1, 100, 0));
    disk.flush([&](Status) { completions.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(completions.size(), 3u);
  // One 10 ms op each, strictly serialized.
  EXPECT_EQ(completions[0].us, 10000);
  EXPECT_EQ(completions[1].us, 20000);
  EXPECT_EQ(completions[2].us, 30000);
}

TEST(SimDiskLogStorage, CoalescedFlushesGroupCommit) {
  sim::Simulation sim;
  SimDiskLogStorage::Options options;
  options.seek_time = 10_ms;
  options.throughput_bytes_per_sec = 1e9;
  options.coalesce_flushes = true;
  SimDiskLogStorage disk(sim, options);

  std::vector<TimePoint> completions;
  for (int i = 0; i < 3; ++i) {
    disk.append(Record::commit(static_cast<TxnId>(i), i + 1, 100, 0));
    disk.flush([&](Status) { completions.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(completions.size(), 3u);
  // First op covers txn 0; the two requests arriving while it is busy fold
  // into ONE second op.
  EXPECT_EQ(completions[0].us, 10000);
  EXPECT_EQ(completions[1].us, 20000);
  EXPECT_EQ(completions[2].us, 20000);
  EXPECT_EQ(disk.durable(), 3u);
}

TEST(SimDiskLogStorage, BacklogTracksUnflushed) {
  sim::Simulation sim;
  SimDiskLogStorage disk(sim, {});
  for (int i = 0; i < 5; ++i) {
    disk.append(Record::commit(static_cast<TxnId>(i), i + 1, 100, 0));
  }
  EXPECT_EQ(disk.backlog(), 5u);
  disk.flush({});
  sim.run();
  EXPECT_EQ(disk.backlog(), 0u);
}

TEST(SimDiskLogStorage, FlushWithNothingPendingCompletesInline) {
  sim::Simulation sim;
  SimDiskLogStorage disk(sim, {});
  bool done = false;
  disk.flush([&](Status) { done = true; });
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace rodain::log
