#include "rodain/log/reorder.hpp"

#include <gtest/gtest.h>

#include "rodain/common/rng.hpp"

namespace rodain::log {
namespace {

storage::Value val(std::string_view s) { return storage::Value{s}; }

struct Collector {
  std::vector<ValidationTs> released;
  Reorderer reorderer;

  explicit Collector(ValidationTs expected = 1)
      : reorderer(
            [this](ValidationTs seq, TxnId, std::vector<Record>) {
              released.push_back(seq);
            },
            expected) {}

  void feed_txn(TxnId txn, ValidationTs seq, std::uint32_t writes = 1) {
    for (std::uint32_t w = 0; w < writes; ++w) {
      ASSERT_TRUE(reorderer.add(Record::write_image(txn, 100 + w, val("v"))));
    }
    ASSERT_TRUE(reorderer.add(Record::commit(txn, seq, seq * 1000, writes)));
  }
};

TEST(Reorderer, InOrderStreamsReleaseImmediately) {
  Collector c;
  c.feed_txn(11, 1);
  c.feed_txn(12, 2);
  c.feed_txn(13, 3);
  EXPECT_EQ(c.released, (std::vector<ValidationTs>{1, 2, 3}));
  EXPECT_EQ(c.reorderer.staged_commits(), 0u);
}

TEST(Reorderer, OutOfOrderCommitsBufferUntilGapCloses) {
  Collector c;
  c.feed_txn(12, 2);
  c.feed_txn(13, 3);
  EXPECT_TRUE(c.released.empty());
  EXPECT_EQ(c.reorderer.staged_commits(), 2u);
  c.feed_txn(11, 1);
  EXPECT_EQ(c.released, (std::vector<ValidationTs>{1, 2, 3}));
}

TEST(Reorderer, InterleavedWritesFromConcurrentTxns) {
  Collector c;
  // Writes of txns 21 and 22 interleave on the wire; commits arrive 2, 1.
  ASSERT_TRUE(c.reorderer.add(Record::write_image(21, 1, val("a"))));
  ASSERT_TRUE(c.reorderer.add(Record::write_image(22, 2, val("b"))));
  ASSERT_TRUE(c.reorderer.add(Record::write_image(21, 3, val("c"))));
  ASSERT_TRUE(c.reorderer.add(Record::commit(22, 2, 2000, 1)));
  EXPECT_EQ(c.reorderer.open_txns(), 1u);
  ASSERT_TRUE(c.reorderer.add(Record::commit(21, 1, 1000, 2)));
  EXPECT_EQ(c.released, (std::vector<ValidationTs>{1, 2}));
}

TEST(Reorderer, WriteCountMismatchIsCorruption) {
  Collector c;
  ASSERT_TRUE(c.reorderer.add(Record::write_image(5, 1, val("x"))));
  auto s = c.reorderer.add(Record::commit(5, 1, 1000, 2));  // claims 2 writes
  EXPECT_EQ(s.code(), ErrorCode::kCorruption);
}

TEST(Reorderer, StaleCommitDropped) {
  Collector c(/*expected=*/5);
  // A duplicate of an already-applied transaction (catch-up overlap).
  ASSERT_TRUE(c.reorderer.add(Record::write_image(3, 1, val("old"))));
  ASSERT_TRUE(c.reorderer.add(Record::commit(3, 3, 3000, 1)));
  EXPECT_TRUE(c.released.empty());
  EXPECT_EQ(c.reorderer.open_txns(), 0u);  // buffered writes discarded
  // The live stream continues at 5.
  c.feed_txn(50, 5);
  EXPECT_EQ(c.released, (std::vector<ValidationTs>{5}));
}

TEST(Reorderer, DuplicateStagedCommitDropped) {
  Collector c;
  c.feed_txn(12, 2);
  EXPECT_EQ(c.reorderer.staged_commits(), 1u);
  // Duplicate delivery of the same commit (different copy of the records).
  ASSERT_TRUE(c.reorderer.add(Record::write_image(12, 1, val("dup"))));
  ASSERT_TRUE(c.reorderer.add(Record::commit(12, 2, 2000, 1)));
  EXPECT_EQ(c.reorderer.staged_commits(), 1u);
  c.feed_txn(11, 1);
  EXPECT_EQ(c.released, (std::vector<ValidationTs>{1, 2}));
}

TEST(Reorderer, SetExpectedNextPurgesStagedBelowFloor) {
  // Rejoin scenario from the chaos soak: commits 21..23 staged behind a gap
  // (their predecessors were disk-committed on the primary and never
  // shipped), then a snapshot install moves the floor past them. The stale
  // entries must not wall off the live stream that resumes at the floor.
  Collector c(/*expected=*/10);
  c.feed_txn(121, 21);
  c.feed_txn(122, 22);
  c.feed_txn(123, 23);
  EXPECT_TRUE(c.released.empty());
  EXPECT_EQ(c.reorderer.staged_commits(), 3u);
  c.reorderer.set_expected_next(31);  // snapshot boundary 30
  EXPECT_EQ(c.reorderer.staged_commits(), 0u);
  c.feed_txn(131, 31);
  c.feed_txn(132, 32);
  EXPECT_EQ(c.released, (std::vector<ValidationTs>{31, 32}));
}

TEST(Reorderer, SetExpectedNextReleasesStagedAtFloor) {
  // Commits at and above the new floor survive the purge and release as
  // soon as the floor reaches them (install path: stash replayed after).
  Collector c(/*expected=*/10);
  c.feed_txn(121, 21);  // below the new floor: purged
  c.feed_txn(131, 31);  // at the new floor: releases synchronously
  c.feed_txn(132, 32);
  EXPECT_TRUE(c.released.empty());
  c.reorderer.set_expected_next(31);
  EXPECT_EQ(c.released, (std::vector<ValidationTs>{31, 32}));
  EXPECT_EQ(c.reorderer.expected_next(), 33u);
}

TEST(Reorderer, DropOpenTxns) {
  Collector c;
  ASSERT_TRUE(c.reorderer.add(Record::write_image(9, 1, val("x"))));
  ASSERT_TRUE(c.reorderer.add(Record::write_image(10, 2, val("y"))));
  EXPECT_EQ(c.reorderer.drop_open_txns(), 2u);
  EXPECT_EQ(c.reorderer.open_txns(), 0u);
}

TEST(Reorderer, ForceReleaseStagedAppliesAcrossGaps) {
  Collector c;
  c.feed_txn(12, 2);
  c.feed_txn(14, 4);
  EXPECT_TRUE(c.released.empty());
  EXPECT_EQ(c.reorderer.force_release_staged(), 2u);
  EXPECT_EQ(c.released, (std::vector<ValidationTs>{2, 4}));
  EXPECT_EQ(c.reorderer.expected_next(), 5u);
}

TEST(Reorderer, RecordsWithinTxnKeepOrder) {
  std::vector<Record> out;
  Reorderer reorderer([&](ValidationTs, TxnId, std::vector<Record> records) {
    out = std::move(records);
  });
  ASSERT_TRUE(reorderer.add(Record::write_image(1, 10, val("first"))));
  ASSERT_TRUE(reorderer.add(Record::write_image(1, 20, val("second"))));
  ASSERT_TRUE(reorderer.add(Record::commit(1, 1, 1000, 2)));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].oid, 10u);
  EXPECT_EQ(out[1].oid, 20u);
  EXPECT_TRUE(out[2].is_commit());
}

// Property: any permutation of complete transaction batches is released in
// exactly dense seq order.
TEST(Reorderer, PropertyRandomPermutationsReleaseInOrder) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    const std::size_t n = 200;
    std::vector<ValidationTs> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i + 1;
    shuffle(order, rng);

    Collector c;
    for (ValidationTs seq : order) {
      c.feed_txn(seq + 1000, seq, 1 + seq % 3);
      if (::testing::Test::HasFatalFailure()) return;
    }
    ASSERT_EQ(c.released.size(), n) << seed;
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(c.released[i], i + 1) << seed;
    }
    EXPECT_EQ(c.reorderer.staged_commits(), 0u);
    EXPECT_EQ(c.reorderer.open_txns(), 0u);
  }
}

TEST(Reorderer, BatchEpochDedupsRedeliveredWrites) {
  // Regression: a resend after reconnect re-delivers the write images of a
  // transaction whose first delivery is still buffered in open_. Without the
  // per-batch epoch the images double up and the commit's write count check
  // reports kCorruption.
  Collector c;
  c.reorderer.begin_batch();
  ASSERT_TRUE(c.reorderer.add(Record::write_image(7, 100, val("v"))));
  // Link drops before the commit record; the primary re-ships the whole txn.
  c.reorderer.begin_batch();
  ASSERT_TRUE(c.reorderer.add(Record::write_image(7, 100, val("v"))));
  ASSERT_TRUE(c.reorderer.add(Record::commit(7, 1, 1000, 1)));
  EXPECT_EQ(c.released, (std::vector<ValidationTs>{1}));
  EXPECT_EQ(c.reorderer.open_txns(), 0u);
}

TEST(Reorderer, BatchEpochKeepsWritesWithinOneBatch) {
  // Within a single batch a multi-write transaction accumulates normally.
  Collector c;
  c.reorderer.begin_batch();
  ASSERT_TRUE(c.reorderer.add(Record::write_image(7, 100, val("a"))));
  ASSERT_TRUE(c.reorderer.add(Record::write_image(7, 101, val("b"))));
  ASSERT_TRUE(c.reorderer.add(Record::commit(7, 1, 1000, 2)));
  EXPECT_EQ(c.released, (std::vector<ValidationTs>{1}));
}

// ---- Epoch-batched release mode (DESIGN.md §14) ------------------------

struct BatchCollector {
  /// One entry per flush_epoch() that carried transactions.
  std::vector<std::vector<ValidationTs>> epochs;
  Reorderer reorderer;

  explicit BatchCollector(ValidationTs expected = 1)
      : reorderer(
            [this](std::vector<ReleasedTxn> epoch) {
              std::vector<ValidationTs> seqs;
              for (const ReleasedTxn& t : epoch) seqs.push_back(t.seq);
              epochs.push_back(std::move(seqs));
            },
            expected) {}

  void feed_txn(TxnId txn, ValidationTs seq, std::uint32_t writes = 1) {
    for (std::uint32_t w = 0; w < writes; ++w) {
      ASSERT_TRUE(reorderer.add(Record::write_image(txn, 100 + w, val("v"))));
    }
    ASSERT_TRUE(reorderer.add(Record::commit(txn, seq, seq * 1000, writes)));
  }
};

TEST(ReordererEpochs, ReleasesAccumulateUntilFlush) {
  BatchCollector c;
  c.feed_txn(11, 1);
  c.feed_txn(12, 2);
  EXPECT_TRUE(c.epochs.empty());  // nothing handed out yet
  EXPECT_EQ(c.reorderer.epoch_pending(), 2u);
  EXPECT_EQ(c.reorderer.flush_epoch(), 2u);
  ASSERT_EQ(c.epochs.size(), 1u);
  EXPECT_EQ(c.epochs[0], (std::vector<ValidationTs>{1, 2}));
  EXPECT_EQ(c.reorderer.epoch_pending(), 0u);
  // An empty flush is a no-op, not an empty callback.
  EXPECT_EQ(c.reorderer.flush_epoch(), 0u);
  EXPECT_EQ(c.epochs.size(), 1u);
}

TEST(ReordererEpochs, GapAtEpochBoundarySplitsTheRun) {
  BatchCollector c;
  // Wire batch 1 delivers 1, 2, and 4 — 4 stages behind the missing 3.
  c.feed_txn(11, 1);
  c.feed_txn(12, 2);
  c.feed_txn(14, 4);
  EXPECT_EQ(c.reorderer.flush_epoch(), 2u);
  ASSERT_EQ(c.epochs.size(), 1u);
  EXPECT_EQ(c.epochs[0], (std::vector<ValidationTs>{1, 2}));
  EXPECT_EQ(c.reorderer.staged_commits(), 1u);
  // The epoch barrier fired with 4 still staged: the floor honestly stops
  // at 2 (received_commit_floor counts the staged 4 only once 3 closes).
  EXPECT_EQ(c.reorderer.expected_next(), 3u);
  // Batch 2 closes the gap: 3 and the formerly staged 4 form the next epoch.
  c.feed_txn(13, 3);
  EXPECT_EQ(c.reorderer.flush_epoch(), 2u);
  ASSERT_EQ(c.epochs.size(), 2u);
  EXPECT_EQ(c.epochs[1], (std::vector<ValidationTs>{3, 4}));
}

TEST(ReordererEpochs, HoldReleasesSpansEpochs) {
  BatchCollector c;
  c.feed_txn(11, 1);
  EXPECT_EQ(c.reorderer.flush_epoch(), 1u);
  // A join starts: releases held while live batches keep staging.
  c.reorderer.hold_releases();
  c.feed_txn(12, 2);
  c.feed_txn(13, 3);
  EXPECT_EQ(c.reorderer.flush_epoch(), 0u);  // epoch boundary crosses the hold
  EXPECT_EQ(c.reorderer.staged_commits(), 2u);
  c.feed_txn(14, 4);
  EXPECT_EQ(c.reorderer.flush_epoch(), 0u);  // still holding
  // Snapshot boundary 1 installs: the staged run above it releases as one
  // epoch.
  c.reorderer.set_expected_next(2);
  EXPECT_EQ(c.reorderer.flush_epoch(), 3u);
  ASSERT_EQ(c.epochs.size(), 2u);
  EXPECT_EQ(c.epochs[1], (std::vector<ValidationTs>{2, 3, 4}));
}

TEST(ReordererEpochs, SetExpectedNextDiscardsUnflushedEpoch) {
  // Releases parked in the epoch buffer when a snapshot install moves the
  // floor are covered by that snapshot: applying them afterwards would
  // clobber newer state, so the buffer must drain empty.
  BatchCollector c;
  c.feed_txn(11, 1);
  c.feed_txn(12, 2);
  EXPECT_EQ(c.reorderer.epoch_pending(), 2u);
  c.reorderer.set_expected_next(10);  // snapshot boundary 9 supersedes them
  EXPECT_EQ(c.reorderer.epoch_pending(), 0u);
  EXPECT_EQ(c.reorderer.flush_epoch(), 0u);
  EXPECT_TRUE(c.epochs.empty());
}

TEST(ReordererEpochs, ForceReleaseStagedLandsInEpochBuffer) {
  BatchCollector c;
  c.feed_txn(11, 1);
  EXPECT_EQ(c.reorderer.flush_epoch(), 1u);  // partially applied epoch
  c.feed_txn(13, 3);
  c.feed_txn(15, 5);
  EXPECT_EQ(c.reorderer.flush_epoch(), 0u);  // both staged behind gaps
  // Takeover: everything that can apply, applies — across the gaps, into
  // the buffer, drained by the follow-up flush.
  EXPECT_EQ(c.reorderer.force_release_staged(), 2u);
  EXPECT_EQ(c.reorderer.flush_epoch(), 2u);
  ASSERT_EQ(c.epochs.size(), 2u);
  EXPECT_EQ(c.epochs[1], (std::vector<ValidationTs>{3, 5}));
  EXPECT_EQ(c.reorderer.expected_next(), 6u);
}

TEST(ReordererEpochs, CorruptTxnQuarantinedMidBatch) {
  // A write-count mismatch must not poison the surrounding batch: the
  // victim's open state is consumed, its seq stays un-staged, and a later
  // intact re-delivery stages normally.
  BatchCollector c;
  c.feed_txn(11, 1);
  ASSERT_TRUE(c.reorderer.add(Record::write_image(12, 100, val("x"))));
  auto s = c.reorderer.add(Record::commit(12, 2, 2000, 3));  // claims 3 writes
  EXPECT_EQ(s.code(), ErrorCode::kCorruption);
  EXPECT_EQ(c.reorderer.open_txns(), 0u);  // quarantine left nothing behind
  c.feed_txn(13, 3);  // rest of the batch still stages
  EXPECT_EQ(c.reorderer.flush_epoch(), 1u);
  EXPECT_EQ(c.epochs[0], (std::vector<ValidationTs>{1}));
  // The primary's resend re-delivers seq 2 intact; 3 cascades behind it.
  c.feed_txn(12, 2);
  EXPECT_EQ(c.reorderer.flush_epoch(), 2u);
  EXPECT_EQ(c.epochs[1], (std::vector<ValidationTs>{2, 3}));
}

TEST(ReordererEpochs, ValidReleaseSetRejectsEmptyAndCommitless) {
  // The applier stamps writes with the commit record's serial_ts; an empty
  // or commit-less set would fabricate wts=0. The predicate is the gate
  // both release paths use.
  EXPECT_FALSE(Reorderer::valid_release_set({}));
  std::vector<Record> no_commit;
  no_commit.push_back(Record::write_image(1, 10, val("w")));
  EXPECT_FALSE(Reorderer::valid_release_set(no_commit));
  std::vector<Record> ok;
  ok.push_back(Record::write_image(1, 10, val("w")));
  ok.push_back(Record::commit(1, 1, 1000, 1));
  EXPECT_TRUE(Reorderer::valid_release_set(ok));
  // Commit-only (write_count 0) is structurally valid.
  std::vector<Record> commit_only;
  commit_only.push_back(Record::commit(2, 2, 2000, 0));
  EXPECT_TRUE(Reorderer::valid_release_set(commit_only));
  // Nothing the add() path produces ever trips the gate.
  BatchCollector c;
  c.feed_txn(11, 1);
  c.reorderer.flush_epoch();
  EXPECT_EQ(c.reorderer.rejected_release_sets(), 0u);
}

TEST(ReordererEpochs, PropertyPermutationsMatchPerTxnMode) {
  // The epoch-batched discipline must release exactly the per-transaction
  // order, only chunked: concatenating the epochs of any permuted stream
  // reproduces the dense seq order, with each flush cutting at a gap.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    const std::size_t n = 120;
    std::vector<ValidationTs> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i + 1;
    shuffle(order, rng);

    BatchCollector c;
    for (ValidationTs seq : order) {
      c.feed_txn(seq + 1000, seq, 1 + seq % 3);
      if (::testing::Test::HasFatalFailure()) return;
      c.reorderer.flush_epoch();  // one "wire batch" per transaction
    }
    std::vector<ValidationTs> flat;
    for (const auto& epoch : c.epochs) {
      flat.insert(flat.end(), epoch.begin(), epoch.end());
    }
    ASSERT_EQ(flat.size(), n) << seed;
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(flat[i], i + 1) << seed;
    EXPECT_EQ(c.reorderer.staged_commits(), 0u);
    EXPECT_EQ(c.reorderer.epoch_pending(), 0u);
  }
}

TEST(Reorderer, ReceivedCommitFloorTracksContiguousPrefix) {
  Collector c;
  EXPECT_EQ(c.reorderer.received_commit_floor(), 0u);  // nothing received
  c.feed_txn(11, 1);
  EXPECT_EQ(c.reorderer.received_commit_floor(), 1u);
  // Seq 3 and 4 stage behind the missing 2: the floor must not advance past
  // the gap, or the primary would release a transaction the mirror lost.
  c.feed_txn(13, 3);
  c.feed_txn(14, 4);
  EXPECT_EQ(c.reorderer.received_commit_floor(), 1u);
  c.feed_txn(12, 2);
  EXPECT_EQ(c.reorderer.received_commit_floor(), 4u);
}

}  // namespace
}  // namespace rodain::log
