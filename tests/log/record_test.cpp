#include "rodain/log/record.hpp"

#include <gtest/gtest.h>

#include "rodain/common/rng.hpp"

namespace rodain::log {
namespace {

storage::Value val(std::string_view s) { return storage::Value{s}; }

TEST(LogRecord, WriteImageRoundTrip) {
  Record r = Record::write_image(42, 1001, val("after-image-bytes"));
  ByteWriter w;
  encode_record(r, w);
  ByteReader reader(w.view());
  Record out;
  DecodeResult d = decode_record(reader, out);
  ASSERT_TRUE(d.status);
  ASSERT_FALSE(d.end);
  EXPECT_EQ(out, r);
  EXPECT_TRUE(reader.at_end());
}

TEST(LogRecord, CommitRoundTrip) {
  Record r = Record::commit(42, 77, 77 * 1048576, 3);
  ByteWriter w;
  encode_record(r, w);
  ByteReader reader(w.view());
  Record out;
  ASSERT_TRUE(decode_record(reader, out).status);
  EXPECT_EQ(out, r);
  EXPECT_TRUE(out.is_commit());
}

TEST(LogRecord, EmptyAfterImage) {
  Record r = Record::write_image(1, 2, storage::Value{});
  ByteWriter w;
  encode_record(r, w);
  ByteReader reader(w.view());
  Record out;
  ASSERT_TRUE(decode_record(reader, out).status);
  EXPECT_EQ(out.after.size(), 0u);
}

TEST(LogRecord, CleanEndOfStream) {
  ByteReader reader({});
  Record out;
  DecodeResult d = decode_record(reader, out);
  EXPECT_TRUE(d.end);
  EXPECT_TRUE(d.status);
}

TEST(LogRecord, TornTailIsEndNotCorruption) {
  ByteWriter w;
  encode_record(Record::write_image(1, 2, val("payload")), w);
  const auto full = w.view();
  // Any strict prefix must decode as a torn tail (kOutOfRange, end=true).
  for (std::size_t cut = 1; cut < full.size(); ++cut) {
    ByteReader reader(full.subspan(0, cut));
    Record out;
    DecodeResult d = decode_record(reader, out);
    EXPECT_TRUE(d.end) << cut;
    EXPECT_EQ(d.status.code(), ErrorCode::kOutOfRange) << cut;
  }
}

TEST(LogRecord, BitFlipIsCorruption) {
  ByteWriter w;
  encode_record(Record::write_image(1, 2, val("payload")), w);
  auto bytes = w.take();
  // Flip a payload byte (not the length field: offset 6 is inside payload).
  bytes[6] ^= std::byte{0x10};
  ByteReader reader(bytes);
  Record out;
  DecodeResult d = decode_record(reader, out);
  EXPECT_FALSE(d.status);
  EXPECT_EQ(d.status.code(), ErrorCode::kCorruption);
  EXPECT_FALSE(d.end);
}

TEST(LogRecord, BatchRoundTrip) {
  std::vector<Record> records;
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    if (i % 5 == 4) {
      records.push_back(Record::commit(static_cast<TxnId>(i / 5), i, i * 100, 4));
    } else {
      records.push_back(Record::write_image(
          static_cast<TxnId>(i / 5), rng.next_below(1000),
          val(std::string(rng.next_below(100), 'x'))));
    }
  }
  auto bytes = encode_records(records);
  bool torn = false;
  auto decoded = decode_records(bytes, &torn);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_FALSE(torn);
  ASSERT_EQ(decoded.value().size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(decoded.value()[i], records[i]) << i;
  }
}

TEST(LogRecord, BatchWithTornTailReturnsPrefix) {
  std::vector<Record> records;
  for (int i = 0; i < 10; ++i) {
    records.push_back(Record::write_image(1, static_cast<ObjectId>(i), val("v")));
  }
  auto bytes = encode_records(records);
  bytes.resize(bytes.size() - 5);  // tear the last record
  bool torn = false;
  auto decoded = decode_records(bytes, &torn);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_TRUE(torn);
  EXPECT_EQ(decoded.value().size(), 9u);
}

TEST(LogRecord, EncodedSizeIsUpperBoundIsh) {
  // encoded_size is used for disk-throughput modelling; it should at least
  // cover the real encoding.
  Record r = Record::write_image(123456, 99999, val(std::string(200, 'y')));
  ByteWriter w;
  encode_record(r, w);
  EXPECT_GE(r.encoded_size() + 8, w.size());
}

}  // namespace
}  // namespace rodain::log
