#include "rodain/log/writer.hpp"

#include <gtest/gtest.h>

namespace rodain::log {
namespace {

storage::Value val(std::string_view s) { return storage::Value{s}; }

std::vector<Record> txn_records(TxnId txn, ValidationTs seq) {
  std::vector<Record> records;
  records.push_back(Record::write_image(txn, 100 + txn, val("v")));
  records.push_back(Record::commit(txn, seq, seq * 1000, 1));
  return records;
}

struct CapturingShipper final : Shipper {
  std::vector<Record> shipped;
  void ship(std::span<const Record> records) override {
    shipped.insert(shipped.end(), records.begin(), records.end());
  }
};

TEST(LogWriter, OffModeAcksImmediately) {
  LogWriter writer(LogMode::kOff, nullptr, nullptr);
  bool durable = false;
  writer.submit(1, txn_records(1, 1), [&] { durable = true; });
  EXPECT_TRUE(durable);
  EXPECT_EQ(writer.counters().via_none, 1u);
}

TEST(LogWriter, DirectDiskWaitsForFlush) {
  MemoryLogStorage disk;
  LogWriter writer(LogMode::kDirectDisk, &disk, nullptr);
  bool durable = false;
  writer.submit(1, txn_records(1, 1), [&] { durable = true; });
  EXPECT_TRUE(durable);  // memory flush completes inline
  EXPECT_EQ(disk.records().size(), 2u);
  EXPECT_EQ(writer.counters().via_disk, 1u);
}

TEST(LogWriter, MirrorModeWaitsForAck) {
  CapturingShipper shipper;
  LogWriter writer(LogMode::kMirror, nullptr, &shipper);
  bool durable = false;
  writer.submit(5, txn_records(9, 5), [&] { durable = true; });
  EXPECT_FALSE(durable);
  EXPECT_EQ(shipper.shipped.size(), 2u);
  EXPECT_EQ(writer.pending_acks(), 1u);

  writer.on_mirror_ack(5);
  EXPECT_TRUE(durable);
  EXPECT_EQ(writer.pending_acks(), 0u);
}

TEST(LogWriter, DuplicateAndUnknownAcksIgnored) {
  CapturingShipper shipper;
  LogWriter writer(LogMode::kMirror, nullptr, &shipper);
  int acks = 0;
  writer.submit(5, txn_records(9, 5), [&] { ++acks; });
  writer.on_mirror_ack(4);  // unknown
  writer.on_mirror_ack(5);
  writer.on_mirror_ack(5);  // duplicate
  EXPECT_EQ(acks, 1);
}

TEST(LogWriter, MirrorLostReroutesPendingToDisk) {
  CapturingShipper shipper;
  MemoryLogStorage disk;
  LogWriter writer(LogMode::kMirror, &disk, &shipper);
  int durable = 0;
  writer.submit(1, txn_records(1, 1), [&] { ++durable; });
  writer.submit(2, txn_records(2, 2), [&] { ++durable; });
  EXPECT_EQ(durable, 0);

  writer.on_mirror_lost();
  // Both pending transactions completed through the local disk instead.
  EXPECT_EQ(durable, 2);
  EXPECT_EQ(writer.mode(), LogMode::kDirectDisk);
  EXPECT_EQ(disk.records().size(), 4u);
  EXPECT_EQ(writer.counters().rerouted, 2u);
  // Late ack from the dead mirror: harmless.
  writer.on_mirror_ack(1);
  EXPECT_EQ(durable, 2);
}

TEST(LogWriter, ModeSwitchAffectsNewSubmissions) {
  CapturingShipper shipper;
  MemoryLogStorage disk;
  LogWriter writer(LogMode::kDirectDisk, &disk, &shipper);
  writer.submit(1, txn_records(1, 1), {});
  EXPECT_EQ(disk.records().size(), 2u);
  writer.set_mode(LogMode::kMirror);
  writer.submit(2, txn_records(2, 2), {});
  EXPECT_EQ(shipper.shipped.size(), 2u);
  EXPECT_EQ(disk.records().size(), 2u);  // unchanged
}

TEST(LogWriter, AckTimeoutFiresForOldestUnacked) {
  CapturingShipper shipper;
  MemoryLogStorage disk;
  ManualClock clock;
  LogWriter writer(LogMode::kMirror, &disk, &shipper);
  int timeouts = 0;
  writer.configure_ack_timeout(&clock, Duration::millis(100),
                               [&] { ++timeouts; });

  writer.submit(1, txn_records(1, 1), {});
  clock.advance(Duration::millis(50));
  EXPECT_FALSE(writer.check_ack_timeouts());
  EXPECT_EQ(timeouts, 0);

  clock.advance(Duration::millis(51));  // oldest shipment now 101 ms old
  EXPECT_TRUE(writer.check_ack_timeouts());
  EXPECT_EQ(timeouts, 1);
  EXPECT_EQ(writer.counters().ack_timeouts, 1u);
}

TEST(LogWriter, AckInTimeDisarmsTimeout) {
  CapturingShipper shipper;
  ManualClock clock;
  LogWriter writer(LogMode::kMirror, nullptr, &shipper);
  int timeouts = 0;
  writer.configure_ack_timeout(&clock, Duration::millis(100),
                               [&] { ++timeouts; });
  writer.submit(1, txn_records(1, 1), {});
  writer.on_mirror_ack(1);
  clock.advance(Duration::seconds(10));
  EXPECT_FALSE(writer.check_ack_timeouts());
  EXPECT_EQ(timeouts, 0);
}

TEST(LogWriter, AckTimeoutMeasuresFromFirstShipment) {
  // Resends must not push the deadline out: the timeout bounds total
  // time-to-durable for the oldest committer.
  CapturingShipper shipper;
  MemoryLogStorage disk;
  ManualClock clock;
  LogWriter writer(LogMode::kMirror, &disk, &shipper);
  int timeouts = 0;
  writer.configure_ack_timeout(&clock, Duration::millis(100),
                               [&] { ++timeouts; });
  writer.submit(1, txn_records(1, 1), {});
  clock.advance(Duration::millis(60));
  EXPECT_EQ(writer.resend_pending(), 1u);
  clock.advance(Duration::millis(60));  // 120 ms after the first shipment
  EXPECT_TRUE(writer.check_ack_timeouts());
  EXPECT_EQ(timeouts, 1);
}

TEST(LogWriter, ResendPendingReshipsInSeqOrder) {
  CapturingShipper shipper;
  LogWriter writer(LogMode::kMirror, nullptr, &shipper);
  writer.submit(2, txn_records(2, 2), {});
  writer.submit(1, txn_records(1, 1), {});
  writer.on_mirror_ack(2);
  shipper.shipped.clear();

  EXPECT_EQ(writer.resend_pending(), 1u);
  ASSERT_EQ(shipper.shipped.size(), 2u);  // txn 1's two records only
  EXPECT_EQ(shipper.shipped[1].seq, 1u);
  EXPECT_EQ(writer.counters().resent, 1u);

  // Acked transactions are gone; a second resend re-ships the same one.
  EXPECT_EQ(writer.resend_pending(), 1u);
  writer.on_mirror_ack(1);
  EXPECT_EQ(writer.resend_pending(), 0u);
}

TEST(LogWriter, ResendIsNoOpOutsideMirrorMode) {
  CapturingShipper shipper;
  MemoryLogStorage disk;
  LogWriter writer(LogMode::kMirror, &disk, &shipper);
  writer.submit(1, txn_records(1, 1), {});
  writer.on_mirror_lost();
  shipper.shipped.clear();
  EXPECT_EQ(writer.resend_pending(), 0u);
  EXPECT_TRUE(shipper.shipped.empty());
}

TEST(LogWriter, MirrorLostWithInFlightUnackedCompletesEveryCommitter) {
  // The satellite case: ack timeout escalates to on_mirror_lost while
  // several transactions sit unacked; all must become durable via disk, in
  // order, exactly once.
  CapturingShipper shipper;
  MemoryLogStorage disk;
  ManualClock clock;
  LogWriter writer(LogMode::kMirror, &disk, &shipper);
  writer.configure_ack_timeout(&clock, Duration::millis(100),
                               [&] { writer.on_mirror_lost(); });

  std::vector<ValidationTs> durable_order;
  for (ValidationTs seq = 1; seq <= 3; ++seq) {
    writer.submit(seq, txn_records(seq, seq),
                  [&durable_order, seq] { durable_order.push_back(seq); });
  }
  writer.on_mirror_ack(1);
  EXPECT_EQ(writer.pending_acks(), 2u);

  clock.advance(Duration::millis(101));
  EXPECT_TRUE(writer.check_ack_timeouts());
  EXPECT_EQ(durable_order, (std::vector<ValidationTs>{1, 2, 3}));
  EXPECT_EQ(writer.mode(), LogMode::kDirectDisk);
  EXPECT_EQ(writer.pending_acks(), 0u);
  EXPECT_EQ(writer.counters().rerouted, 2u);
  EXPECT_EQ(disk.records().size(), 4u);  // txns 2 and 3 rerouted
  // The stale mirror ack arriving later is harmless.
  writer.on_mirror_ack(2);
  EXPECT_EQ(durable_order.size(), 3u);
}

TEST(LogWriter, TailSinceServesCatchUp) {
  LogWriter writer(LogMode::kOff, nullptr, nullptr);
  for (ValidationTs seq = 1; seq <= 10; ++seq) {
    writer.submit(seq, txn_records(seq, seq), {});
  }
  auto tail = writer.tail_since(7);
  // Transactions 8, 9, 10: two records each.
  ASSERT_EQ(tail.size(), 6u);
  EXPECT_EQ(tail[1].seq, 8u);
  EXPECT_EQ(tail[5].seq, 10u);
  EXPECT_TRUE(writer.tail_since(10).empty());
  // Everything retained from seq 0.
  EXPECT_EQ(writer.tail_since(0).size(), 20u);
}

TEST(LogWriter, TailRetentionIsBounded) {
  LogWriter writer(LogMode::kOff, nullptr, nullptr);
  const ValidationTs total = LogWriter::kTailRetention + 100;
  for (ValidationTs seq = 1; seq <= total; ++seq) {
    writer.submit(seq, txn_records(seq, seq), {});
  }
  auto all = writer.tail_since(0);
  EXPECT_EQ(all.size(), LogWriter::kTailRetention * 2);
  ASSERT_TRUE(all[1].is_commit());
  EXPECT_EQ(all[1].seq, 101u);  // oldest 100 evicted
}

}  // namespace
}  // namespace rodain::log
