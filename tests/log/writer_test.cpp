#include "rodain/log/writer.hpp"

#include <gtest/gtest.h>

#include "rodain/obs/obs.hpp"

namespace rodain::log {
namespace {

storage::Value val(std::string_view s) { return storage::Value{s}; }

std::vector<Record> txn_records(TxnId txn, ValidationTs seq) {
  std::vector<Record> records;
  records.push_back(Record::write_image(txn, 100 + txn, val("v")));
  records.push_back(Record::commit(txn, seq, seq * 1000, 1));
  return records;
}

struct CapturingShipper final : Shipper {
  std::vector<Record> shipped;
  void ship(std::span<const Record> records) override {
    shipped.insert(shipped.end(), records.begin(), records.end());
  }
};

TEST(LogWriter, OffModeAcksImmediately) {
  LogWriter writer(LogMode::kOff, nullptr, nullptr);
  bool durable = false;
  writer.submit(1, txn_records(1, 1), [&] { durable = true; });
  EXPECT_TRUE(durable);
  EXPECT_EQ(writer.counters().via_none, 1u);
}

TEST(LogWriter, DirectDiskWaitsForFlush) {
  MemoryLogStorage disk;
  LogWriter writer(LogMode::kDirectDisk, &disk, nullptr);
  bool durable = false;
  writer.submit(1, txn_records(1, 1), [&] { durable = true; });
  EXPECT_TRUE(durable);  // memory flush completes inline
  EXPECT_EQ(disk.records().size(), 2u);
  EXPECT_EQ(writer.counters().via_disk, 1u);
}

TEST(LogWriter, MirrorModeWaitsForAck) {
  CapturingShipper shipper;
  LogWriter writer(LogMode::kMirror, nullptr, &shipper);
  bool durable = false;
  writer.submit(5, txn_records(9, 5), [&] { durable = true; });
  EXPECT_FALSE(durable);
  EXPECT_EQ(shipper.shipped.size(), 2u);
  EXPECT_EQ(writer.pending_acks(), 1u);

  writer.on_mirror_ack(5);
  EXPECT_TRUE(durable);
  EXPECT_EQ(writer.pending_acks(), 0u);
}

TEST(LogWriter, DuplicateAndUnknownAcksIgnored) {
  CapturingShipper shipper;
  LogWriter writer(LogMode::kMirror, nullptr, &shipper);
  int acks = 0;
  writer.submit(5, txn_records(9, 5), [&] { ++acks; });
  writer.on_mirror_ack(4);  // unknown
  writer.on_mirror_ack(5);
  writer.on_mirror_ack(5);  // duplicate
  EXPECT_EQ(acks, 1);
}

TEST(LogWriter, MirrorLostReroutesPendingToDisk) {
  CapturingShipper shipper;
  MemoryLogStorage disk;
  LogWriter writer(LogMode::kMirror, &disk, &shipper);
  int durable = 0;
  writer.submit(1, txn_records(1, 1), [&] { ++durable; });
  writer.submit(2, txn_records(2, 2), [&] { ++durable; });
  EXPECT_EQ(durable, 0);

  writer.on_mirror_lost();
  // Both pending transactions completed through the local disk instead.
  EXPECT_EQ(durable, 2);
  EXPECT_EQ(writer.mode(), LogMode::kDirectDisk);
  EXPECT_EQ(disk.records().size(), 4u);
  EXPECT_EQ(writer.counters().rerouted, 2u);
  // Late ack from the dead mirror: harmless.
  writer.on_mirror_ack(1);
  EXPECT_EQ(durable, 2);
}

TEST(LogWriter, ModeSwitchAffectsNewSubmissions) {
  CapturingShipper shipper;
  MemoryLogStorage disk;
  LogWriter writer(LogMode::kDirectDisk, &disk, &shipper);
  writer.submit(1, txn_records(1, 1), {});
  EXPECT_EQ(disk.records().size(), 2u);
  writer.set_mode(LogMode::kMirror);
  writer.submit(2, txn_records(2, 2), {});
  EXPECT_EQ(shipper.shipped.size(), 2u);
  EXPECT_EQ(disk.records().size(), 2u);  // unchanged
}

TEST(LogWriter, AckTimeoutFiresForOldestUnacked) {
  CapturingShipper shipper;
  MemoryLogStorage disk;
  ManualClock clock;
  LogWriter writer(LogMode::kMirror, &disk, &shipper);
  int timeouts = 0;
  writer.configure_ack_timeout(&clock, Duration::millis(100),
                               [&] { ++timeouts; });

  writer.submit(1, txn_records(1, 1), {});
  clock.advance(Duration::millis(50));
  EXPECT_FALSE(writer.check_ack_timeouts());
  EXPECT_EQ(timeouts, 0);

  clock.advance(Duration::millis(51));  // oldest shipment now 101 ms old
  EXPECT_TRUE(writer.check_ack_timeouts());
  EXPECT_EQ(timeouts, 1);
  EXPECT_EQ(writer.counters().ack_timeouts, 1u);
}

TEST(LogWriter, AckInTimeDisarmsTimeout) {
  CapturingShipper shipper;
  ManualClock clock;
  LogWriter writer(LogMode::kMirror, nullptr, &shipper);
  int timeouts = 0;
  writer.configure_ack_timeout(&clock, Duration::millis(100),
                               [&] { ++timeouts; });
  writer.submit(1, txn_records(1, 1), {});
  writer.on_mirror_ack(1);
  clock.advance(Duration::seconds(10));
  EXPECT_FALSE(writer.check_ack_timeouts());
  EXPECT_EQ(timeouts, 0);
}

TEST(LogWriter, ResendRestampsAckTimeout) {
  // Regression: resend_pending() used to leave Pending::shipped_at at the
  // original shipment time, so check_ack_timeouts() re-fired immediately
  // after a reconnect. A resend restarts the window for the new attempt.
  CapturingShipper shipper;
  MemoryLogStorage disk;
  ManualClock clock;
  LogWriter writer(LogMode::kMirror, &disk, &shipper);
  int timeouts = 0;
  writer.configure_ack_timeout(&clock, Duration::millis(100),
                               [&] { ++timeouts; });
  writer.submit(1, txn_records(1, 1), {});
  clock.advance(Duration::millis(60));
  EXPECT_EQ(writer.resend_pending(), 1u);
  clock.advance(Duration::millis(60));  // 120 ms overall, 60 ms since resend
  EXPECT_FALSE(writer.check_ack_timeouts());
  EXPECT_EQ(timeouts, 0);
  clock.advance(Duration::millis(41));  // 101 ms since the resend
  EXPECT_TRUE(writer.check_ack_timeouts());
  EXPECT_EQ(timeouts, 1);
}

TEST(LogWriter, ResendRestampsObsShipTimeUnconditionally) {
  // Regression: resend_pending() only restamped Pending::shipped_at_us when
  // it was already non-zero, so a transaction submitted while obs was off
  // and resent after obs came up kept its zero stamp — its replication-RTT
  // sample was skipped forever on ack. The resend anchors both the
  // ack-timeout clock and the obs stamp at the new attempt.
  CapturingShipper shipper;
  ManualClock clock;
  LogWriter writer(LogMode::kMirror, nullptr, &shipper);
  writer.configure_ack_timeout(&clock, Duration::seconds(10), {});
  writer.submit(1, txn_records(1, 1), {});  // obs off: shipped_at_us == 0

  obs::ObsConfig obs_config;
  obs_config.enabled = true;
  obs::init(obs_config);
  const std::size_t rtt_before =
      obs::metrics().timer("repl.commit_rtt_us").merged().count();
  EXPECT_EQ(writer.resend_pending(), 1u);
  writer.on_mirror_ack(1);
  EXPECT_EQ(obs::metrics().timer("repl.commit_rtt_us").merged().count(),
            rtt_before + 1);
}

TEST(LogWriter, ResendPendingReshipsInSeqOrderAsOneBatch) {
  CapturingShipper shipper;
  LogWriter writer(LogMode::kMirror, nullptr, &shipper);
  writer.submit(1, txn_records(1, 1), {});
  writer.submit(2, txn_records(2, 2), {});
  writer.submit(3, txn_records(3, 3), {});
  writer.on_mirror_ack(1);
  shipper.shipped.clear();
  const std::uint64_t frames_before = writer.counters().batches_shipped;

  // Txns 2 and 3 go out again as one combined frame, in validation order.
  EXPECT_EQ(writer.resend_pending(), 2u);
  ASSERT_EQ(shipper.shipped.size(), 4u);
  EXPECT_EQ(shipper.shipped[1].seq, 2u);
  EXPECT_EQ(shipper.shipped[3].seq, 3u);
  EXPECT_EQ(writer.counters().resent, 2u);
  EXPECT_EQ(writer.counters().batches_shipped, frames_before + 1);

  // Acked transactions are gone; the cumulative ack clears the rest.
  writer.on_mirror_ack(3);
  EXPECT_EQ(writer.resend_pending(), 0u);
}

TEST(LogWriter, ResendIsNoOpOutsideMirrorMode) {
  CapturingShipper shipper;
  MemoryLogStorage disk;
  LogWriter writer(LogMode::kMirror, &disk, &shipper);
  writer.submit(1, txn_records(1, 1), {});
  writer.on_mirror_lost();
  shipper.shipped.clear();
  EXPECT_EQ(writer.resend_pending(), 0u);
  EXPECT_TRUE(shipper.shipped.empty());
}

TEST(LogWriter, MirrorLostWithInFlightUnackedCompletesEveryCommitter) {
  // The satellite case: ack timeout escalates to on_mirror_lost while
  // several transactions sit unacked; all must become durable via disk, in
  // order, exactly once.
  CapturingShipper shipper;
  MemoryLogStorage disk;
  ManualClock clock;
  LogWriter writer(LogMode::kMirror, &disk, &shipper);
  writer.configure_ack_timeout(&clock, Duration::millis(100),
                               [&] { writer.on_mirror_lost(); });

  std::vector<ValidationTs> durable_order;
  for (ValidationTs seq = 1; seq <= 3; ++seq) {
    writer.submit(seq, txn_records(seq, seq),
                  [&durable_order, seq] { durable_order.push_back(seq); });
  }
  writer.on_mirror_ack(1);
  EXPECT_EQ(writer.pending_acks(), 2u);

  clock.advance(Duration::millis(101));
  EXPECT_TRUE(writer.check_ack_timeouts());
  EXPECT_EQ(durable_order, (std::vector<ValidationTs>{1, 2, 3}));
  EXPECT_EQ(writer.mode(), LogMode::kDirectDisk);
  EXPECT_EQ(writer.pending_acks(), 0u);
  EXPECT_EQ(writer.counters().rerouted, 2u);
  EXPECT_EQ(disk.records().size(), 4u);  // txns 2 and 3 rerouted
  // The stale mirror ack arriving later is harmless.
  writer.on_mirror_ack(2);
  EXPECT_EQ(durable_order.size(), 3u);
}

TEST(LogWriter, TailSinceServesCatchUp) {
  LogWriter writer(LogMode::kOff, nullptr, nullptr);
  for (ValidationTs seq = 1; seq <= 10; ++seq) {
    writer.submit(seq, txn_records(seq, seq), {});
  }
  auto tail = writer.tail_since(7);
  // Transactions 8, 9, 10: two records each.
  ASSERT_EQ(tail.size(), 6u);
  EXPECT_EQ(tail[1].seq, 8u);
  EXPECT_EQ(tail[5].seq, 10u);
  EXPECT_TRUE(writer.tail_since(10).empty());
  // Everything retained from seq 0.
  EXPECT_EQ(writer.tail_since(0).size(), 20u);
}

TEST(LogWriter, TailRetentionIsBounded) {
  LogWriter writer(LogMode::kOff, nullptr, nullptr);
  const ValidationTs total = LogWriter::kTailRetention + 100;
  for (ValidationTs seq = 1; seq <= total; ++seq) {
    writer.submit(seq, txn_records(seq, seq), {});
  }
  auto all = writer.tail_since(0);
  EXPECT_EQ(all.size(), LogWriter::kTailRetention * 2);
  ASSERT_TRUE(all[1].is_commit());
  EXPECT_EQ(all[1].seq, 101u);  // oldest 100 evicted
}

TEST(LogWriter, SynchronousLoopbackAckFindsPendingEntry) {
  // Regression: submit() used to ship before registering pending_, so a
  // shipper that acks synchronously (loopback transport) found an empty map
  // and the durable callback was lost forever.
  struct LoopbackShipper final : Shipper {
    LogWriter* writer{nullptr};
    void ship(std::span<const Record> records) override {
      ValidationTs top = 0;
      for (const Record& r : records) {
        if (r.is_commit() && r.seq > top) top = r.seq;
      }
      if (writer != nullptr && top != 0) writer->on_mirror_ack(top);
    }
  };
  LoopbackShipper shipper;
  LogWriter writer(LogMode::kMirror, nullptr, &shipper);
  shipper.writer = &writer;
  bool durable = false;
  writer.submit(1, txn_records(1, 1), [&] { durable = true; });
  EXPECT_TRUE(durable);
  EXPECT_EQ(writer.pending_acks(), 0u);
}

TEST(LogWriter, CumulativeAckReleasesInSeqOrder) {
  CapturingShipper shipper;
  LogWriter writer(LogMode::kMirror, nullptr, &shipper);
  std::vector<ValidationTs> durable_order;
  for (ValidationTs seq = 1; seq <= 4; ++seq) {
    writer.submit(seq, txn_records(seq, seq),
                  [&durable_order, seq] { durable_order.push_back(seq); });
  }
  writer.on_mirror_ack(3);
  EXPECT_EQ(durable_order, (std::vector<ValidationTs>{1, 2, 3}));
  EXPECT_EQ(writer.pending_acks(), 1u);
  EXPECT_EQ(writer.counters().acks_received, 1u);
  EXPECT_EQ(writer.counters().ack_released_txns, 3u);
  writer.on_mirror_ack(4);
  EXPECT_EQ(durable_order, (std::vector<ValidationTs>{1, 2, 3, 4}));
  EXPECT_EQ(writer.pending_acks(), 0u);
}

TEST(LogWriter, BatchDrainsAtTxnThreshold) {
  CapturingShipper shipper;
  ManualClock clock;
  LogWriter writer(LogMode::kMirror, nullptr, &shipper);
  LogWriter::BatchOptions opts;
  opts.max_txns = 3;
  writer.configure_batching(&clock, opts);

  writer.submit(1, txn_records(1, 1), {});
  writer.submit(2, txn_records(2, 2), {});
  EXPECT_TRUE(shipper.shipped.empty());
  EXPECT_EQ(writer.batched_txns(), 2u);

  writer.submit(3, txn_records(3, 3), {});
  EXPECT_EQ(shipper.shipped.size(), 6u);  // three txns, two records each
  EXPECT_EQ(writer.batched_txns(), 0u);
  EXPECT_EQ(writer.counters().batches_shipped, 1u);
  EXPECT_EQ(writer.counters().batch_txns_shipped, 3u);
  EXPECT_EQ(writer.counters().batch_fill_txns, 1u);
}

TEST(LogWriter, BatchDrainsAtByteThreshold) {
  CapturingShipper shipper;
  ManualClock clock;
  LogWriter writer(LogMode::kMirror, nullptr, &shipper);
  std::size_t one_txn_bytes = 0;
  for (const Record& r : txn_records(1, 1)) one_txn_bytes += r.encoded_size();
  LogWriter::BatchOptions opts;
  opts.max_txns = 100;
  opts.max_bytes = one_txn_bytes + 1;  // one txn fits, two overflow
  writer.configure_batching(&clock, opts);

  writer.submit(1, txn_records(1, 1), {});
  EXPECT_TRUE(shipper.shipped.empty());
  writer.submit(2, txn_records(2, 2), {});
  EXPECT_EQ(shipper.shipped.size(), 4u);
  EXPECT_EQ(writer.counters().batch_fill_bytes, 1u);
  EXPECT_EQ(writer.counters().batch_bytes_shipped, 2 * one_txn_bytes);
}

TEST(LogWriter, DelayWindowFlushesViaScheduler) {
  CapturingShipper shipper;
  ManualClock clock;
  std::vector<Duration> scheduled;
  LogWriter writer(LogMode::kMirror, nullptr, &shipper);
  LogWriter::BatchOptions opts;
  opts.max_txns = 100;
  opts.max_delay = Duration::millis(5);
  writer.configure_batching(&clock, opts,
                            [&](Duration d) { scheduled.push_back(d); });

  writer.submit(1, txn_records(1, 1), {});
  ASSERT_EQ(scheduled.size(), 1u);  // first txn of the batch opens the window
  EXPECT_EQ(scheduled[0].us, 5000);
  writer.submit(2, txn_records(2, 2), {});
  EXPECT_EQ(scheduled.size(), 1u);  // later txns ride the same window
  EXPECT_TRUE(shipper.shipped.empty());

  clock.advance(Duration::millis(5));
  writer.flush_batch();
  EXPECT_EQ(shipper.shipped.size(), 4u);
  EXPECT_EQ(writer.counters().batch_fill_delay, 1u);
}

TEST(LogWriter, StaleFlushTimerRearmsForYoungerBatch) {
  // A timer armed for batch N may fire after N already drained on a
  // threshold; it must not ship batch N+1 early, only re-arm its remainder.
  CapturingShipper shipper;
  ManualClock clock;
  std::vector<Duration> scheduled;
  LogWriter writer(LogMode::kMirror, nullptr, &shipper);
  LogWriter::BatchOptions opts;
  opts.max_txns = 2;
  opts.max_delay = Duration::millis(5);
  writer.configure_batching(&clock, opts,
                            [&](Duration d) { scheduled.push_back(d); });

  writer.submit(1, txn_records(1, 1), {});  // t=0: timer armed for t=5ms
  clock.advance(Duration::millis(1));
  writer.submit(2, txn_records(2, 2), {});  // threshold drains batch 1
  EXPECT_EQ(shipper.shipped.size(), 4u);
  clock.advance(Duration::millis(1));
  writer.submit(3, txn_records(3, 3), {});  // t=2ms: batch 2 deadline t=7ms
  ASSERT_EQ(scheduled.size(), 2u);

  clock.advance(Duration::millis(3));  // t=5ms: batch 1's stale timer fires
  writer.flush_batch();
  EXPECT_EQ(shipper.shipped.size(), 4u);  // batch 2 not shipped early
  ASSERT_EQ(scheduled.size(), 3u);
  EXPECT_EQ(scheduled[2].us, 2000);  // re-armed for the remaining window

  clock.advance(Duration::millis(2));  // t=7ms: batch 2's own deadline
  writer.flush_batch();
  EXPECT_EQ(shipper.shipped.size(), 6u);
  EXPECT_EQ(writer.counters().batch_fill_txns, 1u);
  EXPECT_EQ(writer.counters().batch_fill_delay, 1u);
}

TEST(LogWriter, ExplicitFlushDrainsPartialBatch) {
  CapturingShipper shipper;
  ManualClock clock;
  LogWriter writer(LogMode::kMirror, nullptr, &shipper);
  LogWriter::BatchOptions opts;
  opts.max_txns = 100;
  writer.configure_batching(&clock, opts);

  writer.submit(1, txn_records(1, 1), {});
  writer.submit(2, txn_records(2, 2), {});
  EXPECT_EQ(writer.batched_txns(), 2u);
  writer.flush_batch();
  EXPECT_EQ(shipper.shipped.size(), 4u);
  EXPECT_EQ(writer.counters().batch_fill_forced, 1u);
  writer.flush_batch();  // empty buffer: no-op
  EXPECT_EQ(writer.counters().batches_shipped, 1u);
}

TEST(LogWriter, MirrorLostReroutesBufferedBatchToDisk) {
  // Buffered-but-unshipped txns are registered in pending_, so the mirror
  // loss path must complete them via disk without ever shipping the batch.
  CapturingShipper shipper;
  MemoryLogStorage disk;
  ManualClock clock;
  LogWriter writer(LogMode::kMirror, &disk, &shipper);
  LogWriter::BatchOptions opts;
  opts.max_txns = 100;
  writer.configure_batching(&clock, opts);

  int durable = 0;
  writer.submit(1, txn_records(1, 1), [&] { ++durable; });
  writer.submit(2, txn_records(2, 2), [&] { ++durable; });
  EXPECT_TRUE(shipper.shipped.empty());

  writer.on_mirror_lost();
  EXPECT_EQ(durable, 2);
  EXPECT_TRUE(shipper.shipped.empty());
  EXPECT_EQ(writer.batched_txns(), 0u);
  EXPECT_EQ(disk.records().size(), 4u);
  EXPECT_EQ(writer.counters().rerouted, 2u);
}

TEST(LogWriter, AdaptiveDelayTracksLoad) {
  CapturingShipper shipper;
  ManualClock clock;
  LogWriter writer(LogMode::kMirror, nullptr, &shipper);
  LogWriter::BatchOptions opts;
  opts.max_txns = 4;
  opts.max_delay = Duration::millis(8);
  opts.adaptive_delay = true;
  writer.configure_batching(&clock, opts);
  EXPECT_EQ(writer.current_flush_delay().us, 8000);

  // A delay-filled batch under half full halves the window.
  writer.submit(1, txn_records(1, 1), {});
  clock.advance(Duration::millis(8));
  writer.flush_batch();
  EXPECT_EQ(writer.counters().batch_fill_delay, 1u);
  EXPECT_EQ(writer.current_flush_delay().us, 4000);

  // A threshold-filled batch doubles it back toward max_delay.
  for (ValidationTs seq = 2; seq <= 5; ++seq) {
    writer.submit(seq, txn_records(seq, seq), {});
  }
  EXPECT_EQ(writer.counters().batch_fill_txns, 1u);
  EXPECT_EQ(writer.current_flush_delay().us, 8000);
}

}  // namespace
}  // namespace rodain::log
