#include "rodain/log/writer.hpp"

#include <gtest/gtest.h>

namespace rodain::log {
namespace {

storage::Value val(std::string_view s) { return storage::Value{s}; }

std::vector<Record> txn_records(TxnId txn, ValidationTs seq) {
  std::vector<Record> records;
  records.push_back(Record::write_image(txn, 100 + txn, val("v")));
  records.push_back(Record::commit(txn, seq, seq * 1000, 1));
  return records;
}

struct CapturingShipper final : Shipper {
  std::vector<Record> shipped;
  void ship(std::span<const Record> records) override {
    shipped.insert(shipped.end(), records.begin(), records.end());
  }
};

TEST(LogWriter, OffModeAcksImmediately) {
  LogWriter writer(LogMode::kOff, nullptr, nullptr);
  bool durable = false;
  writer.submit(1, txn_records(1, 1), [&] { durable = true; });
  EXPECT_TRUE(durable);
  EXPECT_EQ(writer.counters().via_none, 1u);
}

TEST(LogWriter, DirectDiskWaitsForFlush) {
  MemoryLogStorage disk;
  LogWriter writer(LogMode::kDirectDisk, &disk, nullptr);
  bool durable = false;
  writer.submit(1, txn_records(1, 1), [&] { durable = true; });
  EXPECT_TRUE(durable);  // memory flush completes inline
  EXPECT_EQ(disk.records().size(), 2u);
  EXPECT_EQ(writer.counters().via_disk, 1u);
}

TEST(LogWriter, MirrorModeWaitsForAck) {
  CapturingShipper shipper;
  LogWriter writer(LogMode::kMirror, nullptr, &shipper);
  bool durable = false;
  writer.submit(5, txn_records(9, 5), [&] { durable = true; });
  EXPECT_FALSE(durable);
  EXPECT_EQ(shipper.shipped.size(), 2u);
  EXPECT_EQ(writer.pending_acks(), 1u);

  writer.on_mirror_ack(5);
  EXPECT_TRUE(durable);
  EXPECT_EQ(writer.pending_acks(), 0u);
}

TEST(LogWriter, DuplicateAndUnknownAcksIgnored) {
  CapturingShipper shipper;
  LogWriter writer(LogMode::kMirror, nullptr, &shipper);
  int acks = 0;
  writer.submit(5, txn_records(9, 5), [&] { ++acks; });
  writer.on_mirror_ack(4);  // unknown
  writer.on_mirror_ack(5);
  writer.on_mirror_ack(5);  // duplicate
  EXPECT_EQ(acks, 1);
}

TEST(LogWriter, MirrorLostReroutesPendingToDisk) {
  CapturingShipper shipper;
  MemoryLogStorage disk;
  LogWriter writer(LogMode::kMirror, &disk, &shipper);
  int durable = 0;
  writer.submit(1, txn_records(1, 1), [&] { ++durable; });
  writer.submit(2, txn_records(2, 2), [&] { ++durable; });
  EXPECT_EQ(durable, 0);

  writer.on_mirror_lost();
  // Both pending transactions completed through the local disk instead.
  EXPECT_EQ(durable, 2);
  EXPECT_EQ(writer.mode(), LogMode::kDirectDisk);
  EXPECT_EQ(disk.records().size(), 4u);
  EXPECT_EQ(writer.counters().rerouted, 2u);
  // Late ack from the dead mirror: harmless.
  writer.on_mirror_ack(1);
  EXPECT_EQ(durable, 2);
}

TEST(LogWriter, ModeSwitchAffectsNewSubmissions) {
  CapturingShipper shipper;
  MemoryLogStorage disk;
  LogWriter writer(LogMode::kDirectDisk, &disk, &shipper);
  writer.submit(1, txn_records(1, 1), {});
  EXPECT_EQ(disk.records().size(), 2u);
  writer.set_mode(LogMode::kMirror);
  writer.submit(2, txn_records(2, 2), {});
  EXPECT_EQ(shipper.shipped.size(), 2u);
  EXPECT_EQ(disk.records().size(), 2u);  // unchanged
}

TEST(LogWriter, TailSinceServesCatchUp) {
  LogWriter writer(LogMode::kOff, nullptr, nullptr);
  for (ValidationTs seq = 1; seq <= 10; ++seq) {
    writer.submit(seq, txn_records(seq, seq), {});
  }
  auto tail = writer.tail_since(7);
  // Transactions 8, 9, 10: two records each.
  ASSERT_EQ(tail.size(), 6u);
  EXPECT_EQ(tail[1].seq, 8u);
  EXPECT_EQ(tail[5].seq, 10u);
  EXPECT_TRUE(writer.tail_since(10).empty());
  // Everything retained from seq 0.
  EXPECT_EQ(writer.tail_since(0).size(), 20u);
}

TEST(LogWriter, TailRetentionIsBounded) {
  LogWriter writer(LogMode::kOff, nullptr, nullptr);
  const ValidationTs total = LogWriter::kTailRetention + 100;
  for (ValidationTs seq = 1; seq <= total; ++seq) {
    writer.submit(seq, txn_records(seq, seq), {});
  }
  auto all = writer.tail_since(0);
  EXPECT_EQ(all.size(), LogWriter::kTailRetention * 2);
  ASSERT_TRUE(all[1].is_commit());
  EXPECT_EQ(all[1].seq, 101u);  // oldest 100 evicted
}

}  // namespace
}  // namespace rodain::log
