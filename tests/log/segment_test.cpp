#include "rodain/log/segment.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <unistd.h>

#include "rodain/storage/value.hpp"

namespace rodain::log {
namespace {

class SegmentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("rodain_seg_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string dir() const { return dir_.string(); }

  std::filesystem::path dir_;
};

storage::Value payload() {
  return storage::Value{std::string_view{"payload-bytes-0123456789abcdef", 30}};
}

/// Append committed txns [from, to] (one write + one commit each), flushing
/// after every transaction so rotation points are exercised.
void append_txns(SegmentedLogStorage& log, ValidationTs from, ValidationTs to) {
  for (ValidationTs seq = from; seq <= to; ++seq) {
    log.append(Record::write_image(seq, 1 + seq % 7, payload()));
    log.append(Record::commit(seq, seq, seq * 1000, 1));
    Status status = Status::ok();
    log.flush([&](Status s) { status = s; });
    ASSERT_TRUE(status) << status.to_string();
  }
}

TEST_F(SegmentTest, RotatesAtThresholdAndKeepsEveryRecord) {
  SegmentedLogStorage::Options opt;
  opt.segment_bytes = 512;  // a handful of txns per segment
  auto log = SegmentedLogStorage::open(dir(), opt);
  ASSERT_TRUE(log.is_ok()) << log.status().to_string();
  append_txns(*log.value(), 1, 40);
  EXPECT_GT(log.value()->segment_count(), 3u);
  EXPECT_EQ(log.value()->appended(), 80u);
  EXPECT_EQ(log.value()->durable(), 80u);

  auto segments = SegmentedLogStorage::list_segments(dir());
  ASSERT_TRUE(segments.is_ok());
  // Sealed seq ranges tile the history without gaps or overlap.
  ValidationTs expect_next = 1;
  for (const auto& seg : segments.value()) {
    if (seg.last_seq == 0) continue;  // active
    EXPECT_GE(seg.first_seq, expect_next) << seg.path;
    EXPECT_GE(seg.last_seq, seg.first_seq) << seg.path;
    expect_next = seg.last_seq + 1;
  }

  bool torn = true;
  auto records = SegmentedLogStorage::read_all(dir(), &torn);
  ASSERT_TRUE(records.is_ok());
  EXPECT_FALSE(torn);
  ASSERT_EQ(records.value().size(), 80u);
  ValidationTs next_commit = 1;
  for (const Record& r : records.value()) {
    if (r.is_commit()) {
      EXPECT_EQ(r.seq, next_commit++);
    }
  }
  EXPECT_EQ(next_commit, 41u);
}

TEST_F(SegmentTest, TruncateDeletesOnlyCoveredSegments) {
  SegmentedLogStorage::Options opt;
  opt.segment_bytes = 512;
  auto log = SegmentedLogStorage::open(dir(), opt);
  ASSERT_TRUE(log.is_ok());
  append_txns(*log.value(), 1, 40);
  const std::size_t before = log.value()->segment_count();
  const std::uint64_t bytes_before = log.value()->disk_bytes();
  ASSERT_GT(before, 3u);

  const std::uint64_t removed = log.value()->truncate_upto(20);
  EXPECT_GT(removed, 0u);
  EXPECT_EQ(log.value()->segment_count(), before - removed);
  EXPECT_LT(log.value()->disk_bytes(), bytes_before);

  // Survivors: no sealed segment fully at or below the boundary remains,
  // and every commit past the boundary is still replayable.
  auto segments = SegmentedLogStorage::list_segments(dir());
  ASSERT_TRUE(segments.is_ok());
  for (const auto& seg : segments.value()) {
    if (seg.last_seq != 0) {
      EXPECT_GT(seg.last_seq, 20u) << seg.path;
    }
  }
  auto records = SegmentedLogStorage::read_all(dir());
  ASSERT_TRUE(records.is_ok());
  ValidationTs max_surviving_commit = 0;
  std::uint64_t commits_past = 0;
  for (const Record& r : records.value()) {
    if (!r.is_commit()) continue;
    max_surviving_commit = std::max(max_surviving_commit, r.seq);
    commits_past += r.seq > 20;
  }
  EXPECT_EQ(max_surviving_commit, 40u);
  EXPECT_EQ(commits_past, 20u);
}

TEST_F(SegmentTest, ReopenContinuesWhereTheLogLeftOff) {
  SegmentedLogStorage::Options opt;
  opt.segment_bytes = 512;
  {
    auto log = SegmentedLogStorage::open(dir(), opt);
    ASSERT_TRUE(log.is_ok());
    append_txns(*log.value(), 1, 10);
  }
  {
    auto log = SegmentedLogStorage::open(dir(), opt);
    ASSERT_TRUE(log.is_ok());
    append_txns(*log.value(), 11, 20);
  }
  auto records = SegmentedLogStorage::read_all(dir());
  ASSERT_TRUE(records.is_ok());
  std::uint64_t commits = 0;
  for (const Record& r : records.value()) commits += r.is_commit();
  EXPECT_EQ(commits, 20u);
}

TEST_F(SegmentTest, TornTailIsTrimmedAtOpenSoAppendsStayClean) {
  SegmentedLogStorage::Options opt;
  opt.segment_bytes = 1 << 20;  // keep everything in one unsealed segment
  {
    auto log = SegmentedLogStorage::open(dir(), opt);
    ASSERT_TRUE(log.is_ok());
    append_txns(*log.value(), 1, 5);
  }
  // Crash model: half a record made it to the device.
  std::string newest;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    newest = entry.path().string();
  }
  ASSERT_FALSE(newest.empty());
  {
    std::FILE* f = std::fopen(newest.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char garbage[] = "\x40\x00\x00\x00partial-record";
    std::fwrite(garbage, 1, sizeof garbage, f);
    std::fclose(f);
  }
  {
    auto log = SegmentedLogStorage::open(dir(), opt);
    ASSERT_TRUE(log.is_ok()) << log.status().to_string();
    append_txns(*log.value(), 6, 8);
  }
  bool torn = true;
  auto records = SegmentedLogStorage::read_all(dir(), &torn);
  ASSERT_TRUE(records.is_ok()) << records.status().to_string();
  EXPECT_FALSE(torn);  // the trim removed the tail for good
  std::uint64_t commits = 0;
  for (const Record& r : records.value()) commits += r.is_commit();
  EXPECT_EQ(commits, 8u);
}

TEST_F(SegmentTest, CrashBetweenSealAndCreateSealsTheOrphanAtOpen) {
  SegmentedLogStorage::Options opt;
  opt.segment_bytes = 1 << 20;
  {
    auto log = SegmentedLogStorage::open(dir(), opt);
    ASSERT_TRUE(log.is_ok());
    append_txns(*log.value(), 1, 3);
  }
  // A second unsealed segment newer than the first: the mid-rotation crash
  // left both with last_seq == 0 in their headers.
  {
    auto log = SegmentedLogStorage::open((dir_ / "staging").string(), opt);
    ASSERT_TRUE(log.is_ok());
    append_txns(*log.value(), 4, 6);
  }
  std::filesystem::rename(dir_ / "staging" / "log.1.seg", dir_ / "log.4.seg");
  std::filesystem::remove_all(dir_ / "staging");

  auto log = SegmentedLogStorage::open(dir(), opt);
  ASSERT_TRUE(log.is_ok()) << log.status().to_string();
  auto segments = SegmentedLogStorage::list_segments(dir());
  ASSERT_TRUE(segments.is_ok());
  ASSERT_EQ(segments.value().size(), 2u);
  // The older orphan was sealed in place with its observed extent; the
  // newest stays unsealed (it is the active segment again).
  EXPECT_EQ(segments.value()[0].last_seq, 3u);
  EXPECT_EQ(segments.value()[1].last_seq, 0u);

  auto records = SegmentedLogStorage::read_all(dir());
  ASSERT_TRUE(records.is_ok());
  std::uint64_t commits = 0;
  for (const Record& r : records.value()) commits += r.is_commit();
  EXPECT_EQ(commits, 6u);
}

TEST_F(SegmentTest, FailedFlushKeepsBytesAndSucceedsOnRetry) {
  auto log = SegmentedLogStorage::open(dir());
  ASSERT_TRUE(log.is_ok());
  log.value()->append(Record::write_image(1, 10, payload()));
  log.value()->append(Record::commit(1, 1, 1000, 1));
  log.value()->inject_write_error(1);

  Status status = Status::ok();
  log.value()->flush([&](Status s) { status = s; });
  EXPECT_FALSE(status);
  EXPECT_EQ(log.value()->durable(), 0u) << "failed flush must not credit";

  log.value()->flush([&](Status s) { status = s; });
  ASSERT_TRUE(status) << status.to_string();
  EXPECT_EQ(log.value()->durable(), 2u);

  // The retry wrote each byte exactly once: the log decodes cleanly with
  // a single commit.
  auto records = SegmentedLogStorage::read_all(dir());
  ASSERT_TRUE(records.is_ok()) << records.status().to_string();
  ASSERT_EQ(records.value().size(), 2u);
  EXPECT_TRUE(records.value()[1].is_commit());
}

TEST_F(SegmentTest, SealActiveSealsOnDemand) {
  auto log = SegmentedLogStorage::open(dir());
  ASSERT_TRUE(log.is_ok());
  append_txns(*log.value(), 1, 3);
  ASSERT_TRUE(log.value()->seal_active());
  auto segments = SegmentedLogStorage::list_segments(dir());
  ASSERT_TRUE(segments.is_ok());
  ASSERT_EQ(segments.value().size(), 1u);
  EXPECT_EQ(segments.value()[0].first_seq, 1u);
  EXPECT_EQ(segments.value()[0].last_seq, 3u);
  // Everything sealed and covered: a checkpoint at 3 empties the directory.
  EXPECT_EQ(log.value()->truncate_upto(3), 1u);
  EXPECT_EQ(log.value()->segment_count(), 0u);
}

TEST_F(SegmentTest, SealedSegmentWithTornTailIsCorruption) {
  SegmentedLogStorage::Options opt;
  opt.segment_bytes = 1 << 20;
  {
    auto log = SegmentedLogStorage::open(dir(), opt);
    ASSERT_TRUE(log.is_ok());
    append_txns(*log.value(), 1, 3);
    ASSERT_TRUE(log.value()->seal_active());
  }
  // Bit rot after sealing: a sealed segment must decode cleanly, so a torn
  // tail there is corruption, not a tolerated crash artifact.
  {
    std::FILE* f = std::fopen((dir_ / "log.1.seg").string().c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char garbage[] = "\x40\x00\x00\x00torn";
    std::fwrite(garbage, 1, sizeof garbage, f);
    std::fclose(f);
  }
  auto records = SegmentedLogStorage::read_all(dir());
  ASSERT_FALSE(records.is_ok());
  EXPECT_EQ(records.status().code(), ErrorCode::kCorruption);
}

}  // namespace
}  // namespace rodain::log
