// Per-worker redo buffers + epoch sealer (DESIGN.md §13): the seal must
// dispatch exactly the dense seq prefix, in order, no matter how appends
// interleave across threads.
#include "rodain/log/worker_buffer.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace rodain::log {
namespace {

WorkerRedoEntry entry(ValidationTs seq,
                      std::vector<ValidationTs>* order = nullptr) {
  WorkerRedoEntry e;
  e.seq = seq;
  e.records.push_back(Record::commit(seq, seq, seq * 1000, 0));
  if (order) e.on_durable = [seq, order] { order->push_back(seq); };
  return e;
}

TEST(EpochSealer, SealsDensePrefixInSeqOrder) {
  EpochSealer sealer;
  sealer.reset(1);
  std::vector<ValidationTs> dispatched;
  const EpochSealer::Dispatch fire = [&](WorkerRedoEntry&& e) {
    dispatched.push_back(e.seq);
  };

  // Out-of-order appends: 3 arrives before 1-2 exist.
  sealer.append(entry(3));
  EXPECT_EQ(sealer.seal(fire), 0u);  // hole at 1: nothing seals
  EXPECT_EQ(sealer.parked(), 1u);

  sealer.append(entry(1));
  sealer.append(entry(2));
  EXPECT_EQ(sealer.seal(fire), 3u);  // dense through 3
  EXPECT_EQ(sealer.parked(), 0u);
  EXPECT_EQ(dispatched, (std::vector<ValidationTs>{1, 2, 3}));
  EXPECT_EQ(sealer.next_seq(), 4u);
  EXPECT_EQ(sealer.epochs(), 1u);

  // An empty seal is not an epoch.
  EXPECT_EQ(sealer.seal(fire), 0u);
  EXPECT_EQ(sealer.epochs(), 1u);
}

TEST(EpochSealer, ResetRestartsTheSequenceAndDropsParked) {
  EpochSealer sealer;
  sealer.reset(5);
  std::vector<ValidationTs> dispatched;
  const EpochSealer::Dispatch fire = [&](WorkerRedoEntry&& e) {
    dispatched.push_back(e.seq);
  };
  sealer.append(entry(7));
  EXPECT_EQ(sealer.seal(fire), 0u);  // parked above the floor
  sealer.reset(7);                   // takeover continues past 6
  sealer.append(entry(7));
  EXPECT_EQ(sealer.seal(fire), 1u);
  EXPECT_EQ(dispatched, (std::vector<ValidationTs>{7}));
}

TEST(WorkerBufferSet, DrainCollectsEveryStripe) {
  WorkerBufferSet buffers(4);
  EXPECT_FALSE(buffers.maybe_nonempty());
  for (ValidationTs s = 1; s <= 8; ++s) buffers.append(entry(s));
  EXPECT_TRUE(buffers.maybe_nonempty());
  std::vector<WorkerRedoEntry> out;
  EXPECT_EQ(buffers.drain(out), 8u);
  EXPECT_EQ(out.size(), 8u);
  EXPECT_FALSE(buffers.maybe_nonempty());
  EXPECT_EQ(buffers.drain(out), 0u);
}

TEST(EpochSealer, ConcurrentAppendersNeverTearTheSealOrder) {
  // N threads append disjoint seq ranges while a sealer thread drains; the
  // dispatch order must be exactly 1..kTotal regardless of interleaving.
  constexpr int kThreads = 4;
  constexpr ValidationTs kTotal = 400;
  EpochSealer sealer;
  sealer.reset(1);
  std::atomic<ValidationTs> next{1};
  std::vector<std::thread> appenders;
  appenders.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    appenders.emplace_back([&] {
      for (;;) {
        const ValidationTs seq =
            next.fetch_add(1, std::memory_order_relaxed);
        if (seq > kTotal) return;
        sealer.append(entry(seq));
      }
    });
  }
  std::vector<ValidationTs> dispatched;
  std::mutex seal_mu;  // stands in for the driver's commit mutex
  const EpochSealer::Dispatch fire = [&](WorkerRedoEntry&& e) {
    dispatched.push_back(e.seq);
  };
  while (dispatched.size() < kTotal) {
    std::lock_guard lock(seal_mu);
    sealer.seal(fire);
  }
  for (std::thread& t : appenders) t.join();
  ASSERT_EQ(dispatched.size(), kTotal);
  for (ValidationTs s = 1; s <= kTotal; ++s) {
    EXPECT_EQ(dispatched[s - 1], s);
  }
}

}  // namespace
}  // namespace rodain::log
