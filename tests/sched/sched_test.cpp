#include <gtest/gtest.h>

#include "rodain/sched/overload.hpp"
#include "rodain/sched/reservation.hpp"

namespace rodain::sched {
namespace {

using namespace rodain::literals;

TEST(OverloadManager, AdmitsUpToCap) {
  OverloadConfig config;
  config.max_active = 3;
  config.miss_feedback = false;
  OverloadManager om(config);
  const TimePoint now{};
  EXPECT_TRUE(om.try_admit(now));
  EXPECT_TRUE(om.try_admit(now));
  EXPECT_TRUE(om.try_admit(now));
  EXPECT_FALSE(om.try_admit(now));
  EXPECT_EQ(om.active(), 3u);
}

TEST(OverloadManager, FinishFreesSlots) {
  OverloadConfig config;
  config.max_active = 1;
  OverloadManager om(config);
  ASSERT_TRUE(om.try_admit({}));
  EXPECT_FALSE(om.try_admit({}));
  om.on_finish();
  EXPECT_TRUE(om.try_admit({}));
}

TEST(OverloadManager, FinishNeverUnderflows) {
  OverloadManager om({});
  om.on_finish();
  EXPECT_EQ(om.active(), 0u);
}

TEST(OverloadManager, FeedbackShrinksCapUnderMisses) {
  OverloadConfig config;
  config.max_active = 50;
  config.miss_feedback = true;
  config.miss_threshold = 10;
  config.min_cap = 8;
  config.observation_window = 1_s;
  OverloadManager om(config);
  const TimePoint now{1'000'000};
  EXPECT_EQ(om.effective_cap(now), 50u);
  for (int i = 0; i < 10; ++i) om.on_deadline_miss(now);
  EXPECT_EQ(om.effective_cap(now), 50u);  // at the threshold, not beyond
  for (int i = 0; i < 20; ++i) om.on_deadline_miss(now);
  EXPECT_EQ(om.effective_cap(now), 30u);  // 50 - (30-10)
  for (int i = 0; i < 100; ++i) om.on_deadline_miss(now);
  EXPECT_EQ(om.effective_cap(now), 8u);  // floor
}

TEST(OverloadManager, WindowExpiryRestoresCap) {
  OverloadConfig config;
  config.max_active = 50;
  config.miss_threshold = 5;
  config.observation_window = 1_s;
  OverloadManager om(config);
  const TimePoint t0{1'000'000};
  for (int i = 0; i < 30; ++i) om.on_deadline_miss(t0);
  EXPECT_LT(om.effective_cap(t0), 50u);
  // 1.5 s later the misses have aged out.
  const TimePoint t1 = t0 + 1500_ms;
  EXPECT_EQ(om.effective_cap(t1), 50u);
  EXPECT_EQ(om.recent_misses(t1), 0u);
}

TEST(OverloadManager, FeedbackOffIgnoresMisses) {
  OverloadConfig config;
  config.max_active = 50;
  config.miss_feedback = false;
  OverloadManager om(config);
  for (int i = 0; i < 1000; ++i) om.on_deadline_miss({});
  EXPECT_EQ(om.effective_cap({}), 50u);
}

TEST(NonRtReservation, BoostsWhenStarved) {
  NonRtReservation res(0.1);
  EXPECT_TRUE(res.should_boost());  // nothing served yet, demand exists
  // Real-time work consumes 90 ms, non-RT nothing: still under 10%.
  res.charge(Criticality::kFirm, 90_ms);
  EXPECT_TRUE(res.should_boost());
  // Non-RT receives 10 ms -> exactly at its share.
  res.charge(Criticality::kNonRealTime, 10_ms);
  EXPECT_FALSE(res.should_boost());
}

TEST(NonRtReservation, TracksFractionOverTime) {
  NonRtReservation res(0.25);
  res.charge(Criticality::kFirm, 30_ms);
  res.charge(Criticality::kNonRealTime, 10_ms);
  EXPECT_EQ(res.total_served(), 40_ms);
  EXPECT_EQ(res.non_rt_served(), 10_ms);
  EXPECT_FALSE(res.should_boost());  // 25% of 40 = 10: satisfied
  res.charge(Criticality::kFirm, 1_ms);
  EXPECT_TRUE(res.should_boost());  // now just below the share
}

TEST(NonRtReservation, ZeroFractionNeverBoosts) {
  NonRtReservation res(0.0);
  EXPECT_FALSE(res.should_boost());
}

TEST(NonRtReservation, BoostKeyOutranksEveryDeadline) {
  const PriorityKey boost = NonRtReservation::boost_key(5);
  const PriorityKey urgent{Criticality::kFirm, TimePoint{1}, 1};
  EXPECT_TRUE(boost.higher_than(urgent));
}

}  // namespace
}  // namespace rodain::sched
