#include "rodain/common/clock.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace rodain {
namespace {

using namespace rodain::literals;

TEST(ManualClock, StartsAtOriginAndAdvances) {
  ManualClock clock;
  EXPECT_EQ(clock.now(), TimePoint::origin());
  clock.advance(5_ms);
  EXPECT_EQ(clock.now(), TimePoint{5000});
  clock.set(TimePoint{123});
  EXPECT_EQ(clock.now(), TimePoint{123});
}

TEST(RealClock, IsMonotonicAndStartsNearZero) {
  RealClock clock;
  const TimePoint t0 = clock.now();
  EXPECT_GE(t0.us, 0);
  EXPECT_LT(t0.us, 1'000'000);  // origin at construction
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const TimePoint t1 = clock.now();
  EXPECT_GT(t1, t0);
  EXPECT_GE((t1 - t0).to_ms(), 1.0);
}

TEST(RealClock, IndependentOrigins) {
  RealClock a;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  RealClock b;
  // b started later, so reads less elapsed time.
  EXPECT_GT(a.now(), b.now());
}

}  // namespace
}  // namespace rodain
