#include "rodain/common/stats.hpp"

#include <gtest/gtest.h>

#include "rodain/common/rng.hpp"

namespace rodain {
namespace {

using namespace rodain::literals;

TEST(OnlineStats, Empty) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, MeanVarMinMax) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-9);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  Rng rng(42);
  OnlineStats whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    double x = rng.next_double() * 100;
    whole.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-6);
  EXPECT_EQ(a.min(), whole.min());
  EXPECT_EQ(a.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(3);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

TEST(LatencyHistogram, Empty) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), Duration::zero());
}

TEST(LatencyHistogram, SingleValue) {
  LatencyHistogram h;
  h.add(10_ms);
  EXPECT_EQ(h.count(), 1u);
  // 4% bucket resolution
  EXPECT_NEAR(h.quantile(0.5).to_ms(), 10.0, 0.7);
  EXPECT_EQ(h.max_value(), 10_ms);
}

TEST(LatencyHistogram, QuantilesOrdered) {
  LatencyHistogram h;
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    h.add(Duration::micros(static_cast<std::int64_t>(rng.next_below(100000)) + 1));
  }
  EXPECT_LE(h.quantile(0.1), h.quantile(0.5));
  EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
  EXPECT_LE(h.quantile(0.9), h.quantile(0.99));
  EXPECT_LE(h.quantile(0.99), h.max_value());
}

TEST(LatencyHistogram, UniformMedianApprox) {
  LatencyHistogram h;
  for (int i = 1; i <= 9999; ++i) h.add(Duration::micros(i));
  EXPECT_NEAR(h.quantile(0.5).to_ms(), 5.0, 0.4);
  EXPECT_NEAR(h.mean().to_ms(), 5.0, 0.01);
}

TEST(LatencyHistogram, MergeAddsCounts) {
  LatencyHistogram a, b;
  a.add(1_ms);
  b.add(100_ms);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.max_value(), 100_ms);
}

TEST(LatencyHistogram, ZeroAndNegativeGoToFirstBucket) {
  LatencyHistogram h;
  h.add(Duration::zero());
  h.add(Duration::micros(-5));
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.quantile(1.0).us, 0);
}

TEST(LatencyHistogram, SummaryMentionsPercentiles) {
  LatencyHistogram h;
  h.add(1_ms);
  auto s = h.summary();
  EXPECT_NE(s.find("p50"), std::string::npos);
  EXPECT_NE(s.find("p99"), std::string::npos);
}

TEST(TxnCounters, MissRatio) {
  TxnCounters c;
  c.submitted = 100;
  c.committed = 90;
  c.missed_deadline = 4;
  c.overload_rejected = 5;
  c.conflict_aborted = 1;
  EXPECT_DOUBLE_EQ(c.miss_ratio(), 0.10);
  EXPECT_EQ(c.missed_total(), 10u);
}

TEST(TxnCounters, EmptyMissRatioIsZero) {
  TxnCounters c;
  EXPECT_DOUBLE_EQ(c.miss_ratio(), 0.0);
}

TEST(TxnCounters, Merge) {
  TxnCounters a, b;
  a.submitted = 10;
  a.committed = 9;
  a.restarts = 2;
  b.submitted = 5;
  b.committed = 4;
  b.missed_deadline = 1;
  a.merge(b);
  EXPECT_EQ(a.submitted, 15u);
  EXPECT_EQ(a.committed, 13u);
  EXPECT_EQ(a.missed_deadline, 1u);
  EXPECT_EQ(a.restarts, 2u);
}

}  // namespace
}  // namespace rodain
