// Edge cases of LatencyHistogram::quantile: empty, single sample, the q=0
// and q=1 endpoints, out-of-range q, saturation past the top bucket, and
// merge-then-quantile consistency.
#include <gtest/gtest.h>

#include "rodain/common/rng.hpp"
#include "rodain/common/stats.hpp"

namespace rodain {
namespace {

using namespace rodain::literals;

TEST(LatencyQuantile, EmptyHistogramIsZeroEverywhere) {
  LatencyHistogram h;
  EXPECT_EQ(h.quantile(0.0), Duration::zero());
  EXPECT_EQ(h.quantile(0.5), Duration::zero());
  EXPECT_EQ(h.quantile(1.0), Duration::zero());
}

TEST(LatencyQuantile, SingleSampleReportsThatSample) {
  LatencyHistogram h;
  h.add(Duration::micros(1234));
  // Buckets are ~4% wide, but all quantiles must clamp to the true max.
  EXPECT_EQ(h.quantile(1.0), Duration::micros(1234));
  EXPECT_LE(h.quantile(0.0).us, 1234);
  EXPECT_GE(h.quantile(0.0).us, 1100);  // within one bucket below
  EXPECT_EQ(h.quantile(0.5), h.quantile(0.0));
}

TEST(LatencyQuantile, EndpointsAndClamping) {
  LatencyHistogram h;
  for (int us = 100; us <= 1000; us += 100) h.add(Duration::micros(us));
  EXPECT_EQ(h.quantile(1.0), Duration::micros(1000));  // exact max
  EXPECT_LE(h.quantile(0.0).us, 100);                  // first bucket
  EXPECT_GT(h.quantile(0.0).us, 0);
  // Out-of-range q clamps to the endpoints.
  EXPECT_EQ(h.quantile(-0.5), h.quantile(0.0));
  EXPECT_EQ(h.quantile(2.0), h.quantile(1.0));
}

TEST(LatencyQuantile, MonotonicInQ) {
  LatencyHistogram h;
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    h.add(Duration::micros(1 + static_cast<std::int64_t>(rng.next_below(100000))));
  }
  Duration prev = h.quantile(0.0);
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
    const Duration cur = h.quantile(q);
    EXPECT_GE(cur.us, prev.us) << "q=" << q;
    prev = cur;
  }
  EXPECT_LE(h.quantile(1.0), h.max_value());
}

TEST(LatencyQuantile, SaturationAboveTopBucketClampsToTrueMax) {
  LatencyHistogram h;
  // ~35 years in microseconds: far beyond the 2^40us top bucket.
  const Duration huge = Duration::micros(std::int64_t{1} << 50);
  h.add(Duration::micros(10));
  h.add(huge);
  h.add(huge + Duration::micros(5));
  EXPECT_EQ(h.quantile(1.0), huge + Duration::micros(5));
  // High quantiles land in the saturated top bucket, whose lower bound
  // (2^40us) is below the samples; they must never exceed the true max.
  EXPECT_LE(h.quantile(0.9).us, (huge + Duration::micros(5)).us);
  EXPECT_LE(h.quantile(0.5).us, (huge + Duration::micros(5)).us);
}

TEST(LatencyQuantile, MergeMatchesDirectAccumulation) {
  LatencyHistogram a, b, direct;
  Rng rng(42);
  for (int i = 0; i < 500; ++i) {
    const Duration d =
        Duration::micros(1 + static_cast<std::int64_t>(rng.next_below(50000)));
    (i % 2 ? a : b).add(d);
    direct.add(d);
  }
  LatencyHistogram merged;
  merged.merge(a);
  merged.merge(b);
  EXPECT_EQ(merged.count(), direct.count());
  EXPECT_EQ(merged.max_value(), direct.max_value());
  for (double q : {0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(merged.quantile(q), direct.quantile(q)) << "q=" << q;
  }
}

TEST(LatencyQuantile, MergeWithEmptyIsIdentity) {
  LatencyHistogram h, empty;
  h.add(5_ms);
  h.add(10_ms);
  LatencyHistogram merged = h;
  merged.merge(empty);
  for (double q : {0.0, 0.5, 1.0}) {
    EXPECT_EQ(merged.quantile(q), h.quantile(q));
  }
  LatencyHistogram other = empty;
  other.merge(h);
  EXPECT_EQ(other.quantile(1.0), h.quantile(1.0));
}

}  // namespace
}  // namespace rodain
