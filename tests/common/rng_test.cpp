#include "rodain/common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace rodain {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  // bound 1 is always 0
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextInInclusive) {
  Rng rng(3);
  bool lo_seen = false;
  bool hi_seen = false;
  for (int i = 0; i < 5000; ++i) {
    auto v = rng.next_in(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    lo_seen |= (v == -2);
    hi_seen |= (v == 2);
  }
  EXPECT_TRUE(lo_seen);
  EXPECT_TRUE(hi_seen);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BoolProbability) {
  Rng rng(9);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.next_bool(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, ExponentialNonNegative) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.next_exponential(1.0), 0.0);
}

TEST(Rng, ZipfThetaZeroIsUniformish) {
  Rng rng(19);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.next_zipf(10, 0.0)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 800);
}

TEST(Rng, ZipfSkewsTowardLowRanks) {
  Rng rng(23);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) {
    auto r = rng.next_zipf(100, 0.9);
    ASSERT_LT(r, 100u);
    ++counts[r];
  }
  EXPECT_GT(counts[0], counts[50] * 5);
}

TEST(Rng, SplitIndependence) {
  Rng parent(31);
  Rng child = parent.split();
  // Child stream should not equal the parent continuation.
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (parent.next_u64() == child.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  shuffle(v, rng);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

}  // namespace
}  // namespace rodain
