#include "rodain/common/status.hpp"

#include <gtest/gtest.h>

namespace rodain {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_TRUE(static_cast<bool>(s));
  EXPECT_EQ(s.code(), ErrorCode::kOk);
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  auto s = Status::error(ErrorCode::kNotFound, "object 7");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
  EXPECT_EQ(s.message(), "object 7");
  EXPECT_EQ(s.to_string(), "not-found: object 7");
}

TEST(Status, ToStringWithoutMessage) {
  EXPECT_EQ(Status::error(ErrorCode::kCorruption).to_string(), "corruption");
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = Status::error(ErrorCode::kIoError, "disk gone");
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kIoError);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(Result, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.is_ok());
  auto p = std::move(r).value();
  EXPECT_EQ(*p, 5);
}

TEST(ErrorCode, AllNamesDistinct) {
  EXPECT_EQ(to_string(ErrorCode::kOk), "ok");
  EXPECT_EQ(to_string(ErrorCode::kAborted), "aborted");
  EXPECT_EQ(to_string(ErrorCode::kDeadlineMissed), "deadline-missed");
  EXPECT_EQ(to_string(ErrorCode::kOverload), "overload");
  EXPECT_EQ(to_string(ErrorCode::kUnavailable), "unavailable");
}

}  // namespace
}  // namespace rodain
