#include "rodain/common/time.hpp"

#include <gtest/gtest.h>

namespace rodain {
namespace {

using namespace rodain::literals;

TEST(Duration, Constructors) {
  EXPECT_EQ(Duration::millis(5).us, 5000);
  EXPECT_EQ(Duration::seconds(2).us, 2'000'000);
  EXPECT_EQ(Duration::micros(7).us, 7);
  EXPECT_EQ(Duration::millis_f(1.5).us, 1500);
  EXPECT_EQ(Duration::seconds_f(0.25).us, 250'000);
}

TEST(Duration, Literals) {
  EXPECT_EQ((5_ms).us, 5000);
  EXPECT_EQ((3_s).us, 3'000'000);
  EXPECT_EQ((42_us).us, 42);
}

TEST(Duration, Arithmetic) {
  EXPECT_EQ((5_ms + 3_ms).us, 8000);
  EXPECT_EQ((5_ms - 3_ms).us, 2000);
  EXPECT_EQ((5_ms * 3).us, 15000);
  EXPECT_EQ((6_ms / 2).us, 3000);
  Duration d = 1_ms;
  d += 2_ms;
  EXPECT_EQ(d.us, 3000);
  d -= 1_ms;
  EXPECT_EQ(d.us, 2000);
}

TEST(Duration, Comparison) {
  EXPECT_LT(3_ms, 5_ms);
  EXPECT_GT(5_ms, 3_ms);
  EXPECT_EQ(1000_us, 1_ms);
  EXPECT_TRUE((0_ms).is_zero());
  EXPECT_TRUE((1_us).is_positive());
  EXPECT_FALSE(Duration::micros(-1).is_positive());
}

TEST(Duration, Conversions) {
  EXPECT_DOUBLE_EQ((1500_us).to_ms(), 1.5);
  EXPECT_DOUBLE_EQ((2'500'000_us).to_seconds(), 2.5);
}

TEST(TimePoint, Arithmetic) {
  TimePoint t = TimePoint::origin();
  t += 5_ms;
  EXPECT_EQ(t.us, 5000);
  EXPECT_EQ((t + 1_ms).us, 6000);
  EXPECT_EQ((t - 1_ms).us, 4000);
  EXPECT_EQ((t + 1_ms) - t, 1_ms);
}

TEST(TimePoint, Ordering) {
  const TimePoint a{100};
  const TimePoint b{200};
  EXPECT_LT(a, b);
  EXPECT_EQ(a, TimePoint{100});
  EXPECT_LT(a, TimePoint::max());
}

TEST(TimeToString, Formats) {
  EXPECT_EQ(to_string(2_s), "2s");
  EXPECT_EQ(to_string(5_ms), "5ms");
  EXPECT_EQ(to_string(7_us), "7us");
}

}  // namespace
}  // namespace rodain
