#include "rodain/common/serialization.hpp"

#include <gtest/gtest.h>

#include "rodain/common/rng.hpp"

namespace rodain {
namespace {

TEST(ByteWriterReader, FixedWidthRoundTrip) {
  ByteWriter w;
  w.put_u8(0xab);
  w.put_u16(0x1234);
  w.put_u32(0xdeadbeef);
  w.put_u64(0x0123456789abcdefULL);
  w.put_i64(-42);
  w.put_f64(3.14159);

  ByteReader r(w.view());
  std::uint8_t u8;
  std::uint16_t u16;
  std::uint32_t u32;
  std::uint64_t u64;
  std::int64_t i64;
  double f64;
  ASSERT_TRUE(r.get_u8(u8));
  ASSERT_TRUE(r.get_u16(u16));
  ASSERT_TRUE(r.get_u32(u32));
  ASSERT_TRUE(r.get_u64(u64));
  ASSERT_TRUE(r.get_i64(i64));
  ASSERT_TRUE(r.get_f64(f64));
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u16, 0x1234);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  EXPECT_EQ(i64, -42);
  EXPECT_DOUBLE_EQ(f64, 3.14159);
  EXPECT_TRUE(r.at_end());
}

TEST(ByteWriterReader, LittleEndianLayout) {
  ByteWriter w;
  w.put_u32(0x01020304);
  auto v = w.view();
  EXPECT_EQ(static_cast<int>(v[0]), 0x04);
  EXPECT_EQ(static_cast<int>(v[3]), 0x01);
}

TEST(ByteWriterReader, VarintRoundTrip) {
  const std::uint64_t cases[] = {0,      1,        127,        128,
                                 16383,  16384,    0xffffffff, 1ULL << 62,
                                 ~0ULL};
  for (auto c : cases) {
    ByteWriter w;
    w.put_varint(c);
    ByteReader r(w.view());
    std::uint64_t out;
    ASSERT_TRUE(r.get_varint(out)) << c;
    EXPECT_EQ(out, c);
    EXPECT_TRUE(r.at_end());
  }
}

TEST(ByteWriterReader, VarintFuzzRoundTrip) {
  Rng rng(77);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.next_u64() >> (rng.next_below(64));
    ByteWriter w;
    w.put_varint(v);
    ByteReader r(w.view());
    std::uint64_t out;
    ASSERT_TRUE(r.get_varint(out));
    EXPECT_EQ(out, v);
  }
}

TEST(ByteWriterReader, StringRoundTrip) {
  ByteWriter w;
  w.put_string("hello");
  w.put_string("");
  w.put_string(std::string(1000, 'x'));
  ByteReader r(w.view());
  std::string a, b, c;
  ASSERT_TRUE(r.get_string(a));
  ASSERT_TRUE(r.get_string(b));
  ASSERT_TRUE(r.get_string(c));
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
  EXPECT_EQ(c, std::string(1000, 'x'));
}

TEST(ByteWriterReader, TruncationFailsCleanly) {
  ByteWriter w;
  w.put_u64(42);
  auto full = w.view();
  for (std::size_t cut = 0; cut < 8; ++cut) {
    ByteReader r(full.subspan(0, cut));
    std::uint64_t out;
    EXPECT_FALSE(r.get_u64(out)) << cut;
  }
}

TEST(ByteWriterReader, TruncatedStringFails) {
  ByteWriter w;
  w.put_string("hello world");
  auto full = w.view();
  ByteReader r(full.subspan(0, 4));
  std::string out;
  auto s = r.get_string(out);
  EXPECT_FALSE(s);
  EXPECT_EQ(s.code(), ErrorCode::kCorruption);
}

TEST(ByteWriterReader, VarintOverflowRejected) {
  // 10 bytes of 0xff can encode > 64 bits; must be rejected, not wrapped.
  std::vector<std::byte> evil(10, std::byte{0xff});
  ByteReader r(evil);
  std::uint64_t out;
  EXPECT_FALSE(r.get_varint(out));
}

TEST(ByteWriterReader, PatchU32) {
  ByteWriter w;
  w.put_u32(0);  // placeholder
  w.put_string("payload");
  w.patch_u32(0, static_cast<std::uint32_t>(w.size()));
  ByteReader r(w.view());
  std::uint32_t len;
  ASSERT_TRUE(r.get_u32(len));
  EXPECT_EQ(len, w.size());
}

TEST(ByteWriterReader, RawBorrow) {
  ByteWriter w;
  w.put_raw(std::as_bytes(std::span{"abcd", 4}));
  ByteReader r(w.view());
  std::span<const std::byte> raw;
  ASSERT_TRUE(r.get_raw(4, raw));
  EXPECT_EQ(raw.size(), 4u);
  EXPECT_FALSE(r.get_raw(1, raw));
}

TEST(Crc32c, KnownVector) {
  // "123456789" -> 0xE3069283 (CRC-32C check value)
  const char* s = "123456789";
  auto crc = crc32c(std::as_bytes(std::span{s, 9}));
  EXPECT_EQ(crc, 0xE3069283u);
}

TEST(Crc32c, DetectsBitFlip) {
  std::vector<std::byte> data(64);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::byte>(i);
  const auto good = crc32c(data);
  data[17] ^= std::byte{0x01};
  EXPECT_NE(crc32c(data), good);
}

TEST(Crc32c, EmptyIsStable) {
  EXPECT_EQ(crc32c({}), crc32c({}));
}

}  // namespace
}  // namespace rodain
