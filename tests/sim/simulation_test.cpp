#include "rodain/sim/simulation.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rodain::sim {
namespace {

using namespace rodain::literals;

TEST(Simulation, StartsAtOrigin) {
  Simulation sim;
  EXPECT_EQ(sim.now(), TimePoint::origin());
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulation, EventsFireInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(TimePoint{300}, [&] { order.push_back(3); });
  sim.schedule_at(TimePoint{100}, [&] { order.push_back(1); });
  sim.schedule_at(TimePoint{200}, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), TimePoint{300});
}

TEST(Simulation, EqualTimesFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(TimePoint{50}, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulation, ScheduleAfterUsesNow) {
  Simulation sim;
  TimePoint fired{};
  sim.schedule_after(5_ms, [&] {
    sim.schedule_after(3_ms, [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, TimePoint{8000});
}

TEST(Simulation, CancelPreventsFiring) {
  Simulation sim;
  bool fired = false;
  auto id = sim.schedule_after(1_ms, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // double cancel
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulation, CancelFromInsideHandler) {
  Simulation sim;
  bool fired = false;
  EventId victim = sim.schedule_after(2_ms, [&] { fired = true; });
  sim.schedule_after(1_ms, [&] { EXPECT_TRUE(sim.cancel(victim)); });
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulation, RunUntilStopsBeforeLaterEvents) {
  Simulation sim;
  int count = 0;
  sim.schedule_after(1_ms, [&] { ++count; });
  sim.schedule_after(10_ms, [&] { ++count; });
  sim.run_until(TimePoint{5000});
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.now(), TimePoint{5000});
  sim.run();
  EXPECT_EQ(count, 2);
}

TEST(Simulation, RunUntilAdvancesTimeWhenIdle) {
  Simulation sim;
  sim.run_until(TimePoint{123456});
  EXPECT_EQ(sim.now(), TimePoint{123456});
}

TEST(Simulation, HandlersCanScheduleMore) {
  Simulation sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) sim.schedule_after(1_us, chain);
  };
  sim.schedule_after(1_us, chain);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), TimePoint{100});
  EXPECT_EQ(sim.fired_events(), 100u);
}

TEST(Simulation, StepReturnsFalseWhenEmpty) {
  Simulation sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_after(1_us, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulation, ManyEventsStress) {
  Simulation sim;
  std::uint64_t sum = 0;
  for (int i = 1; i <= 10000; ++i) {
    sim.schedule_at(TimePoint{i % 97}, [&sum, i] { sum += static_cast<std::uint64_t>(i); });
  }
  sim.run();
  EXPECT_EQ(sum, 10000ull * 10001 / 2);
}

}  // namespace
}  // namespace rodain::sim
