#include "rodain/sim/cpu.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rodain::sim {
namespace {

using namespace rodain::literals;

PriorityKey firm(std::int64_t deadline_us, std::uint64_t seq = 0) {
  return PriorityKey{Criticality::kFirm, TimePoint{deadline_us}, seq};
}

TEST(SimCpu, SingleJobCompletesAfterCost) {
  Simulation sim;
  SimCpu cpu(sim);
  TimePoint done{};
  cpu.submit(firm(100000), 5_ms, [&] { done = sim.now(); });
  sim.run();
  EXPECT_EQ(done, TimePoint{5000});
  EXPECT_EQ(cpu.busy_time(), 5_ms);
}

TEST(SimCpu, JobsRunSequentially) {
  Simulation sim;
  SimCpu cpu(sim);
  std::vector<std::pair<int, TimePoint>> done;
  cpu.submit(firm(1000, 1), 2_ms, [&] { done.emplace_back(1, sim.now()); });
  cpu.submit(firm(2000, 2), 3_ms, [&] { done.emplace_back(2, sim.now()); });
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], std::make_pair(1, TimePoint{2000}));
  EXPECT_EQ(done[1], std::make_pair(2, TimePoint{5000}));
}

TEST(SimCpu, EarlierDeadlineRunsFirstFromQueue) {
  Simulation sim;
  SimCpu cpu(sim);
  std::vector<int> order;
  // Occupy the CPU so both contenders queue.
  cpu.submit(firm(1, 0), 1_ms, [&] { order.push_back(0); });
  cpu.submit(firm(9000, 1), 1_ms, [&] { order.push_back(1); });
  cpu.submit(firm(5000, 2), 1_ms, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
}

TEST(SimCpu, PreemptionChargesOnlyConsumedCpu) {
  Simulation sim;
  SimCpu cpu(sim);
  TimePoint low_done{}, high_done{};
  cpu.submit(firm(100000, 1), 10_ms, [&] { low_done = sim.now(); });
  sim.schedule_after(4_ms, [&] {
    cpu.submit(firm(5000, 2), 2_ms, [&] { high_done = sim.now(); });
  });
  sim.run();
  // High preempts at t=4ms, runs 2ms, low resumes with 6ms left.
  EXPECT_EQ(high_done, TimePoint{6000});
  EXPECT_EQ(low_done, TimePoint{12000});
}

TEST(SimCpu, HigherCriticalityPreemptsEvenWithLaterDeadline) {
  Simulation sim;
  SimCpu cpu(sim);
  std::vector<int> order;
  cpu.submit(PriorityKey{Criticality::kSoft, TimePoint{1000}, 1}, 5_ms,
             [&] { order.push_back(1); });
  sim.schedule_after(1_ms, [&] {
    cpu.submit(PriorityKey{Criticality::kFirm, TimePoint{999000}, 2}, 1_ms,
               [&] { order.push_back(2); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(SimCpu, CancelQueuedJob) {
  Simulation sim;
  SimCpu cpu(sim);
  bool ran = false;
  cpu.submit(firm(1, 0), 5_ms, [] {});
  auto id = cpu.submit(firm(2, 1), 1_ms, [&] { ran = true; });
  EXPECT_TRUE(cpu.cancel(id));
  EXPECT_FALSE(cpu.cancel(id));
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(SimCpu, CancelRunningJobFreesCpu) {
  Simulation sim;
  SimCpu cpu(sim);
  bool first_ran = false;
  TimePoint second_done{};
  auto id = cpu.submit(firm(1, 0), 10_ms, [&] { first_ran = true; });
  cpu.submit(firm(2, 1), 1_ms, [&] { second_done = sim.now(); });
  sim.schedule_after(3_ms, [&] { EXPECT_TRUE(cpu.cancel(id)); });
  sim.run();
  EXPECT_FALSE(first_ran);
  // Second starts when the first is cancelled at t=3ms.
  EXPECT_EQ(second_done, TimePoint{4000});
  // Busy time: 3ms consumed by the cancelled job + 1ms by the second.
  EXPECT_EQ(cpu.busy_time(), 4_ms);
}

TEST(SimCpu, ReprioritizeQueuedJobTriggersPreemption) {
  Simulation sim;
  SimCpu cpu(sim);
  std::vector<int> order;
  cpu.submit(firm(50000, 1), 10_ms, [&] { order.push_back(1); });
  auto id = cpu.submit(firm(90000, 2), 1_ms, [&] { order.push_back(2); });
  sim.schedule_after(2_ms, [&] {
    EXPECT_TRUE(cpu.reprioritize(id, firm(1000, 2)));
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(SimCpu, ZeroCostJobCompletesImmediately) {
  Simulation sim;
  SimCpu cpu(sim);
  bool done = false;
  cpu.submit(firm(1000), Duration::zero(), [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.now(), TimePoint::origin());
}

TEST(SimCpu, CompletionCallbackCanSubmit) {
  Simulation sim;
  SimCpu cpu(sim);
  TimePoint done{};
  cpu.submit(firm(1000, 1), 1_ms, [&] {
    cpu.submit(firm(2000, 2), 2_ms, [&] { done = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(done, TimePoint{3000});
}

TEST(SimCpu, UtilizationAccounting) {
  Simulation sim;
  SimCpu cpu(sim);
  cpu.submit(firm(1000), 3_ms, [] {});
  sim.schedule_after(10_ms, [&] { cpu.submit(firm(2000), 2_ms, [] {}); });
  sim.run();
  EXPECT_EQ(cpu.busy_time(), 5_ms);
  EXPECT_EQ(sim.now(), TimePoint{12000});
}

}  // namespace
}  // namespace rodain::sim
