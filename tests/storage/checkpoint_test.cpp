#include "rodain/storage/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "rodain/common/rng.hpp"

namespace rodain::storage {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("rodain_ckpt_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const char* name) { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

void fill(ObjectStore& store, std::size_t n, Rng& rng) {
  for (ObjectId i = 0; i < n; ++i) {
    std::string v(rng.next_below(120) + 1, static_cast<char>('a' + i % 26));
    store.upsert(i, Value{std::string_view{v}}, rng.next_below(1000));
  }
}

TEST_F(CheckpointTest, EncodeDecodeRoundTrip) {
  ObjectStore src;
  Rng rng(1);
  fill(src, 500, rng);

  ByteWriter w;
  encode_checkpoint(src, 4242, w);

  ObjectStore dst;
  auto meta = decode_checkpoint(w.view(), dst);
  ASSERT_TRUE(meta.is_ok()) << meta.status().to_string();
  EXPECT_EQ(meta.value().last_applied, 4242u);
  EXPECT_EQ(meta.value().object_count, 500u);
  EXPECT_EQ(dst.size(), src.size());
  src.for_each([&](ObjectId id, const ObjectRecord& rec) {
    const ObjectRecord* got = dst.find(id);
    ASSERT_NE(got, nullptr) << id;
    EXPECT_EQ(got->value, rec.value);
    EXPECT_EQ(got->wts, rec.wts);
  });
}

TEST_F(CheckpointTest, EmptyStoreRoundTrip) {
  ObjectStore src, dst;
  ByteWriter w;
  encode_checkpoint(src, 0, w);
  auto meta = decode_checkpoint(w.view(), dst);
  ASSERT_TRUE(meta.is_ok());
  EXPECT_EQ(dst.size(), 0u);
}

TEST_F(CheckpointTest, DecodeClearsPreviousContent) {
  ObjectStore src, dst;
  src.upsert(1, Value{std::string_view{"fresh"}}, 1);
  dst.upsert(99, Value{std::string_view{"stale"}}, 1);
  ByteWriter w;
  encode_checkpoint(src, 1, w);
  ASSERT_TRUE(decode_checkpoint(w.view(), dst).is_ok());
  EXPECT_EQ(dst.find(99), nullptr);
  EXPECT_NE(dst.find(1), nullptr);
}

TEST_F(CheckpointTest, CorruptionDetected) {
  ObjectStore src;
  Rng rng(2);
  fill(src, 100, rng);
  ByteWriter w;
  encode_checkpoint(src, 7, w);
  auto bytes = w.take();
  bytes[bytes.size() / 2] ^= std::byte{0x40};
  ObjectStore dst;
  auto meta = decode_checkpoint(bytes, dst);
  ASSERT_FALSE(meta.is_ok());
  EXPECT_EQ(meta.status().code(), ErrorCode::kCorruption);
}

TEST_F(CheckpointTest, TruncationDetected) {
  ObjectStore src;
  Rng rng(3);
  fill(src, 100, rng);
  ByteWriter w;
  encode_checkpoint(src, 7, w);
  auto bytes = w.take();
  bytes.resize(bytes.size() / 2);
  ObjectStore dst;
  EXPECT_FALSE(decode_checkpoint(bytes, dst).is_ok());
}

TEST_F(CheckpointTest, TooShortBufferRejected) {
  ObjectStore dst;
  std::vector<std::byte> tiny(2);
  EXPECT_FALSE(decode_checkpoint(tiny, dst).is_ok());
}

TEST_F(CheckpointTest, FileRoundTrip) {
  ObjectStore src;
  Rng rng(4);
  fill(src, 1000, rng);
  ASSERT_TRUE(write_checkpoint_file(src, 123, path("db.ckpt")));

  ObjectStore dst;
  auto meta = read_checkpoint_file(path("db.ckpt"), dst);
  ASSERT_TRUE(meta.is_ok()) << meta.status().to_string();
  EXPECT_EQ(meta.value().last_applied, 123u);
  EXPECT_EQ(dst.size(), 1000u);
}

TEST_F(CheckpointTest, MissingFileIsNotFound) {
  ObjectStore dst;
  auto meta = read_checkpoint_file(path("nope.ckpt"), dst);
  ASSERT_FALSE(meta.is_ok());
  EXPECT_EQ(meta.status().code(), ErrorCode::kNotFound);
}

TEST_F(CheckpointTest, ZeroLengthFileIsNotFoundNotCorruption) {
  // Crash window between creating the file and the first write: treat it
  // as "no checkpoint yet" so recovery falls back to log-only replay
  // instead of refusing to start.
  const std::string p = path("empty.ckpt");
  std::FILE* f = std::fopen(p.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  ObjectStore dst;
  auto meta = read_checkpoint_file(p, dst);
  ASSERT_FALSE(meta.is_ok());
  EXPECT_EQ(meta.status().code(), ErrorCode::kNotFound);
}

TEST_F(CheckpointTest, CorruptFileLeavesStoreUntouched) {
  // The CRC is verified before any object is installed, so a corrupt
  // checkpoint never clobbers the store the caller passed in — that is
  // what makes the log-only recovery fallback safe.
  ObjectStore src;
  Rng rng(5);
  fill(src, 50, rng);
  ASSERT_TRUE(write_checkpoint_file(src, 9, path("db.ckpt")));
  {
    std::FILE* f = std::fopen(path("db.ckpt").c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 40, SEEK_SET);
    const int byte = std::fgetc(f);
    std::fseek(f, 40, SEEK_SET);
    std::fputc(byte ^ 0x40, f);
    std::fclose(f);
  }
  ObjectStore dst;
  dst.upsert(1234, Value{std::string_view{"keep"}}, 1);
  auto meta = read_checkpoint_file(path("db.ckpt"), dst);
  ASSERT_FALSE(meta.is_ok());
  EXPECT_EQ(meta.status().code(), ErrorCode::kCorruption);
  ASSERT_NE(dst.find(1234), nullptr);
  EXPECT_EQ(dst.find(1234)->value, Value{std::string_view{"keep"}});
}

TEST_F(CheckpointTest, OverwriteIsAtomicStyle) {
  ObjectStore a, b, dst;
  a.upsert(1, Value{std::string_view{"v1"}}, 1);
  b.upsert(2, Value{std::string_view{"v2"}}, 2);
  ASSERT_TRUE(write_checkpoint_file(a, 1, path("db.ckpt")));
  ASSERT_TRUE(write_checkpoint_file(b, 2, path("db.ckpt")));
  auto meta = read_checkpoint_file(path("db.ckpt"), dst);
  ASSERT_TRUE(meta.is_ok());
  EXPECT_EQ(meta.value().last_applied, 2u);
  EXPECT_NE(dst.find(2), nullptr);
  EXPECT_EQ(dst.find(1), nullptr);
  // No stray temp file left behind.
  EXPECT_FALSE(std::filesystem::exists(path("db.ckpt.tmp")));
}

TEST_F(CheckpointTest, FailedRenameUnlinksTempFile) {
  // Make the final rename fail by pointing the checkpoint at an existing
  // non-empty directory. The write must fail AND clean up its `.tmp` —
  // nothing ever retries that exact temp name, so a leaked temp would
  // accumulate forever under a persistently failing path.
  ObjectStore src;
  src.upsert(1, Value{std::string_view{"x"}}, 1);
  const std::string target = path("occupied");
  std::filesystem::create_directories(target + "/sub");
  auto s = write_checkpoint_file(src, 1, target);
  ASSERT_FALSE(s);
  EXPECT_FALSE(std::filesystem::exists(target + ".tmp"));
}

}  // namespace
}  // namespace rodain::storage
