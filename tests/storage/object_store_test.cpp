#include "rodain/storage/object_store.hpp"

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "rodain/common/rng.hpp"

namespace rodain::storage {
namespace {

Value val(std::string_view s) { return Value{s}; }

TEST(ObjectStore, InsertFind) {
  ObjectStore store;
  ASSERT_TRUE(store.insert(1, val("one")));
  ASSERT_TRUE(store.insert(2, val("two")));
  const ObjectRecord* r = store.find(1);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->value, val("one"));
  EXPECT_EQ(store.find(3), nullptr);
  EXPECT_EQ(store.size(), 2u);
}

TEST(ObjectStore, DuplicateInsertRejected) {
  ObjectStore store;
  ASSERT_TRUE(store.insert(1, val("one")));
  auto s = store.insert(1, val("uno"));
  EXPECT_EQ(s.code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(store.find(1)->value, val("one"));
}

TEST(ObjectStore, UpsertInsertsAndOverwrites) {
  ObjectStore store;
  store.upsert(5, val("a"), 10);
  EXPECT_EQ(store.find(5)->wts, 10u);
  store.upsert(5, val("b"), 20);
  EXPECT_EQ(store.find(5)->value, val("b"));
  EXPECT_EQ(store.find(5)->wts, 20u);
  // Stale wts does not move the high-water mark backwards.
  store.upsert(5, val("c"), 5);
  EXPECT_EQ(store.find(5)->wts, 20u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(ObjectStore, EraseExisting) {
  ObjectStore store;
  store.insert(1, val("x"));
  EXPECT_TRUE(store.erase(1));
  EXPECT_EQ(store.find(1), nullptr);
  EXPECT_FALSE(store.erase(1));
  EXPECT_EQ(store.size(), 0u);
}

TEST(ObjectStore, FindMutable) {
  ObjectStore store;
  store.insert(1, val("x"));
  ObjectRecord* r = store.find_mutable(1);
  ASSERT_NE(r, nullptr);
  r->rts = 99;
  EXPECT_EQ(store.find(1)->rts, 99u);
}

TEST(ObjectStore, GrowsPastInitialCapacity) {
  ObjectStore store(4);
  for (ObjectId i = 0; i < 10000; ++i) {
    ASSERT_TRUE(store.insert(i, val("v")));
  }
  EXPECT_EQ(store.size(), 10000u);
  for (ObjectId i = 0; i < 10000; ++i) {
    ASSERT_NE(store.find(i), nullptr) << i;
  }
}

TEST(ObjectStore, ForEachVisitsAllOnce) {
  ObjectStore store;
  for (ObjectId i = 100; i < 200; ++i) store.insert(i, val("v"));
  std::set<ObjectId> seen;
  store.for_each([&](ObjectId id, const ObjectRecord&) {
    EXPECT_TRUE(seen.insert(id).second);
  });
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 100u);
  EXPECT_EQ(*seen.rbegin(), 199u);
}

TEST(ObjectStore, Clear) {
  ObjectStore store;
  for (ObjectId i = 0; i < 50; ++i) ASSERT_TRUE(store.insert(i, val("v")));
  store.clear();
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.find(7), nullptr);
  // Reusable after clear.
  ASSERT_TRUE(store.insert(7, val("w")));
  EXPECT_EQ(store.find(7)->value, val("w"));
}

TEST(ObjectStore, RandomizedAgainstReferenceMap) {
  ObjectStore store;
  std::unordered_map<ObjectId, std::string> model;
  Rng rng(2024);
  for (int step = 0; step < 20000; ++step) {
    const ObjectId id = rng.next_below(500);
    switch (rng.next_below(3)) {
      case 0: {  // upsert
        std::string v = "v" + std::to_string(rng.next_below(1000));
        store.upsert(id, Value{std::string_view{v}}, 1);
        model[id] = v;
        break;
      }
      case 1: {  // erase
        EXPECT_EQ(store.erase(id), model.erase(id) > 0) << id;
        break;
      }
      case 2: {  // lookup
        const ObjectRecord* r = store.find(id);
        auto it = model.find(id);
        ASSERT_EQ(r != nullptr, it != model.end()) << id;
        if (r) { EXPECT_EQ(r->value, Value{std::string_view{it->second}}); }
        break;
      }
    }
  }
  EXPECT_EQ(store.size(), model.size());
  std::size_t visited = 0;
  store.for_each([&](ObjectId id, const ObjectRecord& rec) {
    ++visited;
    auto it = model.find(id);
    ASSERT_NE(it, model.end());
    EXPECT_EQ(rec.value, Value{std::string_view{it->second}});
  });
  EXPECT_EQ(visited, model.size());
}

TEST(ObjectStore, AdversarialSequentialIds) {
  // Sequential ids stress the hash mixing; ensure probe lengths stay sane
  // by simply checking correctness at high load.
  ObjectStore store(16);
  for (ObjectId i = 0; i < 100000; ++i) ASSERT_TRUE(store.insert(i, Value{}));
  for (ObjectId i = 0; i < 100000; i += 997) EXPECT_NE(store.find(i), nullptr);
  EXPECT_EQ(store.size(), 100000u);
}

}  // namespace
}  // namespace rodain::storage
