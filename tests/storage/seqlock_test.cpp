// Per-record seqlock (DESIGN.md §11): optimistic readers must either get a
// consistent committed snapshot or report contention — never a torn value.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "rodain/obs/obs.hpp"
#include "rodain/storage/object_store.hpp"

namespace rodain::storage {
namespace {

Value val(std::string_view s) { return Value{s}; }

TEST(Seqlock, OptimisticHitCopiesRecord) {
  ObjectStore store;
  store.upsert(1, val("one"), 7);
  ObjectRecord out;
  std::uint32_t retries = 99;
  EXPECT_EQ(store.read_optimistic(1, out, retries), OptimisticRead::kHit);
  EXPECT_EQ(retries, 0u);
  EXPECT_EQ(out.value, val("one"));
  EXPECT_EQ(out.wts, 7u);
  EXPECT_FALSE(out.deleted);
}

TEST(Seqlock, OptimisticMissOnAbsentId) {
  ObjectStore store;
  store.insert(1, val("one"));
  ObjectRecord out;
  std::uint32_t retries = 99;
  EXPECT_EQ(store.read_optimistic(42, out, retries), OptimisticRead::kMiss);
  EXPECT_EQ(retries, 0u);
}

TEST(Seqlock, TombstoneObservedWithDeleterWts) {
  ObjectStore store;
  store.upsert(5, val("short-lived"), 3);
  store.tombstone(5, 9);
  ObjectRecord out;
  std::uint32_t retries = 0;
  ASSERT_EQ(store.read_optimistic(5, out, retries), OptimisticRead::kHit);
  EXPECT_TRUE(out.deleted);
  EXPECT_EQ(out.wts, 9u);  // the deleter's wts stays visible
}

TEST(Seqlock, ContendedWhenWriterHoldsTheSeqlock) {
  ObjectStore store;
  store.insert(1, val("x"));
  ObjectRecord* rec = store.find_mutable(1);
  ASSERT_NE(rec, nullptr);
  rec->write_begin();  // odd seq: a writer is (artificially) mid-update
  ObjectRecord out;
  std::uint32_t retries = 0;
  EXPECT_EQ(store.read_optimistic(1, out, retries, /*max_retries=*/8),
            OptimisticRead::kContended);
  EXPECT_GT(retries, 8u);
  rec->write_end();
  EXPECT_EQ(store.read_optimistic(1, out, retries), OptimisticRead::kHit);
  EXPECT_EQ(out.value, val("x"));
}

TEST(Seqlock, HeapPayloadSnapshotsThroughSharedLock) {
  ObjectStore store;
  const std::string big(Value::kInlineCapacity * 4, 'h');  // heap-allocated
  store.upsert(2, val(big), 11);
  ObjectRecord out;
  std::uint32_t retries = 0;
  ASSERT_EQ(store.read_optimistic(2, out, retries), OptimisticRead::kHit);
  EXPECT_EQ(out.value, val(big));
  EXPECT_EQ(out.wts, 11u);
}

TEST(Seqlock, InlineUpsertDoesNotFenceReaders) {
  obs::ObsConfig cfg;
  cfg.enabled = true;
  obs::init(cfg);
  ObjectStore store;
  store.insert(3, val("aaaa"));
  obs::Counter& fences = obs::metrics().counter("store.rehash_fences");
  const std::uint64_t before = fences.value();
  store.upsert(3, val("bbbb"), 5);  // inline -> inline: seqlock only
  EXPECT_EQ(fences.value(), before);
  const std::string big(Value::kInlineCapacity * 2, 'z');
  store.upsert(3, val(big), 6);  // heap involvement: unique table lock
  EXPECT_GT(fences.value(), before);
}

// The heart of the matter: concurrent in-place writers alternate two full
// 48-byte patterns while readers snapshot; any blend of the two patterns is
// a torn read and fails the test.
TEST(Seqlock, ConcurrentReadersNeverObserveTornValues) {
  ObjectStore store;
  const std::string a(Value::kInlineCapacity, 'a');
  const std::string b(Value::kInlineCapacity, 'b');
  const Value va = val(a);
  const Value vb = val(b);
  store.insert(7, Value{va});

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    ValidationTs wts = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      store.upsert(7, Value{va}, ++wts);
      store.upsert(7, Value{vb}, ++wts);
    }
  });

  std::atomic<std::uint64_t> torn{0};
  std::atomic<std::uint64_t> hits{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      for (int i = 0; i < 50000; ++i) {
        ObjectRecord out;
        std::uint32_t retries = 0;
        if (store.read_optimistic(7, out, retries) != OptimisticRead::kHit) {
          continue;  // contended: the serial fallback would handle it
        }
        hits.fetch_add(1, std::memory_order_relaxed);
        if (!(out.value == va) && !(out.value == vb)) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : readers) t.join();
  stop.store(true, std::memory_order_relaxed);
  writer.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_GT(hits.load(), 0u);
}

}  // namespace
}  // namespace rodain::storage
