#include "rodain/storage/btree.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "rodain/common/rng.hpp"

namespace rodain::storage {
namespace {

IndexKey key(std::uint64_t v) { return IndexKey::from_u64(v); }

TEST(IndexKey, Ordering) {
  EXPECT_LT(key(1), key(2));
  EXPECT_LT(IndexKey::min(), key(1));
  EXPECT_LT(key(~0ULL), IndexKey::max());
  EXPECT_EQ(key(7), key(7));
}

TEST(IndexKey, FromStringLexicographic) {
  auto a = IndexKey::from_string("0401234");
  auto b = IndexKey::from_string("0401235");
  auto c = IndexKey::from_string("05");
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a.to_string(), "0401234");
}

TEST(IndexKey, FromStringTruncatesLongInput) {
  auto k = IndexKey::from_string("123456789012345678901234");
  EXPECT_EQ(k.to_string().size(), 16u);
}

TEST(BPlusTree, EmptyTree) {
  BPlusTree t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.find(key(1)), std::nullopt);
  EXPECT_FALSE(t.erase(key(1)));
  EXPECT_TRUE(t.validate());
}

TEST(BPlusTree, InsertFindSmall) {
  BPlusTree t;
  EXPECT_TRUE(t.insert(key(10), 100));
  EXPECT_TRUE(t.insert(key(20), 200));
  EXPECT_TRUE(t.insert(key(5), 50));
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.find(key(10)), 100u);
  EXPECT_EQ(t.find(key(20)), 200u);
  EXPECT_EQ(t.find(key(5)), 50u);
  EXPECT_EQ(t.find(key(15)), std::nullopt);
  EXPECT_TRUE(t.validate());
}

TEST(BPlusTree, DuplicateInsertRejected) {
  BPlusTree t;
  EXPECT_TRUE(t.insert(key(1), 10));
  EXPECT_FALSE(t.insert(key(1), 20));
  EXPECT_EQ(t.find(key(1)), 10u);
  EXPECT_EQ(t.size(), 1u);
}

TEST(BPlusTree, UpdateValue) {
  BPlusTree t;
  t.insert(key(1), 10);
  EXPECT_TRUE(t.update(key(1), 99));
  EXPECT_EQ(t.find(key(1)), 99u);
  EXPECT_FALSE(t.update(key(2), 1));
}

TEST(BPlusTree, SequentialInsertGrowsTree) {
  BPlusTree t;
  for (std::uint64_t i = 0; i < 5000; ++i) {
    ASSERT_TRUE(t.insert(key(i), i * 10));
  }
  EXPECT_EQ(t.size(), 5000u);
  EXPECT_GT(t.height(), 1u);
  ASSERT_TRUE(t.validate());
  for (std::uint64_t i = 0; i < 5000; ++i) {
    ASSERT_EQ(t.find(key(i)), i * 10) << i;
  }
}

TEST(BPlusTree, ReverseInsert) {
  BPlusTree t;
  for (std::uint64_t i = 5000; i-- > 0;) ASSERT_TRUE(t.insert(key(i), i));
  ASSERT_TRUE(t.validate());
  for (std::uint64_t i = 0; i < 5000; i += 13) EXPECT_EQ(t.find(key(i)), i);
}

TEST(BPlusTree, EraseToEmpty) {
  BPlusTree t;
  for (std::uint64_t i = 0; i < 1000; ++i) t.insert(key(i), i);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(t.erase(key(i))) << i;
  }
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.height(), 1u);
  EXPECT_TRUE(t.validate());
}

TEST(BPlusTree, EraseReverseOrder) {
  BPlusTree t;
  for (std::uint64_t i = 0; i < 1000; ++i) t.insert(key(i), i);
  for (std::uint64_t i = 1000; i-- > 0;) {
    ASSERT_TRUE(t.erase(key(i))) << i;
    if (i % 100 == 0) ASSERT_TRUE(t.validate()) << i;
  }
  EXPECT_TRUE(t.empty());
}

TEST(BPlusTree, RangeScanFullOrder) {
  BPlusTree t;
  for (std::uint64_t i = 0; i < 300; ++i) t.insert(key(i * 2), i);
  std::vector<std::uint64_t> seen;
  t.range_scan(IndexKey::min(), IndexKey::max(),
               [&](const IndexKey&, ObjectId v) {
                 seen.push_back(v);
                 return true;
               });
  ASSERT_EQ(seen.size(), 300u);
  for (std::uint64_t i = 0; i < 300; ++i) EXPECT_EQ(seen[i], i);
}

TEST(BPlusTree, RangeScanBounds) {
  BPlusTree t;
  for (std::uint64_t i = 0; i < 100; ++i) t.insert(key(i), i);
  std::vector<std::uint64_t> seen;
  t.range_scan(key(10), key(20), [&](const IndexKey&, ObjectId v) {
    seen.push_back(v);
    return true;
  });
  ASSERT_EQ(seen.size(), 11u);  // inclusive bounds
  EXPECT_EQ(seen.front(), 10u);
  EXPECT_EQ(seen.back(), 20u);
}

TEST(BPlusTree, RangeScanEarlyStop) {
  BPlusTree t;
  for (std::uint64_t i = 0; i < 100; ++i) t.insert(key(i), i);
  int count = 0;
  t.range_scan(IndexKey::min(), IndexKey::max(),
               [&](const IndexKey&, ObjectId) { return ++count < 5; });
  EXPECT_EQ(count, 5);
}

TEST(BPlusTree, RangeScanEmptyRange) {
  BPlusTree t;
  t.insert(key(10), 1);
  int count = 0;
  t.range_scan(key(20), key(30), [&](const IndexKey&, ObjectId) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 0);
}

TEST(BPlusTree, MoveSemantics) {
  BPlusTree a;
  for (std::uint64_t i = 0; i < 100; ++i) a.insert(key(i), i);
  BPlusTree b = std::move(a);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.find(key(50)), 50u);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move) — documented reset
  a.insert(key(1), 1);
  EXPECT_EQ(a.size(), 1u);
}

TEST(BPlusTree, RandomizedAgainstStdMap) {
  BPlusTree t;
  std::map<IndexKey, ObjectId> model;
  Rng rng(555);
  for (int step = 0; step < 30000; ++step) {
    const auto k = key(rng.next_below(2000));
    switch (rng.next_below(3)) {
      case 0: {
        const ObjectId v = rng.next_u64();
        EXPECT_EQ(t.insert(k, v), model.emplace(k, v).second);
        break;
      }
      case 1:
        EXPECT_EQ(t.erase(k), model.erase(k) > 0);
        break;
      case 2: {
        auto found = t.find(k);
        auto it = model.find(k);
        ASSERT_EQ(found.has_value(), it != model.end());
        if (found) EXPECT_EQ(*found, it->second);
        break;
      }
    }
    if (step % 5000 == 4999) ASSERT_TRUE(t.validate()) << step;
  }
  ASSERT_TRUE(t.validate());
  EXPECT_EQ(t.size(), model.size());

  // Full scan must match the model ordering.
  auto it = model.begin();
  t.range_scan(IndexKey::min(), IndexKey::max(),
               [&](const IndexKey& k2, ObjectId v) {
                 EXPECT_EQ(k2, it->first);
                 EXPECT_EQ(v, it->second);
                 ++it;
                 return true;
               });
  EXPECT_EQ(it, model.end());
}

TEST(BPlusTree, PhoneNumberWorkloadShape) {
  // The index the number-translation service uses: dialled number -> object.
  BPlusTree t;
  for (int i = 0; i < 1000; ++i) {
    char num[17];
    std::snprintf(num, sizeof num, "0405%07d", i);
    ASSERT_TRUE(t.insert(IndexKey::from_string(num), static_cast<ObjectId>(i)));
  }
  EXPECT_EQ(t.find(IndexKey::from_string("04050000500")), 500u);
  // Prefix scan: all numbers in the 0405000049x block.
  int block = 0;
  t.range_scan(IndexKey::from_string("04050000490"),
               IndexKey::from_string("04050000499"),
               [&](const IndexKey&, ObjectId) {
                 ++block;
                 return true;
               });
  EXPECT_EQ(block, 10);
}

}  // namespace
}  // namespace rodain::storage
