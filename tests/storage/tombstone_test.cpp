#include <gtest/gtest.h>

#include "rodain/storage/object_store.hpp"

namespace rodain::storage {
namespace {

Value val(std::string_view s) { return Value{s}; }

TEST(Tombstone, DeleteKeepsTimestampsAndClearsValue) {
  ObjectStore store;
  store.upsert(1, val("data"), 100);
  store.find_mutable(1)->rts = 50;
  ObjectRecord& rec = store.tombstone(1, 200);
  EXPECT_TRUE(rec.deleted);
  EXPECT_FALSE(rec.live());
  EXPECT_TRUE(rec.value.empty());
  EXPECT_EQ(rec.wts, 200u);
  EXPECT_EQ(rec.rts, 50u);  // reader history preserved
  EXPECT_EQ(store.tombstone_count(), 1u);
  EXPECT_EQ(store.live_size(), 0u);
  EXPECT_EQ(store.size(), 1u);  // the slot remains
}

TEST(Tombstone, DeleteOfMissingObjectCreatesTombstone) {
  ObjectStore store;
  store.tombstone(7, 300);
  ASSERT_NE(store.find(7), nullptr);
  EXPECT_TRUE(store.find(7)->deleted);
  EXPECT_EQ(store.find(7)->wts, 300u);
}

TEST(Tombstone, UpsertRevives) {
  ObjectStore store;
  store.upsert(1, val("v1"), 100);
  store.tombstone(1, 200);
  ObjectRecord& rec = store.upsert(1, val("v2"), 300);
  EXPECT_TRUE(rec.live());
  EXPECT_EQ(rec.value, val("v2"));
  EXPECT_EQ(rec.wts, 300u);
  EXPECT_EQ(store.tombstone_count(), 0u);
  EXPECT_EQ(store.live_size(), 1u);
}

TEST(Tombstone, DoubleDeleteIsIdempotentForCounters) {
  ObjectStore store;
  store.upsert(1, val("v"), 100);
  store.tombstone(1, 200);
  store.tombstone(1, 250);
  EXPECT_EQ(store.tombstone_count(), 1u);
  EXPECT_EQ(store.find(1)->wts, 250u);
}

TEST(Tombstone, WtsNeverGoesBackwards) {
  ObjectStore store;
  store.upsert(1, val("v"), 500);
  store.tombstone(1, 100);  // stale delete replay
  EXPECT_EQ(store.find(1)->wts, 500u);
}

TEST(Tombstone, EraseRemovesTombstoneEntirely) {
  ObjectStore store;
  store.tombstone(1, 100);
  EXPECT_TRUE(store.erase(1));
  EXPECT_EQ(store.tombstone_count(), 0u);
  EXPECT_EQ(store.find(1), nullptr);
}

TEST(Tombstone, SurvivesTableGrowth) {
  ObjectStore store(4);
  store.upsert(1, val("live"), 1);
  store.tombstone(2, 5);
  for (ObjectId i = 10; i < 500; ++i) store.upsert(i, val("x"), 1);
  EXPECT_EQ(store.tombstone_count(), 1u);
  ASSERT_NE(store.find(2), nullptr);
  EXPECT_TRUE(store.find(2)->deleted);
  EXPECT_EQ(store.live_size(), store.size() - 1);
}

TEST(Tombstone, ClearResetsCounters) {
  ObjectStore store;
  store.tombstone(1, 1);
  store.clear();
  EXPECT_EQ(store.tombstone_count(), 0u);
  EXPECT_EQ(store.size(), 0u);
}

}  // namespace
}  // namespace rodain::storage
