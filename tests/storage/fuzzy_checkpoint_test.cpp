// Fuzzy checkpoint properties (DESIGN.md §15): the copy-on-write snapshot
// walk must reproduce exactly the flip-time state no matter what concurrent
// committers do during the encode, and a base+delta chain must recover to
// the same store/index/wts state as a stop-the-world checkpoint taken at
// the same boundary.
#include "rodain/storage/fuzzy_checkpoint.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <map>
#include <thread>
#include <vector>

#include "rodain/common/rng.hpp"
#include "rodain/storage/checkpoint.hpp"
#include "rodain/storage/ckpt_manifest.hpp"

namespace rodain::storage {
namespace {

class FuzzyCheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("rodain_fuzzy_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const char* name) { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

Value val(std::string_view s) { return Value{s}; }

std::string to_str(const Value& v) {
  auto s = v.view();
  return std::string(reinterpret_cast<const char*>(s.data()), s.size());
}

/// Snapshot of one record for state comparison.
struct Expected {
  std::string value;
  ValidationTs wts;
  bool deleted;
};
using StateMap = std::map<ObjectId, Expected>;

StateMap capture(const ObjectStore& store) {
  StateMap m;
  store.for_each([&](ObjectId id, const ObjectRecord& rec) {
    m[id] = {to_str(rec.value), rec.wts, rec.deleted};
  });
  return m;
}

void expect_same_state(const ObjectStore& got, const StateMap& want) {
  StateMap g = capture(got);
  // Tombstones may differ in representation after a base (compacted away)
  // vs live state; compare live content and explicit tombstones separately.
  for (const auto& [id, e] : want) {
    auto it = g.find(id);
    if (e.deleted) {
      // A tombstone either survives as a tombstone or is compacted out.
      if (it != g.end()) {
        EXPECT_TRUE(it->second.deleted) << "oid " << id;
      }
      continue;
    }
    ASSERT_NE(it, g.end()) << "missing oid " << id;
    EXPECT_EQ(it->second.value, e.value) << "oid " << id;
    EXPECT_EQ(it->second.wts, e.wts) << "oid " << id;
    EXPECT_FALSE(it->second.deleted) << "oid " << id;
  }
  for (const auto& [id, e] : g) {
    if (!e.deleted) {
      auto it = want.find(id);
      ASSERT_NE(it, want.end()) << "extra oid " << id;
      EXPECT_FALSE(it->second.deleted) << "oid " << id;
    }
  }
}

std::vector<std::pair<IndexKey, ObjectId>> dump_index(const BPlusTree& t) {
  std::vector<std::pair<IndexKey, ObjectId>> out;
  t.chunked_scan(128,
                 [&](const IndexKey& k, ObjectId v) { out.emplace_back(k, v); });
  return out;
}

TEST_F(FuzzyCheckpointTest, BaseMatchesStopTheWorldAtFlip) {
  ObjectStore store;
  BPlusTree index;
  Rng rng(11);
  for (ObjectId i = 0; i < 400; ++i) {
    store.upsert(i, val(std::string(1 + rng.next_below(60), 'a' + i % 26)),
                 i + 1);
    index.insert(IndexKey::from_u64(i), i);
  }
  // Reference: stop-the-world capture of the flip-time state.
  const StateMap reference = capture(store);
  const auto ref_index = dump_index(index);

  store.snapshot_begin();
  // Post-flip mutations: overwrites, new inserts, erases. None of these may
  // leak into the encoded base.
  for (ObjectId i = 0; i < 100; ++i) {
    store.upsert(i, val("post-flip"), 9000 + i);
  }
  for (ObjectId i = 1000; i < 1050; ++i) store.upsert(i, val("born-late"), 1);
  for (ObjectId i = 200; i < 220; ++i) store.erase(i);
  ByteWriter w;
  auto stats = encode_fuzzy_base(store, index, 4242, w);
  store.snapshot_end();
  EXPECT_EQ(stats.records, 400u);

  ObjectStore dst;
  BPlusTree dst_index;
  auto meta = decode_fuzzy_base(w.view(), dst, &dst_index);
  ASSERT_TRUE(meta.is_ok()) << meta.status().to_string();
  EXPECT_EQ(meta.value().last_applied, 4242u);
  expect_same_state(dst, reference);
  EXPECT_EQ(dump_index(dst_index), ref_index);
}

TEST_F(FuzzyCheckpointTest, DeltaChainEquivalentToStopTheWorld) {
  // Property: recovering base + ordered deltas yields exactly the same
  // store/index/wts state as a stop-the-world checkpoint taken at the last
  // flip. Writers are quiesced at each flip so the reference is exact.
  ObjectStore store;
  BPlusTree index;
  Rng rng(13);
  for (ObjectId i = 0; i < 300; ++i) {
    store.upsert(i, val(std::string(1 + rng.next_below(40), 'x')), i + 1);
    index.insert(IndexKey::from_u64(i), i);
  }

  std::vector<std::vector<std::byte>> parts;
  // Base at epoch E.
  std::uint64_t floor = store.snapshot_begin();
  index.set_journal(true);
  {
    ByteWriter w;
    encode_fuzzy_base(store, index, 100, w);
    parts.push_back(w.take());
  }
  store.snapshot_end();

  // Two delta rounds of mixed mutations.
  for (int round = 0; round < 2; ++round) {
    for (int m = 0; m < 120; ++m) {
      const ObjectId id = rng.next_below(350);
      switch (rng.next_below(4)) {
        case 0:
          store.upsert(id, val("round" + std::to_string(round)), 200 + m);
          if (!index.insert(IndexKey::from_u64(id), id)) {
            index.update(IndexKey::from_u64(id), id);
          }
          break;
        case 1:
          store.tombstone(id, 200 + m);
          index.erase(IndexKey::from_u64(id));
          break;
        case 2:
          // Delete-then-reinsert churn. Hard erase() is compaction-only
          // (offline, never on a serving store): every runtime delete is a
          // tombstone, which keeps the record walkable for the delta.
          store.tombstone(id, 200 + m);
          index.erase(IndexKey::from_u64(id));
          store.upsert(id, val("resurrect"), 201 + m);
          index.insert(IndexKey::from_u64(id), id);
          break;
        default:
          store.upsert(id + 400, val("new"), 200 + m);
          index.insert(IndexKey::from_u64(id + 400), id + 400);
          break;
      }
    }
    const std::uint64_t capture_epoch = store.snapshot_begin();
    auto journal = index.cut_journal();
    ByteWriter w;
    encode_fuzzy_delta(store, journal, 100 + 10 * (round + 1), floor, w);
    parts.push_back(w.take());
    store.snapshot_end();
    floor = capture_epoch;
  }
  const StateMap reference = capture(store);
  const auto ref_index = dump_index(index);

  // Recover: base then deltas in order.
  ObjectStore dst;
  BPlusTree dst_index;
  ASSERT_TRUE(decode_fuzzy_base(parts[0], dst, &dst_index).is_ok());
  for (std::size_t i = 1; i < parts.size(); ++i) {
    auto meta = apply_fuzzy_delta(parts[i], dst, &dst_index);
    ASSERT_TRUE(meta.is_ok()) << meta.status().to_string();
  }
  expect_same_state(dst, reference);
  EXPECT_EQ(dump_index(dst_index), ref_index);

  // The same chain shipped as one container blob decodes identically.
  ByteWriter chain;
  encode_chain(parts, chain);
  ObjectStore dst2;
  BPlusTree dst2_index;
  auto meta = decode_checkpoint_any(chain.view(), dst2, &dst2_index);
  ASSERT_TRUE(meta.is_ok()) << meta.status().to_string();
  expect_same_state(dst2, reference);
  EXPECT_EQ(dump_index(dst2_index), ref_index);
}

TEST_F(FuzzyCheckpointTest, ErasedRecordStillReachesTheSnapshot) {
  ObjectStore store;
  store.upsert(7, val("keep-me"), 3);
  store.upsert(8, val("other"), 4);
  const StateMap reference = capture(store);

  store.snapshot_begin();
  ASSERT_TRUE(store.erase(7));  // pre-image must be retained
  store.tombstone(8, 99);       // ditto (overwritten in place)
  std::map<ObjectId, std::pair<std::string, bool>> seen;
  store.snapshot_scan(0, [&](ObjectId id, const Value& v, ValidationTs,
                             bool deleted) {
    seen[id] = {to_str(v), deleted};
  });
  store.snapshot_end();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[7].first, "keep-me");
  EXPECT_FALSE(seen[7].second);
  EXPECT_EQ(seen[8].first, "other");
  EXPECT_FALSE(seen[8].second);
  (void)reference;
}

TEST_F(FuzzyCheckpointTest, DeltaCarriesTombstones) {
  ObjectStore store;
  store.upsert(1, val("a"), 1);
  store.upsert(2, val("b"), 1);
  std::uint64_t floor = store.snapshot_begin();
  { ByteWriter w; encode_fuzzy_base(store, BPlusTree{}, 10, w); }
  store.snapshot_end();

  store.tombstone(1, 5);
  store.snapshot_begin();
  ByteWriter w;
  auto stats = encode_fuzzy_delta(store, {}, 20, floor, w);
  store.snapshot_end();
  EXPECT_EQ(stats.records, 1u);  // only the dirtied record

  ObjectStore dst;
  dst.upsert(1, val("a"), 1);
  dst.upsert(2, val("b"), 1);
  ASSERT_TRUE(apply_fuzzy_delta(w.view(), dst, nullptr).is_ok());
  ASSERT_NE(dst.find(1), nullptr);
  EXPECT_TRUE(dst.find(1)->deleted);
  ASSERT_NE(dst.find(2), nullptr);
  EXPECT_FALSE(dst.find(2)->deleted);
}

TEST_F(FuzzyCheckpointTest, ConcurrentCommittersNeverLeakPastTheFlip) {
  // The CoW hammer: freeze a known reference state, flip, then let writer
  // threads overwrite everything while the walker runs. The scan must
  // reproduce the reference exactly — every divergence is a retain-path
  // race. TSan/ASan runs of this test are the §15 memory-model check.
  ObjectStore store;
  constexpr ObjectId kObjects = 2000;
  for (ObjectId i = 0; i < kObjects; ++i) {
    store.upsert(i, val("v0-" + std::to_string(i)), i + 1);
  }
  const StateMap reference = capture(store);

  for (int iter = 0; iter < 4; ++iter) {
    store.snapshot_begin();
    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    const unsigned n_writers = 4;
    for (unsigned t = 0; t < n_writers; ++t) {
      writers.emplace_back([&, t] {
        Rng rng(1000 + t);
        while (!stop.load(std::memory_order_relaxed)) {
          const ObjectId id = rng.next_below(kObjects + 200);
          switch (rng.next_below(8)) {
            case 0:
              store.erase(id);
              break;
            case 1:
              store.tombstone(id, 777);
              break;
            default:
              store.upsert(id, val("dirty"), 888);
              break;
          }
        }
      });
    }
    StateMap scanned;
    store.snapshot_scan(0, [&](ObjectId id, const Value& v, ValidationTs wts,
                               bool deleted) {
      auto [it, fresh] =
          scanned.emplace(id, Expected{to_str(v), wts, deleted});
      EXPECT_TRUE(fresh) << "duplicate emit for oid " << id;
    });
    stop.store(true, std::memory_order_relaxed);
    for (auto& th : writers) th.join();
    store.snapshot_end();

    ASSERT_EQ(scanned.size(), reference.size()) << "iter " << iter;
    for (const auto& [id, e] : reference) {
      auto it = scanned.find(id);
      ASSERT_NE(it, scanned.end()) << "iter " << iter << " oid " << id;
      EXPECT_EQ(it->second.value, e.value) << "iter " << iter << " oid " << id;
      EXPECT_EQ(it->second.wts, e.wts) << "iter " << iter << " oid " << id;
    }
    // Restore the reference state for the next iteration (serial phase).
    store.clear();
    for (ObjectId i = 0; i < kObjects; ++i) {
      store.upsert(i, val("v0-" + std::to_string(i)), i + 1);
    }
  }
}

TEST_F(FuzzyCheckpointTest, ManifestRoundTripAndValidation) {
  CkptManifest m;
  m.entries.push_back({ManifestEntry::Kind::kBase, 100, 5, 4096, "db.ckpt.b5"});
  m.entries.push_back({ManifestEntry::Kind::kDelta, 150, 6, 128, "db.ckpt.d6"});
  m.entries.push_back({ManifestEntry::Kind::kDelta, 170, 9, 256, "db.ckpt.d9"});
  ASSERT_TRUE(write_manifest_file(m, path("db.ckpt.manifest")));
  auto got = read_manifest_file(path("db.ckpt.manifest"));
  ASSERT_TRUE(got.is_ok()) << got.status().to_string();
  ASSERT_EQ(got.value().entries.size(), 3u);
  EXPECT_EQ(got.value().covered_boundary(), 170u);
  EXPECT_EQ(got.value().entries[2].file, "db.ckpt.d9");

  // Corruption detected.
  {
    std::FILE* f = std::fopen(path("db.ckpt.manifest").c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 20, SEEK_SET);
    const int b = std::fgetc(f);
    std::fseek(f, 20, SEEK_SET);
    std::fputc(b ^ 0x10, f);
    std::fclose(f);
  }
  EXPECT_FALSE(read_manifest_file(path("db.ckpt.manifest")).is_ok());

  // Structural rejects: delta before base, non-monotone epochs.
  CkptManifest bad;
  bad.entries.push_back({ManifestEntry::Kind::kDelta, 10, 1, 1, "x.d1"});
  ByteWriter w;
  encode_manifest(bad, w);
  EXPECT_FALSE(decode_manifest(w.view()).is_ok());

  CkptManifest bad2 = m;
  bad2.entries[2].capture_epoch = 6;  // duplicate epoch
  ByteWriter w2;
  encode_manifest(bad2, w2);
  EXPECT_FALSE(decode_manifest(w2.view()).is_ok());
}

TEST_F(FuzzyCheckpointTest, LoaderPrefersFresherArtifactAndFallsBack) {
  // Legacy file at boundary 50, fuzzy chain at boundary 80: chain wins.
  ObjectStore old_state;
  old_state.upsert(1, val("old"), 1);
  ASSERT_TRUE(write_checkpoint_file(old_state, 50, path("db.ckpt")));

  ObjectStore new_state;
  new_state.upsert(1, val("new"), 2);
  new_state.snapshot_begin();
  ByteWriter w;
  auto stats = encode_fuzzy_base(new_state, BPlusTree{}, 80, w);
  new_state.snapshot_end();
  ASSERT_TRUE(write_file_atomic(path("db.ckpt.b1"), w.view()));
  CkptManifest m;
  m.entries.push_back(
      {ManifestEntry::Kind::kBase, 80, 1, stats.bytes, "db.ckpt.b1"});
  ASSERT_TRUE(write_manifest_file(m, manifest_path_for(path("db.ckpt"))));

  ObjectStore dst;
  auto meta = load_checkpoint_artifacts(path("db.ckpt"), dst);
  ASSERT_TRUE(meta.is_ok()) << meta.status().to_string();
  EXPECT_EQ(meta.value().last_applied, 80u);
  EXPECT_EQ(to_str(dst.find(1)->value), "new");

  // A stray delta file the manifest does not reference is ignored (crash
  // between delta write and manifest update).
  const char garbage[] = "garbage";
  ASSERT_TRUE(write_file_atomic(
      path("db.ckpt.d9"), std::as_bytes(std::span<const char>(garbage, 7))));
  ObjectStore dst2;
  auto meta2 = load_checkpoint_artifacts(path("db.ckpt"), dst2);
  ASSERT_TRUE(meta2.is_ok());
  EXPECT_EQ(meta2.value().last_applied, 80u);
  EXPECT_EQ(to_str(dst2.find(1)->value), "new");

  // Corrupt the chain's base: the loader falls back to the legacy file.
  {
    std::FILE* f = std::fopen(path("db.ckpt.b1").c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 30, SEEK_SET);
    const int b = std::fgetc(f);
    std::fseek(f, 30, SEEK_SET);
    std::fputc(b ^ 0x20, f);
    std::fclose(f);
  }
  ObjectStore dst3;
  auto meta3 = load_checkpoint_artifacts(path("db.ckpt"), dst3);
  ASSERT_TRUE(meta3.is_ok()) << meta3.status().to_string();
  EXPECT_EQ(meta3.value().last_applied, 50u);
  EXPECT_EQ(to_str(dst3.find(1)->value), "old");

  // Nothing at all → kNotFound.
  ObjectStore dst4;
  auto meta4 = load_checkpoint_artifacts(path("absent.ckpt"), dst4);
  ASSERT_FALSE(meta4.is_ok());
  EXPECT_EQ(meta4.status().code(), ErrorCode::kNotFound);
}

TEST_F(FuzzyCheckpointTest, ChainBytesServeJoinsWithCoveredBoundary) {
  ObjectStore store;
  store.upsert(1, val("a"), 1);
  std::uint64_t floor = store.snapshot_begin();
  ByteWriter base;
  auto bstats = encode_fuzzy_base(store, BPlusTree{}, 10, base);
  store.snapshot_end();
  store.upsert(2, val("b"), 2);
  store.snapshot_begin();
  ByteWriter delta;
  auto dstats = encode_fuzzy_delta(store, {}, 20, floor, delta);
  store.snapshot_end();
  ASSERT_TRUE(write_file_atomic(path("db.ckpt.b1"), base.view()));
  ASSERT_TRUE(write_file_atomic(path("db.ckpt.d2"), delta.view()));
  CkptManifest m;
  m.entries.push_back(
      {ManifestEntry::Kind::kBase, 10, 1, bstats.bytes, "db.ckpt.b1"});
  m.entries.push_back(
      {ManifestEntry::Kind::kDelta, 20, 2, dstats.bytes, "db.ckpt.d2"});
  ASSERT_TRUE(write_manifest_file(m, manifest_path_for(path("db.ckpt"))));

  auto bytes = read_artifact_chain_bytes(path("db.ckpt"));
  ASSERT_TRUE(bytes.is_ok()) << bytes.status().to_string();
  EXPECT_EQ(bytes.value().meta.last_applied, 20u);
  ObjectStore dst;
  auto meta = decode_checkpoint_any(bytes.value().bytes, dst);
  ASSERT_TRUE(meta.is_ok()) << meta.status().to_string();
  EXPECT_EQ(meta.value().last_applied, 20u);
  EXPECT_EQ(dst.size(), 2u);
}

}  // namespace
}  // namespace rodain::storage
