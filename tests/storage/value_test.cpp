#include "rodain/storage/value.hpp"

#include <gtest/gtest.h>

#include <string>

namespace rodain::storage {
namespace {

Value make(std::size_t n, char fill = 'a') {
  return Value{std::string_view{std::string(n, fill)}};
}

TEST(Value, EmptyByDefault) {
  Value v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.is_inline());
}

TEST(Value, InlineStorage) {
  auto v = make(Value::kInlineCapacity);
  EXPECT_TRUE(v.is_inline());
  EXPECT_EQ(v.size(), Value::kInlineCapacity);
}

TEST(Value, HeapStorage) {
  auto v = make(Value::kInlineCapacity + 1);
  EXPECT_FALSE(v.is_inline());
  EXPECT_EQ(v.size(), Value::kInlineCapacity + 1);
}

TEST(Value, CopySemantics) {
  for (std::size_t n : {4uz, 48uz, 200uz}) {
    auto a = make(n, 'x');
    Value b = a;
    EXPECT_EQ(a, b);
    // Mutating the copy must not affect the original.
    if (n > 0) b.mutable_view()[0] = std::byte{'y'};
    EXPECT_NE(static_cast<int>(a.view()[0]), static_cast<int>(b.view()[0]));
  }
}

TEST(Value, CopyAssignOverwrites) {
  auto a = make(100, 'q');
  auto b = make(5, 'z');
  b = a;
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(a, b);
}

TEST(Value, SelfAssignSafe) {
  auto a = make(100, 'p');
  auto& ref = a;
  a = ref;
  EXPECT_EQ(a.size(), 100u);
  EXPECT_EQ(static_cast<char>(a.view()[99]), 'p');
}

TEST(Value, MoveStealsHeap) {
  auto a = make(100, 'm');
  const std::byte* p = a.data();
  Value b = std::move(a);
  EXPECT_EQ(b.data(), p);  // heap pointer stolen, no copy
  EXPECT_EQ(b.size(), 100u);
}

TEST(Value, MoveInline) {
  auto a = make(10, 'i');
  Value b = std::move(a);
  EXPECT_EQ(b.size(), 10u);
  EXPECT_EQ(static_cast<char>(b.view()[0]), 'i');
}

TEST(Value, MoveAssignReleasesOld) {
  auto a = make(100, 'a');
  auto b = make(200, 'b');
  b = std::move(a);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(static_cast<char>(b.view()[0]), 'a');
}

TEST(Value, Equality) {
  EXPECT_EQ(make(10, 'x'), make(10, 'x'));
  EXPECT_FALSE(make(10, 'x') == make(10, 'y'));
  EXPECT_FALSE(make(10, 'x') == make(11, 'x'));
  EXPECT_EQ(Value{}, Value{});
}

TEST(Value, U64FieldAccess) {
  auto v = make(24, '\0');
  v.write_u64(0, 0xdeadbeefULL);
  v.write_u64(8, 42);
  v.write_u64(16, ~0ULL);
  EXPECT_EQ(v.read_u64(0), 0xdeadbeefULL);
  EXPECT_EQ(v.read_u64(8), 42u);
  EXPECT_EQ(v.read_u64(16), ~0ULL);
}

TEST(Value, AssignShrinkHeapToInline) {
  auto v = make(100, 'h');
  v.assign(std::as_bytes(std::span{"ab", 2}));
  EXPECT_TRUE(v.is_inline());
  EXPECT_EQ(v.size(), 2u);
}

TEST(Value, ClearReleases) {
  auto v = make(100);
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v.is_inline());
}

}  // namespace
}  // namespace rodain::storage
