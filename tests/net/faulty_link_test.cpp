// The fault-injecting link decorator: each fault type in isolation, the
// script hook, one-way partitions, and bit-for-bit determinism from the
// seed.
#include <gtest/gtest.h>

#include "rodain/net/faulty_link.hpp"

namespace rodain::net {
namespace {

std::vector<std::byte> make_frame(std::uint8_t tag, std::size_t size = 32) {
  std::vector<std::byte> f(size);
  for (std::size_t i = 0; i < size; ++i) {
    f[i] = static_cast<std::byte>(tag + i);
  }
  return f;
}

struct Rig {
  sim::Simulation sim;
  SimLink inner{sim, {}};
  std::unique_ptr<FaultyLink> link;
  std::vector<std::vector<std::byte>> at_b;
  std::vector<std::vector<std::byte>> at_a;

  explicit Rig(FaultyLink::Options options) {
    link = std::make_unique<FaultyLink>(sim, inner, options);
    link->end_b().set_message_handler(
        [this](std::vector<std::byte> f) { at_b.push_back(std::move(f)); });
    link->end_a().set_message_handler(
        [this](std::vector<std::byte> f) { at_a.push_back(std::move(f)); });
  }
};

TEST(FaultyLink, PassThroughWithoutFaults) {
  Rig rig({});
  for (std::uint8_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(rig.link->end_a().send(make_frame(i)).is_ok());
  }
  rig.sim.run();
  ASSERT_EQ(rig.at_b.size(), 5u);
  for (std::uint8_t i = 0; i < 5; ++i) EXPECT_EQ(rig.at_b[i], make_frame(i));
  EXPECT_EQ(rig.link->stats().forwarded, 5u);
  EXPECT_EQ(rig.link->stats().dropped, 0u);
}

TEST(FaultyLink, DropLosesFramesSilently) {
  FaultyLink::Options options;
  options.a_to_b.drop = 1.0;
  Rig rig(options);
  EXPECT_TRUE(rig.link->end_a().send(make_frame(1)).is_ok());  // sender: ok
  rig.sim.run();
  EXPECT_TRUE(rig.at_b.empty());
  EXPECT_EQ(rig.link->stats().dropped, 1u);
}

TEST(FaultyLink, CorruptFlipsExactlyOneBit) {
  FaultyLink::Options options;
  options.a_to_b.corrupt = 1.0;
  Rig rig(options);
  const auto original = make_frame(9);
  ASSERT_TRUE(rig.link->end_a().send(original).is_ok());
  rig.sim.run();
  ASSERT_EQ(rig.at_b.size(), 1u);
  int flipped_bits = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    auto diff = std::to_integer<unsigned>(rig.at_b[0][i] ^ original[i]);
    flipped_bits += __builtin_popcount(diff);
  }
  EXPECT_EQ(flipped_bits, 1);
  EXPECT_EQ(rig.link->stats().corrupted, 1u);
}

TEST(FaultyLink, DuplicateDeliversTwice) {
  FaultyLink::Options options;
  options.a_to_b.duplicate = 1.0;
  Rig rig(options);
  ASSERT_TRUE(rig.link->end_a().send(make_frame(3)).is_ok());
  rig.sim.run();
  ASSERT_EQ(rig.at_b.size(), 2u);
  EXPECT_EQ(rig.at_b[0], rig.at_b[1]);
  EXPECT_EQ(rig.link->stats().duplicated, 1u);
}

TEST(FaultyLink, ReorderSwapsAdjacentFrames) {
  FaultyLink::Options options;
  options.a_to_b.reorder = 1.0;
  Rig rig(options);
  ASSERT_TRUE(rig.link->end_a().send(make_frame(1)).is_ok());  // held
  ASSERT_TRUE(rig.link->end_a().send(make_frame(2)).is_ok());  // releases it
  rig.sim.run();
  ASSERT_EQ(rig.at_b.size(), 2u);
  EXPECT_EQ(rig.at_b[0], make_frame(2));
  EXPECT_EQ(rig.at_b[1], make_frame(1));
  EXPECT_GE(rig.link->stats().reordered, 1u);
}

TEST(FaultyLink, FlushTimerReleasesLoneHeldFrame) {
  FaultyLink::Options options;
  options.a_to_b.reorder = 1.0;
  options.reorder_flush = Duration::millis(3);
  Rig rig(options);
  ASSERT_TRUE(rig.link->end_a().send(make_frame(1)).is_ok());
  rig.sim.run();  // no successor ever arrives
  ASSERT_EQ(rig.at_b.size(), 1u);
  EXPECT_EQ(rig.at_b[0], make_frame(1));
  // Held for the flush timeout on top of the link's own latency.
  EXPECT_GE(rig.sim.now().us, 3000);
}

TEST(FaultyLink, DelayAddsExtraLatency) {
  FaultyLink::Options options;
  options.a_to_b.delay = 1.0;
  options.a_to_b.delay_min = Duration::millis(2);
  options.a_to_b.delay_max = Duration::millis(2);
  Rig rig(options);
  ASSERT_TRUE(rig.link->end_a().send(make_frame(1)).is_ok());
  rig.sim.run();
  ASSERT_EQ(rig.at_b.size(), 1u);
  // 2 ms injected + 500 us SimLink propagation.
  EXPECT_GE(rig.sim.now().us, 2500);
  EXPECT_EQ(rig.link->stats().delayed, 1u);
}

TEST(FaultyLink, OneWayPartitionDropsOnlyThatDirection) {
  Rig rig({});
  rig.link->set_partition(0, true);
  EXPECT_TRUE(rig.link->end_a().send(make_frame(1)).is_ok());  // blackholed
  EXPECT_TRUE(rig.link->end_b().send(make_frame(2)).is_ok());  // passes
  rig.sim.run();
  EXPECT_TRUE(rig.at_b.empty());
  ASSERT_EQ(rig.at_a.size(), 1u);
  EXPECT_EQ(rig.link->stats().partitioned, 1u);
  // Both ends still look connected: this is the asymmetric failure.
  EXPECT_TRUE(rig.link->end_a().connected());
  EXPECT_TRUE(rig.link->end_b().connected());

  rig.link->set_partition(0, false);
  EXPECT_TRUE(rig.link->end_a().send(make_frame(3)).is_ok());
  rig.sim.run();
  EXPECT_EQ(rig.at_b.size(), 1u);
}

TEST(FaultyLink, ScriptSeversAtExactFrame) {
  Rig rig({});
  rig.link->set_script([](const FrameInfo& f) {
    return f.direction == 0 && f.index == 2 ? ScriptAction::kSever
                                            : ScriptAction::kPass;
  });
  EXPECT_TRUE(rig.link->end_a().send(make_frame(0)).is_ok());
  EXPECT_TRUE(rig.link->end_a().send(make_frame(1)).is_ok());
  EXPECT_FALSE(rig.link->end_a().send(make_frame(2)).is_ok());  // severed here
  EXPECT_FALSE(rig.link->end_a().connected());
  rig.sim.run();
  EXPECT_EQ(rig.link->stats().severed, 1u);
  EXPECT_TRUE(rig.at_b.empty());  // in-flight frames died with the link

  rig.link->restore();
  rig.link->set_script({});
  EXPECT_TRUE(rig.link->end_a().send(make_frame(3)).is_ok());
  rig.sim.run();
  ASSERT_EQ(rig.at_b.size(), 1u);
  EXPECT_EQ(rig.at_b[0], make_frame(3));
}

TEST(FaultyLink, ScriptDropLosesExactFrame) {
  Rig rig({});
  rig.link->set_script([](const FrameInfo& f) {
    return f.index == 1 ? ScriptAction::kDrop : ScriptAction::kPass;
  });
  for (std::uint8_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(rig.link->end_a().send(make_frame(i)).is_ok());
  }
  rig.sim.run();
  ASSERT_EQ(rig.at_b.size(), 2u);
  EXPECT_EQ(rig.at_b[0], make_frame(0));
  EXPECT_EQ(rig.at_b[1], make_frame(2));
  EXPECT_EQ(rig.link->stats().script_dropped, 1u);
}

TEST(FaultyLink, DisabledLinkPassesEverythingThrough) {
  FaultyLink::Options options;
  options.a_to_b.drop = 1.0;
  Rig rig(options);
  rig.link->set_partition(0, true);
  rig.link->set_enabled(false);
  ASSERT_TRUE(rig.link->end_a().send(make_frame(1)).is_ok());
  rig.sim.run();
  ASSERT_EQ(rig.at_b.size(), 1u);
  EXPECT_EQ(rig.link->stats().dropped, 0u);
}

TEST(FaultyLink, DeterministicFromSeed) {
  auto run_once = [](std::uint64_t seed) {
    FaultyLink::Options options;
    options.seed = seed;
    options.a_to_b = {.drop = 0.2, .duplicate = 0.2, .corrupt = 0.2,
                      .reorder = 0.2, .delay = 0.3};
    options.b_to_a = {.drop = 0.1, .duplicate = 0.1, .corrupt = 0.1,
                      .reorder = 0.1, .delay = 0.2};
    Rig rig(options);
    for (std::uint8_t i = 0; i < 100; ++i) {
      (void)rig.link->end_a().send(make_frame(i));
      if (i % 3 == 0) (void)rig.link->end_b().send(make_frame(i, 16));
    }
    rig.sim.run();
    return std::tuple{rig.at_b, rig.at_a, rig.link->stats().forwarded,
                      rig.link->stats().dropped, rig.link->stats().corrupted};
  };
  EXPECT_EQ(run_once(1234), run_once(1234));
  // A different seed takes a different fault path.
  EXPECT_NE(run_once(1234), run_once(77));
}

}  // namespace
}  // namespace rodain::net
