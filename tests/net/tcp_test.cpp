#include "rodain/net/tcp.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <set>
#include <span>
#include <thread>

namespace rodain::net {
namespace {

using namespace rodain::literals;

struct Rendezvous {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::vector<std::byte>> frames;
  bool disconnected{false};

  void on_frame(std::vector<std::byte> f) {
    std::lock_guard lock(mu);
    frames.push_back(std::move(f));
    cv.notify_all();
  }
  bool wait_frames(std::size_t n, int ms = 2000) {
    std::unique_lock lock(mu);
    return cv.wait_for(lock, std::chrono::milliseconds(ms),
                       [&] { return frames.size() >= n; });
  }
  bool wait_disconnect(int ms = 2000) {
    std::unique_lock lock(mu);
    return cv.wait_for(lock, std::chrono::milliseconds(ms),
                       [&] { return disconnected; });
  }
};

std::vector<std::byte> bytes(std::string_view s) {
  auto span = std::as_bytes(std::span{s.data(), s.size()});
  return {span.begin(), span.end()};
}

struct Pair {
  std::unique_ptr<TcpServer> server;
  std::unique_ptr<TcpChannel> client;
  std::unique_ptr<TcpChannel> accepted;

  static Pair make() {
    Pair p;
    std::mutex mu;
    std::condition_variable cv;
    auto server = TcpServer::listen(0, [&](std::unique_ptr<TcpChannel> ch) {
      std::lock_guard lock(mu);
      p.accepted = std::move(ch);
      cv.notify_all();
    });
    EXPECT_TRUE(server.is_ok());
    p.server = std::move(server).value();
    auto client = TcpChannel::connect("127.0.0.1", p.server->port(), 2_s);
    EXPECT_TRUE(client.is_ok()) << client.status().to_string();
    p.client = std::move(client).value();
    std::unique_lock lock(mu);
    EXPECT_TRUE(cv.wait_for(lock, std::chrono::seconds(2),
                            [&] { return p.accepted != nullptr; }));
    return p;
  }
};

TEST(Tcp, ConnectAndExchangeFrames) {
  auto pair = Pair::make();
  Rendezvous server_side, client_side;
  pair.accepted->set_message_handler(
      [&](std::vector<std::byte> f) { server_side.on_frame(std::move(f)); });
  pair.client->set_message_handler(
      [&](std::vector<std::byte> f) { client_side.on_frame(std::move(f)); });
  pair.accepted->start();
  pair.client->start();

  ASSERT_TRUE(pair.client->send(bytes("hello mirror")));
  ASSERT_TRUE(server_side.wait_frames(1));
  EXPECT_EQ(server_side.frames[0], bytes("hello mirror"));

  ASSERT_TRUE(pair.accepted->send(bytes("ack")));
  ASSERT_TRUE(client_side.wait_frames(1));
  EXPECT_EQ(client_side.frames[0], bytes("ack"));
}

TEST(Tcp, ManyFramesInOrder) {
  auto pair = Pair::make();
  Rendezvous server_side;
  pair.accepted->set_message_handler(
      [&](std::vector<std::byte> f) { server_side.on_frame(std::move(f)); });
  pair.accepted->start();
  pair.client->start();

  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(pair.client->send(bytes("frame-" + std::to_string(i))));
  }
  ASSERT_TRUE(server_side.wait_frames(500, 5000));
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(server_side.frames[static_cast<std::size_t>(i)],
              bytes("frame-" + std::to_string(i)));
  }
}

TEST(Tcp, LargeFrame) {
  auto pair = Pair::make();
  Rendezvous server_side;
  pair.accepted->set_message_handler(
      [&](std::vector<std::byte> f) { server_side.on_frame(std::move(f)); });
  pair.accepted->start();
  pair.client->start();

  std::vector<std::byte> big(1 << 20);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<std::byte>(i);
  ASSERT_TRUE(pair.client->send(big));
  ASSERT_TRUE(server_side.wait_frames(1, 5000));
  EXPECT_EQ(server_side.frames[0], big);
}

TEST(Tcp, EmptyFrame) {
  auto pair = Pair::make();
  Rendezvous server_side;
  pair.accepted->set_message_handler(
      [&](std::vector<std::byte> f) { server_side.on_frame(std::move(f)); });
  pair.accepted->start();
  pair.client->start();
  ASSERT_TRUE(pair.client->send({}));
  ASSERT_TRUE(server_side.wait_frames(1));
  EXPECT_TRUE(server_side.frames[0].empty());
}

TEST(Tcp, DisconnectDetected) {
  auto pair = Pair::make();
  Rendezvous server_side;
  pair.accepted->set_message_handler([](std::vector<std::byte>) {});
  pair.accepted->set_disconnect_handler([&] {
    std::lock_guard lock(server_side.mu);
    server_side.disconnected = true;
    server_side.cv.notify_all();
  });
  pair.accepted->start();
  pair.client->start();

  pair.client->close();
  ASSERT_TRUE(server_side.wait_disconnect());
  EXPECT_FALSE(pair.accepted->connected() && false);  // handler fired

  // Sending on the closed side fails cleanly.
  auto s = pair.client->send(bytes("x"));
  EXPECT_EQ(s.code(), ErrorCode::kUnavailable);
}

TEST(Tcp, ConnectToNobodyFails) {
  auto result = TcpChannel::connect("127.0.0.1", 1, 200_ms);
  EXPECT_FALSE(result.is_ok());
}

TEST(Tcp, ServerPicksFreePort) {
  auto a = TcpServer::listen(0, [](std::unique_ptr<TcpChannel>) {});
  auto b = TcpServer::listen(0, [](std::unique_ptr<TcpChannel>) {});
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_NE(a.value()->port(), 0);
  EXPECT_NE(a.value()->port(), b.value()->port());
}

TEST(Tcp, ThreadedSendersInterleaveSafely) {
  auto pair = Pair::make();
  Rendezvous server_side;
  pair.accepted->set_message_handler(
      [&](std::vector<std::byte> f) { server_side.on_frame(std::move(f)); });
  pair.accepted->start();
  pair.client->start();

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 100; ++i) {
        (void)pair.client->send(bytes(std::to_string(t) + ":" + std::to_string(i)));
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_TRUE(server_side.wait_frames(400, 5000));
  // Frames arrive intact (no interleaved corruption) even if reordered
  // across threads.
  std::set<std::vector<std::byte>> expected;
  for (int t = 0; t < 4; ++t) {
    for (int i = 0; i < 100; ++i) {
      expected.insert(bytes(std::to_string(t) + ":" + std::to_string(i)));
    }
  }
  std::set<std::vector<std::byte>> got(server_side.frames.begin(),
                                       server_side.frames.end());
  EXPECT_EQ(got, expected);
}

}  // namespace
}  // namespace rodain::net
