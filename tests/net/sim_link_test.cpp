#include "rodain/net/sim_link.hpp"

#include <gtest/gtest.h>

#include <span>

namespace rodain::net {
namespace {

using namespace rodain::literals;

std::vector<std::byte> bytes(std::string_view s) {
  auto span = std::as_bytes(std::span{s.data(), s.size()});
  return {span.begin(), span.end()};
}

TEST(SimLink, DeliversAfterLatency) {
  sim::Simulation sim;
  SimLink::Options options;
  options.latency = 500_us;
  options.bandwidth_bytes_per_sec = 0;
  SimLink link(sim, options);

  TimePoint delivered_at{};
  std::vector<std::byte> got;
  link.end_b().set_message_handler([&](std::vector<std::byte> f) {
    delivered_at = sim.now();
    got = std::move(f);
  });
  ASSERT_TRUE(link.end_a().send(bytes("ping")));
  sim.run();
  EXPECT_EQ(delivered_at, TimePoint{500});
  EXPECT_EQ(got, bytes("ping"));
}

TEST(SimLink, DuplexAndOrdered) {
  sim::Simulation sim;
  SimLink link(sim, {});
  std::vector<std::string> at_b;
  std::vector<std::string> at_a;
  auto as_string = [](const std::vector<std::byte>& f) {
    return std::string(reinterpret_cast<const char*>(f.data()), f.size());
  };
  link.end_b().set_message_handler(
      [&](std::vector<std::byte> f) { at_b.push_back(as_string(f)); });
  link.end_a().set_message_handler(
      [&](std::vector<std::byte> f) { at_a.push_back(as_string(f)); });
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(link.end_a().send(bytes("a" + std::to_string(i))));
    ASSERT_TRUE(link.end_b().send(bytes("b" + std::to_string(i))));
  }
  sim.run();
  ASSERT_EQ(at_b.size(), 10u);
  ASSERT_EQ(at_a.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(at_b[static_cast<std::size_t>(i)], "a" + std::to_string(i));
    EXPECT_EQ(at_a[static_cast<std::size_t>(i)], "b" + std::to_string(i));
  }
}

TEST(SimLink, BandwidthSerializesLargeFrames) {
  sim::Simulation sim;
  SimLink::Options options;
  options.latency = 0_us;
  options.bandwidth_bytes_per_sec = 1e6;  // 1 byte/us
  SimLink link(sim, options);

  std::vector<TimePoint> deliveries;
  link.end_b().set_message_handler(
      [&](std::vector<std::byte>) { deliveries.push_back(sim.now()); });
  ASSERT_TRUE(link.end_a().send(std::vector<std::byte>(1000)));
  ASSERT_TRUE(link.end_a().send(std::vector<std::byte>(1000)));
  sim.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0], TimePoint{1000});
  EXPECT_EQ(deliveries[1], TimePoint{2000});  // queued behind the first
}

TEST(SimLink, SeverDropsInFlightAndNotifies) {
  sim::Simulation sim;
  SimLink link(sim, {});
  bool delivered = false;
  int disconnects = 0;
  link.end_b().set_message_handler([&](std::vector<std::byte>) { delivered = true; });
  link.end_a().set_disconnect_handler([&] { ++disconnects; });
  link.end_b().set_disconnect_handler([&] { ++disconnects; });

  ASSERT_TRUE(link.end_a().send(bytes("doomed")));
  link.sever();
  sim.run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(disconnects, 2);
  EXPECT_FALSE(link.end_a().connected());
  // Sending on a severed link fails.
  EXPECT_EQ(link.end_a().send(bytes("x")).code(), ErrorCode::kUnavailable);
}

TEST(SimLink, RestoreResumesDelivery) {
  sim::Simulation sim;
  SimLink link(sim, {});
  int delivered = 0;
  link.end_b().set_message_handler([&](std::vector<std::byte>) { ++delivered; });
  link.sever();
  link.restore();
  ASSERT_TRUE(link.end_a().send(bytes("back")));
  sim.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(link.frames_delivered(), 1u);
}

TEST(SimLink, JitterStaysWithinBound) {
  sim::Simulation sim;
  SimLink::Options options;
  options.latency = 100_us;
  options.jitter = 50_us;
  options.bandwidth_bytes_per_sec = 0;
  SimLink link(sim, options);
  std::vector<TimePoint> deliveries;
  link.end_b().set_message_handler(
      [&](std::vector<std::byte>) { deliveries.push_back(sim.now()); });
  TimePoint send_at = TimePoint::origin();
  for (int i = 0; i < 100; ++i) {
    sim.schedule_at(send_at, [&link] { (void)link.end_a().send({}); });
    send_at += 1_ms;
  }
  sim.run();
  ASSERT_EQ(deliveries.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) {
    const std::int64_t delay = deliveries[i].us - static_cast<std::int64_t>(i) * 1000;
    EXPECT_GE(delay, 100);
    EXPECT_LE(delay, 150);
  }
}

}  // namespace
}  // namespace rodain::net
