// HttpServer: ephemeral-port listen, request routing through the handler,
// method/path error responses, and the rt::Node endpoint wiring.
#include "rodain/net/http.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "rodain/obs/obs.hpp"
#include "rodain/rt/node.hpp"

namespace rodain::net {
namespace {

/// Blocking one-shot HTTP client: send `request` verbatim, read to EOF.
std::string http_roundtrip(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string get(std::uint16_t port, const std::string& path) {
  return http_roundtrip(port, "GET " + path + " HTTP/1.0\r\n\r\n");
}

TEST(Http, EphemeralPortAndHandlerRouting) {
  auto server = HttpServer::listen(0, [](const std::string& path) {
    HttpServer::Response r;
    r.body = "echo:" + path + "\n";
    return r;
  });
  ASSERT_TRUE(server.is_ok()) << server.status().to_string();
  const std::uint16_t port = server.value()->port();
  EXPECT_GT(port, 0);

  const std::string resp = get(port, "/hello");
  EXPECT_NE(resp.find("HTTP/1.0 200 OK"), std::string::npos) << resp;
  EXPECT_NE(resp.find("Content-Type: text/plain"), std::string::npos);
  EXPECT_NE(resp.find("Content-Length: 12"), std::string::npos);
  EXPECT_NE(resp.find("echo:/hello\n"), std::string::npos);
  // The server handles connections serially; a second request works.
  EXPECT_NE(get(port, "/again").find("echo:/again"), std::string::npos);
}

TEST(Http, QueryStringIsStripped) {
  auto server = HttpServer::listen(0, [](const std::string& path) {
    HttpServer::Response r;
    r.body = path;
    return r;
  });
  ASSERT_TRUE(server.is_ok());
  const std::string resp = get(server.value()->port(), "/metrics?x=1&y=2");
  EXPECT_NE(resp.find("/metrics"), std::string::npos) << resp;
  EXPECT_EQ(resp.find("x=1"), std::string::npos);
}

TEST(Http, NonGetIsRejectedWith405) {
  auto server = HttpServer::listen(0, [](const std::string&) {
    return HttpServer::Response{};
  });
  ASSERT_TRUE(server.is_ok());
  const std::string resp = http_roundtrip(
      server.value()->port(), "POST /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(resp.find("405"), std::string::npos) << resp;
}

TEST(Http, HandlerStatusPropagates) {
  auto server = HttpServer::listen(0, [](const std::string& path) {
    HttpServer::Response r;
    if (path != "/ok") {
      r.status = 404;
      r.body = "nope\n";
    }
    return r;
  });
  ASSERT_TRUE(server.is_ok());
  const std::uint16_t port = server.value()->port();
  EXPECT_NE(get(port, "/ok").find("200 OK"), std::string::npos);
  EXPECT_NE(get(port, "/missing").find("404 Not Found"), std::string::npos);
}

TEST(Http, NodeServesObservabilityEndpoints) {
  obs::ObsConfig obs_config;
  obs_config.enabled = true;
  obs::init(obs_config);
  obs::metrics().counter("http_test.marker").inc(3);

  rt::NodeConfig config;
  config.http_port = 0;  // pick a free port
  rt::Node node(config, "http-test-node");
  const std::uint16_t port = node.http_port();
  ASSERT_GT(port, 0);

  // Not serving yet: /healthz reports 503 with the role.
  std::string health = get(port, "/healthz");
  EXPECT_NE(health.find("503"), std::string::npos) << health;
  EXPECT_NE(health.find("\"serving\":false"), std::string::npos);

  node.start_primary(LogMode::kOff);
  health = get(port, "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos) << health;
  EXPECT_NE(health.find("\"serving\":true"), std::string::npos);
  EXPECT_NE(health.find("http-test-node"), std::string::npos);

  const std::string metrics = get(port, "/metrics");
  EXPECT_NE(metrics.find("rodain_http_test_marker 3"), std::string::npos)
      << metrics.substr(0, 400);
  const std::string vars = get(port, "/vars");
  EXPECT_NE(vars.find("\"counters\""), std::string::npos);
  const std::string trace = get(port, "/trace");
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  const std::string missing = get(port, "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);

  node.stop();

  obs_config.enabled = false;
  obs::init(obs_config);
}

}  // namespace
}  // namespace rodain::net
