// Unit tests of the engine state machine, driven directly (no simulator):
// deferred writes, read-your-own-write, log emission, restart budgets,
// abort rules and the installed low-water mark.
#include "rodain/engine/engine.hpp"

#include <gtest/gtest.h>

#include "rodain/workload/number_translation.hpp"

namespace rodain::engine {
namespace {

using namespace rodain::literals;

storage::Value val(std::string_view s) { return storage::Value{s}; }

struct Harness {
  storage::ObjectStore store{64};
  storage::BPlusTree index;
  log::MemoryLogStorage disk;
  log::LogWriter writer{LogMode::kDirectDisk, &disk, nullptr};
  std::vector<TxnId> durable;
  std::vector<TxnId> victims;
  std::unique_ptr<Engine> engine;
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  std::uint64_t next_id{1};

  explicit Harness(EngineConfig config = {}) {
    Engine::Hooks hooks;
    hooks.on_log_durable = [this](TxnId id) { durable.push_back(id); };
    hooks.on_victim_restart = [this](TxnId id) { victims.push_back(id); };
    engine = std::make_unique<Engine>(config, store, &index, writer,
                                      std::move(hooks));
  }

  txn::Transaction& begin(txn::TxnProgram program) {
    const TxnId id = next_id++;
    txns.push_back(std::make_unique<txn::Transaction>(
        id, id, std::move(program), TimePoint{0}, TimePoint::max()));
    engine->begin(*txns.back());
    return *txns.back();
  }

  /// Drive a transaction to a terminal action, returning it.
  StepAction run(txn::Transaction& t) {
    while (true) {
      const StepResult r = engine->step(t);
      switch (r.action) {
        case StepAction::kContinue:
        case StepAction::kRestarted:
        case StepAction::kWaitLogAck:  // memory log acks inline
          continue;
        default:
          return r.action;
      }
    }
  }
};

TEST(Engine, CommitInstallsDeferredWrites) {
  Harness h;
  h.store.upsert(1, val("old"), 0);

  txn::TxnProgram p;
  p.set_value(1, val("new"));
  txn::Transaction& t = h.begin(p);

  // The store is untouched until validation+write.
  EXPECT_EQ(h.engine->step(t).action, StepAction::kContinue);
  EXPECT_EQ(h.store.find(1)->value, val("old"));

  EXPECT_EQ(h.engine->step(t).action, StepAction::kWaitLogAck);
  EXPECT_EQ(h.store.find(1)->value, val("new"));
  ASSERT_EQ(h.durable.size(), 1u);

  EXPECT_EQ(h.engine->step(t).action, StepAction::kCommitted);
  EXPECT_EQ(t.outcome(), TxnOutcome::kCommitted);
}

TEST(Engine, RedoStreamHasAfterImagesThenCommit) {
  Harness h;
  h.store.upsert(1, val("a"), 0);
  h.store.upsert(2, val("b"), 0);
  txn::TxnProgram p;
  p.set_value(1, val("a2"));
  p.set_value(2, val("b2"));
  txn::Transaction& t = h.begin(p);
  ASSERT_EQ(h.run(t), StepAction::kCommitted);

  const auto& records = h.disk.records();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].type, log::RecordType::kWriteImage);
  EXPECT_EQ(records[0].after, val("a2"));
  EXPECT_EQ(records[1].type, log::RecordType::kWriteImage);
  EXPECT_TRUE(records[2].is_commit());
  EXPECT_EQ(records[2].write_count, 2u);
  EXPECT_EQ(records[2].seq, t.validation_seq());
}

TEST(Engine, ReadOnlyTxnStillEmitsCommitRecord) {
  // Paper §4: "the system generates a commit log record also for read-only
  // transactions".
  Harness h;
  h.store.upsert(1, val("x"), 0);
  txn::TxnProgram p;
  p.read(1);
  ASSERT_EQ(h.run(h.begin(p)), StepAction::kCommitted);
  ASSERT_EQ(h.disk.records().size(), 1u);
  EXPECT_TRUE(h.disk.records()[0].is_commit());
  EXPECT_EQ(h.disk.records()[0].write_count, 0u);
}

TEST(Engine, NoLogModeEmitsNothing) {
  EngineConfig config;
  Harness h(config);
  h.writer.set_mode(LogMode::kOff);
  h.store.upsert(1, val("x"), 0);
  txn::TxnProgram p;
  p.set_value(1, val("y"));
  ASSERT_EQ(h.run(h.begin(p)), StepAction::kCommitted);
  EXPECT_TRUE(h.disk.records().empty());
  EXPECT_EQ(h.store.find(1)->value, val("y"));
}

TEST(Engine, ReadYourOwnWrite) {
  EngineConfig config;
  config.capture_reads = true;
  Harness h(config);
  h.store.upsert(1, val("committed"), 0);
  txn::TxnProgram p;
  p.set_value(1, val("private"));
  p.read(1);
  txn::Transaction& t = h.begin(p);
  ASSERT_EQ(h.run(t), StepAction::kCommitted);
  ASSERT_EQ(t.captured_reads.size(), 1u);
  EXPECT_EQ(t.captured_reads[0], val("private"));
  // Reading a private copy adds no read-set entry (no conflict exists).
  EXPECT_TRUE(t.read_set().empty());
}

TEST(Engine, ReadKeyThroughIndex) {
  EngineConfig config;
  config.capture_reads = true;
  Harness h(config);
  h.store.upsert(42, val("subscriber"), 0);
  h.index.insert(storage::IndexKey::from_string("0800777"), 42);
  txn::TxnProgram p;
  p.read_key(storage::IndexKey::from_string("0800777"));
  txn::Transaction& t = h.begin(p);
  ASSERT_EQ(h.run(t), StepAction::kCommitted);
  ASSERT_EQ(t.captured_reads.size(), 1u);
  EXPECT_EQ(t.captured_reads[0], val("subscriber"));
  ASSERT_EQ(t.read_set().size(), 1u);
  EXPECT_EQ(t.read_set()[0].oid, 42u);
}

TEST(Engine, ReadKeyMissIsHarmless) {
  Harness h;
  txn::TxnProgram p;
  p.read_key(storage::IndexKey::from_string("no-such-number"));
  txn::Transaction& t = h.begin(p);
  ASSERT_EQ(h.run(t), StepAction::kCommitted);
  EXPECT_TRUE(t.read_set().empty());
}

TEST(Engine, AddToFieldReadModifyWrite) {
  Harness h;
  storage::Value counter{std::string_view{"\0\0\0\0\0\0\0\0", 8}};
  counter.write_u64(0, 40);
  h.store.upsert(1, counter, 0);
  txn::TxnProgram p;
  p.add_to_field(1, 0, 2);
  txn::Transaction& t = h.begin(p);
  ASSERT_EQ(h.run(t), StepAction::kCommitted);
  EXPECT_EQ(h.store.find(1)->value.read_u64(0), 42u);
  // Read-modify-write tracks the read for conflict detection.
  EXPECT_TRUE(t.in_read_set(1));
}

TEST(Engine, AddToFieldCreatesMissingObject) {
  Harness h;
  txn::TxnProgram p;
  p.add_to_field(7, 0, 5);
  ASSERT_EQ(h.run(h.begin(p)), StepAction::kCommitted);
  ASSERT_NE(h.store.find(7), nullptr);
  EXPECT_EQ(h.store.find(7)->value.read_u64(0), 5u);
}

TEST(Engine, ValidationSeqsAreDense) {
  Harness h;
  for (int i = 0; i < 5; ++i) {
    txn::TxnProgram p;
    p.set_value(static_cast<ObjectId>(i + 1), val("v"));
    txn::Transaction& t = h.begin(p);
    ASSERT_EQ(h.run(t), StepAction::kCommitted);
    EXPECT_EQ(t.validation_seq(), static_cast<ValidationTs>(i + 1));
  }
  EXPECT_EQ(h.engine->last_validation_seq(), 5u);
  EXPECT_EQ(h.engine->installed_low_water(), 5u);
}

TEST(Engine, MaxRestartsBudgetTerminatesConflicts) {
  EngineConfig config;
  config.max_restarts = 2;
  Harness h(config);
  h.store.upsert(1, val("x"), 0);

  // Interleave: reader starts, writer commits between the reader's two
  // reads of the same object -> re-read mismatch -> restart. Repeat until
  // the budget is gone.
  txn::TxnProgram reader_program;
  reader_program.read(1);
  reader_program.read(1);
  txn::Transaction& reader = h.begin(reader_program);

  int terminal_restarts = 0;
  for (int round = 0; round < 10; ++round) {
    StepResult r = h.engine->step(reader);  // first read
    if (r.action == StepAction::kAborted) break;
    ASSERT_EQ(r.action, StepAction::kContinue);

    txn::TxnProgram writer_program;
    writer_program.set_value(1, val("v" + std::to_string(round)));
    txn::Transaction& writer = h.begin(writer_program);
    ASSERT_EQ(h.run(writer), StepAction::kCommitted);

    r = h.engine->step(reader);  // second read observes a newer version
    if (r.action == StepAction::kAborted) {
      EXPECT_EQ(reader.outcome(), TxnOutcome::kConflictAborted);
      terminal_restarts = reader.restarts();
      break;
    }
    ASSERT_EQ(r.action, StepAction::kRestarted);
  }
  EXPECT_EQ(terminal_restarts, 2);
}

TEST(Engine, AbortDiscardsWithoutSideEffects) {
  Harness h;
  h.store.upsert(1, val("keep"), 0);
  txn::TxnProgram p;
  p.set_value(1, val("discard"));
  p.read(1);
  txn::Transaction& t = h.begin(p);
  ASSERT_EQ(h.engine->step(t).action, StepAction::kContinue);  // private write
  ASSERT_TRUE(h.engine->can_abort(t));
  h.engine->abort(t, TxnOutcome::kMissedDeadline);
  EXPECT_EQ(t.phase(), txn::Phase::kAborted);
  EXPECT_EQ(t.outcome(), TxnOutcome::kMissedDeadline);
  // Deferred write discarded, nothing logged, no engine residue.
  EXPECT_EQ(h.store.find(1)->value, val("keep"));
  EXPECT_TRUE(h.disk.records().empty());
  EXPECT_EQ(h.engine->find(t.id()), nullptr);
}

TEST(Engine, CannotAbortAfterValidation) {
  Harness h;
  // A writer whose log ack is withheld: park it in kWaitLogAck.
  log::MemoryLogStorage unused;
  struct NullShipper : log::Shipper {
    void ship(std::span<const log::Record>) override {}
  } shipper;
  h.writer.set_shipper(&shipper);
  h.writer.set_mode(LogMode::kMirror);  // acks never arrive

  txn::TxnProgram p;
  p.set_value(1, val("w"));
  txn::Transaction& t = h.begin(p);
  ASSERT_EQ(h.engine->step(t).action, StepAction::kContinue);
  ASSERT_EQ(h.engine->step(t).action, StepAction::kWaitLogAck);
  EXPECT_EQ(t.phase(), txn::Phase::kWaitLogAck);
  EXPECT_FALSE(h.engine->can_abort(t));
}

TEST(Engine, InstalledLowWaterTracksGaps) {
  Harness h;
  EXPECT_EQ(h.engine->installed_low_water(), 0u);
  h.engine->set_next_validation_seq(10);
  EXPECT_EQ(h.engine->installed_low_water(), 9u);
  txn::TxnProgram p;
  p.set_value(1, val("v"));
  ASSERT_EQ(h.run(h.begin(p)), StepAction::kCommitted);
  EXPECT_EQ(h.engine->installed_low_water(), 10u);
}

TEST(Engine, CostsChargedPerStep) {
  EngineConfig config;
  config.costs.txn_fixed = 100_us;
  config.costs.per_read = 10_us;
  config.costs.per_update = 20_us;
  config.costs.validate = 5_us;
  config.costs.per_install = 3_us;
  config.costs.per_log_marshal = 2_us;
  config.costs.commit_finalize = 7_us;
  Harness h(config);
  h.store.upsert(1, val("x"), 0);

  txn::TxnProgram p;
  p.read(1);
  p.set_value(1, val("y"));
  txn::Transaction& t = h.begin(p);

  StepResult r = h.engine->step(t);  // first read: fixed + read
  EXPECT_EQ(r.cost, 110_us);
  r = h.engine->step(t);  // update
  EXPECT_EQ(r.cost, 20_us);
  r = h.engine->step(t);  // validate + install 1 + marshal 2 records
  EXPECT_EQ(r.action, StepAction::kWaitLogAck);
  EXPECT_EQ(r.cost, 5_us + 3_us + 2_us * 2);
  r = h.engine->step(t);  // finalize
  EXPECT_EQ(r.action, StepAction::kCommitted);
  EXPECT_EQ(r.cost, 7_us);
}

}  // namespace
}  // namespace rodain::engine
