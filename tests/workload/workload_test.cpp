#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "rodain/exp/session.hpp"
#include "rodain/workload/calibration.hpp"
#include "rodain/workload/trace.hpp"

namespace rodain::workload {
namespace {

using namespace rodain::literals;

TEST(NumberTranslation, LoadDatabasePopulatesStoreAndIndex) {
  DatabaseConfig config;
  config.num_objects = 500;
  storage::ObjectStore store(500);
  storage::BPlusTree index;
  load_database(config, store, index);
  EXPECT_EQ(store.size(), 500u);
  EXPECT_EQ(index.size(), 500u);
  // Every number resolves to its subscriber.
  for (std::size_t i = 0; i < 500; i += 97) {
    auto oid = index.find(number_for(i));
    ASSERT_TRUE(oid.has_value()) << i;
    EXPECT_EQ(*oid, oid_for(i));
    const auto* rec = store.find(*oid);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->value.read_u64(kCounterOffset), 0u);
    EXPECT_LT(rec->value.read_u64(kRoutingOffset), 500u);
  }
}

TEST(NumberTranslation, LoadIsDeterministic) {
  DatabaseConfig config;
  config.num_objects = 100;
  storage::ObjectStore a(100), b(100);
  storage::BPlusTree ia, ib;
  load_database(config, a, ia);
  load_database(config, b, ib);
  a.for_each([&](ObjectId id, const storage::ObjectRecord& rec) {
    ASSERT_NE(b.find(id), nullptr);
    EXPECT_EQ(b.find(id)->value, rec.value);
  });
}

TEST(NumberTranslation, NumbersAreDistinctAndOrdered) {
  EXPECT_LT(number_for(1), number_for(2));
  EXPECT_LT(number_for(99), number_for(100));
  EXPECT_FALSE(number_for(7) == number_for(8));
}

TEST(TxnGenerator, RespectsWriteFraction) {
  DatabaseConfig db;
  db.num_objects = 1000;
  WorkloadConfig w = PaperSetup::workload(0.3);
  TxnGenerator generator(db, w, Rng(5));
  int writes = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    writes += (generator.next().num_updates() > 0);
  }
  EXPECT_NEAR(static_cast<double>(writes) / n, 0.3, 0.03);
}

TEST(TxnGenerator, ShapesMatchThePaper) {
  DatabaseConfig db;
  db.num_objects = 1000;
  WorkloadConfig w = PaperSetup::workload(1.0);
  TxnGenerator generator(db, w, Rng(6));
  for (int i = 0; i < 100; ++i) {
    txn::TxnProgram p = generator.next();
    EXPECT_EQ(p.num_reads(), 4u);     // reads a few objects
    EXPECT_EQ(p.num_updates(), 2u);   // updates some of them
    EXPECT_EQ(p.relative_deadline, 150_ms);
    EXPECT_EQ(p.criticality, Criticality::kFirm);
  }
  WorkloadConfig r = PaperSetup::workload(0.0);
  TxnGenerator read_generator(db, r, Rng(7));
  EXPECT_EQ(read_generator.next().relative_deadline, 50_ms);
}

TEST(TxnGenerator, DistinctSubscribersWithinTxn) {
  DatabaseConfig db;
  db.num_objects = 8;  // tiny: collisions would be frequent if allowed
  WorkloadConfig w = PaperSetup::workload(0.0);
  w.use_index = false;
  TxnGenerator generator(db, w, Rng(8));
  for (int i = 0; i < 200; ++i) {
    txn::TxnProgram p = generator.next();
    std::set<ObjectId> seen;
    for (const txn::Op& op : p.ops) {
      if (const auto* read = std::get_if<txn::ReadOp>(&op)) {
        EXPECT_TRUE(seen.insert(read->oid).second) << "duplicate in txn " << i;
      }
    }
  }
}

TEST(TxnGenerator, NonRtFractionProducesNonRtTxns) {
  DatabaseConfig db;
  db.num_objects = 100;
  WorkloadConfig w = PaperSetup::workload(0.5);
  w.nonrt_fraction = 0.2;
  TxnGenerator generator(db, w, Rng(9));
  int nonrt = 0;
  for (int i = 0; i < 2000; ++i) {
    nonrt += (generator.next().criticality == Criticality::kNonRealTime);
  }
  EXPECT_NEAR(nonrt / 2000.0, 0.2, 0.03);
}

TEST(Trace, PoissonArrivalRateApproximatelyCorrect) {
  DatabaseConfig db;
  db.num_objects = 1000;
  Trace trace = Trace::generate(db, PaperSetup::workload(0.5), 200.0, 4000, 11);
  EXPECT_EQ(trace.size(), 4000u);
  const double rate = 4000.0 / trace.duration().to_seconds();
  EXPECT_NEAR(rate, 200.0, 10.0);
  // Offsets are non-decreasing.
  for (std::size_t i = 1; i < trace.entries().size(); ++i) {
    EXPECT_LE(trace.entries()[i - 1].offset, trace.entries()[i].offset);
  }
}

TEST(Trace, GenerationIsDeterministicInSeed) {
  DatabaseConfig db;
  db.num_objects = 100;
  Trace a = Trace::generate(db, PaperSetup::workload(0.5), 100.0, 100, 42);
  Trace b = Trace::generate(db, PaperSetup::workload(0.5), 100.0, 100, 42);
  Trace c = Trace::generate(db, PaperSetup::workload(0.5), 100.0, 100, 43);
  ByteWriter wa, wb, wc;
  a.encode(wa);
  b.encode(wb);
  c.encode(wc);
  EXPECT_TRUE(std::equal(wa.view().begin(), wa.view().end(), wb.view().begin(),
                         wb.view().end()));
  EXPECT_FALSE(std::equal(wa.view().begin(), wa.view().end(), wc.view().begin(),
                          wc.view().end()));
}

TEST(Trace, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "rodain_trace_test.bin").string();
  DatabaseConfig db;
  db.num_objects = 200;
  Trace original = Trace::generate(db, PaperSetup::workload(0.7), 150.0, 300, 3);
  ASSERT_TRUE(original.save(path));

  auto loaded = Trace::load(path);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  ASSERT_EQ(loaded.value().size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    const TraceEntry& a = original.entries()[i];
    const TraceEntry& b = loaded.value().entries()[i];
    EXPECT_EQ(a.offset, b.offset) << i;
    EXPECT_EQ(a.program.ops.size(), b.program.ops.size()) << i;
    EXPECT_EQ(a.program.relative_deadline, b.program.relative_deadline) << i;
  }
  std::filesystem::remove(path);
}

TEST(Trace, CorruptFileRejected) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "rodain_trace_bad.bin").string();
  DatabaseConfig db;
  db.num_objects = 100;
  Trace t = Trace::generate(db, PaperSetup::workload(0.5), 100.0, 50, 1);
  ASSERT_TRUE(t.save(path));
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    std::fseek(f, 100, SEEK_SET);
    std::fputc(0x7f, f);
    std::fclose(f);
  }
  auto loaded = Trace::load(path);
  ASSERT_FALSE(loaded.is_ok());
  EXPECT_EQ(loaded.status().code(), ErrorCode::kCorruption);
  std::filesystem::remove(path);
}

TEST(Session, DeterministicInSeed) {
  exp::SessionConfig config;
  config.cluster = PaperSetup::two_node(true);
  config.database = PaperSetup::database();
  config.database.num_objects = 1000;
  config.cluster.node.store_capacity_hint = 1000;
  config.workload = PaperSetup::workload(0.5);
  config.arrival_rate_tps = 250;
  config.txn_count = 800;
  config.seed = 77;
  auto a = exp::run_session(config);
  auto b = exp::run_session(config);
  EXPECT_EQ(a.counters.committed, b.counters.committed);
  EXPECT_EQ(a.counters.missed_deadline, b.counters.missed_deadline);
  EXPECT_EQ(a.counters.overload_rejected, b.counters.overload_rejected);
  EXPECT_EQ(a.virtual_time, b.virtual_time);

  config.seed = 78;
  auto c = exp::run_session(config);
  // Different seed, (almost surely) different trajectory.
  EXPECT_NE(a.counters.committed + a.counters.missed_deadline * 1000,
            c.counters.committed + c.counters.missed_deadline * 1000);
}

}  // namespace
}  // namespace rodain::workload
