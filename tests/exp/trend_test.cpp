// Bench trend gate: JSON parsing, report flattening, tolerance matching,
// and regression comparison against committed baselines.
#include "rodain/exp/trend.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace rodain::exp::trend {
namespace {

JsonValue parse_ok(std::string_view text) {
  auto parsed = parse_json(text);
  EXPECT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  return parsed.is_ok() ? std::move(parsed).value() : JsonValue{};
}

TEST(TrendJson, ParsesScalarsArraysObjects) {
  const JsonValue v = parse_ok(
      R"({"name":"x","n":-2.5,"ok":true,"none":null,)"
      R"("arr":[1,2,3],"nested":{"k":"v\n"}})");
  ASSERT_EQ(v.type, JsonValue::Type::kObject);
  ASSERT_NE(v.find("name"), nullptr);
  EXPECT_EQ(v.find("name")->string, "x");
  EXPECT_DOUBLE_EQ(v.find("n")->number, -2.5);
  EXPECT_TRUE(v.find("ok")->boolean);
  EXPECT_EQ(v.find("none")->type, JsonValue::Type::kNull);
  ASSERT_EQ(v.find("arr")->array.size(), 3u);
  EXPECT_DOUBLE_EQ(v.find("arr")->array[1].number, 2.0);
  EXPECT_EQ(v.find("nested")->find("k")->string, "v\n");
}

TEST(TrendJson, DecodesUnicodeEscapesToUtf8) {
  // Regression: \uXXXX used to decode to '?', so a baseline whose label
  // round-tripped through an escape ("C5 µs") never compared equal to
  // the literal UTF-8 form a fresh bench run emits — the gate silently
  // reported the field as missing instead of comparing it.
  const JsonValue v = parse_ok(
      R"({"ascii":"\u0041\u0042","two":"\u00b5s","three":"a\u2192b"})");
  EXPECT_EQ(v.find("ascii")->string, "AB");
  EXPECT_EQ(v.find("two")->string, "\xC2\xB5s");       // U+00B5 micro sign
  EXPECT_EQ(v.find("three")->string, "a\xE2\x86\x92" "b");  // U+2192 arrow
}

TEST(TrendJson, EscapedBaselineLabelMatchesLiteralCurrentLabel) {
  const JsonValue baseline = parse_ok(
      R"({"bench":"b","results":[{"label":"p99 \u00b5s","v":1.0}]})");
  const JsonValue current = parse_ok(
      "{\"bench\":\"b\",\"results\":[{\"label\":\"p99 \xC2\xB5s\",\"v\":2.0}]}");
  const auto base_flat = flatten_report(baseline);
  const auto cur_flat = flatten_report(current);
  ASSERT_EQ(base_flat.size(), 1u);
  ASSERT_EQ(cur_flat.count(base_flat.begin()->first), 1u);
}

TEST(TrendJson, RejectsBadUnicodeEscapes) {
  EXPECT_FALSE(parse_json(R"({"k":"\u12"})").is_ok());    // truncated
  EXPECT_FALSE(parse_json(R"({"k":"\u12zq"})").is_ok());  // bad hex digit
  EXPECT_FALSE(parse_json(R"({"k":"\ud800"})").is_ok());  // lone surrogate
}

TEST(TrendJson, RejectsMalformedDocuments) {
  EXPECT_FALSE(parse_json("{\"a\":").is_ok());
  EXPECT_FALSE(parse_json("[1,2,]").is_ok());
  EXPECT_FALSE(parse_json("{\"a\":1} trailing").is_ok());
  EXPECT_FALSE(parse_json("nope").is_ok());
}

TEST(TrendFlatten, ReportScalarsAndLabeledResults) {
  const JsonValue report = parse_ok(R"({
    "bench": "failover",
    "git_describe": "v1",
    "total_ms": 42.5,
    "results": [
      {"label": "C1 kill", "downtime_ms": 12.0, "note": "text ignored"},
      {"label": "C2 restart", "downtime_ms": 7.0, "ttfc_ms": 3.5}
    ]
  })");
  const auto flat = flatten_report(report);
  EXPECT_DOUBLE_EQ(flat.at("failover.total_ms"), 42.5);
  EXPECT_DOUBLE_EQ(flat.at("failover.C1 kill.downtime_ms"), 12.0);
  EXPECT_DOUBLE_EQ(flat.at("failover.C2 restart.ttfc_ms"), 3.5);
  EXPECT_EQ(flat.count("failover.git_describe"), 0u);  // strings skipped
  EXPECT_EQ(flat.count("failover.C1 kill.note"), 0u);
}

TEST(TrendTolerance, ExactAndWildcardMatch) {
  const JsonValue doc = parse_ok(R"({"fields": {
    "b.case.downtime_ms": {"rel": 0.1, "direction": "up"},
    "b.*.lost_txns": {"abs": 0.5, "direction": "up"},
    "b.total_ms": {"rel": 0.2}
  }})");
  auto parsed = parse_tolerances(doc);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const auto& tol = parsed.value();

  const Tolerance* exact = match_tolerance(tol, "b.case.downtime_ms");
  ASSERT_NE(exact, nullptr);
  EXPECT_DOUBLE_EQ(exact->rel, 0.1);
  EXPECT_EQ(exact->direction, Tolerance::Direction::kUp);

  // "b.<any label>.lost_txns" matches through the wildcard.
  EXPECT_NE(match_tolerance(tol, "b.C5 crash mid-batch.lost_txns"), nullptr);
  EXPECT_EQ(match_tolerance(tol, "b.case.other_field"), nullptr);
  EXPECT_EQ(match_tolerance(tol, "b.total_ms")->direction,
            Tolerance::Direction::kBoth);
}

TEST(TrendTolerance, RejectsBadDirection) {
  const JsonValue doc =
      parse_ok(R"({"fields": {"a.b": {"rel": 0.1, "direction": "sideways"}}})");
  EXPECT_FALSE(parse_tolerances(doc).is_ok());
}

std::map<std::string, Tolerance> one_tolerance(
    const std::string& key, double rel, double abs,
    Tolerance::Direction dir) {
  std::map<std::string, Tolerance> tol;
  Tolerance t;
  t.rel = rel;
  t.abs = abs;
  t.direction = dir;
  tol[key] = t;
  return tol;
}

TEST(TrendCompare, WithinToleranceAndRegression) {
  const std::map<std::string, double> baseline{{"b.x.ms", 100.0}};
  const auto tol = one_tolerance("b.x.ms", 0.10, 0.0,
                                 Tolerance::Direction::kUp);
  // +9% is inside the 10% band.
  EXPECT_TRUE(compare_reports(baseline, {{"b.x.ms", 109.0}}, tol).ok);
  // +15% regresses.
  const TrendResult bad = compare_reports(baseline, {{"b.x.ms", 115.0}}, tol);
  EXPECT_FALSE(bad.ok);
  ASSERT_EQ(bad.compared.size(), 1u);
  EXPECT_TRUE(bad.compared[0].regressed);
  // direction=up: an improvement (lower) never fails.
  EXPECT_TRUE(compare_reports(baseline, {{"b.x.ms", 1.0}}, tol).ok);
}

TEST(TrendCompare, DirectionDownAndBoth) {
  const std::map<std::string, double> baseline{{"b.tput", 1000.0}};
  const auto down = one_tolerance("b.tput", 0.10, 0.0,
                                  Tolerance::Direction::kDown);
  EXPECT_TRUE(compare_reports(baseline, {{"b.tput", 950.0}}, down).ok);
  EXPECT_FALSE(compare_reports(baseline, {{"b.tput", 800.0}}, down).ok);
  EXPECT_TRUE(compare_reports(baseline, {{"b.tput", 2000.0}}, down).ok);

  const auto both = one_tolerance("b.tput", 0.0, 50.0,
                                  Tolerance::Direction::kBoth);
  EXPECT_TRUE(compare_reports(baseline, {{"b.tput", 1049.0}}, both).ok);
  EXPECT_FALSE(compare_reports(baseline, {{"b.tput", 1051.0}}, both).ok);
  EXPECT_FALSE(compare_reports(baseline, {{"b.tput", 949.0}}, both).ok);
}

TEST(TrendCompare, MissingGatedFieldIsARegression) {
  const std::map<std::string, double> baseline{{"b.x.ms", 10.0}};
  const auto tol =
      one_tolerance("b.x.ms", 0.5, 0.0, Tolerance::Direction::kUp);
  const TrendResult r = compare_reports(baseline, {}, tol);
  EXPECT_FALSE(r.ok);
  ASSERT_EQ(r.compared.size(), 1u);
  EXPECT_TRUE(r.compared[0].missing);
}

TEST(TrendCompare, UngatedFieldsAreIgnored) {
  // A wildly different ungated field must not trip the gate.
  const std::map<std::string, double> baseline{{"b.x.ms", 10.0},
                                               {"b.noise", 1.0}};
  const std::map<std::string, double> current{{"b.x.ms", 10.0},
                                              {"b.noise", 99999.0}};
  const auto tol =
      one_tolerance("b.x.ms", 0.1, 0.0, Tolerance::Direction::kUp);
  EXPECT_TRUE(compare_reports(baseline, current, tol).ok);
}

class TrendDirsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() / "rodain_trend_test";
    std::filesystem::remove_all(root_);
    base_ = root_ / "baseline";
    cur_ = root_ / "current";
    std::filesystem::create_directories(base_);
    std::filesystem::create_directories(cur_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  static void write(const std::filesystem::path& p, const std::string& text) {
    std::ofstream out(p);
    out << text;
  }

  std::filesystem::path root_, base_, cur_;
};

TEST_F(TrendDirsTest, CheckTrendPassesAndFails) {
  write(base_ / "BENCH_failover.json",
        R"({"bench":"failover","results":[{"label":"C1","ms":10.0}]})");
  write(root_ / "tolerances.json",
        R"({"fields":{"failover.C1.ms":{"rel":0.2,"direction":"up"}}})");

  write(cur_ / "BENCH_failover.json",
        R"({"bench":"failover","results":[{"label":"C1","ms":11.0}]})");
  auto ok = check_trend(base_.string(), cur_.string(),
                        (root_ / "tolerances.json").string());
  ASSERT_TRUE(ok.is_ok()) << ok.status().to_string();
  EXPECT_TRUE(ok.value().ok);

  write(cur_ / "BENCH_failover.json",
        R"({"bench":"failover","results":[{"label":"C1","ms":20.0}]})");
  auto bad = check_trend(base_.string(), cur_.string(),
                         (root_ / "tolerances.json").string());
  ASSERT_TRUE(bad.is_ok());
  EXPECT_FALSE(bad.value().ok);
}

TEST_F(TrendDirsTest, MissingCurrentBenchFileFailsTheGate) {
  write(base_ / "BENCH_failover.json", R"({"bench":"failover","x":1.0})");
  write(root_ / "tolerances.json",
        R"({"fields":{"failover.x":{"rel":0.1}}})");
  auto r = check_trend(base_.string(), cur_.string(),
                       (root_ / "tolerances.json").string());
  ASSERT_TRUE(r.is_ok());
  EXPECT_FALSE(r.value().ok);
  EXPECT_FALSE(r.value().notes.empty());
}

TEST_F(TrendDirsTest, EmptyBaselineDirIsAnError) {
  write(root_ / "tolerances.json", R"({"fields":{}})");
  EXPECT_FALSE(check_trend(base_.string(), cur_.string(),
                           (root_ / "tolerances.json").string())
                   .is_ok());
}

}  // namespace
}  // namespace rodain::exp::trend
