#include "rodain/txn/program.hpp"

#include <gtest/gtest.h>

#include "rodain/txn/transaction.hpp"

namespace rodain::txn {
namespace {

using namespace rodain::literals;

TEST(TxnProgram, BuilderComposesOps) {
  TxnProgram p;
  p.read(1)
      .read_key(storage::IndexKey::from_string("0800"))
      .add_to_field(2, 8, 5)
      .set_value(3, storage::Value{std::string_view{"x"}})
      .compute(2_ms)
      .with_deadline(75_ms)
      .with_criticality(Criticality::kSoft);
  EXPECT_EQ(p.ops.size(), 5u);
  EXPECT_EQ(p.num_reads(), 2u);
  EXPECT_EQ(p.num_updates(), 2u);
  EXPECT_EQ(p.relative_deadline, 75_ms);
  EXPECT_EQ(p.criticality, Criticality::kSoft);
}

TEST(TxnProgram, Defaults) {
  TxnProgram p;
  EXPECT_EQ(p.criticality, Criticality::kFirm);
  EXPECT_EQ(p.relative_deadline, 50_ms);
  EXPECT_TRUE(p.ops.empty());
}

TEST(TsInterval, StartsFull) {
  TsInterval iv;
  EXPECT_FALSE(iv.empty());
  EXPECT_EQ(iv.lo, 1u);
  EXPECT_EQ(iv.hi, TsInterval::kInf);
}

TEST(TsInterval, AfterRaisesLowerBound) {
  TsInterval iv;
  iv.after(100);
  EXPECT_EQ(iv.lo, 101u);
  iv.after(50);  // weaker constraint: no effect
  EXPECT_EQ(iv.lo, 101u);
}

TEST(TsInterval, BeforeLowersUpperBound) {
  TsInterval iv;
  iv.before(100);
  EXPECT_EQ(iv.hi, 99u);
  iv.before(200);
  EXPECT_EQ(iv.hi, 99u);
}

TEST(TsInterval, EmptyWhenCrossed) {
  TsInterval iv;
  iv.after(100);
  iv.before(100);
  EXPECT_TRUE(iv.empty());
}

TEST(TsInterval, BoundaryGuards) {
  TsInterval iv;
  iv.before(0);  // "before the beginning of time"
  EXPECT_TRUE(iv.empty());
  TsInterval iv2;
  iv2.after(TsInterval::kInf);
  EXPECT_TRUE(iv2.empty());
}

TEST(Transaction, PriorityKeyReflectsAttributes) {
  TxnProgram p;
  p.with_criticality(Criticality::kFirm);
  Transaction t(7, 3, p, TimePoint{100}, TimePoint{5100});
  const PriorityKey key = t.priority();
  EXPECT_EQ(key.crit, Criticality::kFirm);
  EXPECT_EQ(key.deadline, TimePoint{5100});
  EXPECT_EQ(key.seq, 3u);
}

TEST(Transaction, ReadSetDedupsKeepsFirstObservation) {
  Transaction t(1, 1, {}, {}, {});
  t.note_read(5, 100);
  t.note_read(5, 999);  // second observation ignored
  t.note_read(6, 200);
  ASSERT_EQ(t.read_set().size(), 2u);
  EXPECT_EQ(t.read_set()[0].observed_wts, 100u);
  EXPECT_TRUE(t.in_read_set(5));
  EXPECT_FALSE(t.in_read_set(7));
}

TEST(Transaction, WriteCopyClonesOnce) {
  Transaction t(1, 1, {}, {}, {});
  storage::Value base{std::string_view{"base"}};
  storage::Value& copy = t.write_copy(9, base);
  EXPECT_EQ(copy, base);
  copy = storage::Value{std::string_view{"mutated"}};
  // Second access returns the same private copy, not a fresh clone.
  EXPECT_EQ(t.write_copy(9, base), storage::Value{std::string_view{"mutated"}});
  EXPECT_TRUE(t.in_write_set(9));
  ASSERT_NE(t.find_write(9), nullptr);
  EXPECT_EQ(t.find_write(10), nullptr);
}

TEST(Transaction, RestartResetsExecutionState) {
  TxnProgram p;
  p.read(1).add_to_field(2, 0, 1);
  Transaction t(1, 1, p, TimePoint{0}, TimePoint{1000});
  t.note_read(1, 5);
  t.write_copy(2, storage::Value{});
  t.advance_pc();
  t.advance_pc();
  t.interval().after(100);
  t.set_validated(7, 7000);
  t.set_phase(Phase::kValidating);
  t.captured_reads.emplace_back();

  t.prepare_restart();

  EXPECT_EQ(t.phase(), Phase::kReadPhase);
  EXPECT_EQ(t.pc(), 0u);
  EXPECT_TRUE(t.read_set().empty());
  EXPECT_TRUE(t.write_set().empty());
  EXPECT_FALSE(t.interval().empty());
  EXPECT_EQ(t.interval().lo, 1u);
  EXPECT_EQ(t.validation_seq(), kInvalidValidationTs);
  EXPECT_TRUE(t.captured_reads.empty());
  EXPECT_EQ(t.restarts(), 1);
  // Identity and deadline survive the restart.
  EXPECT_EQ(t.id(), 1u);
  EXPECT_EQ(t.deadline(), TimePoint{1000});
}

TEST(PriorityKeyOrdering, CriticalityDominatesDeadline) {
  const PriorityKey firm{Criticality::kFirm, TimePoint{999999}, 2};
  const PriorityKey soft{Criticality::kSoft, TimePoint{1}, 1};
  const PriorityKey nonrt{Criticality::kNonRealTime, TimePoint{1}, 1};
  EXPECT_TRUE(firm.higher_than(soft));
  EXPECT_TRUE(soft.higher_than(nonrt));
  EXPECT_FALSE(nonrt.higher_than(firm));
}

TEST(PriorityKeyOrdering, EdfWithinClassAndFifoTieBreak) {
  const PriorityKey early{Criticality::kFirm, TimePoint{100}, 9};
  const PriorityKey late{Criticality::kFirm, TimePoint{200}, 1};
  EXPECT_TRUE(early.higher_than(late));
  const PriorityKey first{Criticality::kFirm, TimePoint{100}, 1};
  const PriorityKey second{Criticality::kFirm, TimePoint{100}, 2};
  EXPECT_TRUE(first.higher_than(second));
  EXPECT_FALSE(first.higher_than(first));
}

}  // namespace
}  // namespace rodain::txn
