// rodain_log_dump — print a redo log in human-readable form.
//
//   rodain_log_dump <log-file-or-segment-dir> [--stats]
//
// The paper (§3) notes the stored logs can be used "for, for example,
// off-line analysis of the database usage" — this is that tool. A
// directory argument is treated as a segmented log: the per-segment
// inventory is printed first, then the concatenated records. With
// --stats it prints only the aggregate: record counts, committed vs open
// transactions, seq range, torn-tail status. With --ckpt <path> the
// checkpoint chain covering this log (manifest + base/delta artifacts)
// is inventoried first, so the truncation boundary the segments key off
// is visible next to the segments themselves.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <set>

#include "rodain/log/log_storage.hpp"
#include "rodain/log/segment.hpp"
#include "rodain/storage/ckpt_manifest.hpp"
#include "rodain/storage/fuzzy_checkpoint.hpp"

using namespace rodain;

namespace {

void print_checkpoint_chain(const std::string& ckpt_path) {
  const std::string manifest_path = storage::manifest_path_for(ckpt_path);
  auto m = storage::read_manifest_file(manifest_path);
  if (!m.is_ok()) {
    if (std::filesystem::exists(ckpt_path)) {
      std::printf("checkpoint: legacy single file %s (no manifest)\n\n",
                  ckpt_path.c_str());
    } else {
      std::printf("checkpoint: none (%s)\n\n",
                  m.status().to_string().c_str());
    }
    return;
  }
  std::printf("checkpoint chain (%s): %zu artifacts, covered through seq %"
              PRIu64 "\n",
              manifest_path.c_str(), m.value().entries.size(),
              m.value().covered_boundary());
  for (const auto& e : m.value().entries) {
    std::printf("  %-5s %-32s  boundary=%-8" PRIu64 " epoch=%-6" PRIu64
                " %" PRIu64 " bytes%s\n",
                e.kind == storage::ManifestEntry::Kind::kBase ? "base"
                                                              : "delta",
                e.file.c_str(), e.boundary, e.capture_epoch, e.bytes,
                std::filesystem::exists(storage::sibling_path(ckpt_path,
                                                              e.file))
                    ? ""
                    : "  [MISSING]");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <log-file> [--stats] [--ckpt <checkpoint>]\n",
                 argv[0]);
    return 2;
  }
  bool stats_only = false;
  std::string ckpt_path;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stats") == 0) {
      stats_only = true;
    } else if (std::strcmp(argv[i], "--ckpt") == 0 && i + 1 < argc) {
      ckpt_path = argv[++i];
    }
  }
  if (!ckpt_path.empty()) print_checkpoint_chain(ckpt_path);

  bool torn = false;
  const bool is_dir = std::filesystem::is_directory(argv[1]);
  auto records = is_dir ? log::SegmentedLogStorage::read_all(argv[1], &torn)
                        : log::FileLogStorage::read_all(argv[1], &torn);
  if (!records.is_ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", argv[1],
                 records.status().to_string().c_str());
    return 1;
  }
  if (is_dir) {
    auto segments = log::SegmentedLogStorage::list_segments(argv[1]);
    if (segments.is_ok()) {
      std::printf("%zu segments in %s:\n", segments.value().size(), argv[1]);
      for (const auto& seg : segments.value()) {
        if (seg.last_seq == 0) {
          std::printf("  %-32s  first_seq=%-8" PRIu64 " (unsealed) %" PRIu64
                      " bytes\n",
                      std::filesystem::path(seg.path).filename().c_str(),
                      seg.first_seq, seg.bytes);
        } else {
          std::printf("  %-32s  seq [%" PRIu64 ", %" PRIu64 "] %" PRIu64
                      " bytes\n",
                      std::filesystem::path(seg.path).filename().c_str(),
                      seg.first_seq, seg.last_seq, seg.bytes);
        }
      }
      std::printf("\n");
    }
  }

  std::uint64_t writes = 0;
  std::uint64_t commits = 0;
  std::uint64_t bytes = 0;
  ValidationTs min_seq = ~ValidationTs{0};
  ValidationTs max_seq = 0;
  std::set<TxnId> open;
  std::map<ObjectId, std::uint64_t> hot;

  for (const log::Record& r : records.value()) {
    if (r.type == log::RecordType::kWriteImage) {
      ++writes;
      bytes += r.after.size();
      open.insert(r.txn);
      ++hot[r.oid];
      if (!stats_only) {
        std::printf("WRITE  txn=%-8" PRIu64 " oid=%-10" PRIu64 " %zu bytes\n",
                    r.txn, r.oid, r.after.size());
      }
    } else {
      ++commits;
      open.erase(r.txn);
      min_seq = std::min(min_seq, r.seq);
      max_seq = std::max(max_seq, r.seq);
      if (!stats_only) {
        std::printf("COMMIT txn=%-8" PRIu64 " seq=%-8" PRIu64
                    " serial=%-12" PRIu64 " writes=%u\n",
                    r.txn, r.seq, r.serial_ts, r.write_count);
      }
    }
  }

  std::printf("\n%s: %zu records (%" PRIu64 " writes / %" PRIu64
              " commits), %" PRIu64 " after-image bytes\n",
              argv[1], records.value().size(), writes, commits, bytes);
  if (commits > 0) {
    std::printf("seq range [%" PRIu64 ", %" PRIu64 "], %s\n", min_seq, max_seq,
                max_seq - min_seq + 1 == commits ? "dense (mirror-ordered)"
                                                 : "sparse/unordered");
  }
  std::printf("open (uncommitted) txns in log: %zu\n", open.size());
  if (torn) std::printf("NOTE: torn tail (incomplete final record)\n");
  if (!hot.empty()) {
    ObjectId hottest = hot.begin()->first;
    for (auto& [oid, n] : hot) {
      if (n > hot[hottest]) hottest = oid;
    }
    std::printf("hottest object: %" PRIu64 " (%" PRIu64 " writes)\n", hottest,
                hot[hottest]);
  }
  return 0;
}
