// Run a short primary/mirror workload over loopback TCP with the
// observability layer enabled, then print the metrics registry in both
// exposition formats. A smoke test for the obs wiring and a quick way to
// see every metric the stack emits:
//
//   build/tools/rodain_metrics_dump [txns]
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <thread>

#include "rodain/common/diag.hpp"
#include "rodain/log/recovery.hpp"
#include "rodain/obs/obs.hpp"
#include "rodain/rodain.hpp"

using namespace rodain;
using namespace rodain::literals;

int main(int argc, char** argv) {
  const int txns = argc > 1 ? std::atoi(argv[1]) : 300;
  diag::set_level(diag::Level::kWarn);

  obs::ObsConfig obs_config;
  obs_config.enabled = true;
  // A deliberately tiny ring: the workload wraps it, so the dump shows the
  // trace.events_dropped counter doing its job.
  obs_config.trace_capacity = 256;
  obs::init(obs_config);

  // ---- wire a primary/mirror pair over loopback --------------------------
  std::mutex mu;
  std::condition_variable cv;
  std::unique_ptr<net::TcpChannel> server_end;
  auto server = std::move(net::TcpServer::listen(0, [&](auto ch) {
                            std::lock_guard lock(mu);
                            server_end = std::move(ch);
                            cv.notify_all();
                          })).value();
  auto client_end =
      std::move(net::TcpChannel::connect("127.0.0.1", server->port(), 2_s)).value();
  {
    std::unique_lock lock(mu);
    cv.wait_for(lock, std::chrono::seconds(2), [&] { return server_end != nullptr; });
  }

  const auto seg_dir =
      std::filesystem::temp_directory_path() / "rodain_metrics_dump";
  std::filesystem::remove_all(seg_dir);
  std::filesystem::create_directories(seg_dir);
  rt::NodeConfig config;
  config.metrics_snapshot_interval = 50_ms;
  // Enable group commit so the log.batch.* metrics show up in the dump.
  // The sequential submit loop below mostly produces delay-filled batches.
  config.log_batch.max_txns = 4;
  config.log_batch.max_delay = 1_ms;
  config.log_batch.adaptive_delay = true;
  // A fast fuzzy-checkpoint cadence on the primary so the checkpoint
  // families (node.checkpoint_stall_us, ckpt.bytes_full/bytes_delta,
  // ckpt.dirty_ratio, ckpt.records_retained) show up populated.
  config.checkpoint_path = (seg_dir / "primary.ckpt").string();
  config.checkpoint_interval = 25_ms;
  rt::Node primary(config, "primary");
  // The mirror stores the ordered log to a segmented store with a tiny
  // rotation threshold and a fast checkpoint cadence, so the log lifecycle
  // metrics (log_segments_*, log_disk_bytes) show up in the dump.
  rt::NodeConfig mirror_config = config;
  mirror_config.log_path = (seg_dir / "log").string();
  mirror_config.log_segment_bytes = 16 * 1024;
  mirror_config.checkpoint_path = (seg_dir / "db.ckpt").string();
  mirror_config.checkpoint_interval = 25_ms;
  rt::Node mirror(mirror_config, "mirror");
  for (ObjectId oid = 1; oid <= 1000; ++oid) {
    storage::Value zero{std::string_view{"\0\0\0\0\0\0\0\0", 8}};
    primary.store().upsert(oid, zero, 0);
    mirror.store().upsert(oid, zero, 0);
  }
  mirror.start_mirror(*server_end);
  primary.start_primary(LogMode::kMirror, client_end.get());
  server_end->start();
  client_end->start();

  // ---- a small mixed workload --------------------------------------------
  int committed = 0;
  for (int i = 0; i < txns; ++i) {
    txn::TxnProgram p;
    if (i % 3 == 0) {
      p.read(static_cast<ObjectId>(1 + i % 1000));
    } else {
      p.add_to_field(static_cast<ObjectId>(1 + i % 1000), 0, 1);
    }
    p.with_deadline(200_ms);
    committed += (primary.execute(std::move(p)).outcome == TxnOutcome::kCommitted);
  }
  // A handful of hopeless deadlines: each one misses and gets charged to
  // the lifecycle stage that exhausted its slack, so the
  // deadline_miss.by_stage.* family shows up populated.
  for (int i = 0; i < 5; ++i) {
    txn::TxnProgram p;
    p.add_to_field(static_cast<ObjectId>(1 + i), 0, 1);
    p.with_deadline(Duration::micros(20));
    primary.execute(std::move(p));
  }
  // Let the heartbeat/acks drain so replication gauges settle.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  std::fprintf(stderr, "ran %d txns (%d committed) through the pair\n", txns,
               committed);
  const obs::AvailabilityTimeline primary_avail = primary.availability();
  std::fprintf(stderr,
               "primary availability: serving=%d outages=%zu ttfc_us=%lld\n",
               primary_avail.serving() ? 1 : 0, primary_avail.outages().size(),
               static_cast<long long>(
                   primary_avail.last_time_to_first_commit_us()));
  primary.stop();
  mirror.stop();

  // Cold-restart the mirror's state from its checkpoint + surviving
  // segments so the recovery-path gauge (log_recovery_replay_ms) is live.
  {
    storage::ObjectStore recovered(1024);
    storage::BPlusTree rec_index;
    auto stats = log::recover_checkpoint_and_segments(
        mirror_config.checkpoint_path, mirror_config.log_path, recovered,
        &rec_index);
    if (stats.is_ok()) {
      std::fprintf(stderr,
                   "recovered %llu committed txns from %zu segments\n",
                   static_cast<unsigned long long>(
                       stats.value().committed_applied),
                   stats.value().segments_decoded);
    } else {
      std::fprintf(stderr, "segment recovery failed: %s\n",
                   stats.status().to_string().c_str());
    }
  }
  std::filesystem::remove_all(seg_dir);

  // ---- expositions --------------------------------------------------------
  std::printf("%s", obs::metrics().render_text().c_str());
  std::printf("\n-- json --\n%s\n", obs::metrics().render_json().c_str());
  std::fprintf(stderr,
               "\ntrace events recorded: %llu, dropped to ring wrap: %llu "
               "(dump with failover_demo for a Chrome trace)\n",
               static_cast<unsigned long long>(obs::tracer().recorded()),
               static_cast<unsigned long long>(obs::tracer().dropped()));
  return 0;
}
