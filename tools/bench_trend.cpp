// Trend gate CLI: compare a fresh bench run against committed baselines.
//
//   rodain_bench_trend <baseline_dir> <current_dir> <tolerances.json>
//
// Exit 0 when every gated field is within tolerance, 1 on regression, 2 on
// usage or parse errors. Only fields named in the tolerance config gate
// (see bench/baselines/tolerances.json); everything else is informational.
#include <cstdio>

#include "rodain/exp/trend.hpp"

int main(int argc, char** argv) {
  if (argc != 4) {
    std::fprintf(stderr,
                 "usage: %s <baseline_dir> <current_dir> <tolerances.json>\n",
                 argv[0]);
    return 2;
  }
  using rodain::exp::trend::check_trend;
  auto result = check_trend(argv[1], argv[2], argv[3]);
  if (!result.is_ok()) {
    std::fprintf(stderr, "bench_trend: %s\n",
                 result.status().to_string().c_str());
    return 2;
  }
  const auto& trend = result.value();
  for (const auto& note : trend.notes) {
    std::printf("NOTE        %s\n", note.c_str());
  }
  for (const auto& cmp : trend.compared) {
    if (cmp.missing) {
      std::printf("REGRESSION  %-52s baseline=%.4g current=<missing>\n",
                  cmp.key.c_str(), cmp.baseline);
    } else {
      std::printf("%-11s %-52s baseline=%.4g current=%.4g\n",
                  cmp.regressed ? "REGRESSION" : "ok", cmp.key.c_str(),
                  cmp.baseline, cmp.current);
    }
  }
  std::printf("bench_trend: %zu gated fields, %s\n", trend.compared.size(),
              trend.ok ? "all within tolerance" : "REGRESSION detected");
  return trend.ok ? 0 : 1;
}
