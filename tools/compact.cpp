// rodain_compact — offline log compaction.
//
//   rodain_compact <log-file> <output-checkpoint> [input-checkpoint]
//
// Replays the checkpoint (if given) plus the redo log, then writes a fresh
// checkpoint consistent through the last committed transaction. After a
// successful compaction the old log can be truncated: a cold start needs
// only the new checkpoint (plus whatever log the node appends afterwards).
#include <cinttypes>
#include <cstdio>

#include "rodain/log/recovery.hpp"
#include "rodain/storage/checkpoint.hpp"

using namespace rodain;

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <log-file> <output-checkpoint> [input-checkpoint]\n",
                 argv[0]);
    return 2;
  }
  const std::string log_path = argv[1];
  const std::string out_path = argv[2];
  const std::string in_ckpt = argc > 3 ? argv[3] : "";

  storage::ObjectStore store;
  auto stats = log::recover_checkpoint_and_log(in_ckpt, log_path, store);
  if (!stats.is_ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 stats.status().to_string().c_str());
    return 1;
  }
  if (auto s = storage::write_checkpoint_file(store, stats.value().last_seq,
                                              out_path);
      !s) {
    std::fprintf(stderr, "cannot write %s: %s\n", out_path.c_str(),
                 s.to_string().c_str());
    return 1;
  }
  std::printf("compacted: %" PRIu64 " txns replayed (+%s), %zu objects, "
              "consistent through seq %" PRIu64 " -> %s\n",
              stats.value().committed_applied,
              in_ckpt.empty() ? "no base checkpoint" : in_ckpt.c_str(),
              store.size(), stats.value().last_seq, out_path.c_str());
  if (stats.value().incomplete_dropped > 0) {
    std::printf("note: %" PRIu64 " uncommitted txns in the log were dropped\n",
                stats.value().incomplete_dropped);
  }
  if (stats.value().torn_tail) {
    std::printf("note: the log had a torn tail (normal after a crash)\n");
  }
  return 0;
}
