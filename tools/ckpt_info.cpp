// rodain_ckpt_info — inspect a checkpoint file.
//
//   rodain_ckpt_info <checkpoint-file>
//
// Verifies the CRC, prints the boundary sequence number, object count and
// size distribution.
#include <cinttypes>
#include <cstdio>

#include "rodain/storage/checkpoint.hpp"

using namespace rodain;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <checkpoint-file>\n", argv[0]);
    return 2;
  }
  storage::ObjectStore store;
  auto meta = storage::read_checkpoint_file(argv[1], store);
  if (!meta.is_ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", argv[1],
                 meta.status().to_string().c_str());
    return 1;
  }
  std::size_t total_bytes = 0;
  std::size_t min_size = ~std::size_t{0};
  std::size_t max_size = 0;
  store.for_each([&](ObjectId, const storage::ObjectRecord& rec) {
    total_bytes += rec.value.size();
    min_size = std::min(min_size, rec.value.size());
    max_size = std::max(max_size, rec.value.size());
  });
  std::printf("%s: OK (CRC verified)\n", argv[1]);
  std::printf("  consistent through seq  %" PRIu64 "\n",
              meta.value().last_applied);
  std::printf("  objects                 %zu\n", store.size());
  std::printf("  payload bytes           %zu (min %zu / avg %zu / max %zu)\n",
              total_bytes, store.empty() ? 0 : min_size,
              store.empty() ? 0 : total_bytes / store.size(), max_size);
  return 0;
}
