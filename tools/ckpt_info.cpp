// rodain_ckpt_info — inspect a checkpoint artifact set.
//
//   rodain_ckpt_info <checkpoint-path>
//
// The path may name a legacy single-file checkpoint, a bare fuzzy (v3)
// base, or the root of a fuzzy chain (<path>.manifest + <path>.b<N> /
// <path>.d<N> artifacts). Verifies every CRC, prints the chain inventory
// when a manifest exists, then the recovered-state summary: boundary
// sequence number, object count and size distribution.
#include <cinttypes>
#include <cstdio>
#include <filesystem>

#include "rodain/storage/checkpoint.hpp"
#include "rodain/storage/ckpt_manifest.hpp"
#include "rodain/storage/fuzzy_checkpoint.hpp"

using namespace rodain;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <checkpoint-path>\n", argv[0]);
    return 2;
  }
  const std::string path = argv[1];
  const std::string manifest_path = storage::manifest_path_for(path);
  if (std::filesystem::exists(manifest_path)) {
    auto m = storage::read_manifest_file(manifest_path);
    if (!m.is_ok()) {
      std::fprintf(stderr, "corrupt manifest %s: %s\n", manifest_path.c_str(),
                   m.status().to_string().c_str());
    } else {
      std::printf("%s: chain of %zu artifacts, covered through seq %" PRIu64
                  "\n",
                  manifest_path.c_str(), m.value().entries.size(),
                  m.value().covered_boundary());
      for (const auto& e : m.value().entries) {
        std::printf("  %-5s %-32s  boundary=%-8" PRIu64 " epoch=%-6" PRIu64
                    " %" PRIu64 " bytes%s\n",
                    e.kind == storage::ManifestEntry::Kind::kBase ? "base"
                                                                  : "delta",
                    e.file.c_str(), e.boundary, e.capture_epoch, e.bytes,
                    std::filesystem::exists(
                        storage::sibling_path(path, e.file))
                        ? ""
                        : "  [MISSING]");
      }
      std::printf("\n");
    }
  }
  storage::ObjectStore store;
  auto meta = storage::load_checkpoint_artifacts(path, store);
  if (!meta.is_ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", path.c_str(),
                 meta.status().to_string().c_str());
    return 1;
  }
  std::size_t total_bytes = 0;
  std::size_t min_size = ~std::size_t{0};
  std::size_t max_size = 0;
  store.for_each([&](ObjectId, const storage::ObjectRecord& rec) {
    total_bytes += rec.value.size();
    min_size = std::min(min_size, rec.value.size());
    max_size = std::max(max_size, rec.value.size());
  });
  std::printf("%s: OK (CRC verified)\n", path.c_str());
  std::printf("  consistent through seq  %" PRIu64 "\n",
              meta.value().last_applied);
  std::printf("  objects                 %zu\n", store.size());
  std::printf("  payload bytes           %zu (min %zu / avg %zu / max %zu)\n",
              total_bytes, store.empty() ? 0 : min_size,
              store.empty() ? 0 : total_bytes / store.size(), max_size);
  return 0;
}
