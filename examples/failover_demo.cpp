// Availability demo (paper §2/§4): the hot standby takes over "almost
// instantaneously" when the primary dies, and committed data survives.
//
//   build/examples/failover_demo
//
// Timeline:
//   t=0      primary + mirror serving, logs shipped over TCP
//   t~1s     client has committed a batch of updates
//   t~1s     primary crashes (stopped hard, socket severed)
//   +~300ms  the mirror's watchdog fires; it applies its buffered log,
//            discards incomplete transactions, and starts serving alone
//   then     the client verifies every committed update on the survivor
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "rodain/common/diag.hpp"
#include "rodain/obs/obs.hpp"
#include "rodain/rodain.hpp"

using namespace rodain;
using namespace rodain::literals;

int main() {
  diag::set_level(diag::Level::kInfo);

  // Record everything: metrics + commit-path spans. The trace dumps to a
  // Chrome trace_event file at the end (chrome://tracing or Perfetto).
  obs::ObsConfig obs_config;
  obs_config.enabled = true;
  obs::init(obs_config);

  // ---- wire the pair ------------------------------------------------------
  std::mutex mu;
  std::condition_variable cv;
  std::unique_ptr<net::TcpChannel> server_end;
  auto server = std::move(net::TcpServer::listen(0, [&](auto ch) {
                            std::lock_guard lock(mu);
                            server_end = std::move(ch);
                            cv.notify_all();
                          })).value();
  auto client_end =
      std::move(net::TcpChannel::connect("127.0.0.1", server->port(), 2_s)).value();
  {
    std::unique_lock lock(mu);
    cv.wait_for(lock, std::chrono::seconds(2), [&] { return server_end != nullptr; });
  }

  rt::NodeConfig config;
  config.watchdog_timeout = 300_ms;
  config.heartbeat_interval = 50_ms;
  config.metrics_snapshot_interval = 100_ms;
  auto primary = std::make_unique<rt::Node>(config, "primary");
  // The survivor carries the live endpoint: RODAIN_HTTP_PORT pins the port
  // (default: pick a free one). Watch it during the run:
  //   curl localhost:<port>/metrics   curl localhost:<port>/healthz
  rt::NodeConfig mirror_node_config = config;
  mirror_node_config.http_port = 0;
  if (const char* env = std::getenv("RODAIN_HTTP_PORT")) {
    mirror_node_config.http_port = std::atoi(env);
  }
  rt::Node mirror(mirror_node_config, "mirror");
  std::printf("== mirror observability endpoint: "
              "curl localhost:%u/{metrics,vars,trace,healthz}\n",
              mirror.http_port());
  for (ObjectId account = 1; account <= 1000; ++account) {
    storage::Value zero{std::string_view{"\0\0\0\0\0\0\0\0", 8}};
    primary->store().upsert(account, zero, 0);
    mirror.store().upsert(account, zero, 0);
  }
  mirror.start_mirror(*server_end);
  primary->start_primary(LogMode::kMirror, client_end.get());
  server_end->start();
  client_end->start();
  std::printf("== pair up: primary serving, mirror maintaining the copy\n");

  // ---- commit a batch of account credits ---------------------------------
  const int kBatch = 500;
  int committed = 0;
  for (int i = 0; i < kBatch; ++i) {
    txn::TxnProgram p;
    p.add_to_field(static_cast<ObjectId>(1 + i % 1000), 0, 100);
    p.with_deadline(150_ms);
    committed += (primary->execute(std::move(p)).outcome == TxnOutcome::kCommitted);
  }
  std::printf("== committed %d/%d credit transactions on the primary\n",
              committed, kBatch);

  // ---- crash the primary ---------------------------------------------------
  const auto crash_at = std::chrono::steady_clock::now();
  std::printf("== primary crashes NOW\n");
  primary->stop();
  primary.reset();
  client_end->close();

  // Requests during the outage fail fast...
  txn::TxnProgram during;
  during.read(1);
  during.with_deadline(50_ms);
  auto outage = mirror.execute(std::move(during));
  std::printf("== request during outage: %s (mirror not serving yet)\n",
              std::string(to_string(outage.outcome)).c_str());

  // ...until the watchdog fires and the mirror takes over.
  while (!mirror.serving()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const auto gap = std::chrono::duration<double, std::milli>(
      std::chrono::steady_clock::now() - crash_at);
  std::printf("== mirror took over after %.0f ms (watchdog 300 ms)\n", gap.count());

  // ---- verify committed data on the survivor ------------------------------
  std::uint64_t total = 0;
  mirror.store().for_each([&](ObjectId, const storage::ObjectRecord& rec) {
    total += rec.value.read_u64(0);
  });
  std::printf("== survivor balance total: %llu (expected %llu) -> %s\n",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(committed) * 100,
              total == static_cast<std::uint64_t>(committed) * 100 ? "intact"
                                                                   : "LOST DATA");

  // ---- and it serves new work ---------------------------------------------
  txn::TxnProgram after;
  after.add_to_field(1, 0, 1);
  after.with_deadline(150_ms);
  std::printf("== new transaction on survivor: %s\n",
              std::string(to_string(mirror.execute(std::move(after)).outcome)).c_str());
  // RODAIN_DEMO_HOLD_SECS keeps the survivor (and its HTTP endpoint) alive
  // for a while, so the availability gauges can be inspected live.
  if (const char* env = std::getenv("RODAIN_DEMO_HOLD_SECS")) {
    const int secs = std::atoi(env);
    const obs::AvailabilityTimeline avail = mirror.availability();
    std::printf("== holding %d s: takeover gap %.0f ms, first commit %.2f ms "
                "after serving resumed — curl localhost:%u/metrics\n",
                secs, gap.count(),
                static_cast<double>(avail.last_time_to_first_commit_us()) /
                    1000.0,
                mirror.http_port());
    std::this_thread::sleep_for(std::chrono::seconds(secs));
  }
  const obs::TimeSeries series = mirror.metrics_series();
  mirror.stop();

  // ---- observability artifacts --------------------------------------------
  const char* trace_path = "failover_demo_trace.json";
  if (obs::tracer().dump_to_file(trace_path)) {
    std::printf("== trace written to %s (%llu events; open in "
                "chrome://tracing)\n",
                trace_path,
                static_cast<unsigned long long>(obs::tracer().recorded()));
  }
  std::printf("== sampled %zu metric snapshots on the survivor\n",
              series.row_count());
  std::printf("\n-- metrics registry --\n%s",
              obs::metrics().render_text().c_str());
  return 0;
}
