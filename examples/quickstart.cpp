// Quickstart: the embedded rodain database in ~60 lines.
//
//   build/examples/quickstart
//
// Creates an in-memory database with redo logging to a file, runs a few
// transactions through the public API, and reads the results back.
#include <cstdio>
#include <filesystem>

#include "rodain/rodain.hpp"

using namespace rodain;

int main() {
  const std::string log_path =
      (std::filesystem::temp_directory_path() / "rodain_quickstart.log").string();
  std::filesystem::remove(log_path);

  db::DatabaseOptions options;
  options.log_path = log_path;  // durable redo log (empty = memory only)
  db::Database database(options);

  // ---- load two subscriber records and index them by dialled number ----
  storage::Value alice{std::string_view{"routing=+358401111111"}};
  storage::Value bob{std::string_view{"routing=+358402222222"}};
  database.put_raw(1, alice);
  database.put_raw(2, bob);
  database.index_raw(storage::IndexKey::from_string("0800123001"), 1);
  database.index_raw(storage::IndexKey::from_string("0800123002"), 2);

  // ---- a read transaction through the index ----------------------------
  auto looked_up = database.get_by_key(storage::IndexKey::from_string("0800123001"));
  if (looked_up.is_ok()) {
    std::printf("0800123001 -> %.*s\n",
                static_cast<int>(looked_up.value().size()),
                reinterpret_cast<const char*>(looked_up.value().data()));
  }

  // ---- an update transaction with a firm deadline -----------------------
  txn::TxnProgram update;
  update.read(1);
  update.set_value(1, storage::Value{std::string_view{"routing=+358409999999"}});
  update.with_deadline(Duration::millis(50));
  auto info = database.execute(std::move(update));
  std::printf("update: %s in %.3f ms\n",
              std::string(to_string(info.outcome)).c_str(),
              info.latency.to_ms());

  // ---- a transactional counter ------------------------------------------
  database.put_raw(100, storage::Value{std::string_view{"\0\0\0\0\0\0\0\0", 8}});
  for (int i = 0; i < 5; ++i) database.add_to_field(100, 0, 10);
  std::printf("counter after 5 x +10: %llu\n",
              static_cast<unsigned long long>(
                  database.get(100).value().read_u64(0)));

  // ---- provisioning: transactional insert/delete with index upkeep -------
  txn::TxnProgram provision;
  provision.insert(3, storage::IndexKey::from_string("0800123003"),
                   storage::Value{std::string_view{"routing=+358403333333"}});
  provision.with_deadline(Duration::millis(150));
  std::printf("provision subscriber 3: %s\n",
              std::string(to_string(database.execute(std::move(provision)).outcome))
                  .c_str());
  std::printf("lookup 0800123003 works: %s\n",
              database.get_by_key(storage::IndexKey::from_string("0800123003"))
                      .is_ok()
                  ? "yes"
                  : "no");
  txn::TxnProgram deprovision;
  deprovision.erase(3, storage::IndexKey::from_string("0800123003"));
  deprovision.with_deadline(Duration::millis(150));
  (void)database.execute(std::move(deprovision));
  std::printf("after deprovisioning, lookup fails cleanly: %s\n",
              database.get_by_key(storage::IndexKey::from_string("0800123003"))
                      .is_ok()
                  ? "no (!)"
                  : "yes");

  // ---- telemetry ---------------------------------------------------------
  const TxnCounters counters = database.counters();
  std::printf("committed=%llu aborted=%llu, commit latency: %s\n",
              static_cast<unsigned long long>(counters.committed),
              static_cast<unsigned long long>(counters.missed_total()),
              database.commit_latency().summary().c_str());
  std::printf("redo log written to %s\n", log_path.c_str());
  return 0;
}
