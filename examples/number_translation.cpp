// The paper's motivating scenario on the real-time runtime: a number
// translation service (Intelligent Network freephone routing) running on a
// RODAIN pair — primary and hot-standby mirror connected over TCP in this
// process — serving a mixed read/update load with firm deadlines.
//
//   build/examples/number_translation [duration-seconds] [rate-tps]
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "rodain/rodain.hpp"

using namespace rodain;
using namespace rodain::literals;

namespace {

struct TcpPair {
  std::unique_ptr<net::TcpServer> server;
  std::unique_ptr<net::TcpChannel> client_end;
  std::unique_ptr<net::TcpChannel> server_end;
};

TcpPair connect_pair() {
  TcpPair p;
  std::mutex mu;
  std::condition_variable cv;
  p.server = std::move(net::TcpServer::listen(0, [&](auto ch) {
                         std::lock_guard lock(mu);
                         p.server_end = std::move(ch);
                         cv.notify_all();
                       })).value();
  p.client_end =
      std::move(net::TcpChannel::connect("127.0.0.1", p.server->port(), 2_s)).value();
  std::unique_lock lock(mu);
  cv.wait_for(lock, std::chrono::seconds(2), [&] { return p.server_end != nullptr; });
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const double duration_s = argc > 1 ? std::atof(argv[1]) : 5.0;
  const double rate_tps = argc > 2 ? std::atof(argv[2]) : 300.0;

  std::printf("number translation service: RODAIN pair over TCP, "
              "%.0f txn/s for %.0f s\n", rate_tps, duration_s);

  // ---- bring up the pair -------------------------------------------------
  TcpPair tcp = connect_pair();
  rt::NodeConfig config;
  config.overload.max_active = 50;  // the paper's admission cap
  rt::Node primary(config, "primary");
  rt::Node mirror(config, "mirror");

  workload::DatabaseConfig db = workload::PaperSetup::database();
  db.num_objects = 30000;
  workload::load_database(db, primary.store(), primary.index());
  workload::load_database(db, mirror.store(), mirror.index());
  std::printf("loaded %zu subscriber records on both nodes\n", db.num_objects);

  mirror.start_mirror(*tcp.server_end);
  primary.start_primary(LogMode::kMirror, tcp.client_end.get());
  tcp.server_end->start();
  tcp.client_end->start();

  // ---- offered load: 50 ms read / 150 ms update deadlines ---------------
  workload::WorkloadConfig mix = workload::PaperSetup::workload(0.5);
  workload::TxnGenerator generator(db, mix, Rng(2026));
  Rng arrivals(99);

  std::mutex mu;
  std::condition_variable cv;
  std::size_t inflight = 0;
  const auto t_end =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(duration_s);
  std::size_t submitted = 0;
  while (std::chrono::steady_clock::now() < t_end) {
    {
      std::lock_guard lock(mu);
      ++inflight;
    }
    ++submitted;
    primary.submit(generator.next(), [&](const rt::CommitInfo&) {
      std::lock_guard lock(mu);
      --inflight;
      cv.notify_all();
    });
    const double gap_us = arrivals.next_exponential(1e6 / rate_tps);
    std::this_thread::sleep_for(std::chrono::microseconds(
        static_cast<std::int64_t>(gap_us)));
  }
  {
    std::unique_lock lock(mu);
    cv.wait_for(lock, std::chrono::seconds(5), [&] { return inflight == 0; });
  }

  // ---- report -------------------------------------------------------------
  const TxnCounters c = primary.counters();
  std::printf("\nsubmitted        %llu\n", static_cast<unsigned long long>(submitted));
  std::printf("committed        %llu\n", static_cast<unsigned long long>(c.committed));
  std::printf("missed deadline  %llu\n", static_cast<unsigned long long>(c.missed_deadline));
  std::printf("overload shed    %llu\n", static_cast<unsigned long long>(c.overload_rejected));
  std::printf("miss ratio       %.4f\n", c.miss_ratio());
  std::printf("commit latency   %s\n", primary.commit_latency().summary().c_str());
  std::printf("mirror applied   seq %llu (a consistent hot copy, ready to "
              "take over)\n",
              static_cast<unsigned long long>(mirror.mirror_applied_seq()));

  primary.stop();
  mirror.stop();
  return 0;
}
