// The paper's measurement methodology (§4), end to end:
//
//   "All transactions arrive at the RODAIN Prototype through a specific
//    interface process, that reads the load descriptions from an off-line
//    generated test file."
//
// This example generates such a test file (10 000 transactions, Poisson
// arrivals, 50% updates), saves it, reloads it, and replays it against the
// simulated two-node RODAIN pair — printing the session report the paper's
// experiments are built from.
//
//   build/examples/trace_replay [trace-file]
#include <cstdio>
#include <filesystem>

#include "rodain/rodain.hpp"

using namespace rodain;
using namespace rodain::literals;

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1]
               : (std::filesystem::temp_directory_path() / "rodain_session.trace")
                     .string();

  const workload::DatabaseConfig db = workload::PaperSetup::database();
  const workload::WorkloadConfig mix = workload::PaperSetup::workload(0.5);

  // ---- off-line generation -------------------------------------------------
  {
    workload::Trace trace = workload::Trace::generate(db, mix, 250.0, 10000, 7);
    if (auto s = trace.save(path); !s) {
      std::fprintf(stderr, "cannot save trace: %s\n", s.to_string().c_str());
      return 1;
    }
    std::printf("generated %zu-txn trace (%.1f s of load) -> %s (%ju bytes)\n",
                trace.size(), trace.duration().to_seconds(), path.c_str(),
                static_cast<std::uintmax_t>(std::filesystem::file_size(path)));
  }

  // ---- the "interface process": load and replay ----------------------------
  auto loaded = workload::Trace::load(path);
  if (!loaded.is_ok()) {
    std::fprintf(stderr, "cannot load trace: %s\n",
                 loaded.status().to_string().c_str());
    return 1;
  }
  const workload::Trace& trace = loaded.value();

  sim::Simulation sim;
  simdb::SimCluster cluster(sim, workload::PaperSetup::two_node(true));
  cluster.populate([&](storage::ObjectStore& store, storage::BPlusTree& index) {
    workload::load_database(db, store, index);
  });
  cluster.start();

  LatencyHistogram latency;
  TxnCounters seen;
  for (const workload::TraceEntry& entry : trace.entries()) {
    sim.schedule_after(entry.offset, [&cluster, &entry, &latency, &seen] {
      cluster.submit(entry.program, [&](const simdb::TxnResult& r) {
        ++seen.submitted;
        if (r.outcome == TxnOutcome::kCommitted && !r.late) {
          latency.add(r.finish - r.arrival);
        }
      });
    });
  }
  sim.run_until(TimePoint::origin() + trace.duration() + 5_s);

  // ---- the session report ---------------------------------------------------
  const TxnCounters c = cluster.counters();
  std::printf("\nsession report (two-node RODAIN, true log writes):\n");
  std::printf("  submitted         %llu\n", static_cast<unsigned long long>(c.submitted));
  std::printf("  committed         %llu\n", static_cast<unsigned long long>(c.committed));
  std::printf("  missed deadline   %llu\n", static_cast<unsigned long long>(c.missed_deadline));
  std::printf("  overload shed     %llu\n", static_cast<unsigned long long>(c.overload_rejected));
  std::printf("  cc aborted        %llu\n", static_cast<unsigned long long>(c.conflict_aborted));
  std::printf("  miss ratio        %.4f\n", c.miss_ratio());
  std::printf("  commit latency    %s\n", latency.summary().c_str());
  std::printf("  virtual duration  %.1f s (wall time: milliseconds)\n",
              (sim.now() - TimePoint::origin()).to_seconds());
  return 0;
}
