// The database engine: a passive (sans-IO) state machine that advances
// transactions one operation at a time.
//
// Drivers own time and concurrency: the simulator charges each step's CPU
// cost on a virtual preemptive-EDF processor, while the real-time runtime
// executes steps on worker threads. The engine itself only mutates state:
// it runs reads against the store, keeps deferred-write copies, validates
// through the pluggable concurrency controller, installs after-images, and
// hands redo records to the Log Writer.
//
// A transaction's journey (paper §2–3):
//   read phase  ->  validation  ->  write phase (+ log emission)  ->
//   wait for the commit-record ack  ->  final commit step.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <shared_mutex>
#include <unordered_map>

#include "rodain/cc/controller.hpp"
#include "rodain/cc/intents.hpp"
#include "rodain/common/clock.hpp"
#include "rodain/common/types.hpp"
#include "rodain/log/redo_index.hpp"
#include "rodain/log/worker_buffer.hpp"
#include "rodain/log/writer.hpp"
#include "rodain/storage/btree.hpp"
#include "rodain/storage/object_store.hpp"
#include "rodain/txn/transaction.hpp"

namespace rodain::engine {

/// CPU cost of each engine step, charged by the driver. Calibrated in
/// workload/calibration.hpp so that the no-logging configuration saturates
/// at the paper's 200–300 txn/s (DESIGN.md §5).
struct CostModel {
  Duration txn_fixed{Duration::micros(1200)};   ///< charged on the first step
  Duration per_read{Duration::micros(350)};
  Duration per_update{Duration::micros(550)};
  Duration per_index_lookup{Duration::micros(80)};
  Duration validate{Duration::micros(250)};
  Duration per_install{Duration::micros(100)};
  Duration per_log_marshal{Duration::micros(50)};
  Duration commit_finalize{Duration::micros(200)};

  [[nodiscard]] static CostModel zero();  ///< free steps (functional tests)
};

struct EngineConfig {
  cc::Protocol protocol{cc::Protocol::kOccDati};
  CostModel costs{};
  /// Restart budget per transaction; < 0 means unlimited (the deadline is
  /// the real bound — "an aborted transaction is either discarded or
  /// restarted depending on its properties", paper §2).
  int max_restarts{-1};
  /// Capture every read value on the transaction (serializability tests).
  bool capture_reads{false};
  /// Driver clock for lifecycle stage stamps (obs/lifecycle.hpp): the
  /// real-time node passes its steady clock, the simulator passes itself.
  /// Null disables stage accounting.
  const Clock* clock{nullptr};
  /// Parallel commit path (DESIGN.md §13): validation + install run under
  /// per-record write intents and the engine's validation mutex instead of
  /// the driver's commit mutex, and redo records flow through the epoch
  /// sealer. Forced off for controllers without a lock-free read phase
  /// (2PL). The flag is static for an engine's lifetime — the *driver*
  /// decides per transaction whether to commit outside its mutex
  /// (parallel_commit_active()), but the locking discipline never changes
  /// underneath in-flight transactions.
  bool parallel_commit{false};
};

enum class StepAction : std::uint8_t {
  kContinue = 0,  ///< charge the cost, then call step() again
  kBlocked,       ///< parked on a lock; on_lock_granted will fire
  kWaitLogAck,    ///< parked until the log ack; on_log_durable will fire
  kCommitted,     ///< transaction finished successfully
  kRestarted,     ///< reset to the read phase; reschedule from scratch
  kAborted,       ///< terminal abort; outcome() says why
};

struct StepResult {
  StepAction action{StepAction::kContinue};
  Duration cost{Duration::zero()};
};

class Engine {
 public:
  struct Hooks {
    /// A concurrency-control victim was reset to its read phase; the driver
    /// must cancel its in-flight CPU work and reschedule it.
    std::function<void(TxnId)> on_victim_restart;
    /// A blocked (2PL) transaction's lock was granted.
    std::function<void(TxnId)> on_lock_granted;
    /// The log ack for a kWaitLogAck transaction arrived; drive its final
    /// commit step. May fire inline from within step().
    std::function<void(TxnId)> on_log_durable;
  };

  Engine(EngineConfig config, storage::ObjectStore& store,
         storage::BPlusTree* index, log::LogWriter& log_writer, Hooks hooks);

  /// Register and begin a transaction (driver keeps ownership).
  void begin(txn::Transaction& t);

  /// Advance the transaction by one unit of work.
  StepResult step(txn::Transaction& t);

  /// Whether the controller permits read-phase steps outside the commit
  /// mutex (OCC family; 2PL mutates its lock table on every access).
  [[nodiscard]] bool lock_free_reads() const {
    return cc_->lock_free_read_phase();
  }

  /// Advance one read-phase step WITHOUT the commit mutex (DESIGN.md §11).
  /// Reads come from seqlock snapshots; CC bookkeeping goes through the
  /// transaction's leaf mutex. Returns nullopt when the step must run
  /// serially instead: program done (validation is next), a deferred
  /// restart is pending, or the optimistic read exhausted its retries.
  /// Only the owner worker may call this, with t.lock_free_executing() set.
  [[nodiscard]] std::optional<StepResult> step_read_unlocked(
      txn::Transaction& t);

  /// Whether the parallel commit path is compiled in for this engine
  /// (config flag, resolved against the controller's capabilities).
  [[nodiscard]] bool parallel_commit() const { return parallel_commit_; }

  /// Whether a driver may commit a transaction outside its commit mutex
  /// right now. Recovery only deactivates (the redo index drains under the
  /// commit mutex); it never reactivates, so a false->true transition
  /// cannot race an in-flight serial commit.
  [[nodiscard]] bool parallel_commit_active() const {
    const log::RedoIndex* rec = recovery_.load(std::memory_order_acquire);
    return parallel_commit_ && !(rec && rec->active());
  }

  /// Validate + install + append to the epoch sealer WITHOUT the driver's
  /// commit mutex (parallel commit path). The caller owns the transaction,
  /// which is at a read-phase boundary with its program done. The redo
  /// entry is buffered: the driver must call seal_epoch() under its commit
  /// mutex afterwards (kWaitLogAck results park until the sealed submit's
  /// ack; kOff durable fires inside that seal).
  StepResult step_commit_unlocked(txn::Transaction& t);

  /// Drain the per-worker buffers and dispatch the dense seq prefix to the
  /// LogWriter. Serial context only (the driver's commit mutex). Returns
  /// transactions sealed.
  std::size_t seal_epoch();

  /// Install gate: committers install after-images holding it shared;
  /// whole-store readers (checkpoint writer, join snapshots) take it
  /// unique to see no half-installed transaction. Meaningful only when
  /// parallel_commit() is on. Lock order: driver commit mutex -> gate.
  [[nodiscard]] std::shared_mutex& install_gate() { return install_gate_; }

  /// Per-record write intents (exposed for point-read fallbacks that must
  /// exclude a concurrent installer on one object).
  [[nodiscard]] cc::IntentTable& intents() { return intents_; }

  /// True while the transaction has not passed validation (only such
  /// transactions may be aborted — deferred writes make that free).
  [[nodiscard]] bool can_abort(const txn::Transaction& t) const;

  /// Terminal abort (deadline expiry, overload shedding, shutdown).
  void abort(txn::Transaction& t, TxnOutcome reason);

  [[nodiscard]] txn::Transaction* find(TxnId id);
  [[nodiscard]] ValidationTs last_validation_seq() const {
    return next_seq_.load(std::memory_order_acquire) - 1;
  }

  /// Highest seq v such that every transaction with seq <= v has installed
  /// its after-images — the consistent snapshot boundary for join serving.
  [[nodiscard]] ValidationTs installed_low_water() const {
    return installed_low_water_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t restarts() const {
    return restarts_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] cc::ConcurrencyController& controller() { return *cc_; }
  [[nodiscard]] const CostModel& costs() const { return config_.costs; }

  /// Continue the validation sequence after a takeover (the new primary
  /// must not reuse sequence numbers the old one already shipped).
  void set_next_validation_seq(ValidationTs seq) {
    next_seq_.store(seq, std::memory_order_release);
    installed_low_water_.store(seq - 1, std::memory_order_release);
    sealer_.reset(seq);
  }

  /// Instant recovery (DESIGN.md §12): while `redo` is active, serial
  /// fetches replay an object's deferred chain on first touch, and
  /// optimistic read phases always fall back to the serial path (the index
  /// mutates under the driver's commit mutex). Pass nullptr to detach; the
  /// pointer must outlive the engine or a later detach.
  void set_recovery(log::RedoIndex* redo) {
    recovery_.store(redo, std::memory_order_release);
  }

 private:
  // `optimistic` routes committed-state reads through seqlock snapshots and
  // forbids engine-state mutation (restart, abort, victim dispatch): those
  // paths set `*fallback` and leave the transaction unchanged so the caller
  // can re-run the same pc serially under the commit mutex.
  StepResult step_read_phase(txn::Transaction& t, bool optimistic,
                             bool* fallback);
  StepResult step_validate(txn::Transaction& t);
  StepResult step_write_phase(txn::Transaction& t);
  StepResult step_finalize(txn::Transaction& t);

  /// Committed-record fetch for one read-phase access. Serial mode returns
  /// the store record; optimistic mode copies a seqlock snapshot into
  /// `snap` and returns &snap (nullptr on miss; sets `*fallback` and
  /// returns nullptr on retry exhaustion).
  const storage::ObjectRecord* fetch(ObjectId oid, storage::ObjectRecord& snap,
                                     bool optimistic, bool* fallback);

  StepResult exec_read(txn::Transaction& t, ObjectId oid, Duration base_cost,
                       bool optimistic, bool* fallback);
  StepResult exec_update(txn::Transaction& t, const txn::UpdateOp& op,
                         bool optimistic, bool* fallback);
  StepResult exec_insert(txn::Transaction& t, const txn::InsertOp& op,
                         bool optimistic, bool* fallback);
  StepResult exec_delete(txn::Transaction& t, const txn::DeleteOp& op,
                         bool optimistic, bool* fallback);

  /// Stamp the transaction's lifecycle stage clock (no-op without a
  /// driver clock or with obs disabled).
  void mark_stage(txn::Transaction& t, obs::Stage s) const;

  /// Reset a transaction to its read phase (self restart or victim).
  void restart(txn::Transaction& t);
  void restart_unsynchronized(txn::Transaction& t);
  void restart_victims(const std::vector<TxnId>& victims);
  /// Self restart unless the budget is exhausted (then terminal abort).
  StepResult restart_or_abort(txn::Transaction& t, Duration cost);

  /// The unified commit step: validate under per-record intents + the
  /// validation mutex, install under the gate, append to the epoch sealer.
  /// `seal_inline` (serial contexts: the simulator, a driver holding its
  /// commit mutex) seals immediately, so kOff configurations fire their
  /// durable callback before this returns — matching the serial path.
  StepResult commit_transaction(txn::Transaction& t, bool seal_inline);

  /// Marshal the redo stream (after-images + commit record, paper §3).
  [[nodiscard]] std::vector<log::Record> marshal_records(
      const txn::Transaction& t) const;

  /// Serializes cc state, txns_, next_seq_ and the install bookkeeping
  /// against concurrent committers — only when the parallel path is
  /// compiled in; a no-op lock otherwise, so serial drivers pay nothing.
  [[nodiscard]] std::unique_lock<std::mutex> maybe_validate_lock() {
    return parallel_commit_ ? std::unique_lock<std::mutex>(validate_mu_)
                            : std::unique_lock<std::mutex>();
  }

  EngineConfig config_;
  storage::ObjectStore& store_;
  storage::BPlusTree* index_;
  log::LogWriter& log_writer_;
  Hooks hooks_;
  std::unique_ptr<cc::ConcurrencyController> cc_;
  // Attached/detached under the driver's commit mutex but consulted by
  // unlocked read phases and parallel_commit_active(), so the pointer
  // itself is atomic. Chain mutation stays commit-mutex-serial.
  std::atomic<log::RedoIndex*> recovery_{nullptr};
  void mark_installed(ValidationTs seq);

  std::unordered_map<TxnId, txn::Transaction*> txns_;
  std::atomic<ValidationTs> next_seq_{1};
  std::atomic<ValidationTs> installed_low_water_{0};
  std::set<ValidationTs> installed_gap_;  ///< installed above the low-water
  std::atomic<std::uint64_t> restarts_{0};

  /// Parallel commit path (DESIGN.md §13). parallel_commit_ is the config
  /// flag resolved against the controller (2PL opts out); the mutexes and
  /// tables below are only contended when it is on.
  bool parallel_commit_{false};
  std::mutex validate_mu_;
  std::shared_mutex install_gate_;
  cc::IntentTable intents_;
  log::EpochSealer sealer_;
};

}  // namespace rodain::engine
