#include "rodain/engine/engine.hpp"

#include <cassert>
#include <mutex>

#include "rodain/common/diag.hpp"
#include "rodain/obs/obs.hpp"

namespace rodain::engine {

namespace {
/// Registered once, shared by every engine in the process (sim clusters run
/// two); all mutators no-op unless obs::init enabled the layer.
struct EngineMetrics {
  obs::Counter& commits = obs::metrics().counter("engine.commits");
  obs::Counter& aborts = obs::metrics().counter("engine.aborts");
  obs::Counter& restarts = obs::metrics().counter("engine.restarts");
  obs::Counter& validations = obs::metrics().counter("engine.validations");
  obs::Counter& validation_rejects =
      obs::metrics().counter("engine.validation_rejects");
  obs::Counter& installs = obs::metrics().counter("engine.installs");
  /// Torn seqlock snapshots discarded by optimistic read-phase fetches.
  obs::Counter& read_retries = obs::metrics().counter("engine.read_retries");
  /// Parallel commit path: optimistic reads refused at validation because a
  /// foreign committer held a write intent on the object.
  obs::Counter& intent_conflicts =
      obs::metrics().counter("engine.intent_conflicts");
};
EngineMetrics& em() {
  static EngineMetrics m;
  return m;
}
}  // namespace

CostModel CostModel::zero() {
  CostModel m;
  m.txn_fixed = m.per_read = m.per_update = m.per_index_lookup = m.validate =
      m.per_install = m.per_log_marshal = m.commit_finalize = Duration::zero();
  return m;
}

Engine::Engine(EngineConfig config, storage::ObjectStore& store,
               storage::BPlusTree* index, log::LogWriter& log_writer,
               Hooks hooks)
    : config_(config),
      store_(store),
      index_(index),
      log_writer_(log_writer),
      hooks_(std::move(hooks)),
      cc_(cc::make_controller(config.protocol)) {
  // 2PL opts out: its lock table mutates on every access under the commit
  // mutex, so there is no lock-free commit to parallelize.
  parallel_commit_ = config_.parallel_commit && cc_->lock_free_read_phase();
  sealer_.reset(next_seq_.load(std::memory_order_relaxed));
  cc_->set_wakeup_handler([this](TxnId id) {
    if (txn::Transaction* t = find(id)) {
      if (t->phase() == txn::Phase::kBlocked) {
        t->set_phase(txn::Phase::kReadPhase);
        if (hooks_.on_lock_granted) hooks_.on_lock_granted(id);
      }
    }
  });
  cc_->set_victim_handler([this](TxnId id) {
    if (txn::Transaction* t = find(id)) {
      if (!can_abort(*t)) return;  // already validated: grant was moot
      if (t->lock_free_executing()) {
        // The owner worker is mid-read outside the commit mutex; restarting
        // under it would race the owner's set mutations. Defer: the owner
        // consumes the request at its next step boundary.
        t->request_restart();
        return;
      }
      restart(*t);
      if (hooks_.on_victim_restart) hooks_.on_victim_restart(id);
    }
  });
}

void Engine::begin(txn::Transaction& t) {
  auto lock = maybe_validate_lock();
  txns_[t.id()] = &t;
  cc_->on_begin(t);
}

txn::Transaction* Engine::find(TxnId id) {
  auto it = txns_.find(id);
  return it == txns_.end() ? nullptr : it->second;
}

bool Engine::can_abort(const txn::Transaction& t) const {
  switch (t.phase()) {
    case txn::Phase::kReadPhase:
    case txn::Phase::kBlocked:
    case txn::Phase::kValidating:
      return true;
    default:
      return false;
  }
}

void Engine::mark_stage(txn::Transaction& t, obs::Stage s) const {
  if (config_.clock && obs::enabled()) {
    t.stages.enter(s, config_.clock->now().us);
  }
}

void Engine::abort(txn::Transaction& t, TxnOutcome reason) {
  assert(can_abort(t));
  em().aborts.inc();
  auto lock = maybe_validate_lock();
  cc_->on_abort(t);
  txns_.erase(t.id());
  t.set_phase(txn::Phase::kAborted);
  t.set_outcome(reason);
  mark_stage(t, obs::Stage::kDone);
}

void Engine::restart(txn::Transaction& t) {
  auto lock = maybe_validate_lock();
  restart_unsynchronized(t);
}

void Engine::restart_unsynchronized(txn::Transaction& t) {
  restarts_.fetch_add(1, std::memory_order_relaxed);
  em().restarts.inc();
  cc_->on_abort(t);
  t.prepare_restart();
  cc_->on_begin(t);
  // The retry re-enters the read phase; its stage buckets keep accruing.
  mark_stage(t, obs::Stage::kReadPhase);
}

void Engine::restart_victims(const std::vector<TxnId>& victims) {
  if (parallel_commit_) {
    // Always defer on the parallel path: the victim's owner (or the worker
    // that next picks it off the ready queue) consumes the request at its
    // next step boundary, and a validation-bound victim fails naturally on
    // its emptied interval. Restarting here would race the owner.
    auto lock = maybe_validate_lock();
    for (TxnId id : victims) {
      auto it = txns_.find(id);
      if (it != txns_.end()) it->second->request_restart();
    }
    return;
  }
  for (TxnId id : victims) {
    txn::Transaction* v = find(id);
    if (!v) continue;
    // A transaction past validation is immune: its sequence number is
    // assigned and its writes are (being) installed.
    assert(can_abort(*v) && "victimized a validated transaction");
    if (v->lock_free_executing()) {
      // Same deferral as the victim handler: the owner worker is running
      // the read phase unlocked and self-restarts at its next boundary.
      // Its interval was already adjusted under its leaf mutex, so the
      // conflict is recorded either way.
      v->request_restart();
      continue;
    }
    restart(*v);
    if (hooks_.on_victim_restart) hooks_.on_victim_restart(id);
  }
}

StepResult Engine::restart_or_abort(txn::Transaction& t, Duration cost) {
  auto lock = maybe_validate_lock();
  if (config_.max_restarts >= 0 && t.restarts() >= config_.max_restarts) {
    cc_->on_abort(t);
    txns_.erase(t.id());
    t.set_phase(txn::Phase::kAborted);
    t.set_outcome(TxnOutcome::kConflictAborted);
    return {StepAction::kAborted, cost};
  }
  restart_unsynchronized(t);
  return {StepAction::kRestarted, cost};
}

StepResult Engine::step(txn::Transaction& t) {
  // A deferred victimization (requested while the owner ran the read phase
  // outside the commit mutex) is honoured here, at the first serial step
  // boundary, before the transaction may enter validation with an interval
  // a committed writer already emptied. No on_victim_restart hook: the
  // owner is *this* caller, mid-drive — the hook protocol is for waking a
  // transaction some other thread owns.
  if (t.phase() == txn::Phase::kReadPhase && t.consume_restart_request()) {
    restart(t);
    return {StepAction::kRestarted, Duration::zero()};
  }
  switch (t.phase()) {
    case txn::Phase::kReadPhase:
      if (t.program_done()) {
        if (parallel_commit_) {
          // Serial entry into the parallel-path locking discipline (the
          // simulator, or a driver holding its commit mutex during the
          // recovery window): same intents/validation-mutex protocol as
          // step_commit_unlocked, plus an inline seal — the caller's
          // serial context stands in for the commit mutex the seal needs.
          return commit_transaction(t, /*seal_inline=*/true);
        }
        // Validation and the write phase form one atomic step
        // (Kung-Robinson critical section; the paper's "transactions are
        // validated atomically"). Splitting them would open a window in
        // which other transactions validate against half-installed state.
        t.set_phase(txn::Phase::kValidating);
        StepResult r = step_validate(t);
        if (t.phase() != txn::Phase::kWritePhase) return r;
        StepResult w = step_write_phase(t);
        w.cost += r.cost;
        return w;
      }
      return step_read_phase(t, /*optimistic=*/false, /*fallback=*/nullptr);
    case txn::Phase::kWaitLogAck:
      return step_finalize(t);
    case txn::Phase::kValidating:
    case txn::Phase::kWritePhase:
    case txn::Phase::kBlocked:
    case txn::Phase::kCommitted:
    case txn::Phase::kAborted:
      assert(false && "step() on a parked or finished transaction");
      return {StepAction::kAborted, Duration::zero()};
  }
  return {StepAction::kAborted, Duration::zero()};
}

std::optional<StepResult> Engine::step_read_unlocked(txn::Transaction& t) {
  assert(t.lock_free_executing());
  assert(t.phase() == txn::Phase::kReadPhase);
  if (t.program_done() || t.restart_requested()) {
    // Validation (or a deferred victimization) is next — both are serial.
    return std::nullopt;
  }
  bool fallback = false;
  StepResult r = step_read_phase(t, /*optimistic=*/true, &fallback);
  if (fallback) return std::nullopt;
  return r;
}

const storage::ObjectRecord* Engine::fetch(ObjectId oid,
                                           storage::ObjectRecord& snap,
                                           bool optimistic, bool* fallback) {
  if (!optimistic) {
    // Instant recovery: the serial path (under the node's commit mutex) is
    // where first touch replays an object's deferred redo chain before the
    // transaction observes it.
    log::RedoIndex* rec = recovery_.load(std::memory_order_acquire);
    if (rec && rec->active()) {
      rec->ensure_recovered(oid, store_, index_);
    }
    if (!parallel_commit_) return store_.find(oid);
    // Parallel commit: installs run outside the commit mutex (intents +
    // seqlock), so even the serial path must not plain-read a record a
    // committer may be writing in place. Snapshot it; under persistent
    // contention briefly take the record's intent — the installer holding
    // it never waits on the commit mutex while it does, so this cannot
    // cycle.
    std::uint32_t retries = 0;
    storage::OptimisticRead r = store_.read_optimistic(oid, snap, retries);
    if (retries != 0) em().read_retries.inc(retries);
    if (r == storage::OptimisticRead::kContended) {
      const auto intent = intents_.acquire_one(oid);
      retries = 0;
      r = store_.read_optimistic(oid, snap, retries);
    }
    return r == storage::OptimisticRead::kHit ? &snap : nullptr;
  }
  log::RedoIndex* rec = recovery_.load(std::memory_order_acquire);
  if (rec && rec->active()) {
    // Unlocked read phases cannot consult the redo index (its chains mutate
    // under commit_mu_); fall back to the serial path for the short
    // recovery window.
    *fallback = true;
    return nullptr;
  }
  std::uint32_t retries = 0;
  const storage::OptimisticRead r = store_.read_optimistic(oid, snap, retries);
  if (retries != 0) em().read_retries.inc(retries);
  if (r == storage::OptimisticRead::kContended) {
    *fallback = true;
    return nullptr;
  }
  return r == storage::OptimisticRead::kHit ? &snap : nullptr;
}

StepResult Engine::step_read_phase(txn::Transaction& t, bool optimistic,
                                   bool* fallback) {
  obs::ScopedSpan span(obs::tracer(), obs::Phase::kExecute, t.id());
  mark_stage(t, obs::Stage::kReadPhase);
  const Duration first_step_cost =
      (t.pc() == 0) ? config_.costs.txn_fixed : Duration::zero();
  const txn::Op& op = t.program().ops[t.pc()];

  if (const auto* read = std::get_if<txn::ReadOp>(&op)) {
    return exec_read(t, read->oid, first_step_cost + config_.costs.per_read,
                     optimistic, fallback);
  }
  if (const auto* read_key = std::get_if<txn::ReadKeyOp>(&op)) {
    const Duration cost = first_step_cost + config_.costs.per_index_lookup +
                          config_.costs.per_read;
    log::RedoIndex* rec = recovery_.load(std::memory_order_acquire);
    if (rec && rec->active()) {
      if (optimistic) {
        *fallback = true;
        return {StepAction::kContinue, cost};
      }
      // A deferred insert/delete may not have reached the index yet: replay
      // whatever this key could observe before the lookup.
      rec->ensure_recovered_key(read_key->key, store_, index_);
    }
    ObjectId oid = kInvalidObject;
    if (index_) {
      // Safe unlocked: the tree's own RW lock covers structural changes.
      if (auto found = index_->find(read_key->key)) oid = *found;
    }
    if (oid == kInvalidObject) {
      // Key miss: the lookup cost was paid, nothing to read.
      t.advance_pc();
      return {StepAction::kContinue, cost};
    }
    return exec_read(t, oid, cost, optimistic, fallback);
  }
  if (const auto* update = std::get_if<txn::UpdateOp>(&op)) {
    StepResult r = exec_update(t, *update, optimistic, fallback);
    r.cost += first_step_cost;
    return r;
  }
  if (const auto* insert = std::get_if<txn::InsertOp>(&op)) {
    StepResult r = exec_insert(t, *insert, optimistic, fallback);
    r.cost += first_step_cost;
    return r;
  }
  if (const auto* erase = std::get_if<txn::DeleteOp>(&op)) {
    StepResult r = exec_delete(t, *erase, optimistic, fallback);
    r.cost += first_step_cost;
    return r;
  }
  const auto& compute = std::get<txn::ComputeOp>(op);
  t.advance_pc();
  return {StepAction::kContinue, first_step_cost + compute.cost};
}

StepResult Engine::exec_read(txn::Transaction& t, ObjectId oid,
                             Duration base_cost, bool optimistic,
                             bool* fallback) {
  // Read-your-own-write: the private copy, no concurrency-control tracking.
  // A private delete reads as missing.
  if (const txn::WriteEntry* own = t.find_write(oid)) {
    if (config_.capture_reads) {
      t.captured_reads.push_back(own->is_delete() ? storage::Value{}
                                                  : own->after);
    }
    t.advance_pc();
    return {StepAction::kContinue, base_cost};
  }

  storage::ObjectRecord snap;
  const storage::ObjectRecord* rec = fetch(oid, snap, optimistic, fallback);
  if (optimistic && *fallback) return {StepAction::kContinue, base_cost};
  cc::AccessResult access = cc_->on_read(t, oid, rec, optimistic);
  if (optimistic && access.decision != cc::Access::kGranted) {
    // Engine-state mutation (restart bookkeeping) needs the commit mutex;
    // nothing was recorded, so the serial re-run decides the same way.
    *fallback = true;
    return {StepAction::kContinue, base_cost};
  }
  restart_victims(access.victims);
  switch (access.decision) {
    case cc::Access::kGranted:
      break;
    case cc::Access::kBlocked:
      t.set_phase(txn::Phase::kBlocked);
      return {StepAction::kBlocked, base_cost};
    case cc::Access::kRestartSelf:
      return restart_or_abort(t, base_cost);
  }
  if (config_.capture_reads) {
    // Tombstones read as missing (their wts was still observed above).
    t.captured_reads.push_back(rec && rec->live() ? rec->value
                                                  : storage::Value{});
  }
  t.advance_pc();
  return {StepAction::kContinue, base_cost};
}

StepResult Engine::exec_insert(txn::Transaction& t, const txn::InsertOp& op,
                               bool optimistic, bool* fallback) {
  const Duration cost = config_.costs.per_update;
  storage::ObjectRecord snap;
  const storage::ObjectRecord* rec = fetch(op.oid, snap, optimistic, fallback);
  if (optimistic && *fallback) return {StepAction::kContinue, cost};
  cc::AccessResult access = cc_->on_write(t, op.oid, rec);
  if (optimistic && access.decision != cc::Access::kGranted) {
    *fallback = true;
    return {StepAction::kContinue, cost};
  }
  restart_victims(access.victims);
  switch (access.decision) {
    case cc::Access::kGranted:
      break;
    case cc::Access::kBlocked:
      t.set_phase(txn::Phase::kBlocked);
      return {StepAction::kBlocked, cost};
    case cc::Access::kRestartSelf:
      return restart_or_abort(t, cost);
  }
  {
    // Write-set appends are scanned by concurrent validators (Step 2).
    std::lock_guard lock(t.access_mu());
    // Blind put of the full value (revives a private or committed delete).
    t.write_copy(op.oid, storage::Value{}) = op.value;
    if (op.has_key) t.set_entry_key(op.oid, op.key);
  }
  t.advance_pc();
  return {StepAction::kContinue, cost};
}

StepResult Engine::exec_delete(txn::Transaction& t, const txn::DeleteOp& op,
                               bool optimistic, bool* fallback) {
  const Duration cost = config_.costs.per_update;
  storage::ObjectRecord snap;
  const storage::ObjectRecord* rec = fetch(op.oid, snap, optimistic, fallback);
  if (optimistic && *fallback) return {StepAction::kContinue, cost};
  cc::AccessResult access = cc_->on_write(t, op.oid, rec);
  if (optimistic && access.decision != cc::Access::kGranted) {
    *fallback = true;
    return {StepAction::kContinue, cost};
  }
  restart_victims(access.victims);
  switch (access.decision) {
    case cc::Access::kGranted:
      break;
    case cc::Access::kBlocked:
      t.set_phase(txn::Phase::kBlocked);
      return {StepAction::kBlocked, cost};
    case cc::Access::kRestartSelf:
      return restart_or_abort(t, cost);
  }
  {
    std::lock_guard lock(t.access_mu());
    t.delete_entry(op.oid, op.has_key, op.key);
  }
  t.advance_pc();
  return {StepAction::kContinue, cost};
}

StepResult Engine::exec_update(txn::Transaction& t, const txn::UpdateOp& op,
                               bool optimistic, bool* fallback) {
  const Duration cost = config_.costs.per_update;
  storage::ObjectRecord snap;
  const storage::ObjectRecord* rec = fetch(op.oid, snap, optimistic, fallback);
  if (optimistic && *fallback) return {StepAction::kContinue, cost};

  // Read-modify-write updates observe the current value: track the read.
  if (op.kind == txn::UpdateOp::Kind::kAddToField &&
      !t.in_write_set(op.oid)) {
    cc::AccessResult access = cc_->on_read(t, op.oid, rec, optimistic);
    if (optimistic && access.decision != cc::Access::kGranted) {
      *fallback = true;
      return {StepAction::kContinue, cost};
    }
    restart_victims(access.victims);
    switch (access.decision) {
      case cc::Access::kGranted:
        break;
      case cc::Access::kBlocked:
        t.set_phase(txn::Phase::kBlocked);
        return {StepAction::kBlocked, cost};
      case cc::Access::kRestartSelf:
        return restart_or_abort(t, cost);
    }
  }

  cc::AccessResult access = cc_->on_write(t, op.oid, rec);
  if (optimistic && access.decision != cc::Access::kGranted) {
    // The on_read above may already have recorded the observation; that is
    // fine — the serial re-run of this pc will find the entry unchanged.
    *fallback = true;
    return {StepAction::kContinue, cost};
  }
  restart_victims(access.victims);
  switch (access.decision) {
    case cc::Access::kGranted:
      break;
    case cc::Access::kBlocked:
      t.set_phase(txn::Phase::kBlocked);
      return {StepAction::kBlocked, cost};
    case cc::Access::kRestartSelf:
      return restart_or_abort(t, cost);
  }

  {
    std::lock_guard lock(t.access_mu());
    // Deferred write: mutate the private copy only (paper §2).
    storage::Value& copy =
        t.write_copy(op.oid, rec ? rec->value : storage::Value{});
    switch (op.kind) {
      case txn::UpdateOp::Kind::kSetValue:
        copy = op.value;
        break;
      case txn::UpdateOp::Kind::kAddToField: {
        if (copy.size() < op.field_offset + 8) {
          // Auto-extend so counters can live in fresh objects.
          std::vector<std::byte> grown(op.field_offset + 8);
          std::memcpy(grown.data(), copy.data(), copy.size());
          copy.assign(grown);
        }
        copy.write_u64(op.field_offset,
                       copy.read_u64(op.field_offset) + op.delta);
        break;
      }
    }
  }
  t.advance_pc();
  return {StepAction::kContinue, cost};
}

StepResult Engine::step_validate(txn::Transaction& t) {
  obs::ScopedSpan span(obs::tracer(), obs::Phase::kValidate, t.id());
  mark_stage(t, obs::Stage::kValidate);
  const Duration cost = config_.costs.validate;
  em().validations.inc();
  const ValidationTs seq = next_seq_.load(std::memory_order_relaxed);
  cc::ValidationResult result = cc_->validate(t, seq, store_);
  if (!result.ok) {
    em().validation_rejects.inc();
    t.set_phase(txn::Phase::kReadPhase);
    return restart_or_abort(t, cost);
  }
  restart_victims(result.victims);
  t.set_validated(seq, result.serial_ts);
  next_seq_.store(seq + 1, std::memory_order_release);
  t.set_phase(txn::Phase::kWritePhase);
  return {StepAction::kContinue, cost};
}

StepResult Engine::step_write_phase(txn::Transaction& t) {
  obs::ScopedSpan span(obs::tracer(), obs::Phase::kWritePhase, t.id());
  mark_stage(t, obs::Stage::kWritePhase);
  const auto& writes = t.write_set();
  em().installs.inc(writes.size());
  const bool logging = log_writer_.mode() != LogMode::kOff;
  Duration cost =
      config_.costs.per_install * static_cast<std::int64_t>(writes.size());
  if (logging) {
    cost += config_.costs.per_log_marshal *
            static_cast<std::int64_t>(writes.size() + 1);
  }

  // Install the deferred copies (paper §2: deferred write) and, when
  // logging, generate the redo stream (paper §3: "each update also
  // generates a log record containing transaction identification, data item
  // identification and an after image"; a commit record is generated even
  // for read-only transactions). Deletes install as tombstones; index keys
  // are maintained alongside.
  for (const txn::WriteEntry& w : writes) {
    if (w.is_delete()) {
      store_.tombstone(w.oid, t.serial_ts());
      if (w.has_key && index_) index_->erase(w.key);
    } else {
      store_.upsert(w.oid, w.after, t.serial_ts());
      if (w.has_key && index_) {
        if (!index_->insert(w.key, w.oid)) index_->update(w.key, w.oid);
      }
    }
  }
  cc_->on_installed(t, store_);

  mark_installed(t.validation_seq());
  t.set_phase(txn::Phase::kWaitLogAck);
  mark_stage(t, obs::Stage::kLogFlush);
  const TxnId id = t.id();
  if (!logging) {
    // "No logs" configuration: nothing to marshal or wait for.
    if (hooks_.on_log_durable) hooks_.on_log_durable(id);
    return {StepAction::kWaitLogAck, cost};
  }
  log_writer_.submit(
      t.validation_seq(), marshal_records(t),
      [this, id] {
        if (hooks_.on_log_durable) hooks_.on_log_durable(id);
      },
      config_.clock ? &t.stages : nullptr);
  return {StepAction::kWaitLogAck, cost};
}

std::vector<log::Record> Engine::marshal_records(
    const txn::Transaction& t) const {
  const auto& writes = t.write_set();
  std::vector<log::Record> records;
  records.reserve(writes.size() + 1);
  for (const txn::WriteEntry& w : writes) {
    if (w.is_delete()) {
      records.push_back(w.has_key
                            ? log::Record::tombstone(t.id(), w.oid, w.key)
                            : log::Record::tombstone(t.id(), w.oid));
    } else if (w.has_key) {
      records.push_back(log::Record::insert_image(t.id(), w.oid, w.after, w.key));
    } else {
      records.push_back(log::Record::write_image(t.id(), w.oid, w.after));
    }
  }
  records.push_back(log::Record::commit(
      t.id(), t.validation_seq(), t.serial_ts(),
      static_cast<std::uint32_t>(writes.size())));
  return records;
}

StepResult Engine::step_commit_unlocked(txn::Transaction& t) {
  return commit_transaction(t, /*seal_inline=*/false);
}

StepResult Engine::commit_transaction(txn::Transaction& t, bool seal_inline) {
  assert(parallel_commit_);
  assert(t.phase() == txn::Phase::kReadPhase && t.program_done());
  // A deferred victimization may land right up to the moment validation
  // begins; honour it here (same contract as step()'s serial boundary).
  if (t.consume_restart_request()) {
    restart(t);
    return {StepAction::kRestarted, Duration::zero()};
  }
  t.set_phase(txn::Phase::kValidating);

  const Duration validate_cost = config_.costs.validate;
  cc::IntentTable::Guard intents;
  bool ok = false;
  ValidationTs serial_ts = 0;
  {
    obs::ScopedSpan span(obs::tracer(), obs::Phase::kValidate, t.id());
    mark_stage(t, obs::Stage::kValidate);
    em().validations.inc();
    // Intents before validation: a write-write conflict serializes fully
    // at the intent stripe, so the later writer's Step-1 floors observe
    // the earlier writer's *installed* wts and per-record install order
    // always equals validation-sequence order (mirror replay stays
    // byte-identical with the serial path).
    intents = intents_.acquire(t.write_set());
    auto lock = maybe_validate_lock();
    // Reader-vs-installer: an optimistic snapshot proves committed state
    // only if no foreign committer currently intends the object — a
    // validated-but-not-yet-installed writer has not bumped the wts the
    // Step-1 re-check compares. A writer acquiring its intent *after* this
    // probe validates after us (validation mutex) and floors above the
    // read-set rts bumps published below, so it serializes after our
    // reads either way.
    bool intent_conflict = false;
    for (const txn::ReadEntry& r : t.read_set()) {
      if (r.optimistic && intents_.foreign_intent(r.oid, intents)) {
        em().intent_conflicts.inc();
        intent_conflict = true;
        break;
      }
    }
    cc::ValidationResult result;
    const ValidationTs seq = next_seq_.load(std::memory_order_relaxed);
    if (!intent_conflict) result = cc_->validate(t, seq, store_);
    ok = !intent_conflict && result.ok;
    if (ok) {
      t.set_validated(seq, result.serial_ts);
      next_seq_.store(seq + 1, std::memory_order_release);
      serial_ts = result.serial_ts;
      // Publish committed-reader floors NOW, inside the validation
      // critical section — not at install. A later writer validating
      // before our install must already serialize above our reads;
      // committed-writer floors are published by the installs themselves
      // inside each record's seqlock.
      for (const txn::ReadEntry& r : t.read_set()) {
        store_.bump_rts(r.oid, serial_ts);
      }
      // Forward-adjusted victims: defer (txns_ is already locked here;
      // restart_victims would re-lock).
      for (TxnId vid : result.victims) {
        auto it = txns_.find(vid);
        if (it != txns_.end()) it->second->request_restart();
      }
    }
  }
  if (!ok) {
    intents.release();
    em().validation_rejects.inc();
    t.set_phase(txn::Phase::kReadPhase);
    return restart_or_abort(t, validate_cost);
  }

  const auto& writes = t.write_set();
  em().installs.inc(writes.size());
  const bool logging = log_writer_.mode() != LogMode::kOff;
  Duration cost =
      validate_cost +
      config_.costs.per_install * static_cast<std::int64_t>(writes.size());
  if (logging) {
    cost += config_.costs.per_log_marshal *
            static_cast<std::int64_t>(writes.size() + 1);
  }
  {
    obs::ScopedSpan span(obs::tracer(), obs::Phase::kWritePhase, t.id());
    t.set_phase(txn::Phase::kWritePhase);
    mark_stage(t, obs::Stage::kWritePhase);
    // Install under the gate (shared) with the intents still held. The
    // install bookkeeping and the sealer append stay inside the gate
    // section so a unique holder (checkpoint, join snapshot) observes
    // every transaction either fully absent or installed+marked+appended —
    // a seal under the gate then drains dense through the low-water.
    std::shared_lock gate(install_gate_);
    for (const txn::WriteEntry& w : writes) {
      if (w.is_delete()) {
        store_.tombstone(w.oid, t.serial_ts());
        if (w.has_key && index_) index_->erase(w.key);
      } else {
        store_.upsert(w.oid, w.after, t.serial_ts());
        if (w.has_key && index_) {
          if (!index_->insert(w.key, w.oid)) index_->update(w.key, w.oid);
        }
      }
    }
    // No cc_->on_installed here: read-set rts floors were published at
    // validation, write-set wts floors by the installs above.
    {
      auto lock = maybe_validate_lock();
      mark_installed(t.validation_seq());
    }
    t.set_phase(txn::Phase::kWaitLogAck);
    mark_stage(t, obs::Stage::kLogFlush);
    const TxnId id = t.id();
    // Marshal unconditionally: the seal — under the driver's commit mutex —
    // decides against the then-current log mode, so a kOff->kMirror flip
    // interleaves only at epoch boundaries.
    log::WorkerRedoEntry entry;
    entry.seq = t.validation_seq();
    entry.records = marshal_records(t);
    entry.on_durable = [this, id] {
      if (hooks_.on_log_durable) hooks_.on_log_durable(id);
    };
    entry.stages = config_.clock ? &t.stages : nullptr;
    sealer_.append(std::move(entry));
  }
  intents.release();
  if (seal_inline) seal_epoch();
  return {StepAction::kWaitLogAck, cost};
}

std::size_t Engine::seal_epoch() {
  return sealer_.seal([this](log::WorkerRedoEntry&& e) {
    if (log_writer_.mode() == LogMode::kOff) {
      // "No logs": durable immediately, nothing shipped — matches the
      // serial path, which skips submit() entirely in kOff.
      if (e.on_durable) e.on_durable();
      return;
    }
    log_writer_.submit(e.seq, std::move(e.records), std::move(e.on_durable),
                       e.stages);
  });
}

void Engine::mark_installed(ValidationTs seq) {
  ValidationTs low = installed_low_water_.load(std::memory_order_relaxed);
  if (seq == low + 1) {
    ++low;
    while (!installed_gap_.empty() && *installed_gap_.begin() == low + 1) {
      installed_gap_.erase(installed_gap_.begin());
      ++low;
    }
    installed_low_water_.store(low, std::memory_order_release);
  } else {
    installed_gap_.insert(seq);
  }
}

StepResult Engine::step_finalize(txn::Transaction& t) {
  em().commits.inc();
  t.set_phase(txn::Phase::kCommitted);
  t.set_outcome(TxnOutcome::kCommitted);
  {
    auto lock = maybe_validate_lock();
    txns_.erase(t.id());
  }
  mark_stage(t, obs::Stage::kDone);
  return {StepAction::kCommitted, config_.costs.commit_finalize};
}

}  // namespace rodain::engine
