#include "rodain/exp/session.hpp"

namespace rodain::exp {

SessionResult run_session(const SessionConfig& config) {
  sim::Simulation sim;
  simdb::SimCluster cluster(sim, config.cluster);
  cluster.populate([&](storage::ObjectStore& store, storage::BPlusTree& index) {
    workload::load_database(config.database, store, index);
  });
  cluster.start();

  const workload::Trace trace = workload::Trace::generate(
      config.database, config.workload, config.arrival_rate_tps,
      config.txn_count, config.seed);

  std::size_t completed = 0;
  for (const workload::TraceEntry& entry : trace.entries()) {
    sim.schedule_after(entry.offset, [&cluster, &entry, &completed] {
      cluster.submit(entry.program,
                     [&completed](const simdb::TxnResult&) { ++completed; });
    });
  }

  const TimePoint horizon =
      TimePoint::origin() + trace.duration() + config.grace;

  SessionResult result;
  if (config.sample_interval.is_positive()) {
    // Periodic virtual-time sampling: each tick records a row and
    // reschedules itself until the horizon.
    const std::size_t col_committed = result.series.column("committed");
    const std::size_t col_missed = result.series.column("missed");
    const std::size_t col_miss_ratio = result.series.column("miss_ratio");
    const std::size_t col_active = result.series.column("active_txns");
    const std::size_t col_pending = result.series.column("pending_acks");
    const std::size_t col_staged = result.series.column("reorder_staged");
    auto sample = std::make_shared<std::function<void()>>();
    *sample = [&sim, &cluster, &config, &result, horizon, sample, col_committed,
               col_missed, col_miss_ratio, col_active, col_pending,
               col_staged] {
      const TxnCounters c = cluster.counters();
      result.series.add_row(
          static_cast<std::int64_t>((sim.now() - TimePoint::origin()).us));
      result.series.set(col_committed, static_cast<double>(c.committed));
      result.series.set(col_missed, static_cast<double>(c.missed_total()));
      result.series.set(col_miss_ratio, c.miss_ratio());
      result.series.set(col_active,
                        static_cast<double>(cluster.node_a().active_txns()));
      if (auto* writer = cluster.node_a().log_writer()) {
        result.series.set(col_pending,
                          static_cast<double>(writer->pending_acks()));
      }
      if (config.cluster.two_nodes) {
        if (auto* mirror = cluster.node_b().mirror_service()) {
          result.series.set(col_staged,
                            static_cast<double>(mirror->reorder_staged()));
        }
      }
      if (sim.now() + config.sample_interval <= horizon) {
        sim.schedule_after(config.sample_interval, *sample);
      }
    };
    sim.schedule_after(config.sample_interval, *sample);
  }

  sim.run_until(horizon);
  result.counters = cluster.counters();
  result.virtual_time = sim.now() - TimePoint::origin();
  result.commit_latency.merge(cluster.node_a().commit_latency());
  result.cpu_utilization =
      trace.duration().is_positive()
          ? cluster.node_a().cpu().busy_time().to_seconds() /
                (sim.now() - TimePoint::origin()).to_seconds()
          : 0.0;
  if (auto* eng = cluster.node_a().engine()) {
    result.cc_restarts += eng->restarts();
  }
  if (auto* writer = cluster.node_a().log_writer()) {
    result.log_batches_shipped += writer->counters().batches_shipped;
    result.log_batch_txns += writer->counters().batch_txns_shipped;
  }
  if (config.cluster.two_nodes) {
    result.commit_latency.merge(cluster.node_b().commit_latency());
    if (auto* eng = cluster.node_b().engine()) result.cc_restarts += eng->restarts();
    // After a failover either node may have held the primary or mirror
    // role; sum both sides so the accounting survives role changes.
    if (auto* writer = cluster.node_b().log_writer()) {
      result.log_batches_shipped += writer->counters().batches_shipped;
      result.log_batch_txns += writer->counters().batch_txns_shipped;
    }
    for (simdb::SimNode* node : {&cluster.node_a(), &cluster.node_b()}) {
      if (auto* mirror = node->mirror_service()) {
        result.mirror_acks_sent += mirror->stats().acks_sent;
        result.mirror_ack_commits += mirror->stats().ack_commits_covered;
        result.mirror_checkpoints += mirror->stats().checkpoints;
        result.mirror_log_truncated += mirror->stats().log_truncated;
      }
    }
    if (auto* disk =
            dynamic_cast<log::SimDiskLogStorage*>(cluster.node_b().disk())) {
      result.mirror_disk_backlog = disk->backlog();
    }
  }
  return result;
}

RepeatedResult run_repeated(SessionConfig config, std::size_t repetitions) {
  RepeatedResult result;
  for (std::size_t rep = 0; rep < repetitions; ++rep) {
    SessionConfig c = config;
    c.seed = config.seed * 1000003 + rep * 7919 + 17;
    SessionResult r = run_session(c);
    result.miss_ratio.add(r.miss_ratio());
    result.commit_latency_ms.add(r.commit_latency.mean().to_ms());
    result.totals.merge(r.counters);
    result.cc_restarts += r.cc_restarts;
  }
  return result;
}

SeriesPrinter::SeriesPrinter(std::string x_label,
                             std::vector<std::string> series_labels)
    : x_label_(std::move(x_label)), labels_(std::move(series_labels)) {}

void SeriesPrinter::add_row(double x, const std::vector<double>& values) {
  rows_.push_back(Row{x, values});
}

void SeriesPrinter::print(std::FILE* out) const {
  std::fprintf(out, "%-14s", x_label_.c_str());
  for (const std::string& label : labels_) {
    std::fprintf(out, "  %-18s", label.c_str());
  }
  std::fprintf(out, "\n");
  for (const Row& row : rows_) {
    std::fprintf(out, "%-14.4g", row.x);
    for (double v : row.values) std::fprintf(out, "  %-18.4f", v);
    std::fprintf(out, "\n");
  }
}

}  // namespace rodain::exp
