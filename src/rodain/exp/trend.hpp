// Trend gate for bench reports: compare the BENCH_*.json files of a fresh
// run against committed baselines, field by field, with explicit
// per-field tolerances.
//
// Gating is opt-in: only fields named in the tolerance config are compared
// (noisy wall-clock numbers stay informational; the deterministic sim-time
// fields — virtual downtime, lost transactions, failover gaps — gate CI).
// A configured field that regresses beyond its tolerance, or disappears
// from the current run, fails the check.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "rodain/common/status.hpp"

namespace rodain::exp::trend {

/// Minimal JSON document model — just enough for bench reports and the
/// tolerance config (objects, arrays, strings, numbers, bools, null).
struct JsonValue {
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject
  };

  Type type{Type::kNull};
  bool boolean{false};
  double number{0.0};
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  // insertion order

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
};

/// Parse a complete JSON document. Rejects trailing garbage.
Result<JsonValue> parse_json(std::string_view text);

/// Flatten a BenchReport document into comparable numbers:
///   top-level numeric scalar  ->  "<bench>.<key>"
///   results[] entry field     ->  "<bench>.<label>.<field>"
/// Non-numeric fields and the "results"/"bench"/"git_describe" plumbing are
/// skipped.
std::map<std::string, double> flatten_report(const JsonValue& report);

struct Tolerance {
  /// Allowed relative drift (fraction of |baseline|) and absolute drift;
  /// the allowance is max(abs, rel * |baseline|).
  double rel{0.0};
  double abs{0.0};
  /// Which direction counts as a regression: "up" = an increase is bad
  /// (downtime, misses), "down" = a decrease is bad (throughput), "both".
  enum class Direction : std::uint8_t { kBoth, kUp, kDown };
  Direction direction{Direction::kBoth};
};

struct Comparison {
  std::string key;
  double baseline{0.0};
  double current{0.0};
  bool regressed{false};
  /// Regressions where the field vanished from the current run have no
  /// current value; `missing` marks them.
  bool missing{false};
};

struct TrendResult {
  bool ok{true};
  std::vector<Comparison> compared;
  /// Human-readable commentary (files skipped, benches without baselines).
  std::vector<std::string> notes;
};

/// Parse a tolerance config document:
///   { "fields": { "<key-pattern>": {"rel":0.2,"abs":1.0,"direction":"up"} } }
/// Patterns are exact flattened keys, or "<bench>.*.<field>" to cover every
/// result label of one bench.
Result<std::map<std::string, Tolerance>> parse_tolerances(
    const JsonValue& config);

/// Look up the tolerance for a flattened key: exact match first, then the
/// "<bench>.*.<field>" wildcard. Returns nullptr when the field is not
/// gated.
const Tolerance* match_tolerance(
    const std::map<std::string, Tolerance>& tolerances, std::string_view key);

/// Compare two flattened reports under a tolerance map. Only keys with a
/// matching tolerance participate; a gated key present in the baseline but
/// absent from `current` is a regression.
TrendResult compare_reports(const std::map<std::string, double>& baseline,
                            const std::map<std::string, double>& current,
                            const std::map<std::string, Tolerance>& tolerances);

/// Directory-level driver: for every BENCH_*.json in `baseline_dir`, find
/// the same filename in `current_dir` and compare under the config at
/// `tolerances_path`. Missing current files fail; extra current files are
/// noted but do not gate (they have no baseline yet).
Result<TrendResult> check_trend(const std::string& baseline_dir,
                                const std::string& current_dir,
                                const std::string& tolerances_path);

}  // namespace rodain::exp::trend
