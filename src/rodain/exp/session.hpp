// Experiment harness: one measurement session = one off-line generated
// trace replayed against a freshly built cluster (paper §4: 10 000
// transactions per session, repeated, means reported).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "rodain/common/stats.hpp"
#include "rodain/obs/series.hpp"
#include "rodain/simdb/sim_cluster.hpp"
#include "rodain/workload/calibration.hpp"
#include "rodain/workload/trace.hpp"

namespace rodain::exp {

struct SessionConfig {
  simdb::SimClusterConfig cluster{};
  workload::DatabaseConfig database{};
  workload::WorkloadConfig workload{};
  double arrival_rate_tps{200.0};
  std::size_t txn_count{10000};
  std::uint64_t seed{1};
  /// Extra virtual time after the last arrival for stragglers to finish.
  Duration grace{Duration::seconds(5)};
  /// Sample cluster counters into `SessionResult::series` every interval of
  /// virtual time (zero disables sampling).
  Duration sample_interval{Duration::zero()};
};

struct SessionResult {
  TxnCounters counters{};
  LatencyHistogram commit_latency{};
  Duration virtual_time{Duration::zero()};
  std::uint64_t cc_restarts{0};
  /// Mirror-disk backlog at session end (records appended, not durable) —
  /// the data-loss window of claim C5.
  std::uint64_t mirror_disk_backlog{0};
  double cpu_utilization{0.0};
  /// Replication-path message accounting (two-node sessions; zero without a
  /// mirror). Group-commit effectiveness reads directly off these: mean
  /// batch fill is log_batch_txns / log_batches_shipped, and ack coalescing
  /// is mirror_ack_commits / mirror_acks_sent.
  std::uint64_t log_batches_shipped{0};
  std::uint64_t log_batch_txns{0};
  std::uint64_t mirror_acks_sent{0};
  std::uint64_t mirror_ack_commits{0};
  /// Apply-path checkpoints the mirror role wrote during the session and
  /// the log units its truncations reclaimed (zero when the cluster runs
  /// without a checkpoint cadence).
  std::uint64_t mirror_checkpoints{0};
  std::uint64_t mirror_log_truncated{0};
  /// Virtual-time series (one row per sample_interval when enabled):
  /// committed, missed, miss_ratio, active_txns, pending_acks,
  /// reorder_staged.
  obs::TimeSeries series{};

  [[nodiscard]] double miss_ratio() const { return counters.miss_ratio(); }
};

/// Run one session (deterministic in `config.seed`).
[[nodiscard]] SessionResult run_session(const SessionConfig& config);

/// Run `repetitions` sessions with derived seeds; aggregates per-repetition
/// miss ratios (the paper reports their mean).
struct RepeatedResult {
  OnlineStats miss_ratio{};
  OnlineStats commit_latency_ms{};
  TxnCounters totals{};
  std::uint64_t cc_restarts{0};
};
[[nodiscard]] RepeatedResult run_repeated(SessionConfig config,
                                          std::size_t repetitions);

/// Paper-style series printer: one row per x value, one column per
/// configuration.
class SeriesPrinter {
 public:
  SeriesPrinter(std::string x_label, std::vector<std::string> series_labels);
  void add_row(double x, const std::vector<double>& values);
  void print(std::FILE* out = stdout) const;

 private:
  std::string x_label_;
  std::vector<std::string> labels_;
  struct Row {
    double x;
    std::vector<double> values;
  };
  std::vector<Row> rows_;
};

}  // namespace rodain::exp
