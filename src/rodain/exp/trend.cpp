#include "rodain/exp/trend.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace rodain::exp::trend {

namespace {

// ---- recursive-descent JSON parser --------------------------------------

struct Parser {
  std::string_view text;
  std::size_t pos{0};
  std::string error;

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool fail(const std::string& what) {
    if (error.empty()) {
      error = what + " at offset " + std::to_string(pos);
    }
    return false;
  }

  bool consume(char c) {
    skip_ws();
    if (pos >= text.size() || text[pos] != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++pos;
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos >= text.size()) break;
      const char esc = text[pos++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          // Decode BMP escapes to UTF-8 so a baseline value that round-trips
          // through an escape compares equal to its literal form. Surrogate
          // halves have no BMP meaning on their own and are rejected.
          if (pos + 4 > text.size()) return fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad hex digit in \\u escape");
            }
          }
          if (cp >= 0xD800 && cp <= 0xDFFF) {
            return fail("unpaired surrogate in \\u escape");
          }
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default: return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out.type = JsonValue::Type::kString;
      return parse_string(out.string);
    }
    if (text.compare(pos, 4, "true") == 0) {
      out.type = JsonValue::Type::kBool;
      out.boolean = true;
      pos += 4;
      return true;
    }
    if (text.compare(pos, 5, "false") == 0) {
      out.type = JsonValue::Type::kBool;
      out.boolean = false;
      pos += 5;
      return true;
    }
    if (text.compare(pos, 4, "null") == 0) {
      out.type = JsonValue::Type::kNull;
      pos += 4;
      return true;
    }
    return parse_number(out);
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) != 0 ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '-' || text[pos] == '+')) {
      ++pos;
    }
    if (pos == start) return fail("expected a value");
    const std::string token(text.substr(start, pos - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return fail("bad number");
    out.type = JsonValue::Type::kNumber;
    out.number = v;
    return true;
  }

  bool parse_object(JsonValue& out) {
    if (!consume('{')) return false;
    out.type = JsonValue::Type::kObject;
    skip_ws();
    if (pos < text.size() && text[pos] == '}') {
      ++pos;
      return true;
    }
    while (true) {
      std::string key;
      skip_ws();
      if (!parse_string(key)) return false;
      if (!consume(':')) return false;
      JsonValue value;
      if (!parse_value(value)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      return consume('}');
    }
  }

  bool parse_array(JsonValue& out) {
    if (!consume('[')) return false;
    out.type = JsonValue::Type::kArray;
    skip_ws();
    if (pos < text.size() && text[pos] == ']') {
      ++pos;
      return true;
    }
    while (true) {
      JsonValue value;
      if (!parse_value(value)) return false;
      out.array.push_back(std::move(value));
      skip_ws();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      return consume(']');
    }
  }
};

Result<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::error(ErrorCode::kNotFound, "cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool regressed(double baseline, double current, const Tolerance& tol) {
  const double allowed = std::max(tol.abs, tol.rel * std::fabs(baseline));
  const double delta = current - baseline;
  switch (tol.direction) {
    case Tolerance::Direction::kUp: return delta > allowed;
    case Tolerance::Direction::kDown: return -delta > allowed;
    case Tolerance::Direction::kBoth: return std::fabs(delta) > allowed;
  }
  return false;
}

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

Result<JsonValue> parse_json(std::string_view text) {
  Parser p{text, 0, {}};
  JsonValue root;
  if (!p.parse_value(root)) {
    return Status::error(ErrorCode::kCorruption, "JSON parse: " + p.error);
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    return Status::error(ErrorCode::kCorruption,
                         "JSON parse: trailing data at offset " +
                             std::to_string(p.pos));
  }
  return root;
}

std::map<std::string, double> flatten_report(const JsonValue& report) {
  std::map<std::string, double> flat;
  if (report.type != JsonValue::Type::kObject) return flat;
  const JsonValue* bench = report.find("bench");
  const std::string prefix =
      bench && bench->type == JsonValue::Type::kString ? bench->string
                                                       : "unknown";
  for (const auto& [key, value] : report.object) {
    if (value.type == JsonValue::Type::kNumber) {
      flat[prefix + "." + key] = value.number;
    }
  }
  const JsonValue* results = report.find("results");
  if (!results || results->type != JsonValue::Type::kArray) return flat;
  for (const JsonValue& entry : results->array) {
    const JsonValue* label = entry.find("label");
    if (!label || label->type != JsonValue::Type::kString) continue;
    for (const auto& [key, value] : entry.object) {
      if (value.type == JsonValue::Type::kNumber) {
        flat[prefix + "." + label->string + "." + key] = value.number;
      }
    }
  }
  return flat;
}

Result<std::map<std::string, Tolerance>> parse_tolerances(
    const JsonValue& config) {
  const JsonValue* fields = config.find("fields");
  if (!fields || fields->type != JsonValue::Type::kObject) {
    return Status::error(ErrorCode::kCorruption,
                         "tolerance config: missing \"fields\" object");
  }
  std::map<std::string, Tolerance> out;
  for (const auto& [pattern, spec] : fields->object) {
    Tolerance tol;
    if (const JsonValue* rel = spec.find("rel");
        rel && rel->type == JsonValue::Type::kNumber) {
      tol.rel = rel->number;
    }
    if (const JsonValue* abs = spec.find("abs");
        abs && abs->type == JsonValue::Type::kNumber) {
      tol.abs = abs->number;
    }
    if (const JsonValue* dir = spec.find("direction");
        dir && dir->type == JsonValue::Type::kString) {
      if (dir->string == "up") {
        tol.direction = Tolerance::Direction::kUp;
      } else if (dir->string == "down") {
        tol.direction = Tolerance::Direction::kDown;
      } else if (dir->string == "both") {
        tol.direction = Tolerance::Direction::kBoth;
      } else {
        return Status::error(ErrorCode::kCorruption,
                             "tolerance config: bad direction for " + pattern);
      }
    }
    out.emplace(pattern, tol);
  }
  return out;
}

const Tolerance* match_tolerance(
    const std::map<std::string, Tolerance>& tolerances, std::string_view key) {
  if (auto it = tolerances.find(std::string(key)); it != tolerances.end()) {
    return &it->second;
  }
  // "<bench>.<label>.<field>" also matches the "<bench>.*.<field>" wildcard.
  const std::size_t first = key.find('.');
  const std::size_t last = key.rfind('.');
  if (first == std::string_view::npos || last <= first) return nullptr;
  const std::string wildcard = std::string(key.substr(0, first)) + ".*" +
                               std::string(key.substr(last));
  if (auto it = tolerances.find(wildcard); it != tolerances.end()) {
    return &it->second;
  }
  return nullptr;
}

TrendResult compare_reports(
    const std::map<std::string, double>& baseline,
    const std::map<std::string, double>& current,
    const std::map<std::string, Tolerance>& tolerances) {
  TrendResult result;
  for (const auto& [key, base_value] : baseline) {
    const Tolerance* tol = match_tolerance(tolerances, key);
    if (!tol) continue;
    Comparison cmp;
    cmp.key = key;
    cmp.baseline = base_value;
    const auto cur = current.find(key);
    if (cur == current.end()) {
      cmp.missing = true;
      cmp.regressed = true;
    } else {
      cmp.current = cur->second;
      cmp.regressed = regressed(base_value, cur->second, *tol);
    }
    if (cmp.regressed) result.ok = false;
    result.compared.push_back(std::move(cmp));
  }
  return result;
}

Result<TrendResult> check_trend(const std::string& baseline_dir,
                                const std::string& current_dir,
                                const std::string& tolerances_path) {
  auto tol_text = read_file(tolerances_path);
  if (!tol_text.is_ok()) return tol_text.status();
  auto tol_doc = parse_json(tol_text.value());
  if (!tol_doc.is_ok()) return tol_doc.status();
  auto tolerances = parse_tolerances(tol_doc.value());
  if (!tolerances.is_ok()) return tolerances.status();

  TrendResult total;
  std::error_code ec;
  std::filesystem::directory_iterator it(baseline_dir, ec);
  if (ec) {
    return Status::error(ErrorCode::kNotFound,
                         "cannot list " + baseline_dir + ": " + ec.message());
  }
  std::size_t benches = 0;
  for (const auto& entry : it) {
    const std::string filename = entry.path().filename().string();
    if (filename.rfind("BENCH_", 0) != 0 ||
        entry.path().extension() != ".json") {
      continue;
    }
    ++benches;
    auto base_text = read_file(entry.path().string());
    if (!base_text.is_ok()) return base_text.status();
    auto base_doc = parse_json(base_text.value());
    if (!base_doc.is_ok()) {
      return Status::error(ErrorCode::kCorruption,
                           filename + ": " + base_doc.status().message());
    }
    const std::string current_path =
        (std::filesystem::path(current_dir) / filename).string();
    auto cur_text = read_file(current_path);
    if (!cur_text.is_ok()) {
      total.ok = false;
      total.notes.push_back(filename + ": missing from current run");
      continue;
    }
    auto cur_doc = parse_json(cur_text.value());
    if (!cur_doc.is_ok()) {
      return Status::error(ErrorCode::kCorruption,
                           current_path + ": " + cur_doc.status().message());
    }
    TrendResult one =
        compare_reports(flatten_report(base_doc.value()),
                        flatten_report(cur_doc.value()), tolerances.value());
    if (!one.ok) total.ok = false;
    for (auto& cmp : one.compared) total.compared.push_back(std::move(cmp));
  }
  if (benches == 0) {
    return Status::error(ErrorCode::kNotFound,
                         "no BENCH_*.json baselines in " + baseline_dir);
  }
  return total;
}

}  // namespace rodain::exp::trend
