#include "rodain/exp/report.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#ifndef RODAIN_GIT_DESCRIBE
#define RODAIN_GIT_DESCRIBE "unknown"
#endif

namespace rodain::exp {

namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {
  set("bench", name_);
  set("git_describe", git_describe());
}

void BenchReport::set(std::string_view key, double value) {
  fields_.push_back({std::string(key), json_number(value)});
}

void BenchReport::set(std::string_view key, std::int64_t value) {
  fields_.push_back({std::string(key), std::to_string(value)});
}

void BenchReport::set(std::string_view key, std::string_view value) {
  fields_.push_back({std::string(key), "\"" + json_escape(value) + "\""});
}

void BenchReport::begin_result(std::string_view label) {
  results_.push_back(Entry{std::string(label), {}});
}

void BenchReport::field(std::string_view key, double value) {
  results_.back().fields.push_back({std::string(key), json_number(value)});
}

void BenchReport::field(std::string_view key, std::int64_t value) {
  results_.back().fields.push_back({std::string(key), std::to_string(value)});
}

void BenchReport::field(std::string_view key, std::string_view value) {
  results_.back().fields.push_back(
      {std::string(key), "\"" + json_escape(value) + "\""});
}

void BenchReport::latency_fields(const LatencyHistogram& hist,
                                 std::string_view prefix) {
  const std::string p(prefix);
  field(p + "p50_ms", hist.quantile(0.5).to_ms());
  field(p + "p95_ms", hist.quantile(0.95).to_ms());
  field(p + "p99_ms", hist.quantile(0.99).to_ms());
  field(p + "max_ms", hist.max_value().to_ms());
}

void BenchReport::add_session(std::string_view label,
                              const SessionResult& result) {
  begin_result(label);
  const double secs = result.virtual_time.to_seconds();
  field("throughput_tps",
        secs > 0 ? static_cast<double>(result.counters.committed) / secs : 0.0);
  field("mean_ms", result.commit_latency.mean().to_ms());
  latency_fields(result.commit_latency);
  field("miss_ratio", result.miss_ratio());
  field("submitted", static_cast<std::int64_t>(result.counters.submitted));
  field("committed", static_cast<std::int64_t>(result.counters.committed));
}

void BenchReport::add_repeated(std::string_view label,
                               const RepeatedResult& result) {
  begin_result(label);
  field("miss_ratio_mean", result.miss_ratio.mean());
  field("miss_ratio_stddev", result.miss_ratio.stddev());
  field("latency_mean_ms", result.commit_latency_ms.mean());
  field("submitted", static_cast<std::int64_t>(result.totals.submitted));
  field("committed", static_cast<std::int64_t>(result.totals.committed));
  field("missed_deadline",
        static_cast<std::int64_t>(result.totals.missed_deadline));
  field("overload_rejected",
        static_cast<std::int64_t>(result.totals.overload_rejected));
  field("conflict_aborted",
        static_cast<std::int64_t>(result.totals.conflict_aborted));
  field("cc_restarts", static_cast<std::int64_t>(result.cc_restarts));
}

void BenchReport::append_fields(std::string& out,
                                const std::vector<Field>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out += ",";
    out += "\"" + json_escape(fields[i].key) + "\":" + fields[i].json_value;
  }
}

std::string BenchReport::to_json() const {
  std::string out = "{";
  append_fields(out, fields_);
  out += ",\"results\":[";
  for (std::size_t i = 0; i < results_.size(); ++i) {
    if (i) out += ",";
    out += "{\"label\":\"" + json_escape(results_[i].label) + "\"";
    if (!results_[i].fields.empty()) {
      out += ",";
      append_fields(out, results_[i].fields);
    }
    out += "}";
  }
  out += "]}";
  return out;
}

bool BenchReport::write_file() const {
  std::string path;
  if (const char* dir = std::getenv("RODAIN_BENCH_DIR"); dir && *dir) {
    path = std::string(dir) + "/";
  }
  path += "BENCH_" + name_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "BenchReport: cannot open %s\n", path.c_str());
    return false;
  }
  const std::string body = to_json();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size() &&
                  std::fputc('\n', f) != EOF;
  std::fclose(f);
  if (ok) std::printf("\n[bench report written to %s]\n", path.c_str());
  return ok;
}

const char* BenchReport::git_describe() { return RODAIN_GIT_DESCRIBE; }

}  // namespace rodain::exp
