// Machine-readable bench output: every bench/*.cpp builds one BenchReport
// and writes BENCH_<name>.json next to its stdout tables, so plots and
// regression tracking consume structured numbers instead of scraping text.
//
// Layout:
//   { "bench": "...", "git_describe": "...", <scalar fields...>,
//     "results": [ {"label": "...", <fields...>}, ... ] }
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "rodain/common/stats.hpp"
#include "rodain/exp/session.hpp"

namespace rodain::exp {

class BenchReport {
 public:
  /// `name` becomes the "bench" field and the BENCH_<name>.json filename.
  explicit BenchReport(std::string name);

  // ---- top-level scalar fields -----------------------------------------
  void set(std::string_view key, double value);
  void set(std::string_view key, std::int64_t value);
  void set(std::string_view key, std::string_view value);

  // ---- per-configuration results ---------------------------------------
  /// Start a new entry in "results"; subsequent field() calls fill it.
  void begin_result(std::string_view label);
  void field(std::string_view key, double value);
  void field(std::string_view key, std::int64_t value);
  void field(std::string_view key, std::string_view value);

  /// Standard digest of one session: throughput_tps, mean/p50/p95/p99 ms,
  /// miss_ratio, committed/submitted. Starts a new result entry.
  void add_session(std::string_view label, const SessionResult& result);
  /// Digest of a repeated run: miss-ratio mean/stddev, latency mean,
  /// totals. Starts a new result entry.
  void add_repeated(std::string_view label, const RepeatedResult& result);
  /// Latency digest fields (p50/p95/p99/max, ms) appended to the current
  /// result entry.
  void latency_fields(const LatencyHistogram& hist,
                      std::string_view prefix = "");

  [[nodiscard]] std::string to_json() const;

  /// Write BENCH_<name>.json into $RODAIN_BENCH_DIR (or the working
  /// directory) and note the path on stdout. Returns false on I/O error.
  bool write_file() const;

  /// Compile-time `git describe` of the build (or "unknown").
  [[nodiscard]] static const char* git_describe();

 private:
  struct Field {
    std::string key;
    std::string json_value;  // already-rendered JSON fragment
  };
  struct Entry {
    std::string label;
    std::vector<Field> fields;
  };

  static void append_fields(std::string& out, const std::vector<Field>& fields);

  std::string name_;
  std::vector<Field> fields_;
  std::vector<Entry> results_;
};

}  // namespace rodain::exp
