// Tiny command-line handling shared by the figure benches.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rodain::exp {

struct BenchArgs {
  /// Repetitions per sweep point. The paper uses >= 20; the default keeps
  /// every bench binary under ~30 s. Pass --paper for the full 20.
  std::size_t reps{5};
  /// Transactions per session (paper: 10 000).
  std::size_t txns{10000};
  std::uint64_t seed{1};
  /// Group-commit knobs for benches that sweep batching (bench/commit_path):
  /// txn/byte flush thresholds, max flush delay, and the adaptive-delay
  /// toggle. The defaults reproduce the unbatched ship-at-submit path.
  std::size_t batch_txns{1};
  std::size_t batch_bytes{0};
  std::int64_t batch_delay_us{0};
  bool batch_adaptive{false};

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
        args.reps = static_cast<std::size_t>(std::atoll(argv[++i]));
      } else if (std::strcmp(argv[i], "--txns") == 0 && i + 1 < argc) {
        args.txns = static_cast<std::size_t>(std::atoll(argv[++i]));
      } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        args.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
      } else if (std::strcmp(argv[i], "--batch-txns") == 0 && i + 1 < argc) {
        args.batch_txns = static_cast<std::size_t>(std::atoll(argv[++i]));
      } else if (std::strcmp(argv[i], "--batch-bytes") == 0 && i + 1 < argc) {
        args.batch_bytes = static_cast<std::size_t>(std::atoll(argv[++i]));
      } else if (std::strcmp(argv[i], "--batch-delay-us") == 0 &&
                 i + 1 < argc) {
        args.batch_delay_us = std::atoll(argv[++i]);
      } else if (std::strcmp(argv[i], "--batch-adaptive") == 0) {
        args.batch_adaptive = true;
      } else if (std::strcmp(argv[i], "--paper") == 0) {
        args.reps = 20;
        args.txns = 10000;
      } else if (std::strcmp(argv[i], "--quick") == 0) {
        args.reps = 2;
        args.txns = 3000;
      } else if (std::strcmp(argv[i], "--smoke") == 0) {
        // CI smoke: exercises every sweep point once with a tiny workload —
        // catches crashes and report-format regressions, not perf shifts.
        args.reps = 1;
        args.txns = 500;
      } else if (std::strcmp(argv[i], "--help") == 0) {
        std::printf(
            "options: --reps N (default 5)  --txns N (default 10000)\n"
            "         --seed N  --paper (20 reps, paper setup)  --quick\n"
            "         --smoke (1 rep, 500 txns; CI crash/format check)\n"
            "         --batch-txns N  --batch-bytes N  --batch-delay-us N\n"
            "         --batch-adaptive (group-commit knobs, commit_path)\n");
        std::exit(0);
      }
    }
    return args;
  }
};

}  // namespace rodain::exp
