#include "rodain/obs/metrics.hpp"

#include <cstdio>

namespace rodain::obs {

namespace {

template <typename Map, typename Factory>
decltype(auto) lookup(std::mutex& mu, Map& map, std::string_view name,
                      Factory make) {
  std::lock_guard lock(mu);
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name), make()).first;
  }
  return *it->second;
}

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]* — map anything else
/// (our dots in particular, but also quotes, spaces, control bytes from a
/// hostile name) to '_', so a bad registration can never corrupt the text
/// exposition. The `rodain_` prefix keeps a leading digit legal.
std::string prom_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 7);
  out += "rodain_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

/// JSON string escaping for metric names: quotes, backslashes, and control
/// characters would otherwise break render_json()'s hand-built output.
std::string json_escape(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out += buf;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  return lookup(mu_, counters_, name,
                [] { return std::make_unique<Counter>(); });
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return lookup(mu_, gauges_, name, [] { return std::make_unique<Gauge>(); });
}

Timer& MetricsRegistry::timer(std::string_view name) {
  return lookup(mu_, timers_, name, [] { return std::make_unique<Timer>(); });
}

std::string MetricsRegistry::render_text() const {
  std::lock_guard lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    const std::string prom = prom_name(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(c->value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string prom = prom_name(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " ";
    append_double(out, g->value());
    out += '\n';
  }
  for (const auto& [name, t] : timers_) {
    const LatencyHistogram h = t->merged();
    const std::string prom = prom_name(name);
    out += "# TYPE " + prom + " summary\n";
    for (double q : {0.5, 0.95, 0.99}) {
      char line[160];
      std::snprintf(line, sizeof line, "%s{quantile=\"%.2g\"} %lld\n",
                    prom.c_str(), q,
                    static_cast<long long>(h.quantile(q).us));
      out += line;
    }
    out += prom + "_count " + std::to_string(h.count()) + "\n";
    out += prom + "_max_us " + std::to_string(h.max_value().us) + "\n";
  }
  return out;
}

std::string MetricsRegistry::render_json() const {
  std::lock_guard lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) + "\":" + std::to_string(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) + "\":";
    append_double(out, g->value());
  }
  out += "},\"timers\":{";
  first = true;
  for (const auto& [name, t] : timers_) {
    if (!first) out += ',';
    first = false;
    const LatencyHistogram h = t->merged();
    out += '"' + json_escape(name) + "\":{\"count\":" + std::to_string(h.count());
    out += ",\"p50_us\":" + std::to_string(h.quantile(0.5).us);
    out += ",\"p95_us\":" + std::to_string(h.quantile(0.95).us);
    out += ",\"p99_us\":" + std::to_string(h.quantile(0.99).us);
    out += ",\"max_us\":" + std::to_string(h.max_value().us);
    out += ",\"mean_us\":" + std::to_string(h.mean().us) + "}";
  }
  out += "}}";
  return out;
}

void MetricsRegistry::sample_into(TimeSeries& series,
                                  std::int64_t ts_us) const {
  std::lock_guard lock(mu_);
  series.add_row(ts_us);
  for (const auto& [name, c] : counters_) {
    series.set(series.column(name), static_cast<double>(c->value()));
  }
  for (const auto& [name, g] : gauges_) {
    series.set(series.column(name), g->value());
  }
  for (const auto& [name, t] : timers_) {
    series.set(series.column(std::string(name) + ".count"),
               static_cast<double>(t->merged().count()));
  }
}

void MetricsRegistry::clear() {
  std::lock_guard lock(mu_);
  counters_.clear();
  gauges_.clear();
  timers_.clear();
}

}  // namespace rodain::obs
