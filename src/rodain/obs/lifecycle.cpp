#include "rodain/obs/lifecycle.hpp"

#include <string>

#include "rodain/obs/obs.hpp"

namespace rodain::obs {

namespace {

constexpr std::array<Stage, kStageCount> kStageOrder = {
    Stage::kAdmit,     Stage::kQueueWait, Stage::kReadPhase,
    Stage::kValidate,  Stage::kWritePhase, Stage::kLogFlush,
    Stage::kShip,      Stage::kMirrorAck, Stage::kDone,
};

/// Per-stage metric handles resolved once (registry lookups take a mutex).
struct StageMetrics {
  std::array<Timer*, kStageCount> stage_us{};
  std::array<Counter*, kStageCount> miss_by_stage{};
  Counter* miss_total{nullptr};

  StageMetrics() {
    auto& m = metrics();
    for (std::size_t i = 0; i < kStageCount; ++i) {
      const char* name = stage_name(static_cast<Stage>(i));
      stage_us[i] =
          &m.timer(std::string("lifecycle.stage.") + name + "_us");
      miss_by_stage[i] =
          &m.counter(std::string("deadline_miss.by_stage.") + name);
    }
    miss_total = &m.counter("deadline_miss.total");
  }
};

StageMetrics& sm() {
  static StageMetrics metrics;
  return metrics;
}

/// Stage buckets with the open stage's in-progress slice folded in.
std::array<std::int64_t, kStageCount> closed_buckets(const StageClock& clock,
                                                     std::int64_t now_us) {
  std::array<std::int64_t, kStageCount> spent{};
  for (std::size_t i = 0; i < kStageCount; ++i) {
    spent[i] = clock.spent_us(static_cast<Stage>(i));
  }
  if (clock.started()) {
    StageClock copy = clock;
    copy.enter(clock.current(), now_us);  // accrue the open slice
    spent[static_cast<std::size_t>(clock.current())] =
        copy.spent_us(clock.current());
  }
  return spent;
}

}  // namespace

const char* stage_name(Stage s) {
  switch (s) {
    case Stage::kAdmit: return "admit";
    case Stage::kQueueWait: return "queue_wait";
    case Stage::kReadPhase: return "read_phase";
    case Stage::kValidate: return "validate";
    case Stage::kWritePhase: return "write_phase";
    case Stage::kLogFlush: return "log_flush";
    case Stage::kShip: return "ship";
    case Stage::kMirrorAck: return "mirror_ack";
    case Stage::kDone: return "done";
  }
  return "?";
}

std::int64_t StageClock::spent_until_us(Stage s, std::int64_t now_us) const {
  std::int64_t v = spent_us(s);
  if (started() && current_ == s && now_us > since_us_) {
    v += now_us - since_us_;
  }
  return v;
}

std::int64_t StageClock::total_us(std::int64_t now_us) const {
  std::int64_t total = 0;
  for (std::size_t i = 0; i < kStageCount; ++i) total += spent_[i];
  if (started() && now_us > since_us_) total += now_us - since_us_;
  return total;
}

void observe_stages(const StageClock& clock, std::int64_t now_us) {
  if (!enabled() || !clock.started()) return;
  const auto spent = closed_buckets(clock, now_us);
  auto& metrics = sm();
  for (std::size_t i = 0; i < kStageCount; ++i) {
    if (spent[i] > 0) metrics.stage_us[i]->observe(Duration::micros(spent[i]));
  }
}

Stage charge_deadline_miss(const StageClock& clock, std::int64_t budget_us,
                           std::int64_t now_us) {
  const auto spent = closed_buckets(clock, now_us);
  Stage charged = clock.current();
  std::int64_t cumulative = 0;
  for (Stage s : kStageOrder) {
    cumulative += spent[static_cast<std::size_t>(s)];
    if (cumulative > budget_us) {
      charged = s;
      break;
    }
  }
  if (enabled()) {
    auto& metrics = sm();
    metrics.miss_total->inc();
    metrics.miss_by_stage[static_cast<std::size_t>(charged)]->inc();
  }
  return charged;
}

}  // namespace rodain::obs
