#include "rodain/obs/control.hpp"

#include <chrono>

#include "rodain/obs/obs.hpp"

namespace rodain::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
std::atomic<bool> g_tracing{false};
}  // namespace detail

namespace {
std::int64_t process_origin_ns() {
  static const std::int64_t origin =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  return origin;
}
}  // namespace

std::int64_t now_us() {
  const std::int64_t now_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  return (now_ns - process_origin_ns()) / 1000;
}

std::uint32_t thread_id() {
  static std::atomic<std::uint32_t> next{0};
  static thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void init(const ObsConfig& config) {
  (void)process_origin_ns();  // anchor the time base before events flow
  tracer().reset(config.trace_capacity);
  detail::g_tracing.store(config.enabled && config.tracing,
                          std::memory_order_relaxed);
  detail::g_enabled.store(config.enabled, std::memory_order_relaxed);
}

}  // namespace rodain::obs
