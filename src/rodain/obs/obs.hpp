// Umbrella header for the observability layer: one process-wide metrics
// registry and span tracer, plus the ObsConfig switch.
//
//   obs::init({.enabled = true});            // opt in (default: off)
//   obs::metrics().counter("engine.commits").inc();
//   obs::ScopedSpan span(obs::tracer(), obs::Phase::kValidate, txn_id);
//   std::puts(obs::metrics().render_text().c_str());
//   obs::tracer().dump_to_file("trace.json");
//
// Instrumented components reach the globals directly (and may cache metric
// references); everything is a near-free no-op until obs::init() enables
// the layer.
#pragma once

#include "rodain/obs/control.hpp"
#include "rodain/obs/metrics.hpp"
#include "rodain/obs/series.hpp"
#include "rodain/obs/trace.hpp"

namespace rodain::obs {

/// Process-wide registry (created on first use, never destroyed before
/// static teardown).
[[nodiscard]] MetricsRegistry& metrics();

/// Process-wide span tracer.
[[nodiscard]] SpanTracer& tracer();

}  // namespace rodain::obs
