#include "rodain/obs/availability.hpp"

#include "rodain/obs/obs.hpp"

namespace rodain::obs {

void AvailabilityTimeline::set_serving(bool serving, std::int64_t now_us) {
  if (closed_) return;
  if (serving) {
    if (state_ == State::kServing) return;
    if (state_ == State::kNotServing && !outages_.empty() &&
        outages_.back().open()) {
      outages_.back().end_us = now_us;
      window_anchor_us_ = outages_.back().begin_us;
    } else {
      window_anchor_us_ = now_us;
    }
    state_ = State::kServing;
    serving_since_us_ = now_us;
    window_has_commit_ = false;
    return;
  }
  if (state_ == State::kNotServing) return;
  outages_.push_back(Outage{now_us, -1, -1});
  state_ = State::kNotServing;
}

void AvailabilityTimeline::on_commit(std::int64_t now_us) {
  if (closed_ || state_ != State::kServing || window_has_commit_) return;
  window_has_commit_ = true;
  const std::int64_t ttfc =
      now_us > window_anchor_us_ ? now_us - window_anchor_us_ : 0;
  last_ttfc_us_ = ttfc;
  // Attach to the outage this window recovered from, if there was one.
  if (!outages_.empty() && !outages_.back().open() &&
      outages_.back().begin_us == window_anchor_us_) {
    outages_.back().time_to_first_commit_us = ttfc;
  }
}

void AvailabilityTimeline::close(std::int64_t now_us) {
  if (closed_) return;
  closed_ = true;
  if (state_ == State::kNotServing && !outages_.empty() &&
      outages_.back().open()) {
    // Freeze the accrual point but keep end_us < 0 so the window still
    // reports as open (the node shut down mid-outage).
    frozen_at_us_ = now_us;
  }
}

std::int64_t AvailabilityTimeline::total_downtime_us(
    std::int64_t now_us) const {
  const std::int64_t upto = closed_ && frozen_at_us_ >= 0 ? frozen_at_us_
                                                          : now_us;
  std::int64_t total = 0;
  for (const Outage& o : outages_) total += o.downtime_us(upto);
  return total;
}

std::int64_t AvailabilityTimeline::last_downtime_us(
    std::int64_t now_us) const {
  if (outages_.empty()) return 0;
  const std::int64_t upto = closed_ && frozen_at_us_ >= 0 ? frozen_at_us_
                                                          : now_us;
  return outages_.back().downtime_us(upto);
}

std::int64_t AvailabilityTimeline::last_time_to_first_commit_us() const {
  return last_ttfc_us_;
}

void AvailabilityTimeline::publish_metrics(const std::string& prefix,
                                           std::int64_t now_us) const {
  if (!enabled()) return;
  auto& m = metrics();
  m.gauge(prefix + ".serving").set(serving() ? 1.0 : 0.0);
  m.gauge(prefix + ".outages").set(static_cast<double>(outages_.size()));
  m.gauge(prefix + ".downtime_ms_total")
      .set(static_cast<double>(total_downtime_us(now_us)) / 1000.0);
  m.gauge(prefix + ".last_downtime_ms")
      .set(static_cast<double>(last_downtime_us(now_us)) / 1000.0);
  if (last_ttfc_us_ >= 0) {
    m.gauge(prefix + ".time_to_first_commit_ms")
        .set(static_cast<double>(last_ttfc_us_) / 1000.0);
  }
}

}  // namespace rodain::obs
