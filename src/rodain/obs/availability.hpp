// Availability timeline: when was this node (or cluster) actually serving,
// and how long did each outage cost?
//
// The timeline is a tiny state machine fed by the role/lifecycle hooks:
// set_serving(true/false) opens and closes outage windows, on_commit() marks
// the first commit of each serving window. From those events it derives the
// paper's availability curves: downtime per outage, time-to-first-commit
// after an outage (measured from the moment service was lost, so it bounds
// what a client actually observed), and the cumulative unavailability
// budget. It runs in both real time (rt::Node) and virtual time
// (simdb::SimCluster) — callers supply the microsecond timestamps.
//
// The struct itself is plain data with no locking; callers serialize access
// (rt::Node under its commit mutex, the simulator on its single thread).
// Metric publication goes through the gated registry, so the timeline stays
// usable (e.g. for SimCluster::total_downtime) even with obs disabled.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rodain::obs {

class AvailabilityTimeline {
 public:
  struct Outage {
    std::int64_t begin_us{0};
    std::int64_t end_us{-1};  ///< -1 while the outage is still open
    /// First commit after service resumed, measured from begin_us; -1 until
    /// a commit lands (or forever, if the node never commits again).
    std::int64_t time_to_first_commit_us{-1};

    [[nodiscard]] bool open() const { return end_us < 0; }
    [[nodiscard]] std::int64_t downtime_us(std::int64_t now_us) const {
      const std::int64_t end = open() ? now_us : end_us;
      return end > begin_us ? end - begin_us : 0;
    }
  };

  /// Record a serving-state transition at `now_us`. Transitioning to
  /// non-serving opens an outage; back to serving closes it. Repeated
  /// transitions to the same state are idempotent. The first transition
  /// ever defines the timeline origin (a node that starts as mirror begins
  /// in a non-serving window — that window is *not* an outage unless the
  /// caller opened one explicitly via set_serving(false)).
  void set_serving(bool serving, std::int64_t now_us);

  /// Record a committed transaction at `now_us`; sets the enclosing serving
  /// window's time-to-first-commit (anchored at the preceding outage begin,
  /// or at the serving start for the first window).
  void on_commit(std::int64_t now_us);

  /// Shutdown: freeze an outage that is still open so it is reported with
  /// `end_us = now_us` but stays marked open (the node never came back).
  void close(std::int64_t now_us);

  [[nodiscard]] bool serving() const { return state_ == State::kServing; }
  [[nodiscard]] const std::vector<Outage>& outages() const { return outages_; }

  /// Sum of all outage windows; an open outage accrues up to `now_us`.
  [[nodiscard]] std::int64_t total_downtime_us(std::int64_t now_us) const;
  [[nodiscard]] std::int64_t last_downtime_us(std::int64_t now_us) const;
  /// Time-to-first-commit of the most recent window that has one; -1 if no
  /// commit was ever recorded.
  [[nodiscard]] std::int64_t last_time_to_first_commit_us() const;

  /// Publish the timeline into the process-wide registry as gauges under
  /// `<prefix>.` (serving, outages, downtime_ms_total, last_downtime_ms,
  /// time_to_first_commit_ms). No-op while obs is disabled.
  void publish_metrics(const std::string& prefix, std::int64_t now_us) const;

 private:
  enum class State : std::uint8_t { kUnknown, kServing, kNotServing };

  State state_{State::kUnknown};
  std::vector<Outage> outages_;
  std::int64_t serving_since_us_{-1};
  /// Anchor for the current window's time-to-first-commit: the begin of the
  /// outage this window recovered from, else the serving start.
  std::int64_t window_anchor_us_{-1};
  bool window_has_commit_{false};
  std::int64_t last_ttfc_us_{-1};
  bool closed_{false};
  /// Accrual stop for an outage still open at close(); -1 when unused.
  std::int64_t frozen_at_us_{-1};
};

}  // namespace rodain::obs
