// A small append-only time-series table: one row per sample instant, one
// column per metric. Produced by periodic registry snapshots (rt node
// sampler, sim harness) so experiments yield trajectories — throughput,
// miss ratio, queue depths over time — instead of only run-end totals.
//
// Columns may appear after the first rows (a metric registered late);
// exporters pad missing leading cells with 0.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rodain::obs {

class TimeSeries {
 public:
  /// Index of `name`, registering the column on first use.
  std::size_t column(std::string_view name);

  /// Start a new row stamped `ts_us`; subsequent set() calls fill it.
  void add_row(std::int64_t ts_us);

  /// Set a cell of the current (last) row.
  void set(std::size_t col, double value);
  void set(std::string_view name, double value) { set(column(name), value); }

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] std::size_t column_count() const { return columns_.size(); }
  [[nodiscard]] const std::vector<std::string>& columns() const {
    return columns_;
  }
  /// Cell value (0 if the column did not exist when the row was taken).
  [[nodiscard]] double at(std::size_t row, std::size_t col) const;
  [[nodiscard]] std::int64_t timestamp(std::size_t row) const {
    return rows_[row].ts_us;
  }

  /// "t_us,colA,colB\n..." — one header line then one line per row.
  [[nodiscard]] std::string to_csv() const;
  /// {"columns":["t_us",...],"rows":[[ts,...],...]}
  [[nodiscard]] std::string to_json() const;

 private:
  struct Row {
    std::int64_t ts_us{0};
    std::vector<double> values;  // aligned to columns_ prefix at sample time
  };
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
};

}  // namespace rodain::obs
