// Observability master switch and time base.
//
// Every obs call site (counters, gauges, timers, spans) checks one global
// flag before doing any work, so a disabled build costs a relaxed atomic
// load and a predictable branch per event — nothing allocates, nothing
// locks. The flag defaults to off; tools, demos and experiments opt in via
// obs::init().
#pragma once

#include <atomic>
#include <cstdint>

namespace rodain::obs {

struct ObsConfig {
  bool enabled{false};
  /// Span tracing can be switched off independently (metrics stay on).
  bool tracing{true};
  /// Ring capacity of the span tracer, rounded up to a power of two.
  std::size_t trace_capacity{1u << 15};
};

/// Install the configuration (idempotent; callable before any instrumented
/// component is constructed or at any later point).
void init(const ObsConfig& config);

namespace detail {
extern std::atomic<bool> g_enabled;
extern std::atomic<bool> g_tracing;
}  // namespace detail

[[nodiscard]] inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
[[nodiscard]] inline bool tracing_enabled() {
  return detail::g_tracing.load(std::memory_order_relaxed);
}

/// Monotonic microseconds since process start (steady clock) — the time
/// base of every trace event and metrics snapshot.
[[nodiscard]] std::int64_t now_us();

/// Small dense id for the calling thread (stable for its lifetime).
[[nodiscard]] std::uint32_t thread_id();

}  // namespace rodain::obs
