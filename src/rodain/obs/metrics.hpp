// Metrics registry: named counters, gauges and latency timers with cheap
// thread-sharded hot paths and on-demand merge.
//
// Design:
//  * Counter — monotonically increasing; N cache-line-padded relaxed
//    atomics, a thread picks its shard by hashed thread id. Reads sum.
//  * Gauge — last-written value (atomic double); for queue depths, ratios,
//    role numbers, RTT samples.
//  * Timer — a LatencyHistogram per shard behind a tiny mutex each;
//    observe() touches only the calling thread's shard, merged() folds all
//    shards into one histogram for quantiles.
//
// All mutators are gated on obs::enabled(): a disabled process pays one
// relaxed load + branch per call site. Metric objects registered once have
// stable addresses for the lifetime of the registry, so instrumented
// components may cache the reference.
//
// Naming scheme (see DESIGN.md "Observability"): lowercase dotted paths,
// "<component>.<noun>[.<unit>]", e.g. "engine.commits",
// "repl.commit_rtt_us", "mirror.reorder.staged". render_text() exposes
// them Prometheus-style with dots mapped to underscores.
#pragma once

#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "rodain/common/stats.hpp"
#include "rodain/obs/control.hpp"
#include "rodain/obs/series.hpp"

namespace rodain::obs {

namespace detail {
inline constexpr std::size_t kShards = 8;
[[nodiscard]] inline std::size_t shard_index() {
  return thread_id() % kShards;
}
}  // namespace detail

class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    if (!enabled()) return;
    shards_[detail::shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, detail::kShards> shards_{};
};

class Gauge {
 public:
  void set(double v) {
    if (!enabled()) return;
    v_.store(v, std::memory_order_relaxed);
  }
  void add(double delta) {
    if (!enabled()) return;
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

class Timer {
 public:
  void observe(Duration d) {
    if (!enabled()) return;
    Shard& s = shards_[detail::shard_index()];
    std::lock_guard lock(s.mu);
    s.hist.add(d);
  }

  /// Fold every per-thread shard into one histogram (snapshot semantics).
  [[nodiscard]] LatencyHistogram merged() const {
    LatencyHistogram out;
    for (const Shard& s : shards_) {
      std::lock_guard lock(s.mu);
      out.merge(s.hist);
    }
    return out;
  }

 private:
  struct alignas(64) Shard {
    mutable std::mutex mu;
    LatencyHistogram hist;
  };
  std::array<Shard, detail::kShards> shards_{};
};

/// RAII latency sample: records wall time from construction to destruction
/// into a Timer. Near-free when obs is disabled.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer& timer) : timer_(timer), active_(enabled()) {
    if (active_) begin_us_ = now_us();
  }
  ~ScopedTimer() {
    if (active_) timer_.observe(Duration::micros(now_us() - begin_us_));
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer& timer_;
  bool active_;
  std::int64_t begin_us_{0};
};

class MetricsRegistry {
 public:
  /// Lookup-or-create. Returned references stay valid for the registry's
  /// lifetime; hot paths should call once and cache.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Timer& timer(std::string_view name);

  /// Prometheus-style text exposition (one line per sample; dots in names
  /// become underscores; timers expand to _count/_sum_us plus quantiles).
  [[nodiscard]] std::string render_text() const;

  /// JSON object {"counters":{...},"gauges":{...},"timers":{...}}.
  [[nodiscard]] std::string render_json() const;

  /// Append one row to `series` with every counter and gauge value (and
  /// each timer's count) at timestamp `ts_us`.
  void sample_into(TimeSeries& series, std::int64_t ts_us) const;

  /// Drop every registered metric (tests and tool restarts).
  void clear();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Timer>, std::less<>> timers_;
};

}  // namespace rodain::obs
