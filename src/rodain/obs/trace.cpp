#include "rodain/obs/trace.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "rodain/obs/obs.hpp"

namespace rodain::obs {

namespace {

/// Count a wrap-loss in the registry. The handle is resolved once; the
/// counter itself no-ops while obs is disabled.
void count_dropped_event() {
  static Counter& dropped = metrics().counter("trace.events_dropped");
  dropped.inc();
}

}  // namespace

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kExecute: return "execute";
    case Phase::kValidate: return "validate";
    case Phase::kWritePhase: return "write_phase";
    case Phase::kLogShip: return "log_ship";
    case Phase::kMirrorAck: return "mirror_ack";
    case Phase::kReorder: return "reorder";
    case Phase::kApply: return "apply";
    case Phase::kApplyEpoch: return "apply_epoch";
    case Phase::kSnapshotInstall: return "snapshot_install";
    case Phase::kRoleChange: return "role_change";
    case Phase::kPrimaryFailure: return "primary_failure";
    case Phase::kMirrorTakeover: return "mirror_takeover";
    case Phase::kRejoin: return "rejoin";
    case Phase::kCheckpoint: return "checkpoint";
    case Phase::kRecovery: return "recovery";
  }
  return "?";
}

SpanTracer::SpanTracer(std::size_t capacity) { reset(capacity); }

void SpanTracer::reset(std::size_t capacity) {
  if (capacity < 2) capacity = 2;
  ring_.assign(std::bit_ceil(capacity), TraceEvent{});
  mask_ = ring_.size() - 1;
  next_.store(0, std::memory_order_relaxed);
}

void SpanTracer::record_span(Phase phase, std::int64_t begin_us,
                             std::int64_t end_us, std::uint64_t arg) {
  const std::uint64_t slot = next_.fetch_add(1, std::memory_order_relaxed);
  if (slot >= ring_.size()) count_dropped_event();
  TraceEvent& e = ring_[slot & mask_];
  e.ts_us = begin_us;
  e.dur_us = end_us >= begin_us ? end_us - begin_us : 0;
  e.arg = arg;
  e.tid = thread_id();
  e.phase = phase;
}

void SpanTracer::record_instant(Phase phase, std::uint64_t arg) {
  const std::uint64_t slot = next_.fetch_add(1, std::memory_order_relaxed);
  if (slot >= ring_.size()) count_dropped_event();
  TraceEvent& e = ring_[slot & mask_];
  e.ts_us = now_us();
  e.dur_us = -1;
  e.arg = arg;
  e.tid = thread_id();
  e.phase = phase;
}

std::vector<TraceEvent> SpanTracer::snapshot() const {
  const std::uint64_t n = next_.load(std::memory_order_relaxed);
  std::vector<TraceEvent> out;
  const std::uint64_t retained = n < ring_.size() ? n : ring_.size();
  out.reserve(retained);
  const std::uint64_t first = n - retained;
  for (std::uint64_t i = first; i < n; ++i) out.push_back(ring_[i & mask_]);
  return out;
}

std::string SpanTracer::dump_json() const {
  const std::uint64_t total = recorded();
  const std::uint64_t lost = dropped();
  const std::vector<TraceEvent> events = snapshot();
  std::string out = "{\"traceEvents\":[";
  char buf[256];
  // Chrome metadata events: name the process and every thread that shows
  // up in the retained window, so the viewer labels the tracks.
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"rodain\"}}";
  std::vector<std::uint32_t> tids;
  for (const TraceEvent& e : events) {
    if (std::find(tids.begin(), tids.end(), e.tid) == tids.end()) {
      tids.push_back(e.tid);
    }
  }
  std::sort(tids.begin(), tids.end());
  for (std::uint32_t tid : tids) {
    std::snprintf(buf, sizeof buf,
                  ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%u,\"args\":{\"name\":\"rodain thread %u\"}}",
                  tid, tid);
    out += buf;
  }
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    out += ',';
    if (e.dur_us < 0) {
      std::snprintf(buf, sizeof buf,
                    "{\"name\":\"%s\",\"cat\":\"rodain\",\"ph\":\"i\","
                    "\"s\":\"g\",\"ts\":%lld,\"pid\":1,\"tid\":%u,"
                    "\"args\":{\"id\":%llu}}",
                    phase_name(e.phase), static_cast<long long>(e.ts_us),
                    e.tid, static_cast<unsigned long long>(e.arg));
    } else {
      std::snprintf(buf, sizeof buf,
                    "{\"name\":\"%s\",\"cat\":\"rodain\",\"ph\":\"X\","
                    "\"ts\":%lld,\"dur\":%lld,\"pid\":1,\"tid\":%u,"
                    "\"args\":{\"id\":%llu}}",
                    phase_name(e.phase), static_cast<long long>(e.ts_us),
                    static_cast<long long>(e.dur_us), e.tid,
                    static_cast<unsigned long long>(e.arg));
    }
    out += buf;
  }
  out += "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"recorded\":";
  out += std::to_string(total);
  out += ",\"retained\":";
  out += std::to_string(events.size());
  out += ",\"events_dropped\":";
  out += std::to_string(lost);
  out += "}}";
  return out;
}

bool SpanTracer::dump_to_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string json = dump_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace rodain::obs
