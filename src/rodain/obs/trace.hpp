// Commit-path span tracing: a bounded ring of begin/end events exported in
// Chrome's trace_event JSON format (load the dump at chrome://tracing or
// https://ui.perfetto.dev).
//
// The ring is lock-free for writers: one relaxed fetch_add reserves a slot,
// old events are overwritten once the ring wraps (the dump reports how many
// were lost). Slot writes are not atomic — a dump taken while writers are
// hot may contain a few torn events, which is acceptable for a diagnostics
// artifact and keeps the record path to ~a dozen instructions.
//
// Span taxonomy (see DESIGN.md "Observability"):
//   commit path   execute, validate, write_phase, log_ship, mirror_ack
//   mirror side   reorder, apply, snapshot_install
//   lifecycle     role_change, primary_failure, mirror_takeover, rejoin,
//                 checkpoint, recovery (instant events)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rodain/obs/control.hpp"

namespace rodain::obs {

enum class Phase : std::uint8_t {
  // Commit-path spans (primary).
  kExecute = 0,
  kValidate,
  kWritePhase,
  kLogShip,
  kMirrorAck,
  // Mirror-side spans.
  kReorder,
  kApply,
  /// Epoch barrier instant: one released run fully installed (the value is
  /// the epoch's last seq). Emitted from the mirror's parallel apply path.
  kApplyEpoch,
  kSnapshotInstall,
  // Lifecycle instants.
  kRoleChange,
  kPrimaryFailure,
  kMirrorTakeover,
  kRejoin,
  kCheckpoint,
  kRecovery,
};

[[nodiscard]] const char* phase_name(Phase p);

struct TraceEvent {
  std::int64_t ts_us{0};   ///< begin (spans) or occurrence (instants)
  std::int64_t dur_us{0};  ///< span duration; < 0 marks an instant event
  std::uint64_t arg{0};    ///< txn id / validation seq / role ordinal
  std::uint32_t tid{0};
  Phase phase{Phase::kExecute};
};

class SpanTracer {
 public:
  explicit SpanTracer(std::size_t capacity = 1u << 15);

  /// Drop recorded events and resize the ring (capacity rounded up to a
  /// power of two). Not safe concurrently with writers.
  void reset(std::size_t capacity);

  void record_span(Phase phase, std::int64_t begin_us, std::int64_t end_us,
                   std::uint64_t arg);
  void record_instant(Phase phase, std::uint64_t arg);

  /// Events recorded since the last reset (monotonic; may exceed capacity).
  [[nodiscard]] std::uint64_t recorded() const {
    return next_.load(std::memory_order_relaxed);
  }
  /// Events lost to ring wrap since the last reset. Also surfaced as the
  /// `trace.events_dropped` counter so dashboards can see the loss without
  /// taking a dump.
  [[nodiscard]] std::uint64_t dropped() const {
    const std::uint64_t n = recorded();
    return n > ring_.size() ? n - ring_.size() : 0;
  }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// Chrome trace_event JSON ({"traceEvents":[...]}).
  [[nodiscard]] std::string dump_json() const;
  /// Write dump_json() to `path`; returns false on I/O failure.
  bool dump_to_file(const std::string& path) const;

 private:
  std::vector<TraceEvent> ring_;
  std::size_t mask_{0};
  std::atomic<std::uint64_t> next_{0};
};

/// RAII span: records [construction, destruction) when tracing is on.
class ScopedSpan {
 public:
  ScopedSpan(SpanTracer& tracer, Phase phase, std::uint64_t arg)
      : tracer_(tracer), phase_(phase), arg_(arg),
        active_(enabled() && tracing_enabled()) {
    if (active_) begin_us_ = now_us();
  }
  ~ScopedSpan() {
    if (active_) tracer_.record_span(phase_, begin_us_, now_us(), arg_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  SpanTracer& tracer_;
  Phase phase_;
  std::uint64_t arg_;
  bool active_;
  std::int64_t begin_us_{0};
};

}  // namespace rodain::obs
