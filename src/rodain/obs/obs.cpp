#include "rodain/obs/obs.hpp"

namespace rodain::obs {

MetricsRegistry& metrics() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never dtor'd
  return *registry;
}

SpanTracer& tracer() {
  static SpanTracer* t = new SpanTracer();  // never dtor'd
  return *t;
}

}  // namespace rodain::obs
