// Per-transaction lifecycle stage accounting (the "flight recorder").
//
// A StageClock rides inside each transaction and is stamped along the commit
// path: admit → queue wait → read phase → validate → write phase → log flush
// → ship → mirror ack → done. Every enter() closes the stage that was open
// and opens the next, so the per-stage microsecond buckets always sum to the
// transaction's total residence time. Both drivers use the same clock — the
// real-time node stamps steady-clock time, the simulator stamps virtual time.
//
// When a transaction misses its deadline the clock answers *which stage ate
// the slack*: walk the stages in commit-path order, accumulate the spent
// time, and charge the first stage whose cumulative total crosses the
// deadline budget (deadline − arrival). The charge lands in the
// `deadline_miss.by_stage.<stage>` counter family; the by-stage counters sum
// to `deadline_miss.total` by construction.
#pragma once

#include <array>
#include <cstdint>

namespace rodain::obs {

/// Commit-path stages in canonical order. The order matters: deadline-miss
/// attribution walks it front to back when deciding which stage exhausted
/// the budget.
enum class Stage : std::uint8_t {
  kAdmit = 0,   ///< admission control + transaction construction
  kQueueWait,   ///< waiting in the ready queue for a worker / CPU
  kReadPhase,   ///< program execution (OCC read phase)
  kValidate,    ///< validation scan
  kWritePhase,  ///< installing deferred writes + building redo records
  kLogFlush,    ///< waiting in the group-commit buffer
  kShip,        ///< commit record in flight to the mirror / disk
  kMirrorAck,   ///< ack received, finalization pending
  kDone,        ///< terminal (committed or aborted)
};

inline constexpr std::size_t kStageCount = 9;

[[nodiscard]] const char* stage_name(Stage s);

/// Compact per-transaction stage stopwatch. Not thread-safe on its own; the
/// commit path guarantees a single writer at a time (the submitting thread,
/// then the owning worker, then ack/finalize under the commit mutex).
class StageClock {
 public:
  /// Close the currently open stage (accruing `now_us - since`) and open
  /// `s`. The first call opens the clock without accruing anything.
  void enter(Stage s, std::int64_t now_us) {
    if (since_us_ >= 0 && now_us > since_us_) {
      spent_[static_cast<std::size_t>(current_)] += now_us - since_us_;
    }
    current_ = s;
    since_us_ = now_us >= 0 ? now_us : 0;
  }

  [[nodiscard]] Stage current() const { return current_; }
  [[nodiscard]] bool started() const { return since_us_ >= 0; }

  /// Time accrued in `s` by completed enter() transitions (the open stage's
  /// in-progress slice is not included).
  [[nodiscard]] std::int64_t spent_us(Stage s) const {
    return spent_[static_cast<std::size_t>(s)];
  }

  /// spent_us(s) plus the open slice of the current stage as of `now_us`.
  [[nodiscard]] std::int64_t spent_until_us(Stage s, std::int64_t now_us) const;

  /// Total residence time across all stages as of `now_us`.
  [[nodiscard]] std::int64_t total_us(std::int64_t now_us) const;

 private:
  std::array<std::int64_t, kStageCount> spent_{};
  Stage current_{Stage::kAdmit};
  std::int64_t since_us_{-1};
};

/// Fold a finished transaction's stage buckets into the process-wide
/// `lifecycle.stage.<stage>_us` Timer family (no-op while obs is disabled).
/// `now_us` closes the open stage's in-progress slice.
void observe_stages(const StageClock& clock, std::int64_t now_us);

/// Attribute a missed deadline to the stage that exhausted the slack: the
/// first stage (in canonical order) whose cumulative spent time crosses
/// `budget_us` (deadline − arrival). Falls back to the stage that was open
/// at `now_us` when the buckets do not reach the budget (clock skew, zero
/// budget). Increments `deadline_miss.total` and
/// `deadline_miss.by_stage.<stage>`; returns the charged stage.
Stage charge_deadline_miss(const StageClock& clock, std::int64_t budget_us,
                           std::int64_t now_us);

}  // namespace rodain::obs
