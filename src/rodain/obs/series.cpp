#include "rodain/obs/series.hpp"

#include <cstdio>

namespace rodain::obs {

std::size_t TimeSeries::column(std::string_view name) {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == name) return i;
  }
  columns_.emplace_back(name);
  return columns_.size() - 1;
}

void TimeSeries::add_row(std::int64_t ts_us) {
  Row row;
  row.ts_us = ts_us;
  row.values.assign(columns_.size(), 0.0);
  rows_.push_back(std::move(row));
}

void TimeSeries::set(std::size_t col, double value) {
  if (rows_.empty()) add_row(0);
  Row& row = rows_.back();
  if (row.values.size() <= col) row.values.resize(col + 1, 0.0);
  row.values[col] = value;
}

double TimeSeries::at(std::size_t row, std::size_t col) const {
  const Row& r = rows_[row];
  return col < r.values.size() ? r.values[col] : 0.0;
}

namespace {
void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out += buf;
}
}  // namespace

std::string TimeSeries::to_csv() const {
  std::string out = "t_us";
  for (const std::string& c : columns_) {
    out += ',';
    out += c;
  }
  out += '\n';
  for (const Row& row : rows_) {
    out += std::to_string(row.ts_us);
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      out += ',';
      append_double(out, c < row.values.size() ? row.values[c] : 0.0);
    }
    out += '\n';
  }
  return out;
}

std::string TimeSeries::to_json() const {
  std::string out = "{\"columns\":[\"t_us\"";
  for (const std::string& c : columns_) {
    out += ",\"";
    out += c;
    out += '"';
  }
  out += "],\"rows\":[";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (r) out += ',';
    out += '[';
    out += std::to_string(rows_[r].ts_us);
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      out += ',';
      append_double(out, at(r, c));
    }
    out += ']';
  }
  out += "]}";
  return out;
}

}  // namespace rodain::obs
