#include "rodain/net/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "rodain/common/diag.hpp"
#include "rodain/common/serialization.hpp"

namespace rodain::net {

namespace {
constexpr std::size_t kMaxFrame = 64 * 1024 * 1024;

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}
}  // namespace

// ------------------------------------------------------------- channel ---

TcpChannel::TcpChannel(int fd) : fd_(fd) { set_nodelay(fd_); }

std::unique_ptr<TcpChannel> TcpChannel::adopt(int fd) {
  return std::unique_ptr<TcpChannel>(new TcpChannel(fd));
}

Result<std::unique_ptr<TcpChannel>> TcpChannel::connect(const std::string& host,
                                                        std::uint16_t port,
                                                        Duration timeout) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::error(ErrorCode::kIoError, "socket() failed");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::error(ErrorCode::kInvalidArgument, "bad address " + host);
  }

  // Non-blocking connect with a poll timeout.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  if (rc != 0 && errno == EINPROGRESS) {
    pollfd pfd{fd, POLLOUT, 0};
    rc = ::poll(&pfd, 1, static_cast<int>(timeout.to_ms()));
    if (rc == 1) {
      int err = 0;
      socklen_t len = sizeof err;
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
      rc = err == 0 ? 0 : -1;
    } else {
      rc = -1;
    }
  }
  if (rc != 0) {
    ::close(fd);
    return Status::error(ErrorCode::kUnavailable,
                         "connect to " + host + " failed");
  }
  ::fcntl(fd, F_SETFL, flags);
  return adopt(fd);
}

TcpChannel::~TcpChannel() {
  close();
  if (reader_.joinable()) reader_.join();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void TcpChannel::set_message_handler(MessageHandler handler) {
  std::lock_guard lock(handler_mutex_);
  on_message_ = std::move(handler);
}

void TcpChannel::set_disconnect_handler(DisconnectHandler handler) {
  std::lock_guard lock(handler_mutex_);
  on_disconnect_ = std::move(handler);
}

void TcpChannel::start() {
  if (!reader_.joinable()) {
    reader_ = std::thread([this] { reader_loop(); });
  }
}

Status TcpChannel::send(std::vector<std::byte> frame) {
  if (!connected()) return Status::error(ErrorCode::kUnavailable, "closed");
  if (frame.size() > kMaxFrame) {
    return Status::error(ErrorCode::kInvalidArgument, "frame too large");
  }
  ByteWriter header;
  header.put_u32(static_cast<std::uint32_t>(frame.size()));
  header.put_u32(crc32c(frame));

  std::lock_guard lock(write_mutex_);
  const auto send_all = [this](const std::byte* p, std::size_t n) {
    while (n > 0) {
      const ssize_t w = ::send(fd_, p, n, MSG_NOSIGNAL);
      if (w <= 0) {
        if (w < 0 && errno == EINTR) continue;
        return false;
      }
      p += w;
      n -= static_cast<std::size_t>(w);
    }
    return true;
  };
  if (!send_all(header.view().data(), header.view().size()) ||
      !send_all(frame.data(), frame.size())) {
    // Do NOT invoke the disconnect handler from here: send() is routinely
    // called under higher-level locks the handler needs (self-deadlock).
    // Flag the channel and wake the reader thread, which delivers the
    // disconnect notification from its own context.
    if (connected_.exchange(false, std::memory_order_acq_rel)) {
      ::shutdown(fd_, SHUT_RDWR);
    }
    return Status::error(ErrorCode::kUnavailable, "send failed");
  }
  return Status::ok();
}

bool TcpChannel::read_exact(std::byte* dst, std::size_t n) {
  while (n > 0) {
    const ssize_t r = ::recv(fd_, dst, n, 0);
    if (r == 0) return false;  // orderly shutdown
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    dst += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

void TcpChannel::reader_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    std::byte header[8];
    if (!read_exact(header, sizeof header)) break;
    ByteReader hr(std::span<const std::byte>{header, sizeof header});
    std::uint32_t len = 0;
    std::uint32_t crc = 0;
    (void)hr.get_u32(len);
    (void)hr.get_u32(crc);
    if (len > kMaxFrame) {
      RODAIN_ERROR("tcp: oversized frame (%u bytes), closing", len);
      break;
    }
    std::vector<std::byte> payload(len);
    if (!read_exact(payload.data(), payload.size())) break;
    if (crc32c(payload) != crc) {
      RODAIN_ERROR("tcp: frame crc mismatch, closing");
      break;
    }
    MessageHandler handler;
    {
      std::lock_guard lock(handler_mutex_);
      handler = on_message_;
    }
    if (handler) handler(std::move(payload));
  }
  mark_disconnected();
}

void TcpChannel::mark_disconnected() {
  connected_.store(false, std::memory_order_release);
  if (disconnect_notified_.exchange(true, std::memory_order_acq_rel)) return;
  DisconnectHandler handler;
  {
    std::lock_guard lock(handler_mutex_);
    handler = on_disconnect_;
  }
  if (handler) handler();
}

void TcpChannel::close() {
  stopping_.store(true, std::memory_order_release);
  if (connected_.exchange(false, std::memory_order_acq_rel)) {
    // shutdown() unblocks the reader thread; the fd itself is closed in the
    // destructor, after the reader has joined, so it is never reused while
    // a recv() is in flight.
    ::shutdown(fd_, SHUT_RDWR);
  }
}

// -------------------------------------------------------------- server ---

TcpServer::TcpServer(int fd, std::uint16_t port, AcceptHandler on_accept)
    : listen_fd_(fd), port_(port), on_accept_(std::move(on_accept)) {
  acceptor_ = std::thread([this] { accept_loop(); });
}

Result<std::unique_ptr<TcpServer>> TcpServer::listen(std::uint16_t port,
                                                     AcceptHandler on_accept) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::error(ErrorCode::kIoError, "socket() failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return Status::error(ErrorCode::kIoError,
                         std::string("bind/listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof addr;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  return std::unique_ptr<TcpServer>(
      new TcpServer(fd, ntohs(addr.sin_port), std::move(on_accept)));
}

TcpServer::~TcpServer() {
  stop();
  if (acceptor_.joinable()) acceptor_.join();
  ::close(listen_fd_);
}

void TcpServer::stop() {
  if (!stopping_.exchange(true, std::memory_order_acq_rel)) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
}

void TcpServer::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket shut down
    }
    if (on_accept_) on_accept_(TcpChannel::adopt(fd));
  }
}

}  // namespace rodain::net
