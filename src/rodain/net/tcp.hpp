// Real TCP transport: length-prefixed, CRC-protected frames over a socket.
//
// One reader thread per connection delivers frames to the message handler;
// sends are thread-safe. Used by the real-time runtime for log shipping
// between actual RODAIN nodes (loopback or LAN).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "rodain/common/time.hpp"
#include "rodain/net/channel.hpp"

namespace rodain::net {

class TcpChannel final : public Channel {
 public:
  /// Adopt an already-connected socket.
  static std::unique_ptr<TcpChannel> adopt(int fd);

  /// Connect to host:port (blocking, with timeout).
  static Result<std::unique_ptr<TcpChannel>> connect(const std::string& host,
                                                     std::uint16_t port,
                                                     Duration timeout);

  ~TcpChannel() override;
  TcpChannel(const TcpChannel&) = delete;
  TcpChannel& operator=(const TcpChannel&) = delete;

  void set_message_handler(MessageHandler handler) override;
  void set_disconnect_handler(DisconnectHandler handler) override;
  Status send(std::vector<std::byte> frame) override;
  [[nodiscard]] bool connected() const override {
    return connected_.load(std::memory_order_acquire);
  }
  void close() override;

  /// Start delivering frames (call after handlers are installed).
  void start();

 private:
  explicit TcpChannel(int fd);
  void reader_loop();
  bool read_exact(std::byte* dst, std::size_t n);
  void mark_disconnected();

  int fd_;
  std::atomic<bool> connected_{true};
  std::atomic<bool> stopping_{false};
  /// The disconnect handler fires exactly once, from the reader thread.
  std::atomic<bool> disconnect_notified_{false};
  std::thread reader_;
  std::mutex write_mutex_;
  std::mutex handler_mutex_;
  MessageHandler on_message_;
  DisconnectHandler on_disconnect_;
};

/// Accepting endpoint: one accept thread, a callback per new connection.
class TcpServer {
 public:
  using AcceptHandler = std::function<void(std::unique_ptr<TcpChannel>)>;

  /// Listen on 127.0.0.1:`port` (0 picks a free port).
  static Result<std::unique_ptr<TcpServer>> listen(std::uint16_t port,
                                                   AcceptHandler on_accept);
  ~TcpServer();
  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  [[nodiscard]] std::uint16_t port() const { return port_; }
  void stop();

 private:
  TcpServer(int fd, std::uint16_t port, AcceptHandler on_accept);
  void accept_loop();

  int listen_fd_;
  std::uint16_t port_;
  std::atomic<bool> stopping_{false};
  AcceptHandler on_accept_;
  std::thread acceptor_;
};

}  // namespace rodain::net
