// Deterministic fault injection for the replication path.
//
// FaultyLink decorates a SimLink with per-direction, independently seeded
// fault processes: frame drop, duplication, extra delay, reordering, byte
// corruption, one-way partitions and hard disconnects — plus a script hook
// for precise failures ("sever the link exactly at frame N / at snapshot
// chunk K"). All randomness derives from one seed, and fault decisions are
// made per injected frame in arrival order, so a chaos run replays
// bit-for-bit from its seed.
//
// The layers above (Endpoint envelope dedup, LogWriter ack timeout +
// resend, the mirror's chunk retry) exist to survive exactly what this
// class injects.
#pragma once

#include <array>
#include <functional>
#include <optional>
#include <span>

#include "rodain/common/rng.hpp"
#include "rodain/net/channel.hpp"
#include "rodain/net/sim_link.hpp"
#include "rodain/sim/simulation.hpp"

namespace rodain::net {

/// Independent per-frame fault probabilities for one direction.
struct FaultProfile {
  double drop{0};       ///< frame silently lost
  double duplicate{0};  ///< frame delivered twice
  double corrupt{0};    ///< one byte flipped (envelope crc catches it)
  double reorder{0};    ///< frame held and released after its successor
  double delay{0};      ///< extra uniform delay in [delay_min, delay_max]
  Duration delay_min{Duration::micros(200)};
  Duration delay_max{Duration::millis(5)};
};

/// What the script sees for every frame entering the link.
struct FrameInfo {
  int direction{0};                  ///< 0 = a->b, 1 = b->a
  std::uint64_t index{0};            ///< per-direction ordinal, 0-based
  std::span<const std::byte> bytes;  ///< encoded frame, pre-fault
};

enum class ScriptAction : std::uint8_t {
  kPass,   ///< continue through the probabilistic faults
  kDrop,   ///< lose this frame
  kSever,  ///< hard-disconnect the link (script may schedule a restore)
};

/// Deterministic fault script, consulted before the probabilistic faults.
using FaultScript = std::function<ScriptAction(const FrameInfo&)>;

class FaultyLink {
 public:
  struct Options {
    FaultProfile a_to_b{};
    FaultProfile b_to_a{};
    std::uint64_t seed{1};
    /// A reordered (held) frame is flushed at most this long after capture
    /// even if no successor arrives.
    Duration reorder_flush{Duration::millis(5)};
  };

  struct Stats {
    std::uint64_t forwarded{0};
    std::uint64_t dropped{0};
    std::uint64_t duplicated{0};
    std::uint64_t corrupted{0};
    std::uint64_t reordered{0};
    std::uint64_t delayed{0};
    std::uint64_t partitioned{0};
    std::uint64_t script_dropped{0};
    std::uint64_t severed{0};
  };

  FaultyLink(sim::Simulation& sim, SimLink& inner, Options options);

  /// Decorated ends; wire nodes to these instead of the SimLink's own.
  [[nodiscard]] Channel& end_a() { return ends_[0]; }
  [[nodiscard]] Channel& end_b() { return ends_[1]; }

  void set_script(FaultScript script) { script_ = std::move(script); }

  /// One-way partition: silently discard every frame in one direction
  /// while both ends still look connected (the asymmetric failure a
  /// watchdog is hardest against).
  void set_partition(int direction, bool blocked);

  /// Master switch: while disabled, frames pass through untouched
  /// (partitions and scripts included) — used to quiesce a chaos run.
  void set_enabled(bool enabled) { enabled_ = enabled; }

  /// Hard disconnect / repair of the underlying link.
  void sever() { inner_.sever(); }
  void restore() { inner_.restore(); }

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  class End final : public Channel {
   public:
    void set_message_handler(MessageHandler handler) override;
    void set_disconnect_handler(DisconnectHandler handler) override;
    Status send(std::vector<std::byte> frame) override;
    [[nodiscard]] bool connected() const override;
    void close() override;

   private:
    friend class FaultyLink;
    FaultyLink* link_{nullptr};
    int index_{0};
  };

  [[nodiscard]] Channel& inner_end(int direction) {
    return direction == 0 ? inner_.end_a() : inner_.end_b();
  }
  Status inject(int direction, std::vector<std::byte> frame);
  void forward(int direction, std::vector<std::byte> frame);
  Status deliver(int direction, std::vector<std::byte> frame);
  void flush_held(int direction);

  sim::Simulation& sim_;
  SimLink& inner_;
  Options options_;
  std::array<Rng, 2> rng_;
  std::array<End, 2> ends_;
  FaultScript script_;
  bool enabled_{true};
  std::array<bool, 2> partitioned_{false, false};
  std::array<std::uint64_t, 2> frame_count_{0, 0};
  std::array<std::optional<std::vector<std::byte>>, 2> held_{};
  std::array<sim::EventId, 2> flush_event_{sim::kInvalidEvent,
                                           sim::kInvalidEvent};
  Stats stats_;
};

}  // namespace rodain::net
