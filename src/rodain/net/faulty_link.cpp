#include "rodain/net/faulty_link.hpp"

#include "rodain/obs/obs.hpp"

namespace rodain::net {

namespace {
struct FaultMetrics {
  obs::Counter& dropped = obs::metrics().counter("net.fault.dropped");
  obs::Counter& duplicated = obs::metrics().counter("net.fault.duplicated");
  obs::Counter& corrupted = obs::metrics().counter("net.fault.corrupted");
  obs::Counter& reordered = obs::metrics().counter("net.fault.reordered");
  obs::Counter& delayed = obs::metrics().counter("net.fault.delayed");
  obs::Counter& partitioned = obs::metrics().counter("net.fault.partitioned");
  obs::Counter& severed = obs::metrics().counter("net.fault.severed");
};
FaultMetrics& fm() {
  static FaultMetrics m;
  return m;
}
}  // namespace

void FaultyLink::End::set_message_handler(MessageHandler handler) {
  link_->inner_end(index_).set_message_handler(std::move(handler));
}

void FaultyLink::End::set_disconnect_handler(DisconnectHandler handler) {
  link_->inner_end(index_).set_disconnect_handler(std::move(handler));
}

Status FaultyLink::End::send(std::vector<std::byte> frame) {
  return link_->inject(index_, std::move(frame));
}

bool FaultyLink::End::connected() const {
  return link_->inner_end(index_).connected();
}

void FaultyLink::End::close() { link_->inner_end(index_).close(); }

FaultyLink::FaultyLink(sim::Simulation& sim, SimLink& inner, Options options)
    : sim_(sim), inner_(inner), options_(options) {
  Rng seeder(options_.seed);
  rng_[0] = seeder.split();
  rng_[1] = seeder.split();
  for (int i = 0; i < 2; ++i) {
    ends_[i].link_ = this;
    ends_[i].index_ = i;
  }
}

void FaultyLink::set_partition(int direction, bool blocked) {
  partitioned_[static_cast<std::size_t>(direction)] = blocked;
}

Status FaultyLink::inject(int direction, std::vector<std::byte> frame) {
  const auto d = static_cast<std::size_t>(direction);
  const std::uint64_t index = frame_count_[d]++;
  if (!enabled_) return deliver(direction, std::move(frame));
  if (script_) {
    switch (script_(FrameInfo{direction, index, frame})) {
      case ScriptAction::kDrop:
        ++stats_.script_dropped;
        return Status::ok();
      case ScriptAction::kSever:
        ++stats_.severed;
        fm().severed.inc();
        inner_.sever();
        return Status::error(ErrorCode::kUnavailable,
                             "fault script severed the link");
      case ScriptAction::kPass:
        break;
    }
  }
  if (partitioned_[d]) {
    ++stats_.partitioned;
    fm().partitioned.inc();
    return Status::ok();  // silent one-way loss: the sender sees success
  }
  const FaultProfile& p = direction == 0 ? options_.a_to_b : options_.b_to_a;
  Rng& rng = rng_[d];
  if (p.drop > 0 && rng.next_bool(p.drop)) {
    ++stats_.dropped;
    fm().dropped.inc();
    return Status::ok();
  }
  if (p.corrupt > 0 && !frame.empty() && rng.next_bool(p.corrupt)) {
    const std::uint64_t at = rng.next_below(frame.size());
    frame[at] ^= static_cast<std::byte>(1u << rng.next_below(8));
    ++stats_.corrupted;
    fm().corrupted.inc();
  }
  std::optional<std::vector<std::byte>> dup;
  if (p.duplicate > 0 && rng.next_bool(p.duplicate)) dup = frame;
  forward(direction, std::move(frame));
  if (dup) {
    ++stats_.duplicated;
    fm().duplicated.inc();
    forward(direction, std::move(*dup));
  }
  return Status::ok();
}

void FaultyLink::forward(int direction, std::vector<std::byte> frame) {
  const auto d = static_cast<std::size_t>(direction);
  const FaultProfile& p = direction == 0 ? options_.a_to_b : options_.b_to_a;
  if (p.reorder > 0 && !held_[d] && rng_[d].next_bool(p.reorder)) {
    // Hold this frame; it is released right after the next frame in this
    // direction (a one-frame swap), or by the flush timer if none comes.
    ++stats_.reordered;
    fm().reordered.inc();
    held_[d] = std::move(frame);
    flush_event_[d] =
        sim_.schedule_after(options_.reorder_flush, [this, direction, d] {
          flush_event_[d] = sim::kInvalidEvent;
          flush_held(direction);
        });
    return;
  }
  (void)deliver(direction, std::move(frame));
  flush_held(direction);
}

void FaultyLink::flush_held(int direction) {
  const auto d = static_cast<std::size_t>(direction);
  if (!held_[d]) return;
  if (flush_event_[d] != sim::kInvalidEvent) {
    sim_.cancel(flush_event_[d]);
    flush_event_[d] = sim::kInvalidEvent;
  }
  auto frame = std::move(*held_[d]);
  held_[d].reset();
  (void)deliver(direction, std::move(frame));
}

Status FaultyLink::deliver(int direction, std::vector<std::byte> frame) {
  const auto d = static_cast<std::size_t>(direction);
  const FaultProfile& p = direction == 0 ? options_.a_to_b : options_.b_to_a;
  if (enabled_ && p.delay > 0 && rng_[d].next_bool(p.delay)) {
    const std::int64_t lo = p.delay_min.us;
    const std::int64_t hi = std::max(lo, p.delay_max.us);
    const auto extra = Duration::micros(
        lo + static_cast<std::int64_t>(
                 rng_[d].next_below(static_cast<std::uint64_t>(hi - lo + 1))));
    ++stats_.delayed;
    fm().delayed.inc();
    sim_.schedule_after(extra,
                        [this, direction, f = std::move(frame)]() mutable {
                          // The link may have been severed while the frame
                          // sat in the delay queue; then it is simply lost.
                          if (inner_end(direction).send(std::move(f))) {
                            ++stats_.forwarded;
                          }
                        });
    return Status::ok();
  }
  Status s = inner_end(direction).send(std::move(frame));
  if (s) ++stats_.forwarded;
  return s;
}

}  // namespace rodain::net
