#include "rodain/net/sim_link.hpp"

#include <utility>

namespace rodain::net {

SimLink::SimLink(sim::Simulation& sim, Options options)
    : sim_(sim), options_(options), rng_(options.seed) {
  for (int i = 0; i < 2; ++i) {
    ends_[static_cast<std::size_t>(i)].link_ = this;
    ends_[static_cast<std::size_t>(i)].index_ = i;
  }
  tx_free_.fill(TimePoint::origin());
}

Status SimLink::End::send(std::vector<std::byte> frame) {
  if (!link_->up_) {
    return Status::error(ErrorCode::kUnavailable, "link down");
  }
  link_->transmit(index_, std::move(frame));
  return Status::ok();
}

bool SimLink::End::connected() const { return link_->up_; }

void SimLink::End::close() { link_->sever(); }

void SimLink::transmit(int from, std::vector<std::byte> frame) {
  const int to = 1 - from;
  Duration delay = options_.latency;
  if (options_.jitter.is_positive()) {
    delay += Duration::micros(static_cast<std::int64_t>(
        rng_.next_below(static_cast<std::uint64_t>(options_.jitter.us) + 1)));
  }
  Duration ser = options_.per_frame_overhead;
  if (options_.bandwidth_bytes_per_sec > 0) {
    const double bps = static_cast<double>(options_.bandwidth_bytes_per_sec);
    const double seconds = static_cast<double>(frame.size()) / bps;
    ser += Duration::micros(static_cast<std::int64_t>(seconds * 1e6));
  }
  if (ser.is_positive()) {
    // The sender's transmitter is serial: frames queue behind each other.
    auto& free_at = tx_free_[static_cast<std::size_t>(from)];
    const TimePoint start = std::max(free_at, sim_.now());
    free_at = start + ser;
    delay += (free_at - sim_.now());
  }
  const std::uint64_t gen = generation_;
  const std::size_t bytes = frame.size();
  sim_.schedule_after(delay, [this, to, gen, bytes,
                              f = std::move(frame)]() mutable {
    if (gen != generation_ || !up_) return;  // dropped with the old link
    ++delivered_;
    bytes_ += bytes;
    auto& handler = ends_[static_cast<std::size_t>(to)].handler_;
    if (handler) handler(std::move(f));
  });
}

void SimLink::sever() {
  if (!up_) return;
  up_ = false;
  ++generation_;
  for (End& e : ends_) {
    if (e.on_disconnect_) e.on_disconnect_();
  }
}

void SimLink::restore() {
  if (up_) return;
  up_ = true;
  ++generation_;
  tx_free_.fill(sim_.now());
}

}  // namespace rodain::net
