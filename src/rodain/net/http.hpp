// Minimal embedded HTTP/1.0 server for live observability exposition.
//
// One accept thread serves requests serially: read the request line, route
// the path through the handler, write the response, close. That is all a
// diagnostics endpoint needs — `curl localhost:PORT/metrics` while a node
// runs — and it keeps the server to a single thread with no connection
// state. Listens on 127.0.0.1 only, like TcpServer.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "rodain/common/status.hpp"

namespace rodain::net {

class HttpServer {
 public:
  struct Response {
    int status{200};
    std::string content_type{"text/plain; charset=utf-8"};
    std::string body;
  };

  /// Routes a request path ("/metrics") to a response. Runs on the server
  /// thread; must be callable until stop()/destruction.
  using Handler = std::function<Response(const std::string& path)>;

  /// Listen on 127.0.0.1:`port` (0 picks a free port).
  static Result<std::unique_ptr<HttpServer>> listen(std::uint16_t port,
                                                    Handler handler);
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  [[nodiscard]] std::uint16_t port() const { return port_; }
  void stop();

 private:
  HttpServer(int fd, std::uint16_t port, Handler handler);
  void serve_loop();
  void handle_connection(int fd);

  int listen_fd_;
  std::uint16_t port_;
  std::atomic<bool> stopping_{false};
  Handler handler_;
  std::thread server_;
};

}  // namespace rodain::net
