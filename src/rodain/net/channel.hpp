// Message channel abstraction.
//
// The replication layer (log shipping, acks, heartbeats, snapshots) is
// written against this interface; the simulator supplies a latency/bandwidth
// modelled SimLink and the real-time runtime supplies TCP connections.
// Channels are duplex, ordered and reliable while connected; disconnection
// is surfaced, not hidden.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "rodain/common/status.hpp"

namespace rodain::net {

class Channel {
 public:
  virtual ~Channel() = default;

  using MessageHandler = std::function<void(std::vector<std::byte>)>;
  using DisconnectHandler = std::function<void()>;

  virtual void set_message_handler(MessageHandler handler) = 0;
  virtual void set_disconnect_handler(DisconnectHandler handler) = 0;

  /// Queue one frame for delivery. Fails with kUnavailable when closed.
  virtual Status send(std::vector<std::byte> frame) = 0;

  [[nodiscard]] virtual bool connected() const = 0;
  virtual void close() = 0;
};

}  // namespace rodain::net
