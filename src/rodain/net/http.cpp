#include "rodain/net/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace rodain::net {

namespace {

const char* reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

bool send_all(int fd, const char* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t r = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

HttpServer::HttpServer(int fd, std::uint16_t port, Handler handler)
    : listen_fd_(fd), port_(port), handler_(std::move(handler)) {
  server_ = std::thread([this] { serve_loop(); });
}

Result<std::unique_ptr<HttpServer>> HttpServer::listen(std::uint16_t port,
                                                       Handler handler) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::error(ErrorCode::kIoError, "socket() failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return Status::error(ErrorCode::kIoError,
                         std::string("bind/listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof addr;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  return std::unique_ptr<HttpServer>(
      new HttpServer(fd, ntohs(addr.sin_port), std::move(handler)));
}

HttpServer::~HttpServer() {
  stop();
  if (server_.joinable()) server_.join();
  ::close(listen_fd_);
}

void HttpServer::stop() {
  if (!stopping_.exchange(true, std::memory_order_acq_rel)) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
}

void HttpServer::serve_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket shut down
    }
    handle_connection(fd);
    ::close(fd);
  }
}

void HttpServer::handle_connection(int fd) {
  // Bound the whole request read so a stalled client cannot wedge the
  // (single) server thread.
  timeval timeout{};
  timeout.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);

  std::string request;
  char buf[1024];
  while (request.size() < 8192 &&
         request.find("\r\n") == std::string::npos) {
    const ssize_t r = ::recv(fd, buf, sizeof buf, 0);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) break;
    request.append(buf, static_cast<std::size_t>(r));
  }

  const std::size_t line_end = request.find("\r\n");
  if (line_end == std::string::npos) return;  // malformed or timed out
  const std::string line = request.substr(0, line_end);

  Response resp;
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    resp = Response{405, "text/plain; charset=utf-8", "bad request\n"};
  } else if (line.substr(0, sp1) != "GET") {
    resp = Response{405, "text/plain; charset=utf-8", "GET only\n"};
  } else {
    std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    if (const std::size_t q = path.find('?'); q != std::string::npos) {
      path.resize(q);  // the routes take no query parameters
    }
    resp = handler_ ? handler_(path)
                    : Response{404, "text/plain; charset=utf-8", "no routes\n"};
  }

  std::string head = "HTTP/1.0 " + std::to_string(resp.status) + " " +
                     reason_phrase(resp.status) + "\r\nContent-Type: " +
                     resp.content_type + "\r\nContent-Length: " +
                     std::to_string(resp.body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  if (send_all(fd, head.data(), head.size())) {
    send_all(fd, resp.body.data(), resp.body.size());
  }
}

}  // namespace rodain::net
