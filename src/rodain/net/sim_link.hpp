// Simulated point-to-point duplex link: constant propagation latency plus a
// serialization delay from link bandwidth, optional jitter, in-order
// delivery. sever()/restore() model node or link failure — undelivered
// frames on a severed link are dropped, exactly what a crashed peer means
// for the log-shipping protocol.
#pragma once

#include <array>
#include <deque>

#include "rodain/common/rng.hpp"
#include "rodain/net/channel.hpp"
#include "rodain/sim/simulation.hpp"

namespace rodain::net {

class SimLink {
 public:
  struct Options {
    /// One-way propagation delay (the paper's commit path costs one
    /// round-trip, i.e. 2x this).
    Duration latency{Duration::micros(500)};
    /// Uniform extra delay in [0, jitter].
    Duration jitter{Duration::zero()};
    /// Bytes/second; 0 disables serialization delay.
    double bandwidth_bytes_per_sec{12.5e6};  // 100 Mbit/s
    /// Fixed per-frame cost (protocol/processing overhead) occupying the
    /// sender's serial transmitter in addition to the byte time. This is
    /// the group-commit lever: many commits in one frame pay it once, and
    /// a per-txn frame stream saturates the transmitter at high rates.
    /// Zero (default) preserves the pure-bandwidth model.
    Duration per_frame_overhead{Duration::zero()};
    std::uint64_t seed{1};
  };

  SimLink(sim::Simulation& sim, Options options);

  [[nodiscard]] Channel& end_a() { return ends_[0]; }
  [[nodiscard]] Channel& end_b() { return ends_[1]; }

  /// Drop the link: both ends disconnect, in-flight frames vanish.
  void sever();
  /// Bring the link back (both ends reconnected, fresh stream).
  void restore();

  [[nodiscard]] bool up() const { return up_; }
  [[nodiscard]] std::uint64_t frames_delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t bytes_delivered() const { return bytes_; }

 private:
  class End final : public Channel {
   public:
    void set_message_handler(MessageHandler handler) override {
      handler_ = std::move(handler);
    }
    void set_disconnect_handler(DisconnectHandler handler) override {
      on_disconnect_ = std::move(handler);
    }
    Status send(std::vector<std::byte> frame) override;
    [[nodiscard]] bool connected() const override;
    void close() override;

   private:
    friend class SimLink;
    SimLink* link_{nullptr};
    int index_{0};
    MessageHandler handler_;
    DisconnectHandler on_disconnect_;
  };

  void transmit(int from, std::vector<std::byte> frame);

  sim::Simulation& sim_;
  Options options_;
  Rng rng_;
  std::array<End, 2> ends_;
  bool up_{true};
  /// Generation counter: frames in flight when the link is severed carry a
  /// stale generation and are discarded on delivery.
  std::uint64_t generation_{0};
  /// Per-direction time the channel becomes free (serialization delay).
  std::array<TimePoint, 2> tx_free_{};
  std::uint64_t delivered_{0};
  std::uint64_t bytes_{0};
};

}  // namespace rodain::net
