// Umbrella header for the rodain library.
//
//   db::Database       embedded single-node database (quickstart)
//   rt::Node           real-time node with roles (primary / mirror) over TCP
//   simdb::SimCluster  deterministic simulated pair (experiments)
//   txn::TxnProgram    transactions as replayable programs
//
// See README.md for the architecture overview and examples/ for usage.
#pragma once

#include "rodain/db/database.hpp"
#include "rodain/exp/session.hpp"
#include "rodain/net/tcp.hpp"
#include "rodain/rt/node.hpp"
#include "rodain/simdb/sim_cluster.hpp"
#include "rodain/workload/calibration.hpp"
#include "rodain/workload/trace.hpp"
