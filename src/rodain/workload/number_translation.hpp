// The paper's test database and workload (§4): a number translation
// service — the Intelligent Network service that maps a dialled number
// (e.g. a freephone 0800 number) to a routing target.
//
// Database: `num_objects` subscriber records (30 000 in the paper),
// indexed by dialled number in the B+-tree. Record layout:
//   [0..8)   routing target (u64)
//   [8..16)  call counter (u64)
//   [16..)   service profile bytes
//
// Workload: a variable mix of two transactions —
//   * read-only service provision: look up and read a few records, commit
//     (relative firm deadline 50 ms);
//   * update service provision: read a few records, update some of them,
//     commit (relative firm deadline 150 ms).
#pragma once

#include <cstdint>

#include "rodain/common/rng.hpp"
#include "rodain/common/time.hpp"
#include "rodain/storage/btree.hpp"
#include "rodain/storage/object_store.hpp"
#include "rodain/txn/program.hpp"

namespace rodain::workload {

struct DatabaseConfig {
  std::size_t num_objects{30000};
  std::size_t profile_bytes{32};  ///< extra payload beyond the two u64 fields
  std::uint64_t seed{4242};
};

/// The dialled number of subscriber `i` ("0800" + 8 digits).
[[nodiscard]] storage::IndexKey number_for(std::size_t i);
/// The ObjectId of subscriber `i`.
[[nodiscard]] constexpr ObjectId oid_for(std::size_t i) {
  return static_cast<ObjectId>(i) + 1;  // 0 is reserved
}

inline constexpr std::uint32_t kRoutingOffset = 0;
inline constexpr std::uint32_t kCounterOffset = 8;

/// Build the subscriber database into an (empty) store + index.
void load_database(const DatabaseConfig& config, storage::ObjectStore& store,
                   storage::BPlusTree& index);

struct WorkloadConfig {
  double write_fraction{0.5};     ///< share of update transactions
  std::size_t reads_per_txn{4};   ///< records touched by either kind
  std::size_t updates_per_txn{2}; ///< records updated by a write txn
  Duration read_deadline{Duration::millis(50)};
  Duration write_deadline{Duration::millis(150)};
  /// Access skew (0 = uniform, the paper's workload).
  double zipf_theta{0.0};
  /// Read through the number index (the service's access path) instead of
  /// directly by object id.
  bool use_index{true};
  /// Share of transactions with no deadline at all (served from the
  /// reserved fraction; 0 in the paper's measurements).
  double nonrt_fraction{0.0};
};

/// Deterministic transaction-mix generator.
class TxnGenerator {
 public:
  TxnGenerator(const DatabaseConfig& database, const WorkloadConfig& workload,
               Rng rng);

  [[nodiscard]] txn::TxnProgram next();

 private:
  [[nodiscard]] std::size_t pick_subscriber();

  DatabaseConfig database_;
  WorkloadConfig workload_;
  Rng rng_;
};

}  // namespace rodain::workload
