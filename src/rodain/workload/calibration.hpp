// The paper's experimental setup (§4) as ready-made configurations.
//
// Hardware substitution (DESIGN.md): per-operation CPU costs are calibrated
// so that the pure transaction mix saturates a single simulated CPU at the
// 200–300 txn/s knee the paper reports for its Pentium Pro 200 MHz node,
// the LAN costs one ~1 ms round trip on the commit path, and the log disk
// behaves like a late-1990s drive (~8 ms per synchronous write).
#pragma once

#include "rodain/engine/engine.hpp"
#include "rodain/simdb/sim_cluster.hpp"
#include "rodain/workload/number_translation.hpp"

namespace rodain::workload {

struct PaperSetup {
  /// 30 000-object number-translation database.
  [[nodiscard]] static DatabaseConfig database() {
    DatabaseConfig d;
    d.num_objects = 30000;
    return d;
  }

  /// The §4 transaction mix at a given update-transaction share.
  [[nodiscard]] static WorkloadConfig workload(double write_fraction) {
    WorkloadConfig w;
    w.write_fraction = write_fraction;
    w.reads_per_txn = 4;
    w.updates_per_txn = 2;
    w.read_deadline = Duration::millis(50);
    w.write_deadline = Duration::millis(150);
    return w;
  }

  /// CPU costs (DESIGN.md §5).
  [[nodiscard]] static engine::CostModel costs() {
    engine::CostModel m;
    m.txn_fixed = Duration::micros(1200);
    m.per_read = Duration::micros(350);
    m.per_update = Duration::micros(550);
    m.per_index_lookup = Duration::micros(80);
    m.validate = Duration::micros(250);
    m.per_install = Duration::micros(100);
    m.per_log_marshal = Duration::micros(50);
    m.commit_finalize = Duration::micros(200);
    return m;
  }

  /// Overload manager: at most 50 concurrently active transactions.
  [[nodiscard]] static sched::OverloadConfig overload() {
    sched::OverloadConfig o;
    o.max_active = 50;
    o.miss_feedback = true;
    return o;
  }

  /// Node with the paper's engine, scheduler and a ~1998 disk.
  [[nodiscard]] static simdb::SimNodeConfig node(bool disk_enabled,
                                                 cc::Protocol protocol =
                                                     cc::Protocol::kOccDati) {
    simdb::SimNodeConfig n;
    n.engine.protocol = protocol;
    n.engine.costs = costs();
    n.overload = overload();
    n.disk_enabled = disk_enabled;
    n.disk.seek_time = Duration::millis(8);
    n.disk.throughput_bytes_per_sec = 4.0 * 1024 * 1024;
    n.store_capacity_hint = database().num_objects;
    return n;
  }

  /// Two-node system: Primary ships logs to the Mirror (Fig. 2/3 "two
  /// node"); the mirror's disk flushes are asynchronous group writes.
  [[nodiscard]] static simdb::SimClusterConfig two_node(bool disk_enabled) {
    simdb::SimClusterConfig c;
    c.node = node(disk_enabled);
    c.node.disk.coalesce_flushes = true;  // mirror disk is off the commit path
    c.two_nodes = true;
    c.primary_log_mode = LogMode::kMirror;
    c.link.latency = Duration::micros(500);  // 1 ms round trip
    return c;
  }

  /// Lone node logging straight to disk before commit (Fig. 2 "single
  /// node"; with disk_enabled=false, Fig. 3's single-node series).
  [[nodiscard]] static simdb::SimClusterConfig single_node(bool disk_enabled) {
    simdb::SimClusterConfig c;
    c.node = node(disk_enabled);
    // Synchronous per-commit writes: no group commit on the critical path.
    c.node.disk.coalesce_flushes = false;
    c.two_nodes = false;
    c.primary_log_mode = LogMode::kDirectDisk;
    return c;
  }

  /// Logging turned off entirely (Fig. 3 "No logs" optimal series).
  [[nodiscard]] static simdb::SimClusterConfig no_logging() {
    simdb::SimClusterConfig c;
    c.node = node(false);
    c.two_nodes = false;
    c.primary_log_mode = LogMode::kOff;
    return c;
  }
};

}  // namespace rodain::workload
