#include "rodain/workload/trace.hpp"

#include <cstdio>

namespace rodain::workload {

namespace {
constexpr std::uint64_t kTraceMagic = 0x3143'5254'444f'52ULL;  // "RODTRC1"
constexpr std::uint8_t kOpRead = 1;
constexpr std::uint8_t kOpReadKey = 2;
constexpr std::uint8_t kOpUpdate = 3;
constexpr std::uint8_t kOpCompute = 4;
constexpr std::uint8_t kOpInsert = 5;
constexpr std::uint8_t kOpDelete = 6;
}  // namespace

Trace Trace::generate(const DatabaseConfig& database,
                      const WorkloadConfig& workload, double rate_tps,
                      std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  TxnGenerator generator(database, workload, rng.split());
  Trace trace;
  double t_us = 0;
  const double mean_gap_us = 1e6 / rate_tps;
  for (std::size_t i = 0; i < count; ++i) {
    t_us += rng.next_exponential(mean_gap_us);
    trace.append(TraceEntry{Duration::micros(static_cast<std::int64_t>(t_us)),
                            generator.next()});
  }
  return trace;
}

void encode_program(const txn::TxnProgram& p, ByteWriter& out) {
  out.put_u8(static_cast<std::uint8_t>(p.criticality));
  out.put_varint(static_cast<std::uint64_t>(p.relative_deadline.us));
  out.put_varint(p.ops.size());
  for (const txn::Op& op : p.ops) {
    if (const auto* read = std::get_if<txn::ReadOp>(&op)) {
      out.put_u8(kOpRead);
      out.put_varint(read->oid);
    } else if (const auto* read_key = std::get_if<txn::ReadKeyOp>(&op)) {
      out.put_u8(kOpReadKey);
      out.put_raw(std::as_bytes(std::span{read_key->key.bytes}));
    } else if (const auto* update = std::get_if<txn::UpdateOp>(&op)) {
      out.put_u8(kOpUpdate);
      out.put_u8(static_cast<std::uint8_t>(update->kind));
      out.put_varint(update->oid);
      out.put_varint(update->delta);
      out.put_u32(update->field_offset);
      out.put_bytes(update->value.view());
    } else if (const auto* insert = std::get_if<txn::InsertOp>(&op)) {
      out.put_u8(kOpInsert);
      out.put_varint(insert->oid);
      out.put_u8(insert->has_key ? 1 : 0);
      if (insert->has_key) out.put_raw(std::as_bytes(std::span{insert->key.bytes}));
      out.put_bytes(insert->value.view());
    } else if (const auto* erase = std::get_if<txn::DeleteOp>(&op)) {
      out.put_u8(kOpDelete);
      out.put_varint(erase->oid);
      out.put_u8(erase->has_key ? 1 : 0);
      if (erase->has_key) out.put_raw(std::as_bytes(std::span{erase->key.bytes}));
    } else {
      const auto& compute = std::get<txn::ComputeOp>(op);
      out.put_u8(kOpCompute);
      out.put_varint(static_cast<std::uint64_t>(compute.cost.us));
    }
  }
}

Status decode_program(ByteReader& in, txn::TxnProgram& out) {
  std::uint8_t crit = 0;
  std::uint64_t deadline_us = 0;
  std::uint64_t op_count = 0;
  if (auto s = in.get_u8(crit); !s) return s;
  if (crit > static_cast<std::uint8_t>(Criticality::kFirm)) {
    return Status::error(ErrorCode::kCorruption, "bad criticality");
  }
  if (auto s = in.get_varint(deadline_us); !s) return s;
  if (auto s = in.get_varint(op_count); !s) return s;
  out = txn::TxnProgram{};
  out.criticality = static_cast<Criticality>(crit);
  out.relative_deadline = Duration::micros(static_cast<std::int64_t>(deadline_us));
  out.ops.reserve(op_count);
  for (std::uint64_t i = 0; i < op_count; ++i) {
    std::uint8_t kind = 0;
    if (auto s = in.get_u8(kind); !s) return s;
    switch (kind) {
      case kOpRead: {
        txn::ReadOp op;
        if (auto s = in.get_varint(op.oid); !s) return s;
        out.ops.emplace_back(op);
        break;
      }
      case kOpReadKey: {
        txn::ReadKeyOp op;
        std::span<const std::byte> raw;
        if (auto s = in.get_raw(op.key.bytes.size(), raw); !s) return s;
        std::memcpy(op.key.bytes.data(), raw.data(), raw.size());
        out.ops.emplace_back(op);
        break;
      }
      case kOpUpdate: {
        txn::UpdateOp op;
        std::uint8_t update_kind = 0;
        std::vector<std::byte> value;
        if (auto s = in.get_u8(update_kind); !s) return s;
        if (update_kind > static_cast<std::uint8_t>(txn::UpdateOp::Kind::kAddToField)) {
          return Status::error(ErrorCode::kCorruption, "bad update kind");
        }
        op.kind = static_cast<txn::UpdateOp::Kind>(update_kind);
        if (auto s = in.get_varint(op.oid); !s) return s;
        if (auto s = in.get_varint(op.delta); !s) return s;
        if (auto s = in.get_u32(op.field_offset); !s) return s;
        if (auto s = in.get_bytes(value); !s) return s;
        op.value = storage::Value{std::span<const std::byte>{value}};
        out.ops.emplace_back(std::move(op));
        break;
      }
      case kOpCompute: {
        std::uint64_t cost_us = 0;
        if (auto s = in.get_varint(cost_us); !s) return s;
        out.ops.emplace_back(
            txn::ComputeOp{Duration::micros(static_cast<std::int64_t>(cost_us))});
        break;
      }
      case kOpInsert: {
        txn::InsertOp op;
        std::uint8_t has_key = 0;
        std::vector<std::byte> value;
        if (auto s = in.get_varint(op.oid); !s) return s;
        if (auto s = in.get_u8(has_key); !s) return s;
        if (has_key > 1) return Status::error(ErrorCode::kCorruption, "bad key flag");
        op.has_key = has_key == 1;
        if (op.has_key) {
          std::span<const std::byte> raw;
          if (auto s = in.get_raw(op.key.bytes.size(), raw); !s) return s;
          std::memcpy(op.key.bytes.data(), raw.data(), raw.size());
        }
        if (auto s = in.get_bytes(value); !s) return s;
        op.value = storage::Value{std::span<const std::byte>{value}};
        out.ops.emplace_back(std::move(op));
        break;
      }
      case kOpDelete: {
        txn::DeleteOp op;
        std::uint8_t has_key = 0;
        if (auto s = in.get_varint(op.oid); !s) return s;
        if (auto s = in.get_u8(has_key); !s) return s;
        if (has_key > 1) return Status::error(ErrorCode::kCorruption, "bad key flag");
        op.has_key = has_key == 1;
        if (op.has_key) {
          std::span<const std::byte> raw;
          if (auto s = in.get_raw(op.key.bytes.size(), raw); !s) return s;
          std::memcpy(op.key.bytes.data(), raw.data(), raw.size());
        }
        out.ops.emplace_back(op);
        break;
      }
      default:
        return Status::error(ErrorCode::kCorruption, "unknown trace op");
    }
  }
  return Status::ok();
}

void Trace::encode(ByteWriter& out) const {
  const std::size_t body_start = out.size();
  out.put_u64(kTraceMagic);
  out.put_varint(entries_.size());
  for (const TraceEntry& e : entries_) {
    out.put_varint(static_cast<std::uint64_t>(e.offset.us));
    encode_program(e.program, out);
  }
  out.put_u32(crc32c(out.view().subspan(body_start)));
}

Result<Trace> Trace::decode(std::span<const std::byte> data) {
  if (data.size() < 12) {
    return Status::error(ErrorCode::kCorruption, "trace too short");
  }
  const auto body = data.subspan(0, data.size() - 4);
  ByteReader crc_reader(data.subspan(data.size() - 4));
  std::uint32_t expect = 0;
  if (auto s = crc_reader.get_u32(expect); !s) return s;
  if (crc32c(body) != expect) {
    return Status::error(ErrorCode::kCorruption, "trace CRC mismatch");
  }
  ByteReader in(body);
  std::uint64_t magic = 0;
  std::uint64_t count = 0;
  if (auto s = in.get_u64(magic); !s) return s;
  if (magic != kTraceMagic) {
    return Status::error(ErrorCode::kCorruption, "bad trace magic");
  }
  if (auto s = in.get_varint(count); !s) return s;
  Trace trace;
  trace.entries_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    TraceEntry e;
    std::uint64_t offset_us = 0;
    if (auto s = in.get_varint(offset_us); !s) return s;
    e.offset = Duration::micros(static_cast<std::int64_t>(offset_us));
    if (auto s = decode_program(in, e.program); !s) return s;
    trace.entries_.push_back(std::move(e));
  }
  if (!in.at_end()) {
    return Status::error(ErrorCode::kCorruption, "trailing trace bytes");
  }
  return trace;
}

Status Trace::save(const std::string& path) const {
  ByteWriter w;
  encode(w);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return Status::error(ErrorCode::kIoError, "cannot open " + path);
  const auto view = w.view();
  const bool ok = std::fwrite(view.data(), 1, view.size(), f) == view.size();
  std::fclose(f);
  if (!ok) return Status::error(ErrorCode::kIoError, "short trace write");
  return Status::ok();
}

Result<Trace> Trace::load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return Status::error(ErrorCode::kNotFound, "cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  const long len = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<std::byte> buf(static_cast<std::size_t>(len < 0 ? 0 : len));
  const bool ok = std::fread(buf.data(), 1, buf.size(), f) == buf.size();
  std::fclose(f);
  if (!ok) return Status::error(ErrorCode::kIoError, "short trace read");
  return decode(buf);
}

}  // namespace rodain::workload
