#include "rodain/workload/number_translation.hpp"

#include <cstdio>

namespace rodain::workload {

storage::IndexKey number_for(std::size_t i) {
  char digits[24];
  std::snprintf(digits, sizeof digits, "0800%08zu", i);
  return storage::IndexKey::from_string(std::string_view{digits, 12});
}

void load_database(const DatabaseConfig& config, storage::ObjectStore& store,
                   storage::BPlusTree& index) {
  Rng rng(config.seed);
  std::vector<std::byte> payload(16 + config.profile_bytes);
  for (std::size_t i = 0; i < config.num_objects; ++i) {
    for (std::size_t b = 16; b < payload.size(); ++b) {
      payload[b] = static_cast<std::byte>(rng.next_below(256));
    }
    storage::Value value{std::span<const std::byte>{payload}};
    // Routing target: some other subscriber (deterministic).
    value.write_u64(kRoutingOffset, rng.next_below(config.num_objects));
    value.write_u64(kCounterOffset, 0);
    store.upsert(oid_for(i), std::move(value), 0);
    index.insert(number_for(i), oid_for(i));
  }
}

TxnGenerator::TxnGenerator(const DatabaseConfig& database,
                           const WorkloadConfig& workload, Rng rng)
    : database_(database), workload_(workload), rng_(rng) {}

std::size_t TxnGenerator::pick_subscriber() {
  if (workload_.zipf_theta > 0.0) {
    return rng_.next_zipf(database_.num_objects, workload_.zipf_theta);
  }
  return rng_.next_below(database_.num_objects);
}

txn::TxnProgram TxnGenerator::next() {
  txn::TxnProgram program;
  const bool is_write = rng_.next_bool(workload_.write_fraction);

  // Distinct subscribers per transaction (repeat picks allowed to collide
  // only across transactions, matching the paper's "a few objects").
  std::vector<std::size_t> subscribers;
  subscribers.reserve(workload_.reads_per_txn);
  while (subscribers.size() < workload_.reads_per_txn) {
    const std::size_t s = pick_subscriber();
    bool dup = false;
    for (std::size_t t : subscribers) dup |= (t == s);
    if (!dup) subscribers.push_back(s);
  }

  for (std::size_t s : subscribers) {
    if (workload_.use_index) {
      program.read_key(number_for(s));
    } else {
      program.read(oid_for(s));
    }
  }
  if (is_write) {
    // Update the first `updates_per_txn` records that were read: bump the
    // call counter and re-route.
    const std::size_t n = std::min(workload_.updates_per_txn, subscribers.size());
    for (std::size_t u = 0; u < n; ++u) {
      program.add_to_field(oid_for(subscribers[u]), kCounterOffset, 1);
    }
    program.with_deadline(workload_.write_deadline);
  } else {
    program.with_deadline(workload_.read_deadline);
  }

  if (workload_.nonrt_fraction > 0.0 && rng_.next_bool(workload_.nonrt_fraction)) {
    program.with_criticality(Criticality::kNonRealTime);
  } else {
    program.with_criticality(Criticality::kFirm);
  }
  return program;
}

}  // namespace rodain::workload
