// Off-line generated test files (paper §4): "All transactions arrive at the
// RODAIN Prototype through a specific interface process, that reads the load
// descriptions from an off-line generated test file."
//
// A trace is a list of (arrival offset, transaction program) pairs. Traces
// are generated with Poisson arrivals, serialized to a CRC-protected binary
// file, and replayed by the experiment harness and the rt runtime alike —
// so a session is reproducible bit-for-bit across both drivers.
#pragma once

#include <string>
#include <vector>

#include "rodain/common/serialization.hpp"
#include "rodain/common/status.hpp"
#include "rodain/workload/number_translation.hpp"

namespace rodain::workload {

struct TraceEntry {
  Duration offset;  ///< arrival time relative to session start
  txn::TxnProgram program;
};

class Trace {
 public:
  Trace() = default;

  /// Generate `count` transactions with Poisson arrivals at `rate_tps`.
  [[nodiscard]] static Trace generate(const DatabaseConfig& database,
                                      const WorkloadConfig& workload,
                                      double rate_tps, std::size_t count,
                                      std::uint64_t seed);

  [[nodiscard]] const std::vector<TraceEntry>& entries() const { return entries_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] Duration duration() const {
    return entries_.empty() ? Duration::zero() : entries_.back().offset;
  }

  void append(TraceEntry entry) { entries_.push_back(std::move(entry)); }

  // Binary round trip.
  void encode(ByteWriter& out) const;
  [[nodiscard]] static Result<Trace> decode(std::span<const std::byte> data);
  [[nodiscard]] Status save(const std::string& path) const;
  [[nodiscard]] static Result<Trace> load(const std::string& path);

 private:
  std::vector<TraceEntry> entries_;
};

// Program (de)serialization, shared with the trace format.
void encode_program(const txn::TxnProgram& p, ByteWriter& out);
[[nodiscard]] Status decode_program(ByteReader& in, txn::TxnProgram& out);

}  // namespace rodain::workload
