// Transactions as replayable programs.
//
// The paper's workload arrives through an interface process replaying an
// off-line generated test file (§4), so transactions must be value objects:
// a sequence of operations that can be generated, serialized into a trace,
// scheduled, preempted, restarted after a concurrency-control abort, and
// re-executed deterministically. Closure-style transactions (arbitrary C++
// lambdas) are offered by the embedded facade on top of this.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "rodain/common/time.hpp"
#include "rodain/common/types.hpp"
#include "rodain/storage/btree.hpp"
#include "rodain/storage/value.hpp"

namespace rodain::txn {

/// Read an object by id.
struct ReadOp {
  ObjectId oid{kInvalidObject};
};

/// Look an object id up in the secondary index by key, then read it.
struct ReadKeyOp {
  storage::IndexKey key;
};

/// Deferred update of an object (applied to the private copy; installed
/// only after validation, paper §2).
struct UpdateOp {
  enum class Kind : std::uint8_t {
    kSetValue = 0,    ///< replace the whole payload with `value`
    kAddToField = 1,  ///< 64-bit add of `delta` at byte `field_offset`
  };
  ObjectId oid{kInvalidObject};
  Kind kind{Kind::kSetValue};
  storage::Value value;           // kSetValue payload
  std::uint64_t delta{0};         // kAddToField amount
  std::uint32_t field_offset{0};  // kAddToField position
};

/// Create (or overwrite) an object, optionally registering a secondary-index
/// entry — subscriber provisioning. The index entry travels with the redo
/// record so the mirror and recovery maintain the index too.
struct InsertOp {
  ObjectId oid{kInvalidObject};
  storage::Value value;
  bool has_key{false};
  storage::IndexKey key{};
};

/// Delete an object (tombstoned in the store so concurrency control stays
/// sound), optionally dropping its secondary-index entry.
struct DeleteOp {
  ObjectId oid{kInvalidObject};
  bool has_key{false};
  storage::IndexKey key{};
};

/// Pure CPU work (service logic between data accesses).
struct ComputeOp {
  Duration cost{Duration::zero()};
};

using Op = std::variant<ReadOp, ReadKeyOp, UpdateOp, InsertOp, DeleteOp, ComputeOp>;

/// A complete transaction: operations plus its real-time attributes
/// (criticality and relative deadline — "attributes like criticality and
/// deadline that are used in their scheduling", paper §2).
struct TxnProgram {
  std::vector<Op> ops;
  Criticality criticality{Criticality::kFirm};
  Duration relative_deadline{Duration::millis(50)};

  [[nodiscard]] std::size_t num_updates() const;
  [[nodiscard]] std::size_t num_reads() const;  ///< ReadOp + ReadKeyOp

  // Fluent builders used by workload generators and examples.
  TxnProgram& read(ObjectId oid);
  TxnProgram& read_key(const storage::IndexKey& key);
  TxnProgram& set_value(ObjectId oid, storage::Value v);
  TxnProgram& add_to_field(ObjectId oid, std::uint32_t offset, std::uint64_t delta);
  TxnProgram& insert(ObjectId oid, storage::Value v);
  TxnProgram& insert(ObjectId oid, const storage::IndexKey& key, storage::Value v);
  TxnProgram& erase(ObjectId oid);
  TxnProgram& erase(ObjectId oid, const storage::IndexKey& key);
  TxnProgram& compute(Duration cost);
  TxnProgram& with_deadline(Duration d);
  TxnProgram& with_criticality(Criticality c);
};

}  // namespace rodain::txn
