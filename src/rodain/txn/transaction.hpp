// The in-flight transaction descriptor: program counter, deferred write set,
// read tracking, timestamp interval, and lifecycle state.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <mutex>
#include <optional>
#include <vector>

#include "rodain/common/time.hpp"
#include "rodain/common/types.hpp"
#include "rodain/obs/lifecycle.hpp"
#include "rodain/storage/value.hpp"
#include "rodain/txn/program.hpp"

namespace rodain::txn {

/// Lifecycle (paper §2–3): read phase → validation → write phase (installs
/// deferred copies + emits redo log) → wait for the commit-record ack →
/// committed. Aborts may happen any time before validation succeeds.
enum class Phase : std::uint8_t {
  kReadPhase = 0,
  kValidating,
  kWritePhase,
  kWaitLogAck,
  kCommitted,
  kAborted,
  kBlocked,  ///< 2PL only: waiting for a lock
};

[[nodiscard]] constexpr std::string_view to_string(Phase p) {
  switch (p) {
    case Phase::kReadPhase: return "read";
    case Phase::kValidating: return "validating";
    case Phase::kWritePhase: return "write";
    case Phase::kWaitLogAck: return "wait-log-ack";
    case Phase::kCommitted: return "committed";
    case Phase::kAborted: return "aborted";
    case Phase::kBlocked: return "blocked";
  }
  return "?";
}

/// One tracked read: which object and which committed version (its wts at
/// read time) the transaction observed. The observed wts anchors the lower
/// bound of the serialization interval.
struct ReadEntry {
  ObjectId oid{kInvalidObject};
  ValidationTs observed_wts{0};
  /// Captured outside the commit mutex (seqlock snapshot). Validation must
  /// re-check the observed wts against the store: the validator's forward
  /// scan may have missed this entry if it was appended mid-validation.
  bool optimistic{false};
};

/// One deferred write: the private after-image, installed at write phase.
/// kDelete entries install as tombstones; entries carrying an index key
/// register (kPut) or drop (kDelete) the secondary-index entry at install
/// and in the redo stream.
struct WriteEntry {
  enum class Kind : std::uint8_t { kPut = 0, kDelete };
  ObjectId oid{kInvalidObject};
  storage::Value after;
  Kind kind{Kind::kPut};
  bool has_key{false};
  storage::IndexKey key{};

  [[nodiscard]] bool is_delete() const { return kind == Kind::kDelete; }
};

/// Logical serialization-timestamp interval [lo, hi], inclusive.
/// OCC-TI / OCC-DATI shrink it; empty (lo > hi) means restart.
struct TsInterval {
  static constexpr ValidationTs kInf = std::numeric_limits<ValidationTs>::max();
  ValidationTs lo{1};
  ValidationTs hi{kInf};

  [[nodiscard]] bool empty() const { return lo > hi; }
  /// Clamp to [t+1, hi] — "serialize after t". t == kInf is unsatisfiable.
  void after(ValidationTs t) {
    if (t >= kInf) {
      lo = kInf;
      hi = kInf - 1;
      return;
    }
    lo = std::max(lo, t + 1);
  }
  /// Clamp to [lo, t-1] — "serialize before t". t == 0 is unsatisfiable.
  void before(ValidationTs t) {
    if (t == 0) {
      hi = 0;
      lo = std::max<ValidationTs>(lo, 1);
      return;
    }
    hi = std::min(hi, t - 1);
  }
  void reset() { *this = TsInterval{}; }
};

class Transaction {
 public:
  Transaction(TxnId id, std::uint64_t seq, TxnProgram program,
              TimePoint arrival, TimePoint deadline)
      : id_(id), admission_seq_(seq), program_(std::move(program)),
        arrival_(arrival), deadline_(deadline) {}

  [[nodiscard]] TxnId id() const { return id_; }
  [[nodiscard]] const TxnProgram& program() const { return program_; }
  [[nodiscard]] TimePoint arrival() const { return arrival_; }
  [[nodiscard]] TimePoint deadline() const { return deadline_; }
  [[nodiscard]] Criticality criticality() const { return program_.criticality; }

  /// EDF key; the admission sequence breaks deadline ties FIFO.
  [[nodiscard]] PriorityKey priority() const {
    return PriorityKey{program_.criticality, deadline_, admission_seq_};
  }

  [[nodiscard]] Phase phase() const { return phase_; }
  void set_phase(Phase p) { phase_ = p; }

  [[nodiscard]] std::size_t pc() const { return pc_; }
  void advance_pc() { ++pc_; }
  [[nodiscard]] bool program_done() const { return pc_ >= program_.ops.size(); }

  [[nodiscard]] const std::vector<ReadEntry>& read_set() const { return read_set_; }
  [[nodiscard]] const std::vector<WriteEntry>& write_set() const { return write_set_; }
  [[nodiscard]] std::vector<WriteEntry>& mutable_write_set() { return write_set_; }

  [[nodiscard]] bool in_read_set(ObjectId oid) const;
  [[nodiscard]] bool in_write_set(ObjectId oid) const;
  void note_read(ObjectId oid, ValidationTs observed_wts,
                 bool optimistic = false);
  /// Returns the private copy for `oid`, creating it from `base` on first
  /// write (deferred-write clone). Re-putting a deleted entry revives it.
  storage::Value& write_copy(ObjectId oid, const storage::Value& base);
  /// Mark `oid` deleted in the private write set.
  WriteEntry& delete_entry(ObjectId oid, bool has_key,
                           const storage::IndexKey& key);
  /// Attach an index key to the (existing) private entry for `oid`.
  void set_entry_key(ObjectId oid, const storage::IndexKey& key);
  [[nodiscard]] const WriteEntry* find_write(ObjectId oid) const;

  [[nodiscard]] TsInterval& interval() { return interval_; }
  [[nodiscard]] const TsInterval& interval() const { return interval_; }

  /// Dense validation sequence number (assigned when validation succeeds;
  /// this is the order the mirror re-establishes, paper §3).
  [[nodiscard]] ValidationTs validation_seq() const { return validation_seq_; }
  /// Logical serialization timestamp chosen from the interval.
  [[nodiscard]] ValidationTs serial_ts() const { return serial_ts_; }
  void set_validated(ValidationTs seq, ValidationTs serial) {
    validation_seq_ = seq;
    serial_ts_ = serial;
  }

  [[nodiscard]] int restarts() const { return restarts_; }

  /// Reset all execution state for a restart (keeps identity, arrival,
  /// deadline — the transaction re-enters the read phase from scratch).
  void prepare_restart();

  [[nodiscard]] TxnOutcome outcome() const { return outcome_; }
  void set_outcome(TxnOutcome o) { outcome_ = o; }

  /// Captured read values (enabled by tests to check serializability).
  std::vector<storage::Value> captured_reads;

  /// Lifecycle stage clock (obs/lifecycle.hpp), stamped by the driver and
  /// engine along the commit path. Single-writer by protocol: whichever
  /// thread currently drives the transaction stamps it. Survives restarts —
  /// buckets accumulate across retries of the same transaction.
  obs::StageClock stages;

  // ---- multicore read phase (DESIGN.md §11) ------------------------------
  // A transaction whose owner worker executes the read phase outside the
  // commit mutex exposes two races: a concurrent validator scanning its
  // read/write sets (Step 2 of OCC-DATI touches *other* transactions'
  // sets), and the overload manager picking it as a restart victim. The
  // leaf mutex serializes set access; the flag pair turns victimization
  // into a deferred self-restart the owner consumes at its next step.
  // Lock order: engine commit mutex -> node queue mutex -> access_mu().
  // No Transaction method locks internally — call sites decide, because
  // the owner already holds access_mu() around compound set operations.

  /// Leaf lock for read_set_/write_set_/interval_ when another thread
  /// (validator under the commit mutex) may scan them concurrently.
  [[nodiscard]] std::mutex& access_mu() const { return access_mu_; }

  /// True while the owner worker runs this transaction's read phase with
  /// no commit mutex held. Flipped only under the engine commit mutex so
  /// victimizers (who hold it) see a stable value.
  [[nodiscard]] bool lock_free_executing() const {
    return lock_free_executing_.load(std::memory_order_acquire);
  }
  void set_lock_free_executing(bool v) {
    lock_free_executing_.store(v, std::memory_order_release);
  }

  /// Deferred victimization: a restart request the owner worker honours at
  /// its next step boundary instead of being restarted mid-read.
  [[nodiscard]] bool restart_requested() const {
    return restart_requested_.load(std::memory_order_acquire);
  }
  void request_restart() {
    restart_requested_.store(true, std::memory_order_release);
  }
  [[nodiscard]] bool consume_restart_request() {
    return restart_requested_.exchange(false, std::memory_order_acq_rel);
  }

 private:
  TxnId id_;
  std::uint64_t admission_seq_;
  TxnProgram program_;
  TimePoint arrival_;
  TimePoint deadline_;

  Phase phase_{Phase::kReadPhase};
  std::size_t pc_{0};
  std::vector<ReadEntry> read_set_;
  std::vector<WriteEntry> write_set_;
  TsInterval interval_;
  ValidationTs validation_seq_{kInvalidValidationTs};
  ValidationTs serial_ts_{kInvalidValidationTs};
  int restarts_{0};
  TxnOutcome outcome_{TxnOutcome::kCommitted};

  mutable std::mutex access_mu_;
  std::atomic<bool> lock_free_executing_{false};
  std::atomic<bool> restart_requested_{false};
};

}  // namespace rodain::txn
