#include "rodain/txn/program.hpp"

namespace rodain::txn {

std::size_t TxnProgram::num_updates() const {
  std::size_t n = 0;
  for (const Op& op : ops) {
    n += std::holds_alternative<UpdateOp>(op) ||
         std::holds_alternative<InsertOp>(op) ||
         std::holds_alternative<DeleteOp>(op);
  }
  return n;
}

std::size_t TxnProgram::num_reads() const {
  std::size_t n = 0;
  for (const Op& op : ops) {
    n += std::holds_alternative<ReadOp>(op) || std::holds_alternative<ReadKeyOp>(op);
  }
  return n;
}

TxnProgram& TxnProgram::read(ObjectId oid) {
  ops.emplace_back(ReadOp{oid});
  return *this;
}

TxnProgram& TxnProgram::read_key(const storage::IndexKey& key) {
  ops.emplace_back(ReadKeyOp{key});
  return *this;
}

TxnProgram& TxnProgram::set_value(ObjectId oid, storage::Value v) {
  UpdateOp op;
  op.oid = oid;
  op.kind = UpdateOp::Kind::kSetValue;
  op.value = std::move(v);
  ops.emplace_back(std::move(op));
  return *this;
}

TxnProgram& TxnProgram::add_to_field(ObjectId oid, std::uint32_t offset,
                                     std::uint64_t delta) {
  UpdateOp op;
  op.oid = oid;
  op.kind = UpdateOp::Kind::kAddToField;
  op.delta = delta;
  op.field_offset = offset;
  ops.emplace_back(std::move(op));
  return *this;
}

TxnProgram& TxnProgram::insert(ObjectId oid, storage::Value v) {
  InsertOp op;
  op.oid = oid;
  op.value = std::move(v);
  ops.emplace_back(std::move(op));
  return *this;
}

TxnProgram& TxnProgram::insert(ObjectId oid, const storage::IndexKey& key,
                               storage::Value v) {
  InsertOp op;
  op.oid = oid;
  op.value = std::move(v);
  op.has_key = true;
  op.key = key;
  ops.emplace_back(std::move(op));
  return *this;
}

TxnProgram& TxnProgram::erase(ObjectId oid) {
  ops.emplace_back(DeleteOp{oid, false, {}});
  return *this;
}

TxnProgram& TxnProgram::erase(ObjectId oid, const storage::IndexKey& key) {
  ops.emplace_back(DeleteOp{oid, true, key});
  return *this;
}

TxnProgram& TxnProgram::compute(Duration cost) {
  ops.emplace_back(ComputeOp{cost});
  return *this;
}

TxnProgram& TxnProgram::with_deadline(Duration d) {
  relative_deadline = d;
  return *this;
}

TxnProgram& TxnProgram::with_criticality(Criticality c) {
  criticality = c;
  return *this;
}

}  // namespace rodain::txn
