#include "rodain/txn/transaction.hpp"

namespace rodain::txn {

bool Transaction::in_read_set(ObjectId oid) const {
  for (const ReadEntry& e : read_set_) {
    if (e.oid == oid) return true;
  }
  return false;
}

bool Transaction::in_write_set(ObjectId oid) const {
  for (const WriteEntry& e : write_set_) {
    if (e.oid == oid) return true;
  }
  return false;
}

void Transaction::note_read(ObjectId oid, ValidationTs observed_wts,
                            bool optimistic) {
  for (const ReadEntry& e : read_set_) {
    if (e.oid == oid) return;  // first observation wins
  }
  read_set_.push_back(ReadEntry{oid, observed_wts, optimistic});
}

storage::Value& Transaction::write_copy(ObjectId oid, const storage::Value& base) {
  for (WriteEntry& e : write_set_) {
    if (e.oid == oid) {
      if (e.is_delete()) {
        // Revived within the transaction: the private view says the object
        // was deleted, so the new copy starts from "missing", not from the
        // committed base.
        e.kind = WriteEntry::Kind::kPut;
        e.after = storage::Value{};
      }
      return e.after;
    }
  }
  WriteEntry entry;
  entry.oid = oid;
  entry.after = base;
  write_set_.push_back(std::move(entry));
  return write_set_.back().after;
}

WriteEntry& Transaction::delete_entry(ObjectId oid, bool has_key,
                                      const storage::IndexKey& key) {
  for (WriteEntry& e : write_set_) {
    if (e.oid == oid) {
      e.kind = WriteEntry::Kind::kDelete;
      e.after.clear();
      if (has_key) {
        e.has_key = true;
        e.key = key;
      }
      return e;
    }
  }
  WriteEntry entry;
  entry.oid = oid;
  entry.kind = WriteEntry::Kind::kDelete;
  entry.has_key = has_key;
  entry.key = key;
  write_set_.push_back(std::move(entry));
  return write_set_.back();
}

void Transaction::set_entry_key(ObjectId oid, const storage::IndexKey& key) {
  for (WriteEntry& e : write_set_) {
    if (e.oid == oid) {
      e.has_key = true;
      e.key = key;
      return;
    }
  }
}

const WriteEntry* Transaction::find_write(ObjectId oid) const {
  for (const WriteEntry& e : write_set_) {
    if (e.oid == oid) return &e;
  }
  return nullptr;
}

void Transaction::prepare_restart() {
  phase_ = Phase::kReadPhase;
  pc_ = 0;
  read_set_.clear();
  write_set_.clear();
  interval_.reset();
  validation_seq_ = kInvalidValidationTs;
  serial_ts_ = kInvalidValidationTs;
  captured_reads.clear();
  restart_requested_.store(false, std::memory_order_release);
  ++restarts_;
}

}  // namespace rodain::txn
