#include "rodain/repl/endpoint.hpp"

#include <atomic>

#include "rodain/common/diag.hpp"
#include "rodain/obs/obs.hpp"

namespace rodain::repl {

namespace {

struct EndpointMetrics {
  obs::Counter& corrupt = obs::metrics().counter("repl.frames_corrupt");
  obs::Counter& duplicates = obs::metrics().counter("repl.frames_duplicate");
  obs::Counter& stale = obs::metrics().counter("repl.frames_stale");
  obs::Counter& send_failures = obs::metrics().counter("repl.send_failures");
  obs::Counter& reconnects = obs::metrics().counter("repl.reconnects");
  obs::Counter& reconnect_attempts =
      obs::metrics().counter("repl.reconnect_attempts");
};
EndpointMetrics& epm() {
  static EndpointMetrics m;
  return m;
}

/// Epochs must be distinct and monotone across endpoint rebuilds so a new
/// endpoint's frames are never suppressed by a receiver's stale anti-replay
/// window: clock microseconds in the high bits order rebuilds over time, a
/// process-wide counter in the low bits breaks ties at equal timestamps.
std::uint64_t next_epoch(const Clock& clock) {
  static std::atomic<std::uint64_t> counter{1};
  const auto us = static_cast<std::uint64_t>(clock.now().us);
  return (us << 16) | (counter.fetch_add(1, std::memory_order_relaxed) &
                       0xffffULL);
}

constexpr std::uint64_t kWindowBits = 64;

}  // namespace

Endpoint::Endpoint(net::Channel& channel, const Clock& clock,
                   Handlers handlers)
    : Endpoint(channel, clock, std::move(handlers), Options{}) {}

Endpoint::Endpoint(net::Channel& channel, const Clock& clock,
                   Handlers handlers, Options options)
    : channel_(channel), clock_(clock), handlers_(std::move(handlers)),
      last_heard_(clock.now()), epoch_(next_epoch(clock)),
      backoff_(options.reconnect, options.seed) {
  // Weak liveness guard: the channel outlives this endpoint, and a late
  // event (a frame in flight, a sever after the owning node failed) must
  // not call into a destroyed endpoint.
  channel_.set_message_handler(
      [this, alive = std::weak_ptr<bool>(alive_)](std::vector<std::byte> f) {
        if (alive.expired()) return;
        on_frame(std::move(f));
      });
  channel_.set_disconnect_handler([this, alive = std::weak_ptr<bool>(alive_)] {
    if (alive.expired()) return;
    if (handlers_.on_disconnect) handlers_.on_disconnect();
  });
}

Status Endpoint::send(const Message& m) {
  // One encode buffer for the endpoint's lifetime: it grows to the peak
  // frame size once, after which encoding is allocation-free up to the
  // exact-size copy the channel takes ownership of.
  encode_buf_.clear();
  encode_framed_into(epoch_, next_frame_seq_++, m, encode_buf_);
  const auto view = encode_buf_.view();
  Status s = channel_.send(std::vector<std::byte>(view.begin(), view.end()));
  if (s) {
    ++stats_.frames_sent;
  } else {
    ++stats_.send_failures;
    epm().send_failures.inc();
  }
  return s;
}

void Endpoint::poll(TimePoint now) {
  if (channel_.connected()) {
    if (reconnecting_) {
      reconnecting_ = false;
      backoff_.reset();
      ++stats_.reconnects;
      epm().reconnects.inc();
      if (handlers_.on_reconnected) handlers_.on_reconnected();
    }
    return;
  }
  if (!reconnecting_) {
    reconnecting_ = true;
    next_attempt_ = now + backoff_.next();
    return;
  }
  if (now < next_attempt_) return;
  ++stats_.reconnect_attempts;
  epm().reconnect_attempts.inc();
  if (connector_ && connector_()) {
    reconnecting_ = false;
    backoff_.reset();
    ++stats_.reconnects;
    epm().reconnects.inc();
    if (handlers_.on_reconnected) handlers_.on_reconnected();
    return;
  }
  next_attempt_ = now + backoff_.next();
}

bool Endpoint::accept_frame(std::uint64_t epoch, std::uint64_t seq) {
  if (epoch < peer_epoch_) {
    ++stats_.stale_suppressed;
    epm().stale.inc();
    return false;
  }
  if (epoch > peer_epoch_) {
    // The peer rebuilt its endpoint (role transition / recovery): start a
    // fresh window.
    peer_epoch_ = epoch;
    window_highest_ = seq;
    window_mask_ = 1;
    return true;
  }
  if (seq > window_highest_) {
    const std::uint64_t shift = seq - window_highest_;
    window_mask_ = shift >= kWindowBits ? 0 : window_mask_ << shift;
    window_mask_ |= 1;
    window_highest_ = seq;
    return true;
  }
  const std::uint64_t behind = window_highest_ - seq;
  if (behind >= kWindowBits) {
    ++stats_.stale_suppressed;
    epm().stale.inc();
    return false;
  }
  const std::uint64_t bit = 1ULL << behind;
  if (window_mask_ & bit) {
    ++stats_.duplicates_suppressed;
    epm().duplicates.inc();
    return false;
  }
  window_mask_ |= bit;
  return true;
}

void Endpoint::on_frame(std::vector<std::byte> frame) {
  auto decoded = decode_framed(frame);
  if (!decoded.is_ok()) {
    ++stats_.corrupt_rejected;
    epm().corrupt.inc();
    RODAIN_WARN("replication frame rejected: %s",
                decoded.status().to_string().c_str());
    if (handlers_.on_protocol_error) {
      handlers_.on_protocol_error(decoded.status());
    }
    return;
  }
  Frame f = std::move(decoded).value();
  if (!accept_frame(f.epoch, f.frame_seq)) return;
  ++stats_.frames_received;
  last_heard_ = clock_.now();
  Message m = std::move(f.msg);
  switch (m.type) {
    case MsgType::kLogBatch:
      if (handlers_.on_log_batch) handlers_.on_log_batch(std::move(m.records));
      break;
    case MsgType::kCommitAck:
      if (handlers_.on_commit_ack) handlers_.on_commit_ack(m.seq);
      break;
    case MsgType::kHeartbeat:
      if (handlers_.on_heartbeat) handlers_.on_heartbeat(m.role, m.seq);
      break;
    case MsgType::kJoinRequest:
      if (handlers_.on_join_request) handlers_.on_join_request(m.have);
      break;
    case MsgType::kSnapshotChunk:
      if (handlers_.on_snapshot_chunk) {
        handlers_.on_snapshot_chunk(m.snapshot_id, m.chunk_index,
                                    m.chunk_total, std::move(m.blob));
      }
      break;
    case MsgType::kSnapshotDone:
      if (handlers_.on_snapshot_done) {
        handlers_.on_snapshot_done(m.seq, m.snapshot_id);
      }
      break;
    case MsgType::kChunkRetry:
      if (handlers_.on_chunk_retry) {
        handlers_.on_chunk_retry(m.snapshot_id, std::move(m.missing));
      }
      break;
  }
}

}  // namespace rodain::repl
