#include "rodain/repl/endpoint.hpp"

#include "rodain/common/diag.hpp"

namespace rodain::repl {

Endpoint::Endpoint(net::Channel& channel, const Clock& clock, Handlers handlers)
    : channel_(channel), clock_(clock), handlers_(std::move(handlers)),
      last_heard_(clock.now()) {
  channel_.set_message_handler(
      [this](std::vector<std::byte> frame) { on_frame(std::move(frame)); });
  channel_.set_disconnect_handler([this] {
    if (handlers_.on_disconnect) handlers_.on_disconnect();
  });
}

void Endpoint::on_frame(std::vector<std::byte> frame) {
  auto decoded = decode(frame);
  if (!decoded.is_ok()) {
    RODAIN_WARN("replication frame rejected: %s",
                decoded.status().to_string().c_str());
    if (handlers_.on_protocol_error) handlers_.on_protocol_error(decoded.status());
    return;
  }
  last_heard_ = clock_.now();
  Message m = std::move(decoded).value();
  switch (m.type) {
    case MsgType::kLogBatch:
      if (handlers_.on_log_batch) handlers_.on_log_batch(std::move(m.records));
      break;
    case MsgType::kCommitAck:
      if (handlers_.on_commit_ack) handlers_.on_commit_ack(m.seq);
      break;
    case MsgType::kHeartbeat:
      if (handlers_.on_heartbeat) handlers_.on_heartbeat(m.role, m.seq);
      break;
    case MsgType::kJoinRequest:
      if (handlers_.on_join_request) handlers_.on_join_request(m.have);
      break;
    case MsgType::kSnapshotChunk:
      if (handlers_.on_snapshot_chunk) {
        handlers_.on_snapshot_chunk(m.chunk_index, m.chunk_total,
                                    std::move(m.blob));
      }
      break;
    case MsgType::kSnapshotDone:
      if (handlers_.on_snapshot_done) handlers_.on_snapshot_done(m.seq);
      break;
  }
}

}  // namespace rodain::repl
