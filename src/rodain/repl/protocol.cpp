#include "rodain/repl/protocol.hpp"

namespace rodain::repl {

Message Message::log_batch(std::vector<log::Record> records) {
  Message m;
  m.type = MsgType::kLogBatch;
  m.records = std::move(records);
  return m;
}

Message Message::commit_ack(ValidationTs seq) {
  Message m;
  m.type = MsgType::kCommitAck;
  m.seq = seq;
  return m;
}

Message Message::heartbeat(NodeRole role, ValidationTs applied) {
  Message m;
  m.type = MsgType::kHeartbeat;
  m.role = role;
  m.seq = applied;
  return m;
}

Message Message::join_request(ValidationTs have) {
  Message m;
  m.type = MsgType::kJoinRequest;
  m.have = have;
  return m;
}

Message Message::snapshot_chunk(std::uint32_t index, std::uint32_t total,
                                std::vector<std::byte> blob) {
  Message m;
  m.type = MsgType::kSnapshotChunk;
  m.chunk_index = index;
  m.chunk_total = total;
  m.blob = std::move(blob);
  return m;
}

Message Message::snapshot_done(ValidationTs boundary) {
  Message m;
  m.type = MsgType::kSnapshotDone;
  m.seq = boundary;
  return m;
}

std::vector<std::byte> encode(const Message& m) {
  ByteWriter w;
  w.put_u8(static_cast<std::uint8_t>(m.type));
  switch (m.type) {
    case MsgType::kLogBatch: {
      w.put_varint(m.records.size());
      for (const log::Record& r : m.records) log::encode_record(r, w);
      break;
    }
    case MsgType::kCommitAck:
      w.put_varint(m.seq);
      break;
    case MsgType::kHeartbeat:
      w.put_u8(static_cast<std::uint8_t>(m.role));
      w.put_varint(m.seq);
      break;
    case MsgType::kJoinRequest:
      w.put_varint(m.have);
      break;
    case MsgType::kSnapshotChunk:
      w.put_u32(m.chunk_index);
      w.put_u32(m.chunk_total);
      w.put_bytes(m.blob);
      break;
    case MsgType::kSnapshotDone:
      w.put_varint(m.seq);
      break;
  }
  return w.take();
}

Result<Message> decode(std::span<const std::byte> frame) {
  ByteReader r(frame);
  std::uint8_t type = 0;
  if (auto s = r.get_u8(type); !s) return s;
  Message m;
  switch (static_cast<MsgType>(type)) {
    case MsgType::kLogBatch: {
      m.type = MsgType::kLogBatch;
      std::uint64_t n = 0;
      if (auto s = r.get_varint(n); !s) return s;
      m.records.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        log::Record rec;
        log::DecodeResult d = log::decode_record(r, rec);
        if (d.end || !d.status) {
          return Status::error(ErrorCode::kCorruption, "bad batch record");
        }
        m.records.push_back(std::move(rec));
      }
      break;
    }
    case MsgType::kCommitAck:
      m.type = MsgType::kCommitAck;
      if (auto s = r.get_varint(m.seq); !s) return s;
      break;
    case MsgType::kHeartbeat: {
      m.type = MsgType::kHeartbeat;
      std::uint8_t role = 0;
      if (auto s = r.get_u8(role); !s) return s;
      if (role > static_cast<std::uint8_t>(NodeRole::kDown)) {
        return Status::error(ErrorCode::kCorruption, "bad role");
      }
      m.role = static_cast<NodeRole>(role);
      if (auto s = r.get_varint(m.seq); !s) return s;
      break;
    }
    case MsgType::kJoinRequest:
      m.type = MsgType::kJoinRequest;
      if (auto s = r.get_varint(m.have); !s) return s;
      break;
    case MsgType::kSnapshotChunk:
      m.type = MsgType::kSnapshotChunk;
      if (auto s = r.get_u32(m.chunk_index); !s) return s;
      if (auto s = r.get_u32(m.chunk_total); !s) return s;
      if (auto s = r.get_bytes(m.blob); !s) return s;
      break;
    case MsgType::kSnapshotDone:
      m.type = MsgType::kSnapshotDone;
      if (auto s = r.get_varint(m.seq); !s) return s;
      break;
    default:
      return Status::error(ErrorCode::kCorruption, "unknown message type");
  }
  if (!r.at_end()) {
    return Status::error(ErrorCode::kCorruption, "trailing message bytes");
  }
  return m;
}

}  // namespace rodain::repl
