#include "rodain/repl/protocol.hpp"

namespace rodain::repl {

Message Message::log_batch(std::vector<log::Record> records) {
  Message m;
  m.type = MsgType::kLogBatch;
  m.records = std::move(records);
  return m;
}

Message Message::commit_ack(ValidationTs seq) {
  Message m;
  m.type = MsgType::kCommitAck;
  m.seq = seq;
  return m;
}

Message Message::heartbeat(NodeRole role, ValidationTs applied) {
  Message m;
  m.type = MsgType::kHeartbeat;
  m.role = role;
  m.seq = applied;
  return m;
}

Message Message::join_request(ValidationTs have) {
  Message m;
  m.type = MsgType::kJoinRequest;
  m.have = have;
  return m;
}

Message Message::snapshot_chunk(std::uint64_t snapshot_id, std::uint32_t index,
                                std::uint32_t total,
                                std::vector<std::byte> blob) {
  Message m;
  m.type = MsgType::kSnapshotChunk;
  m.snapshot_id = snapshot_id;
  m.chunk_index = index;
  m.chunk_total = total;
  m.blob = std::move(blob);
  return m;
}

Message Message::snapshot_done(ValidationTs boundary,
                               std::uint64_t snapshot_id) {
  Message m;
  m.type = MsgType::kSnapshotDone;
  m.seq = boundary;
  m.snapshot_id = snapshot_id;
  return m;
}

Message Message::chunk_retry(std::uint64_t snapshot_id,
                             std::vector<std::uint32_t> missing) {
  Message m;
  m.type = MsgType::kChunkRetry;
  m.snapshot_id = snapshot_id;
  m.missing = std::move(missing);
  return m;
}

void encode_into(const Message& m, ByteWriter& w) {
  w.put_u8(static_cast<std::uint8_t>(m.type));
  switch (m.type) {
    case MsgType::kLogBatch: {
      w.put_varint(m.records.size());
      for (const log::Record& r : m.records) log::encode_record(r, w);
      break;
    }
    case MsgType::kCommitAck:
      w.put_varint(m.seq);
      break;
    case MsgType::kHeartbeat:
      w.put_u8(static_cast<std::uint8_t>(m.role));
      w.put_varint(m.seq);
      break;
    case MsgType::kJoinRequest:
      w.put_varint(m.have);
      break;
    case MsgType::kSnapshotChunk:
      w.put_varint(m.snapshot_id);
      w.put_u32(m.chunk_index);
      w.put_u32(m.chunk_total);
      w.put_bytes(m.blob);
      break;
    case MsgType::kSnapshotDone:
      w.put_varint(m.seq);
      w.put_varint(m.snapshot_id);
      break;
    case MsgType::kChunkRetry:
      w.put_varint(m.snapshot_id);
      w.put_varint(m.missing.size());
      for (std::uint32_t i : m.missing) w.put_u32(i);
      break;
  }
}

namespace {

Result<Message> decode_from(ByteReader& r) {
  std::uint8_t type = 0;
  if (auto s = r.get_u8(type); !s) return s;
  Message m;
  switch (static_cast<MsgType>(type)) {
    case MsgType::kLogBatch: {
      m.type = MsgType::kLogBatch;
      std::uint64_t n = 0;
      if (auto s = r.get_varint(n); !s) return s;
      m.records.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        log::Record rec;
        log::DecodeResult d = log::decode_record(r, rec);
        if (d.end || !d.status) {
          return Status::error(ErrorCode::kCorruption, "bad batch record");
        }
        m.records.push_back(std::move(rec));
      }
      break;
    }
    case MsgType::kCommitAck:
      m.type = MsgType::kCommitAck;
      if (auto s = r.get_varint(m.seq); !s) return s;
      break;
    case MsgType::kHeartbeat: {
      m.type = MsgType::kHeartbeat;
      std::uint8_t role = 0;
      if (auto s = r.get_u8(role); !s) return s;
      if (role > static_cast<std::uint8_t>(NodeRole::kDown)) {
        return Status::error(ErrorCode::kCorruption, "bad role");
      }
      m.role = static_cast<NodeRole>(role);
      if (auto s = r.get_varint(m.seq); !s) return s;
      break;
    }
    case MsgType::kJoinRequest:
      m.type = MsgType::kJoinRequest;
      if (auto s = r.get_varint(m.have); !s) return s;
      break;
    case MsgType::kSnapshotChunk:
      m.type = MsgType::kSnapshotChunk;
      if (auto s = r.get_varint(m.snapshot_id); !s) return s;
      if (auto s = r.get_u32(m.chunk_index); !s) return s;
      if (auto s = r.get_u32(m.chunk_total); !s) return s;
      if (auto s = r.get_bytes(m.blob); !s) return s;
      break;
    case MsgType::kSnapshotDone:
      m.type = MsgType::kSnapshotDone;
      if (auto s = r.get_varint(m.seq); !s) return s;
      if (auto s = r.get_varint(m.snapshot_id); !s) return s;
      break;
    case MsgType::kChunkRetry: {
      m.type = MsgType::kChunkRetry;
      if (auto s = r.get_varint(m.snapshot_id); !s) return s;
      std::uint64_t n = 0;
      if (auto s = r.get_varint(n); !s) return s;
      if (n > r.remaining()) {  // each index needs >= 1 byte
        return Status::error(ErrorCode::kCorruption, "bad retry count");
      }
      m.missing.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        std::uint32_t idx = 0;
        if (auto s = r.get_u32(idx); !s) return s;
        m.missing.push_back(idx);
      }
      break;
    }
    default:
      return Status::error(ErrorCode::kCorruption, "unknown message type");
  }
  if (!r.at_end()) {
    return Status::error(ErrorCode::kCorruption, "trailing message bytes");
  }
  return m;
}

}  // namespace

std::vector<std::byte> encode(const Message& m) {
  ByteWriter w;
  encode_into(m, w);
  return w.take();
}

Result<Message> decode(std::span<const std::byte> frame) {
  ByteReader r(frame);
  return decode_from(r);
}

void encode_framed_into(std::uint64_t epoch, std::uint64_t frame_seq,
                        const Message& m, ByteWriter& w) {
  const std::size_t base = w.size();
  w.put_u32(0);  // crc placeholder
  w.put_u64(epoch);
  w.put_u64(frame_seq);
  encode_into(m, w);
  w.patch_u32(base, crc32c(w.view().subspan(base + 4)));
}

std::vector<std::byte> encode_framed(std::uint64_t epoch,
                                     std::uint64_t frame_seq,
                                     const Message& m) {
  ByteWriter w;
  encode_framed_into(epoch, frame_seq, m, w);
  return w.take();
}

Result<Frame> decode_framed(std::span<const std::byte> frame) {
  ByteReader r(frame);
  std::uint32_t crc = 0;
  if (auto s = r.get_u32(crc); !s) return s;
  if (crc != crc32c(frame.subspan(4))) {
    return Status::error(ErrorCode::kCorruption, "frame crc mismatch");
  }
  Frame f;
  if (auto s = r.get_u64(f.epoch); !s) return s;
  if (auto s = r.get_u64(f.frame_seq); !s) return s;
  auto msg = decode_from(r);
  if (!msg.is_ok()) return msg.status();
  f.msg = std::move(msg).value();
  return f;
}

}  // namespace rodain::repl
