#include "rodain/repl/primary.hpp"

#include <atomic>

#include "rodain/common/diag.hpp"
#include "rodain/obs/obs.hpp"

namespace rodain::repl {

namespace {
struct PrimaryMetrics {
  obs::Counter& batches_shipped =
      obs::metrics().counter("repl.batches_shipped");
  obs::Counter& heartbeats_sent =
      obs::metrics().counter("repl.heartbeats_sent");
  obs::Counter& snapshots_served =
      obs::metrics().counter("repl.snapshots_served");
  obs::Counter& snapshots_from_disk =
      obs::metrics().counter("repl.snapshots_from_disk");
  obs::Counter& chunks_resent =
      obs::metrics().counter("repl.snapshot_chunks_resent");
  obs::Gauge& mirror_applied_seq =
      obs::metrics().gauge("repl.mirror_applied_seq");
};
PrimaryMetrics& pm() {
  static PrimaryMetrics m;
  return m;
}

/// Snapshot-serve ids must be monotone across replicator rebuilds so the
/// joiner can order serves (clock microseconds high, process counter low —
/// same scheme as endpoint epochs).
/// Catch-up batches cut at commit boundaries at roughly this many records.
constexpr std::size_t kCatchUpBatchRecords = 256;

std::uint64_t next_snapshot_id(const Clock& clock) {
  static std::atomic<std::uint64_t> counter{1};
  const auto us = static_cast<std::uint64_t>(clock.now().us);
  return (us << 16) |
         (counter.fetch_add(1, std::memory_order_relaxed) & 0xffffULL);
}
}  // namespace

PrimaryReplicator::PrimaryReplicator(net::Channel& channel, const Clock& clock,
                                     storage::ObjectStore& store,
                                     log::LogWriter& writer, Hooks hooks)
    : PrimaryReplicator(channel, clock, store, writer, std::move(hooks),
                        Options{}) {}

PrimaryReplicator::PrimaryReplicator(net::Channel& channel, const Clock& clock,
                                     storage::ObjectStore& store,
                                     log::LogWriter& writer, Hooks hooks,
                                     Options options)
    : endpoint_(channel, clock,
                Endpoint::Handlers{
                    .on_log_batch = {},
                    .on_commit_ack =
                        [this](ValidationTs seq) {
                          // Cumulative: releases every pending txn <= seq.
                          writer_.on_mirror_ack(seq);
                        },
                    .on_heartbeat =
                        [this](NodeRole role, ValidationTs applied) {
                          if (role == NodeRole::kPrimaryAlone ||
                              role == NodeRole::kPrimaryWithMirror) {
                            // The peer also believes it is serving: split
                            // brain. Its `applied` is a commit height, not
                            // a mirror-applied seq — don't mix the two.
                            if (hooks_.on_peer_primary) {
                              hooks_.on_peer_primary(applied);
                            }
                            return;
                          }
                          mirror_applied_ = std::max(mirror_applied_, applied);
                          pm().mirror_applied_seq.set(
                              static_cast<double>(mirror_applied_));
                          if (last_snapshot_ &&
                              mirror_applied_ >= last_snapshot_->boundary) {
                            // The joiner caught up: the cached snapshot can
                            // no longer be needed for chunk retries.
                            last_snapshot_.reset();
                          }
                        },
                    .on_join_request =
                        [this](ValidationTs have) { on_join_request(have); },
                    .on_snapshot_chunk = {},
                    .on_snapshot_done = {},
                    .on_chunk_retry =
                        [this](std::uint64_t id,
                               std::vector<std::uint32_t> missing) {
                          on_chunk_retry(id, missing);
                        },
                    .on_disconnect =
                        [this] {
                          if (hooks_.on_disconnect) hooks_.on_disconnect();
                        },
                    .on_reconnected =
                        [this] {
                          // The stream restarted: anything unacked may have
                          // been lost in flight — ship it again (the mirror
                          // drops what it already applied as stale).
                          writer_.resend_pending();
                          if (hooks_.on_reconnected) hooks_.on_reconnected();
                        },
                    .on_protocol_error = {},
                }),
      clock_(clock),
      store_(store),
      writer_(writer),
      hooks_(std::move(hooks)),
      options_(options) {}

Status PrimaryReplicator::send_counted(const Message& m) {
  Status s = endpoint_.send(m);
  if (!s) {
    if (++send_failures_ == 1 || endpoint_.connected()) {
      RODAIN_WARN("primary: replication send failed: %s",
                  s.to_string().c_str());
    }
  }
  return s;
}

void PrimaryReplicator::ship(std::span<const log::Record> records) {
  pm().batches_shipped.inc();
  (void)send_counted(Message::log_batch(
      std::vector<log::Record>(records.begin(), records.end())));
  // A failed ship is not fatal: either the disconnect handler or the
  // writer's ack timeout escalates, or a reconnect re-ships the pending set.
}

void PrimaryReplicator::send_heartbeat(NodeRole role, ValidationTs height) {
  pm().heartbeats_sent.inc();
  (void)send_counted(Message::heartbeat(role, height));
}

void PrimaryReplicator::poll(TimePoint now) { endpoint_.poll(now); }

Status PrimaryReplicator::send_chunk(std::uint32_t index) {
  const CachedSnapshot& snap = *last_snapshot_;
  const std::size_t chunk = options_.snapshot_chunk_bytes;
  const std::size_t begin = static_cast<std::size_t>(index) * chunk;
  const std::size_t len = std::min(chunk, snap.bytes.size() - begin);
  return send_counted(Message::snapshot_chunk(
      snap.id, index, snap.chunk_total,
      std::vector<std::byte>(
          snap.bytes.begin() + static_cast<std::ptrdiff_t>(begin),
          snap.bytes.begin() + static_cast<std::ptrdiff_t>(begin + len))));
}

void PrimaryReplicator::on_join_request(ValidationTs have) {
  (void)have;  // a full snapshot is always shipped; `have` is advisory
  ValidationTs boundary =
      hooks_.snapshot_boundary ? hooks_.snapshot_boundary() : 0;

  // Prefer the on-disk artifacts (checkpoint + stored log) when the node
  // can vouch they densely cover up to the boundary; otherwise encode a
  // consistent snapshot of the live copy.
  std::vector<std::byte> bytes;
  std::vector<log::Record> tail;
  bool from_disk = false;
  if (hooks_.join_artifacts) {
    if (auto artifacts = hooks_.join_artifacts()) {
      boundary = artifacts->boundary;
      bytes = std::move(artifacts->checkpoint_bytes);
      tail = std::move(artifacts->catch_up);
      from_disk = true;
      ++snapshots_from_disk_;
      pm().snapshots_from_disk.inc();
    }
  }
  if (!from_disk) {
    ByteWriter w(store_.size() * 80 + 64);
    storage::encode_checkpoint(store_, boundary, w, index_);
    bytes = w.take();
    // Catch-up: committed transactions past the boundary that were logged
    // before the mode switch (the joiner drops any overlap as stale).
    tail = writer_.tail_since(boundary);
  }

  const std::size_t chunk = options_.snapshot_chunk_bytes;
  const auto total = static_cast<std::uint32_t>(
      std::max<std::size_t>(1, (bytes.size() + chunk - 1) / chunk));
  last_snapshot_ = CachedSnapshot{next_snapshot_id(clock_), boundary, total,
                                  std::move(bytes)};
  for (std::uint32_t i = 0; i < total; ++i) (void)send_chunk(i);

  // Switch to mirror mode *before* SnapshotDone so no commit can slip
  // between the tail and the live stream.
  if (hooks_.on_mirror_joined) hooks_.on_mirror_joined();
  if (!tail.empty()) {
    // Ship in slices cut at commit boundaries: a transaction's records
    // never span batches (Shipper contract the reorderer relies on).
    std::vector<log::Record> batch;
    batch.reserve(std::min<std::size_t>(tail.size(), kCatchUpBatchRecords));
    for (log::Record& r : tail) {
      const bool commit = r.is_commit();
      batch.push_back(std::move(r));
      if (commit && batch.size() >= kCatchUpBatchRecords) {
        (void)send_counted(Message::log_batch(std::move(batch)));
        batch.clear();
      }
    }
    if (!batch.empty()) {
      (void)send_counted(Message::log_batch(std::move(batch)));
    }
  }
  (void)send_counted(Message::snapshot_done(boundary, last_snapshot_->id));
  ++snapshots_served_;
  pm().snapshots_served.inc();
  RODAIN_INFO(
      "primary: served snapshot %llu at boundary %llu (%zu bytes, %u chunks, "
      "%s)",
      static_cast<unsigned long long>(last_snapshot_->id),
      static_cast<unsigned long long>(boundary), last_snapshot_->bytes.size(),
      total, from_disk ? "from disk" : "live encode");
}

void PrimaryReplicator::on_chunk_retry(
    std::uint64_t snapshot_id, const std::vector<std::uint32_t>& missing) {
  if (!last_snapshot_ || last_snapshot_->id != snapshot_id) {
    // The cached serve is gone (or the request is from an older serve);
    // the joiner's stalled-join poll will fall back to a fresh join.
    RODAIN_WARN("primary: chunk retry for unknown snapshot %llu ignored",
                static_cast<unsigned long long>(snapshot_id));
    return;
  }
  for (std::uint32_t index : missing) {
    if (index >= last_snapshot_->chunk_total) continue;
    if (send_chunk(index)) {
      ++snapshot_chunks_resent_;
      pm().chunks_resent.inc();
    }
  }
  // Re-finish the serve: the done marker may itself have been lost.
  (void)send_counted(
      Message::snapshot_done(last_snapshot_->boundary, last_snapshot_->id));
}

}  // namespace rodain::repl
