#include "rodain/repl/primary.hpp"

#include "rodain/common/diag.hpp"
#include "rodain/obs/obs.hpp"

namespace rodain::repl {

namespace {
struct PrimaryMetrics {
  obs::Counter& batches_shipped =
      obs::metrics().counter("repl.batches_shipped");
  obs::Counter& heartbeats_sent =
      obs::metrics().counter("repl.heartbeats_sent");
  obs::Counter& snapshots_served =
      obs::metrics().counter("repl.snapshots_served");
  obs::Gauge& mirror_applied_seq =
      obs::metrics().gauge("repl.mirror_applied_seq");
};
PrimaryMetrics& pm() {
  static PrimaryMetrics m;
  return m;
}
}  // namespace

PrimaryReplicator::PrimaryReplicator(net::Channel& channel, const Clock& clock,
                                     storage::ObjectStore& store,
                                     log::LogWriter& writer, Hooks hooks)
    : PrimaryReplicator(channel, clock, store, writer, std::move(hooks),
                        Options{}) {}

PrimaryReplicator::PrimaryReplicator(net::Channel& channel, const Clock& clock,
                                     storage::ObjectStore& store,
                                     log::LogWriter& writer, Hooks hooks,
                                     Options options)
    : endpoint_(channel, clock,
                Endpoint::Handlers{
                    .on_log_batch = {},
                    .on_commit_ack =
                        [this](ValidationTs seq) { writer_.on_mirror_ack(seq); },
                    .on_heartbeat =
                        [this](NodeRole, ValidationTs applied) {
                          mirror_applied_ = std::max(mirror_applied_, applied);
                          pm().mirror_applied_seq.set(
                              static_cast<double>(mirror_applied_));
                        },
                    .on_join_request =
                        [this](ValidationTs have) { on_join_request(have); },
                    .on_snapshot_chunk = {},
                    .on_snapshot_done = {},
                    .on_disconnect =
                        [this] {
                          if (hooks_.on_disconnect) hooks_.on_disconnect();
                        },
                    .on_protocol_error = {},
                }),
      store_(store),
      writer_(writer),
      hooks_(std::move(hooks)),
      options_(options) {}

void PrimaryReplicator::ship(std::span<const log::Record> records) {
  pm().batches_shipped.inc();
  (void)endpoint_.send(
      Message::log_batch(std::vector<log::Record>(records.begin(), records.end())));
}

void PrimaryReplicator::send_heartbeat(NodeRole role) {
  pm().heartbeats_sent.inc();
  (void)endpoint_.send(Message::heartbeat(role, 0));
}

void PrimaryReplicator::on_join_request(ValidationTs have) {
  (void)have;  // a full snapshot is always shipped; `have` is advisory
  const ValidationTs boundary =
      hooks_.snapshot_boundary ? hooks_.snapshot_boundary() : 0;

  // Encode a consistent snapshot of the database copy at the boundary.
  ByteWriter w(store_.size() * 80 + 64);
  storage::encode_checkpoint(store_, boundary, w, index_);
  auto bytes = w.take();

  const std::size_t chunk = options_.snapshot_chunk_bytes;
  const auto total =
      static_cast<std::uint32_t>((bytes.size() + chunk - 1) / chunk);
  for (std::uint32_t i = 0; i < total; ++i) {
    const std::size_t begin = static_cast<std::size_t>(i) * chunk;
    const std::size_t len = std::min(chunk, bytes.size() - begin);
    (void)endpoint_.send(Message::snapshot_chunk(
        i, total,
        std::vector<std::byte>(bytes.begin() + static_cast<std::ptrdiff_t>(begin),
                               bytes.begin() + static_cast<std::ptrdiff_t>(begin + len))));
  }

  // Catch-up: committed transactions past the boundary that were logged
  // before the mode switch (the joiner drops any overlap as stale).
  auto tail = writer_.tail_since(boundary);
  // Switch to mirror mode *before* SnapshotDone so no commit can slip
  // between the tail and the live stream.
  if (hooks_.on_mirror_joined) hooks_.on_mirror_joined();
  if (!tail.empty()) {
    (void)endpoint_.send(Message::log_batch(std::move(tail)));
  }
  (void)endpoint_.send(Message::snapshot_done(boundary));
  ++snapshots_served_;
  pm().snapshots_served.inc();
  RODAIN_INFO("primary: served snapshot at boundary %llu (%zu bytes, %u chunks)",
              static_cast<unsigned long long>(boundary), bytes.size(), total);
}

}  // namespace rodain::repl
