// The Mirror Node's replication service (paper §3).
//
// Receives the redo stream and acknowledges commit records immediately on
// delivery (that ack is what unblocks committing transactions on the
// primary) — coalesced to one *cumulative* ack per delivered batch, which
// carries the reorderer's contiguous received-commit floor and so covers
// every commit at or below it (DESIGN.md §9). It reorders transactions into
// true validation order, applies committed transactions to the database
// copy — never undoing anything — and stores the ordered log to disk
// asynchronously, off the commit path.
//
// Apply runs epoch-at-a-time (DESIGN.md §14): the reorderer batches each
// contiguous released run into one epoch and ApplyPool applies its
// non-conflicting transactions concurrently, barriering at the epoch
// boundary, so a multi-worker primary cannot outrun its own mirror while
// the copy stays byte-identical to serial apply. Disk appends are
// re-serialized in seq order after the barrier, and a failed disk write
// marks the stored log non-dense — a rejoin must then be served by live
// encode, never from a log with holes.
//
// The join path is hardened against a faulty link: snapshot chunks are
// assembled by index under a per-serve snapshot id (so chunks from an
// abandoned serve can never leak into a later one), missing chunks are
// re-requested with kChunkRetry, a stalled join is retried, and a primary
// that falsely declared this mirror lost (heartbeats say kPrimaryAlone
// while we believe we are its synced mirror) triggers an automatic rejoin.
#pragma once

#include <atomic>
#include <memory>
#include <optional>

#include "rodain/common/clock.hpp"
#include "rodain/log/checkpointer.hpp"
#include "rodain/log/log_storage.hpp"
#include "rodain/log/reorder.hpp"
#include "rodain/repl/apply_pool.hpp"
#include "rodain/repl/endpoint.hpp"
#include "rodain/storage/checkpoint.hpp"
#include "rodain/storage/object_store.hpp"

namespace rodain::repl {

class MirrorService {
 public:
  struct Options {
    /// Store the ordered log to `disk` (false reproduces the paper's
    /// Fig. 3 no-disk configurations).
    bool store_to_disk{true};
    /// Apply width for released epochs: non-conflicting transactions of one
    /// epoch apply concurrently on `apply_workers` threads (the delivering
    /// thread included). <= 1 keeps the historical serial apply; the rt
    /// node passes its worker count so the mirror keeps pace with a
    /// parallel-commit primary (DESIGN.md §14).
    std::size_t apply_workers{1};
    /// Invoked when a requested join finishes (snapshot installed and the
    /// stashed live stream replayed) — the node is now a proper Mirror.
    std::function<void()> on_synced;
    /// The primary abandoned us (its heartbeats say kPrimaryAlone while we
    /// are synced): a rejoin was initiated; the node should drop back to
    /// kRecovering until on_synced fires again.
    std::function<void()> on_abandoned;
    /// A join making no progress for this long retries (missing chunks are
    /// re-requested; with nothing received yet, the join is re-sent).
    Duration join_retry_timeout{Duration::millis(100)};
    /// Ignore kPrimaryAlone heartbeats this soon after syncing — they can
    /// be stale frames that were in flight while our join completed.
    Duration abandon_grace{Duration::millis(150)};
    /// Periodic checkpoint cadence driven off the apply path (poll): write
    /// a checkpoint at applied_seq, then truncate the stored log below it.
    /// Zero (or no write callback) disables it.
    Duration checkpoint_interval{Duration::zero()};
    /// Persist a checkpoint consistent with the given applied boundary.
    std::function<Status(ValidationTs)> write_checkpoint;
  };

  struct Stats {
    std::uint64_t records_received{0};
    std::uint64_t acks_sent{0};
    /// Commit records covered by those acks — the coalescing ratio is
    /// ack_commits_covered : acks_sent (>= 1 with batching).
    std::uint64_t ack_commits_covered{0};
    std::uint64_t txns_applied{0};
    std::uint64_t writes_applied{0};
    std::uint64_t stale_duplicates{0};
    std::uint64_t snapshot_chunks{0};
    std::uint64_t duplicate_chunks{0};
    /// Live batches staged in the held reorderer while a snapshot was
    /// assembling (the join path keeps no separate record stash).
    std::uint64_t held_batches{0};
    std::uint64_t chunk_retries_sent{0};
    std::uint64_t join_retries{0};
    std::uint64_t rejoins_after_abandon{0};
    std::uint64_t send_failures{0};
    std::uint64_t checkpoints{0};
    /// Log units truncated after checkpoints (LogStorage::truncate_upto).
    std::uint64_t log_truncated{0};
    /// Transactions quarantined on a write-count mismatch (kCorruption from
    /// the reorderer) or a structurally invalid release set: dropped and
    /// counted, the rest of the wire frame still stages, and the stalled
    /// commit floor makes the primary's resend re-deliver the victim.
    std::uint64_t corrupt_txns{0};
    /// Stored-log flush failures. One is enough to mark the disk log
    /// non-dense (see disk_log_dense()).
    std::uint64_t disk_write_failures{0};
  };

  /// `disk` may be null when store_to_disk is false; `index` (optional)
  /// is maintained alongside the copy from the keys carried in the redo
  /// stream, so the mirror can serve index lookups after a takeover.
  MirrorService(storage::ObjectStore& copy, log::LogStorage* disk,
                net::Channel& channel, const Clock& clock, Options options,
                storage::BPlusTree* index = nullptr);

  /// Start as an in-sync mirror (fresh cluster start: both nodes hold the
  /// same initial database; the stream begins at `expected_next`).
  void attach_synced(ValidationTs expected_next);

  /// Start as a recovering node: request a snapshot from the serving node;
  /// live records received meanwhile are buffered.
  void request_join(ValidationTs have);

  void send_heartbeat();

  /// Drive join retries and the endpoint's reconnect machinery; call
  /// periodically (heartbeat tick).
  void poll(TimePoint now);

  /// Take over as the lone server (paper §2: the failed node's peer becomes
  /// the server; transactions without a commit record are aborted).
  struct TakeoverResult {
    ValidationTs next_seq{1};       ///< where the new primary continues
    std::size_t applied_staged{0};  ///< commit-complete txns force-applied
    std::size_t dropped_open{0};    ///< uncommitted txns discarded
  };
  TakeoverResult take_over();

  [[nodiscard]] ValidationTs applied_seq() const { return applied_seq_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] bool snapshot_in_progress() const { return awaiting_snapshot_; }
  [[nodiscard]] TimePoint last_heard() const { return endpoint_.last_heard(); }
  /// When we last heard from a *serving* primary (serving-role heartbeat,
  /// log batch, or snapshot traffic). The takeover watchdog must use this,
  /// not last_heard(): a recovering peer also heartbeats (role kMirror),
  /// and those frames must not convince a lone mirror its primary is alive
  /// — two non-serving nodes feeding each other's watchdogs would deadlock
  /// the pair with no server.
  [[nodiscard]] TimePoint serving_last_heard() const {
    return serving_last_heard_;
  }
  [[nodiscard]] std::size_t reorder_staged() const { return reorderer_.staged_commits(); }
  [[nodiscard]] std::size_t reorder_open() const { return reorderer_.open_txns(); }
  [[nodiscard]] const Endpoint::Stats& endpoint_stats() const {
    return endpoint_.stats();
  }
  /// Apply-pool telemetry (epochs, waves, conflict cuts, mean width).
  [[nodiscard]] const ApplyPool::Stats& apply_stats() const {
    return pool_.stats();
  }
  [[nodiscard]] double apply_parallelism() const {
    return pool_.mean_wave_width();
  }
  /// False after any stored-log write failure: the on-disk log may have
  /// holes, so it must never vouch for dense coverage when a rejoin is
  /// served from disk (the node that takes over consults this before
  /// handing out join artifacts; the fallback is the live snapshot encode).
  [[nodiscard]] bool disk_log_dense() const { return disk_dense_; }

 private:
  void on_log_batch(std::vector<log::Record> records);
  /// One cumulative ack at the reorderer's received-commit floor;
  /// `commits_covered` is how many newly delivered commit records it
  /// answers (telemetry only). Skipped while the floor is still 0.
  void send_cumulative_ack(std::size_t commits_covered);
  void feed(log::Record r);
  /// Drain the reorderer's released epoch through the apply pool, then
  /// re-serialize it to disk. The barrier inside makes applied_seq_ honest:
  /// it only ever names a fully-installed prefix.
  void release_epoch(std::vector<log::ReleasedTxn> epoch);
  /// Apply one transaction's records to the copy (store + index). Runs on
  /// apply-pool threads; must only touch this transaction's footprint.
  void apply_txn(const log::ReleasedTxn& txn);
  /// Fold asynchronous disk-flush failures into stats/disk_dense_.
  void check_disk_health();
  void on_snapshot_chunk(std::uint64_t snapshot_id, std::uint32_t index,
                         std::uint32_t total, std::vector<std::byte> blob);
  void on_snapshot_done(ValidationTs boundary, std::uint64_t snapshot_id);
  void on_heartbeat(NodeRole role, ValidationTs applied);
  void reset_assembly();
  [[nodiscard]] std::vector<std::uint32_t> missing_chunks() const;

  /// Flush completions can outlive the service (the sim disk fires them on
  /// the virtual timeline after a takeover tears the mirror down), so the
  /// failure count lives behind a shared_ptr the callback co-owns.
  struct DiskHealth {
    std::atomic<std::uint64_t> failures{0};
  };

  storage::ObjectStore& store_;
  log::LogStorage* disk_;
  storage::BPlusTree* index_;
  Options options_;
  const Clock& clock_;
  Endpoint endpoint_;
  log::Reorderer reorderer_;
  ApplyPool pool_;
  std::shared_ptr<DiskHealth> disk_health_{std::make_shared<DiskHealth>()};
  /// Prefix of disk_health_->failures already folded into stats_.
  std::uint64_t disk_failures_seen_{0};
  bool disk_dense_{true};
  ValidationTs applied_seq_{0};
  /// See serving_last_heard(); starts at construction time so a fresh
  /// mirror grants the primary one full watchdog window to speak.
  TimePoint serving_last_heard_;
  Stats stats_;
  /// Apply-path checkpoint cadence (ticked from poll()).
  log::Checkpointer ckpt_;

  bool awaiting_snapshot_{false};
  /// Chunk assembly for the in-progress serve (reset when a chunk from a
  /// newer serve arrives).
  std::uint64_t snapshot_id_{0};
  /// Serves with id <= this floor are stale and must never assemble or
  /// install. Raised at every request_join to the id any serve created
  /// before the request would carry (ids embed the shared clock).
  std::uint64_t min_snapshot_id_{0};
  std::uint32_t chunk_total_{0};
  std::vector<std::optional<std::vector<std::byte>>> chunks_;
  std::size_t chunks_received_{0};
  /// Consecutive no-progress join retries; past kMaxChunkRetries the join
  /// restarts from scratch instead of asking for chunks the primary may no
  /// longer cache.
  std::uint32_t stalled_retries_{0};
  static constexpr std::uint32_t kMaxChunkRetries = 4;
  ValidationTs join_have_{0};
  TimePoint last_join_activity_{};
  TimePoint synced_at_{};
  /// Commit records staged while the snapshot assembled (telemetry for the
  /// post-install cumulative ack). Live batches themselves go straight into
  /// the held reorderer — per-batch duplicate detection runs on arrival and
  /// set_expected_next() releases the survivors after install; there is no
  /// separate record stash.
  std::size_t held_commits_{0};
};

}  // namespace rodain::repl
