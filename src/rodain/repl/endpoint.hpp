// Typed message pump over a Channel: decodes frames, dispatches to
// handlers, stamps liveness for the watchdog. Both node roles own one.
#pragma once

#include "rodain/common/clock.hpp"
#include "rodain/net/channel.hpp"
#include "rodain/repl/protocol.hpp"

namespace rodain::repl {

class Endpoint {
 public:
  struct Handlers {
    std::function<void(std::vector<log::Record>)> on_log_batch;
    std::function<void(ValidationTs)> on_commit_ack;
    std::function<void(NodeRole, ValidationTs)> on_heartbeat;
    std::function<void(ValidationTs)> on_join_request;
    std::function<void(std::uint32_t, std::uint32_t, std::vector<std::byte>)>
        on_snapshot_chunk;
    std::function<void(ValidationTs)> on_snapshot_done;
    std::function<void()> on_disconnect;
    std::function<void(Status)> on_protocol_error;
  };

  Endpoint(net::Channel& channel, const Clock& clock, Handlers handlers);

  Status send(const Message& m) { return channel_.send(encode(m)); }

  /// When any frame (or heartbeat) was last received — watchdog input.
  [[nodiscard]] TimePoint last_heard() const { return last_heard_; }
  void touch() { last_heard_ = clock_.now(); }

  [[nodiscard]] bool connected() const { return channel_.connected(); }

 private:
  void on_frame(std::vector<std::byte> frame);

  net::Channel& channel_;
  const Clock& clock_;
  Handlers handlers_;
  TimePoint last_heard_;
};

/// Failure detector: a peer that has not been heard from within `timeout`
/// is declared failed (paper §2's Watchdog subsystem).
class Watchdog {
 public:
  explicit Watchdog(Duration timeout) : timeout_(timeout) {}

  [[nodiscard]] bool expired(TimePoint now, TimePoint last_heard) const {
    return now - last_heard > timeout_;
  }
  [[nodiscard]] Duration timeout() const { return timeout_; }

 private:
  Duration timeout_;
};

}  // namespace rodain::repl
