// Typed message pump over a Channel: decodes frames, dispatches to
// handlers, stamps liveness for the watchdog. Both node roles own one.
//
// Hardened against a faulty link: every outgoing message is wrapped in a
// crc/epoch/sequence envelope, corrupted frames are rejected, duplicated
// and stale reordered frames are suppressed by a sliding anti-replay
// window, and a polled reconnect state machine with capped exponential
// backoff re-establishes the stream (firing on_reconnected so the sender
// can retry unacknowledged commit records).
#pragma once

#include <memory>

#include "rodain/common/backoff.hpp"
#include "rodain/common/clock.hpp"
#include "rodain/net/channel.hpp"
#include "rodain/repl/protocol.hpp"

namespace rodain::repl {

class Endpoint {
 public:
  struct Handlers {
    std::function<void(std::vector<log::Record>)> on_log_batch;
    std::function<void(ValidationTs)> on_commit_ack;
    std::function<void(NodeRole, ValidationTs)> on_heartbeat;
    std::function<void(ValidationTs)> on_join_request;
    std::function<void(std::uint64_t, std::uint32_t, std::uint32_t,
                       std::vector<std::byte>)>
        on_snapshot_chunk;  ///< (snapshot id, index, total, bytes)
    std::function<void(ValidationTs, std::uint64_t)>
        on_snapshot_done;  ///< (boundary, snapshot id)
    std::function<void(std::uint64_t, std::vector<std::uint32_t>)>
        on_chunk_retry;  ///< (snapshot id, missing chunk indexes)
    std::function<void()> on_disconnect;
    /// The channel came back after a disconnect (observed by poll()).
    std::function<void()> on_reconnected;
    std::function<void(Status)> on_protocol_error;
  };

  struct Options {
    BackoffPolicy reconnect{Duration::millis(5), Duration::millis(500), 2.0,
                            0.2};
    std::uint64_t seed{0x0e9d};
  };

  struct Stats {
    std::uint64_t frames_sent{0};
    std::uint64_t send_failures{0};
    std::uint64_t frames_received{0};
    std::uint64_t corrupt_rejected{0};
    std::uint64_t duplicates_suppressed{0};
    std::uint64_t stale_suppressed{0};
    std::uint64_t reconnect_attempts{0};
    std::uint64_t reconnects{0};
  };

  Endpoint(net::Channel& channel, const Clock& clock, Handlers handlers);
  Endpoint(net::Channel& channel, const Clock& clock, Handlers handlers,
           Options options);

  Status send(const Message& m);

  /// Drive the reconnect state machine; call periodically (heartbeat tick).
  /// Detects channel restoration, paces reconnect attempts with capped
  /// exponential backoff + jitter, and fires on_reconnected.
  void poll(TimePoint now);

  /// Transports that need an active reconnect step (e.g. dialing a TCP
  /// peer) install it here; it returns true once the channel is up again.
  /// Transports that restore passively (SimLink) leave it unset.
  void set_connector(std::function<bool()> connector) {
    connector_ = std::move(connector);
  }

  /// When any frame (or heartbeat) was last received — watchdog input.
  [[nodiscard]] TimePoint last_heard() const { return last_heard_; }
  void touch() { last_heard_ = clock_.now(); }

  [[nodiscard]] bool connected() const { return channel_.connected(); }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  /// The peer's current send epoch (0 until a frame is accepted). Epochs
  /// are clock-ordered, so comparing ours against the peer's tells which
  /// endpoint was (re)built more recently — the split-brain tie-break.
  [[nodiscard]] std::uint64_t peer_epoch() const { return peer_epoch_; }

 private:
  void on_frame(std::vector<std::byte> frame);
  /// Anti-replay admission for a received (epoch, frame_seq).
  [[nodiscard]] bool accept_frame(std::uint64_t epoch, std::uint64_t seq);

  net::Channel& channel_;
  const Clock& clock_;
  Handlers handlers_;
  /// Liveness sentinel captured (weakly) by the handlers this endpoint
  /// installs on the channel: the channel outlives the endpoint (a SimLink
  /// end survives a node failure), so a late frame or disconnect event must
  /// not reach a destroyed endpoint. Destroying the endpoint expires the
  /// sentinel and the stale handlers become no-ops.
  std::shared_ptr<bool> alive_{std::make_shared<bool>(true)};
  TimePoint last_heard_;
  Stats stats_;

  // Send side: this endpoint's epoch (monotone across rebuilds), frame
  // counter, and the reused frame-encode buffer.
  std::uint64_t epoch_;
  std::uint64_t next_frame_seq_{1};
  ByteWriter encode_buf_;

  // Receive side: DTLS-style 64-frame sliding window within the peer's
  // current epoch.
  std::uint64_t peer_epoch_{0};
  std::uint64_t window_highest_{0};
  std::uint64_t window_mask_{0};

  // Reconnect state machine.
  Backoff backoff_;
  std::function<bool()> connector_;
  bool reconnecting_{false};
  TimePoint next_attempt_{};
};

/// Failure detector: a peer that has not been heard from within `timeout`
/// is declared failed (paper §2's Watchdog subsystem).
class Watchdog {
 public:
  explicit Watchdog(Duration timeout) : timeout_(timeout) {}

  [[nodiscard]] bool expired(TimePoint now, TimePoint last_heard) const {
    return now - last_heard > timeout_;
  }
  [[nodiscard]] Duration timeout() const { return timeout_; }

 private:
  Duration timeout_;
};

}  // namespace rodain::repl
