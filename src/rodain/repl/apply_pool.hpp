// Mirror-side parallel apply (DESIGN.md §14).
//
// The reorderer releases one *epoch* at a time: a seq-ordered run of
// complete transactions whose ordering proof the primary's epoch sealer
// already established. Within one epoch, transactions whose oid/key
// footprints are disjoint commute — applying them in any order produces a
// byte-identical store, because every write is stamped with its own
// transaction's serial_ts and the per-object install order only matters
// between transactions that touch the same object.
//
// The pool exploits exactly that: it walks the epoch in seq order and
// greedily packs transactions into *waves* — a wave ends at the first
// transaction whose footprint intersects one already in the wave (the same
// stripe discipline as cc::IntentTable, so two conflicting transactions can
// never share a wave even under stripe aliasing). Waves apply one after
// another with a full barrier between them; within a wave the worker
// threads claim transactions from a shared cursor. The epoch boundary is
// itself a barrier, so the caller observes exactly the serial-apply state:
// store contents, index, and OCC wts stamps are identical, and the applied
// floor only advances past fully-applied prefixes.
//
// workers <= 1 degrades to inline serial apply with identical accounting
// (the simulator's virtual-time parity mode, and the fallback when the
// mirror host has no spare cores).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "rodain/log/reorder.hpp"

namespace rodain::repl {

class ApplyPool {
 public:
  /// Applies one released transaction to the copy. Must be safe to call
  /// concurrently for transactions with disjoint footprints (the object
  /// store's per-record discipline + the B+-tree's internal writer lock).
  using ApplyFn = std::function<void(const log::ReleasedTxn&)>;

  struct Stats {
    std::uint64_t epochs{0};
    std::uint64_t waves{0};
    std::uint64_t txns{0};
    /// Transactions that ran in a wave of width >= 2 (actually overlapped
    /// with another apply).
    std::uint64_t parallel_txns{0};
    /// Waves cut short because the next transaction's footprint collided
    /// with one already packed (the serialization the epoch really needed).
    std::uint64_t conflict_cuts{0};
    std::uint64_t max_wave{0};
  };

  /// `workers` is the total apply width: the caller's thread participates,
  /// so `workers - 1` pool threads are spawned. 0 and 1 both mean serial.
  explicit ApplyPool(std::size_t workers);
  ~ApplyPool();
  ApplyPool(const ApplyPool&) = delete;
  ApplyPool& operator=(const ApplyPool&) = delete;

  /// Apply a whole epoch (seq-ascending). Blocks until every transaction
  /// is applied — the epoch-boundary barrier.
  void apply(const std::vector<log::ReleasedTxn>& epoch, const ApplyFn& fn);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t width() const { return threads_.size() + 1; }
  /// Mean transactions per wave so far (1.0 = fully serialized epochs).
  [[nodiscard]] double mean_wave_width() const {
    return stats_.waves == 0
               ? 0.0
               : static_cast<double>(stats_.txns) /
                     static_cast<double>(stats_.waves);
  }

  /// Conflict-partition footprint of one transaction: sorted, deduped
  /// stripe indices over its written oids and carried index keys (exposed
  /// for tests — the partition proof lives here).
  [[nodiscard]] static std::vector<std::uint32_t> footprint(
      const log::ReleasedTxn& txn);

 private:
  void worker_loop();
  /// Run one conflict-free wave of epoch indices [begin, end); participates
  /// from the calling thread and barriers before returning.
  void run_wave(const std::vector<log::ReleasedTxn>& epoch, std::size_t begin,
                std::size_t end, const ApplyFn& fn);

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  /// Wave handoff (guarded by mu_ for the generation, atomics for claims).
  const std::vector<log::ReleasedTxn>* epoch_{nullptr};
  const ApplyFn* fn_{nullptr};
  std::size_t wave_end_{0};
  std::uint64_t generation_{0};
  std::atomic<std::size_t> next_{0};
  std::atomic<std::size_t> applied_{0};
  bool stop_{false};

  Stats stats_;
  std::vector<std::thread> threads_;
};

}  // namespace rodain::repl
