// Wire protocol between the Primary and Mirror Nodes (paper §2–3).
//
//   kLogBatch      primary -> mirror: redo records as generated; one frame
//                  may carry many transactions (group commit), but never a
//                  partial transaction
//   kCommitAck     mirror -> primary: cumulative — every commit record with
//                  validation seq <= `seq` has arrived (the primary may let
//                  all of those transactions perform their final commit step)
//   kHeartbeat     both directions, watchdog liveness + applied high-water
//   kJoinRequest   recovering node -> serving node: "make me your mirror"
//   kSnapshotChunk serving node -> joiner: checkpoint bytes
//   kSnapshotDone  serving node -> joiner: snapshot boundary seq; live
//                  records with greater seq follow
//   kChunkRetry    joiner -> serving node: re-send these missing chunks
//
// Every message travels inside a frame envelope:
//
//   [u32 crc32c(epoch || frame_seq || payload)][u64 epoch][u64 frame_seq][payload]
//
// The crc rejects corrupted frames (the message payload itself carries no
// checksum), the per-endpoint frame_seq lets the receiver suppress
// duplicates and stale reordered frames, and the epoch — monotone across
// endpoint rebuilds within a process — keeps a rebuilt sender from being
// suppressed by the receiver's old anti-replay window.
#pragma once

#include <cstdint>
#include <vector>

#include "rodain/common/serialization.hpp"
#include "rodain/common/status.hpp"
#include "rodain/common/types.hpp"
#include "rodain/log/record.hpp"

namespace rodain::repl {

enum class MsgType : std::uint8_t {
  kLogBatch = 1,
  kCommitAck = 2,
  kHeartbeat = 3,
  kJoinRequest = 4,
  kSnapshotChunk = 5,
  kSnapshotDone = 6,
  kChunkRetry = 7,
};

struct Message {
  MsgType type{MsgType::kHeartbeat};

  std::vector<log::Record> records;  ///< kLogBatch
  ValidationTs seq{0};               ///< ack seq / snapshot boundary / applied
  NodeRole role{NodeRole::kDown};    ///< kHeartbeat: sender's role
  ValidationTs have{0};              ///< kJoinRequest: seq already recovered
  std::vector<std::byte> blob;       ///< kSnapshotChunk payload
  std::uint32_t chunk_index{0};      ///< kSnapshotChunk ordinal
  std::uint32_t chunk_total{0};      ///< kSnapshotChunk count
  /// Identifies one snapshot serve (kSnapshotChunk / kSnapshotDone /
  /// kChunkRetry), so chunks from an abandoned serve can never be mixed
  /// into a later one.
  std::uint64_t snapshot_id{0};
  std::vector<std::uint32_t> missing;  ///< kChunkRetry: chunk indexes

  [[nodiscard]] static Message log_batch(std::vector<log::Record> records);
  [[nodiscard]] static Message commit_ack(ValidationTs seq);
  [[nodiscard]] static Message heartbeat(NodeRole role, ValidationTs applied);
  [[nodiscard]] static Message join_request(ValidationTs have);
  [[nodiscard]] static Message snapshot_chunk(std::uint64_t snapshot_id,
                                              std::uint32_t index,
                                              std::uint32_t total,
                                              std::vector<std::byte> blob);
  [[nodiscard]] static Message snapshot_done(ValidationTs boundary,
                                             std::uint64_t snapshot_id);
  [[nodiscard]] static Message chunk_retry(std::uint64_t snapshot_id,
                                           std::vector<std::uint32_t> missing);
};

[[nodiscard]] std::vector<std::byte> encode(const Message& m);
/// Append `m`'s payload encoding to `w` (no framing) — the buffer-reusing
/// counterpart of encode().
void encode_into(const Message& m, ByteWriter& w);
[[nodiscard]] Result<Message> decode(std::span<const std::byte> frame);

/// A message plus its envelope fields, as received.
struct Frame {
  std::uint64_t epoch{0};
  std::uint64_t frame_seq{0};
  Message msg;
};

[[nodiscard]] std::vector<std::byte> encode_framed(std::uint64_t epoch,
                                                   std::uint64_t frame_seq,
                                                   const Message& m);
/// Append one complete frame (crc/epoch/frame_seq envelope + payload) to
/// `w`. The endpoint clears and reuses one ByteWriter across sends so the
/// steady-state ship path stops allocating a fresh buffer per frame.
void encode_framed_into(std::uint64_t epoch, std::uint64_t frame_seq,
                        const Message& m, ByteWriter& w);
[[nodiscard]] Result<Frame> decode_framed(std::span<const std::byte> frame);

}  // namespace rodain::repl
