// The Primary Node's replication half: ships the redo stream (it is the
// LogWriter's Shipper), routes commit acks back, serves join requests with
// a snapshot + catch-up tail, and exposes peer liveness for the watchdog.
//
// Hardened against lossy links: send statuses are counted instead of
// dropped, the last served snapshot is cached so the joiner can ask for
// exactly the chunks it is missing (kChunkRetry), and a reconnect observed
// by the endpoint triggers a re-ship of every unacknowledged transaction.
#pragma once

#include <optional>
#include <vector>

#include "rodain/common/clock.hpp"
#include "rodain/log/writer.hpp"
#include "rodain/repl/endpoint.hpp"
#include "rodain/storage/checkpoint.hpp"
#include "rodain/storage/object_store.hpp"

namespace rodain::repl {

/// Disk-served join (instant rejoin, DESIGN.md §12): the on-disk checkpoint
/// plus the log records that densely cover (boundary, installed_low_water],
/// already deduplicated and in validation-seq order. Serving these instead
/// of encoding the live store keeps the join off the commit path's cache
/// and skips the snapshot encode entirely.
struct JoinArtifacts {
  std::vector<std::byte> checkpoint_bytes;
  ValidationTs boundary{0};
  std::vector<log::Record> catch_up;
};

class PrimaryReplicator final : public log::Shipper {
 public:
  struct Hooks {
    /// Snapshot boundary: the highest validation seq v such that every
    /// transaction with seq <= v has installed its writes (the engine's
    /// installed low-water mark).
    std::function<ValidationTs()> snapshot_boundary;
    /// Optional disk-based join serving. Return artifacts to ship the
    /// stored checkpoint + log instead of a live snapshot encode; return
    /// nullopt to fall back to the live path (no checkpoint on disk, log
    /// coverage gap, non-segmented log, ...).
    std::function<std::optional<JoinArtifacts>()> join_artifacts;
    /// A mirror finished joining (snapshot + catch-up shipped): the node
    /// should switch the LogWriter to kMirror mode and update its role.
    std::function<void()> on_mirror_joined;
    /// The link dropped.
    std::function<void()> on_disconnect;
    /// The link came back (after unacked txns were already re-shipped).
    std::function<void()> on_reconnected;
    /// A heartbeat arrived whose sender also claims a primary role: split
    /// brain (a spurious mirror takeover during a link-only outage). The
    /// argument is the peer's commit height from its heartbeat; the node
    /// layer resolves the conflict (see DESIGN.md §8).
    std::function<void(ValidationTs)> on_peer_primary;
  };

  struct Options {
    std::size_t snapshot_chunk_bytes{256 * 1024};
  };

  PrimaryReplicator(net::Channel& channel, const Clock& clock,
                    storage::ObjectStore& store, log::LogWriter& writer,
                    Hooks hooks);
  PrimaryReplicator(net::Channel& channel, const Clock& clock,
                    storage::ObjectStore& store, log::LogWriter& writer,
                    Hooks hooks, Options options);

  /// Include the secondary index in served snapshots (optional).
  void set_index(const storage::BPlusTree* index) { index_ = index; }

  // log::Shipper
  void ship(std::span<const log::Record> records) override;

  /// `height` is this node's commit height (installed low-water mark); a
  /// peer that also believes it is primary uses it to resolve the conflict
  /// (richer history wins).
  void send_heartbeat(NodeRole role, ValidationTs height = 0);

  /// Drive the endpoint's reconnect machinery (heartbeat tick).
  void poll(TimePoint now);

  [[nodiscard]] TimePoint last_heard() const { return endpoint_.last_heard(); }
  [[nodiscard]] bool channel_connected() const { return endpoint_.connected(); }
  [[nodiscard]] ValidationTs mirror_applied_seq() const { return mirror_applied_; }
  [[nodiscard]] std::uint64_t snapshots_served() const { return snapshots_served_; }
  /// How many of those were served from the on-disk artifacts.
  [[nodiscard]] std::uint64_t snapshots_from_disk() const {
    return snapshots_from_disk_;
  }
  [[nodiscard]] std::uint64_t send_failures() const { return send_failures_; }
  [[nodiscard]] std::uint64_t snapshot_chunks_resent() const {
    return snapshot_chunks_resent_;
  }
  [[nodiscard]] const Endpoint::Stats& endpoint_stats() const {
    return endpoint_.stats();
  }
  /// Endpoint ages for the split-brain tie-break: with equal commit
  /// heights, the younger endpoint (larger epoch — the spurious
  /// taker-over rebuilt its replicator later) yields.
  [[nodiscard]] std::uint64_t endpoint_epoch() const {
    return endpoint_.epoch();
  }
  [[nodiscard]] std::uint64_t peer_epoch() const {
    return endpoint_.peer_epoch();
  }

 private:
  void on_join_request(ValidationTs have);
  void on_chunk_retry(std::uint64_t snapshot_id,
                      const std::vector<std::uint32_t>& missing);
  Status send_counted(const Message& m);
  Status send_chunk(std::uint32_t index);

  /// The last served snapshot, kept until the mirror's applied seq passes
  /// its boundary, so lost chunks can be re-served without re-encoding.
  struct CachedSnapshot {
    std::uint64_t id{0};
    ValidationTs boundary{0};
    std::uint32_t chunk_total{0};
    std::vector<std::byte> bytes;
  };

  Endpoint endpoint_;
  const Clock& clock_;
  storage::ObjectStore& store_;
  const storage::BPlusTree* index_{nullptr};
  log::LogWriter& writer_;
  Hooks hooks_;
  Options options_;
  ValidationTs mirror_applied_{0};
  std::uint64_t snapshots_served_{0};
  std::uint64_t snapshots_from_disk_{0};
  std::uint64_t send_failures_{0};
  std::uint64_t snapshot_chunks_resent_{0};
  std::optional<CachedSnapshot> last_snapshot_;
};

}  // namespace rodain::repl
