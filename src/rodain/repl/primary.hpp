// The Primary Node's replication half: ships the redo stream (it is the
// LogWriter's Shipper), routes commit acks back, serves join requests with
// a snapshot + catch-up tail, and exposes peer liveness for the watchdog.
#pragma once

#include "rodain/common/clock.hpp"
#include "rodain/log/writer.hpp"
#include "rodain/repl/endpoint.hpp"
#include "rodain/storage/checkpoint.hpp"
#include "rodain/storage/object_store.hpp"

namespace rodain::repl {

class PrimaryReplicator final : public log::Shipper {
 public:
  struct Hooks {
    /// Snapshot boundary: the highest validation seq v such that every
    /// transaction with seq <= v has installed its writes (the engine's
    /// installed low-water mark).
    std::function<ValidationTs()> snapshot_boundary;
    /// A mirror finished joining (snapshot + catch-up shipped): the node
    /// should switch the LogWriter to kMirror mode and update its role.
    std::function<void()> on_mirror_joined;
    /// The link dropped.
    std::function<void()> on_disconnect;
  };

  struct Options {
    std::size_t snapshot_chunk_bytes{256 * 1024};
  };

  PrimaryReplicator(net::Channel& channel, const Clock& clock,
                    storage::ObjectStore& store, log::LogWriter& writer,
                    Hooks hooks);
  PrimaryReplicator(net::Channel& channel, const Clock& clock,
                    storage::ObjectStore& store, log::LogWriter& writer,
                    Hooks hooks, Options options);

  /// Include the secondary index in served snapshots (optional).
  void set_index(const storage::BPlusTree* index) { index_ = index; }

  // log::Shipper
  void ship(std::span<const log::Record> records) override;

  void send_heartbeat(NodeRole role);

  [[nodiscard]] TimePoint last_heard() const { return endpoint_.last_heard(); }
  [[nodiscard]] ValidationTs mirror_applied_seq() const { return mirror_applied_; }
  [[nodiscard]] std::uint64_t snapshots_served() const { return snapshots_served_; }

 private:
  void on_join_request(ValidationTs have);

  Endpoint endpoint_;
  storage::ObjectStore& store_;
  const storage::BPlusTree* index_{nullptr};
  log::LogWriter& writer_;
  Hooks hooks_;
  Options options_;
  ValidationTs mirror_applied_{0};
  std::uint64_t snapshots_served_{0};
};

}  // namespace rodain::repl
