#include "rodain/repl/apply_pool.hpp"

#include <algorithm>
#include <bitset>

#include "rodain/cc/intents.hpp"

namespace rodain::repl {

namespace {
/// FNV-1a over the index key bytes; folded through the same stripe mix as
/// oids. Keys and oids share the stripe space — aliasing between them only
/// serializes, never reorders.
std::uint32_t key_stripe(const storage::IndexKey& key) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint8_t b : key.bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return cc::IntentTable::stripe_of(h);
}
}  // namespace

std::vector<std::uint32_t> ApplyPool::footprint(const log::ReleasedTxn& txn) {
  std::vector<std::uint32_t> stripes;
  stripes.reserve(txn.records.size());
  for (const log::Record& r : txn.records) {
    switch (r.type) {
      case log::RecordType::kWriteImage:
      case log::RecordType::kDelete:
        stripes.push_back(cc::IntentTable::stripe_of(r.oid));
        if (r.has_key) stripes.push_back(key_stripe(r.key));
        break;
      case log::RecordType::kCommit:
        break;
    }
  }
  std::sort(stripes.begin(), stripes.end());
  stripes.erase(std::unique(stripes.begin(), stripes.end()), stripes.end());
  return stripes;
}

ApplyPool::ApplyPool(std::size_t workers) {
  const std::size_t extra = workers > 1 ? workers - 1 : 0;
  threads_.reserve(extra);
  for (std::size_t i = 0; i < extra; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ApplyPool::~ApplyPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ApplyPool::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    const std::vector<log::ReleasedTxn>* epoch = epoch_;
    const ApplyFn* fn = fn_;
    const std::size_t end = wave_end_;
    lock.unlock();
    std::size_t done = 0;
    for (;;) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= end) break;
      (*fn)((*epoch)[i]);
      ++done;
    }
    if (done > 0) {
      applied_.fetch_add(done, std::memory_order_acq_rel);
      // Empty critical section: a coordinator between its predicate check
      // and the wait sleep holds mu_, so acquiring it here orders this
      // notify after that sleep begins — no lost wakeup.
      { std::lock_guard relock(mu_); }
      done_cv_.notify_one();
    }
    lock.lock();
  }
}

void ApplyPool::run_wave(const std::vector<log::ReleasedTxn>& epoch,
                         std::size_t begin, std::size_t end,
                         const ApplyFn& fn) {
  const std::size_t n = end - begin;
  if (n == 0) return;
  if (threads_.empty() || n == 1) {
    for (std::size_t i = begin; i < end; ++i) fn(epoch[i]);
    return;
  }
  {
    std::lock_guard lock(mu_);
    epoch_ = &epoch;
    fn_ = &fn;
    wave_end_ = end;
    next_.store(begin, std::memory_order_relaxed);
    applied_.store(0, std::memory_order_relaxed);
    ++generation_;
  }
  work_cv_.notify_all();
  // The caller is a pool member: claim from the same cursor.
  std::size_t done = 0;
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= end) break;
    fn(epoch[i]);
    ++done;
  }
  if (done > 0) applied_.fetch_add(done, std::memory_order_acq_rel);
  std::unique_lock lock(mu_);
  done_cv_.wait(lock, [&] {
    return applied_.load(std::memory_order_acquire) == n;
  });
}

void ApplyPool::apply(const std::vector<log::ReleasedTxn>& epoch,
                      const ApplyFn& fn) {
  if (epoch.empty()) return;
  ++stats_.epochs;
  stats_.txns += epoch.size();
  // The partition is computed even at width 1 (where execution is inline
  // serial): wave accounting is then identical across serial and parallel
  // configurations — the simulator's virtual-time parity and the
  // serial-vs-parallel permutation tests compare these numbers directly.
  std::vector<std::vector<std::uint32_t>> foot(epoch.size());
  for (std::size_t i = 0; i < epoch.size(); ++i) {
    foot[i] = footprint(epoch[i]);
  }
  std::bitset<cc::IntentTable::kStripes> claimed;
  std::size_t begin = 0;
  while (begin < epoch.size()) {
    claimed.reset();
    std::size_t end = begin;
    bool cut = false;
    for (; end < epoch.size(); ++end) {
      bool conflict = false;
      for (std::uint32_t s : foot[end]) {
        if (claimed.test(s)) {
          conflict = true;
          break;
        }
      }
      if (conflict) {
        cut = true;
        break;
      }
      for (std::uint32_t s : foot[end]) claimed.set(s);
    }
    const std::size_t width = end - begin;
    ++stats_.waves;
    if (cut) ++stats_.conflict_cuts;
    if (width >= 2) stats_.parallel_txns += width;
    stats_.max_wave = std::max(stats_.max_wave, width);
    run_wave(epoch, begin, end, fn);
    begin = end;
  }
}

}  // namespace rodain::repl
