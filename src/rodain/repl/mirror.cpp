#include "rodain/repl/mirror.hpp"

#include <algorithm>

#include "rodain/common/diag.hpp"
#include "rodain/obs/obs.hpp"

namespace rodain::repl {

namespace {
struct MirrorMetrics {
  obs::Counter& records_received =
      obs::metrics().counter("mirror.records_received");
  obs::Counter& acks_sent = obs::metrics().counter("mirror.acks_sent");
  obs::Counter& ack_commits_covered =
      obs::metrics().counter("mirror.ack_commits_covered");
  obs::Counter& txns_applied = obs::metrics().counter("mirror.txns_applied");
  obs::Counter& writes_applied =
      obs::metrics().counter("mirror.writes_applied");
  obs::Counter& stale_duplicates =
      obs::metrics().counter("mirror.stale_duplicates");
  obs::Counter& duplicate_chunks =
      obs::metrics().counter("mirror.duplicate_chunks");
  obs::Counter& chunk_retries =
      obs::metrics().counter("mirror.chunk_retries_sent");
  obs::Counter& join_retries = obs::metrics().counter("mirror.join_retries");
  obs::Counter& rejoins_after_abandon =
      obs::metrics().counter("mirror.rejoins_after_abandon");
  /// Reorder-queue depths: commit-complete transactions waiting for an
  /// earlier seq, and transactions with buffered writes but no commit yet.
  obs::Gauge& reorder_staged = obs::metrics().gauge("mirror.reorder.staged");
  obs::Gauge& reorder_open = obs::metrics().gauge("mirror.reorder.open");
  obs::Gauge& applied_seq = obs::metrics().gauge("mirror.applied_seq");
};
MirrorMetrics& mm() {
  static MirrorMetrics m;
  return m;
}
}  // namespace

MirrorService::MirrorService(storage::ObjectStore& copy, log::LogStorage* disk,
                             net::Channel& channel, const Clock& clock,
                             Options options, storage::BPlusTree* index)
    : store_(copy),
      disk_(disk),
      index_(index),
      options_(options),
      clock_(clock),
      endpoint_(channel, clock,
                Endpoint::Handlers{
                    .on_log_batch =
                        [this](std::vector<log::Record> r) {
                          on_log_batch(std::move(r));
                        },
                    .on_commit_ack = {},
                    .on_heartbeat =
                        [this](NodeRole role, ValidationTs applied) {
                          on_heartbeat(role, applied);
                        },
                    .on_join_request = {},
                    .on_snapshot_chunk =
                        [this](std::uint64_t id, std::uint32_t i,
                               std::uint32_t n, std::vector<std::byte> b) {
                          on_snapshot_chunk(id, i, n, std::move(b));
                        },
                    .on_snapshot_done =
                        [this](ValidationTs boundary, std::uint64_t id) {
                          on_snapshot_done(boundary, id);
                        },
                    .on_chunk_retry = {},
                    .on_disconnect = {},
                    .on_reconnected = {},
                    .on_protocol_error = {},
                }),
      reorderer_(
          [this](ValidationTs seq, TxnId txn, std::vector<log::Record> recs) {
            release(seq, txn, std::move(recs));
          }) {
  serving_last_heard_ = clock_.now();
  if (options_.write_checkpoint && options_.checkpoint_interval.is_positive()) {
    log::Checkpointer::Options ckpt;
    ckpt.interval = options_.checkpoint_interval;
    // applied_seq_ is the mirror's consistent boundary: every transaction
    // at or below it is fully installed in the copy, in validation order.
    ckpt.boundary = [this] { return applied_seq_; };
    ckpt.write = options_.write_checkpoint;
    ckpt.log = options_.store_to_disk ? disk_ : nullptr;
    ckpt_.configure(std::move(ckpt));
  }
}

void MirrorService::attach_synced(ValidationTs expected_next) {
  reorderer_.set_expected_next(expected_next);
  applied_seq_ = expected_next == 0 ? 0 : expected_next - 1;
  awaiting_snapshot_ = false;
  synced_at_ = clock_.now();
}

void MirrorService::reset_assembly() {
  snapshot_id_ = 0;
  chunk_total_ = 0;
  chunks_.clear();
  chunks_received_ = 0;
}

void MirrorService::request_join(ValidationTs have) {
  if (obs::tracing_enabled()) {
    obs::tracer().record_instant(obs::Phase::kRejoin, have);
  }
  awaiting_snapshot_ = true;
  join_have_ = have;
  // Floor for acceptable serves: ids embed the shared clock (us << 16), so
  // every serve created before this join request compares smaller, and the
  // serve answering it compares greater. Without the floor a stale serve's
  // late chunks could restart assembly after reset_assembly() zeroes
  // snapshot_id_ and install an old boundary — silently missing commits
  // that exist only in the serve answering this join (e.g. ones the
  // primary disk-committed while alone and never shipped live).
  min_snapshot_id_ =
      std::max({min_snapshot_id_, snapshot_id_,
                static_cast<std::uint64_t>(clock_.now().us) << 16});
  reset_assembly();
  // Hold the reorderer: live deliveries keep staging in seq order but
  // nothing applies to the store the snapshot is about to replace. Staged
  // transactions survive join retries — dropping them would lose delivered
  // commits if a retry races with the previous serve (that serve's late
  // chunks can resurrect its assembly and install the OLDER boundary, and
  // only the staged run covers the commits in between). Stale entries are
  // cheap — set_expected_next purges what the snapshot covers.
  reorderer_.hold_releases();
  stalled_retries_ = 0;
  last_join_activity_ = clock_.now();
  if (!endpoint_.send(Message::join_request(have))) ++stats_.send_failures;
}

void MirrorService::send_heartbeat() {
  if (!endpoint_.send(Message::heartbeat(NodeRole::kMirror, applied_seq_))) {
    ++stats_.send_failures;
  }
}

void MirrorService::poll(TimePoint now) {
  endpoint_.poll(now);
  if (!awaiting_snapshot_ && ckpt_.enabled() && ckpt_.tick(now)) {
    stats_.checkpoints = ckpt_.stats().checkpoints;
    stats_.log_truncated = ckpt_.stats().truncated;
  }
  if (!awaiting_snapshot_) return;
  if (now - last_join_activity_ <= options_.join_retry_timeout) return;
  // The join stalled: the request, some chunks, or the done marker were
  // lost. With a partial assembly, ask for exactly the missing chunks;
  // otherwise start over.
  ++stats_.join_retries;
  mm().join_retries.inc();
  last_join_activity_ = now;
  if (++stalled_retries_ > kMaxChunkRetries) {
    // Repeated chunk retries went nowhere (e.g. the primary rebuilt and no
    // longer caches this serve): start the join over.
    RODAIN_WARN("mirror: %u stalled retries, restarting the join",
                stalled_retries_);
    request_join(join_have_);
    return;
  }
  if (snapshot_id_ != 0 && chunks_received_ > 0) {
    ++stats_.chunk_retries_sent;
    mm().chunk_retries.inc();
    RODAIN_INFO("mirror: join stalled, re-requesting %zu missing chunks",
                static_cast<std::size_t>(chunk_total_) - chunks_received_);
    if (!endpoint_.send(Message::chunk_retry(snapshot_id_, missing_chunks()))) {
      ++stats_.send_failures;
    }
  } else {
    RODAIN_INFO("mirror: join stalled with no snapshot progress, re-joining");
    if (!endpoint_.send(Message::join_request(join_have_))) {
      ++stats_.send_failures;
    }
  }
}

void MirrorService::on_heartbeat(NodeRole role, ValidationTs applied) {
  (void)applied;
  if (role == NodeRole::kPrimaryAlone || role == NodeRole::kPrimaryWithMirror) {
    serving_last_heard_ = clock_.now();
  }
  if (role != NodeRole::kPrimaryAlone || awaiting_snapshot_) return;
  // The primary serves alone while we believe we are its synced mirror: it
  // falsely declared us lost (ack timeout / watchdog during a link flap)
  // and our copy is diverging. Rejoin from what we have. Freshly synced
  // mirrors ignore stale kPrimaryAlone heartbeats still in flight.
  if (clock_.now() - synced_at_ <= options_.abandon_grace) return;
  ++stats_.rejoins_after_abandon;
  mm().rejoins_after_abandon.inc();
  RODAIN_WARN("mirror: primary abandoned us (serving alone), rejoining from "
              "seq %llu",
              static_cast<unsigned long long>(applied_seq_));
  if (options_.on_abandoned) options_.on_abandoned();
  request_join(applied_seq_);
}

void MirrorService::on_log_batch(std::vector<log::Record> records) {
  serving_last_heard_ = clock_.now();  // only a serving primary ships redo
  stats_.records_received += records.size();
  mm().records_received.inc(records.size());
  std::size_t commits = 0;
  for (const log::Record& r : records) {
    if (r.is_commit()) {
      ++commits;
      RODAIN_DEBUG("mirror: recv commit seq %llu awaiting=%d",
                   static_cast<unsigned long long>(r.seq),
                   awaiting_snapshot_ ? 1 : 0);
    }
  }
  if (awaiting_snapshot_) {
    // No acks while joining: the floor is unknowable until the snapshot
    // installs; the post-install cumulative ack covers everything staged.
    // Records feed the *held* reorderer directly (request_join called
    // hold_releases), so duplicate detection runs on arrival and nothing
    // applies until set_expected_next moves the floor to the boundary.
    ++stats_.held_batches;
    held_commits_ += commits;
    reorderer_.begin_batch();
    for (log::Record& r : records) feed(std::move(r));
    return;
  }
  // "When the Mirror Node receives a commit record, it immediately sends
  // an acknowledgment back" (paper §3) — before reordering to disk, but
  // coalesced: one cumulative ack answers every commit in the batch. Sent
  // even when every commit was a stale duplicate (a re-ship after
  // reconnect means the primary may have lost the original ack).
  reorderer_.begin_batch();
  for (log::Record& r : records) feed(std::move(r));
  if (commits > 0) send_cumulative_ack(commits);
}

void MirrorService::send_cumulative_ack(std::size_t commits_covered) {
  const ValidationTs floor = reorderer_.received_commit_floor();
  // A floor of 0 means no contiguous prefix yet (e.g. the stream's first
  // batch was lost): nothing to ack — the primary's ack timeout or the
  // reconnect resend recovers.
  if (floor == 0) return;
  if (!endpoint_.send(Message::commit_ack(floor))) {
    ++stats_.send_failures;
    return;
  }
  ++stats_.acks_sent;
  stats_.ack_commits_covered += commits_covered;
  mm().acks_sent.inc();
  mm().ack_commits_covered.inc(commits_covered);
}

void MirrorService::feed(log::Record r) {
  const bool was_commit = r.is_commit();
  const std::size_t staged_before = reorderer_.staged_commits();
  // An in-order commit is released synchronously inside add() (which
  // advances applied_seq_), so "released" must be detected by applied_seq_
  // moving, not by comparing expected_next() afterwards.
  const ValidationTs applied_before = applied_seq_;
  {
    obs::ScopedSpan span(obs::tracer(), obs::Phase::kReorder, r.seq);
    if (Status s = reorderer_.add(std::move(r)); !s) {
      RODAIN_ERROR("mirror reorderer: %s", s.to_string().c_str());
      return;
    }
  }
  mm().reorder_staged.set(static_cast<double>(reorderer_.staged_commits()));
  mm().reorder_open.set(static_cast<double>(reorderer_.open_txns()));
  if (was_commit && reorderer_.staged_commits() == staged_before &&
      applied_seq_ == applied_before) {
    // Commit neither staged nor released: stale duplicate.
    ++stats_.stale_duplicates;
    mm().stale_duplicates.inc();
  }
}

void MirrorService::release(ValidationTs seq, TxnId txn,
                            std::vector<log::Record> records) {
  (void)txn;
  obs::ScopedSpan span(obs::tracer(), obs::Phase::kApply, seq);
  const std::uint64_t writes_before = stats_.writes_applied;
  // The commit record is last; its serialization timestamp stamps the
  // writes (keeps the copy's OCC metadata usable after takeover).
  const ValidationTs serial_ts =
      records.empty() ? 0 : records.back().serial_ts;
  for (const log::Record& r : records) {
    switch (r.type) {
      case log::RecordType::kWriteImage:
        store_.upsert(r.oid, r.after, serial_ts);
        if (r.has_key && index_) {
          if (!index_->insert(r.key, r.oid)) index_->update(r.key, r.oid);
        }
        ++stats_.writes_applied;
        break;
      case log::RecordType::kDelete:
        store_.tombstone(r.oid, serial_ts);
        if (r.has_key && index_) index_->erase(r.key);
        ++stats_.writes_applied;
        break;
      case log::RecordType::kCommit:
        break;
    }
  }
  applied_seq_ = seq;
  ++stats_.txns_applied;
  mm().txns_applied.inc();
  mm().writes_applied.inc(stats_.writes_applied - writes_before);
  mm().applied_seq.set(static_cast<double>(seq));
  if (options_.store_to_disk && disk_) {
    for (const log::Record& r : records) disk_->append(r);
    // Asynchronous, off the commit path; SimDiskLogStorage coalesces
    // concurrent requests into group flushes.
    disk_->flush({});
  }
}

std::vector<std::uint32_t> MirrorService::missing_chunks() const {
  std::vector<std::uint32_t> missing;
  for (std::uint32_t i = 0; i < chunk_total_; ++i) {
    if (!chunks_[i]) missing.push_back(i);
  }
  return missing;
}

void MirrorService::on_snapshot_chunk(std::uint64_t snapshot_id,
                                      std::uint32_t index,
                                      std::uint32_t total,
                                      std::vector<std::byte> blob) {
  serving_last_heard_ = clock_.now();  // only a serving node answers joins
  if (!awaiting_snapshot_) return;
  if (snapshot_id <= min_snapshot_id_ || snapshot_id < snapshot_id_) {
    // Chunk of a serve older than our latest join request (or than the
    // assembly in progress): never let a stale serve clobber or — worse —
    // install; its boundary predates what the current serve covers.
    ++stats_.duplicate_chunks;
    mm().duplicate_chunks.inc();
    return;
  }
  if (snapshot_id > snapshot_id_) {
    // First chunk of a newer serve: restart assembly under its id.
    reset_assembly();
    snapshot_id_ = snapshot_id;
    chunk_total_ = total;
    chunks_.assign(total, std::nullopt);
  }
  if (total != chunk_total_ || index >= chunk_total_) {
    RODAIN_WARN("mirror: inconsistent snapshot chunk (%u/%u), re-joining",
                index, total);
    request_join(join_have_);
    return;
  }
  last_join_activity_ = clock_.now();
  if (chunks_[index]) {
    ++stats_.duplicate_chunks;
    mm().duplicate_chunks.inc();
    return;
  }
  chunks_[index] = std::move(blob);
  ++chunks_received_;
  ++stats_.snapshot_chunks;
  stalled_retries_ = 0;
}

void MirrorService::on_snapshot_done(ValidationTs boundary,
                                     std::uint64_t snapshot_id) {
  serving_last_heard_ = clock_.now();
  if (!awaiting_snapshot_) return;
  if (snapshot_id <= min_snapshot_id_) {
    return;  // done marker of a serve older than our latest join request
  }
  last_join_activity_ = clock_.now();
  if (snapshot_id < snapshot_id_ && snapshot_id_ != 0) {
    return;  // done marker of an abandoned serve; a newer one is assembling
  }
  if (snapshot_id != snapshot_id_) {
    // Done for a serve whose chunks we never saw (all lost): nothing to
    // assemble — fall back to a fresh join.
    ++stats_.join_retries;
    mm().join_retries.inc();
    request_join(join_have_);
    return;
  }
  if (chunks_received_ < chunk_total_) {
    // The done marker overtook (or outlived) some chunks: request exactly
    // the missing ones and stay in the joining state.
    ++stats_.chunk_retries_sent;
    mm().chunk_retries.inc();
    RODAIN_INFO("mirror: snapshot done but %zu chunks missing, re-requesting",
                static_cast<std::size_t>(chunk_total_) - chunks_received_);
    if (!endpoint_.send(Message::chunk_retry(snapshot_id_, missing_chunks()))) {
      ++stats_.send_failures;
    }
    return;
  }
  obs::ScopedSpan span(obs::tracer(), obs::Phase::kSnapshotInstall, boundary);
  std::vector<std::byte> bytes;
  for (auto& c : chunks_) {
    bytes.insert(bytes.end(), c->begin(), c->end());
  }
  reset_assembly();
  auto meta = storage::decode_checkpoint(bytes, store_, index_);
  if (!meta.is_ok()) {
    RODAIN_ERROR("snapshot decode failed: %s",
                 meta.status().to_string().c_str());
    // Retry the join from scratch.
    request_join(join_have_);
    return;
  }
  RODAIN_INFO("mirror: snapshot installed (%llu objects, boundary seq %llu)",
              static_cast<unsigned long long>(meta.value().object_count),
              static_cast<unsigned long long>(boundary));
  awaiting_snapshot_ = false;
  synced_at_ = clock_.now();
  // applied_seq_ first: set_expected_next releases the staged run above the
  // boundary synchronously (it also clears the hold and purges what the
  // snapshot covers), and release() advances applied_seq_ — assigning
  // afterwards would roll it back.
  applied_seq_ = boundary;
  const std::size_t held = held_commits_;
  held_commits_ = 0;
  reorderer_.set_expected_next(boundary + 1);
  mm().reorder_staged.set(static_cast<double>(reorderer_.staged_commits()));
  mm().reorder_open.set(static_cast<double>(reorderer_.open_txns()));
  // The join sent no acks (the floor was unknown): one cumulative ack now
  // covers the snapshot boundary and the run staged while it assembled,
  // releasing every transaction the primary kept pending across the join.
  send_cumulative_ack(held);
  if (options_.on_synced) options_.on_synced();
}

MirrorService::TakeoverResult MirrorService::take_over() {
  TakeoverResult result;
  result.dropped_open = reorderer_.drop_open_txns();
  result.applied_staged = reorderer_.force_release_staged();
  result.next_seq = reorderer_.expected_next();
  mm().reorder_staged.set(0.0);
  mm().reorder_open.set(0.0);
  if (obs::tracing_enabled()) {
    obs::tracer().record_instant(obs::Phase::kMirrorTakeover, result.next_seq);
  }
  if (disk_) disk_->flush({});
  RODAIN_INFO("mirror takeover: %zu staged applied, %zu open txns dropped, "
              "continuing at seq %llu",
              result.applied_staged, result.dropped_open,
              static_cast<unsigned long long>(result.next_seq));
  return result;
}

}  // namespace rodain::repl
