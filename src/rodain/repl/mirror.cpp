#include "rodain/repl/mirror.hpp"

#include "rodain/common/diag.hpp"
#include "rodain/obs/obs.hpp"

namespace rodain::repl {

namespace {
struct MirrorMetrics {
  obs::Counter& records_received =
      obs::metrics().counter("mirror.records_received");
  obs::Counter& acks_sent = obs::metrics().counter("mirror.acks_sent");
  obs::Counter& txns_applied = obs::metrics().counter("mirror.txns_applied");
  obs::Counter& writes_applied =
      obs::metrics().counter("mirror.writes_applied");
  obs::Counter& stale_duplicates =
      obs::metrics().counter("mirror.stale_duplicates");
  /// Reorder-queue depths: commit-complete transactions waiting for an
  /// earlier seq, and transactions with buffered writes but no commit yet.
  obs::Gauge& reorder_staged = obs::metrics().gauge("mirror.reorder.staged");
  obs::Gauge& reorder_open = obs::metrics().gauge("mirror.reorder.open");
  obs::Gauge& applied_seq = obs::metrics().gauge("mirror.applied_seq");
};
MirrorMetrics& mm() {
  static MirrorMetrics m;
  return m;
}
}  // namespace

MirrorService::MirrorService(storage::ObjectStore& copy, log::LogStorage* disk,
                             net::Channel& channel, const Clock& clock,
                             Options options, storage::BPlusTree* index)
    : store_(copy),
      disk_(disk),
      index_(index),
      options_(options),
      endpoint_(channel, clock,
                Endpoint::Handlers{
                    .on_log_batch =
                        [this](std::vector<log::Record> r) {
                          on_log_batch(std::move(r));
                        },
                    .on_commit_ack = {},
                    .on_heartbeat = [](NodeRole, ValidationTs) {},
                    .on_join_request = {},
                    .on_snapshot_chunk =
                        [this](std::uint32_t i, std::uint32_t n,
                               std::vector<std::byte> b) {
                          on_snapshot_chunk(i, n, std::move(b));
                        },
                    .on_snapshot_done =
                        [this](ValidationTs boundary) {
                          on_snapshot_done(boundary);
                        },
                    .on_disconnect = {},
                    .on_protocol_error = {},
                }),
      reorderer_(
          [this](ValidationTs seq, TxnId txn, std::vector<log::Record> recs) {
            release(seq, txn, std::move(recs));
          }) {}

void MirrorService::attach_synced(ValidationTs expected_next) {
  reorderer_.set_expected_next(expected_next);
  applied_seq_ = expected_next == 0 ? 0 : expected_next - 1;
  awaiting_snapshot_ = false;
}

void MirrorService::request_join(ValidationTs have) {
  if (obs::tracing_enabled()) {
    obs::tracer().record_instant(obs::Phase::kRejoin, have);
  }
  awaiting_snapshot_ = true;
  snapshot_buffer_.clear();
  stashed_.clear();
  (void)endpoint_.send(Message::join_request(have));
}

void MirrorService::send_heartbeat() {
  (void)endpoint_.send(Message::heartbeat(NodeRole::kMirror, applied_seq_));
}

void MirrorService::on_log_batch(std::vector<log::Record> records) {
  for (log::Record& r : records) {
    ++stats_.records_received;
    mm().records_received.inc();
    // "When the Mirror Node receives a commit record, it immediately sends
    // an acknowledgment back" (paper §3) — before reordering or disk.
    if (r.is_commit()) {
      (void)endpoint_.send(Message::commit_ack(r.seq));
      ++stats_.acks_sent;
      mm().acks_sent.inc();
    }
    if (awaiting_snapshot_) {
      stashed_.push_back(std::move(r));
    } else {
      feed(std::move(r));
    }
  }
}

void MirrorService::feed(log::Record r) {
  const bool was_commit = r.is_commit();
  const std::size_t staged_before = reorderer_.staged_commits();
  // An in-order commit is released synchronously inside add() (which
  // advances applied_seq_), so "released" must be detected by applied_seq_
  // moving, not by comparing expected_next() afterwards.
  const ValidationTs applied_before = applied_seq_;
  {
    obs::ScopedSpan span(obs::tracer(), obs::Phase::kReorder, r.seq);
    if (Status s = reorderer_.add(std::move(r)); !s) {
      RODAIN_ERROR("mirror reorderer: %s", s.to_string().c_str());
      return;
    }
  }
  mm().reorder_staged.set(static_cast<double>(reorderer_.staged_commits()));
  mm().reorder_open.set(static_cast<double>(reorderer_.open_txns()));
  if (was_commit && reorderer_.staged_commits() == staged_before &&
      applied_seq_ == applied_before) {
    // Commit neither staged nor released: stale duplicate.
    ++stats_.stale_duplicates;
    mm().stale_duplicates.inc();
  }
}

void MirrorService::release(ValidationTs seq, TxnId txn,
                            std::vector<log::Record> records) {
  (void)txn;
  obs::ScopedSpan span(obs::tracer(), obs::Phase::kApply, seq);
  const std::uint64_t writes_before = stats_.writes_applied;
  // The commit record is last; its serialization timestamp stamps the
  // writes (keeps the copy's OCC metadata usable after takeover).
  const ValidationTs serial_ts =
      records.empty() ? 0 : records.back().serial_ts;
  for (const log::Record& r : records) {
    switch (r.type) {
      case log::RecordType::kWriteImage:
        store_.upsert(r.oid, r.after, serial_ts);
        if (r.has_key && index_) {
          if (!index_->insert(r.key, r.oid)) index_->update(r.key, r.oid);
        }
        ++stats_.writes_applied;
        break;
      case log::RecordType::kDelete:
        store_.tombstone(r.oid, serial_ts);
        if (r.has_key && index_) index_->erase(r.key);
        ++stats_.writes_applied;
        break;
      case log::RecordType::kCommit:
        break;
    }
  }
  applied_seq_ = seq;
  ++stats_.txns_applied;
  mm().txns_applied.inc();
  mm().writes_applied.inc(stats_.writes_applied - writes_before);
  mm().applied_seq.set(static_cast<double>(seq));
  if (options_.store_to_disk && disk_) {
    for (const log::Record& r : records) disk_->append(r);
    // Asynchronous, off the commit path; SimDiskLogStorage coalesces
    // concurrent requests into group flushes.
    disk_->flush({});
  }
}

void MirrorService::on_snapshot_chunk(std::uint32_t index, std::uint32_t total,
                                      std::vector<std::byte> blob) {
  (void)index;
  (void)total;
  if (!awaiting_snapshot_) return;
  snapshot_buffer_.insert(snapshot_buffer_.end(), blob.begin(), blob.end());
}

void MirrorService::on_snapshot_done(ValidationTs boundary) {
  if (!awaiting_snapshot_) return;
  obs::ScopedSpan span(obs::tracer(), obs::Phase::kSnapshotInstall, boundary);
  auto meta = storage::decode_checkpoint(snapshot_buffer_, store_, index_);
  snapshot_buffer_.clear();
  if (!meta.is_ok()) {
    RODAIN_ERROR("snapshot decode failed: %s",
                 meta.status().to_string().c_str());
    // Retry the join from scratch.
    request_join(0);
    return;
  }
  RODAIN_INFO("mirror: snapshot installed (%llu objects, boundary seq %llu)",
              static_cast<unsigned long long>(meta.value().object_count),
              static_cast<unsigned long long>(boundary));
  awaiting_snapshot_ = false;
  reorderer_.set_expected_next(boundary + 1);
  applied_seq_ = boundary;
  auto stashed = std::move(stashed_);
  stashed_.clear();
  for (log::Record& r : stashed) feed(std::move(r));
  if (options_.on_synced) options_.on_synced();
}

MirrorService::TakeoverResult MirrorService::take_over() {
  TakeoverResult result;
  result.dropped_open = reorderer_.drop_open_txns();
  result.applied_staged = reorderer_.force_release_staged();
  result.next_seq = reorderer_.expected_next();
  mm().reorder_staged.set(0.0);
  mm().reorder_open.set(0.0);
  if (obs::tracing_enabled()) {
    obs::tracer().record_instant(obs::Phase::kMirrorTakeover, result.next_seq);
  }
  if (disk_) disk_->flush({});
  RODAIN_INFO("mirror takeover: %zu staged applied, %zu open txns dropped, "
              "continuing at seq %llu",
              result.applied_staged, result.dropped_open,
              static_cast<unsigned long long>(result.next_seq));
  return result;
}

}  // namespace rodain::repl
