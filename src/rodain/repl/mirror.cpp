#include "rodain/repl/mirror.hpp"

#include <algorithm>

#include "rodain/common/diag.hpp"
#include "rodain/obs/obs.hpp"
#include "rodain/storage/fuzzy_checkpoint.hpp"

namespace rodain::repl {

namespace {
struct MirrorMetrics {
  obs::Counter& records_received =
      obs::metrics().counter("mirror.records_received");
  obs::Counter& acks_sent = obs::metrics().counter("mirror.acks_sent");
  obs::Counter& ack_commits_covered =
      obs::metrics().counter("mirror.ack_commits_covered");
  obs::Counter& txns_applied = obs::metrics().counter("mirror.txns_applied");
  obs::Counter& writes_applied =
      obs::metrics().counter("mirror.writes_applied");
  obs::Counter& stale_duplicates =
      obs::metrics().counter("mirror.stale_duplicates");
  obs::Counter& duplicate_chunks =
      obs::metrics().counter("mirror.duplicate_chunks");
  obs::Counter& chunk_retries =
      obs::metrics().counter("mirror.chunk_retries_sent");
  obs::Counter& join_retries = obs::metrics().counter("mirror.join_retries");
  obs::Counter& rejoins_after_abandon =
      obs::metrics().counter("mirror.rejoins_after_abandon");
  /// Reorder-queue depths: commit-complete transactions waiting for an
  /// earlier seq, and transactions with buffered writes but no commit yet.
  obs::Gauge& reorder_staged = obs::metrics().gauge("mirror.reorder.staged");
  obs::Gauge& reorder_open = obs::metrics().gauge("mirror.reorder.open");
  obs::Gauge& applied_seq = obs::metrics().gauge("mirror.applied_seq");
  /// Quarantined transactions (write-count mismatch / invalid release set).
  obs::Counter& corrupt_txns = obs::metrics().counter("repl.corrupt_txns");
  /// Stored-log flush failures (first one marks the disk log non-dense).
  obs::Counter& disk_write_failures =
      obs::metrics().counter("repl.disk_write_failures");
  /// Parallel apply (DESIGN.md §14): epochs drained, conflict-free waves
  /// inside them, transactions that actually overlapped with another apply,
  /// waves cut by a footprint conflict, and the mean wave width.
  obs::Counter& apply_epochs = obs::metrics().counter("repl.apply.epochs");
  obs::Counter& apply_waves = obs::metrics().counter("repl.apply.waves");
  obs::Counter& apply_parallel_txns =
      obs::metrics().counter("repl.apply.parallel_txns");
  obs::Counter& apply_conflict_cuts =
      obs::metrics().counter("repl.apply.conflict_cuts");
  obs::Gauge& apply_parallelism =
      obs::metrics().gauge("repl.apply.parallelism");
  /// Release backlog visible at the last epoch boundary: staged commits
  /// still waiting behind a gap when the epoch barrier fired.
  obs::Gauge& apply_lag = obs::metrics().gauge("repl.apply.lag");
};
MirrorMetrics& mm() {
  static MirrorMetrics m;
  return m;
}
}  // namespace

MirrorService::MirrorService(storage::ObjectStore& copy, log::LogStorage* disk,
                             net::Channel& channel, const Clock& clock,
                             Options options, storage::BPlusTree* index)
    : store_(copy),
      disk_(disk),
      index_(index),
      options_(options),
      clock_(clock),
      endpoint_(channel, clock,
                Endpoint::Handlers{
                    .on_log_batch =
                        [this](std::vector<log::Record> r) {
                          on_log_batch(std::move(r));
                        },
                    .on_commit_ack = {},
                    .on_heartbeat =
                        [this](NodeRole role, ValidationTs applied) {
                          on_heartbeat(role, applied);
                        },
                    .on_join_request = {},
                    .on_snapshot_chunk =
                        [this](std::uint64_t id, std::uint32_t i,
                               std::uint32_t n, std::vector<std::byte> b) {
                          on_snapshot_chunk(id, i, n, std::move(b));
                        },
                    .on_snapshot_done =
                        [this](ValidationTs boundary, std::uint64_t id) {
                          on_snapshot_done(boundary, id);
                        },
                    .on_chunk_retry = {},
                    .on_disconnect = {},
                    .on_reconnected = {},
                    .on_protocol_error = {},
                }),
      reorderer_([this](std::vector<log::ReleasedTxn> epoch) {
        release_epoch(std::move(epoch));
      }),
      pool_(options_.apply_workers) {
  serving_last_heard_ = clock_.now();
  if (options_.write_checkpoint && options_.checkpoint_interval.is_positive()) {
    log::Checkpointer::Options ckpt;
    ckpt.interval = options_.checkpoint_interval;
    // applied_seq_ is the mirror's consistent boundary: every transaction
    // at or below it is fully installed in the copy, in validation order.
    ckpt.boundary = [this] { return applied_seq_; };
    ckpt.write = options_.write_checkpoint;
    ckpt.log = options_.store_to_disk ? disk_ : nullptr;
    ckpt_.configure(std::move(ckpt));
  }
}

void MirrorService::attach_synced(ValidationTs expected_next) {
  reorderer_.set_expected_next(expected_next);
  applied_seq_ = expected_next == 0 ? 0 : expected_next - 1;
  awaiting_snapshot_ = false;
  synced_at_ = clock_.now();
}

void MirrorService::reset_assembly() {
  snapshot_id_ = 0;
  chunk_total_ = 0;
  chunks_.clear();
  chunks_received_ = 0;
}

void MirrorService::request_join(ValidationTs have) {
  if (obs::tracing_enabled()) {
    obs::tracer().record_instant(obs::Phase::kRejoin, have);
  }
  awaiting_snapshot_ = true;
  join_have_ = have;
  // Floor for acceptable serves: ids embed the shared clock (us << 16), so
  // every serve created before this join request compares smaller, and the
  // serve answering it compares greater. Without the floor a stale serve's
  // late chunks could restart assembly after reset_assembly() zeroes
  // snapshot_id_ and install an old boundary — silently missing commits
  // that exist only in the serve answering this join (e.g. ones the
  // primary disk-committed while alone and never shipped live).
  min_snapshot_id_ =
      std::max({min_snapshot_id_, snapshot_id_,
                static_cast<std::uint64_t>(clock_.now().us) << 16});
  reset_assembly();
  // Hold the reorderer: live deliveries keep staging in seq order but
  // nothing applies to the store the snapshot is about to replace. Staged
  // transactions survive join retries — dropping them would lose delivered
  // commits if a retry races with the previous serve (that serve's late
  // chunks can resurrect its assembly and install the OLDER boundary, and
  // only the staged run covers the commits in between). Stale entries are
  // cheap — set_expected_next purges what the snapshot covers.
  reorderer_.hold_releases();
  stalled_retries_ = 0;
  last_join_activity_ = clock_.now();
  if (!endpoint_.send(Message::join_request(have))) ++stats_.send_failures;
}

void MirrorService::send_heartbeat() {
  if (!endpoint_.send(Message::heartbeat(NodeRole::kMirror, applied_seq_))) {
    ++stats_.send_failures;
  }
}

void MirrorService::poll(TimePoint now) {
  endpoint_.poll(now);
  // Flush completions are asynchronous (the sim disk fires them on its own
  // timeline): fold any failures reported since the last apply into stats.
  check_disk_health();
  if (!awaiting_snapshot_ && ckpt_.enabled() && ckpt_.tick(now)) {
    stats_.checkpoints = ckpt_.stats().checkpoints;
    stats_.log_truncated = ckpt_.stats().truncated;
  }
  if (!awaiting_snapshot_) return;
  if (now - last_join_activity_ <= options_.join_retry_timeout) return;
  // The join stalled: the request, some chunks, or the done marker were
  // lost. With a partial assembly, ask for exactly the missing chunks;
  // otherwise start over.
  ++stats_.join_retries;
  mm().join_retries.inc();
  last_join_activity_ = now;
  if (++stalled_retries_ > kMaxChunkRetries) {
    // Repeated chunk retries went nowhere (e.g. the primary rebuilt and no
    // longer caches this serve): start the join over.
    RODAIN_WARN("mirror: %u stalled retries, restarting the join",
                stalled_retries_);
    request_join(join_have_);
    return;
  }
  if (snapshot_id_ != 0 && chunks_received_ > 0) {
    ++stats_.chunk_retries_sent;
    mm().chunk_retries.inc();
    RODAIN_INFO("mirror: join stalled, re-requesting %zu missing chunks",
                static_cast<std::size_t>(chunk_total_) - chunks_received_);
    if (!endpoint_.send(Message::chunk_retry(snapshot_id_, missing_chunks()))) {
      ++stats_.send_failures;
    }
  } else {
    RODAIN_INFO("mirror: join stalled with no snapshot progress, re-joining");
    if (!endpoint_.send(Message::join_request(join_have_))) {
      ++stats_.send_failures;
    }
  }
}

void MirrorService::on_heartbeat(NodeRole role, ValidationTs applied) {
  (void)applied;
  if (role == NodeRole::kPrimaryAlone || role == NodeRole::kPrimaryWithMirror) {
    serving_last_heard_ = clock_.now();
  }
  if (role != NodeRole::kPrimaryAlone || awaiting_snapshot_) return;
  // The primary serves alone while we believe we are its synced mirror: it
  // falsely declared us lost (ack timeout / watchdog during a link flap)
  // and our copy is diverging. Rejoin from what we have. Freshly synced
  // mirrors ignore stale kPrimaryAlone heartbeats still in flight.
  if (clock_.now() - synced_at_ <= options_.abandon_grace) return;
  ++stats_.rejoins_after_abandon;
  mm().rejoins_after_abandon.inc();
  RODAIN_WARN("mirror: primary abandoned us (serving alone), rejoining from "
              "seq %llu",
              static_cast<unsigned long long>(applied_seq_));
  if (options_.on_abandoned) options_.on_abandoned();
  request_join(applied_seq_);
}

void MirrorService::on_log_batch(std::vector<log::Record> records) {
  serving_last_heard_ = clock_.now();  // only a serving primary ships redo
  stats_.records_received += records.size();
  mm().records_received.inc(records.size());
  std::size_t commits = 0;
  for (const log::Record& r : records) {
    if (r.is_commit()) {
      ++commits;
      RODAIN_DEBUG("mirror: recv commit seq %llu awaiting=%d",
                   static_cast<unsigned long long>(r.seq),
                   awaiting_snapshot_ ? 1 : 0);
    }
  }
  if (awaiting_snapshot_) {
    // No acks while joining: the floor is unknowable until the snapshot
    // installs; the post-install cumulative ack covers everything staged.
    // Records feed the *held* reorderer directly (request_join called
    // hold_releases), so duplicate detection runs on arrival and nothing
    // applies until set_expected_next moves the floor to the boundary.
    ++stats_.held_batches;
    held_commits_ += commits;
    reorderer_.begin_batch();
    for (log::Record& r : records) feed(std::move(r));
    return;
  }
  // "When the Mirror Node receives a commit record, it immediately sends
  // an acknowledgment back" (paper §3) — before reordering to disk, but
  // coalesced: one cumulative ack answers every commit in the batch. Sent
  // even when every commit was a stale duplicate (a re-ship after
  // reconnect means the primary may have lost the original ack).
  reorderer_.begin_batch();
  for (log::Record& r : records) feed(std::move(r));
  // The whole contiguous run this batch unlocked applies as ONE epoch
  // before the ack goes out, so the floor in the ack only ever names a
  // fully-installed prefix (the epoch barrier inside release_epoch).
  reorderer_.flush_epoch();
  if (commits > 0) send_cumulative_ack(commits);
}

void MirrorService::send_cumulative_ack(std::size_t commits_covered) {
  const ValidationTs floor = reorderer_.received_commit_floor();
  // A floor of 0 means no contiguous prefix yet (e.g. the stream's first
  // batch was lost): nothing to ack — the primary's ack timeout or the
  // reconnect resend recovers.
  if (floor == 0) return;
  if (!endpoint_.send(Message::commit_ack(floor))) {
    ++stats_.send_failures;
    return;
  }
  ++stats_.acks_sent;
  stats_.ack_commits_covered += commits_covered;
  mm().acks_sent.inc();
  mm().ack_commits_covered.inc(commits_covered);
}

void MirrorService::feed(log::Record r) {
  const bool was_commit = r.is_commit();
  const std::size_t staged_before = reorderer_.staged_commits();
  // Releases are deferred into the reorderer's epoch buffer (applied when
  // the batch flushes), so "released" is detected by the expected-next
  // floor moving — not by applied_seq_, which only advances at the epoch
  // barrier.
  const ValidationTs expected_before = reorderer_.expected_next();
  {
    obs::ScopedSpan span(obs::tracer(), obs::Phase::kReorder, r.seq);
    if (Status s = reorderer_.add(std::move(r)); !s) {
      if (s.code() == ErrorCode::kCorruption) {
        // Quarantine, don't poison the batch: the victim's buffered writes
        // were consumed, its seq stays un-staged, and the stalled commit
        // floor makes the primary's resend re-deliver it intact. The rest
        // of the wire frame still stages normally.
        ++stats_.corrupt_txns;
        mm().corrupt_txns.inc();
      }
      RODAIN_ERROR("mirror reorderer: %s", s.to_string().c_str());
      return;
    }
  }
  mm().reorder_staged.set(static_cast<double>(reorderer_.staged_commits()));
  mm().reorder_open.set(static_cast<double>(reorderer_.open_txns()));
  if (was_commit && reorderer_.staged_commits() == staged_before &&
      reorderer_.expected_next() == expected_before) {
    // Commit neither staged nor released: stale duplicate.
    ++stats_.stale_duplicates;
    mm().stale_duplicates.inc();
  }
}

void MirrorService::apply_txn(const log::ReleasedTxn& txn) {
  // Runs on apply-pool threads: touch only this transaction's footprint
  // plus internally synchronized structures (store per-record seqlocks,
  // B+-tree writer lock). No MirrorService members — stats aggregate at
  // the epoch barrier on the delivering thread.
  obs::ScopedSpan span(obs::tracer(), obs::Phase::kApply, txn.seq);
  // The commit record is last (the reorderer validated that); its
  // serialization timestamp stamps the writes (keeps the copy's OCC
  // metadata usable after takeover).
  const ValidationTs serial_ts = txn.records.back().serial_ts;
  for (const log::Record& r : txn.records) {
    switch (r.type) {
      case log::RecordType::kWriteImage:
        store_.upsert(r.oid, r.after, serial_ts);
        if (r.has_key && index_) {
          if (!index_->insert(r.key, r.oid)) index_->update(r.key, r.oid);
        }
        break;
      case log::RecordType::kDelete:
        store_.tombstone(r.oid, serial_ts);
        if (r.has_key && index_) index_->erase(r.key);
        break;
      case log::RecordType::kCommit:
        break;
    }
  }
}

void MirrorService::release_epoch(std::vector<log::ReleasedTxn> epoch) {
  if (epoch.empty()) return;
  // The reorderer already rejected empty / commit-less sets; a defensive
  // re-check here keeps a fabricated serial_ts of 0 out of the store even
  // if a future caller hands epochs in by another path.
  std::erase_if(epoch, [this](const log::ReleasedTxn& t) {
    if (log::Reorderer::valid_release_set(t.records)) return false;
    ++stats_.corrupt_txns;
    mm().corrupt_txns.inc();
    return true;
  });
  if (epoch.empty()) return;
  if (obs::tracing_enabled()) {
    obs::tracer().record_instant(obs::Phase::kApplyEpoch, epoch.back().seq);
  }
  const ApplyPool::Stats before = pool_.stats();
  // Parallel apply with the epoch-boundary barrier: returns only when every
  // transaction is installed, so the floor below never lies.
  pool_.apply(epoch, [this](const log::ReleasedTxn& t) { apply_txn(t); });
  applied_seq_ = epoch.back().seq;
  std::uint64_t writes = 0;
  for (const log::ReleasedTxn& t : epoch) {
    writes += t.records.size() - 1;  // all but the commit record
  }
  stats_.txns_applied += epoch.size();
  stats_.writes_applied += writes;
  mm().txns_applied.inc(epoch.size());
  mm().writes_applied.inc(writes);
  mm().applied_seq.set(static_cast<double>(applied_seq_));
  const ApplyPool::Stats& ps = pool_.stats();
  mm().apply_epochs.inc(ps.epochs - before.epochs);
  mm().apply_waves.inc(ps.waves - before.waves);
  mm().apply_parallel_txns.inc(ps.parallel_txns - before.parallel_txns);
  mm().apply_conflict_cuts.inc(ps.conflict_cuts - before.conflict_cuts);
  mm().apply_parallelism.set(pool_.mean_wave_width());
  mm().apply_lag.set(static_cast<double>(reorderer_.staged_commits()));
  if (options_.store_to_disk && disk_) {
    // Re-serialized in seq order AFTER the barrier: the stored log stays
    // totally ordered no matter how the waves interleaved, so recovery and
    // disk-served rejoins read the same stream a serial mirror would have
    // written.
    for (const log::ReleasedTxn& t : epoch) {
      for (const log::Record& r : t.records) disk_->append(r);
    }
    // Asynchronous, off the commit path; SimDiskLogStorage coalesces
    // concurrent requests into group flushes. The completion can fire after
    // this service is torn down (takeover), so it only touches the shared
    // health block — poll()/take_over() fold failures into stats.
    disk_->flush([health = disk_health_](Status s) {
      if (!s) health->failures.fetch_add(1, std::memory_order_relaxed);
    });
    check_disk_health();
  }
}

void MirrorService::check_disk_health() {
  const std::uint64_t failures =
      disk_health_->failures.load(std::memory_order_relaxed);
  if (failures == disk_failures_seen_) return;
  const std::uint64_t fresh = failures - disk_failures_seen_;
  disk_failures_seen_ = failures;
  stats_.disk_write_failures += fresh;
  mm().disk_write_failures.inc(fresh);
  if (disk_dense_) {
    disk_dense_ = false;
    RODAIN_ERROR("mirror: stored-log flush failed (%llu total) — disk log "
                 "marked non-dense; rejoins must be served by live encode",
                 static_cast<unsigned long long>(failures));
  }
}

std::vector<std::uint32_t> MirrorService::missing_chunks() const {
  std::vector<std::uint32_t> missing;
  for (std::uint32_t i = 0; i < chunk_total_; ++i) {
    if (!chunks_[i]) missing.push_back(i);
  }
  return missing;
}

void MirrorService::on_snapshot_chunk(std::uint64_t snapshot_id,
                                      std::uint32_t index,
                                      std::uint32_t total,
                                      std::vector<std::byte> blob) {
  serving_last_heard_ = clock_.now();  // only a serving node answers joins
  if (!awaiting_snapshot_) return;
  if (snapshot_id <= min_snapshot_id_ || snapshot_id < snapshot_id_) {
    // Chunk of a serve older than our latest join request (or than the
    // assembly in progress): never let a stale serve clobber or — worse —
    // install; its boundary predates what the current serve covers.
    ++stats_.duplicate_chunks;
    mm().duplicate_chunks.inc();
    return;
  }
  if (snapshot_id > snapshot_id_) {
    // First chunk of a newer serve: restart assembly under its id.
    reset_assembly();
    snapshot_id_ = snapshot_id;
    chunk_total_ = total;
    chunks_.assign(total, std::nullopt);
  }
  if (total != chunk_total_ || index >= chunk_total_) {
    RODAIN_WARN("mirror: inconsistent snapshot chunk (%u/%u), re-joining",
                index, total);
    request_join(join_have_);
    return;
  }
  last_join_activity_ = clock_.now();
  if (chunks_[index]) {
    ++stats_.duplicate_chunks;
    mm().duplicate_chunks.inc();
    return;
  }
  chunks_[index] = std::move(blob);
  ++chunks_received_;
  ++stats_.snapshot_chunks;
  stalled_retries_ = 0;
}

void MirrorService::on_snapshot_done(ValidationTs boundary,
                                     std::uint64_t snapshot_id) {
  serving_last_heard_ = clock_.now();
  if (!awaiting_snapshot_) return;
  if (snapshot_id <= min_snapshot_id_) {
    return;  // done marker of a serve older than our latest join request
  }
  last_join_activity_ = clock_.now();
  if (snapshot_id < snapshot_id_ && snapshot_id_ != 0) {
    return;  // done marker of an abandoned serve; a newer one is assembling
  }
  if (snapshot_id != snapshot_id_) {
    // Done for a serve whose chunks we never saw (all lost): nothing to
    // assemble — fall back to a fresh join.
    ++stats_.join_retries;
    mm().join_retries.inc();
    request_join(join_have_);
    return;
  }
  if (chunks_received_ < chunk_total_) {
    // The done marker overtook (or outlived) some chunks: request exactly
    // the missing ones and stay in the joining state.
    ++stats_.chunk_retries_sent;
    mm().chunk_retries.inc();
    RODAIN_INFO("mirror: snapshot done but %zu chunks missing, re-requesting",
                static_cast<std::size_t>(chunk_total_) - chunks_received_);
    if (!endpoint_.send(Message::chunk_retry(snapshot_id_, missing_chunks()))) {
      ++stats_.send_failures;
    }
    return;
  }
  obs::ScopedSpan span(obs::tracer(), obs::Phase::kSnapshotInstall, boundary);
  std::vector<std::byte> bytes;
  for (auto& c : chunks_) {
    bytes.insert(bytes.end(), c->begin(), c->end());
  }
  reset_assembly();
  // A rejoin snapshot can be a legacy full encode (live path) or a fuzzy
  // base+delta chain served straight off the primary's disk artifacts.
  auto meta = storage::decode_checkpoint_any(bytes, store_, index_);
  if (!meta.is_ok()) {
    RODAIN_ERROR("snapshot decode failed: %s",
                 meta.status().to_string().c_str());
    // Retry the join from scratch.
    request_join(join_have_);
    return;
  }
  RODAIN_INFO("mirror: snapshot installed (%llu objects, boundary seq %llu)",
              static_cast<unsigned long long>(meta.value().object_count),
              static_cast<unsigned long long>(boundary));
  awaiting_snapshot_ = false;
  synced_at_ = clock_.now();
  // applied_seq_ first: set_expected_next stages the run above the boundary
  // into the epoch buffer (it also clears the hold, purges what the
  // snapshot covers, and discards pre-floor releases), and the flush below
  // applies it — advancing applied_seq_; assigning afterwards would roll
  // it back.
  applied_seq_ = boundary;
  const std::size_t held = held_commits_;
  held_commits_ = 0;
  reorderer_.set_expected_next(boundary + 1);
  reorderer_.flush_epoch();
  mm().reorder_staged.set(static_cast<double>(reorderer_.staged_commits()));
  mm().reorder_open.set(static_cast<double>(reorderer_.open_txns()));
  // The join sent no acks (the floor was unknown): one cumulative ack now
  // covers the snapshot boundary and the run staged while it assembled,
  // releasing every transaction the primary kept pending across the join.
  send_cumulative_ack(held);
  if (options_.on_synced) options_.on_synced();
}

MirrorService::TakeoverResult MirrorService::take_over() {
  TakeoverResult result;
  result.dropped_open = reorderer_.drop_open_txns();
  result.applied_staged = reorderer_.force_release_staged();
  result.next_seq = reorderer_.expected_next();
  // The forced releases went into the epoch buffer: apply them (with the
  // barrier) before the node starts serving from this copy.
  reorderer_.flush_epoch();
  mm().reorder_staged.set(0.0);
  mm().reorder_open.set(0.0);
  if (obs::tracing_enabled()) {
    obs::tracer().record_instant(obs::Phase::kMirrorTakeover, result.next_seq);
  }
  if (disk_) {
    disk_->flush([health = disk_health_](Status s) {
      if (!s) health->failures.fetch_add(1, std::memory_order_relaxed);
    });
    check_disk_health();
  }
  RODAIN_INFO("mirror takeover: %zu staged applied, %zu open txns dropped, "
              "continuing at seq %llu",
              result.applied_staged, result.dropped_open,
              static_cast<unsigned long long>(result.next_seq));
  return result;
}

}  // namespace rodain::repl
