// Primary-side Log Writer (paper §3).
//
// Normal mode (kMirror): records are shipped to the Mirror Node the moment
// the write phase generates them; the transaction proceeds to its final
// commit step when the mirror's acknowledgment of the *commit record*
// arrives — one message round-trip, no disk write on the commit path.
//
// Transient mode (kDirectDisk): no mirror exists, so the records go to the
// local log device and the transaction commits only once the flush is
// durable.
//
// kOff: logging disabled (the paper's "No logs" optimal comparison).
#pragma once

#include <functional>
#include <map>
#include <span>
#include <vector>

#include "rodain/common/clock.hpp"
#include "rodain/common/types.hpp"
#include "rodain/log/log_storage.hpp"
#include "rodain/log/record.hpp"

namespace rodain::log {

/// Transport hook: ships records toward the mirror. Acks flow back through
/// LogWriter::on_mirror_ack.
class Shipper {
 public:
  virtual ~Shipper() = default;
  virtual void ship(std::span<const Record> records) = 0;
};

class LogWriter {
 public:
  /// `disk` may be null only if the writer is never switched to
  /// kDirectDisk; `shipper` may be null only if never switched to kMirror.
  LogWriter(LogMode mode, LogStorage* disk, Shipper* shipper);

  [[nodiscard]] LogMode mode() const { return mode_; }
  void set_mode(LogMode mode);

  /// Late wiring for the replication layer (the replicator needs the writer
  /// and vice versa; the writer is constructed first with a null shipper).
  void set_shipper(Shipper* shipper) { shipper_ = shipper; }

  /// Submit one validated transaction's records (after-images then the
  /// commit record, already in that order). `on_durable` fires when the
  /// commit rule of the current mode is satisfied.
  void submit(ValidationTs seq, std::vector<Record> records,
              std::function<void()> on_durable);

  /// Mirror acknowledged the commit record of `seq`.
  void on_mirror_ack(ValidationTs seq);

  /// The mirror is gone: switch to direct-disk logging and re-route every
  /// not-yet-acknowledged transaction to the local device so that no
  /// committing transaction is stranded.
  void on_mirror_lost();

  /// Arm the ack timeout: when check_ack_timeouts() finds the oldest
  /// unacknowledged shipment older than `timeout`, `on_timeout` fires (the
  /// node escalates to on_mirror_lost so committers are never stranded
  /// behind a silently dead link).
  void configure_ack_timeout(const Clock* clock, Duration timeout,
                             std::function<void()> on_timeout);

  /// Poll from the node's heartbeat tick. Returns true when the timeout
  /// fired this call.
  bool check_ack_timeouts();

  /// Re-ship every unacknowledged transaction in validation order (after a
  /// reconnect — the mirror acks commit records again and drops what it
  /// already applied as stale). Returns how many were resent.
  std::size_t resend_pending();

  [[nodiscard]] std::size_t pending_acks() const { return pending_.size(); }

  /// Records of every submitted transaction with validation seq > `seq`,
  /// in seq order — the catch-up stream a rejoining mirror needs between
  /// its snapshot boundary and the live stream. Retention is bounded
  /// (`kTailRetention` transactions); older history requires a snapshot.
  [[nodiscard]] std::vector<Record> tail_since(ValidationTs seq) const;
  static constexpr std::size_t kTailRetention = 4096;

  /// Telemetry: transactions that commuted through each path.
  struct Counters {
    std::uint64_t via_mirror{0};
    std::uint64_t via_disk{0};
    std::uint64_t via_none{0};
    std::uint64_t rerouted{0};
    std::uint64_t resent{0};
    std::uint64_t ack_timeouts{0};
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

 private:
  struct Pending {
    std::vector<Record> records;
    std::function<void()> on_durable;
    /// obs time base (now_us) at ship time; the commit ack closes the
    /// mirror_ack span and feeds the replication-RTT timer. 0 when obs off.
    std::int64_t shipped_at_us{0};
    /// Clock time of the first shipment (ack-timeout input; resends do not
    /// reset it — the timeout bounds total time-to-durable).
    TimePoint shipped_at{};
  };

  void submit_to_disk(std::vector<Record> records,
                      std::function<void()> on_durable);

  LogMode mode_;
  LogStorage* disk_;
  Shipper* shipper_;
  const Clock* clock_{nullptr};
  Duration ack_timeout_{Duration::zero()};
  std::function<void()> on_ack_timeout_;
  std::map<ValidationTs, Pending> pending_;  // unacked, in seq order
  std::map<ValidationTs, std::vector<Record>> tail_;  // recent submissions
  Counters counters_;
};

}  // namespace rodain::log
