// Primary-side Log Writer (paper §3).
//
// Normal mode (kMirror): records are shipped to the Mirror Node when the
// write phase generates them; the transaction proceeds to its final commit
// step when the mirror's acknowledgment covering the *commit record*
// arrives — one message round-trip, no disk write on the commit path.
//
// Group commit (DESIGN.md §9): with batching configured, submissions
// accumulate in a batch buffer and ship as one multi-transaction frame when
// a txn/byte threshold fills, the flush delay expires, or flush_batch() is
// called. The durability point is unchanged — a buffered transaction was
// never acknowledged, so its committer still waits for the (now batched)
// mirror ack. Acks are cumulative: on_mirror_ack(seq) releases every
// pending transaction with validation seq <= `seq`.
//
// Transient mode (kDirectDisk): no mirror exists, so the records go to the
// local log device and the transaction commits only once the flush is
// durable.
//
// kOff: logging disabled (the paper's "No logs" optimal comparison).
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "rodain/common/clock.hpp"
#include "rodain/common/types.hpp"
#include "rodain/log/log_storage.hpp"
#include "rodain/log/record.hpp"
#include "rodain/obs/lifecycle.hpp"

namespace rodain::log {

/// Transport hook: ships records toward the mirror. Acks flow back through
/// LogWriter::on_mirror_ack. Contract: one ship() call may carry many
/// transactions, but a transaction's record set ([after-images..., commit])
/// is never split across calls — the mirror's per-batch duplicate detection
/// (Reorderer::begin_batch) depends on this.
class Shipper {
 public:
  virtual ~Shipper() = default;
  virtual void ship(std::span<const Record> records) = 0;
};

class LogWriter {
 public:
  /// Group-commit knobs. The default (max_txns 1, no byte/delay trigger)
  /// ships every submission immediately — the unbatched historical path.
  struct BatchOptions {
    /// Flush when the batch holds this many transactions. 1 = unbatched.
    std::size_t max_txns{1};
    /// Flush when the batch's encoded payload reaches this many bytes
    /// (0 disables the byte trigger).
    std::size_t max_bytes{0};
    /// Upper bound on how long a submission may sit in the buffer before
    /// shipping. Requires a flush scheduler and a clock (configure_batching);
    /// zero disables the timer — then only thresholds and explicit
    /// flush_batch() calls drain the buffer.
    Duration max_delay{Duration::zero()};
    /// Adapt the effective delay to load: a delay-filled batch under half
    /// full halves it (light load should not pay the full window), a
    /// threshold-filled batch doubles it back toward max_delay. Bounded to
    /// [max_delay/8, max_delay].
    bool adaptive_delay{false};
  };

  /// `disk` may be null only if the writer is never switched to
  /// kDirectDisk; `shipper` may be null only if never switched to kMirror.
  LogWriter(LogMode mode, LogStorage* disk, Shipper* shipper);

  [[nodiscard]] LogMode mode() const {
    // Relaxed: parallel committers read the mode off-mutex for cost
    // accounting; every dispatch decision happens under the driver's
    // commit mutex, where set_mode also runs.
    return mode_.load(std::memory_order_relaxed);
  }
  void set_mode(LogMode mode);

  /// Late wiring for the replication layer (the replicator needs the writer
  /// and vice versa; the writer is constructed first with a null shipper).
  void set_shipper(Shipper* shipper) { shipper_ = shipper; }

  /// Submit one validated transaction's records (after-images then the
  /// commit record, already in that order). `on_durable` fires when the
  /// commit rule of the current mode is satisfied. `stages`, when non-null,
  /// is the transaction's lifecycle stage clock: the writer stamps kShip
  /// when the records leave the batch buffer and kMirrorAck when the
  /// covering acknowledgment arrives. The pointer must stay valid until
  /// `on_durable` fires or the writer is destroyed.
  void submit(ValidationTs seq, std::vector<Record> records,
              std::function<void()> on_durable,
              obs::StageClock* stages = nullptr);

  /// Clock used for lifecycle stage stamps (independent of the ack-timeout
  /// and batching clocks, which are optional features).
  void set_stage_clock(const Clock* clock) { stage_clock_ = clock; }

  /// Cumulative mirror acknowledgment: every pending transaction with
  /// validation seq <= `seq` is durable on the mirror. Callbacks fire in
  /// seq order.
  void on_mirror_ack(ValidationTs seq);

  /// The mirror is gone: switch to direct-disk logging and re-route every
  /// not-yet-acknowledged transaction (shipped or still buffered) to the
  /// local device so that no committing transaction is stranded.
  void on_mirror_lost();

  /// Arm the ack timeout: when check_ack_timeouts() finds the oldest
  /// unacknowledged shipment older than `timeout`, `on_timeout` fires (the
  /// node escalates to on_mirror_lost so committers are never stranded
  /// behind a silently dead link).
  void configure_ack_timeout(const Clock* clock, Duration timeout,
                             std::function<void()> on_timeout);

  /// Poll from the node's heartbeat tick. Returns true when the timeout
  /// fired this call.
  bool check_ack_timeouts();

  /// Enable group commit. `schedule_flush(d)` asks the host runtime to call
  /// flush_batch() after `d`; a stale callback (the batch already drained)
  /// is harmless — flush_batch() re-arms or no-ops as needed. Pass an empty
  /// scheduler only when flush_batch() is driven externally (tests).
  void configure_batching(const Clock* clock, BatchOptions options,
                          std::function<void(Duration)> schedule_flush = {});

  /// Drain the batch buffer as one shipment. Called by the host's flush
  /// timer and safe to call any time; if the current batch's delay window
  /// has not expired yet (the timer was armed for an older batch), the
  /// flush is re-armed instead of shipping early.
  void flush_batch();

  /// Transactions accumulated in the batch buffer, not yet shipped.
  [[nodiscard]] std::size_t batched_txns() const { return batch_txns_; }
  /// Effective flush delay after adaptive adjustment (== max_delay when
  /// adaptive_delay is off).
  [[nodiscard]] Duration current_flush_delay() const { return batch_delay_; }

  /// Re-ship every unacknowledged transaction as one combined batch in
  /// validation order (after a reconnect — the mirror drops what it already
  /// applied as stale and re-acks its cumulative floor). Each resent entry's
  /// ack-timeout clock restarts: a reconnect must get a full timeout window
  /// before escalation, not inherit the dead link's elapsed time. Returns
  /// how many transactions were resent.
  std::size_t resend_pending();

  [[nodiscard]] std::size_t pending_acks() const { return pending_.size(); }

  /// Records of every submitted transaction with validation seq > `seq`,
  /// in seq order — the catch-up stream a rejoining mirror needs between
  /// its snapshot boundary and the live stream. Retention is bounded
  /// (`kTailRetention` transactions); older history requires a snapshot.
  [[nodiscard]] std::vector<Record> tail_since(ValidationTs seq) const;
  static constexpr std::size_t kTailRetention = 4096;

  /// Telemetry: transactions that commuted through each path, plus batch
  /// shipping and cumulative-ack accounting.
  struct Counters {
    std::uint64_t via_mirror{0};
    std::uint64_t via_disk{0};
    std::uint64_t via_none{0};
    std::uint64_t rerouted{0};
    std::uint64_t resent{0};
    std::uint64_t ack_timeouts{0};
    /// Frames shipped to the mirror (each one kLogBatch message).
    std::uint64_t batches_shipped{0};
    /// Transactions carried by those frames (mean fill = txns / batches).
    std::uint64_t batch_txns_shipped{0};
    std::uint64_t batch_bytes_shipped{0};
    /// Why each batch drained: txn threshold, byte threshold, delay timer,
    /// or forced (explicit flush / unbatched ship-at-submit).
    std::uint64_t batch_fill_txns{0};
    std::uint64_t batch_fill_bytes{0};
    std::uint64_t batch_fill_delay{0};
    std::uint64_t batch_fill_forced{0};
    /// Ack messages received and the pending txns they released — the
    /// coalescing ratio is acks_received : ack_released_txns.
    std::uint64_t acks_received{0};
    std::uint64_t ack_released_txns{0};
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

 private:
  struct Pending {
    std::vector<Record> records;
    std::function<void()> on_durable;
    /// obs time base (now_us) at ship time; the commit ack closes the
    /// mirror_ack span and feeds the replication-RTT timer. 0 when obs off.
    std::int64_t shipped_at_us{0};
    /// Clock time of the latest (re)shipment — resend_pending() restamps it
    /// so the ack timeout measures the current link attempt, not the total
    /// time-to-durable across reconnects.
    TimePoint shipped_at{};
    /// Lifecycle stage clock of the submitting transaction (may be null).
    obs::StageClock* stages{nullptr};
  };

  enum class FillCause { kTxns, kBytes, kDelay, kForced };

  void submit_to_disk(std::vector<Record> records,
                      std::function<void()> on_durable,
                      obs::StageClock* stages);
  /// Stamp a stage on a transaction's clock using the stage clock.
  void mark_stage(obs::StageClock* stages, obs::Stage s) const;
  void drain_batch(FillCause cause);
  void clear_batch();

  std::atomic<LogMode> mode_;
  LogStorage* disk_;
  Shipper* shipper_;
  const Clock* clock_{nullptr};
  const Clock* stage_clock_{nullptr};
  Duration ack_timeout_{Duration::zero()};
  std::function<void()> on_ack_timeout_;
  std::map<ValidationTs, Pending> pending_;  // unacked, in seq order
  std::map<ValidationTs, std::vector<Record>> tail_;  // recent submissions

  // ---- group-commit batch buffer ----------------------------------------
  BatchOptions batch_opts_{};
  const Clock* batch_clock_{nullptr};
  std::function<void(Duration)> schedule_flush_;
  std::vector<Record> batch_records_;
  /// Stage clocks of the buffered transactions (parallel bookkeeping, may
  /// hold nulls); stamped kShip when the batch drains.
  std::vector<obs::StageClock*> batch_stages_;
  std::size_t batch_txns_{0};
  std::size_t batch_bytes_{0};
  Duration batch_delay_{Duration::zero()};  // adaptive effective delay
  std::optional<TimePoint> batch_deadline_;

  Counters counters_;
};

}  // namespace rodain::log
