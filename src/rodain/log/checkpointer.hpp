// Periodic checkpoint + log-truncation driver (DESIGN.md §10).
//
// One small clock-agnostic component shared by every runtime that owns a
// durable log: the rt::Node timer thread, the simdb::SimNode virtual-time
// event loop, and the mirror apply path (MirrorService::poll). The owner
// supplies a consistent boundary (installed low-water mark on a serving
// node, applied_seq on a mirror) and a write callback; after a successful
// checkpoint the log is truncated up to that boundary, which is what keeps
// restart time and disk footprint bounded.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "rodain/common/status.hpp"
#include "rodain/common/time.hpp"
#include "rodain/common/types.hpp"

namespace rodain::log {

class LogStorage;

class Checkpointer {
 public:
  struct Options {
    Duration interval{Duration::zero()};  ///< non-positive disables tick()
    /// Highest validation seq the checkpoint may cover consistently.
    std::function<ValidationTs()> boundary;
    /// Persist the checkpoint at the given boundary.
    std::function<Status(ValidationTs)> write;
    /// Log to truncate after a successful write (optional).
    LogStorage* log{nullptr};
  };

  struct Stats {
    std::uint64_t checkpoints{0};
    std::uint64_t failures{0};
    std::uint64_t truncated{0};  ///< units reported by LogStorage::truncate_upto
    ValidationTs last_boundary{0};
  };

  Checkpointer() = default;
  explicit Checkpointer(Options options) : options_(std::move(options)) {}

  void configure(Options options) { options_ = std::move(options); }

  [[nodiscard]] bool enabled() const {
    return options_.interval.is_positive() && options_.boundary &&
           options_.write;
  }

  /// Run a checkpoint when the interval elapsed; returns whether one ran.
  bool tick(TimePoint now);

  /// Run a checkpoint now. By default skips the write when the boundary has
  /// not advanced since the last successful checkpoint; `force` writes even
  /// then (explicit write_checkpoint() requests, which historically always
  /// produced a file). Boundary selection, the write, and the truncation
  /// are a single-flight critical section: a second caller arriving while
  /// one is in flight gets kUnavailable instead of racing an older boundary
  /// over a newer artifact — callers serialize on the owner's commit mutex,
  /// but the fuzzy path drops it mid-write, so the guard is what keeps the
  /// covered boundary monotone.
  Status run(TimePoint now, bool force = false);

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  Options options_;
  std::optional<TimePoint> last_run_;
  /// Set while a run() is between boundary selection and truncation. Guarded
  /// by the owner's external serialization (commit mutex) at entry/exit.
  bool running_{false};
  Stats stats_;
};

}  // namespace rodain::log
