// Periodic checkpoint + log-truncation driver (DESIGN.md §10).
//
// One small clock-agnostic component shared by every runtime that owns a
// durable log: the rt::Node timer thread, the simdb::SimNode virtual-time
// event loop, and the mirror apply path (MirrorService::poll). The owner
// supplies a consistent boundary (installed low-water mark on a serving
// node, applied_seq on a mirror) and a write callback; after a successful
// checkpoint the log is truncated up to that boundary, which is what keeps
// restart time and disk footprint bounded.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "rodain/common/status.hpp"
#include "rodain/common/time.hpp"
#include "rodain/common/types.hpp"

namespace rodain::log {

class LogStorage;

class Checkpointer {
 public:
  struct Options {
    Duration interval{Duration::zero()};  ///< non-positive disables tick()
    /// Highest validation seq the checkpoint may cover consistently.
    std::function<ValidationTs()> boundary;
    /// Persist the checkpoint at the given boundary.
    std::function<Status(ValidationTs)> write;
    /// Log to truncate after a successful write (optional).
    LogStorage* log{nullptr};
  };

  struct Stats {
    std::uint64_t checkpoints{0};
    std::uint64_t failures{0};
    std::uint64_t truncated{0};  ///< units reported by LogStorage::truncate_upto
    ValidationTs last_boundary{0};
  };

  Checkpointer() = default;
  explicit Checkpointer(Options options) : options_(std::move(options)) {}

  void configure(Options options) { options_ = std::move(options); }

  [[nodiscard]] bool enabled() const {
    return options_.interval.is_positive() && options_.boundary &&
           options_.write;
  }

  /// Run a checkpoint when the interval elapsed; returns whether one ran.
  bool tick(TimePoint now);

  /// Run a checkpoint now (explicit request). Skips the write when the
  /// boundary has not advanced since the last successful checkpoint.
  Status run(TimePoint now);

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  Options options_;
  std::optional<TimePoint> last_run_;
  Stats stats_;
};

}  // namespace rodain::log
