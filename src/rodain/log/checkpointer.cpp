#include "rodain/log/checkpointer.hpp"

#include "rodain/log/log_storage.hpp"
#include "rodain/obs/obs.hpp"

namespace rodain::log {

bool Checkpointer::tick(TimePoint now) {
  if (!enabled()) return false;
  if (last_run_ && now - *last_run_ < options_.interval) return false;
  (void)run(now);  // failures are counted in stats; the cadence continues
  return true;
}

Status Checkpointer::run(TimePoint now) {
  if (!options_.boundary || !options_.write) {
    return Status::error(ErrorCode::kFailedPrecondition,
                         "checkpointer not configured");
  }
  last_run_ = now;
  const ValidationTs boundary = options_.boundary();
  if (boundary == 0 ||
      (stats_.checkpoints > 0 && boundary <= stats_.last_boundary)) {
    return Status::ok();  // nothing new to cover
  }
  Status status = options_.write(boundary);
  if (!status) {
    ++stats_.failures;
    obs::metrics().counter("log.checkpoint_failures").inc();
    return status;
  }
  ++stats_.checkpoints;
  stats_.last_boundary = boundary;
  obs::metrics().counter("log.checkpoints").inc();
  if (options_.log) stats_.truncated += options_.log->truncate_upto(boundary);
  return Status::ok();
}

}  // namespace rodain::log
