#include "rodain/log/checkpointer.hpp"

#include "rodain/log/log_storage.hpp"
#include "rodain/obs/obs.hpp"

namespace rodain::log {

bool Checkpointer::tick(TimePoint now) {
  if (!enabled()) return false;
  if (last_run_ && now - *last_run_ < options_.interval) return false;
  (void)run(now);  // failures are counted in stats; the cadence continues
  return true;
}

Status Checkpointer::run(TimePoint now, bool force) {
  if (!options_.boundary || !options_.write) {
    return Status::error(ErrorCode::kFailedPrecondition,
                         "checkpointer not configured");
  }
  if (running_) {
    // Another run is between boundary selection and truncation (the fuzzy
    // write path releases the commit mutex mid-encode). Letting this call
    // proceed would let an older boundary rename over the newer artifact.
    return Status::error(ErrorCode::kUnavailable, "checkpoint already running");
  }
  last_run_ = now;
  const ValidationTs boundary = options_.boundary();
  if (boundary < stats_.last_boundary) {
    return Status::error(ErrorCode::kFailedPrecondition,
                         "checkpoint boundary went backwards");
  }
  if (!force && (boundary == 0 || (stats_.checkpoints > 0 &&
                                   boundary <= stats_.last_boundary))) {
    return Status::ok();  // nothing new to cover
  }
  running_ = true;
  Status status = options_.write(boundary);
  running_ = false;
  if (!status) {
    ++stats_.failures;
    obs::metrics().counter("log.checkpoint_failures").inc();
    return status;
  }
  ++stats_.checkpoints;
  stats_.last_boundary = boundary;
  obs::metrics().counter("log.checkpoints").inc();
  if (options_.log) stats_.truncated += options_.log->truncate_upto(boundary);
  return Status::ok();
}

}  // namespace rodain::log
