// Durable sinks for the redo stream.
//
// The commit path cares about one operation: "make everything appended so
// far durable, tell me when". Implementations:
//   MemoryLogStorage   instant durability, inspectable — unit tests.
//   FileLogStorage     real append-only file (+ optional fsync) — the rt
//                      runtime and recovery tests.
//   SimDiskLogStorage  latency/throughput model on the simulation timeline —
//                      the figure benches (a late-1990s disk is the whole
//                      point of Fig. 2).
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "rodain/common/status.hpp"
#include "rodain/common/time.hpp"
#include "rodain/log/record.hpp"
#include "rodain/sim/simulation.hpp"

namespace rodain::log {

class LogStorage {
 public:
  virtual ~LogStorage() = default;

  /// Buffer a record (not durable yet).
  virtual void append(const Record& r) = 0;

  /// Request durability of everything appended so far. `done` fires when
  /// durable (possibly inline). Flush requests complete in issue order.
  virtual void flush(std::function<void(Status)> done) = 0;

  [[nodiscard]] virtual Lsn appended() const = 0;  ///< records appended
  [[nodiscard]] virtual Lsn durable() const = 0;   ///< records durable

  /// Drop log state at or below the checkpoint boundary (segment deletion,
  /// modelled-disk prefix trim). Returns implementation-defined units
  /// removed; the default keeps the whole log.
  virtual std::uint64_t truncate_upto(ValidationTs boundary) {
    (void)boundary;
    return 0;
  }
};

/// In-memory sink with immediate durability; keeps the records inspectable.
class MemoryLogStorage final : public LogStorage {
 public:
  void append(const Record& r) override;
  void flush(std::function<void(Status)> done) override;
  [[nodiscard]] Lsn appended() const override { return records_.size(); }
  [[nodiscard]] Lsn durable() const override { return durable_; }
  std::uint64_t truncate_upto(ValidationTs boundary) override;

  [[nodiscard]] const std::vector<Record>& records() const { return records_; }

  /// Fault-injection hook (tests): the next `n` flushes report failure and
  /// leave the appended records non-durable — a full device, from the
  /// caller's point of view.
  void inject_flush_error(std::size_t n) { inject_errors_ = n; }

 private:
  std::vector<Record> records_;
  Lsn durable_{0};
  std::size_t inject_errors_{0};
};

/// Append-only log file. Flush is synchronous (write + fflush + optional
/// fsync); `done` is invoked inline.
class FileLogStorage final : public LogStorage {
 public:
  /// Opens (creates or appends to) `path`.
  static Result<std::unique_ptr<FileLogStorage>> open(const std::string& path,
                                                      bool fsync_on_flush = false);
  ~FileLogStorage() override;

  void append(const Record& r) override;
  void flush(std::function<void(Status)> done) override;
  [[nodiscard]] Lsn appended() const override { return appended_; }
  [[nodiscard]] Lsn durable() const override { return durable_; }

  /// Read every record back (recovery); `torn` reports an incomplete tail.
  static Result<std::vector<Record>> read_all(const std::string& path,
                                              bool* torn = nullptr);

  /// Fault-injection hook (tests): the next `n` record-stream writes fail
  /// as if the device were full.
  void inject_write_error(std::size_t n) { inject_errors_ = n; }

 private:
  FileLogStorage(std::FILE* f, bool fsync_on_flush)
      : file_(f), fsync_(fsync_on_flush) {}

  std::FILE* file_;
  bool fsync_;
  ByteWriter pending_;
  std::size_t pending_written_{0};  ///< prefix of pending_ already on disk
  Lsn appended_{0};
  Lsn durable_{0};
  Lsn buffered_{0};
  std::size_t inject_errors_{0};
};

/// Disk model on the simulation timeline: each flush operation costs
/// `seek_time` plus transferred-bytes / `throughput`, and the device handles
/// one operation at a time. With `coalesce_flushes` every flush request that
/// arrives while the device is busy is folded into one operation (group
/// commit); without it each request pays its own seek — the synchronous
/// per-commit regime of the paper's lone node.
class SimDiskLogStorage final : public LogStorage {
 public:
  struct Options {
    Duration seek_time{Duration::millis(8)};
    double throughput_bytes_per_sec{4.0 * 1024 * 1024};
    bool coalesce_flushes{false};
  };

  SimDiskLogStorage(sim::Simulation& sim, Options options)
      : sim_(sim), options_(options) {}

  void append(const Record& r) override;
  void flush(std::function<void(Status)> done) override;
  [[nodiscard]] Lsn appended() const override { return appended_; }
  [[nodiscard]] Lsn durable() const override { return durable_; }

  /// Trim the durable prefix up to the last commit at or below `boundary`
  /// (the modelled analogue of segment truncation). `appended()`/`durable()`
  /// drop by the removed count so `backlog()` is unchanged.
  std::uint64_t truncate_upto(ValidationTs boundary) override;

  [[nodiscard]] const std::vector<Record>& records() const { return records_; }
  [[nodiscard]] std::size_t queued_flushes() const { return queue_.size(); }
  /// Records appended but not yet durable — the data-loss window of claim C5.
  [[nodiscard]] Lsn backlog() const { return appended_ - durable_; }
  [[nodiscard]] Duration total_busy() const { return busy_; }
  /// Records trimmed away by checkpoint-coordinated truncation so far.
  [[nodiscard]] Lsn truncated() const { return truncated_; }

 private:
  struct FlushReq {
    Lsn upto;
    std::size_t bytes;
    std::vector<std::function<void(Status)>> callbacks;
  };

  void start_next();

  sim::Simulation& sim_;
  Options options_;
  std::vector<Record> records_;
  Lsn appended_{0};
  Lsn durable_{0};
  std::size_t unflushed_bytes_{0};
  std::deque<FlushReq> queue_;
  bool device_busy_{false};
  Duration busy_{Duration::zero()};
  Lsn truncated_{0};
};

}  // namespace rodain::log
