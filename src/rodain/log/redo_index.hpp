// Per-record redo index for instant recovery (MM-DIRECT shape).
//
// Instead of replaying every surviving log record before the node serves,
// build() matches commits the way replay_records does but *defers* the
// installs: each committed after-image is parked in a per-object chain
// (object id -> its pending writes in validation-seq order). The node then
// opens for business immediately; the first transaction that touches a
// not-yet-recovered object calls ensure_recovered() on the serial path
// (under rt::Node's commit_mu_), which applies just that object's chain,
// while a background sweeper drains the rest of the index in log order.
// Every pending write carries an applied flag — the recovered watermark —
// set exactly once under commit_mu_, so the on-demand path and the sweeper
// can interleave freely without double-applying.
//
// Consistency: a transaction only ever observes objects it has passed
// through ensure_recovered() (all engine access funnels through the serial
// fetch while the index is active), so it always sees every deferred commit
// that touched those objects, even though *other* objects may still be
// unrecovered at that instant.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <span>
#include <unordered_map>
#include <vector>

#include "rodain/common/status.hpp"
#include "rodain/log/record.hpp"
#include "rodain/storage/btree.hpp"
#include "rodain/storage/object_store.hpp"

namespace rodain::log {

class RedoIndex {
 public:
  RedoIndex() = default;
  RedoIndex(const RedoIndex&) = delete;
  RedoIndex& operator=(const RedoIndex&) = delete;

  /// Index `records` (the decoded surviving log) without applying anything.
  /// Commits at or below `already_applied` are covered by the checkpoint
  /// and skipped; transactions without a commit record are dropped. Safe to
  /// call once, before the node serves.
  Status build(std::span<const Record> records, ValidationTs already_applied);

  /// True while any deferred write remains unapplied. Lock-free: this is
  /// the only member unlocked threads may consult (optimistic read phases
  /// check it to decide whether to fall back to the serial path).
  [[nodiscard]] bool active() const {
    return pending_writes_.load(std::memory_order_acquire) != 0;
  }

  /// Replay `oid`'s pending chain (if any) and retire it. Serial path only:
  /// the caller holds the node's commit mutex.
  void ensure_recovered(ObjectId oid, storage::ObjectStore& store,
                        storage::BPlusTree* index);

  /// Replay everything a key lookup could observe: the chain of the object
  /// the log last bound to `key` (the checkpoint's index may not know it
  /// yet) and the chain of the object the current index maps it to (a
  /// pending delete or re-point may not have applied yet).
  void ensure_recovered_key(const storage::IndexKey& key,
                            storage::ObjectStore& store,
                            storage::BPlusTree* index);

  /// Background sweep: apply up to `max_txns` transactions' worth of
  /// pending writes in validation-seq order. Returns the number of
  /// transactions crossed (0 means the index is drained). Serial path only.
  std::size_t sweep(std::size_t max_txns, storage::ObjectStore& store,
                    storage::BPlusTree* index);

  /// Apply everything left, e.g. before an explicit checkpoint.
  void drain(storage::ObjectStore& store, storage::BPlusTree* index);

  /// Free the parked after-images once drained (no-op while active).
  void retire();

  /// Discard everything still unapplied: a full snapshot (mirror rejoin)
  /// supersedes the local log, so the parked images must never touch the
  /// store again. active() turns false immediately.
  void abandon();

  [[nodiscard]] ValidationTs last_seq() const { return last_seq_; }
  [[nodiscard]] std::uint64_t deferred_txns() const { return deferred_txns_; }
  [[nodiscard]] std::uint64_t deferred_writes() const {
    return deferred_writes_;
  }
  [[nodiscard]] std::uint64_t incomplete_dropped() const {
    return incomplete_dropped_;
  }
  [[nodiscard]] std::uint64_t pending_txns() const {
    return deferred_txns_ - txns_done_;
  }
  [[nodiscard]] std::uint64_t ondemand_applied() const {
    return ondemand_applied_;
  }
  [[nodiscard]] std::uint64_t background_applied() const {
    return background_applied_;
  }

 private:
  struct PendingWrite {
    Record rec;
    ValidationTs seq{0};        ///< validation seq of the owning commit
    ValidationTs serial_ts{0};  ///< install timestamp of the owning commit
    bool applied{false};        ///< the recovered watermark
  };

  void apply(PendingWrite& w, storage::ObjectStore& store,
             storage::BPlusTree* index, bool ondemand);

  /// All deferred writes in global validation-seq order (the sweep order).
  std::vector<PendingWrite> writes_;
  /// Object id -> indices into writes_, per object in seq order.
  std::unordered_map<ObjectId, std::vector<std::uint32_t>> chains_;
  /// Key -> the object id the log last bound it to (IndexKey has ordering
  /// but no std::hash, hence the ordered map).
  std::map<storage::IndexKey, ObjectId> key_writers_;
  /// Per-transaction unapplied-write counts; a txn retires when it empties.
  std::unordered_map<ValidationTs, std::uint32_t> remaining_;
  std::size_t sweep_pos_{0};
  std::atomic<std::uint64_t> pending_writes_{0};
  ValidationTs last_seq_{0};
  std::uint64_t deferred_txns_{0};
  std::uint64_t deferred_writes_{0};
  std::uint64_t incomplete_dropped_{0};
  std::uint64_t txns_done_{0};
  std::uint64_t ondemand_applied_{0};
  std::uint64_t background_applied_{0};
};

}  // namespace rodain::log
