#include "rodain/log/segment.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <unistd.h>

#include "rodain/obs/obs.hpp"

namespace rodain::log {

namespace {

constexpr std::uint64_t kSegMagic = 0x314745534e444f52ULL;  // "RODNSEG1"
constexpr std::uint32_t kSegVersion = 1;
// Header layout: [u64 magic][u32 version][u64 first_seq][u64 last_seq]
//                [u32 crc32c(previous 28 bytes)]
constexpr std::size_t kHeaderCrcOffset = 28;

struct SegMetrics {
  obs::Counter& sealed = obs::metrics().counter("log.segments_sealed");
  obs::Counter& truncated = obs::metrics().counter("log.segments_truncated");
  obs::Gauge& disk_bytes = obs::metrics().gauge("log.disk_bytes");
  obs::Gauge& live = obs::metrics().gauge("log.segments_live");
  // Registered here so the gauge shows up in exposition even before any
  // recovery ran in this process; set by the recovery path.
  obs::Gauge& replay_ms = obs::metrics().gauge("log.recovery_replay_ms");
};

SegMetrics& seg_metrics() {
  static SegMetrics m;
  return m;
}

std::vector<std::byte> encode_header(ValidationTs first_seq,
                                     ValidationTs last_seq) {
  ByteWriter w(SegmentedLogStorage::kHeaderBytes);
  w.put_u64(kSegMagic);
  w.put_u32(kSegVersion);
  w.put_u64(first_seq);
  w.put_u64(last_seq);
  w.put_u32(crc32c(w.view().subspan(0, kHeaderCrcOffset)));
  return w.take();
}

Status parse_header(std::span<const std::byte> data,
                    SegmentedLogStorage::SegmentInfo& info) {
  if (data.size() < SegmentedLogStorage::kHeaderBytes) {
    return Status::error(ErrorCode::kCorruption, "segment header too short");
  }
  const auto header = data.subspan(0, SegmentedLogStorage::kHeaderBytes);
  ByteReader crc_reader(header.subspan(kHeaderCrcOffset));
  std::uint32_t expect = 0;
  if (auto s = crc_reader.get_u32(expect); !s) return s;
  if (crc32c(header.subspan(0, kHeaderCrcOffset)) != expect) {
    return Status::error(ErrorCode::kCorruption, "segment header CRC mismatch");
  }
  ByteReader r(header);
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  if (auto s = r.get_u64(magic); !s) return s;
  if (magic != kSegMagic) {
    return Status::error(ErrorCode::kCorruption, "bad segment magic");
  }
  if (auto s = r.get_u32(version); !s) return s;
  if (version != kSegVersion) {
    return Status::error(ErrorCode::kCorruption, "unsupported segment version");
  }
  if (auto s = r.get_u64(info.first_seq); !s) return s;
  if (auto s = r.get_u64(info.last_seq); !s) return s;
  return Status::ok();
}

std::string segment_name(ValidationTs first_seq) {
  return "log." + std::to_string(first_seq) + ".seg";
}

/// Parse `log.<first_seq>.seg`; returns false for unrelated files.
bool parse_segment_name(const std::string& name, ValidationTs& first_seq) {
  if (name.size() < 9 || name.rfind("log.", 0) != 0 ||
      name.compare(name.size() - 4, 4, ".seg") != 0) {
    return false;
  }
  const std::string digits = name.substr(4, name.size() - 8);
  if (digits.empty()) return false;
  ValidationTs v = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<ValidationTs>(c - '0');
  }
  first_seq = v;
  return true;
}

Result<std::vector<std::byte>> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return Status::error(ErrorCode::kNotFound, "cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  const long len = std::ftell(f);
  if (len < 0 || std::fseek(f, 0, SEEK_SET) != 0) {
    std::fclose(f);
    return Status::error(ErrorCode::kIoError, "cannot size " + path);
  }
  std::vector<std::byte> buf(static_cast<std::size_t>(len));
  const bool ok = std::fread(buf.data(), 1, buf.size(), f) == buf.size();
  std::fclose(f);
  if (!ok) return Status::error(ErrorCode::kIoError, "short read " + path);
  return buf;
}

Status fsync_file(std::FILE* f) {
  if (::fsync(::fileno(f)) != 0) {
    return Status::error(ErrorCode::kIoError, "segment fsync failed");
  }
  return Status::ok();
}

/// Rewrite the 32-byte header in place (sealing) and flush it down.
Status patch_header(const std::string& path, ValidationTs first_seq,
                    ValidationTs last_seq, bool fsync_on_flush) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (!f) return Status::error(ErrorCode::kIoError, "cannot reopen " + path);
  const auto header = encode_header(first_seq, last_seq);
  Status status = Status::ok();
  if (std::fwrite(header.data(), 1, header.size(), f) != header.size() ||
      std::fflush(f) != 0) {
    status = Status::error(ErrorCode::kIoError, "segment seal failed");
  } else if (fsync_on_flush) {
    status = fsync_file(f);
  }
  std::fclose(f);
  return status;
}

}  // namespace

Result<std::vector<SegmentedLogStorage::SegmentInfo>>
SegmentedLogStorage::list_segments(const std::string& dir) {
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) {
    return Status::error(ErrorCode::kNotFound, "no segment dir " + dir);
  }
  std::vector<SegmentInfo> out;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    ValidationTs name_seq = 0;
    if (!parse_segment_name(name, name_seq)) continue;
    SegmentInfo info;
    info.path = entry.path().string();
    info.first_seq = name_seq;
    info.bytes = entry.file_size(ec);
    // The header is authoritative when present; a crash right after fopen
    // can leave a file shorter than a header (treated as unsealed, empty).
    if (info.bytes >= kHeaderBytes) {
      std::FILE* f = std::fopen(info.path.c_str(), "rb");
      if (f) {
        std::vector<std::byte> header(kHeaderBytes);
        const bool ok =
            std::fread(header.data(), 1, header.size(), f) == header.size();
        std::fclose(f);
        if (ok) {
          if (auto s = parse_header(header, info); !s) return s;
        }
      }
    }
    out.push_back(std::move(info));
  }
  if (ec) return Status::error(ErrorCode::kIoError, "list " + dir);
  std::sort(out.begin(), out.end(), [](const SegmentInfo& a, const SegmentInfo& b) {
    return a.first_seq != b.first_seq ? a.first_seq < b.first_seq
                                      : a.path < b.path;
  });
  return out;
}

Result<std::vector<Record>> SegmentedLogStorage::read_segment(
    const std::string& path, SegmentInfo* info, bool* torn) {
  if (torn) *torn = false;
  auto buf = read_file(path);
  if (!buf.is_ok()) return buf.status();
  SegmentInfo parsed;
  parsed.path = path;
  parsed.bytes = buf.value().size();
  if (buf.value().size() < kHeaderBytes) {
    // Crash window between fopen and the first flush: no header made it
    // down. Nothing in this segment was ever acknowledged durable.
    if (torn) *torn = !buf.value().empty();
    if (info) *info = parsed;
    return std::vector<Record>{};
  }
  if (auto s = parse_header(buf.value(), parsed); !s) return s;
  if (info) *info = parsed;
  return decode_records(std::span<const std::byte>{buf.value()}.subspan(kHeaderBytes),
                        torn);
}

Result<std::vector<Record>> SegmentedLogStorage::read_all(
    const std::string& dir, bool* torn) {
  if (torn) *torn = false;
  auto segments = list_segments(dir);
  if (!segments.is_ok()) return segments.status();
  std::vector<Record> out;
  for (std::size_t i = 0; i < segments.value().size(); ++i) {
    const SegmentInfo& seg = segments.value()[i];
    bool seg_torn = false;
    auto records = read_segment(seg.path, nullptr, &seg_torn);
    if (!records.is_ok()) return records.status();
    if (seg_torn && seg.last_seq != 0) {
      return Status::error(ErrorCode::kCorruption,
                           "torn tail in sealed segment " + seg.path);
    }
    if (seg_torn && torn) *torn = true;
    for (auto& r : records.value()) out.push_back(std::move(r));
  }
  return out;
}

Result<std::unique_ptr<SegmentedLogStorage>> SegmentedLogStorage::open(
    const std::string& dir, Options options) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::error(ErrorCode::kIoError, "cannot create " + dir);
  }
  auto log = std::unique_ptr<SegmentedLogStorage>(
      new SegmentedLogStorage(dir, options));

  auto segments = list_segments(dir);
  if (!segments.is_ok()) return segments.status();
  for (std::size_t i = 0; i < segments.value().size(); ++i) {
    SegmentInfo& seg = segments.value()[i];
    const bool newest = i + 1 == segments.value().size();
    if (seg.last_seq != 0) {
      log->sealed_.push_back(seg);
      log->next_first_hint_ = std::max(log->next_first_hint_, seg.last_seq + 1);
      continue;
    }
    // Unsealed segment. Decode to learn its real extent, and drop any torn
    // tail so fresh appends never land behind garbage (a torn record
    // mid-file would truncate every later record at the next recovery).
    bool torn = false;
    auto records = read_segment(seg.path, nullptr, &torn);
    if (!records.is_ok()) return records.status();
    ValidationTs last_commit = 0;
    std::size_t good_bytes = kHeaderBytes;
    {
      ByteWriter probe;
      for (const Record& r : records.value()) {
        if (r.is_commit()) last_commit = std::max(last_commit, r.seq);
        encode_record(r, probe);
      }
      good_bytes += probe.size();
    }
    if (seg.bytes < kHeaderBytes) {
      // Header never hit the disk: the file holds nothing durable.
      std::filesystem::remove(seg.path, ec);
      log->tail_trimmed_ |= torn;
      continue;
    }
    if (torn) {
      if (::truncate(seg.path.c_str(), static_cast<off_t>(good_bytes)) != 0) {
        return Status::error(ErrorCode::kIoError, "cannot trim torn " + seg.path);
      }
      log->tail_trimmed_ = true;
    }
    seg.bytes = good_bytes;
    if (!newest) {
      // Crash inside the seal-then-create window: seal it now with its
      // observed extent so truncation can reason about it.
      const ValidationTs last = last_commit ? last_commit : seg.first_seq;
      if (auto s = patch_header(seg.path, seg.first_seq, last,
                                options.fsync_on_flush);
          !s) {
        return s;
      }
      seg.last_seq = last;
      log->sealed_.push_back(seg);
      log->next_first_hint_ = std::max(log->next_first_hint_, last + 1);
      continue;
    }
    // Continue appending to the newest unsealed segment.
    std::FILE* f = std::fopen(seg.path.c_str(), "ab");
    if (!f) {
      return Status::error(ErrorCode::kIoError, "cannot reopen " + seg.path);
    }
    std::setvbuf(f, nullptr, _IONBF, 0);
    log->active_ = f;
    log->active_info_ = seg;
    log->active_last_commit_ = last_commit;
    log->next_first_hint_ =
        std::max(log->next_first_hint_,
                 last_commit ? last_commit + 1 : seg.first_seq);
  }
  log->publish_gauges();
  return log;
}

SegmentedLogStorage::~SegmentedLogStorage() {
  if (active_) {
    std::fflush(active_);
    std::fclose(active_);
  }
}

Status SegmentedLogStorage::open_active(ValidationTs first_seq_hint) {
  const std::string path =
      (std::filesystem::path(dir_) / segment_name(first_seq_hint)).string();
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (!f) return Status::error(ErrorCode::kIoError, "cannot open " + path);
  // Unbuffered: fwrite's return value is then authoritative about what
  // reached the kernel, so a failed flush can retry exactly the unwritten
  // suffix without duplicating bytes through a half-drained stdio buffer.
  std::setvbuf(f, nullptr, _IONBF, 0);
  const auto header = encode_header(first_seq_hint, 0);
  if (std::fwrite(header.data(), 1, header.size(), f) != header.size()) {
    std::fclose(f);
    return Status::error(ErrorCode::kIoError, "cannot write header " + path);
  }
  active_ = f;
  active_info_ = SegmentInfo{path, first_seq_hint, 0, kHeaderBytes};
  active_last_commit_ = 0;
  return Status::ok();
}

void SegmentedLogStorage::append(const Record& r) {
  encode_record(r, pending_);
  ++appended_;
  ++buffered_;
  if (r.is_commit()) active_last_commit_ = std::max(active_last_commit_, r.seq);
}

Status SegmentedLogStorage::write_pending() {
  const auto view = pending_.view();
  while (pending_written_ < view.size()) {
    std::size_t n = 0;
    if (inject_errors_ > 0) {
      --inject_errors_;
    } else {
      n = std::fwrite(view.data() + pending_written_, 1,
                      view.size() - pending_written_, active_);
    }
    pending_written_ += n;
    if (n == 0) {
      std::clearerr(active_);
      return Status::error(ErrorCode::kIoError, "log write failed");
    }
  }
  if (std::fflush(active_) != 0) {
    return Status::error(ErrorCode::kIoError, "log write failed");
  }
  if (options_.fsync_on_flush) return fsync_file(active_);
  return Status::ok();
}

void SegmentedLogStorage::flush(std::function<void(Status)> done) {
  Status status = Status::ok();
  if (pending_.size() > 0) {
    if (!active_) status = open_active(next_first_hint_);
    if (status) {
      const std::size_t before = pending_written_;
      status = write_pending();
      active_info_.bytes += pending_written_ - before;
    }
  }
  if (status) {
    // Everything pending is on disk; only now may the records count as
    // durable. On failure both the bytes and the buffered count stay for
    // the retry — dropping one but not the other is how records get
    // credited as durable without ever being written.
    pending_.clear();
    pending_written_ = 0;
    durable_ += buffered_;
    buffered_ = 0;
    if (active_info_.bytes >= options_.segment_bytes + kHeaderBytes &&
        active_last_commit_ > 0) {
      status = seal_active_locked();
    }
    publish_gauges();
  }
  if (done) done(status);
}

Status SegmentedLogStorage::seal_active_locked() {
  std::fflush(active_);
  std::fclose(active_);
  active_ = nullptr;
  SegmentInfo sealed = active_info_;
  sealed.last_seq = active_last_commit_;
  if (auto s = patch_header(sealed.path, sealed.first_seq, sealed.last_seq,
                            options_.fsync_on_flush);
      !s) {
    return s;
  }
  sealed_.push_back(sealed);
  next_first_hint_ = std::max(next_first_hint_, sealed.last_seq + 1);
  active_info_ = SegmentInfo{};
  active_last_commit_ = 0;
  seg_metrics().sealed.inc();
  return Status::ok();
}

Status SegmentedLogStorage::seal_active() {
  if (!active_ || active_last_commit_ == 0) return Status::ok();
  Status status = Status::ok();
  flush([&](Status s) { status = s; });
  if (!status) return status;
  if (!active_) return Status::ok();  // the flush already rotated
  Status sealed = seal_active_locked();
  publish_gauges();
  return sealed;
}

std::uint64_t SegmentedLogStorage::truncate_upto(ValidationTs boundary) {
  std::uint64_t removed = 0;
  std::error_code ec;
  for (auto it = sealed_.begin(); it != sealed_.end();) {
    if (it->last_seq != 0 && it->last_seq <= boundary) {
      std::filesystem::remove(it->path, ec);
      it = sealed_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  if (removed > 0) {
    seg_metrics().truncated.inc(removed);
    publish_gauges();
  }
  return removed;
}

std::uint64_t SegmentedLogStorage::disk_bytes() const {
  std::uint64_t total = active_ ? active_info_.bytes : 0;
  for (const SegmentInfo& s : sealed_) total += s.bytes;
  return total;
}

std::size_t SegmentedLogStorage::segment_count() const {
  return sealed_.size() + (active_ ? 1 : 0);
}

void SegmentedLogStorage::publish_gauges() const {
  seg_metrics().disk_bytes.set(static_cast<double>(disk_bytes()));
  seg_metrics().live.set(static_cast<double>(segment_count()));
}

}  // namespace rodain::log
