#include "rodain/log/redo_index.hpp"

#include "rodain/obs/obs.hpp"

namespace rodain::log {
namespace {

/// Instant-recovery telemetry: how much replay the foreground paid for
/// (ondemand) versus what the sweeper absorbed (background), plus the same
/// txns_total/txns_replayed pair the full-replay path publishes, so one
/// /metrics query shows progress regardless of recovery mode.
struct RedoObs {
  obs::Counter& ondemand = obs::metrics().counter("recovery.ondemand_replays");
  obs::Counter& background =
      obs::metrics().counter("recovery.background_replays");
  obs::Gauge& txns_total = obs::metrics().gauge("recovery.txns_total");
  obs::Gauge& txns_replayed = obs::metrics().gauge("recovery.txns_replayed");
  obs::Gauge& pending = obs::metrics().gauge("recovery.pending_writes");
};
RedoObs& redo_obs() {
  static RedoObs o;
  return o;
}

}  // namespace

Status RedoIndex::build(std::span<const Record> records,
                        ValidationTs already_applied) {
  last_seq_ = already_applied;

  // Same single forward pass as replay_records: writes buffer per
  // transaction, a commit record stages them under its validation seq.
  std::unordered_map<TxnId, std::vector<const Record*>> open;
  struct Committed {
    ValidationTs serial_ts;
    std::vector<const Record*> writes;
  };
  std::map<ValidationTs, Committed> committed;  // ordered by seq

  for (const Record& r : records) {
    if (r.type != RecordType::kCommit) {
      open[r.txn].push_back(&r);
      continue;
    }
    std::vector<const Record*> writes;
    if (auto it = open.find(r.txn); it != open.end()) {
      writes = std::move(it->second);
      open.erase(it);
    }
    if (writes.size() != r.write_count) {
      return Status::error(ErrorCode::kCorruption,
                           "redo index: commit write-count mismatch");
    }
    if (r.seq <= already_applied) continue;  // covered by the checkpoint
    committed.emplace(r.seq, Committed{r.serial_ts, std::move(writes)});
  }
  incomplete_dropped_ = open.size();

  for (auto& [seq, c] : committed) {
    last_seq_ = seq;
    if (c.writes.empty()) continue;  // nothing to defer (read-only commit)
    for (const Record* w : c.writes) {
      const auto idx = static_cast<std::uint32_t>(writes_.size());
      writes_.push_back(PendingWrite{*w, seq, c.serial_ts, false});
      chains_[w->oid].push_back(idx);
      if (w->has_key) key_writers_[w->key] = w->oid;  // last writer wins
    }
    remaining_[seq] = static_cast<std::uint32_t>(c.writes.size());
    deferred_writes_ += c.writes.size();
    ++deferred_txns_;
  }
  pending_writes_.store(deferred_writes_, std::memory_order_release);
  redo_obs().txns_total.set(static_cast<double>(deferred_txns_));
  redo_obs().txns_replayed.set(0.0);
  redo_obs().pending.set(static_cast<double>(deferred_writes_));
  return Status::ok();
}

void RedoIndex::apply(PendingWrite& w, storage::ObjectStore& store,
                      storage::BPlusTree* index, bool ondemand) {
  if (w.applied) return;
  w.applied = true;  // the watermark: set exactly once, under commit_mu_
  if (w.rec.type == RecordType::kDelete) {
    store.tombstone(w.rec.oid, w.serial_ts);
    if (w.rec.has_key && index) index->erase(w.rec.key);
  } else {
    store.upsert(w.rec.oid, w.rec.after, w.serial_ts);
    if (w.rec.has_key && index) {
      if (!index->insert(w.rec.key, w.rec.oid)) {
        index->update(w.rec.key, w.rec.oid);
      }
    }
  }
  if (ondemand) {
    ++ondemand_applied_;
    redo_obs().ondemand.inc();
  } else {
    ++background_applied_;
    redo_obs().background.inc();
  }
  if (auto it = remaining_.find(w.seq);
      it != remaining_.end() && --it->second == 0) {
    remaining_.erase(it);
    ++txns_done_;
    if ((txns_done_ & 0xff) == 0 || remaining_.empty()) {
      redo_obs().txns_replayed.set(static_cast<double>(txns_done_));
    }
  }
  const auto left = pending_writes_.fetch_sub(1, std::memory_order_acq_rel) - 1;
  if ((left & 0xff) == 0) redo_obs().pending.set(static_cast<double>(left));
}

void RedoIndex::ensure_recovered(ObjectId oid, storage::ObjectStore& store,
                                 storage::BPlusTree* index) {
  if (!active()) return;
  auto it = chains_.find(oid);
  if (it == chains_.end()) return;
  for (const std::uint32_t idx : it->second) {
    apply(writes_[idx], store, index, /*ondemand=*/true);
  }
  chains_.erase(it);
}

void RedoIndex::ensure_recovered_key(const storage::IndexKey& key,
                                     storage::ObjectStore& store,
                                     storage::BPlusTree* index) {
  if (!active()) return;
  if (auto kit = key_writers_.find(key); kit != key_writers_.end()) {
    ensure_recovered(kit->second, store, index);
  }
  if (index) {
    if (const auto oid = index->find(key)) {
      ensure_recovered(*oid, store, index);
    }
  }
}

std::size_t RedoIndex::sweep(std::size_t max_txns,
                             storage::ObjectStore& store,
                             storage::BPlusTree* index) {
  std::size_t txns = 0;
  ValidationTs cur = 0;
  while (sweep_pos_ < writes_.size()) {
    PendingWrite& w = writes_[sweep_pos_];
    if (w.seq != cur) {
      if (txns >= max_txns) break;
      cur = w.seq;
      ++txns;
    }
    apply(w, store, index, /*ondemand=*/false);
    ++sweep_pos_;
  }
  if (sweep_pos_ == writes_.size()) {
    chains_.clear();
    key_writers_.clear();
    redo_obs().txns_replayed.set(static_cast<double>(txns_done_));
    redo_obs().pending.set(0.0);
  }
  return txns;
}

void RedoIndex::drain(storage::ObjectStore& store, storage::BPlusTree* index) {
  while (sweep(1024, store, index) != 0) {
  }
}

void RedoIndex::retire() {
  if (active()) return;
  writes_.clear();
  writes_.shrink_to_fit();
  chains_.clear();
  key_writers_.clear();
  remaining_.clear();
  sweep_pos_ = 0;
}

void RedoIndex::abandon() {
  pending_writes_.store(0, std::memory_order_release);
  writes_.clear();
  writes_.shrink_to_fit();
  chains_.clear();
  key_writers_.clear();
  remaining_.clear();
  sweep_pos_ = 0;
  redo_obs().pending.set(0.0);
}

}  // namespace rodain::log
