// Crash recovery from the on-disk redo log (paper §3–4).
//
// The mirror stores the log already in validation order, so recovery is a
// single forward pass that applies each transaction when its commit record
// is seen and skips transactions without one. A log written by a lone node
// can be mildly out of order (write phases overlap), so committed
// transactions are applied in validation-sequence order regardless; torn
// tails are tolerated (they are the un-flushed end of the stream).
#pragma once

#include <span>
#include <string>

#include "rodain/common/status.hpp"
#include "rodain/log/record.hpp"
#include "rodain/log/redo_index.hpp"
#include "rodain/storage/btree.hpp"
#include "rodain/storage/object_store.hpp"

namespace rodain::log {

struct RecoveryStats {
  std::uint64_t committed_applied{0};   ///< transactions replayed
  std::uint64_t writes_applied{0};      ///< after-images installed
  std::uint64_t incomplete_dropped{0};  ///< txns without a commit record
  std::uint64_t records_read{0};
  ValidationTs last_seq{0};  ///< highest applied validation sequence
  bool torn_tail{false};     ///< log ended mid-record (expected after crash)

  // Segmented restart (recover_checkpoint_and_segments).
  std::uint64_t segments_decoded{0};
  std::uint64_t segments_skipped{0};  ///< sealed at/below the boundary
  std::uint64_t log_disk_bytes{0};    ///< bytes decoded from surviving segments
  double checkpoint_load_ms{0};
  double decode_ms{0};
  double apply_ms{0};
  /// Checkpoint was present but unreadable; recovery fell back to replaying
  /// the whole log from an empty store instead of aborting.
  bool checkpoint_fallback{false};
  /// Smallest commit seq actually replayed past the boundary, and the
  /// segment file that supplied it — when a recovery is long (especially a
  /// checkpoint_fallback replay-from-empty), this names which segment the
  /// replay had to reach back to. Zero / empty when nothing was replayed.
  ValidationTs oldest_replayed_seq{0};
  std::string oldest_seq_segment;

  // Instant recovery (recover_instant_segments): installs are deferred into
  // a RedoIndex instead of applied, so committed_applied stays 0 and these
  // report the parked backlog.
  bool instant{false};
  std::uint64_t deferred_txns{0};
  std::uint64_t deferred_writes{0};
};

/// Replay decoded records into `store` (which is NOT cleared — load a
/// checkpoint first if one exists, then replay the tail).
/// Records with seq <= `already_applied` are skipped (checkpoint overlap).
Result<RecoveryStats> replay_records(std::span<const Record> records,
                                     storage::ObjectStore& store,
                                     ValidationTs already_applied = 0,
                                     storage::BPlusTree* index = nullptr);

/// Decode + replay a raw log buffer.
Result<RecoveryStats> recover_from_buffer(std::span<const std::byte> data,
                                          storage::ObjectStore& store,
                                          ValidationTs already_applied = 0,
                                          storage::BPlusTree* index = nullptr);

/// Read the log file and replay it.
Result<RecoveryStats> recover_from_file(const std::string& path,
                                        storage::ObjectStore& store,
                                        ValidationTs already_applied = 0,
                                        storage::BPlusTree* index = nullptr);

/// Full cold-start recovery: load the checkpoint if one exists (the store
/// is cleared by it), then replay the log tail past the checkpoint
/// boundary. A missing checkpoint means replay-from-empty; a missing log
/// means checkpoint-only. Returns the replay stats (last_seq covers both
/// sources, so the node can continue its validation sequence from
/// last_seq + 1).
Result<RecoveryStats> recover_checkpoint_and_log(
    const std::string& checkpoint_path, const std::string& log_path,
    storage::ObjectStore& store, storage::BPlusTree* index = nullptr);

/// Segmented cold start: load the checkpoint, then replay only the
/// segments in `log_dir` that survive the checkpoint boundary (sealed
/// segments whose last_seq is at or below it are skipped — truncation
/// usually deleted them already). Surviving segments decode in parallel
/// across up to `decode_threads` workers before the ordered
/// single-threaded apply; per-phase timings land in the stats and the
/// `log.recovery_replay_ms` gauge. An unreadable checkpoint falls back to
/// log-only replay, like recover_checkpoint_and_log.
Result<RecoveryStats> recover_checkpoint_and_segments(
    const std::string& checkpoint_path, const std::string& log_dir,
    storage::ObjectStore& store, storage::BPlusTree* index = nullptr,
    unsigned decode_threads = 4);

/// Instant restart (DESIGN.md §12): load the checkpoint and decode the
/// surviving segments exactly like recover_checkpoint_and_segments, but
/// build `redo` — the per-record deferred-replay index — instead of
/// applying anything. The caller serves immediately and replays on demand /
/// in the background. stats.last_seq still covers checkpoint + log, so the
/// validation sequence continues from last_seq + 1 as with a full replay.
Result<RecoveryStats> recover_instant_segments(
    const std::string& checkpoint_path, const std::string& log_dir,
    storage::ObjectStore& store, RedoIndex& redo,
    storage::BPlusTree* index = nullptr, unsigned decode_threads = 4);

}  // namespace rodain::log
