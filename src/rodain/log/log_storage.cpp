#include "rodain/log/log_storage.hpp"

#include <cassert>
#include <cstdio>
#include <unistd.h>

namespace rodain::log {

// ---------------------------------------------------------------- memory

void MemoryLogStorage::append(const Record& r) { records_.push_back(r); }

void MemoryLogStorage::flush(std::function<void(Status)> done) {
  durable_ = records_.size();
  if (done) done(Status::ok());
}

// ------------------------------------------------------------------ file

Result<std::unique_ptr<FileLogStorage>> FileLogStorage::open(
    const std::string& path, bool fsync_on_flush) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (!f) {
    return Status::error(ErrorCode::kIoError, "cannot open log " + path);
  }
  return std::unique_ptr<FileLogStorage>(
      new FileLogStorage(f, fsync_on_flush));
}

FileLogStorage::~FileLogStorage() {
  if (file_) {
    std::fflush(file_);
    std::fclose(file_);
  }
}

void FileLogStorage::append(const Record& r) {
  encode_record(r, pending_);
  ++appended_;
  ++buffered_;
}

void FileLogStorage::flush(std::function<void(Status)> done) {
  Status status = Status::ok();
  if (pending_.size() > 0) {
    const auto view = pending_.view();
    if (std::fwrite(view.data(), 1, view.size(), file_) != view.size() ||
        std::fflush(file_) != 0) {
      status = Status::error(ErrorCode::kIoError, "log write failed");
    } else if (fsync_ && ::fsync(::fileno(file_)) != 0) {
      status = Status::error(ErrorCode::kIoError, "log fsync failed");
    }
    pending_.clear();
  }
  if (status) {
    durable_ += buffered_;
    buffered_ = 0;
  }
  if (done) done(status);
}

Result<std::vector<Record>> FileLogStorage::read_all(const std::string& path,
                                                     bool* torn) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return Status::error(ErrorCode::kNotFound, "cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  const long len = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<std::byte> buf(static_cast<std::size_t>(len < 0 ? 0 : len));
  const bool ok = std::fread(buf.data(), 1, buf.size(), f) == buf.size();
  std::fclose(f);
  if (!ok) return Status::error(ErrorCode::kIoError, "short log read");
  return decode_records(buf, torn);
}

// ------------------------------------------------------------------ sim

void SimDiskLogStorage::append(const Record& r) {
  records_.push_back(r);
  ++appended_;
  unflushed_bytes_ += r.encoded_size();
}

void SimDiskLogStorage::flush(std::function<void(Status)> done) {
  if (appended_ == durable_ && queue_.empty()) {
    // Nothing pending and the device is idle for this range.
    if (done) done(Status::ok());
    return;
  }
  // Group commit: fold into the last *pending* operation. The queue front
  // is already on the platter when the device is busy — only later entries
  // can still absorb work.
  const bool back_is_pending =
      !queue_.empty() && !(device_busy_ && queue_.size() == 1);
  if (options_.coalesce_flushes && back_is_pending) {
    FlushReq& back = queue_.back();
    back.upto = appended_;
    back.bytes += unflushed_bytes_;
    unflushed_bytes_ = 0;
    if (done) back.callbacks.push_back(std::move(done));
    return;
  }
  FlushReq req;
  req.upto = appended_;
  req.bytes = unflushed_bytes_;
  unflushed_bytes_ = 0;
  if (done) req.callbacks.push_back(std::move(done));
  queue_.push_back(std::move(req));
  start_next();
}

void SimDiskLogStorage::start_next() {
  if (device_busy_ || queue_.empty()) return;
  device_busy_ = true;
  const FlushReq& req = queue_.front();
  const auto transfer_us = static_cast<std::int64_t>(
      static_cast<double>(req.bytes) / options_.throughput_bytes_per_sec * 1e6);
  const Duration op_time = options_.seek_time + Duration::micros(transfer_us);
  busy_ += op_time;
  sim_.schedule_after(op_time, [this] {
    FlushReq req2 = std::move(queue_.front());
    queue_.pop_front();
    durable_ = std::max(durable_, req2.upto);
    device_busy_ = false;
    for (auto& cb : req2.callbacks) cb(Status::ok());
    start_next();
  });
}

}  // namespace rodain::log
