#include "rodain/log/log_storage.hpp"

#include <cassert>
#include <cstdio>
#include <unistd.h>

namespace rodain::log {

// ---------------------------------------------------------------- memory

void MemoryLogStorage::append(const Record& r) { records_.push_back(r); }

void MemoryLogStorage::flush(std::function<void(Status)> done) {
  if (inject_errors_ > 0) {
    --inject_errors_;
    if (done) done(Status::error(ErrorCode::kIoError, "injected flush error"));
    return;
  }
  durable_ = records_.size();
  if (done) done(Status::ok());
}

std::uint64_t MemoryLogStorage::truncate_upto(ValidationTs boundary) {
  // Drop the durable prefix that ends at the last commit covered by the
  // checkpoint; commits arrive in seq order on the apply path, so stop at
  // the first one above the boundary.
  std::size_t cut = 0;
  for (std::size_t i = 0; i < durable_; ++i) {
    if (!records_[i].is_commit()) continue;
    if (records_[i].seq > boundary) break;
    cut = i + 1;
  }
  if (cut == 0) return 0;
  records_.erase(records_.begin(),
                 records_.begin() + static_cast<std::ptrdiff_t>(cut));
  durable_ -= cut;
  return cut;
}

// ------------------------------------------------------------------ file

Result<std::unique_ptr<FileLogStorage>> FileLogStorage::open(
    const std::string& path, bool fsync_on_flush) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (!f) {
    return Status::error(ErrorCode::kIoError, "cannot open log " + path);
  }
  // Unbuffered: fwrite's return value is then authoritative about what
  // reached the kernel, so a failed flush can retry exactly the unwritten
  // suffix without duplicating bytes through a half-drained stdio buffer.
  std::setvbuf(f, nullptr, _IONBF, 0);
  return std::unique_ptr<FileLogStorage>(
      new FileLogStorage(f, fsync_on_flush));
}

FileLogStorage::~FileLogStorage() {
  if (file_) {
    std::fflush(file_);
    std::fclose(file_);
  }
}

void FileLogStorage::append(const Record& r) {
  encode_record(r, pending_);
  ++appended_;
  ++buffered_;
}

void FileLogStorage::flush(std::function<void(Status)> done) {
  Status status = Status::ok();
  const auto view = pending_.view();
  while (pending_written_ < view.size()) {
    std::size_t n = 0;
    if (inject_errors_ > 0) {
      --inject_errors_;
    } else {
      n = std::fwrite(view.data() + pending_written_, 1,
                      view.size() - pending_written_, file_);
    }
    pending_written_ += n;
    if (n == 0) {
      std::clearerr(file_);
      status = Status::error(ErrorCode::kIoError, "log write failed");
      break;
    }
  }
  if (status && pending_.size() > 0) {
    if (std::fflush(file_) != 0) {
      status = Status::error(ErrorCode::kIoError, "log write failed");
    } else if (fsync_ && ::fsync(::fileno(file_)) != 0) {
      status = Status::error(ErrorCode::kIoError, "log fsync failed");
    }
  }
  if (status) {
    // Everything pending reached the file; only now may the records count
    // as durable. On failure both the bytes and the buffered count stay for
    // the retry — dropping the bytes while still counting them would let a
    // later empty flush advance durable_ past records never written.
    pending_.clear();
    pending_written_ = 0;
    durable_ += buffered_;
    buffered_ = 0;
  }
  if (done) done(status);
}

Result<std::vector<Record>> FileLogStorage::read_all(const std::string& path,
                                                     bool* torn) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return Status::error(ErrorCode::kNotFound, "cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  const long len = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<std::byte> buf(static_cast<std::size_t>(len < 0 ? 0 : len));
  const bool ok = std::fread(buf.data(), 1, buf.size(), f) == buf.size();
  std::fclose(f);
  if (!ok) return Status::error(ErrorCode::kIoError, "short log read");
  return decode_records(buf, torn);
}

// ------------------------------------------------------------------ sim

void SimDiskLogStorage::append(const Record& r) {
  records_.push_back(r);
  ++appended_;
  unflushed_bytes_ += r.encoded_size();
}

void SimDiskLogStorage::flush(std::function<void(Status)> done) {
  if (appended_ == durable_ && queue_.empty()) {
    // Nothing pending and the device is idle for this range.
    if (done) done(Status::ok());
    return;
  }
  // Group commit: fold into the last *pending* operation. The queue front
  // is already on the platter when the device is busy — only later entries
  // can still absorb work.
  const bool back_is_pending =
      !queue_.empty() && !(device_busy_ && queue_.size() == 1);
  if (options_.coalesce_flushes && back_is_pending) {
    FlushReq& back = queue_.back();
    back.upto = appended_;
    back.bytes += unflushed_bytes_;
    unflushed_bytes_ = 0;
    if (done) back.callbacks.push_back(std::move(done));
    return;
  }
  FlushReq req;
  req.upto = appended_;
  req.bytes = unflushed_bytes_;
  unflushed_bytes_ = 0;
  if (done) req.callbacks.push_back(std::move(done));
  queue_.push_back(std::move(req));
  start_next();
}

std::uint64_t SimDiskLogStorage::truncate_upto(ValidationTs boundary) {
  // Trim the durable prefix that the checkpoint covers. Only durable
  // records go: the suffix past durable_ is the data-loss window that the
  // C5 measurement reads, and in-flight flush requests reference absolute
  // record counts that are re-based below.
  std::size_t cut = 0;
  for (std::size_t i = 0; i < durable_; ++i) {
    if (!records_[i].is_commit()) continue;
    if (records_[i].seq > boundary) break;
    cut = i + 1;
  }
  if (cut == 0) return 0;
  records_.erase(records_.begin(),
                 records_.begin() + static_cast<std::ptrdiff_t>(cut));
  appended_ -= cut;
  durable_ -= cut;
  truncated_ += cut;
  for (FlushReq& req : queue_) req.upto -= std::min<Lsn>(req.upto, cut);
  return cut;
}

void SimDiskLogStorage::start_next() {
  if (device_busy_ || queue_.empty()) return;
  device_busy_ = true;
  const FlushReq& req = queue_.front();
  const auto transfer_us = static_cast<std::int64_t>(
      static_cast<double>(req.bytes) / options_.throughput_bytes_per_sec * 1e6);
  const Duration op_time = options_.seek_time + Duration::micros(transfer_us);
  busy_ += op_time;
  sim_.schedule_after(op_time, [this] {
    FlushReq req2 = std::move(queue_.front());
    queue_.pop_front();
    durable_ = std::max(durable_, req2.upto);
    device_busy_ = false;
    for (auto& cb : req2.callbacks) cb(Status::ok());
    start_next();
  });
}

}  // namespace rodain::log
