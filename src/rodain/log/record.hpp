// Redo log records (paper §3).
//
// Deferred writes mean the log is redo-only: per transaction a sequence of
// after-images generated during the write phase, terminated by a commit
// record carrying the dense validation sequence number. There is nothing to
// undo, ever — recovery and the mirror only apply fully-committed
// transactions.
//
// Wire format per record: [u32 frame_len][payload][u32 crc32c(payload)],
// so torn tails and bit rot are detected, never misapplied.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rodain/common/serialization.hpp"
#include "rodain/common/status.hpp"
#include "rodain/common/types.hpp"
#include "rodain/storage/btree.hpp"
#include "rodain/storage/value.hpp"

namespace rodain::log {

enum class RecordType : std::uint8_t {
  kWriteImage = 1,  ///< (txn, oid, after-image [, index key])
  kCommit = 2,      ///< (txn, validation seq, serialization ts, #writes)
  kDelete = 3,      ///< (txn, oid [, index key]) — tombstone
};

struct Record {
  RecordType type{RecordType::kWriteImage};
  TxnId txn{kInvalidTxn};

  // kWriteImage / kDelete
  ObjectId oid{kInvalidObject};
  storage::Value after;  ///< kWriteImage only
  /// Secondary-index entry carried with the change so the mirror and
  /// recovery can maintain the index (subscriber provisioning).
  bool has_key{false};
  storage::IndexKey key{};

  // kCommit
  ValidationTs seq{kInvalidValidationTs};
  ValidationTs serial_ts{kInvalidValidationTs};
  std::uint32_t write_count{0};

  [[nodiscard]] static Record write_image(TxnId txn, ObjectId oid,
                                          storage::Value after);
  [[nodiscard]] static Record insert_image(TxnId txn, ObjectId oid,
                                           storage::Value after,
                                           const storage::IndexKey& key);
  [[nodiscard]] static Record tombstone(TxnId txn, ObjectId oid);
  [[nodiscard]] static Record tombstone(TxnId txn, ObjectId oid,
                                        const storage::IndexKey& key);
  [[nodiscard]] static Record commit(TxnId txn, ValidationTs seq,
                                     ValidationTs serial_ts,
                                     std::uint32_t write_count);

  /// Approximate encoded size (for disk-throughput modelling).
  [[nodiscard]] std::size_t encoded_size() const;

  [[nodiscard]] bool is_commit() const { return type == RecordType::kCommit; }

  friend bool operator==(const Record& a, const Record& b);
};

/// Append one framed record.
void encode_record(const Record& r, ByteWriter& out);

/// Decode the next framed record. Distinguishes a clean end (kOk with
/// `end=true`), a torn tail (kOutOfRange — incomplete frame at the buffer
/// end), and corruption (kCorruption — CRC or structure mismatch).
struct DecodeResult {
  Status status;
  bool end{false};
};
DecodeResult decode_record(ByteReader& in, Record& out);

/// Encode a batch (network shipping / disk buffering).
[[nodiscard]] std::vector<std::byte> encode_records(std::span<const Record> records);

/// Decode a whole buffer; stops at a torn tail (reported via `torn`).
Result<std::vector<Record>> decode_records(std::span<const std::byte> data,
                                           bool* torn = nullptr);

}  // namespace rodain::log
