#include "rodain/log/writer.hpp"

#include <cassert>

#include "rodain/common/diag.hpp"

namespace rodain::log {

LogWriter::LogWriter(LogMode mode, LogStorage* disk, Shipper* shipper)
    : mode_(mode), disk_(disk), shipper_(shipper) {
  assert(mode != LogMode::kDirectDisk || disk != nullptr);
  assert(mode != LogMode::kMirror || shipper != nullptr);
}

void LogWriter::set_mode(LogMode mode) {
  assert(mode != LogMode::kDirectDisk || disk_ != nullptr);
  assert(mode != LogMode::kMirror || shipper_ != nullptr);
  mode_ = mode;
}

void LogWriter::submit(ValidationTs seq, std::vector<Record> records,
                       std::function<void()> on_durable) {
  tail_[seq] = records;
  while (tail_.size() > kTailRetention) tail_.erase(tail_.begin());
  switch (mode_) {
    case LogMode::kOff:
      ++counters_.via_none;
      if (on_durable) on_durable();
      return;
    case LogMode::kMirror: {
      ++counters_.via_mirror;
      shipper_->ship(records);
      pending_.emplace(seq, Pending{std::move(records), std::move(on_durable)});
      return;
    }
    case LogMode::kDirectDisk:
      ++counters_.via_disk;
      submit_to_disk(std::move(records), std::move(on_durable));
      return;
  }
}

void LogWriter::submit_to_disk(std::vector<Record> records,
                               std::function<void()> on_durable) {
  for (const Record& r : records) disk_->append(r);
  disk_->flush([cb = std::move(on_durable)](Status s) {
    if (!s) RODAIN_ERROR("log flush failed: %s", s.to_string().c_str());
    if (cb) cb();
  });
}

void LogWriter::on_mirror_ack(ValidationTs seq) {
  auto it = pending_.find(seq);
  if (it == pending_.end()) return;  // late/duplicate ack after reroute
  auto cb = std::move(it->second.on_durable);
  pending_.erase(it);
  if (cb) cb();
}

std::vector<Record> LogWriter::tail_since(ValidationTs seq) const {
  std::vector<Record> out;
  for (auto it = tail_.upper_bound(seq); it != tail_.end(); ++it) {
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  return out;
}

void LogWriter::on_mirror_lost() {
  RODAIN_INFO("log writer: mirror lost, rerouting %zu pending txns to disk",
              pending_.size());
  set_mode(LogMode::kDirectDisk);
  // Re-log in validation order so the local log stays ordered.
  auto pending = std::move(pending_);
  pending_.clear();
  for (auto& [seq, p] : pending) {
    ++counters_.rerouted;
    submit_to_disk(std::move(p.records), std::move(p.on_durable));
  }
}

}  // namespace rodain::log
