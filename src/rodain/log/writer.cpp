#include "rodain/log/writer.hpp"

#include <cassert>

#include "rodain/common/diag.hpp"
#include "rodain/obs/obs.hpp"

namespace rodain::log {

namespace {
struct WriterMetrics {
  obs::Counter& via_mirror = obs::metrics().counter("log.submit.via_mirror");
  obs::Counter& via_disk = obs::metrics().counter("log.submit.via_disk");
  obs::Counter& via_none = obs::metrics().counter("log.submit.via_none");
  obs::Counter& rerouted = obs::metrics().counter("log.rerouted");
  obs::Counter& resent = obs::metrics().counter("log.resent");
  obs::Counter& ack_timeouts = obs::metrics().counter("log.ack_timeouts");
  obs::Gauge& pending_acks = obs::metrics().gauge("log.pending_acks");
  /// One message round-trip from shipping a transaction's records to the
  /// mirror's commit ack — the paper's commit-path cost.
  obs::Timer& commit_rtt = obs::metrics().timer("repl.commit_rtt_us");
};
WriterMetrics& wm() {
  static WriterMetrics m;
  return m;
}
}  // namespace

LogWriter::LogWriter(LogMode mode, LogStorage* disk, Shipper* shipper)
    : mode_(mode), disk_(disk), shipper_(shipper) {
  assert(mode != LogMode::kDirectDisk || disk != nullptr);
  assert(mode != LogMode::kMirror || shipper != nullptr);
}

void LogWriter::set_mode(LogMode mode) {
  assert(mode != LogMode::kDirectDisk || disk_ != nullptr);
  assert(mode != LogMode::kMirror || shipper_ != nullptr);
  mode_ = mode;
}

void LogWriter::submit(ValidationTs seq, std::vector<Record> records,
                       std::function<void()> on_durable) {
  tail_[seq] = records;
  while (tail_.size() > kTailRetention) tail_.erase(tail_.begin());
  switch (mode_) {
    case LogMode::kOff:
      ++counters_.via_none;
      wm().via_none.inc();
      if (on_durable) on_durable();
      return;
    case LogMode::kMirror: {
      ++counters_.via_mirror;
      wm().via_mirror.inc();
      std::int64_t shipped_at = 0;
      {
        obs::ScopedSpan span(obs::tracer(), obs::Phase::kLogShip, seq);
        if (obs::enabled()) shipped_at = obs::now_us();
        shipper_->ship(records);
      }
      pending_.emplace(seq,
                       Pending{std::move(records), std::move(on_durable),
                               shipped_at,
                               clock_ ? clock_->now() : TimePoint{}});
      wm().pending_acks.set(static_cast<double>(pending_.size()));
      return;
    }
    case LogMode::kDirectDisk:
      ++counters_.via_disk;
      wm().via_disk.inc();
      submit_to_disk(std::move(records), std::move(on_durable));
      return;
  }
}

void LogWriter::submit_to_disk(std::vector<Record> records,
                               std::function<void()> on_durable) {
  for (const Record& r : records) disk_->append(r);
  disk_->flush([cb = std::move(on_durable)](Status s) {
    if (!s) RODAIN_ERROR("log flush failed: %s", s.to_string().c_str());
    if (cb) cb();
  });
}

void LogWriter::on_mirror_ack(ValidationTs seq) {
  auto it = pending_.find(seq);
  if (it == pending_.end()) return;  // late/duplicate ack after reroute
  if (it->second.shipped_at_us != 0) {
    const std::int64_t now = obs::now_us();
    if (obs::tracing_enabled()) {
      obs::tracer().record_span(obs::Phase::kMirrorAck,
                                it->second.shipped_at_us, now, seq);
    }
    wm().commit_rtt.observe(
        Duration::micros(now - it->second.shipped_at_us));
  }
  auto cb = std::move(it->second.on_durable);
  pending_.erase(it);
  wm().pending_acks.set(static_cast<double>(pending_.size()));
  if (cb) cb();
}

std::vector<Record> LogWriter::tail_since(ValidationTs seq) const {
  std::vector<Record> out;
  for (auto it = tail_.upper_bound(seq); it != tail_.end(); ++it) {
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  return out;
}

void LogWriter::configure_ack_timeout(const Clock* clock, Duration timeout,
                                      std::function<void()> on_timeout) {
  clock_ = clock;
  ack_timeout_ = timeout;
  on_ack_timeout_ = std::move(on_timeout);
}

bool LogWriter::check_ack_timeouts() {
  if (mode_ != LogMode::kMirror || pending_.empty() || !clock_ ||
      !ack_timeout_.is_positive()) {
    return false;
  }
  const Pending& oldest = pending_.begin()->second;
  if (clock_->now() - oldest.shipped_at <= ack_timeout_) return false;
  ++counters_.ack_timeouts;
  wm().ack_timeouts.inc();
  RODAIN_WARN("log writer: commit ack timeout (%zu pending, oldest seq %llu)",
              pending_.size(),
              static_cast<unsigned long long>(pending_.begin()->first));
  // The escalation hook typically calls on_mirror_lost(), clearing
  // pending_ — so one firing cannot repeat for the same transactions.
  if (on_ack_timeout_) on_ack_timeout_();
  return true;
}

std::size_t LogWriter::resend_pending() {
  if (mode_ != LogMode::kMirror || !shipper_) return 0;
  std::size_t n = 0;
  for (auto& [seq, p] : pending_) {
    shipper_->ship(p.records);
    ++n;
    ++counters_.resent;
    wm().resent.inc();
  }
  if (n > 0) {
    RODAIN_INFO("log writer: re-shipped %zu unacked txns after reconnect", n);
  }
  return n;
}

void LogWriter::on_mirror_lost() {
  RODAIN_INFO("log writer: mirror lost, rerouting %zu pending txns to disk",
              pending_.size());
  set_mode(LogMode::kDirectDisk);
  // Re-log in validation order so the local log stays ordered.
  auto pending = std::move(pending_);
  pending_.clear();
  wm().pending_acks.set(0.0);
  for (auto& [seq, p] : pending) {
    ++counters_.rerouted;
    wm().rerouted.inc();
    submit_to_disk(std::move(p.records), std::move(p.on_durable));
  }
}

}  // namespace rodain::log
