#include "rodain/log/writer.hpp"

#include <algorithm>
#include <cassert>

#include "rodain/common/diag.hpp"
#include "rodain/obs/obs.hpp"

namespace rodain::log {

namespace {
struct WriterMetrics {
  obs::Counter& via_mirror = obs::metrics().counter("log.submit.via_mirror");
  obs::Counter& via_disk = obs::metrics().counter("log.submit.via_disk");
  obs::Counter& via_none = obs::metrics().counter("log.submit.via_none");
  obs::Counter& rerouted = obs::metrics().counter("log.rerouted");
  obs::Counter& resent = obs::metrics().counter("log.resent");
  obs::Counter& ack_timeouts = obs::metrics().counter("log.ack_timeouts");
  obs::Gauge& pending_acks = obs::metrics().gauge("log.pending_acks");
  /// Group-commit shipping: frames, txns and bytes per frame, and which
  /// trigger drained each batch (DESIGN.md §9).
  obs::Counter& batch_shipped = obs::metrics().counter("log.batch.shipped");
  obs::Counter& batch_txns = obs::metrics().counter("log.batch.txns");
  obs::Counter& batch_bytes = obs::metrics().counter("log.batch.bytes");
  obs::Counter& batch_fill_txns =
      obs::metrics().counter("log.batch.fill.txns");
  obs::Counter& batch_fill_bytes =
      obs::metrics().counter("log.batch.fill.bytes");
  obs::Counter& batch_fill_delay =
      obs::metrics().counter("log.batch.fill.delay");
  obs::Counter& batch_fill_forced =
      obs::metrics().counter("log.batch.fill.forced");
  obs::Gauge& batch_buffered = obs::metrics().gauge("log.batch.buffered_txns");
  /// Cumulative acks: messages received vs pending txns they released.
  obs::Counter& acks_received = obs::metrics().counter("repl.acks_received");
  obs::Counter& ack_released =
      obs::metrics().counter("repl.ack_released_txns");
  /// One message round-trip from shipping a transaction's records to the
  /// mirror's commit ack — the paper's commit-path cost.
  obs::Timer& commit_rtt = obs::metrics().timer("repl.commit_rtt_us");
};
WriterMetrics& wm() {
  static WriterMetrics m;
  return m;
}
}  // namespace

LogWriter::LogWriter(LogMode mode, LogStorage* disk, Shipper* shipper)
    : mode_(mode), disk_(disk), shipper_(shipper) {
  assert(mode != LogMode::kDirectDisk || disk != nullptr);
  assert(mode != LogMode::kMirror || shipper != nullptr);
}

void LogWriter::set_mode(LogMode mode) {
  assert(mode != LogMode::kDirectDisk || disk_ != nullptr);
  assert(mode != LogMode::kMirror || shipper_ != nullptr);
  mode_.store(mode, std::memory_order_relaxed);
}

void LogWriter::configure_batching(
    const Clock* clock, BatchOptions options,
    std::function<void(Duration)> schedule_flush) {
  batch_opts_ = options;
  batch_clock_ = clock;
  schedule_flush_ = std::move(schedule_flush);
  batch_delay_ = options.max_delay;
}

void LogWriter::mark_stage(obs::StageClock* stages, obs::Stage s) const {
  if (stages && stage_clock_ && obs::enabled()) {
    stages->enter(s, stage_clock_->now().us);
  }
}

void LogWriter::submit(ValidationTs seq, std::vector<Record> records,
                       std::function<void()> on_durable,
                       obs::StageClock* stages) {
  tail_[seq] = records;
  while (tail_.size() > kTailRetention) tail_.erase(tail_.begin());
  switch (mode()) {
    case LogMode::kOff:
      ++counters_.via_none;
      wm().via_none.inc();
      if (on_durable) on_durable();
      return;
    case LogMode::kMirror: {
      ++counters_.via_mirror;
      wm().via_mirror.inc();
      const std::int64_t shipped_at = obs::enabled() ? obs::now_us() : 0;
      std::size_t bytes = 0;
      for (const Record& r : records) bytes += r.encoded_size();
      // Register before shipping: a synchronous (loopback) ack must find
      // the pending entry, or the durable callback would be lost.
      batch_records_.insert(batch_records_.end(), records.begin(),
                            records.end());
      batch_stages_.push_back(stages);
      pending_.emplace(seq,
                       Pending{std::move(records), std::move(on_durable),
                               shipped_at,
                               clock_ ? clock_->now() : TimePoint{}, stages});
      wm().pending_acks.set(static_cast<double>(pending_.size()));
      ++batch_txns_;
      batch_bytes_ += bytes;
      wm().batch_buffered.set(static_cast<double>(batch_txns_));
      if (batch_opts_.max_txns != 0 && batch_txns_ >= batch_opts_.max_txns) {
        drain_batch(batch_opts_.max_txns <= 1 ? FillCause::kForced
                                              : FillCause::kTxns);
      } else if (batch_opts_.max_bytes != 0 &&
                 batch_bytes_ >= batch_opts_.max_bytes) {
        drain_batch(FillCause::kBytes);
      } else if (batch_txns_ == 1 && batch_opts_.max_delay.is_positive() &&
                 batch_clock_) {
        // First txn of a fresh batch: open the delay window.
        batch_deadline_ = batch_clock_->now() + batch_delay_;
        if (schedule_flush_) schedule_flush_(batch_delay_);
      }
      return;
    }
    case LogMode::kDirectDisk:
      ++counters_.via_disk;
      wm().via_disk.inc();
      submit_to_disk(std::move(records), std::move(on_durable), stages);
      return;
  }
}

void LogWriter::flush_batch() {
  if (batch_txns_ == 0) return;
  if (batch_deadline_ && batch_clock_ &&
      batch_clock_->now() < *batch_deadline_) {
    // The timer that called us was armed for an older batch that already
    // drained on a threshold; re-arm for this batch's remaining window.
    if (schedule_flush_) {
      schedule_flush_(*batch_deadline_ - batch_clock_->now());
      return;
    }
  }
  drain_batch(batch_deadline_ ? FillCause::kDelay : FillCause::kForced);
}

void LogWriter::drain_batch(FillCause cause) {
  if (batch_txns_ == 0) return;
  if (batch_opts_.adaptive_delay && batch_opts_.max_delay.is_positive()) {
    const Duration floor =
        std::max(Duration::micros(1), batch_opts_.max_delay / 8);
    if (cause == FillCause::kTxns || cause == FillCause::kBytes) {
      batch_delay_ = std::min(batch_opts_.max_delay, batch_delay_ * 2);
    } else if (cause == FillCause::kDelay &&
               batch_txns_ * 2 < batch_opts_.max_txns) {
      // The window expired under half full: light load should not pay it.
      batch_delay_ = std::max(floor, batch_delay_ / 2);
    }
  }
  ++counters_.batches_shipped;
  counters_.batch_txns_shipped += batch_txns_;
  counters_.batch_bytes_shipped += batch_bytes_;
  wm().batch_shipped.inc();
  wm().batch_txns.inc(batch_txns_);
  wm().batch_bytes.inc(batch_bytes_);
  switch (cause) {
    case FillCause::kTxns:
      ++counters_.batch_fill_txns;
      wm().batch_fill_txns.inc();
      break;
    case FillCause::kBytes:
      ++counters_.batch_fill_bytes;
      wm().batch_fill_bytes.inc();
      break;
    case FillCause::kDelay:
      ++counters_.batch_fill_delay;
      wm().batch_fill_delay.inc();
      break;
    case FillCause::kForced:
      ++counters_.batch_fill_forced;
      wm().batch_fill_forced.inc();
      break;
  }
  for (obs::StageClock* stages : batch_stages_) {
    mark_stage(stages, obs::Stage::kShip);
  }
  {
    // Ship from the writer-owned buffer: a synchronous ack may erase
    // pending_ entries while the shipper is still iterating the span.
    obs::ScopedSpan span(obs::tracer(), obs::Phase::kLogShip,
                        pending_.empty() ? 0 : pending_.rbegin()->first);
    shipper_->ship(batch_records_);
  }
  clear_batch();
}

void LogWriter::clear_batch() {
  batch_records_.clear();
  batch_stages_.clear();
  batch_txns_ = 0;
  batch_bytes_ = 0;
  batch_deadline_.reset();
  wm().batch_buffered.set(0.0);
}

void LogWriter::submit_to_disk(std::vector<Record> records,
                               std::function<void()> on_durable,
                               obs::StageClock* stages) {
  // No mirror round-trip: the flush is the ship for attribution purposes.
  mark_stage(stages, obs::Stage::kShip);
  for (const Record& r : records) disk_->append(r);
  disk_->flush([cb = std::move(on_durable)](Status s) {
    if (!s) RODAIN_ERROR("log flush failed: %s", s.to_string().c_str());
    if (cb) cb();
  });
}

void LogWriter::on_mirror_ack(ValidationTs seq) {
  // Cumulative: `seq` is the mirror's contiguous received-commit floor, so
  // every pending transaction at or below it is durable there. Release in
  // validation order.
  std::uint64_t released = 0;
  while (!pending_.empty() && pending_.begin()->first <= seq) {
    auto it = pending_.begin();
    mark_stage(it->second.stages, obs::Stage::kMirrorAck);
    if (it->second.shipped_at_us != 0) {
      const std::int64_t now = obs::now_us();
      if (obs::tracing_enabled()) {
        obs::tracer().record_span(obs::Phase::kMirrorAck,
                                  it->second.shipped_at_us, now, it->first);
      }
      wm().commit_rtt.observe(
          Duration::micros(now - it->second.shipped_at_us));
    }
    auto cb = std::move(it->second.on_durable);
    pending_.erase(it);
    ++released;
    if (cb) cb();
  }
  ++counters_.acks_received;
  counters_.ack_released_txns += released;
  wm().acks_received.inc();
  wm().ack_released.inc(released);
  wm().pending_acks.set(static_cast<double>(pending_.size()));
}

std::vector<Record> LogWriter::tail_since(ValidationTs seq) const {
  std::vector<Record> out;
  for (auto it = tail_.upper_bound(seq); it != tail_.end(); ++it) {
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  return out;
}

void LogWriter::configure_ack_timeout(const Clock* clock, Duration timeout,
                                      std::function<void()> on_timeout) {
  clock_ = clock;
  ack_timeout_ = timeout;
  on_ack_timeout_ = std::move(on_timeout);
}

bool LogWriter::check_ack_timeouts() {
  if (mode() != LogMode::kMirror || pending_.empty() || !clock_ ||
      !ack_timeout_.is_positive()) {
    return false;
  }
  const Pending& oldest = pending_.begin()->second;
  if (clock_->now() - oldest.shipped_at <= ack_timeout_) return false;
  ++counters_.ack_timeouts;
  wm().ack_timeouts.inc();
  RODAIN_WARN("log writer: commit ack timeout (%zu pending, oldest seq %llu)",
              pending_.size(),
              static_cast<unsigned long long>(pending_.begin()->first));
  // The escalation hook typically calls on_mirror_lost(), clearing
  // pending_ — so one firing cannot repeat for the same transactions.
  if (on_ack_timeout_) on_ack_timeout_();
  return true;
}

std::size_t LogWriter::resend_pending() {
  if (mode() != LogMode::kMirror || !shipper_ || pending_.empty()) {
    return 0;
  }
  // Everything still buffered is also in pending_; drop the buffer so the
  // combined resend below is its only shipment.
  clear_batch();
  std::vector<Record> combined;
  const TimePoint now = clock_ ? clock_->now() : TimePoint{};
  const std::int64_t now_us = obs::enabled() ? obs::now_us() : 0;
  for (auto& [seq, p] : pending_) {
    combined.insert(combined.end(), p.records.begin(), p.records.end());
    // Restart the ack-timeout window and the obs ship stamp together: a
    // resend is a fresh shipment, so the ship→ack latency must anchor at
    // this attempt (0 when obs is off, like submit()).
    p.shipped_at = now;
    p.shipped_at_us = now_us;
    ++counters_.resent;
    wm().resent.inc();
  }
  ++counters_.batches_shipped;
  counters_.batch_txns_shipped += pending_.size();
  ++counters_.batch_fill_forced;
  wm().batch_shipped.inc();
  wm().batch_txns.inc(pending_.size());
  wm().batch_fill_forced.inc();
  shipper_->ship(combined);
  RODAIN_INFO("log writer: re-shipped %zu unacked txns after reconnect",
              pending_.size());
  return pending_.size();
}

void LogWriter::on_mirror_lost() {
  RODAIN_INFO("log writer: mirror lost, rerouting %zu pending txns to disk",
              pending_.size());
  // Buffered-but-unshipped txns are in pending_ too; the reroute below
  // covers them, so the batch buffer is just dropped.
  clear_batch();
  set_mode(LogMode::kDirectDisk);
  // Re-log in validation order so the local log stays ordered.
  auto pending = std::move(pending_);
  pending_.clear();
  wm().pending_acks.set(0.0);
  for (auto& [seq, p] : pending) {
    ++counters_.rerouted;
    wm().rerouted.inc();
    submit_to_disk(std::move(p.records), std::move(p.on_durable), p.stages);
  }
}

}  // namespace rodain::log
