// Segmented redo log with checkpoint-coordinated truncation (DESIGN.md §10).
//
// One ever-growing log file makes restart time and disk footprint grow
// without bound. SegmentedLogStorage rotates the append stream into sealed
// segments (`log.<first_seq>.seg`) once the active segment crosses a size
// threshold. Each segment starts with a fixed header carrying the first and
// last validation sequence it covers (last == 0 while the segment is still
// active), so truncation after a checkpoint is a pure filename-level
// operation: every sealed segment whose last_seq is at or below the
// checkpoint boundary is deleted, and restart replays only the survivors.
//
// Records inside a segment keep the per-record CRC framing of record.hpp;
// the newest (unsealed) segment may end in a torn record after a crash,
// sealed segments must decode cleanly.
#pragma once

#include <string>
#include <vector>

#include "rodain/log/log_storage.hpp"

namespace rodain::log {

/// Size-threshold-rotated, truncatable on-disk redo log.
class SegmentedLogStorage final : public LogStorage {
 public:
  struct Options {
    /// Seal the active segment once it holds at least this many bytes of
    /// record data (checked at flush boundaries, so transactions never
    /// split across segments).
    std::size_t segment_bytes{4 * 1024 * 1024};
    bool fsync_on_flush{false};
  };

  struct SegmentInfo {
    std::string path;
    ValidationTs first_seq{0};  ///< header hint: first commit seq expected
    ValidationTs last_seq{0};   ///< 0 = unsealed (active, or crashed-active)
    std::uint64_t bytes{0};     ///< file size including the header
  };

  /// Opens `dir` (created if absent) and continues the newest unsealed
  /// segment, truncating a torn tail left by a crash so fresh appends never
  /// land behind garbage. Unsealed segments that are not the newest (a
  /// crash inside the seal-then-create window) are sealed in place.
  static Result<std::unique_ptr<SegmentedLogStorage>> open(
      const std::string& dir, Options options);
  static Result<std::unique_ptr<SegmentedLogStorage>> open(
      const std::string& dir) {
    return open(dir, Options{});
  }
  ~SegmentedLogStorage() override;

  void append(const Record& r) override;
  void flush(std::function<void(Status)> done) override;
  [[nodiscard]] Lsn appended() const override { return appended_; }
  [[nodiscard]] Lsn durable() const override { return durable_; }

  /// Delete every sealed segment whose last_seq is at or below `boundary`
  /// (checkpoint-coordinated truncation). Returns segments deleted.
  std::uint64_t truncate_upto(ValidationTs boundary) override;

  /// Seal the active segment now regardless of size (shutdown, tests).
  /// No-op while the active segment holds no commit record.
  Status seal_active();

  [[nodiscard]] std::uint64_t disk_bytes() const;
  [[nodiscard]] std::size_t segment_count() const;
  [[nodiscard]] const std::string& dir() const { return dir_; }

  /// True when open() found and discarded a torn tail (a crash mid-write).
  /// The trim happens before any reader sees the directory, so restart
  /// paths consult this to report the crash artifact they recovered from.
  [[nodiscard]] bool tail_trimmed_at_open() const { return tail_trimmed_; }

  /// Fault-injection hook (tests): the next `n` record-stream writes fail
  /// as if the device were full.
  void inject_write_error(std::size_t n) { inject_errors_ = n; }

  /// All segments in `dir`, ordered by first_seq. Unsealed segments report
  /// last_seq == 0. A missing directory is kNotFound.
  static Result<std::vector<SegmentInfo>> list_segments(const std::string& dir);

  /// Decode one segment's records. `torn` reports an incomplete tail —
  /// tolerated only for unsealed segments (callers decide).
  static Result<std::vector<Record>> read_segment(const std::string& path,
                                                  SegmentInfo* info = nullptr,
                                                  bool* torn = nullptr);

  /// Decode every surviving segment in order (tools, tests).
  static Result<std::vector<Record>> read_all(const std::string& dir,
                                              bool* torn = nullptr);

  static constexpr std::size_t kHeaderBytes = 32;

 private:
  SegmentedLogStorage(std::string dir, Options options)
      : dir_(std::move(dir)), options_(options) {}

  Status open_active(ValidationTs first_seq_hint);
  Status write_pending();
  Status seal_active_locked();
  void publish_gauges() const;

  std::string dir_;
  Options options_;
  std::vector<SegmentInfo> sealed_;

  std::FILE* active_{nullptr};
  SegmentInfo active_info_{};
  ValidationTs active_last_commit_{0};
  ValidationTs next_first_hint_{1};

  ByteWriter pending_;
  std::size_t pending_written_{0};  ///< prefix of pending_ already on disk
  Lsn appended_{0};
  Lsn durable_{0};
  Lsn buffered_{0};
  std::size_t inject_errors_{0};
  bool tail_trimmed_{false};
};

}  // namespace rodain::log
