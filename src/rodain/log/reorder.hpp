// Mirror-side log reordering (paper §3).
//
// The primary ships a transaction's records when its write phase runs, and
// write phases complete in an order that need not match validation order.
// The mirror buffers per-transaction records, and releases complete
// transactions strictly in validation-sequence order. Because of this, the
// log it stores is totally ordered, the database copy is updated only with
// committed transactions ("it never needs to undo any changes"), and
// recovery is a single forward pass.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "rodain/common/types.hpp"
#include "rodain/log/record.hpp"

namespace rodain::log {

class Reorderer {
 public:
  /// `release` receives complete transactions in dense seq order:
  /// the after-images followed by the commit record itself.
  using ReleaseFn =
      std::function<void(ValidationTs seq, TxnId txn, std::vector<Record> records)>;

  explicit Reorderer(ReleaseFn release, ValidationTs expected_next = 1)
      : release_(std::move(release)), expected_(expected_next) {}

  /// Feed one record from the wire. Returns kCorruption if a commit record
  /// disagrees with the buffered write count (lost or duplicated records).
  Status add(Record r);

  /// Mark the start of one delivered wire batch. A transaction's record set
  /// never spans batches (Shipper contract), so write images arriving for
  /// an already-open transaction in a *later* batch are a re-delivery
  /// (reconnect re-ship of an uncommitted txn): the stale buffered copy is
  /// dropped before buffering restarts, instead of double-counting and
  /// tripping the commit record's write-count check. Callers that never
  /// call this get the legacy accumulate-everything behaviour.
  void begin_batch() { ++batch_epoch_; }

  /// Highest validation seq such that every commit record <= it has been
  /// received (released, or staged in a contiguous run from the floor) —
  /// the mirror's cumulative-ack value. 0 when nothing has been received.
  [[nodiscard]] ValidationTs received_commit_floor() const;

  /// Transactions whose commit record arrived but that wait for an earlier
  /// sequence number.
  [[nodiscard]] std::size_t staged_commits() const { return staged_.size(); }
  /// Transactions with buffered writes but no commit record yet.
  [[nodiscard]] std::size_t open_txns() const { return open_.size(); }
  [[nodiscard]] ValidationTs expected_next() const { return expected_; }
  /// Move the release floor (mirror rejoin: the snapshot covers everything
  /// below `seq`). Purges staged transactions the floor passed — their
  /// predecessors were lost and the gap would block release_ready() forever
  /// — and releases any staged run that now starts at `seq`.
  void set_expected_next(ValidationTs seq);

  /// Suspend releases while a snapshot installs (mirror join): complete
  /// transactions keep staging in seq order, but nothing is applied to the
  /// store the snapshot is about to replace. set_expected_next() resumes —
  /// it moves the floor to the snapshot boundary, purges what the snapshot
  /// covers, and cascades whatever staged above it.
  void hold_releases() { holding_ = true; }
  [[nodiscard]] bool holding() const { return holding_; }

  /// Drop transactions that never received a commit record — on primary
  /// failure they are "considered aborted, and their modifications ... are
  /// not performed on the database copy" (paper §3). Returns how many.
  std::size_t drop_open_txns();

  /// Release staged transactions even if there is a sequence gap (used by
  /// takeover: everything that can apply, applies). Returns released count.
  std::size_t force_release_staged();

 private:
  struct Staged {
    TxnId txn;
    std::vector<Record> records;
  };
  struct OpenTxn {
    /// Batch epoch of the latest delivery; a write arriving under a newer
    /// epoch supersedes (clears) the buffered records.
    std::uint64_t batch{0};
    std::vector<Record> records;
  };

  void release_ready();

  ReleaseFn release_;
  ValidationTs expected_;
  bool holding_{false};
  std::uint64_t batch_epoch_{0};
  std::unordered_map<TxnId, OpenTxn> open_;
  std::map<ValidationTs, Staged> staged_;
};

}  // namespace rodain::log
