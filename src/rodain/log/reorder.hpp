// Mirror-side log reordering (paper §3).
//
// The primary ships a transaction's records when its write phase runs, and
// write phases complete in an order that need not match validation order.
// The mirror buffers per-transaction records, and releases complete
// transactions strictly in validation-sequence order. Because of this, the
// log it stores is totally ordered, the database copy is updated only with
// committed transactions ("it never needs to undo any changes"), and
// recovery is a single forward pass.
//
// Two release disciplines (DESIGN.md §14):
//   - per-transaction (legacy): `ReleaseFn` fires synchronously inside
//     add()/set_expected_next() for every transaction, one at a time;
//   - epoch-batched: `ReleaseBatchFn` — releasable transactions accumulate
//     in an epoch buffer (still popped in dense seq order) and the owner
//     drains them with flush_epoch(), typically once per delivered wire
//     batch. The whole epoch carries the same ordering proof the one-at-a-
//     time path did, which is what lets the mirror apply non-conflicting
//     transactions of one epoch concurrently (repl::ApplyPool).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "rodain/common/types.hpp"
#include "rodain/log/record.hpp"

namespace rodain::log {

/// One released transaction: the after-images in write order, terminated by
/// the commit record itself (never empty — see Reorderer::valid_release_set).
struct ReleasedTxn {
  ValidationTs seq{0};
  TxnId txn{kInvalidTxn};
  std::vector<Record> records;
};

class Reorderer {
 public:
  /// `release` receives complete transactions in dense seq order:
  /// the after-images followed by the commit record itself.
  using ReleaseFn =
      std::function<void(ValidationTs seq, TxnId txn, std::vector<Record> records)>;
  /// Epoch-batched alternative: one call per flush_epoch(), carrying every
  /// transaction released since the previous flush, in seq order.
  using ReleaseBatchFn = std::function<void(std::vector<ReleasedTxn> epoch)>;

  explicit Reorderer(ReleaseFn release, ValidationTs expected_next = 1)
      : release_(std::move(release)), expected_(expected_next) {}
  explicit Reorderer(ReleaseBatchFn release, ValidationTs expected_next = 1)
      : release_batch_(std::move(release)), expected_(expected_next) {}

  /// Feed one record from the wire. Returns kCorruption if a commit record
  /// disagrees with the buffered write count (lost or duplicated records);
  /// the corrupt transaction's buffered state is dropped (quarantined) and
  /// the reorderer stays usable — a later re-delivery of the full record
  /// set stages it normally.
  Status add(Record r);

  /// Mark the start of one delivered wire batch. A transaction's record set
  /// never spans batches (Shipper contract), so write images arriving for
  /// an already-open transaction in a *later* batch are a re-delivery
  /// (reconnect re-ship of an uncommitted txn): the stale buffered copy is
  /// dropped before buffering restarts, instead of double-counting and
  /// tripping the commit record's write-count check. Callers that never
  /// call this get the legacy accumulate-everything behaviour.
  void begin_batch() { ++batch_epoch_; }

  /// Epoch-batched mode only: hand the accumulated epoch (transactions
  /// released since the last flush, in seq order) to the batch callback.
  /// Returns how many transactions the epoch carried; no-op (and 0) when
  /// nothing released or in per-transaction mode.
  std::size_t flush_epoch();

  /// Transactions currently buffered in the un-flushed epoch.
  [[nodiscard]] std::size_t epoch_pending() const { return epoch_.size(); }

  /// A structurally valid release set: non-empty, terminated by the commit
  /// record whose serial_ts stamps the after-images. The release paths
  /// enforce this — a violating set is dropped and counted instead of
  /// being applied with a fabricated wts of 0.
  [[nodiscard]] static bool valid_release_set(const std::vector<Record>& records) {
    return !records.empty() && records.back().is_commit();
  }
  /// Release sets rejected by valid_release_set (0 unless something
  /// upstream fabricated an empty or commit-less set).
  [[nodiscard]] std::uint64_t rejected_release_sets() const {
    return rejected_release_sets_;
  }

  /// Highest validation seq such that every commit record <= it has been
  /// received (released, or staged in a contiguous run from the floor) —
  /// the mirror's cumulative-ack value. 0 when nothing has been received.
  [[nodiscard]] ValidationTs received_commit_floor() const;

  /// Transactions whose commit record arrived but that wait for an earlier
  /// sequence number.
  [[nodiscard]] std::size_t staged_commits() const { return staged_.size(); }
  /// Transactions with buffered writes but no commit record yet.
  [[nodiscard]] std::size_t open_txns() const { return open_.size(); }
  [[nodiscard]] ValidationTs expected_next() const { return expected_; }
  /// Move the release floor (mirror rejoin: the snapshot covers everything
  /// below `seq`). Purges staged transactions the floor passed — their
  /// predecessors were lost and the gap would block release_ready() forever
  /// — and releases any staged run that now starts at `seq`.
  void set_expected_next(ValidationTs seq);

  /// Suspend releases while a snapshot installs (mirror join): complete
  /// transactions keep staging in seq order, but nothing is applied to the
  /// store the snapshot is about to replace. set_expected_next() resumes —
  /// it moves the floor to the snapshot boundary, purges what the snapshot
  /// covers, and cascades whatever staged above it.
  void hold_releases() { holding_ = true; }
  [[nodiscard]] bool holding() const { return holding_; }

  /// Drop transactions that never received a commit record — on primary
  /// failure they are "considered aborted, and their modifications ... are
  /// not performed on the database copy" (paper §3). Returns how many.
  std::size_t drop_open_txns();

  /// Release staged transactions even if there is a sequence gap (used by
  /// takeover: everything that can apply, applies). Returns released count.
  /// In epoch-batched mode the run lands in the epoch buffer — follow with
  /// flush_epoch().
  std::size_t force_release_staged();

 private:
  struct Staged {
    TxnId txn;
    std::vector<Record> records;
  };
  struct OpenTxn {
    /// Batch epoch of the latest delivery; a write arriving under a newer
    /// epoch supersedes (clears) the buffered records.
    std::uint64_t batch{0};
    std::vector<Record> records;
  };

  void release_ready();
  /// Dispatch one popped transaction: validate, then either call the
  /// per-txn callback synchronously or append to the epoch buffer.
  void dispatch(ValidationTs seq, Staged staged);

  ReleaseFn release_;
  ReleaseBatchFn release_batch_;
  ValidationTs expected_;
  bool holding_{false};
  std::uint64_t batch_epoch_{0};
  std::uint64_t rejected_release_sets_{0};
  std::unordered_map<TxnId, OpenTxn> open_;
  std::map<ValidationTs, Staged> staged_;
  /// Epoch-batched mode: released-but-not-yet-flushed transactions.
  std::vector<ReleasedTxn> epoch_;
};

}  // namespace rodain::log
