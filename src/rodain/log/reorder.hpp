// Mirror-side log reordering (paper §3).
//
// The primary ships a transaction's records when its write phase runs, and
// write phases complete in an order that need not match validation order.
// The mirror buffers per-transaction records, and releases complete
// transactions strictly in validation-sequence order. Because of this, the
// log it stores is totally ordered, the database copy is updated only with
// committed transactions ("it never needs to undo any changes"), and
// recovery is a single forward pass.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "rodain/common/types.hpp"
#include "rodain/log/record.hpp"

namespace rodain::log {

class Reorderer {
 public:
  /// `release` receives complete transactions in dense seq order:
  /// the after-images followed by the commit record itself.
  using ReleaseFn =
      std::function<void(ValidationTs seq, TxnId txn, std::vector<Record> records)>;

  explicit Reorderer(ReleaseFn release, ValidationTs expected_next = 1)
      : release_(std::move(release)), expected_(expected_next) {}

  /// Feed one record from the wire. Returns kCorruption if a commit record
  /// disagrees with the buffered write count (lost or duplicated records).
  Status add(Record r);

  /// Transactions whose commit record arrived but that wait for an earlier
  /// sequence number.
  [[nodiscard]] std::size_t staged_commits() const { return staged_.size(); }
  /// Transactions with buffered writes but no commit record yet.
  [[nodiscard]] std::size_t open_txns() const { return open_.size(); }
  [[nodiscard]] ValidationTs expected_next() const { return expected_; }
  /// Move the release floor (mirror rejoin: the snapshot covers everything
  /// below `seq`). Purges staged transactions the floor passed — their
  /// predecessors were lost and the gap would block release_ready() forever
  /// — and releases any staged run that now starts at `seq`.
  void set_expected_next(ValidationTs seq);

  /// Drop transactions that never received a commit record — on primary
  /// failure they are "considered aborted, and their modifications ... are
  /// not performed on the database copy" (paper §3). Returns how many.
  std::size_t drop_open_txns();

  /// Release staged transactions even if there is a sequence gap (used by
  /// takeover: everything that can apply, applies). Returns released count.
  std::size_t force_release_staged();

 private:
  struct Staged {
    TxnId txn;
    std::vector<Record> records;
  };

  void release_ready();

  ReleaseFn release_;
  ValidationTs expected_;
  std::unordered_map<TxnId, std::vector<Record>> open_;
  std::map<ValidationTs, Staged> staged_;
};

}  // namespace rodain::log
