#include "rodain/log/recovery.hpp"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <thread>
#include <unordered_map>

#include "rodain/log/log_storage.hpp"
#include "rodain/log/segment.hpp"
#include "rodain/obs/obs.hpp"
#include "rodain/storage/checkpoint.hpp"
#include "rodain/storage/fuzzy_checkpoint.hpp"

namespace rodain::log {
namespace {

using SteadyClock = std::chrono::steady_clock;

double ms_since(SteadyClock::time_point start) {
  return std::chrono::duration<double, std::milli>(SteadyClock::now() - start)
      .count();
}

/// Recovery-progress gauges: an operator watching /metrics during a restart
/// sees replay advance (replayed climbs toward total) instead of a blank
/// gap until the node serves again.
struct RecoveryProgress {
  obs::Gauge& segments_total = obs::metrics().gauge("recovery.segments_total");
  obs::Gauge& segments_replayed =
      obs::metrics().gauge("recovery.segments_replayed");
  obs::Gauge& txns_total = obs::metrics().gauge("recovery.txns_total");
  obs::Gauge& txns_replayed = obs::metrics().gauge("recovery.txns_replayed");
};
RecoveryProgress& progress() {
  static RecoveryProgress p;
  return p;
}

/// Load the checkpoint; on corruption, clear the target and report fallback
/// so the caller replays the log from an empty store instead of aborting.
Result<std::pair<ValidationTs, bool>> load_checkpoint_or_fallback(
    const std::string& checkpoint_path, bool log_exists,
    storage::ObjectStore& store, storage::BPlusTree* index) {
  if (checkpoint_path.empty()) return std::pair<ValidationTs, bool>{0, false};
  auto meta = storage::load_checkpoint_artifacts(checkpoint_path, store, index);
  if (meta.is_ok()) {
    return std::pair<ValidationTs, bool>{meta.value().last_applied, false};
  }
  if (meta.status().code() == ErrorCode::kNotFound) {
    return std::pair<ValidationTs, bool>{0, false};
  }
  if (!log_exists) return meta.status();
  // Unreadable checkpoint (torn rename, bit rot) but the log survives:
  // every committed transaction is still in the un-truncated log, so a
  // full replay from empty reconstructs the same state.
  store.clear();
  if (index) *index = storage::BPlusTree{};
  return std::pair<ValidationTs, bool>{0, true};
}

}  // namespace
}  // namespace rodain::log

namespace rodain::log {

Result<RecoveryStats> replay_records(std::span<const Record> records,
                                     storage::ObjectStore& store,
                                     ValidationTs already_applied,
                                     storage::BPlusTree* index) {
  RecoveryStats stats;
  stats.records_read = records.size();
  stats.last_seq = already_applied;

  // Single forward pass: writes buffer per transaction; a commit record
  // stages the transaction under its validation sequence.
  std::unordered_map<TxnId, std::vector<const Record*>> open;
  struct Committed {
    ValidationTs serial_ts;
    std::vector<const Record*> writes;
  };
  std::map<ValidationTs, Committed> committed;  // ordered by seq

  for (const Record& r : records) {
    if (r.type != RecordType::kCommit) {
      open[r.txn].push_back(&r);
      continue;
    }
    std::vector<const Record*> writes;
    if (auto it = open.find(r.txn); it != open.end()) {
      writes = std::move(it->second);
      open.erase(it);
    }
    if (writes.size() != r.write_count) {
      return Status::error(ErrorCode::kCorruption,
                           "recovery: commit write-count mismatch");
    }
    if (r.seq <= already_applied) continue;  // covered by the checkpoint
    committed.emplace(r.seq, Committed{r.serial_ts, std::move(writes)});
  }

  progress().txns_total.set(static_cast<double>(committed.size()));
  progress().txns_replayed.set(0.0);
  for (auto& [seq, c] : committed) {
    for (const Record* w : c.writes) {
      if (w->type == RecordType::kDelete) {
        store.tombstone(w->oid, c.serial_ts);
        if (w->has_key && index) index->erase(w->key);
      } else {
        store.upsert(w->oid, w->after, c.serial_ts);
        if (w->has_key && index) {
          if (!index->insert(w->key, w->oid)) index->update(w->key, w->oid);
        }
      }
      ++stats.writes_applied;
    }
    ++stats.committed_applied;
    stats.last_seq = seq;
    if ((stats.committed_applied & 0x3ff) == 0) {
      progress().txns_replayed.set(
          static_cast<double>(stats.committed_applied));
    }
  }
  progress().txns_replayed.set(static_cast<double>(stats.committed_applied));
  stats.incomplete_dropped = open.size();
  return stats;
}

Result<RecoveryStats> recover_from_buffer(std::span<const std::byte> data,
                                          storage::ObjectStore& store,
                                          ValidationTs already_applied,
                                          storage::BPlusTree* index) {
  bool torn = false;
  auto records = decode_records(data, &torn);
  if (!records.is_ok()) return records.status();
  auto stats = replay_records(records.value(), store, already_applied, index);
  if (stats.is_ok()) stats.value().torn_tail = torn;
  return stats;
}

Result<RecoveryStats> recover_from_file(const std::string& path,
                                        storage::ObjectStore& store,
                                        ValidationTs already_applied,
                                        storage::BPlusTree* index) {
  bool torn = false;
  auto records = FileLogStorage::read_all(path, &torn);
  if (!records.is_ok()) return records.status();
  auto stats = replay_records(records.value(), store, already_applied, index);
  if (stats.is_ok()) stats.value().torn_tail = torn;
  return stats;
}

Result<RecoveryStats> recover_checkpoint_and_log(
    const std::string& checkpoint_path, const std::string& log_path,
    storage::ObjectStore& store, storage::BPlusTree* index) {
  const auto t_total = SteadyClock::now();
  std::error_code ec;
  const bool log_exists =
      !log_path.empty() && std::filesystem::exists(log_path, ec);
  auto loaded =
      load_checkpoint_or_fallback(checkpoint_path, log_exists, store, index);
  if (!loaded.is_ok()) return loaded.status();
  const ValidationTs boundary = loaded.value().first;

  auto stats = recover_from_file(log_path, store, boundary, index);
  if (!stats.is_ok()) {
    if (stats.status().code() == ErrorCode::kNotFound) {
      // Checkpoint-only recovery.
      RecoveryStats only;
      only.last_seq = boundary;
      return only;
    }
    return stats.status();
  }
  stats.value().checkpoint_fallback = loaded.value().second;
  if (stats.value().last_seq < boundary) stats.value().last_seq = boundary;
  obs::metrics().gauge("log.recovery_replay_ms").set(ms_since(t_total));
  return stats;
}

namespace {

/// Shared front half of the segmented restart paths: load the checkpoint
/// (with corrupt-checkpoint fallback), decode the surviving segments in
/// parallel, and concatenate the records. Fills the checkpoint/decode
/// fields of `stats` — including which segment supplied the oldest commit
/// the replay will have to reach back to — and returns the record stream
/// past the boundary (empty when no log survives).
Result<std::vector<Record>> load_and_decode_segments(
    const std::string& checkpoint_path, const std::string& log_dir,
    storage::ObjectStore& store, storage::BPlusTree* index,
    unsigned decode_threads, RecoveryStats& stats, ValidationTs& boundary) {
  auto segments = SegmentedLogStorage::list_segments(log_dir);
  if (!segments.is_ok() &&
      segments.status().code() != ErrorCode::kNotFound) {
    return segments.status();
  }
  const bool log_exists = segments.is_ok() && !segments.value().empty();

  const auto t_ckpt = SteadyClock::now();
  auto loaded =
      load_checkpoint_or_fallback(checkpoint_path, log_exists, store, index);
  if (!loaded.is_ok()) return loaded.status();
  boundary = loaded.value().first;
  stats.checkpoint_load_ms = ms_since(t_ckpt);
  stats.checkpoint_fallback = loaded.value().second;
  stats.last_seq = boundary;
  if (!log_exists) return std::vector<Record>{};

  // Truncation normally deleted segments below the boundary already; skip
  // any stragglers (a crash between checkpoint write and truncate).
  std::vector<SegmentedLogStorage::SegmentInfo> survivors;
  for (const auto& seg : segments.value()) {
    if (seg.last_seq != 0 && seg.last_seq <= boundary) {
      ++stats.segments_skipped;
    } else {
      survivors.push_back(seg);
    }
  }

  const auto t_decode = SteadyClock::now();
  progress().segments_total.set(static_cast<double>(survivors.size()));
  progress().segments_replayed.set(0.0);
  struct Decoded {
    Result<std::vector<Record>> records{std::vector<Record>{}};
    bool torn{false};
  };
  std::vector<Decoded> decoded(survivors.size());
  const auto decode_one = [&](std::size_t i) {
    decoded[i].records = SegmentedLogStorage::read_segment(
        survivors[i].path, nullptr, &decoded[i].torn);
    progress().segments_replayed.add(1.0);  // Gauge::add is a CAS loop
  };
  const unsigned workers = std::min<unsigned>(
      std::max(1u, decode_threads), static_cast<unsigned>(survivors.size()));
  if (workers <= 1) {
    for (std::size_t i = 0; i < survivors.size(); ++i) decode_one(i);
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (std::size_t i = next.fetch_add(1); i < survivors.size();
             i = next.fetch_add(1)) {
          decode_one(i);
        }
      });
    }
    for (auto& t : pool) t.join();
  }

  std::vector<Record> all;
  for (std::size_t i = 0; i < survivors.size(); ++i) {
    if (!decoded[i].records.is_ok()) return decoded[i].records.status();
    if (decoded[i].torn) {
      if (survivors[i].last_seq != 0) {
        return Status::error(ErrorCode::kCorruption,
                             "torn tail in sealed segment " + survivors[i].path);
      }
      stats.torn_tail = true;
    }
    stats.log_disk_bytes += survivors[i].bytes;
    // Attribute the oldest seq the replay reaches back to: the smallest
    // commit past the boundary, and the segment it came from. After a
    // corrupt-checkpoint fallback this names how far back the log-only
    // replay had to go — previously only torn_tail was surfaced.
    for (auto& r : decoded[i].records.value()) {
      if (r.is_commit() && r.seq > boundary &&
          (stats.oldest_replayed_seq == 0 ||
           r.seq < stats.oldest_replayed_seq)) {
        stats.oldest_replayed_seq = r.seq;
        stats.oldest_seq_segment = survivors[i].path;
      }
      all.push_back(std::move(r));
    }
  }
  stats.segments_decoded = survivors.size();
  stats.decode_ms = ms_since(t_decode);
  obs::metrics()
      .gauge("recovery.oldest_replayed_seq")
      .set(static_cast<double>(stats.oldest_replayed_seq));
  return all;
}

}  // namespace

Result<RecoveryStats> recover_checkpoint_and_segments(
    const std::string& checkpoint_path, const std::string& log_dir,
    storage::ObjectStore& store, storage::BPlusTree* index,
    unsigned decode_threads) {
  const auto t_total = SteadyClock::now();
  RecoveryStats stats;
  ValidationTs boundary = 0;
  auto all = load_and_decode_segments(checkpoint_path, log_dir, store, index,
                                      decode_threads, stats, boundary);
  if (!all.is_ok()) return all.status();
  if (all.value().empty() && stats.segments_decoded == 0) {
    obs::metrics().gauge("log.recovery_replay_ms").set(ms_since(t_total));
    return stats;
  }

  const auto t_apply = SteadyClock::now();
  auto applied = replay_records(all.value(), store, boundary, index);
  if (!applied.is_ok()) return applied.status();
  stats.committed_applied = applied.value().committed_applied;
  stats.writes_applied = applied.value().writes_applied;
  stats.incomplete_dropped = applied.value().incomplete_dropped;
  stats.records_read = applied.value().records_read;
  stats.last_seq = std::max(boundary, applied.value().last_seq);
  stats.apply_ms = ms_since(t_apply);
  obs::metrics().gauge("log.recovery_replay_ms").set(ms_since(t_total));
  return stats;
}

Result<RecoveryStats> recover_instant_segments(
    const std::string& checkpoint_path, const std::string& log_dir,
    storage::ObjectStore& store, RedoIndex& redo, storage::BPlusTree* index,
    unsigned decode_threads) {
  const auto t_total = SteadyClock::now();
  RecoveryStats stats;
  stats.instant = true;
  ValidationTs boundary = 0;
  auto all = load_and_decode_segments(checkpoint_path, log_dir, store, index,
                                      decode_threads, stats, boundary);
  if (!all.is_ok()) return all.status();
  stats.records_read = all.value().size();

  const auto t_apply = SteadyClock::now();
  if (auto s = redo.build(all.value(), boundary); !s) return s;
  stats.incomplete_dropped = redo.incomplete_dropped();
  stats.deferred_txns = redo.deferred_txns();
  stats.deferred_writes = redo.deferred_writes();
  stats.last_seq = std::max(boundary, redo.last_seq());
  stats.apply_ms = ms_since(t_apply);  // index build, not installs
  obs::metrics().gauge("log.recovery_replay_ms").set(ms_since(t_total));
  return stats;
}

}  // namespace rodain::log
