#include "rodain/log/recovery.hpp"

#include <map>
#include <unordered_map>

#include "rodain/log/log_storage.hpp"
#include "rodain/storage/checkpoint.hpp"

namespace rodain::log {

Result<RecoveryStats> replay_records(std::span<const Record> records,
                                     storage::ObjectStore& store,
                                     ValidationTs already_applied,
                                     storage::BPlusTree* index) {
  RecoveryStats stats;
  stats.records_read = records.size();
  stats.last_seq = already_applied;

  // Single forward pass: writes buffer per transaction; a commit record
  // stages the transaction under its validation sequence.
  std::unordered_map<TxnId, std::vector<const Record*>> open;
  struct Committed {
    ValidationTs serial_ts;
    std::vector<const Record*> writes;
  };
  std::map<ValidationTs, Committed> committed;  // ordered by seq

  for (const Record& r : records) {
    if (r.type != RecordType::kCommit) {
      open[r.txn].push_back(&r);
      continue;
    }
    std::vector<const Record*> writes;
    if (auto it = open.find(r.txn); it != open.end()) {
      writes = std::move(it->second);
      open.erase(it);
    }
    if (writes.size() != r.write_count) {
      return Status::error(ErrorCode::kCorruption,
                           "recovery: commit write-count mismatch");
    }
    if (r.seq <= already_applied) continue;  // covered by the checkpoint
    committed.emplace(r.seq, Committed{r.serial_ts, std::move(writes)});
  }

  for (auto& [seq, c] : committed) {
    for (const Record* w : c.writes) {
      if (w->type == RecordType::kDelete) {
        store.tombstone(w->oid, c.serial_ts);
        if (w->has_key && index) index->erase(w->key);
      } else {
        store.upsert(w->oid, w->after, c.serial_ts);
        if (w->has_key && index) {
          if (!index->insert(w->key, w->oid)) index->update(w->key, w->oid);
        }
      }
      ++stats.writes_applied;
    }
    ++stats.committed_applied;
    stats.last_seq = seq;
  }
  stats.incomplete_dropped = open.size();
  return stats;
}

Result<RecoveryStats> recover_from_buffer(std::span<const std::byte> data,
                                          storage::ObjectStore& store,
                                          ValidationTs already_applied,
                                          storage::BPlusTree* index) {
  bool torn = false;
  auto records = decode_records(data, &torn);
  if (!records.is_ok()) return records.status();
  auto stats = replay_records(records.value(), store, already_applied, index);
  if (stats.is_ok()) stats.value().torn_tail = torn;
  return stats;
}

Result<RecoveryStats> recover_from_file(const std::string& path,
                                        storage::ObjectStore& store,
                                        ValidationTs already_applied,
                                        storage::BPlusTree* index) {
  bool torn = false;
  auto records = FileLogStorage::read_all(path, &torn);
  if (!records.is_ok()) return records.status();
  auto stats = replay_records(records.value(), store, already_applied, index);
  if (stats.is_ok()) stats.value().torn_tail = torn;
  return stats;
}

Result<RecoveryStats> recover_checkpoint_and_log(
    const std::string& checkpoint_path, const std::string& log_path,
    storage::ObjectStore& store, storage::BPlusTree* index) {
  ValidationTs boundary = 0;
  if (!checkpoint_path.empty()) {
    auto meta = storage::read_checkpoint_file(checkpoint_path, store, index);
    if (meta.is_ok()) {
      boundary = meta.value().last_applied;
    } else if (meta.status().code() != ErrorCode::kNotFound) {
      return meta.status();  // corrupt checkpoint is an error, absence is not
    }
  }
  auto stats = recover_from_file(log_path, store, boundary, index);
  if (!stats.is_ok()) {
    if (stats.status().code() == ErrorCode::kNotFound) {
      // Checkpoint-only recovery.
      RecoveryStats only;
      only.last_seq = boundary;
      return only;
    }
    return stats.status();
  }
  if (stats.value().last_seq < boundary) stats.value().last_seq = boundary;
  return stats;
}

}  // namespace rodain::log
