#include "rodain/log/record.hpp"

namespace rodain::log {

Record Record::write_image(TxnId txn, ObjectId oid, storage::Value after) {
  Record r;
  r.type = RecordType::kWriteImage;
  r.txn = txn;
  r.oid = oid;
  r.after = std::move(after);
  return r;
}

Record Record::insert_image(TxnId txn, ObjectId oid, storage::Value after,
                            const storage::IndexKey& key) {
  Record r = write_image(txn, oid, std::move(after));
  r.has_key = true;
  r.key = key;
  return r;
}

Record Record::tombstone(TxnId txn, ObjectId oid) {
  Record r;
  r.type = RecordType::kDelete;
  r.txn = txn;
  r.oid = oid;
  return r;
}

Record Record::tombstone(TxnId txn, ObjectId oid,
                         const storage::IndexKey& key) {
  Record r = tombstone(txn, oid);
  r.has_key = true;
  r.key = key;
  return r;
}

Record Record::commit(TxnId txn, ValidationTs seq, ValidationTs serial_ts,
                      std::uint32_t write_count) {
  Record r;
  r.type = RecordType::kCommit;
  r.txn = txn;
  r.seq = seq;
  r.serial_ts = serial_ts;
  r.write_count = write_count;
  return r;
}

std::size_t Record::encoded_size() const {
  // frame len + crc + payload estimate
  std::size_t base = 8 + 1 + 9;
  switch (type) {
    case RecordType::kWriteImage:
      return base + 9 + 2 + after.size() + 1 + (has_key ? 16 : 0);
    case RecordType::kDelete:
      return base + 9 + 1 + (has_key ? 16 : 0);
    case RecordType::kCommit:
      return base + 9 + 9 + 4;
  }
  return base;
}

bool operator==(const Record& a, const Record& b) {
  if (a.type != b.type || a.txn != b.txn) return false;
  switch (a.type) {
    case RecordType::kWriteImage:
      return a.oid == b.oid && a.after == b.after && a.has_key == b.has_key &&
             (!a.has_key || a.key == b.key);
    case RecordType::kDelete:
      return a.oid == b.oid && a.has_key == b.has_key &&
             (!a.has_key || a.key == b.key);
    case RecordType::kCommit:
      return a.seq == b.seq && a.serial_ts == b.serial_ts &&
             a.write_count == b.write_count;
  }
  return false;
}

namespace {
void put_optional_key(const Record& r, ByteWriter& out) {
  out.put_u8(r.has_key ? 1 : 0);
  if (r.has_key) out.put_raw(std::as_bytes(std::span{r.key.bytes}));
}

Status get_optional_key(ByteReader& in, Record& out) {
  std::uint8_t has = 0;
  if (auto s = in.get_u8(has); !s) return s;
  if (has > 1) return Status::error(ErrorCode::kCorruption, "bad key flag");
  out.has_key = has == 1;
  if (out.has_key) {
    std::span<const std::byte> raw;
    if (auto s = in.get_raw(out.key.bytes.size(), raw); !s) return s;
    std::memcpy(out.key.bytes.data(), raw.data(), raw.size());
  }
  return Status::ok();
}
}  // namespace

void encode_record(const Record& r, ByteWriter& out) {
  ByteWriter payload;
  payload.put_u8(static_cast<std::uint8_t>(r.type));
  payload.put_varint(r.txn);
  switch (r.type) {
    case RecordType::kWriteImage:
      payload.put_varint(r.oid);
      payload.put_bytes(r.after.view());
      put_optional_key(r, payload);
      break;
    case RecordType::kDelete:
      payload.put_varint(r.oid);
      put_optional_key(r, payload);
      break;
    case RecordType::kCommit:
      payload.put_varint(r.seq);
      payload.put_varint(r.serial_ts);
      payload.put_u32(r.write_count);
      break;
  }
  out.put_u32(static_cast<std::uint32_t>(payload.size()));
  out.put_raw(payload.view());
  out.put_u32(crc32c(payload.view()));
}

DecodeResult decode_record(ByteReader& in, Record& out) {
  if (in.at_end()) return {Status::ok(), true};
  std::uint32_t len = 0;
  if (auto s = in.get_u32(len); !s) {
    return {Status::error(ErrorCode::kOutOfRange, "torn frame length"), true};
  }
  std::span<const std::byte> payload;
  if (auto s = in.get_raw(len, payload); !s) {
    return {Status::error(ErrorCode::kOutOfRange, "torn frame payload"), true};
  }
  std::uint32_t crc = 0;
  if (auto s = in.get_u32(crc); !s) {
    return {Status::error(ErrorCode::kOutOfRange, "torn frame crc"), true};
  }
  if (crc32c(payload) != crc) {
    return {Status::error(ErrorCode::kCorruption, "log record crc mismatch"),
            false};
  }

  ByteReader pr(payload);
  std::uint8_t type = 0;
  std::uint64_t txn = 0;
  if (auto s = pr.get_u8(type); !s) return {s, false};
  if (auto s = pr.get_varint(txn); !s) return {s, false};
  out = Record{};
  out.txn = txn;
  switch (static_cast<RecordType>(type)) {
    case RecordType::kWriteImage: {
      out.type = RecordType::kWriteImage;
      std::uint64_t oid = 0;
      std::vector<std::byte> bytes;
      if (auto s = pr.get_varint(oid); !s) return {s, false};
      if (auto s = pr.get_bytes(bytes); !s) return {s, false};
      out.oid = oid;
      out.after = storage::Value{std::span<const std::byte>{bytes}};
      if (auto s = get_optional_key(pr, out); !s) return {s, false};
      break;
    }
    case RecordType::kDelete: {
      out.type = RecordType::kDelete;
      std::uint64_t oid = 0;
      if (auto s = pr.get_varint(oid); !s) return {s, false};
      out.oid = oid;
      if (auto s = get_optional_key(pr, out); !s) return {s, false};
      break;
    }
    case RecordType::kCommit: {
      out.type = RecordType::kCommit;
      if (auto s = pr.get_varint(out.seq); !s) return {s, false};
      if (auto s = pr.get_varint(out.serial_ts); !s) return {s, false};
      if (auto s = pr.get_u32(out.write_count); !s) return {s, false};
      break;
    }
    default:
      return {Status::error(ErrorCode::kCorruption, "unknown record type"),
              false};
  }
  if (!pr.at_end()) {
    return {Status::error(ErrorCode::kCorruption, "trailing record bytes"),
            false};
  }
  return {Status::ok(), false};
}

std::vector<std::byte> encode_records(std::span<const Record> records) {
  ByteWriter w;
  for (const Record& r : records) encode_record(r, w);
  return w.take();
}

Result<std::vector<Record>> decode_records(std::span<const std::byte> data,
                                           bool* torn) {
  if (torn) *torn = false;
  std::vector<Record> out;
  ByteReader in(data);
  while (true) {
    Record r;
    DecodeResult d = decode_record(in, r);
    if (d.end) {
      if (!d.status && torn) *torn = true;
      return out;
    }
    if (!d.status) return d.status;  // corruption mid-stream
    out.push_back(std::move(r));
  }
}

}  // namespace rodain::log
