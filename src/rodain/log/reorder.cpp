#include "rodain/log/reorder.hpp"

namespace rodain::log {

Status Reorderer::add(Record r) {
  if (!r.is_commit()) {  // write images and tombstones buffer per txn
    OpenTxn& open = open_[r.txn];
    if (!open.records.empty() && open.batch != batch_epoch_) {
      // Re-delivery from a later batch (reconnect re-ship of a txn whose
      // commit never arrived): the stale copy would double the write count.
      open.records.clear();
    }
    open.batch = batch_epoch_;
    open.records.push_back(std::move(r));
    return Status::ok();
  }
  // Commit record: close the transaction and stage it at its seq.
  std::vector<Record> records;
  if (auto it = open_.find(r.txn); it != open_.end()) {
    records = std::move(it->second.records);
    open_.erase(it);
  }
  if (r.seq < expected_ || staged_.contains(r.seq)) {
    // Stale duplicate (catch-up overlap after a rejoin): already covered by
    // the snapshot or an earlier delivery; drop it and its buffered writes.
    return Status::ok();
  }
  if (records.size() != r.write_count) {
    return Status::error(ErrorCode::kCorruption,
                         "commit record write count mismatch");
  }
  const ValidationTs seq = r.seq;
  const TxnId txn = r.txn;
  records.push_back(std::move(r));
  staged_.emplace(seq, Staged{txn, std::move(records)});
  release_ready();
  return Status::ok();
}

ValidationTs Reorderer::received_commit_floor() const {
  ValidationTs floor = expected_ == 0 ? 0 : expected_ - 1;
  for (const auto& entry : staged_) {
    if (entry.first != floor + 1) break;
    ++floor;
  }
  return floor;
}

void Reorderer::set_expected_next(ValidationTs seq) {
  holding_ = false;
  expected_ = seq;
  // Commits staged in a previous incarnation can sit below the new floor
  // when the transactions between them and the old floor were rerouted to
  // the primary's disk and never shipped. The snapshot already covers them;
  // keeping them would wedge release_ready() on a seq that never matches.
  staged_.erase(staged_.begin(), staged_.lower_bound(seq));
  release_ready();
}

void Reorderer::release_ready() {
  if (holding_) return;
  while (!staged_.empty()) {
    auto it = staged_.begin();
    if (it->first != expected_) break;
    Staged staged = std::move(it->second);
    staged_.erase(it);
    ++expected_;
    release_(expected_ - 1, staged.txn, std::move(staged.records));
  }
}

std::size_t Reorderer::drop_open_txns() {
  const std::size_t n = open_.size();
  open_.clear();
  return n;
}

std::size_t Reorderer::force_release_staged() {
  holding_ = false;
  std::size_t released = 0;
  while (!staged_.empty()) {
    auto it = staged_.begin();
    Staged staged = std::move(it->second);
    const ValidationTs seq = it->first;
    staged_.erase(it);
    expected_ = seq + 1;
    release_(seq, staged.txn, std::move(staged.records));
    ++released;
  }
  return released;
}

}  // namespace rodain::log
