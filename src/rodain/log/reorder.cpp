#include "rodain/log/reorder.hpp"

namespace rodain::log {

Status Reorderer::add(Record r) {
  if (!r.is_commit()) {  // write images and tombstones buffer per txn
    OpenTxn& open = open_[r.txn];
    if (!open.records.empty() && open.batch != batch_epoch_) {
      // Re-delivery from a later batch (reconnect re-ship of a txn whose
      // commit never arrived): the stale copy would double the write count.
      open.records.clear();
    }
    open.batch = batch_epoch_;
    open.records.push_back(std::move(r));
    return Status::ok();
  }
  // Commit record: close the transaction and stage it at its seq.
  std::vector<Record> records;
  if (auto it = open_.find(r.txn); it != open_.end()) {
    records = std::move(it->second.records);
    open_.erase(it);
  }
  if (r.seq < expected_ || staged_.contains(r.seq)) {
    // Stale duplicate (catch-up overlap after a rejoin): already covered by
    // the snapshot or an earlier delivery; drop it and its buffered writes.
    return Status::ok();
  }
  if (records.size() != r.write_count) {
    // Quarantine: the buffered writes were already consumed above, so the
    // corrupt transaction leaves no open state behind. Its seq stays
    // un-staged — the commit floor stalls there until the primary's resend
    // re-delivers the full record set, which then stages normally.
    return Status::error(ErrorCode::kCorruption,
                         "commit record write count mismatch");
  }
  const ValidationTs seq = r.seq;
  const TxnId txn = r.txn;
  records.push_back(std::move(r));
  staged_.emplace(seq, Staged{txn, std::move(records)});
  release_ready();
  return Status::ok();
}

ValidationTs Reorderer::received_commit_floor() const {
  ValidationTs floor = expected_ == 0 ? 0 : expected_ - 1;
  // Transactions parked in the un-flushed epoch are already released
  // (expected_ moved past them), so only the staged map extends the floor.
  for (const auto& entry : staged_) {
    if (entry.first != floor + 1) break;
    ++floor;
  }
  return floor;
}

void Reorderer::set_expected_next(ValidationTs seq) {
  holding_ = false;
  expected_ = seq;
  // Commits staged in a previous incarnation can sit below the new floor
  // when the transactions between them and the old floor were rerouted to
  // the primary's disk and never shipped. The snapshot already covers them;
  // keeping them would wedge release_ready() on a seq that never matches.
  staged_.erase(staged_.begin(), staged_.lower_bound(seq));
  // Epoch-batched callers: anything released before the floor moved is
  // covered by the snapshot about to install — applying it afterwards
  // would clobber newer state.
  epoch_.clear();
  release_ready();
}

void Reorderer::dispatch(ValidationTs seq, Staged staged) {
  if (!valid_release_set(staged.records)) {
    // Never hand out an empty (or commit-less) record set: the applier
    // would stamp the writes with a fabricated serial_ts of 0.
    ++rejected_release_sets_;
    return;
  }
  if (release_batch_) {
    epoch_.push_back(ReleasedTxn{seq, staged.txn, std::move(staged.records)});
    return;
  }
  release_(seq, staged.txn, std::move(staged.records));
}

void Reorderer::release_ready() {
  if (holding_) return;
  while (!staged_.empty()) {
    auto it = staged_.begin();
    if (it->first != expected_) break;
    Staged staged = std::move(it->second);
    staged_.erase(it);
    ++expected_;
    dispatch(expected_ - 1, std::move(staged));
  }
}

std::size_t Reorderer::flush_epoch() {
  if (!release_batch_ || epoch_.empty()) return 0;
  std::vector<ReleasedTxn> epoch = std::move(epoch_);
  epoch_.clear();
  const std::size_t n = epoch.size();
  release_batch_(std::move(epoch));
  return n;
}

std::size_t Reorderer::drop_open_txns() {
  const std::size_t n = open_.size();
  open_.clear();
  return n;
}

std::size_t Reorderer::force_release_staged() {
  holding_ = false;
  std::size_t released = 0;
  while (!staged_.empty()) {
    auto it = staged_.begin();
    Staged staged = std::move(it->second);
    const ValidationTs seq = it->first;
    staged_.erase(it);
    expected_ = seq + 1;
    dispatch(seq, std::move(staged));
    ++released;
  }
  return released;
}

}  // namespace rodain::log
