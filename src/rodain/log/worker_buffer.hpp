// Per-worker redo buffers and the epoch sealer (DESIGN.md §13).
//
// On the parallel commit path every worker marshals its transaction's redo
// records *outside* the node's commit mutex and appends them — tagged with
// the validation sequence — to a striped buffer set. The sealer, always
// invoked under the commit mutex, drains the stripes and dispatches the
// *dense prefix* of the sequence space to the LogWriter in one go: an
// epoch. The epoch boundary is the serialization point — everything the
// LogWriter (group commit, mirror ship, RedoIndex recovery) sees is still
// one gap-free, sequence-ordered stream, so nothing downstream of submit()
// changes on the wire.
//
// Sealing is driven by the committers themselves (last-appender-drains):
// every committer seals right after appending, under the commit mutex it
// already takes to park for its log ack. A sequence that cannot ship yet
// because a lower seq is still installing simply waits in the pending map
// until that seq's owner appends and seals — the gap's owner is always a
// live committer, so no timer backstop is needed.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "rodain/common/types.hpp"
#include "rodain/log/record.hpp"
#include "rodain/obs/lifecycle.hpp"

namespace rodain::log {

/// One transaction's sealed-commit payload: exactly the arguments its
/// LogWriter::submit call would have carried on the serial path.
struct WorkerRedoEntry {
  ValidationTs seq{0};
  std::vector<Record> records;
  std::function<void()> on_durable;
  obs::StageClock* stages{nullptr};
};

/// Striped append buffers: committers append under a per-stripe mutex
/// (chosen by thread id), the sealer drains every stripe. Stripes keep two
/// committers from serializing on one append lock; the relaxed appended_
/// counter lets the sealer skip the stripe walk entirely when idle.
class WorkerBufferSet {
 public:
  explicit WorkerBufferSet(std::size_t stripes = 16);

  void append(WorkerRedoEntry entry);

  /// Move every buffered entry into `out` (order unspecified across
  /// stripes). Returns the number drained.
  std::size_t drain(std::vector<WorkerRedoEntry>& out);

  /// Relaxed hint: false means no appends since the last drain.
  [[nodiscard]] bool maybe_nonempty() const {
    return appended_.load(std::memory_order_acquire) !=
           drained_.load(std::memory_order_relaxed);
  }

 private:
  struct Stripe {
    std::mutex mu;
    std::vector<WorkerRedoEntry> entries;
  };

  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::atomic<std::uint64_t> appended_{0};
  std::atomic<std::uint64_t> drained_{0};  // sealer-side only
};

/// Stitches the per-worker buffers into the globally sequence-ordered
/// stream the LogWriter expects. seal() must run under the node's commit
/// mutex (it is the single consumer and its dispatches are the same
/// LogWriter calls the serial path makes under that mutex).
class EpochSealer {
 public:
  using Dispatch = std::function<void(WorkerRedoEntry&&)>;

  /// Restart the dense cursor (engine (re)build, recovery handoff).
  void reset(ValidationTs next);

  /// Committer-side: append a transaction's redo payload. Thread-safe.
  void append(WorkerRedoEntry entry) { buffers_.append(std::move(entry)); }

  /// Drain the buffers and dispatch the dense prefix in sequence order.
  /// Returns the number of transactions sealed into this epoch (0 when the
  /// head of the sequence space is still being installed). Caller holds
  /// the node's commit mutex.
  std::size_t seal(const Dispatch& dispatch);

  [[nodiscard]] std::uint64_t epochs() const { return epochs_; }
  [[nodiscard]] ValidationTs next_seq() const { return next_; }
  /// Entries parked behind a sequence gap (seal-side view).
  [[nodiscard]] std::size_t parked() const { return pending_.size(); }

 private:
  WorkerBufferSet buffers_;
  std::map<ValidationTs, WorkerRedoEntry> pending_;  // seal-side only
  ValidationTs next_{1};
  std::uint64_t epochs_{0};
};

}  // namespace rodain::log
