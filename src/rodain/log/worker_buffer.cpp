#include "rodain/log/worker_buffer.hpp"

#include <thread>

#include "rodain/obs/obs.hpp"

namespace rodain::log {

namespace {
struct SealMetrics {
  /// One inc per seal that shipped at least one transaction; the fill
  /// counter divided by seals gives the mean epoch size.
  obs::Counter& seals = obs::metrics().counter("node.epoch_seals");
  obs::Counter& sealed_txns = obs::metrics().counter("node.epoch_sealed_txns");
};
SealMetrics& em() {
  static SealMetrics m;
  return m;
}

std::size_t stripe_index(std::size_t stripes) {
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) % stripes;
}
}  // namespace

WorkerBufferSet::WorkerBufferSet(std::size_t stripes) {
  stripes_.reserve(stripes);
  for (std::size_t i = 0; i < stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

void WorkerBufferSet::append(WorkerRedoEntry entry) {
  Stripe& s = *stripes_[stripe_index(stripes_.size())];
  {
    std::lock_guard lock(s.mu);
    s.entries.push_back(std::move(entry));
  }
  // Release so a sealer that observes the count also observes the entry.
  appended_.fetch_add(1, std::memory_order_release);
}

std::size_t WorkerBufferSet::drain(std::vector<WorkerRedoEntry>& out) {
  if (!maybe_nonempty()) return 0;
  std::size_t n = 0;
  for (auto& stripe : stripes_) {
    std::lock_guard lock(stripe->mu);
    n += stripe->entries.size();
    for (WorkerRedoEntry& e : stripe->entries) out.push_back(std::move(e));
    stripe->entries.clear();
  }
  drained_.fetch_add(n, std::memory_order_relaxed);
  return n;
}

void EpochSealer::reset(ValidationTs next) {
  next_ = next;
  pending_.clear();
}

std::size_t EpochSealer::seal(const Dispatch& dispatch) {
  std::vector<WorkerRedoEntry> drained;
  buffers_.drain(drained);
  for (WorkerRedoEntry& e : drained) pending_.emplace(e.seq, std::move(e));
  std::size_t sealed = 0;
  while (!pending_.empty() && pending_.begin()->first == next_) {
    auto node = pending_.extract(pending_.begin());
    ++next_;
    ++sealed;
    dispatch(std::move(node.mapped()));
  }
  if (sealed > 0) {
    ++epochs_;
    em().seals.inc();
    em().sealed_txns.inc(static_cast<std::uint64_t>(sealed));
  }
  return sealed;
}

}  // namespace rodain::log
