// The OCC protocol family: one implementation parameterized by three policy
// choices (see controller.hpp for the mapping to the published protocols).
#pragma once

#include <unordered_map>

#include "rodain/cc/controller.hpp"

namespace rodain::cc {

struct OccPolicy {
  /// Broadcast commit: restart every active reader of the validated write
  /// set instead of adjusting intervals (OCC-BC).
  bool broadcast{false};
  /// Adjust the transaction's own interval eagerly at access time against
  /// committed object timestamps (OCC-TI).
  bool eager_self_adjust{false};
  /// The validating transaction's timestamp is fixed at the default slot —
  /// no backward ordering for the validator (OCC-DA and OCC-BC).
  bool fixed_final_ts{false};
  /// Pick the final timestamp mid-interval instead of at the minimum,
  /// leaving room for later backward-ordered transactions (OCC-DATI).
  bool midpoint_final_ts{false};
};

class OccController final : public ConcurrencyController {
 public:
  OccController(std::string_view name, OccPolicy policy)
      : name_(name), policy_(policy) {}

  [[nodiscard]] std::string_view name() const override { return name_; }
  void on_begin(txn::Transaction& t) override;
  AccessResult on_read(txn::Transaction& t, ObjectId oid,
                       const storage::ObjectRecord* rec,
                       bool optimistic = false) override;
  AccessResult on_write(txn::Transaction& t, ObjectId oid,
                        const storage::ObjectRecord* rec) override;
  ValidationResult validate(txn::Transaction& t, ValidationTs next_seq,
                            const storage::ObjectStore& store) override;
  void on_installed(txn::Transaction& t, storage::ObjectStore& store) override;
  void on_abort(txn::Transaction& t) override;
  [[nodiscard]] std::size_t active_count() const override { return active_.size(); }
  /// OCC read phases touch only committed state + private copies (paper §3),
  /// so they may run outside the commit mutex.
  [[nodiscard]] bool lock_free_read_phase() const override { return true; }

 private:
  /// Choose the final serialization timestamp for a transaction whose
  /// interval is [lo, hi] and whose default slot is `slot`.
  [[nodiscard]] ValidationTs choose_ts(const txn::TsInterval& iv,
                                       ValidationTs slot) const;

  std::string_view name_;
  OccPolicy policy_;
  /// Active = begun, not yet validated. Forward validation adjusts exactly
  /// this set; transactions past validation are immune.
  std::unordered_map<TxnId, txn::Transaction*> active_;
};

}  // namespace rodain::cc
