// Per-record write intents for the parallel commit path (DESIGN.md §13).
//
// A committing worker acquires an intent on every object in its write set
// before validating, holds it through install, and releases it after its
// redo entry is appended to the epoch sealer. Intents give the three
// guarantees the commit mutex used to provide record-by-record:
//   - two installers never touch the same record concurrently (the store's
//     in-place seqlock paths assume single-writer per record);
//   - write-write conflicts on an object serialize fully — the second
//     writer's validation observes the first writer's installed wts, so
//     per-record install order always equals validation-sequence order and
//     mirror replay of the sealed stream is byte-identical;
//   - validators can probe whether a *foreign* committer currently intends
//     an object they read optimistically (the reader-vs-installer check).
//
// The table is hash-striped: an intent locks the object's stripe, not the
// object, so two disjoint write sets can still collide on a stripe. That
// only costs waiting, never correctness. Deadlock freedom comes from
// deterministic ordered acquisition: stripe indices are sorted and deduped
// before locking.
#pragma once

#include <algorithm>
#include <array>
#include <mutex>
#include <vector>

#include "rodain/common/types.hpp"
#include "rodain/txn/transaction.hpp"

namespace rodain::cc {

class IntentTable {
 public:
  static constexpr std::size_t kStripes = 4096;

  /// RAII over a set of acquired stripes; releases in reverse order.
  class Guard {
   public:
    Guard() = default;
    Guard(IntentTable* table, std::vector<std::uint32_t> stripes)
        : table_(table), stripes_(std::move(stripes)) {}
    Guard(Guard&& o) noexcept
        : table_(o.table_), stripes_(std::move(o.stripes_)) {
      o.table_ = nullptr;
      o.stripes_.clear();
    }
    Guard& operator=(Guard&& o) noexcept {
      if (this != &o) {
        release();
        table_ = o.table_;
        stripes_ = std::move(o.stripes_);
        o.table_ = nullptr;
        o.stripes_.clear();
      }
      return *this;
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    ~Guard() { release(); }

    void release() {
      if (table_ == nullptr) return;
      for (auto it = stripes_.rbegin(); it != stripes_.rend(); ++it) {
        table_->mu_[*it].unlock();
      }
      table_ = nullptr;
      stripes_.clear();
    }

    [[nodiscard]] bool holds_stripe(std::uint32_t stripe) const {
      return std::binary_search(stripes_.begin(), stripes_.end(), stripe);
    }
    [[nodiscard]] bool empty() const { return stripes_.empty(); }

   private:
    friend class IntentTable;
    IntentTable* table_{nullptr};
    std::vector<std::uint32_t> stripes_;  // sorted ascending
  };

  [[nodiscard]] static std::uint32_t stripe_of(ObjectId id) {
    // Same mix the object store uses; stripe collisions are benign.
    std::uint64_t x = id + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::uint32_t>((x ^ (x >> 31)) & (kStripes - 1));
  }

  /// Blocking ordered acquisition over the write set's stripes.
  [[nodiscard]] Guard acquire(const std::vector<txn::WriteEntry>& writes) {
    std::vector<std::uint32_t> stripes;
    stripes.reserve(writes.size());
    for (const txn::WriteEntry& w : writes) stripes.push_back(stripe_of(w.oid));
    return acquire_stripes(std::move(stripes));
  }

  /// Single-object intent (serial read fallbacks, point lookups).
  [[nodiscard]] Guard acquire_one(ObjectId oid) {
    return acquire_stripes({stripe_of(oid)});
  }

  /// True when another committer currently holds an intent covering `oid`
  /// and it is not among `held`'s stripes. A try_lock probe: if the stripe
  /// is free we locked and immediately unlocked it, proving no foreign
  /// holder existed at that instant. Callers order the probe against
  /// foreign validations with the engine's validation mutex.
  [[nodiscard]] bool foreign_intent(ObjectId oid, const Guard& held) {
    const std::uint32_t stripe = stripe_of(oid);
    if (held.holds_stripe(stripe)) return false;
    if (mu_[stripe].try_lock()) {
      mu_[stripe].unlock();
      return false;
    }
    return true;
  }

 private:
  [[nodiscard]] Guard acquire_stripes(std::vector<std::uint32_t> stripes) {
    std::sort(stripes.begin(), stripes.end());
    stripes.erase(std::unique(stripes.begin(), stripes.end()), stripes.end());
    for (std::uint32_t s : stripes) mu_[s].lock();
    return Guard(this, std::move(stripes));
  }

  std::array<std::mutex, kStripes> mu_;
};

}  // namespace rodain::cc
