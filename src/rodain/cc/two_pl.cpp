#include "rodain/cc/two_pl.hpp"

namespace rodain::cc {

void TwoPlController::on_begin(txn::Transaction& t) {
  active_.insert(t.id());
}

AccessResult TwoPlController::on_read(txn::Transaction& t, ObjectId oid,
                                      const storage::ObjectRecord* rec,
                                      bool optimistic) {
  (void)optimistic;  // 2PL never runs outside the commit mutex
  auto r = lock_manager_.acquire(oid, t.id(), LockMode::kShared, t.priority());
  if (r.decision == Access::kGranted) {
    t.note_read(oid, rec ? rec->wts : 0);
  }
  return AccessResult{r.decision, std::move(r.victims)};
}

AccessResult TwoPlController::on_write(txn::Transaction& t, ObjectId oid,
                                       const storage::ObjectRecord* rec) {
  (void)rec;
  auto r = lock_manager_.acquire(oid, t.id(), LockMode::kExclusive, t.priority());
  return AccessResult{r.decision, std::move(r.victims)};
}

ValidationResult TwoPlController::validate(txn::Transaction& t,
                                           ValidationTs next_seq,
                                           const storage::ObjectStore& store) {
  (void)store;
  // Strict 2PL: holding all locks at this point IS the validation.
  ValidationResult result;
  result.ok = true;
  result.serial_ts = next_seq * kTsSpacing;
  active_.erase(t.id());
  return result;
}

void TwoPlController::on_installed(txn::Transaction& t,
                                   storage::ObjectStore& store) {
  const ValidationTs ts = t.serial_ts();
  // Atomic bumps: the db-layer optimistic fast path snapshots rts/wts
  // without the commit mutex regardless of protocol.
  for (const txn::ReadEntry& r : t.read_set()) {
    if (storage::ObjectRecord* rec = store.find_mutable(r.oid)) {
      rec->bump_rts(ts);
    }
  }
  for (const txn::WriteEntry& w : t.write_set()) {
    if (storage::ObjectRecord* rec = store.find_mutable(w.oid)) {
      rec->bump_wts(ts);
    }
  }
  dispatch(lock_manager_.release_all(t.id()));
}

void TwoPlController::on_abort(txn::Transaction& t) {
  active_.erase(t.id());
  dispatch(lock_manager_.release_all(t.id()));
}

void TwoPlController::dispatch(const LockManager::ReleaseResult& result) {
  // Victims first: a transaction displaced in this cascade must not act on
  // a stale grant.
  if (victim_) {
    for (TxnId id : result.victims) victim_(id);
  }
  if (wakeup_) {
    for (TxnId id : result.woken) wakeup_(id);
  }
}

}  // namespace rodain::cc
