#include "rodain/cc/controller.hpp"
#include "rodain/cc/occ.hpp"
#include "rodain/cc/two_pl.hpp"

namespace rodain::cc {

std::string_view to_string(Protocol p) {
  switch (p) {
    case Protocol::kOccBc: return "occ-bc";
    case Protocol::kOccDa: return "occ-da";
    case Protocol::kOccTi: return "occ-ti";
    case Protocol::kOccDati: return "occ-dati";
    case Protocol::kTwoPlHp: return "2pl-hp";
  }
  return "?";
}

std::unique_ptr<ConcurrencyController> make_controller(Protocol p) {
  switch (p) {
    case Protocol::kOccBc: {
      OccPolicy policy;
      policy.broadcast = true;
      policy.fixed_final_ts = true;
      return std::make_unique<OccController>("occ-bc", policy);
    }
    case Protocol::kOccDa: {
      OccPolicy policy;
      policy.fixed_final_ts = true;
      return std::make_unique<OccController>("occ-da", policy);
    }
    case Protocol::kOccTi: {
      OccPolicy policy;
      policy.eager_self_adjust = true;
      return std::make_unique<OccController>("occ-ti", policy);
    }
    case Protocol::kOccDati: {
      OccPolicy policy;
      policy.midpoint_final_ts = true;
      return std::make_unique<OccController>("occ-dati", policy);
    }
    case Protocol::kTwoPlHp:
      return std::make_unique<TwoPlController>();
  }
  return nullptr;
}

}  // namespace rodain::cc
