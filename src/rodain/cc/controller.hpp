// Concurrency-control interface.
//
// The paper's protocol is OCC-DATI (a combination of OCC-DA and OCC-TI that
// "reduces the number of unnecessary restarts", §2). To reproduce that claim
// we implement the whole family behind one interface:
//
//   OCC-BC    classic broadcast forward validation: every active reader of a
//             validated write set restarts.
//   OCC-DA    dynamic adjustment of serialization order, but the validating
//             transaction's own timestamp is fixed — backward ordering is
//             impossible for the validator, so it restarts itself when it has
//             been ordered before an already-committed transaction.
//   OCC-TI    timestamp intervals adjusted eagerly at access time as well as
//             at validation; the final timestamp is the interval minimum.
//   OCC-DATI  timestamp intervals adjusted only at validation, final
//             timestamp chosen mid-interval to keep room on both sides —
//             the fewest restarts of the family.
//   2PL-HP    two-phase locking with High Priority conflict resolution, the
//             classical real-time lock-based baseline.
//
// All OCC variants use *forward* validation: the validating transaction
// always commits (given its own interval is non-empty); conflicts are pushed
// onto active transactions. Validation calls are serialized by the engine
// ("transactions are validated atomically", §4).
#pragma once

#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "rodain/common/types.hpp"
#include "rodain/storage/object_store.hpp"
#include "rodain/txn/transaction.hpp"

namespace rodain::cc {

/// Logical timestamps are spaced this far apart per validation so that
/// backward-ordered transactions can be placed between committed ones.
inline constexpr ValidationTs kTsSpacing = ValidationTs{1} << 20;

enum class Access : std::uint8_t {
  kGranted = 0,
  kBlocked,      ///< 2PL: wait for the lock; engine parks the transaction
  kRestartSelf,  ///< the requesting transaction must restart
};

struct AccessResult {
  Access decision{Access::kGranted};
  /// Lower-priority transactions the requester displaced (2PL-HP).
  std::vector<TxnId> victims;
};

struct ValidationResult {
  bool ok{false};
  ValidationTs serial_ts{0};  ///< logical serialization timestamp when ok
  /// Active transactions whose serialization interval became empty (or that
  /// were broadcast-invalidated) and must restart.
  std::vector<TxnId> victims;
};

class ConcurrencyController {
 public:
  virtual ~ConcurrencyController() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Transaction enters its read phase (also called again after a restart).
  virtual void on_begin(txn::Transaction& t) = 0;

  /// Read-time hook. `rec` is the committed record (nullptr if the object
  /// does not exist). OCC variants record the observation; 2PL acquires a
  /// shared lock. `optimistic` marks a seqlock-snapshot read taken outside
  /// the commit mutex (only when lock_free_read_phase() is true): the
  /// controller tags the read-set entry so validation re-checks it.
  virtual AccessResult on_read(txn::Transaction& t, ObjectId oid,
                               const storage::ObjectRecord* rec,
                               bool optimistic = false) = 0;

  /// Write-intent hook (the update itself goes to the private copy).
  virtual AccessResult on_write(txn::Transaction& t, ObjectId oid,
                                const storage::ObjectRecord* rec) = 0;

  /// Validation, executed inside the engine's validation critical section.
  /// `next_seq` is the dense validation sequence number the transaction
  /// receives if validation succeeds; `store` supplies the committed
  /// timestamps the final-timestamp choice must respect.
  virtual ValidationResult validate(txn::Transaction& t, ValidationTs next_seq,
                                    const storage::ObjectStore& store) = 0;

  /// Called after the write phase installed the after-images: bump the
  /// committed read/write timestamps on the touched objects.
  virtual void on_installed(txn::Transaction& t, storage::ObjectStore& store) = 0;

  /// Abort/restart cleanup (locks released, active-set entry removed).
  virtual void on_abort(txn::Transaction& t) = 0;

  /// 2PL: invoked with transactions whose blocking lock request was granted.
  using WakeupFn = std::function<void(TxnId)>;
  virtual void set_wakeup_handler(WakeupFn fn) { (void)fn; }

  /// 2PL: invoked with holders displaced by a promoted higher-priority
  /// waiter (HP rule at promotion time); the engine must restart them.
  using VictimFn = std::function<void(TxnId)>;
  virtual void set_victim_handler(VictimFn fn) { (void)fn; }

  /// Protocol-wide restart counter (diagnostics; engine keeps its own too).
  [[nodiscard]] virtual std::size_t active_count() const = 0;

  /// Whether read-phase steps may run outside the engine's commit mutex
  /// (DESIGN.md §11). OCC variants return true — the read phase touches
  /// only committed state and private copies; 2PL's lock table mutates on
  /// every access, so it stays serial.
  [[nodiscard]] virtual bool lock_free_read_phase() const { return false; }
};

enum class Protocol : std::uint8_t {
  kOccBc = 0,
  kOccDa,
  kOccTi,
  kOccDati,
  kTwoPlHp,
};

[[nodiscard]] std::string_view to_string(Protocol p);
[[nodiscard]] std::unique_ptr<ConcurrencyController> make_controller(Protocol p);

}  // namespace rodain::cc
