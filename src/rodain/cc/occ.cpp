#include "rodain/cc/occ.hpp"

#include <algorithm>
#include <cassert>
#include <mutex>

namespace rodain::cc {

void OccController::on_begin(txn::Transaction& t) {
  active_[t.id()] = &t;
}

AccessResult OccController::on_read(txn::Transaction& t, ObjectId oid,
                                    const storage::ObjectRecord* rec,
                                    bool optimistic) {
  const ValidationTs observed = rec ? rec->wts_relaxed() : 0;
  // The owner may be in an unlocked read phase while a validator (holding
  // the commit mutex) scans this transaction's sets in Step 2; the leaf
  // mutex makes scan-vs-append atomic.
  std::lock_guard lock(t.access_mu());
  // Re-read of an object whose committed version changed since the first
  // observation: the store is single-version, so this transaction would see
  // two different versions of one object — no serialization point exists.
  // It must restart (the interval machinery cannot repair an already
  // inconsistent view).
  for (const txn::ReadEntry& e : t.read_set()) {
    if (e.oid == oid) {
      if (e.observed_wts != observed) {
        return AccessResult{Access::kRestartSelf, {}};
      }
      return {};
    }
  }
  t.note_read(oid, observed, optimistic);
  if (policy_.eager_self_adjust) {
    // OCC-TI clamps the interval the moment the read happens. The committed
    // writer may validate later with a *smaller* logical timestamp than the
    // object's current wts suggests, so this eager floor can be needlessly
    // tight — exactly the unnecessary-restart source OCC-DATI removes.
    t.interval().after(observed);
  }
  return {};
}

AccessResult OccController::on_write(txn::Transaction& t, ObjectId oid,
                                     const storage::ObjectRecord* rec) {
  (void)oid;
  if (policy_.eager_self_adjust && rec) {
    std::lock_guard lock(t.access_mu());
    t.interval().after(rec->rts_relaxed());
    t.interval().after(rec->wts_relaxed());
  }
  return {};
}

ValidationTs OccController::choose_ts(const txn::TsInterval& iv,
                                      ValidationTs slot) const {
  assert(!iv.empty());
  if (policy_.fixed_final_ts) return slot;
  const ValidationTs lo = std::max(iv.lo, ValidationTs{1});
  if (iv.hi >= slot) {
    // Unconstrained from above (or the default slot fits): prefer the slot —
    // it is guaranteed unique and leaves the whole [lo, slot) gap for
    // backward-ordered peers.
    return std::max(lo, slot);
  }
  // Constrained below the default slot: this transaction serializes before
  // an already-committed one.
  if (policy_.midpoint_final_ts) {
    return lo + (iv.hi - lo) / 2;  // leave room on both sides (OCC-DATI)
  }
  return lo;  // OCC-TI: interval minimum
}

ValidationResult OccController::validate(txn::Transaction& t,
                                         ValidationTs next_seq,
                                         const storage::ObjectStore& store) {
  ValidationResult result;
  const ValidationTs slot = next_seq * kTsSpacing;

  // --- Step 1: floor the validator's interval against committed state.
  // Reads must serialize after the version they observed; writes must
  // serialize after every committed reader and writer of the object —
  // otherwise a backward-placed final timestamp could slide beneath a
  // committed reader that never saw this write. (OCC-TI applied access-time
  // floors too; re-applying fresher values here is strictly tighter.)
  txn::TsInterval iv = t.interval();
  for (const txn::ReadEntry& r : t.read_set()) {
    if (r.optimistic) {
      // Seqlock-snapshot read taken outside the commit mutex. A writer that
      // validated *while this entry was being appended* may have missed it
      // in its forward scan (Step 2 below) — the one ordering edge forward
      // validation cannot see. Committed wts only grows (writers floor
      // their ts above it in this loop), so an unchanged wts proves no
      // writer installed over the observed version and the read is still
      // the committed state; a changed wts is indistinguishable from a
      // missed adjustment, so restart.
      const auto ts = store.timestamps_of(r.oid);
      if ((ts ? ts->second : 0) != r.observed_wts) {
        result.ok = false;
        return result;
      }
    }
    iv.after(r.observed_wts);
  }
  for (const txn::WriteEntry& w : t.write_set()) {
    // timestamps_of is parallel-safe: on the parallel commit path this
    // committer holds write intents on its write set, so no foreign
    // installer can be mid-update on these records.
    if (const auto ts = store.timestamps_of(w.oid)) {
      iv.after(ts->first);   // committed readers
      iv.after(ts->second);  // committed writers
    }
  }

  if (policy_.fixed_final_ts && iv.hi < slot) {
    // OCC-DA/BC: the validator cannot serialize backward; restart it.
    result.ok = false;
    return result;
  }
  if (iv.empty()) {
    result.ok = false;
    return result;
  }

  const ValidationTs ts = choose_ts(iv, slot);
  assert(ts >= iv.lo && ts <= iv.hi);
  t.interval() = iv;

  // --- Step 2: forward adjustment of every conflicting active transaction.
  // A read-only validator adjusts nobody: it wrote nothing (no reader of
  // its writes, no write-write edge), and writers into its read set
  // serialize after it via the object rts floors on_installed maintains.
  // Skipping the scan keeps read-heavy multicore validation O(read set).
  if (!t.write_set().empty()) {
    for (auto& [id, other] : active_) {
      if (id == t.id()) continue;
      txn::Transaction& o = *other;
      // o's owner may be appending to its sets in an unlocked read phase.
      std::lock_guard o_lock(o.access_mu());
      bool conflict_read_my_write = false;   // o read something I wrote
      bool conflict_wrote_my_read = false;   // o writes something I read
      bool conflict_wrote_my_write = false;  // write-write overlap
      for (const txn::WriteEntry& w : t.write_set()) {
        if (o.in_read_set(w.oid)) conflict_read_my_write = true;
        if (o.in_write_set(w.oid)) conflict_wrote_my_write = true;
      }
      for (const txn::ReadEntry& r : t.read_set()) {
        if (o.in_write_set(r.oid)) conflict_wrote_my_read = true;
      }
      if (!(conflict_read_my_write || conflict_wrote_my_read ||
            conflict_wrote_my_write)) {
        continue;
      }

      if (policy_.broadcast) {
        // OCC-BC: any reader of my writes dies; writers into my read set are
        // fine (they serialize after me), write-write also forces a restart
        // in the classical broadcast scheme.
        if (conflict_read_my_write || conflict_wrote_my_write) {
          result.victims.push_back(id);
        }
        continue;
      }

      // Interval adjustment (OCC-DA / OCC-TI / OCC-DATI):
      //   o read my write        -> o serializes BEFORE me
      //   o writes into my reads -> o serializes AFTER me
      //   write-write            -> o serializes AFTER me
      if (conflict_read_my_write) o.interval().before(ts);
      if (conflict_wrote_my_read || conflict_wrote_my_write) {
        o.interval().after(ts);
      }
      if (o.interval().empty()) result.victims.push_back(id);
    }
  }

  // Victims are restarted by the engine (which calls on_abort for each);
  // drop them from the active set lazily there, not here.

  result.ok = true;
  result.serial_ts = ts;
  active_.erase(t.id());  // validated transactions are immune to adjustment
  return result;
}

void OccController::on_installed(txn::Transaction& t,
                                 storage::ObjectStore& store) {
  const ValidationTs ts = t.serial_ts();
  // Atomic bumps: optimistic readers snapshot rts/wts outside the commit
  // mutex, so these stores may race their relaxed loads.
  for (const txn::ReadEntry& r : t.read_set()) {
    if (storage::ObjectRecord* rec = store.find_mutable(r.oid)) {
      rec->bump_rts(ts);
    }
  }
  for (const txn::WriteEntry& w : t.write_set()) {
    if (storage::ObjectRecord* rec = store.find_mutable(w.oid)) {
      rec->bump_wts(ts);
    }
  }
}

void OccController::on_abort(txn::Transaction& t) {
  active_.erase(t.id());
}

}  // namespace rodain::cc
