// Lock table for 2PL-HP (High Priority) — the classical real-time locking
// baseline the OCC family is compared against.
//
// Conflict rule: if the requester's priority (EDF key) is higher than that of
// every conflicting holder, the holders are restarted and the lock granted;
// otherwise the requester blocks. Because blocked transactions only ever
// wait for strictly higher-priority holders, wait-for edges are acyclic and
// deadlock cannot occur.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "rodain/cc/controller.hpp"

namespace rodain::cc {

enum class LockMode : std::uint8_t { kShared = 0, kExclusive };

class LockManager {
 public:
  struct AcquireResult {
    Access decision{Access::kGranted};
    std::vector<TxnId> victims;  ///< lower-priority holders to restart
  };

  /// Request `mode` on `oid`. Re-entrant: a holder asking again (including
  /// shared->exclusive upgrade) is handled in place.
  AcquireResult acquire(ObjectId oid, TxnId txn, LockMode mode, PriorityKey prio);

  struct ReleaseResult {
    std::vector<TxnId> woken;    ///< queued requests that became grantable
    std::vector<TxnId> victims;  ///< holders displaced by promoted waiters
  };

  /// Drop every lock and pending request of `txn`. Promotion applies the
  /// High Priority rule transitively: a waiter that now beats every
  /// remaining conflicting holder displaces them; displaced holders'
  /// own locks cascade within this call. The caller must restart every
  /// returned victim and wake every woken transaction.
  ReleaseResult release_all(TxnId txn);

  [[nodiscard]] bool holds(ObjectId oid, TxnId txn) const;
  [[nodiscard]] std::size_t locked_objects() const { return table_.size(); }
  [[nodiscard]] std::size_t waiting_requests() const;

  /// Inspect the table (tests, deadlock diagnostics): visits every object
  /// with its holder and waiter transaction ids.
  void for_each_lock(
      const std::function<void(ObjectId, std::span<const TxnId> holders,
                               std::span<const TxnId> waiters)>& fn) const;

 private:
  struct Holder {
    TxnId txn;
    LockMode mode;
    PriorityKey prio;
  };
  struct Waiter {
    TxnId txn;
    LockMode mode;
    PriorityKey prio;
  };
  struct Entry {
    std::vector<Holder> holders;
    std::vector<Waiter> waiters;  // kept sorted by priority (highest first)
  };

  /// Grant every waiter at the head of the queue that is compatible or
  /// beats all conflicting holders (HP rule). Grants append to `woken`,
  /// displaced holders append to `victims`.
  void promote_waiters(ObjectId oid, Entry& e, std::vector<TxnId>& woken,
                       std::vector<TxnId>& victims);

  static bool compatible(LockMode held, LockMode requested) {
    return held == LockMode::kShared && requested == LockMode::kShared;
  }

  std::unordered_map<ObjectId, Entry> table_;
  // txn -> objects it holds or waits on (for O(locks) release).
  std::unordered_map<TxnId, std::vector<ObjectId>> txn_objects_;
};

}  // namespace rodain::cc
