// Strict 2PL with High-Priority conflict resolution, wrapped in the common
// ConcurrencyController interface. Locks are held to the end of the write
// phase (strict), so the serialization order equals the validation order.
#pragma once

#include <unordered_set>

#include "rodain/cc/controller.hpp"
#include "rodain/cc/lock_manager.hpp"

namespace rodain::cc {

class TwoPlController final : public ConcurrencyController {
 public:
  [[nodiscard]] std::string_view name() const override { return "2pl-hp"; }

  void on_begin(txn::Transaction& t) override;
  AccessResult on_read(txn::Transaction& t, ObjectId oid,
                       const storage::ObjectRecord* rec,
                       bool optimistic = false) override;
  AccessResult on_write(txn::Transaction& t, ObjectId oid,
                        const storage::ObjectRecord* rec) override;
  ValidationResult validate(txn::Transaction& t, ValidationTs next_seq,
                            const storage::ObjectStore& store) override;
  void on_installed(txn::Transaction& t, storage::ObjectStore& store) override;
  void on_abort(txn::Transaction& t) override;
  void set_wakeup_handler(WakeupFn fn) override { wakeup_ = std::move(fn); }
  void set_victim_handler(VictimFn fn) override { victim_ = std::move(fn); }
  [[nodiscard]] std::size_t active_count() const override { return active_.size(); }

  [[nodiscard]] const LockManager& locks() const { return lock_manager_; }

 private:
  void dispatch(const LockManager::ReleaseResult& result);

  LockManager lock_manager_;
  WakeupFn wakeup_;
  VictimFn victim_;
  std::unordered_set<TxnId> active_;
};

}  // namespace rodain::cc
